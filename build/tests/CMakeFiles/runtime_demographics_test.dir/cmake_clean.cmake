file(REMOVE_RECURSE
  "CMakeFiles/runtime_demographics_test.dir/runtime_demographics_test.cpp.o"
  "CMakeFiles/runtime_demographics_test.dir/runtime_demographics_test.cpp.o.d"
  "runtime_demographics_test"
  "runtime_demographics_test.pdb"
  "runtime_demographics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_demographics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
