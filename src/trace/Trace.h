//===- trace/Trace.h - Allocation traces -----------------------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocation-trace model. The paper drives its collector simulations
/// with malloc/free event traces captured by QPT from four C programs; this
/// module provides the equivalent substrate: an object-lifetime trace.
///
/// Time is the *allocation clock*: cumulative bytes allocated so far. Every
/// object carries its birth clock, size, and death clock (the point at which
/// the program frees it, i.e. the oracle moment it becomes unreachable).
/// This is exactly the information content of a malloc/free event stream,
/// stored in birth order with deaths resolved.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_TRACE_TRACE_H
#define DTB_TRACE_TRACE_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dtb {
namespace trace {

/// The allocation clock: cumulative bytes allocated since program start.
using AllocClock = uint64_t;

/// Death clock value for objects that live to the end of the program.
inline constexpr AllocClock NeverDies =
    std::numeric_limits<AllocClock>::max();

/// One heap object's lifetime. Birth is the clock value *after* the object's
/// allocation completes (so the first object allocated has Birth == its
/// size, and births increase strictly along the trace).
struct AllocationRecord {
  AllocClock Birth = 0;
  uint32_t Size = 0;
  AllocClock Death = NeverDies;

  /// Returns true if the object is still live at clock \p Now (deaths take
  /// effect at their clock value).
  bool liveAt(AllocClock Now) const { return Death > Now; }

  /// Returns the object's lifetime in allocated bytes (NeverDies-birth for
  /// immortal objects).
  AllocClock lifetime() const {
    return Death == NeverDies ? NeverDies : Death - Birth;
  }

  bool operator==(const AllocationRecord &Other) const = default;
};

/// An immutable allocation trace: records in birth order. Built through
/// TraceBuilder or deserialized by trace/TraceIO.
class Trace {
public:
  Trace() = default;

  /// Takes ownership of \p Records, which must already be in birth order
  /// with consistent clocks; call verify() to check.
  explicit Trace(std::vector<AllocationRecord> Records);

  const std::vector<AllocationRecord> &records() const { return Records; }
  size_t numObjects() const { return Records.size(); }
  bool empty() const { return Records.empty(); }

  /// Total bytes allocated over the whole trace (== the final clock value).
  AllocClock totalAllocated() const { return TotalAllocated; }

  /// Checks structural invariants: sizes nonzero, births strictly
  /// increasing and equal to the running byte total, deaths at-or-after
  /// births. Returns true if well-formed; on failure fills \p ErrorMessage
  /// if non-null.
  bool verify(std::string *ErrorMessage = nullptr) const;

private:
  std::vector<AllocationRecord> Records;
  AllocClock TotalAllocated = 0;
};

/// Incremental trace construction in program order: allocate objects, then
/// free them in any order, then finish().
class TraceBuilder {
public:
  /// Object handle used to free later; indexes the record array.
  using ObjectIndex = size_t;

  /// Appends an allocation of \p Size bytes (must be nonzero) and returns
  /// its handle. Advances the allocation clock by \p Size.
  ObjectIndex allocate(uint32_t Size);

  /// Marks object \p Index as freed at the current clock. An object may be
  /// freed at most once.
  void free(ObjectIndex Index);

  /// Current allocation clock.
  AllocClock now() const { return Clock; }

  /// Number of objects allocated so far.
  size_t numObjects() const { return Records.size(); }

  /// Finalizes and returns the trace; the builder is left empty.
  Trace finish();

private:
  std::vector<AllocationRecord> Records;
  AllocClock Clock = 0;
};

} // namespace trace
} // namespace dtb

#endif // DTB_TRACE_TRACE_H
