
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/HeapModel.cpp" "src/sim/CMakeFiles/dtb_sim.dir/HeapModel.cpp.o" "gcc" "src/sim/CMakeFiles/dtb_sim.dir/HeapModel.cpp.o.d"
  "/root/repo/src/sim/PointerTraffic.cpp" "src/sim/CMakeFiles/dtb_sim.dir/PointerTraffic.cpp.o" "gcc" "src/sim/CMakeFiles/dtb_sim.dir/PointerTraffic.cpp.o.d"
  "/root/repo/src/sim/Simulator.cpp" "src/sim/CMakeFiles/dtb_sim.dir/Simulator.cpp.o" "gcc" "src/sim/CMakeFiles/dtb_sim.dir/Simulator.cpp.o.d"
  "/root/repo/src/sim/Trigger.cpp" "src/sim/CMakeFiles/dtb_sim.dir/Trigger.cpp.o" "gcc" "src/sim/CMakeFiles/dtb_sim.dir/Trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dtb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dtb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
