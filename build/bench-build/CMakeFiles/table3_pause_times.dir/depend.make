# Empty dependencies file for table3_pause_times.
# This may be replaced when dependencies are built.
