//===- support/ThreadPool.h - Fixed worker pool + parallelFor --*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for fanning out independent simulations. The
/// experiment harnesses (report::ExperimentGrid, report::runSeedSweep, the
/// sweep benches) submit one task per (policy, workload, seed) cell and
/// deposit results into preallocated slots, so parallel output is
/// bit-identical to a serial run regardless of scheduling.
///
/// Three layers:
///
///  * ThreadPool      — submit() returns a std::future; exceptions thrown
///                      by a task are captured and rethrown at get().
///  * parallelFor     — index-space helper; the calling thread works too,
///                      so a pool of N threads yields N+1 lanes and a
///                      nested parallelFor on the same pool cannot
///                      deadlock.
///  * default pool    — process-wide pool sized by --threads/-j (see
///                      addThreadsOption); size 1 means "run inline".
///
//===----------------------------------------------------------------------===//

#ifndef DTB_SUPPORT_THREADPOOL_H
#define DTB_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dtb {

class OptionParser;

/// A fixed pool of worker threads draining a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(unsigned NumThreads);

  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Fn and returns a future for its result. An exception
  /// escaping the task is stored in the future and rethrown by get().
  /// Tasks may themselves submit further tasks (the queue is unbounded and
  /// workers never wait on other tasks' futures internally).
  template <typename Fn>
  auto submit(Fn &&F) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    auto Task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(F));
    std::future<Result> Future = Task->get_future();
    enqueue([Task] { (*Task)(); });
    return Future;
  }

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// True when called from any ThreadPool worker thread. parallelFor uses
  /// this to run nested fan-outs inline: a worker blocking on helper tasks
  /// that no free worker can pick up would deadlock the pool.
  static bool onWorkerThread();

  /// The host's hardware thread count (at least 1).
  static unsigned hardwareThreads();

private:
  void enqueue(std::function<void()> Job);
  void workerLoop();

  std::vector<std::thread> Workers;
  std::vector<std::function<void()>> Queue; // FIFO via Head index.
  size_t Head = 0;
  std::mutex Mutex;
  std::condition_variable Ready;
  bool Stopping = false;
};

/// Sets the process-wide default worker count used by defaultThreadPool():
/// 0 picks hardwareThreads(). Replaces any existing default pool, so call
/// it right after option parsing, before parallel work starts.
void setDefaultThreadCount(unsigned NumThreads);

/// The worker count the default pool has (or would be created with).
unsigned defaultThreadCount();

/// The lazily created process-wide pool, or nullptr when the configured
/// count is 1 — callers then run inline, which keeps `--threads 1` truly
/// serial (no pool threads at all).
ThreadPool *defaultThreadPool();

/// Runs Body(0) ... Body(N-1), fanning out over \p Pool (nullptr: run
/// inline on the calling thread). The calling thread participates;
/// iterations are claimed from a shared atomic counter, so ordering is
/// unspecified — bodies must be independent and deposit into per-index
/// slots. The first exception thrown by any body is rethrown on the
/// calling thread after all iterations finish.
void parallelFor(size_t N, const std::function<void(size_t)> &Body,
                 ThreadPool *Pool);

/// parallelFor over the process-wide default pool.
void parallelFor(size_t N, const std::function<void(size_t)> &Body);

/// Resolves a requested lane count to a pool for one scope: 0 borrows the
/// process-wide default, 1 selects no pool (serial), N > 1 owns a private
/// pool of N - 1 workers (the caller is the N-th lane in parallelFor).
class PoolSelection {
public:
  explicit PoolSelection(unsigned Lanes);
  ~PoolSelection();
  PoolSelection(const PoolSelection &) = delete;
  PoolSelection &operator=(const PoolSelection &) = delete;

  /// The selected pool; nullptr means run serially.
  ThreadPool *pool() const { return Selected; }

private:
  std::unique_ptr<ThreadPool> Owned;
  ThreadPool *Selected = nullptr;
};

/// Registers the standard `--threads` option (with `-j` short alias) on
/// \p Parser, storing into *\p Threads: 0 = one worker per hardware
/// thread, 1 = serial. Call applyThreadsOption after parse() succeeds.
void addThreadsOption(OptionParser &Parser, uint64_t *Threads);

/// Installs *\p Threads as the default pool size (clamped to [1, 4096]).
void applyThreadsOption(uint64_t Threads);

} // namespace dtb

#endif // DTB_SUPPORT_THREADPOOL_H
