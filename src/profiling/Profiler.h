//===- profiling/Profiler.h - Scoped phase profiler ------------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead scoped profiler that attributes collector work to named
/// *phases* — policy decision, root scan, trace/copy, remembered-set
/// scan/rebuild, promotion, sweep — so pause/throughput tradeoffs are
/// debuggable per phase instead of per scavenge (the LXR-style cost
/// breakdown the paper's tables lack).
///
/// Two cost dimensions per phase:
///
///  * allocation-clock cost — deterministic work units reported by the
///    instrumentation site (bytes traced/copied/reclaimed for marking
///    phases, demographic queries for the policy's boundary search).
///    Bit-identical for any thread count; this is what BENCH records and
///    the regression comparator gate on.
///  * wall time — real nanoseconds, nondeterministic, kept strictly out
///    of deterministic exports (same quarantine rule as telemetry's
///    "wall." metrics).
///
/// Phases nest: each scavenge produces a tree (finishScavenge() closes
/// it), and every phase accumulates self vs. total cost across the run —
/// self excludes enclosed child phases, total includes them. Per-entry
/// self-cost samples feed p50/p90/p99 and variance via support/Statistics.
///
/// The runtime heap and the trace-driven simulator instrument the *same
/// taxonomy* (profiling/Profiler.h's phase:: names), so a sim profile and
/// a runtime profile line up row for row.
///
/// A PhaseProfiler is single-threaded by design: one instance per Heap or
/// per simulate() call. Parallel drivers give each task its own profiler
/// and fold the aggregates in a fixed serial order (mergeFrom), keeping
/// the attribution deterministic.
///
/// Overhead: ProfilePhase checks PhaseProfiler::active() once at
/// construction (profiler enabled, or telemetry recording). When the
/// telemetry subsystem is compiled out (-DDTB_ENABLE_TELEMETRY=OFF) every
/// member here compiles to nothing — ProfilePhase is an empty type and
/// the instrumentation is dead code.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_PROFILING_PROFILER_H
#define DTB_PROFILING_PROFILER_H

#include "support/Statistics.h"
#include "support/Table.h"
#include "telemetry/Telemetry.h"

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dtb {
namespace profiling {

/// True when the profiler was compiled in (it rides the telemetry
/// compile-out switch).
constexpr bool compiledIn() { return telemetry::compiledIn(); }

/// The shared phase taxonomy. The runtime and the simulator must report
/// through these names so their profiles are comparable; new phases are
/// fine, ad-hoc spellings of these are not.
namespace phase {
inline constexpr const char *PolicyDecision = "policy_decision";
inline constexpr const char *BoundarySearch = "boundary_search";
inline constexpr const char *RootScan = "root_scan";
inline constexpr const char *RemSetScan = "remset_scan";
inline constexpr const char *Trace = "trace";
inline constexpr const char *Promote = "promote";
inline constexpr const char *WeakRefs = "weak_refs";
inline constexpr const char *Sweep = "sweep";
inline constexpr const char *RemSetRebuild = "remset_rebuild";
/// Stop-the-world pause anatomy (multi-mutator runtime only; heaps with
/// no registered contexts never enter these). Rendezvous covers the
/// whole stop — waiting out mid-op contexts plus publication — with
/// Publication (cost = published pending-allocation bytes) and
/// BarrierFlush (cost = barrier entries delivered) nested inside it;
/// WorldRelease (cost = contexts to wake) is recorded by the collection
/// epilogue for the pending resume, so a pause decomposes end-to-end in
/// the cost-attribution table. Costs are deterministic counts, never
/// wall time.
inline constexpr const char *Rendezvous = "rendezvous";
inline constexpr const char *Publication = "publication";
inline constexpr const char *BarrierFlush = "barrier_flush";
inline constexpr const char *WorldRelease = "world_release";
/// Per-lane work inside a parallel trace round. Lane profilers are merged
/// (mergeFrom, fixed lane order) into the heap's lane profile — kept apart
/// from the deterministic scavenge phases because per-lane attribution
/// depends on scheduling.
inline constexpr const char *TraceLane = "trace_lane";
} // namespace phase

/// Cross-run aggregate for one phase name.
struct PhaseAggregate {
  /// Times the phase was entered.
  uint64_t Count = 0;
  /// Work units attributed directly to the phase (children excluded).
  uint64_t SelfCost = 0;
  /// Work units including enclosed child phases.
  uint64_t TotalCost = 0;
  /// One self-cost sample per entry; quantiles/variance for the cost
  /// attribution summary.
  SampleSet SelfCostSamples;
  /// Wall nanoseconds excluding children (nondeterministic; never part of
  /// deterministic exports).
  double WallSelfNanos = 0.0;
};

/// One node of the most recent scavenge's phase tree, in pre-order.
struct PhaseTreeNode {
  const char *Name = nullptr;
  /// Index of the enclosing node in the pre-order vector (-1 for roots).
  int Parent = -1;
  uint64_t SelfCost = 0;
  uint64_t TotalCost = 0;
};

/// Per-collector phase profiler; see the file comment. All methods are
/// no-ops when telemetry is compiled out.
class PhaseProfiler {
public:
  /// Whether ProfilePhase scopes should record right now: explicitly
  /// enabled, or the telemetry recorder is live.
  bool active() const {
#if DTB_TELEMETRY
    return Enabled || telemetry::enabled();
#else
    return false;
#endif
  }

  /// Forces recording on/off independent of telemetry (the bench driver
  /// profiles without exporting an event stream).
  void setEnabled(bool On) {
#if DTB_TELEMETRY
    Enabled = On;
#else
    (void)On;
#endif
  }

#if DTB_TELEMETRY
  /// Opens a phase frame. Callers use ProfilePhase, which pairs enter and
  /// exit and remembers whether the profiler was active at entry.
  void enter(const char *Name);
  /// Attributes \p Units of deterministic work to the innermost frame.
  void addCost(uint64_t Units);
  /// Closes the innermost frame and folds it into the aggregates.
  void exit();

  /// Ends the current scavenge's tree: requires every frame closed, then
  /// publishes it as lastTree() and starts a fresh one.
  void finishScavenge();

  /// The completed phase tree of the most recent finishScavenge(), in
  /// pre-order.
  const std::vector<PhaseTreeNode> &lastTree() const { return LastTree; }

  /// Cross-run aggregates, keyed by phase name (std::map: stable sorted
  /// iteration for deterministic export).
  const std::map<std::string, PhaseAggregate> &aggregates() const {
    return Aggregates;
  }

  /// Folds \p Other's aggregates into this profiler. Parallel drivers call
  /// this in a fixed serial order so the merged attribution is independent
  /// of scheduling.
  void mergeFrom(const PhaseProfiler &Other);

  /// Drops all aggregates and any open tree.
  void reset();
#else
  void finishScavenge() {}
  const std::vector<PhaseTreeNode> &lastTree() const {
    static const std::vector<PhaseTreeNode> Empty;
    return Empty;
  }
  const std::map<std::string, PhaseAggregate> &aggregates() const {
    static const std::map<std::string, PhaseAggregate> Empty;
    return Empty;
  }
  void mergeFrom(const PhaseProfiler &) {}
  void reset() {}
#endif

private:
#if DTB_TELEMETRY
  struct Frame {
    const char *Name;
    int TreeIndex;
    uint64_t SelfCost = 0;
    uint64_t ChildTotalCost = 0;
    double ChildWallNanos = 0.0;
    std::chrono::steady_clock::time_point WallStart;
  };

  bool Enabled = false;
  std::vector<Frame> Stack;
  /// Pre-order nodes of the scavenge being recorded; moved to LastTree by
  /// finishScavenge().
  std::vector<PhaseTreeNode> Tree;
  std::vector<PhaseTreeNode> LastTree;
  std::map<std::string, PhaseAggregate> Aggregates;
#endif
};

/// RAII phase scope. Arms itself only when \p Profiler is non-null and
/// active at construction, so a scope opened before recording starts never
/// runs an unmatched exit. An empty no-op type when telemetry is compiled
/// out.
class ProfilePhase {
public:
#if DTB_TELEMETRY
  ProfilePhase(PhaseProfiler *Profiler, const char *Name)
      : Profiler(Profiler && Profiler->active() ? Profiler : nullptr) {
    if (this->Profiler)
      this->Profiler->enter(Name);
  }
  ~ProfilePhase() {
    if (Profiler)
      Profiler->exit();
  }
  /// Attributes \p Units of deterministic work to this phase.
  void addCost(uint64_t Units) {
    if (Profiler)
      Profiler->addCost(Units);
  }
#else
  ProfilePhase(PhaseProfiler *, const char *) {}
  void addCost(uint64_t) {}
#endif

  ProfilePhase(const ProfilePhase &) = delete;
  ProfilePhase &operator=(const ProfilePhase &) = delete;

private:
#if DTB_TELEMETRY
  PhaseProfiler *Profiler;
#endif
};

/// Renders the cost-attribution summary: the top \p TopN phases by self
/// cost with count, self/total cost, self share, p50/p90/p99 and standard
/// deviation of per-entry self cost. Deterministic (wall time excluded).
Table buildCostAttributionTable(const PhaseProfiler &Profiler,
                                size_t TopN = 16);

/// Records every aggregate into the global telemetry metrics registry
/// (histograms "profile.<domain>.<phase>.self_cost" plus counters for
/// totals, and "wall.profile.<domain>.<phase>_ns" for wall time), so the
/// existing telemetry exporters carry the profile. \p Domain is "runtime"
/// or "sim". No-op when telemetry is disabled.
void publishToMetrics(const PhaseProfiler &Profiler,
                      const std::string &Domain);

} // namespace profiling
} // namespace dtb

#endif // DTB_PROFILING_PROFILER_H
