file(REMOVE_RECURSE
  "CMakeFiles/dtb_core.dir/Combinators.cpp.o"
  "CMakeFiles/dtb_core.dir/Combinators.cpp.o.d"
  "CMakeFiles/dtb_core.dir/OptimalPolicies.cpp.o"
  "CMakeFiles/dtb_core.dir/OptimalPolicies.cpp.o.d"
  "CMakeFiles/dtb_core.dir/Policies.cpp.o"
  "CMakeFiles/dtb_core.dir/Policies.cpp.o.d"
  "libdtb_core.a"
  "libdtb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
