//===- tests/runtime_faultmatrix_test.cpp ---------------------------------==//
//
// Exhaustive fault matrix for the abortable incremental collector: a
// reference run of a deterministic scenario counts how often each of the
// three mid-cycle fault sites (incremental-step, cycle-abort,
// watchdog-deadline) is consulted, then the scenario is re-run once per
// (site, hit index, trace-lane mode) with a one-shot fault armed at
// exactly that hit. Every injected run must finish the scenario, fire
// exactly once, and leave a heap that passes the full verifier battery —
// no quantum index is a bad place to fail.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"
#include "runtime/Mutator.h"

#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace dtb;
using namespace dtb::runtime;

namespace {

/// One deterministic end-to-end scenario exercising every phase the new
/// fault sites guard: a stepped cycle with mid-cycle mutation, an explicit
/// abort, mid-cycle allocation pressure (the accelerate / complete-now /
/// abort ladder), and a final full collection. The control flow tolerates
/// an injected fault at any point — a step may report completion because
/// the cycle aborted, pressure may drain or cancel the cycle — so the
/// same code path runs for the reference and every injected variant.
void runScenario(unsigned Lanes) {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Config.QuarantineFreedObjects = true;
  Config.ScavengeBudgetBytes = 2'000;
  Config.TraceThreads = Lanes;
  Config.HeapLimitBytes = 96 * 1024;
  Heap H(Config);
  HandleScope Scope(H);

  for (int C = 0; C != 20; ++C) {
    Object *&Head = Scope.slot(nullptr);
    for (int D = 0; D != 10; ++D) {
      Object *N =
          H.allocate(1, static_cast<uint32_t>((C * 11 + D * 5) % 96));
      H.writeSlot(N, 0, Head);
      Head = N;
      H.allocate(0, 24); // Garbage.
    }
  }

  auto Verify = [&](const char *Where) {
    VerifyResult Verified = verifyHeap(H);
    ASSERT_TRUE(Verified.Ok)
        << Where << ": "
        << (Verified.Problems.empty() ? "" : Verified.Problems.front());
  };

  // Phase 1: a budgeted cycle stepped to completion, with a mutation
  // between quanta that only the insertion barrier keeps sound.
  H.beginIncrementalScavenge(0);
  int Steps = 0;
  while (!H.incrementalScavengeStep()) {
    if (++Steps == 2) {
      Object *&Fresh = Scope.slot(H.allocate(1, 0));
      H.writeSlot(Fresh, 0, H.allocate(0, 40));
    }
  }
  Verify("after stepped cycle");

  // Phase 2: partial progress, then an explicit abort.
  H.beginIncrementalScavenge(H.now() / 2);
  (void)H.incrementalScavengeStep();
  if (H.incrementalScavengeActive())
    H.abortIncrementalScavenge();
  Verify("after explicit abort");

  // Phase 3: allocation pressure against an open cycle — walks the
  // mid-cycle rungs (and, if they fail, the emergency ladder). The
  // allocation itself may be denied under an injected fault storm; only
  // heap soundness is asserted.
  if (!H.incrementalScavengeActive())
    H.beginIncrementalScavenge(0);
  uint64_t Resident = H.residentBytes();
  if (Resident + 1 < Config.HeapLimitBytes)
    (void)H.tryAllocate(
        0, static_cast<uint32_t>(Config.HeapLimitBytes - Resident + 1));
  Verify("after mid-cycle pressure");

  // Phase 4: the final full collection drains or follows whatever state
  // the faults left behind.
  H.collectAtBoundary(0);
  ASSERT_FALSE(H.incrementalScavengeActive());
  Verify("after final full collection");
}

/// The mutator-context variant: the same exhaustive approach driven
/// through N registered contexts from one thread, covering the two sites
/// the multi-mutator protocol adds. BarrierSink guards every delivery of
/// buffered barrier entries to the shared remembered set (capacity flush,
/// safepoint flush, and the world-stopped direct insert);
/// SafepointHandshake is consulted once per registered context at every
/// stop-the-world rendezvous. Both degrade by pessimizing the next
/// collection to a full trace, so the scenario must stay verifier-clean
/// no matter which consult fails.
void runMutatorScenario(unsigned Mutators) {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Config.ScavengeBudgetBytes = 2'000;
  Heap H(Config);
  std::vector<std::unique_ptr<MutatorContext>> Contexts;
  for (unsigned I = 0; I != Mutators; ++I)
    Contexts.push_back(std::make_unique<MutatorContext>(H));

  auto Verify = [&](const char *Where) {
    H.runAtSafepoint([&](Heap &Stopped) {
      VerifyResult Verified = verifyHeap(Stopped);
      ASSERT_TRUE(Verified.Ok)
          << Where << ": "
          << (Verified.Problems.empty() ? "" : Verified.Problems.front());
    });
  };

  // Phase 1: a link mill round-robined across the contexts — enough
  // forward-in-time stores that a single context flushes at capacity and
  // four contexts flush at the next rendezvous.
  for (unsigned I = 0; I != 200; ++I) {
    MutatorContext &Ctx = *Contexts[I % Mutators];
    size_t Idx = Ctx.allocateRooted(1, (I * 7) % 64);
    if (Idx != 0)
      Ctx.writeSlot(Ctx.root(Idx - 1), 0, Ctx.root(Idx));
  }
  Verify("after link mill");

  // Phase 2: a forward store from inside a safepoint callback — the
  // world-stopped path where the entry goes straight to the sink.
  H.runAtSafepoint([&](Heap &) {
    MutatorContext &Ctx = *Contexts.front();
    Ctx.writeSlot(Ctx.root(0), 0, Ctx.root(Ctx.numRoots() - 1));
  });

  // Phase 3: a budgeted cycle stepped to completion, allocating and
  // linking between quanta (every step is one more rendezvous).
  H.beginIncrementalScavenge(H.now() / 2);
  unsigned Step = 0;
  while (!H.incrementalScavengeStep()) {
    MutatorContext &Ctx = *Contexts[Step++ % Mutators];
    size_t Idx = Ctx.allocateRooted(1, 16);
    if (Idx != 0)
      Ctx.writeSlot(Ctx.root(Idx - 1), 0, Ctx.root(Idx));
  }
  Verify("after stepped cycle");

  // Phase 4: drop the churn tails and collect everything that died; the
  // context destructors add one final rendezvous each.
  for (auto &Ctx : Contexts)
    Ctx->truncateRoots(1);
  H.collectAtBoundary(0);
  Verify("after final full collection");
}

} // namespace

TEST(FaultMatrixTest, EveryQuantumSurvivesEveryFaultSite) {
  const FaultSite Sites[] = {FaultSite::IncrementalStep,
                             FaultSite::CycleAbort,
                             FaultSite::WatchdogDeadline};

  for (unsigned Lanes : {1u, 4u}) {
    // Reference run: an installed injector with nothing armed counts how
    // many times each site is consulted (hits accrue even at probability
    // zero), defining the matrix for this lane mode.
    FaultInjector Reference(/*Seed=*/1);
    {
      FaultInjectionScope Scope(Reference);
      runScenario(Lanes);
      if (::testing::Test::HasFatalFailure())
        return;
    }
    ASSERT_EQ(Reference.totalInjections(), 0u);

    for (FaultSite Site : Sites) {
      uint64_t Hits = Reference.hits(Site);
      ASSERT_GT(Hits, 0u) << faultSiteName(Site)
                          << ": scenario never reached the site";
      for (uint64_t Hit = 1; Hit <= Hits; ++Hit) {
        SCOPED_TRACE(std::string("site=") + faultSiteName(Site) +
                     " hit=" + std::to_string(Hit) +
                     " lanes=" + std::to_string(Lanes));
        FaultInjector Injector(/*Seed=*/1);
        Injector.armOneShot(Site, Hit);
        FaultInjectionScope Scope(Injector);
        runScenario(Lanes);
        if (::testing::Test::HasFatalFailure())
          return;
        EXPECT_EQ(Injector.injections(Site), 1u);
      }
    }
  }
}

TEST(FaultMatrixTest, EveryMutatorConsultSurvivesEveryFaultSite) {
  const FaultSite Sites[] = {FaultSite::BarrierSink,
                             FaultSite::SafepointHandshake};

  for (unsigned Mutators : {1u, 4u}) {
    FaultInjector Reference(/*Seed=*/1);
    {
      FaultInjectionScope Scope(Reference);
      runMutatorScenario(Mutators);
      if (::testing::Test::HasFatalFailure())
        return;
    }
    ASSERT_EQ(Reference.totalInjections(), 0u);

    for (FaultSite Site : Sites) {
      uint64_t Hits = Reference.hits(Site);
      ASSERT_GT(Hits, 0u) << faultSiteName(Site)
                          << ": scenario never reached the site";
      for (uint64_t Hit = 1; Hit <= Hits; ++Hit) {
        SCOPED_TRACE(std::string("site=") + faultSiteName(Site) +
                     " hit=" + std::to_string(Hit) +
                     " mutators=" + std::to_string(Mutators));
        FaultInjector Injector(/*Seed=*/1);
        Injector.armOneShot(Site, Hit);
        FaultInjectionScope Scope(Injector);
        runMutatorScenario(Mutators);
        if (::testing::Test::HasFatalFailure())
          return;
        EXPECT_EQ(Injector.injections(Site), 1u);
      }
    }
  }
}
