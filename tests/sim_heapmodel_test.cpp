//===- tests/sim_heapmodel_test.cpp ---------------------------------------==//
//
// Tests for the oracle heap model: threatened/immune partitioning, tenured
// garbage retention, untenuring, and the demographics queries.
//
//===----------------------------------------------------------------------===//

#include "sim/HeapModel.h"

#include "trace/Trace.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::sim;

namespace {
constexpr AllocClock Never = trace::NeverDies;
} // namespace

TEST(HeapModelTest, AddTracksResidentBytes) {
  HeapModel H;
  H.addObject(100, 100, Never);
  H.addObject(150, 50, Never);
  EXPECT_EQ(H.residentBytes(), 150u);
  EXPECT_EQ(H.residentObjects(), 2u);
}

TEST(HeapModelTest, FullScavengeReclaimsExactlyTheDead) {
  HeapModel H;
  H.addObject(100, 100, /*Death=*/300); // Dead at 300.
  H.addObject(200, 100, Never);         // Live.
  H.addObject(300, 100, /*Death=*/900); // Still live at 300.

  ScavengeOutcome Outcome = H.scavenge(/*Now=*/300, /*Boundary=*/0);
  EXPECT_EQ(Outcome.MemBeforeBytes, 300u);
  EXPECT_EQ(Outcome.ReclaimedBytes, 100u);
  EXPECT_EQ(Outcome.TracedBytes, 200u);
  EXPECT_EQ(Outcome.SurvivedBytes, 200u);
  EXPECT_EQ(H.residentBytes(), 200u);
}

TEST(HeapModelTest, ImmuneGarbageBecomesTenured) {
  HeapModel H;
  H.addObject(100, 100, /*Death=*/150); // Dies young...
  H.addObject(200, 100, Never);

  // Boundary at 150: the dead object (born 100) is immune and survives
  // the scavenge as tenured garbage.
  ScavengeOutcome Outcome = H.scavenge(/*Now=*/200, /*Boundary=*/150);
  EXPECT_EQ(Outcome.ReclaimedBytes, 0u);
  EXPECT_EQ(Outcome.TracedBytes, 100u); // Only the young live object.
  EXPECT_EQ(H.residentBytes(), 200u);
  EXPECT_EQ(H.garbageBytes(200), 100u);
}

TEST(HeapModelTest, MovingBoundaryBackUntenures) {
  HeapModel H;
  H.addObject(100, 100, /*Death=*/150);
  H.addObject(200, 100, Never);
  H.scavenge(/*Now=*/200, /*Boundary=*/150); // Tenured garbage remains.

  // A later scavenge with an older boundary reclaims it (demotion).
  ScavengeOutcome Outcome = H.scavenge(/*Now=*/250, /*Boundary=*/0);
  EXPECT_EQ(Outcome.ReclaimedBytes, 100u);
  EXPECT_EQ(H.residentBytes(), 100u);
  EXPECT_EQ(H.garbageBytes(250), 0u);
}

TEST(HeapModelTest, BoundaryIsExclusive) {
  HeapModel H;
  H.addObject(100, 100, /*Death=*/150);
  // Boundary exactly at the object's birth: born *at* 100 is not after
  // 100, so it is immune.
  ScavengeOutcome Outcome = H.scavenge(/*Now=*/200, /*Boundary=*/100);
  EXPECT_EQ(Outcome.ReclaimedBytes, 0u);
  // One tick earlier, it is threatened.
  Outcome = H.scavenge(/*Now=*/200, /*Boundary=*/99);
  EXPECT_EQ(Outcome.ReclaimedBytes, 100u);
}

TEST(HeapModelTest, DeathAtScavengeTimeIsReclaimable) {
  HeapModel H;
  H.addObject(100, 100, /*Death=*/200);
  ScavengeOutcome Outcome = H.scavenge(/*Now=*/200, /*Boundary=*/0);
  EXPECT_EQ(Outcome.ReclaimedBytes, 100u);
}

TEST(HeapModelTest, LiveBytesBornAfter) {
  HeapModel H;
  H.addObject(100, 100, Never);
  H.addObject(200, 100, /*Death=*/250);
  H.addObject(300, 100, Never);

  EXPECT_EQ(H.liveBytesBornAfter(/*Boundary=*/0, /*Now=*/300), 200u);
  EXPECT_EQ(H.liveBytesBornAfter(/*Boundary=*/100, /*Now=*/300), 100u);
  EXPECT_EQ(H.liveBytesBornAfter(/*Boundary=*/0, /*Now=*/240), 300u);
  EXPECT_EQ(H.liveBytesBornAfter(/*Boundary=*/300, /*Now=*/300), 0u);
}

TEST(HeapModelTest, ScavengePreservesBirthOrder) {
  HeapModel H;
  for (int I = 1; I <= 10; ++I)
    H.addObject(static_cast<AllocClock>(I) * 10, 10,
                I % 2 == 0 ? static_cast<AllocClock>(I) * 10 + 5 : Never);
  H.scavenge(/*Now=*/200, /*Boundary=*/35);
  AllocClock Prev = 0;
  for (const ResidentObject &R : H.residents()) {
    EXPECT_GT(R.Birth, Prev);
    Prev = R.Birth;
  }
}

TEST(HeapModelTest, EmptyScavenge) {
  HeapModel H;
  ScavengeOutcome Outcome = H.scavenge(0, 0);
  EXPECT_EQ(Outcome.MemBeforeBytes, 0u);
  EXPECT_EQ(Outcome.TracedBytes, 0u);
  EXPECT_EQ(Outcome.ReclaimedBytes, 0u);
}
