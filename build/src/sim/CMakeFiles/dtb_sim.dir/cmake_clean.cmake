file(REMOVE_RECURSE
  "CMakeFiles/dtb_sim.dir/HeapModel.cpp.o"
  "CMakeFiles/dtb_sim.dir/HeapModel.cpp.o.d"
  "CMakeFiles/dtb_sim.dir/PointerTraffic.cpp.o"
  "CMakeFiles/dtb_sim.dir/PointerTraffic.cpp.o.d"
  "CMakeFiles/dtb_sim.dir/Simulator.cpp.o"
  "CMakeFiles/dtb_sim.dir/Simulator.cpp.o.d"
  "CMakeFiles/dtb_sim.dir/Trigger.cpp.o"
  "CMakeFiles/dtb_sim.dir/Trigger.cpp.o.d"
  "libdtb_sim.a"
  "libdtb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
