# Empty dependencies file for object_cache.
# This may be replaced when dependencies are built.
