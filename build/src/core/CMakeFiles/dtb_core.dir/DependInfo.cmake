
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Combinators.cpp" "src/core/CMakeFiles/dtb_core.dir/Combinators.cpp.o" "gcc" "src/core/CMakeFiles/dtb_core.dir/Combinators.cpp.o.d"
  "/root/repo/src/core/OptimalPolicies.cpp" "src/core/CMakeFiles/dtb_core.dir/OptimalPolicies.cpp.o" "gcc" "src/core/CMakeFiles/dtb_core.dir/OptimalPolicies.cpp.o.d"
  "/root/repo/src/core/Policies.cpp" "src/core/CMakeFiles/dtb_core.dir/Policies.cpp.o" "gcc" "src/core/CMakeFiles/dtb_core.dir/Policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dtb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
