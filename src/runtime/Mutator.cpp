//===- runtime/Mutator.cpp - TLABs, safepoints, buffered barriers --------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The multi-threaded mutator runtime. Two protocols live here:
//
//  * The safepoint rendezvous (Dekker handshake). A context entering an
//    op stores State = Mutating (seq_cst) and then loads the heap's
//    SafepointRequested flag (seq_cst); the collector stores
//    SafepointRequested = true (seq_cst) and then loads every context's
//    State. Sequential consistency guarantees at least one side sees the
//    other, so a context either blocks before touching the heap or the
//    collector waits for its op to finish — an op can never run while the
//    world is stopped.
//
//  * TLAB carving. Blocks are carved from one refill lock; allocation
//    inside a block is owner-exclusive bumping, and births come from one
//    relaxed fetch_add on the shared clock — each allocation claims the
//    disjoint interval (Birth - Gross, Birth], so births stay unique and
//    the clock's final value is the same however threads interleave.
//    With contexts driven round-robin from one thread, the sequence of
//    births is exactly the direct path's (no clock ranges are reserved
//    per block), which is what keeps --mutators conformance replay
//    byte-identical to the simulator oracle.
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "core/MachineModel.h"
#include "profiling/Profiler.h"
#include "runtime/Heap.h"
#include "support/Error.h"
#include "support/FaultInjector.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <new>

using namespace dtb;
using namespace dtb::runtime;
using core::AllocClock;

//===----------------------------------------------------------------------===//
// Heap: world control
//===----------------------------------------------------------------------===//

void Heap::stopWorld() {
  if (worldOwnedByThisThread()) {
    StopDepth += 1;
    return;
  }
  WorldMu.lock();
  WorldOwner.store(std::this_thread::get_id(), std::memory_order_relaxed);
  StopDepth = 1;
  if (!Mutators.empty()) {
    // Wall time of the rendezvous (how long mutators kept us waiting) is
    // a quarantined side channel, like every other wall measurement. The
    // deterministic pause anatomy rides the profiler: the rendezvous
    // phase covers the whole stop (cost = contexts arrived), with the
    // publication and barrier-flush phases nested inside it.
    telemetry::TelemetrySpan Span("runtime.safepoint_rendezvous");
    profiling::ProfilePhase RendezvousPhase(&Profiler,
                                            profiling::phase::Rendezvous);
    SafepointRequested.store(true, std::memory_order_seq_cst);

    // Rendezvous sweep: scan the registration list until every context is
    // counted out, recording each context's arrival and how it was first
    // observed (Mutating = mid-op, Parked, AtSafepoint = polling). The
    // seq_cst loads pair with the contexts' count-in stores (see the file
    // comment); AtSafepoint/Parked both mean "counted out". The straggler
    // is the last context to arrive; several arriving in one sweep
    // resolve to the highest registration index, which keeps the
    // attribution deterministic under single-threaded driving (every
    // context arrives on sweep 0, straggler = last registered).
    size_t N = Mutators.size();
    std::vector<MutatorState> FirstSeen(N, MutatorState::AtSafepoint);
    std::vector<bool> Arrived(N, false);
    std::vector<uint64_t> ArrivalOrder;
    ArrivalOrder.reserve(N);
    size_t LastArriver = 0;
    for (size_t Remaining = N, Sweep = 0; Remaining != 0; ++Sweep) {
      for (size_t I = 0; I != N; ++I) {
        if (Arrived[I])
          continue;
        MutatorState St = Mutators[I]->State.load(std::memory_order_seq_cst);
        if (Sweep == 0)
          FirstSeen[I] = St;
        if (St != MutatorState::Mutating) {
          Arrived[I] = true;
          ArrivalOrder.push_back(Mutators[I]->Id);
          LastArriver = I;
          Remaining -= 1;
        }
      }
      if (Remaining != 0)
        std::this_thread::yield();
    }

    // The handshake fault site fires per context per rendezvous, in
    // registration order: that context's count-out acknowledgment is
    // distrusted.
    bool HandshakeDistrusted = false;
    for (size_t I = 0; I != N; ++I)
      if (faultRequestedAt(FaultSite::SafepointHandshake))
        HandshakeDistrusted = true;

    MutStats.SafepointRendezvous += 1;
    PublicationSummary Pub = publishMutatorState();
    RendezvousPhase.addCost(N);

    // The rendezvous record: deterministic TTSP is the machine-model cost
    // of the pending allocation bytes the stop drained (see
    // runtime/Safepoint.h) — wall latency stays in the span above.
    SafepointRendezvousRecord R;
    R.Serial = MutStats.SafepointRendezvous;
    R.Time = Clock.load(std::memory_order_relaxed);
    R.Contexts = N;
    R.PendingAllocObjects = Pub.Objects;
    R.PendingAllocBytes = Pub.Bytes;
    R.FlushedBarrierEntries = Pub.FlushedBarrierEntries;
    R.TtspMillis = core::MachineModel().pauseMillisForTracedBytes(Pub.Bytes);
    R.StragglerContext = Mutators[LastArriver]->Id;
    R.Straggler = FirstSeen[LastArriver] == MutatorState::Mutating
                      ? StragglerKind::MidOp
                  : FirstSeen[LastArriver] == MutatorState::Parked
                      ? StragglerKind::Parked
                      : StragglerKind::Polling;
    LastRendezvous = R;
    FlightRec.record(FlightEventKind::SafepointRendezvous, R.Time, N,
                     Pub.Bytes, R.StragglerContext);
#if DTB_TELEMETRY
    TtspStats.TtspMillis.add(R.TtspMillis);
    TtspStats.PendingBytes.add(static_cast<double>(Pub.Bytes));
    switch (R.Straggler) {
    case StragglerKind::MidOp:
      TtspStats.StragglerMidOp += 1;
      break;
    case StragglerKind::Parked:
      TtspStats.StragglerParked += 1;
      break;
    case StragglerKind::Polling:
      TtspStats.StragglerPolling += 1;
      break;
    case StragglerKind::None:
      break;
    }
#endif
    if (telemetry::enabled()) {
      telemetry::MetricsRegistry &Registry =
          telemetry::MetricsRegistry::global();
      Registry.counter("runtime.safepoint.rendezvous").add(1);
      Registry.histogram("runtime.safepoint.ttsp_ms").record(R.TtspMillis);
      Registry.histogram("runtime.safepoint.pending_alloc_bytes")
          .record(static_cast<double>(Pub.Bytes));
      std::string Arrivals;
      for (uint64_t Ctx : ArrivalOrder) {
        if (!Arrivals.empty())
          Arrivals += ",";
        Arrivals += std::to_string(Ctx);
      }
      telemetry::Event E;
      E.Phase = telemetry::EventPhase::Instant;
      E.Track = TelemetryTrack;
      E.Name = "safepoint_rendezvous";
      E.ScavengeIndex = History.size();
      E.TsClock = R.Time;
      E.Args.push_back(telemetry::arg("contexts", static_cast<uint64_t>(N)));
      E.Args.push_back(telemetry::arg("pending_alloc_bytes", Pub.Bytes));
      E.Args.push_back(telemetry::arg("flushed_barrier_entries",
                                      Pub.FlushedBarrierEntries));
      E.Args.push_back(telemetry::arg("ttsp_ms", R.TtspMillis));
      E.Args.push_back(
          telemetry::arg("straggler_context", R.StragglerContext));
      E.Args.push_back(telemetry::arg(
          "straggler", std::string(stragglerKindName(R.Straggler))));
      E.Args.push_back(telemetry::arg("arrival_order", std::move(Arrivals)));
      telemetry::recorder().emit(std::move(E));
    }
    if (HandshakeDistrusted && !RemSetPessimized) {
      // A distrusted handshake means the flushed barrier state may be
      // incomplete; pessimizing the next collection to a full trace makes
      // any missed entry irrelevant (same recovery as a barrier fault).
      RemSetPessimized = true;
      recordDegradation({DegradationKind::BoundaryPessimized, Clock, 0, 0,
                         ResidentBytes,
                         "injected safepoint-handshake fault; mutator "
                         "count-in distrusted, next collection pessimized"});
    }
  }
  Phase.store(GcPhase::Collecting, std::memory_order_relaxed);
}

void Heap::resumeWorld() {
  assert(worldOwnedByThisThread() && "resumeWorld without owning the world");
  if (StopDepth > 1) {
    StopDepth -= 1;
    return;
  }
  Phase.store(GcPhase::NotCollecting, std::memory_order_release);
  StopDepth = 0;
  WorldOwner.store(std::thread::id(), std::memory_order_relaxed);
  {
    // The lock orders the clear against waiters' predicate checks, so no
    // count-in can miss the wakeup.
    std::lock_guard<std::mutex> Lock(SafepointMu);
    SafepointRequested.store(false, std::memory_order_seq_cst);
  }
  SafepointCv.notify_all();
  WorldMu.unlock();
}

Heap::PublicationSummary Heap::publishMutatorState() {
  PublicationSummary Sum;
  size_t Old = Objects.size();
  {
    profiling::ProfilePhase Publication(&Profiler,
                                        profiling::phase::Publication);
    for (MutatorContext *Ctx : Mutators) {
      uint64_t Added = Ctx->Pending.size();
      Sum.Objects += Added;
      for (const Object *O : Ctx->Pending)
        Sum.Bytes += O->grossBytes();
#if DTB_TELEMETRY
      Ctx->S.Obs.PublishedObjects += Added;
#endif
      Objects.insert(Objects.end(), Ctx->Pending.begin(), Ctx->Pending.end());
      Ctx->Pending.clear();
    }
    if (Sum.Objects != 0) {
      // Each context's pending run is already birth-ordered (ops on a
      // context are sequential); sorting the combined tail and merging
      // restores the global birth order in O(new log new + resident).
      auto ByBirth = [](const Object *A, const Object *B) {
        return A->birth() < B->birth();
      };
      std::sort(Objects.begin() + static_cast<ptrdiff_t>(Old), Objects.end(),
                ByBirth);
      std::inplace_merge(Objects.begin(),
                         Objects.begin() + static_cast<ptrdiff_t>(Old),
                         Objects.end(), ByBirth);
      MutStats.PublishedObjects += Sum.Objects;
    }
    Publication.addCost(Sum.Bytes);
  }
  {
    profiling::ProfilePhase Flush(&Profiler, profiling::phase::BarrierFlush);
    for (MutatorContext *Ctx : Mutators)
      Sum.FlushedBarrierEntries +=
          Ctx->flushBarrierBuffer(/*WorldStopped=*/true);
    Flush.addCost(Sum.FlushedBarrierEntries);
  }
  for (MutatorContext *Ctx : Mutators) {
    if (Inc.Active)
      Inc.PendingGray.insert(Inc.PendingGray.end(), Ctx->GreyBuffer.begin(),
                             Ctx->GreyBuffer.end());
    Ctx->GreyBuffer.clear();
  }
  if (telemetry::enabled()) {
    // One counter sample per context per safepoint, on a per-mutator
    // track ("heap#0/mutator#2"): the Chrome-trace view of each
    // context's allocation and barrier behavior over logical time.
    uint64_t Now = Clock.load(std::memory_order_relaxed);
    for (MutatorContext *Ctx : Mutators) {
      telemetry::Event E;
      E.Phase = telemetry::EventPhase::Counter;
      E.Track = TelemetryTrack + "/mutator#" + std::to_string(Ctx->Id);
      E.Name = "mutator";
      E.ScavengeIndex = History.size();
      E.TsClock = Now;
      E.Args.push_back(telemetry::arg("alloc_bytes", Ctx->S.AllocatedBytes));
      E.Args.push_back(telemetry::arg("allocations", Ctx->S.Allocations));
      E.Args.push_back(
          telemetry::arg("barrier_flushes", Ctx->S.BarrierFlushes));
#if DTB_TELEMETRY
      E.Args.push_back(telemetry::arg("barrier_high_water",
                                      Ctx->S.Obs.BarrierHighWater));
      E.Args.push_back(
          telemetry::arg("tlab_waste_bytes", Ctx->S.Obs.TlabWastedBytes));
#endif
      telemetry::recorder().emit(std::move(E));
    }
  }
  // The demographics' allocation counter is maintained per-allocation on
  // the direct path; context allocations defer it to publication (it only
  // feeds policy decisions, which run world-stopped after this).
  Demographics.setBytesSinceLastScavenge(BytesSinceCollect);
  return Sum;
}

void Heap::runAtSafepoint(const std::function<void(Heap &)> &AtCollect,
                          const std::function<void(Heap &)> &AtRestore) {
  stopWorld();
  if (AtCollect)
    AtCollect(*this);
  Phase.store(GcPhase::Restoring, std::memory_order_relaxed);
  if (AtRestore)
    AtRestore(*this);
  resumeWorld();
}

//===----------------------------------------------------------------------===//
// Heap: TLAB block management
//===----------------------------------------------------------------------===//

Heap::TlabBlock *Heap::carveTlab(uint64_t Bytes) {
  auto Block = std::make_unique<TlabBlock>();
  Block->Begin = static_cast<char *>(::operator new(Bytes));
  Block->End = Block->Begin + Bytes;
  Block->Cursor = Block->Begin;
  TlabBlock *Raw = Block.get();
  // Keep the table sorted by Begin so tlabBlockFor can binary-search.
  auto It = std::lower_bound(
      TlabBlocks.begin(), TlabBlocks.end(), Block->Begin,
      [](const std::unique_ptr<TlabBlock> &B, const char *Begin) {
        return B->Begin < Begin;
      });
  TlabBlocks.insert(It, std::move(Block));
  MutStats.TlabRefills += 1;
  MutStats.TlabCarvedBytes += Bytes;
  if (telemetry::enabled()) {
    static telemetry::Counter &Refills =
        telemetry::MetricsRegistry::global().counter("runtime.tlab.refills");
    static telemetry::Counter &Carved =
        telemetry::MetricsRegistry::global().counter(
            "runtime.tlab.carved_bytes");
    Refills.add(1);
    Carved.add(Bytes);
  }
  return Raw;
}

void Heap::retireTlab(TlabBlock *Block) {
  Block->Retired = true;
  MutStats.TlabWastedBytes +=
      static_cast<uint64_t>(Block->End - Block->Cursor);
  Block->Cursor = Block->End;
  // A retired block that never received a surviving object (e.g. retired
  // because an oversized request forced a refill immediately) is returned
  // right away... but only once no object inside it is resident, which is
  // exactly LiveObjects == 0.
  if (Block->LiveObjects == 0)
    freeTlabBlock(Block);
}

Heap::TlabBlock *Heap::tlabBlockFor(const Object *O) {
  const char *P = reinterpret_cast<const char *>(O);
  auto It = std::upper_bound(
      TlabBlocks.begin(), TlabBlocks.end(), P,
      [](const char *Ptr, const std::unique_ptr<TlabBlock> &B) {
        return Ptr < B->Begin;
      });
  if (It == TlabBlocks.begin())
    return nullptr;
  TlabBlock *Block = std::prev(It)->get();
  return P < Block->End ? Block : nullptr;
}

void Heap::freeTlabBlock(TlabBlock *Block) {
  auto It = std::lower_bound(
      TlabBlocks.begin(), TlabBlocks.end(), Block->Begin,
      [](const std::unique_ptr<TlabBlock> &B, const char *Begin) {
        return B->Begin < Begin;
      });
  DTB_CHECK(It != TlabBlocks.end() && It->get() == Block,
            "freeing a TLAB block not in the block table");
  ::operator delete(Block->Begin);
  TlabBlocks.erase(It);
  MutStats.TlabBlocksFreed += 1;
}

MutatorRuntimeStats Heap::mutatorStats() const {
  MutatorRuntimeStats Out = MutStats;
  Out.TlabBlocksResident = TlabBlocks.size();
  return Out;
}

std::vector<std::pair<const void *, const void *>>
Heap::tlabBlockRanges() const {
  std::vector<std::pair<const void *, const void *>> Ranges;
  Ranges.reserve(TlabBlocks.size());
  for (const auto &Block : TlabBlocks)
    Ranges.emplace_back(Block->Begin, Block->End);
  return Ranges;
}

void Heap::barrierSinkFailed(bool Locked) {
  if (Locked) {
    handleRemSetOverflow("injected barrier-sink fault; flush distrusted");
    return;
  }
  std::lock_guard<std::mutex> Lock(SinkMu);
  handleRemSetOverflow("injected barrier-sink fault; flush distrusted");
}

//===----------------------------------------------------------------------===//
// MutatorContext: registration and the count-in/count-out protocol
//===----------------------------------------------------------------------===//

MutatorContext::MutatorContext(Heap &H) : H(H) {
  // Registration synchronizes with any in-flight collection by briefly
  // owning the stopped world.
  H.stopWorld();
  Id = ++H.NextMutatorId;
  H.Mutators.push_back(this);
  H.resumeWorld();
}

MutatorContext::~MutatorContext() {
  // The terminal safepoint publishes our pending allocations and flushes
  // the barrier buffer (stopWorld does both); the TLAB is retired so its
  // storage can be reclaimed once its objects die.
  H.stopWorld();
  if (Tlab) {
    H.retireTlab(Tlab);
    Tlab = nullptr;
  }
  auto It = std::find(H.Mutators.begin(), H.Mutators.end(), this);
  DTB_CHECK(It != H.Mutators.end(), "destroying an unregistered context");
  H.Mutators.erase(It);
  H.resumeWorld();
}

void MutatorContext::countIn() {
  for (;;) {
    State.store(MutatorState::Mutating, std::memory_order_seq_cst);
    if (!H.SafepointRequested.load(std::memory_order_seq_cst))
      return;
    if (H.worldOwnedByThisThread())
      return; // A safepoint callback is driving this context.
    // A rendezvous is open: step back out and wait for the release, then
    // retry (another rendezvous may open before we re-enter).
    State.store(MutatorState::AtSafepoint, std::memory_order_seq_cst);
    yieldAtSafepoint();
  }
}

void MutatorContext::countOut() {
  State.store(MutatorState::AtSafepoint, std::memory_order_release);
}

void MutatorContext::yieldAtSafepoint() {
  S.SafepointYields += 1;
  std::unique_lock<std::mutex> Lock(H.SafepointMu);
  H.SafepointCv.wait(Lock, [&] {
    return !H.SafepointRequested.load(std::memory_order_relaxed);
  });
}

void MutatorContext::safepoint() {
#if DTB_TELEMETRY
  S.Obs.SafepointPolls += 1;
#endif
  if (H.SafepointRequested.load(std::memory_order_seq_cst) &&
      !H.worldOwnedByThisThread())
    yieldAtSafepoint();
}

void MutatorContext::park() {
#if DTB_TELEMETRY
  S.Obs.Parks += 1;
#endif
  State.store(MutatorState::Parked, std::memory_order_release);
}

void MutatorContext::unpark() {
#if DTB_TELEMETRY
  S.Obs.Unparks += 1;
#endif
  // If a rendezvous is open, honor the park contract — do not flip to
  // AtSafepoint until the world is released (both states are equally
  // invisible to the collector, but the caller's next op would block at
  // count-in anyway; waiting here keeps unpark's "blocks while stopped"
  // documentation honest).
  if (H.SafepointRequested.load(std::memory_order_seq_cst) &&
      !H.worldOwnedByThisThread())
    yieldAtSafepoint();
  State.store(MutatorState::AtSafepoint, std::memory_order_release);
}

size_t MutatorContext::addRoot(Object *Initial) {
  // Registering a root is a heap op: it must not race the collector's
  // root scan.
  countIn();
  Roots.push_back(Initial);
  size_t Index = Roots.size() - 1;
  countOut();
  return Index;
}

void MutatorContext::truncateRoots(size_t Count) {
  countIn();
  DTB_CHECK(Count <= Roots.size(), "truncating roots beyond the root count");
  Roots.resize(Count);
  countOut();
}

//===----------------------------------------------------------------------===//
// MutatorContext: allocation
//===----------------------------------------------------------------------===//

Object *MutatorContext::allocate(uint32_t NumSlots, uint32_t RawBytes) {
  Object *O = tryAllocate(NumSlots, RawBytes);
  if (!O)
    fatalError("heap limit cannot be satisfied even after an emergency "
               "full collection; use tryAllocate for a recoverable OOM");
  return O;
}

Object *MutatorContext::tryAllocate(uint32_t NumSlots, uint32_t RawBytes) {
  countIn();
  Object *O = allocateInOp(NumSlots, RawBytes);
  countOut();
  return O;
}

size_t MutatorContext::allocateRooted(uint32_t NumSlots, uint32_t RawBytes) {
  countIn();
  Object *O = allocateInOp(NumSlots, RawBytes);
  if (!O)
    fatalError("heap limit cannot be satisfied even after an emergency "
               "full collection; use tryAllocate for a recoverable OOM");
  Roots.push_back(O);
  size_t Index = Roots.size() - 1;
  countOut();
  return Index;
}

Object *MutatorContext::allocateInOp(uint32_t NumSlots, uint32_t RawBytes) {
  constexpr uint32_t MaxSlots = 1u << 24;
  constexpr uint32_t MaxRaw = 1u << 28;
  if (NumSlots > MaxSlots || RawBytes > MaxRaw)
    fatalError("allocation exceeds object size limits");

  // Trigger check, mirroring Heap::maybeTriggerCollection: collect before
  // satisfying the request so the new object cannot be reclaimed before
  // the mutator roots it. The context counts out around the collection —
  // a context blocked inside collect() while Mutating would deadlock the
  // rendezvous it is about to request.
  if (H.Config.TriggerBytes != 0 && H.Policy &&
      !H.InCollection.load(std::memory_order_relaxed) &&
      !H.IncActiveFlag.load(std::memory_order_relaxed) &&
      H.BytesSinceCollect.load(std::memory_order_relaxed) >=
          H.Config.TriggerBytes &&
      !H.worldOwnedByThisThread()) {
    countOut();
    H.collect();
    S.TriggeredCollections += 1;
    countIn();
  }

  uint64_t Gross = sizeof(Object) +
                   static_cast<uint64_t>(NumSlots) * sizeof(Object *) +
                   RawBytes;

  // Headroom: the fast path pre-checks pressure lock-free; only genuine
  // pressure (or an injected Allocation fault) stops the world and walks
  // the shared degradation ladder.
  bool Injected = faultRequestedAt(FaultSite::Allocation);
  auto overLimit = [&] {
    return H.Config.HeapLimitBytes != 0 &&
           H.ResidentBytes.load(std::memory_order_relaxed) + Gross >
               H.Config.HeapLimitBytes;
  };
  if (Injected || overLimit()) {
    const char *Why =
        overLimit() ? "heap limit reached" : "injected allocation fault";
    countOut();
    H.stopWorld();
    bool Ok = H.runPressureLadder(Gross, Why);
    if (!Ok)
      H.recordDegradation({DegradationKind::AllocationFailure, H.Clock,
                           Gross, H.Config.HeapLimitBytes, H.ResidentBytes,
                           "degradation ladder exhausted"});
    H.resumeWorld();
    countIn();
    if (!Ok)
      return nullptr;
  }

  // Aligned footprint inside a TLAB block (headers need 8-byte alignment;
  // dedicated storage gets it from operator new).
  uint64_t Need = (Gross + 7) & ~uint64_t(7);
  Object *O;
  if (Need * 4 > H.Config.TlabBytes) {
    O = allocateHumongous(Gross, NumSlots, RawBytes);
  } else {
    if (!Tlab || static_cast<uint64_t>(Tlab->End - Tlab->Cursor) < Need)
      refillTlab(Need);
    char *Memory = Tlab->Cursor;
    Tlab->Cursor += Need;
    Tlab->LiveObjects += 1;
    std::memset(Memory, 0, static_cast<size_t>(Need));
    O = new (Memory) Object();
    O->Magic = Object::MagicAlive;
    O->Storage = Object::StorageTlab;
    O->NumSlots = NumSlots;
    O->RawBytes = RawBytes;
    O->GrossBytes = static_cast<uint32_t>(Gross);
  }
  // One relaxed fetch_add claims this allocation's disjoint clock
  // interval; births stay unique and monotone per context however threads
  // interleave, and single-threaded driving reproduces the direct path's
  // clock sequence exactly.
  O->Birth = H.Clock.fetch_add(Gross, std::memory_order_relaxed) + Gross;
  Pending.push_back(O);
  H.ResidentBytes.fetch_add(Gross, std::memory_order_relaxed);
  H.BytesSinceCollect.fetch_add(Gross, std::memory_order_relaxed);
  S.Allocations += 1;
  S.AllocatedBytes += Gross;
  if (telemetry::enabled()) {
    static telemetry::Counter &AllocCount =
        telemetry::MetricsRegistry::global().counter("runtime.alloc.count");
    static telemetry::Counter &AllocBytes =
        telemetry::MetricsRegistry::global().counter("runtime.alloc.bytes");
    AllocCount.add(1);
    AllocBytes.add(Gross);
  }
  return O;
}

Object *MutatorContext::allocateHumongous(uint64_t Gross, uint32_t NumSlots,
                                          uint32_t RawBytes) {
  void *Memory = ::operator new(Gross);
  std::memset(Memory, 0, Gross);
  Object *O = new (Memory) Object();
  O->Magic = Object::MagicAlive;
  O->Storage = Object::StorageOwn;
  O->NumSlots = NumSlots;
  O->RawBytes = RawBytes;
  O->GrossBytes = static_cast<uint32_t>(Gross);
  S.HumongousAllocations += 1;
  return O;
}

void MutatorContext::refillTlab(uint64_t Need) {
  std::lock_guard<std::mutex> Lock(H.RefillMu);
  if (Tlab) {
#if DTB_TELEMETRY
    // The tail the heap-level retire accounting calls waste, attributed
    // to the context that abandoned it.
    S.Obs.TlabWastedBytes += static_cast<uint64_t>(Tlab->End - Tlab->Cursor);
#endif
    H.retireTlab(Tlab);
  }
  uint64_t Bytes = std::max<uint64_t>(H.Config.TlabBytes, Need);
  Tlab = H.carveTlab(Bytes);
  S.TlabRefills += 1;
#if DTB_TELEMETRY
  S.Obs.TlabCarvedBytes += Bytes;
#endif
}

//===----------------------------------------------------------------------===//
// MutatorContext: the phase-dependent write barrier
//===----------------------------------------------------------------------===//

void MutatorContext::writeSlot(Object *Source, uint32_t SlotIndex,
                               Object *Value) {
  countIn();
  DTB_CHECK(Source && Source->isAlive(), "store into a dead object");
  DTB_CHECK(!Value || Value->isAlive(), "storing a dead object reference");
  DTB_CHECK(SlotIndex < Source->numSlots(), "slot index out of range");
  Source->setSlotRaw(SlotIndex, Value);
  // Incremental greying between quanta, buffered per context and drained
  // into the cycle's pending-gray set at the next safepoint (the next
  // step re-greys from there before tracing). The atomic mirrors let this
  // run without stopping the world; Inc.* itself is world-stopped state.
  if (Value && H.IncActiveFlag.load(std::memory_order_relaxed)) {
    AllocClock Boundary = H.IncBoundaryAtomic.load(std::memory_order_relaxed);
    AllocClock BlackClock =
        H.IncBlackClockAtomic.load(std::memory_order_relaxed);
    if (Value->birth() > Boundary && Value->birth() <= BlackClock &&
        !Value->isMarked())
      GreyBuffer.push_back(Value);
  }
  if (Value && Value->birth() > Source->birth()) {
    S.BarrierBufferedEntries += 1;
    if (H.Phase.load(std::memory_order_relaxed) == GcPhase::NotCollecting) {
      // Free-running phase: buffer locally, flush at capacity. The flush
      // is the only store-path step that takes a lock.
      BarrierBuffer.emplace_back(Source, SlotIndex);
#if DTB_TELEMETRY
      if (BarrierBuffer.size() > S.Obs.BarrierHighWater)
        S.Obs.BarrierHighWater = BarrierBuffer.size();
#endif
      if (BarrierBuffer.size() >= BarrierFlushThreshold)
        flushBarrierBuffer(/*WorldStopped=*/false);
    } else {
      // COLLECTING/RESTORING: the world is stopped and this store comes
      // from a safepoint callback driving the context — the collector
      // consumes the set in these phases, so the entry lands immediately.
      if (faultRequestedAt(FaultSite::BarrierSink)) {
        H.barrierSinkFailed(/*Locked=*/true);
      } else {
        H.RemSet.insert(Source, SlotIndex);
        if (H.Config.RemSetMaxEntries != 0 &&
            H.RemSet.size() > H.Config.RemSetMaxEntries)
          H.handleRemSetOverflow("remembered-set entry bound exceeded");
      }
    }
  }
  countOut();
}

uint64_t MutatorContext::flushBarrierBuffer(bool WorldStopped) {
  if (BarrierBuffer.empty())
    return 0;
  uint64_t Count = BarrierBuffer.size();
  S.BarrierFlushes += 1;
  if (faultRequestedAt(FaultSite::BarrierSink)) {
    // The flush "failed": these entries cannot be trusted to have landed.
    // Dropping them is safe because the response pessimizes the next
    // collection to a full trace (handleRemSetOverflow), which cannot
    // miss a crossing pointer.
    BarrierBuffer.clear();
    H.barrierSinkFailed(/*Locked=*/WorldStopped);
    return 0;
  }
  auto Deliver = [&] {
    for (const auto &Entry : BarrierBuffer)
      H.RemSet.insert(Entry.first, Entry.second);
    if (H.Config.RemSetMaxEntries != 0 &&
        H.RemSet.size() > H.Config.RemSetMaxEntries)
      H.handleRemSetOverflow("remembered-set entry bound exceeded");
    H.MutStats.BarrierFlushes += 1;
    H.MutStats.BarrierFlushedEntries += Count;
  };
  if (WorldStopped) {
    Deliver();
  } else {
    std::lock_guard<std::mutex> Lock(H.SinkMu);
    Deliver();
  }
  BarrierBuffer.clear();
  return Count;
}

void MutatorContext::flushWriteBarrier() {
  countIn();
  flushBarrierBuffer(H.worldOwnedByThisThread());
  countOut();
}
