//===- bench/fig1_nepotism.cpp - The paper's Figure 1 on a real heap -----===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// Reconstructs Figure 1's object graph on the managed runtime and walks
// through the paper's narrative, printing the heap state at each step:
//
//   * a generational (FIXED1-style) boundary strands tenured garbage
//     (I, J) and keeps F alive through nepotism;
//   * the remembered set keeps K alive across the boundary (pointer k);
//   * a dynamic boundary moved back in time untenures I, J, and F and
//     reclaims them without a full collection.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"

#include "support/CommandLine.h"
#include "support/Table.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>
#include <map>
#include <string>

using namespace dtb;
using namespace dtb::runtime;

namespace {

struct Fig1Heap {
  Heap H;
  std::map<std::string, Object *> Named;

  Fig1Heap() : H(HeapConfig{/*TriggerBytes=*/0,
                            /*QuarantineFreedObjects=*/true}) {}

  Object *make(const std::string &Name, uint32_t Slots) {
    Object *O = H.allocate(Slots, /*RawBytes=*/8);
    Named[Name] = O;
    return O;
  }

  void printState(const char *Caption) {
    std::printf("%s\n", Caption);
    Table T({"Object", "Birth", "State"});
    for (const auto &[Name, O] : Named)
      T.addRow({Name, Table::cell(static_cast<uint64_t>(O->birth())),
                O->isAlive() ? "resident" : "reclaimed"});
    T.print(stdout);
    std::printf("  resident bytes: %llu, remembered-set entries: %zu\n\n",
                static_cast<unsigned long long>(H.residentBytes()),
                H.rememberedSet().size());
  }
};

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Parser("Walks the paper's Figure 1 object graph on the "
                      "managed runtime");
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;

  std::printf("Figure 1: Dynamic Threatening Boundary vs Generations\n");
  std::printf("======================================================\n\n");

  Fig1Heap F;
  Heap &H = F.H;
  HandleScope Roots(H);

  // Old objects (will be immune under the generational boundary).
  // K..G mirror the paper's oldest-to-youngest layout; roots reach the
  // live ones.
  Object *&K = Roots.slot(F.make("K", 1));
  Object *J = F.make("J", 1); // Will become tenured garbage.
  Object *I = F.make("I", 1); // Will become tenured garbage.
  Object *&G = Roots.slot(F.make("G", 1));
  (void)G;

  // The generational boundary: everything allocated after this point is
  // "Generation 0".
  core::AllocClock TbMin = H.now();

  Object *&D = Roots.slot(F.make("D", 2));
  Object *E = F.make("E", 1); // Young garbage.
  (void)E;
  Object *FObj = F.make("F", 1);
  Object *B = F.make("B", 1); // Young garbage.
  (void)B;
  Object *&A = Roots.slot(F.make("A", 1));
  (void)A;

  // Pointers (lower-case labels in the spirit of the figure):
  //   d: D -> Y1, a forward-in-time pointer to a live young object
  //      (remembered; the boundary-crossing root of scavenge 1);
  //   f: I -> F, tenured garbage pointing at a young unreachable object —
  //      the nepotism pointer;
  //   (J -> I): a chain within the tenured garbage;
  //   k: D -> K, backward-in-time — never remembered, K stays reachable
  //      through normal tracing.
  Object *Young1 = F.make("Y1", 0); // D's live young child (pointer d).
  H.writeSlot(D, 0, Young1);
  H.writeSlot(I, 0, FObj); // f: garbage I keeps F via nepotism.
  H.writeSlot(J, 0, I);    // Chain of tenured garbage.
  H.writeSlot(D, 1, K);    // Backward-in-time: no remembered entry needed.

  F.printState("Initial heap (roots: A, D, G, K):");

  // Drop K's direct root: K stays reachable only through D's backward
  // pointer; drop nothing else. I and J were never rooted.
  K = nullptr;

  std::printf("Scavenge 1: generational boundary at TB_min (only young "
              "objects threatened)\n");
  core::ScavengeRecord S1 = H.collectAtBoundary(TbMin);
  std::printf("  traced %llu bytes, reclaimed %llu bytes\n\n",
              static_cast<unsigned long long>(S1.TracedBytes),
              static_cast<unsigned long long>(S1.ReclaimedBytes));
  F.printState("After scavenge 1:");
  std::printf("  -> B and E (young garbage) are gone; I and J survive as\n"
              "     tenured garbage; F survives only because the dead-but-\n"
              "     immune I still points at it (nepotism).\n\n");

  std::printf("Scavenge 2: dynamic boundary moved back to time 0 "
              "(untenuring)\n");
  core::ScavengeRecord S2 = H.collectAtBoundary(0);
  std::printf("  traced %llu bytes, reclaimed %llu bytes\n\n",
              static_cast<unsigned long long>(S2.TracedBytes),
              static_cast<unsigned long long>(S2.ReclaimedBytes));
  F.printState("After scavenge 2:");
  std::printf("  -> I, J and F are reclaimed: the dynamic threatening\n"
              "     boundary collected the tenured garbage without any\n"
              "     generation having to fill up. K remains: it is\n"
              "     reachable from D.\n\n");

  VerifyResult Result = verifyHeap(H);
  std::printf("Heap verifier: %s\n", Result.Ok ? "OK" : "FAILED");
  return Result.Ok ? 0 : 1;
}
