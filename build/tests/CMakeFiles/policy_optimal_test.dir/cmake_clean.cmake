file(REMOVE_RECURSE
  "CMakeFiles/policy_optimal_test.dir/policy_optimal_test.cpp.o"
  "CMakeFiles/policy_optimal_test.dir/policy_optimal_test.cpp.o.d"
  "policy_optimal_test"
  "policy_optimal_test.pdb"
  "policy_optimal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_optimal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
