# Empty compiler generated dependencies file for table4_cpu_overhead.
# This may be replaced when dependencies are built.
