# Empty compiler generated dependencies file for ablation_trigger_policy.
# This may be replaced when dependencies are built.
