//===- bench/runtime_end_to_end.cpp - Policies on the real runtime -------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The paper evaluates its policies by oracle simulation; this bench runs
// the same comparison on the *real* managed runtime, where liveness comes
// from actual reachability, the remembered set from the actual write
// barrier, and FEEDMED-style demographics from the survivor table — no
// oracle anywhere. A deterministic mutator reproduces a scaled GHOST-like
// demography (short-lived churn + a medium band + an immortal trickle);
// each policy collects under a 100 KB trigger with proportionally scaled
// budgets. The orderings of Tables 2/4 must survive the loss of the
// oracle; this bench shows they do.
//
//===----------------------------------------------------------------------===//

#include "core/OptimalPolicies.h"
#include "core/Policies.h"
#include "report/Experiments.h"
#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"
#include "support/CommandLine.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "support/Units.h"
#include "telemetry/Export.h"
#include "telemetry/TelemetryCli.h"
#include "trace/TraceStats.h"

#include <chrono>
#include <cstdio>
#include <queue>
#include <vector>

using namespace dtb;
using runtime::HandleScope;
using runtime::Heap;
using runtime::Object;

namespace {

/// A GHOST-like mutator: 98.4% of bytes die with ~4 KB exponential
/// lifetimes, 0.4% live 105-340 KB (the tenured-garbage band at 1/10
/// scale), 1.2% are immortal.
class ScaledMutator {
public:
  ScaledMutator(Heap &H, HandleScope &Scope, uint64_t Seed)
      : H(H), Scope(Scope), R(Seed) {}

  void run(uint64_t TotalBytes) {
    while (H.now() < TotalBytes) {
      releaseDead();
      allocateOne();
    }
    releaseDead();
  }

private:
  struct Pending {
    core::AllocClock DeathClock;
    size_t SlotIndex;
    bool operator<(const Pending &Other) const {
      return DeathClock > Other.DeathClock; // Min-heap.
    }
  };

  Object *&slotAt(size_t Index) { return *Slots[Index]; }

  size_t acquireSlot(Object *O) {
    if (!FreeSlots.empty()) {
      size_t Index = FreeSlots.back();
      FreeSlots.pop_back();
      slotAt(Index) = O;
      return Index;
    }
    Slots.push_back(&Scope.slot(O));
    return Slots.size() - 1;
  }

  void allocateOne() {
    auto RawBytes = static_cast<uint32_t>(16 + R.nextBelow(64));
    Object *O = H.allocate(/*NumSlots=*/1, RawBytes);

    double Class = R.nextDouble();
    if (Class < 0.012) {
      // Immortal: keep a permanent slot.
      acquireSlot(O);
      return;
    }
    double Lifetime = Class < 0.016
                          ? 105'000.0 + R.nextDouble() * 235'000.0 // Medium.
                          : R.nextExponential(4'000.0);            // Short.
    size_t Index = acquireSlot(O);
    Deaths.push({H.now() + static_cast<core::AllocClock>(Lifetime), Index});
  }

  void releaseDead() {
    while (!Deaths.empty() && Deaths.top().DeathClock <= H.now()) {
      size_t Index = Deaths.top().SlotIndex;
      Deaths.pop();
      slotAt(Index) = nullptr;
      FreeSlots.push_back(Index);
    }
  }

  Heap &H;
  HandleScope &Scope;
  Rng R;
  std::vector<Object **> Slots;
  std::vector<size_t> FreeSlots;
  std::priority_queue<Pending> Deaths;
};

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// --timing: wall-clock the two perf-critical paths and emit JSON so the
/// numbers are comparable across PRs:
///
///  * report::ExperimentGrid::paperGrid with the requested --threads
///    versus a forced serial run (the parallel-engine speedup);
///  * a simulation of the largest paper workload under the oracle
///    memory-first boundary search with the indexed HeapModel versus the
///    retained naive scans (the indexed-query speedup).
///
/// The figures are published as "timing." gauges in the telemetry metrics
/// registry and printed through telemetry::writeMetricsJson — the same
/// code path --telemetry-out uses — instead of a hand-rolled emitter.
int runTimingMode(uint64_t Threads) {
  using Clock = std::chrono::steady_clock;
  unsigned Lanes =
      Threads == 0 ? defaultThreadCount() : static_cast<unsigned>(Threads);

  report::ExperimentConfig GridConfig;
  GridConfig.Threads = Lanes;
  auto Start = Clock::now();
  report::ExperimentGrid::paperGrid(GridConfig);
  double ParallelSec = secondsSince(Start);

  GridConfig.Threads = 1;
  Start = Clock::now();
  report::ExperimentGrid::paperGrid(GridConfig);
  double SerialSec = secondsSince(Start);

  const workload::WorkloadSpec *Largest = nullptr;
  for (const workload::WorkloadSpec &Spec : workload::paperWorkloads())
    if (!Largest || Spec.TotalAllocationBytes > Largest->TotalAllocationBytes)
      Largest = &Spec;
  trace::Trace T = workload::generateTrace(*Largest);

  sim::SimulatorConfig SimConfig;
  SimConfig.ProgramSeconds = Largest->ProgramSeconds;
  // The query-heaviest policy: the oracle boundary search for the memory
  // constraint binary-searches the boundary with a pair of demographics
  // queries per probe. A budget just above the mean live size binds at
  // every scavenge, so the search actually runs — with a loose budget the
  // policy takes the newest-boundary early exit and the queries being
  // measured never execute.
  trace::TraceStats Stats = trace::computeTraceStats(T);
  auto MemBudget = static_cast<uint64_t>(Stats.LiveMeanBytes * 1.2);
  core::OptimalMemoryPolicy MemFirst(MemBudget);

  Start = Clock::now();
  sim::SimulationResult Indexed = sim::simulate(T, MemFirst, SimConfig);
  double IndexedSec = secondsSince(Start);

  SimConfig.UseNaiveHeapQueries = true;
  Start = Clock::now();
  sim::SimulationResult Scanned = sim::simulate(T, MemFirst, SimConfig);
  double ScanSec = secondsSince(Start);

  if (Indexed.TotalTracedBytes != Scanned.TotalTracedBytes ||
      Indexed.NumScavenges != Scanned.NumScavenges) {
    std::fprintf(stderr, "error: indexed and scan runs disagree\n");
    return 1;
  }

  // The workload/policy identity travels on stderr (JSON stays numeric);
  // it is fixed anyway: the largest paper workload under mem-first.
  std::fprintf(stderr, "timing workload: %s, policy: mem-first (oracle "
                       "boundary search)\n",
               Largest->Name.c_str());

  telemetry::MetricsRegistry &Reg = telemetry::MetricsRegistry::global();
  Reg.gauge("timing.threads").set(Lanes);
  Reg.gauge("timing.grid.serial_seconds").set(SerialSec);
  Reg.gauge("timing.grid.parallel_seconds").set(ParallelSec);
  Reg.gauge("timing.grid.speedup")
      .set(ParallelSec > 0.0 ? SerialSec / ParallelSec : 0.0);
  Reg.gauge("timing.heap_queries.mem_budget_bytes")
      .set(static_cast<double>(MemBudget));
  Reg.gauge("timing.heap_queries.scan_seconds").set(ScanSec);
  Reg.gauge("timing.heap_queries.indexed_seconds").set(IndexedSec);
  Reg.gauge("timing.heap_queries.speedup")
      .set(IndexedSec > 0.0 ? ScanSec / IndexedSec : 0.0);
  Reg.gauge("timing.heap_queries.num_scavenges")
      .set(static_cast<double>(Indexed.NumScavenges));

  std::vector<telemetry::MetricSample> Timing;
  for (telemetry::MetricSample &M : Reg.snapshot())
    if (M.Name.rfind("timing.", 0) == 0)
      Timing.push_back(std::move(M));
  telemetry::writeMetricsJson(Timing, telemetry::ExportOptions(), stdout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t TotalBytes = 5'000'000; // ~GHOST(1) at 1/10 scale.
  uint64_t TriggerBytes = 100'000;
  uint64_t TraceMax = 12'000;  // Scaled pause budget with feedback headroom.
  uint64_t MemMax = 300'000;   // Paper's 3000 KB at 1/10.
  uint64_t Threads = 0;
  bool Timing = false;
  OptionParser Parser("Runs the six collectors on the real managed "
                      "runtime (no oracle) under a GHOST-like mutator");
  Parser.addUInt("bytes", "Total allocation", &TotalBytes);
  Parser.addUInt("trigger", "Bytes between collections", &TriggerBytes);
  Parser.addUInt("trace-max", "Pause budget in traced bytes", &TraceMax);
  Parser.addUInt("mem-max", "Memory budget in bytes", &MemMax);
  Parser.addFlag("timing",
                 "Emit wall-clock + speedup JSON for the parallel "
                 "experiment engine and the indexed heap-model queries",
                 &Timing);
  addThreadsOption(Parser, &Threads);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;
  applyThreadsOption(Threads);

  if (Timing)
    return runTimingMode(Threads);

  std::printf("End-to-end on the real runtime: %s allocation, %s trigger, "
              "budgets %s / %s\n\n",
              formatBytes(TotalBytes).c_str(),
              formatBytes(TriggerBytes).c_str(),
              formatBytes(TraceMax).c_str(), formatBytes(MemMax).c_str());

  Table Tbl({"Policy", "GCs", "Mem mean (KB)", "Mem max (KB)",
             "Traced (KB)", "Median pause (KB traced)", "Verifier"});
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = TraceMax;
  PolicyConfig.MemMaxBytes = MemMax;

  for (const std::string &Name : core::paperPolicyNames()) {
    runtime::HeapConfig Config;
    Config.TriggerBytes = TriggerBytes;
    Heap H(Config);
    H.setPolicy(core::createPolicy(Name, PolicyConfig));

    HandleScope Scope(H);
    ScaledMutator Mutator(H, Scope, /*Seed=*/0x61057);
    Mutator.run(TotalBytes);

    RunningStats MemBefore;
    SampleSet PauseBytes;
    uint64_t Traced = 0;
    for (const core::ScavengeRecord &R : H.history().records()) {
      MemBefore.add(static_cast<double>(R.MemBeforeBytes));
      PauseBytes.add(static_cast<double>(R.TracedBytes));
      Traced += R.TracedBytes;
    }
    runtime::VerifyResult V = runtime::verifyHeap(H);
    Tbl.addRow({Name, Table::cell(H.history().size()),
                Table::cell(bytesToKB(MemBefore.mean())),
                Table::cell(bytesToKB(MemBefore.max())),
                Table::cell(bytesToKB(Traced)),
                Table::cell(bytesToKB(PauseBytes.median())),
                V.Ok ? "OK" : "FAILED"});
    if (!V.Ok) {
      Tbl.print(stdout);
      std::fprintf(stderr, "heap verification failed under %s: %s\n",
                   Name.c_str(), V.Problems.front().c_str());
      return 1;
    }
  }
  Tbl.print(stdout);

  std::printf("\nReading: the oracle-free runtime reproduces the paper's "
              "orderings —\nFULL lowest memory / most tracing, FIXED1 the "
              "reverse, DTBMEM holding\nthe scaled 300 KB budget, and "
              "DTBFM's median pause pulled up toward the\nscaled budget "
              "(reclaiming more than FEEDMED per scavenge) — with\n"
              "demographics coming from the survivor table instead of "
              "trace deaths.\n");
  return 0;
}
