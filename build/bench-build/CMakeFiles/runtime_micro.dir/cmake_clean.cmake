file(REMOVE_RECURSE
  "../bench/runtime_micro"
  "../bench/runtime_micro.pdb"
  "CMakeFiles/runtime_micro.dir/runtime_micro.cpp.o"
  "CMakeFiles/runtime_micro.dir/runtime_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
