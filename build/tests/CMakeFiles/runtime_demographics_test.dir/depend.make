# Empty dependencies file for runtime_demographics_test.
# This may be replaced when dependencies are built.
