# Empty dependencies file for runtime_gclog_test.
# This may be replaced when dependencies are built.
