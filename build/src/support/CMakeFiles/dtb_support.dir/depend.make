# Empty dependencies file for dtb_support.
# This may be replaced when dependencies are built.
