# Empty compiler generated dependencies file for dtb_core.
# This may be replaced when dependencies are built.
