//===- tests/sim_trigger_test.cpp -----------------------------------------==//
//
// Tests for the when-to-collect trigger policies and their integration
// with the simulator.
//
//===----------------------------------------------------------------------===//

#include "sim/Trigger.h"

#include "core/Policies.h"
#include "sim/Simulator.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::sim;

TEST(FixedBytesTriggerTest, FiresAtInterval) {
  FixedBytesTrigger T(1'000);
  TriggerContext Context;
  Context.BytesSinceLastScavenge = 999;
  EXPECT_FALSE(T.shouldScavenge(Context));
  Context.BytesSinceLastScavenge = 1'000;
  EXPECT_TRUE(T.shouldScavenge(Context));
  EXPECT_EQ(T.intervalBytes(), 1'000u);
}

TEST(HeapGrowthTriggerTest, FiresOnGrowthFactor) {
  HeapGrowthTrigger T(/*GrowthFactor=*/2.0, /*MinHeapBytes=*/10'000,
                      /*MinSpacingBytes=*/100);
  TriggerContext Context;
  Context.BytesSinceLastScavenge = 5'000;
  Context.LastSurvivedBytes = 20'000;

  Context.ResidentBytes = 39'999;
  EXPECT_FALSE(T.shouldScavenge(Context));
  Context.ResidentBytes = 40'000; // 2x the survivors.
  EXPECT_TRUE(T.shouldScavenge(Context));
}

TEST(HeapGrowthTriggerTest, MinHeapFloorBeforeFirstScavenge) {
  HeapGrowthTrigger T(2.0, /*MinHeapBytes=*/10'000, /*MinSpacing=*/100);
  TriggerContext Context;
  Context.BytesSinceLastScavenge = 9'999;
  Context.LastSurvivedBytes = 0; // No scavenge yet.
  Context.ResidentBytes = 9'999;
  EXPECT_FALSE(T.shouldScavenge(Context));
  Context.ResidentBytes = 10'000;
  Context.BytesSinceLastScavenge = 10'000;
  EXPECT_TRUE(T.shouldScavenge(Context));
}

TEST(HeapGrowthTriggerTest, SpacingSuppressesBackToBack) {
  HeapGrowthTrigger T(2.0, 10'000, /*MinSpacingBytes=*/5'000);
  TriggerContext Context;
  Context.ResidentBytes = 1'000'000; // Way over threshold...
  Context.LastSurvivedBytes = 1'000;
  Context.BytesSinceLastScavenge = 100; // ...but too soon.
  EXPECT_FALSE(T.shouldScavenge(Context));
}

TEST(SimulatorTriggerTest, FixedTriggerPolicyCloseToBuiltinTrigger) {
  // The builtin trigger fires at absolute multiples of the interval; the
  // policy form measures bytes since the previous scavenge, which drifts
  // by a fraction of an object per scavenge. The two must agree to
  // within one scavenge and a few percent of work.
  trace::Trace T = workload::generateTrace(
      workload::makeSteadyStateSpec(1'000'000, 5));

  core::FullPolicy P1, P2;
  SimulatorConfig Builtin;
  Builtin.TriggerBytes = 50'000;
  Builtin.ProgramSeconds = 1.0;
  SimulationResult RBuiltin = simulate(T, P1, Builtin);

  FixedBytesTrigger Trigger(50'000);
  SimulatorConfig WithPolicy;
  WithPolicy.Trigger = &Trigger;
  WithPolicy.ProgramSeconds = 1.0;
  SimulationResult RPolicy = simulate(T, P2, WithPolicy);

  EXPECT_NEAR(static_cast<double>(RBuiltin.NumScavenges),
              static_cast<double>(RPolicy.NumScavenges), 1.0);
  EXPECT_NEAR(static_cast<double>(RBuiltin.TotalTracedBytes),
              static_cast<double>(RPolicy.TotalTracedBytes),
              static_cast<double>(RBuiltin.TotalTracedBytes) * 0.1);
}

TEST(SimulatorTriggerTest, HeapGrowthTriggerBoundsHeapByFactor) {
  trace::Trace T = workload::generateTrace(
      workload::makeSteadyStateSpec(2'000'000, 6));

  core::FullPolicy Policy;
  HeapGrowthTrigger Trigger(/*GrowthFactor=*/1.5,
                            /*MinHeapBytes=*/50'000,
                            /*MinSpacingBytes=*/5'000);
  SimulatorConfig Config;
  Config.Trigger = &Trigger;
  Config.ProgramSeconds = 1.0;
  SimulationResult R = simulate(T, Policy, Config);

  ASSERT_GT(R.NumScavenges, 3u);
  // Under FULL + growth trigger, residency just before each scavenge is
  // bounded by ~1.5x the previous survivors (plus one allocation and the
  // spacing slack).
  const auto &Records = R.History.records();
  for (size_t I = 1; I != Records.size(); ++I) {
    uint64_t Bound = std::max<uint64_t>(
        50'000, static_cast<uint64_t>(
                    1.5 * static_cast<double>(Records[I - 1].SurvivedBytes)));
    EXPECT_LE(Records[I].MemBeforeBytes, Bound + 10'000) << I;
  }
}

TEST(SimulatorTriggerTest, GrowthTriggerAdaptsFrequencyToGarbageRate) {
  // A workload whose live set is flat: the growth trigger should space
  // collections roughly evenly; with a rising live set collections must
  // become *less* frequent in allocation terms (threshold grows).
  workload::WorkloadSpec Flat = workload::makeSteadyStateSpec(2'000'000, 7);
  workload::WorkloadSpec Rising = Flat;
  Rising.Phases = {{1.0,
                    {{0.5, workload::LifetimeKind::Exponential, 20'000.0,
                      0.0},
                     {0.5, workload::LifetimeKind::Immortal, 0.0, 0.0}}}};

  core::FullPolicy P1, P2;
  HeapGrowthTrigger T1(1.5, 50'000), T2(1.5, 50'000);
  SimulatorConfig C1, C2;
  C1.Trigger = &T1;
  C1.ProgramSeconds = 1.0;
  C2.Trigger = &T2;
  C2.ProgramSeconds = 1.0;

  SimulationResult RFlat =
      simulate(workload::generateTrace(Flat), P1, C1);
  SimulationResult RRising =
      simulate(workload::generateTrace(Rising), P2, C2);
  EXPECT_GT(RFlat.NumScavenges, RRising.NumScavenges);
}
