//===- bench/combined_constraints.cpp - Dual-constraint collectors -------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The paper offers memory OR pause-time constraints ("depending upon
// which is more important to the user"). Because policies are just
// boundary functions, both can be imposed at once by composing them
// (core/Combinators.h):
//
//   oldest(dtbmem, dtbfm)   — memory is the hard constraint; the pause
//                             budget is honoured only when compatible.
//   youngest(dtbfm, dtbmem) — the pause budget is hard; memory is
//                             best-effort.
//
// This bench runs both compositions against the single-constraint
// policies on every workload and reports which constraints held.
//
//===----------------------------------------------------------------------===//

#include "core/Combinators.h"
#include "report/Experiments.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/Units.h"

#include <cstdio>
#include <memory>

using namespace dtb;

int main(int Argc, char **Argv) {
  uint64_t TraceMax = 50'000;
  uint64_t MemMax = 3'000'000;
  OptionParser Parser("Imposes the paper's memory and pause constraints "
                      "simultaneously via policy composition");
  Parser.addUInt("trace-max", "Pause budget in traced bytes", &TraceMax);
  Parser.addUInt("mem-max", "Memory budget in bytes", &MemMax);
  if (!Parser.parse(Argc, Argv))
    return 1;

  core::MachineModel Machine;
  std::printf("Dual constraints: %.0f ms pauses AND %.0f KB memory\n\n",
              Machine.pauseMillisForTracedBytes(TraceMax),
              bytesToKB(MemMax));

  auto MakePolicy =
      [&](const std::string &Kind) -> std::unique_ptr<core::BoundaryPolicy> {
    core::PolicyConfig Config;
    Config.TraceMaxBytes = TraceMax;
    Config.MemMaxBytes = MemMax;
    if (Kind == "mem-first")
      return std::make_unique<core::OldestBoundaryPolicy>(
          core::createPolicy("dtbmem", Config),
          core::createPolicy("dtbfm", Config));
    if (Kind == "pause-first")
      return std::make_unique<core::YoungestBoundaryPolicy>(
          core::createPolicy("dtbfm", Config),
          core::createPolicy("dtbmem", Config));
    return core::createPolicy(Kind, Config);
  };

  for (const workload::WorkloadSpec &Spec : workload::paperWorkloads()) {
    trace::Trace T = workload::generateTrace(Spec);
    sim::SimulatorConfig SimConfig;
    SimConfig.ProgramSeconds = Spec.ProgramSeconds;

    Table Tbl({"Policy", "Mem max (KB)", "mem ok", "Median (ms)",
               "pause ok", "Traced (KB)"});
    for (const char *Kind :
         {"dtbmem", "dtbfm", "mem-first", "pause-first"}) {
      auto Policy = MakePolicy(Kind);
      sim::SimulationResult R = sim::simulate(T, *Policy, SimConfig);
      double MedianMs = R.PauseMillis.median();
      double BudgetMs = Machine.pauseMillisForTracedBytes(TraceMax);
      Tbl.addRow({Kind, Table::cell(bytesToKB(R.MemMaxBytes)),
                  R.MemMaxBytes <= MemMax ? "yes" : "NO",
                  Table::cell(MedianMs, 0),
                  MedianMs <= BudgetMs * 1.3 ? "yes" : "NO",
                  Table::cell(bytesToKB(R.TotalTracedBytes))});
    }
    std::printf("%s:\n", Spec.DisplayName.c_str());
    Tbl.print(stdout);
    std::printf("\n");
  }

  std::printf("Reading: where both constraints are simultaneously "
              "satisfiable the two\ncompositions agree; where they "
              "conflict (SIS: live data alone exceeds the\nmemory "
              "budget), mem-first inherits DTBMEM's full-collection "
              "pauses while\npause-first keeps pauses bounded and lets "
              "memory exceed the budget —\nthe user picks which promise "
              "is hard.\n");
  return 0;
}
