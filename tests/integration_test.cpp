//===- tests/integration_test.cpp -----------------------------------------==//
//
// End-to-end regression tests over the full paper grid: every qualitative
// claim of the paper's evaluation (§6) must hold in our reproduction. The
// grid (6 policies x 6 workloads with the paper's parameters) is computed
// once and shared across tests.
//
//===----------------------------------------------------------------------===//

#include "report/Experiments.h"
#include "report/PaperReference.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::report;

namespace {

const ExperimentGrid &paperGridOnce() {
  static const ExperimentGrid Grid = ExperimentGrid::paperGrid({});
  return Grid;
}

const sim::SimulationResult &cell(const std::string &Policy,
                                  const std::string &Workload) {
  return paperGridOnce().result(Policy, Workload);
}

const std::vector<std::string> AllWorkloads = {
    "ghost1", "ghost2", "espresso1", "espresso2", "sis", "cfrac"};

} // namespace

//===----------------------------------------------------------------------===//
// §6.1 Meeting the memory constraint
//===----------------------------------------------------------------------===//

TEST(IntegrationTest, FullHasLowestMemoryEverywhere) {
  for (const std::string &W : AllWorkloads) {
    double FullMean = cell("full", W).MemMeanBytes;
    for (const std::string &P : paperGridOnce().policyNames())
      EXPECT_GE(cell(P, W).MemMeanBytes, FullMean * 0.999) << P << "/" << W;
  }
}

TEST(IntegrationTest, FullHasHighestTracingCostEverywhere) {
  for (const std::string &W : AllWorkloads) {
    uint64_t FullTraced = cell("full", W).TotalTracedBytes;
    for (const std::string &P : paperGridOnce().policyNames())
      EXPECT_LE(cell(P, W).TotalTracedBytes, FullTraced) << P << "/" << W;
  }
}

TEST(IntegrationTest, Fixed1HasLowestTracingCostEverywhere) {
  for (const std::string &W : AllWorkloads) {
    uint64_t Fixed1Traced = cell("fixed1", W).TotalTracedBytes;
    for (const std::string &P : paperGridOnce().policyNames())
      EXPECT_GE(cell(P, W).TotalTracedBytes, Fixed1Traced) << P << "/" << W;
  }
}

TEST(IntegrationTest, Fixed4BetweenFullAndFixed1) {
  for (const std::string &W : AllWorkloads) {
    EXPECT_GE(cell("fixed4", W).MemMeanBytes,
              cell("full", W).MemMeanBytes * 0.999)
        << W;
    EXPECT_LE(cell("fixed4", W).MemMeanBytes,
              cell("fixed1", W).MemMeanBytes * 1.001)
        << W;
    EXPECT_LE(cell("fixed4", W).TotalTracedBytes,
              cell("full", W).TotalTracedBytes)
        << W;
    EXPECT_GE(cell("fixed4", W).TotalTracedBytes,
              cell("fixed1", W).TotalTracedBytes)
        << W;
  }
}

TEST(IntegrationTest, Fixed4EqualsFullOnGhostAndSis) {
  // Table 2: GHOST and SIS have no lifetimes between 4 MB and forever, so
  // FIXED4 accumulates no tenured garbage and matches FULL closely.
  for (const std::string &W : {"ghost1", "ghost2", "sis"}) {
    EXPECT_NEAR(cell("fixed4", W).MemMeanBytes,
                cell("full", W).MemMeanBytes,
                cell("full", W).MemMeanBytes * 0.02)
        << W;
  }
}

TEST(IntegrationTest, DtbMemRespectsFeasibleConstraint) {
  // 3000 KB is feasible for GHOST(1), ESPRESSO(1), ESPRESSO(2), CFRAC:
  // DTBMEM must keep max memory within the budget (small slack for the
  // approximate garbage model).
  for (const std::string &W : {"ghost1", "espresso1", "espresso2",
                               "cfrac"}) {
    EXPECT_LE(cell("dtbmem", W).MemMaxBytes, 3'000'000u * 101 / 100) << W;
  }
}

TEST(IntegrationTest, DtbMemOverConstraintDegradesTowardFull) {
  // SIS: even FULL needs ~7 MB. The paper: "a much over-constrained
  // DTBMEM degrades to the performance of the FULL algorithm" and its
  // memory comes within 7% of FULL's.
  EXPECT_LE(cell("dtbmem", "sis").MemMaxBytes,
            cell("full", "sis").MemMaxBytes * 107 / 100);
  // And its tracing cost rises toward FULL's (way above FIXED1's).
  EXPECT_GT(cell("dtbmem", "sis").TotalTracedBytes,
            cell("fixed1", "sis").TotalTracedBytes * 4);
}

TEST(IntegrationTest, DtbMemCpuNearFixed1WhenUnconstrained) {
  // Where 3000 KB is not binding, DTBMEM's CPU overhead is close to
  // FIXED1's (the paper's headline: FIXED1 speed with a memory bound).
  for (const std::string &W : {"ghost1", "espresso1", "cfrac"}) {
    EXPECT_LE(cell("dtbmem", W).TotalTracedBytes,
              cell("fixed1", W).TotalTracedBytes * 13 / 10)
        << W;
  }
}

//===----------------------------------------------------------------------===//
// §6.2 Meeting the pause-time constraint
//===----------------------------------------------------------------------===//

TEST(IntegrationTest, DtbFmMedianNearConstraint) {
  // The paper's 100 ms budget: DTBFM's median pause should zero in on it.
  // GHOST and ESPRESSO(2) have enough collections for the median to
  // settle.
  for (const std::string &W : {"ghost1", "ghost2", "espresso2"}) {
    double Median = cell("dtbfm", W).PauseMillis.median();
    EXPECT_GE(Median, 60.0) << W;
    EXPECT_LE(Median, 140.0) << W;
  }
}

TEST(IntegrationTest, DtbFmMedianAtLeastAsCloseAsFeedMedOnGhost) {
  for (const std::string &W : {"ghost1", "ghost2"}) {
    double DtbFm = cell("dtbfm", W).PauseMillis.median();
    double FeedMed = cell("feedmed", W).PauseMillis.median();
    EXPECT_LE(std::abs(DtbFm - 100.0), std::abs(FeedMed - 100.0) + 15.0)
        << W;
  }
}

TEST(IntegrationTest, DtbFmUsesNoMoreMemoryThanFeedMed) {
  // Moving the boundary back reclaims tenured garbage FEEDMED keeps.
  for (const std::string &W : AllWorkloads) {
    EXPECT_LE(cell("dtbfm", W).MemMeanBytes,
              cell("feedmed", W).MemMeanBytes * 1.02)
        << W;
  }
}

TEST(IntegrationTest, DtbFmMemorySavingsDramaticOnEspresso2) {
  // The paper calls ESPRESSO "an excellent illustration of the weakness
  // of the FEEDMED algorithm": FEEDMED cannot push the boundary back and
  // uses far more memory (1095 vs 695 KB mean).
  EXPECT_LT(cell("dtbfm", "espresso2").MemMeanBytes,
            cell("feedmed", "espresso2").MemMeanBytes * 0.75);
}

TEST(IntegrationTest, PolicyInsensitiveOnCfrac) {
  // CFRAC retains almost nothing; all collectors perform alike (Table 2:
  // 497-498 KB across the board).
  double FullMean = cell("full", "cfrac").MemMeanBytes;
  for (const std::string &P : paperGridOnce().policyNames())
    EXPECT_NEAR(cell(P, "cfrac").MemMeanBytes, FullMean, FullMean * 0.03)
        << P;
}

TEST(IntegrationTest, SisDominatedByPermanentData) {
  // SIS: LIVE is most of FULL's residency; collectors differ little in
  // memory (Table 2: 4524-4691).
  const trace::TraceStats &B = paperGridOnce().baseline("sis");
  EXPECT_GT(B.LiveMeanBytes, cell("full", "sis").MemMeanBytes * 0.85);
  EXPECT_LT(cell("fixed1", "sis").MemMeanBytes,
            cell("full", "sis").MemMeanBytes * 1.10);
}

//===----------------------------------------------------------------------===//
// Quantitative bands against the published tables
//===----------------------------------------------------------------------===//

TEST(IntegrationTest, FullRowTracksPaperWithinBand) {
  // FULL is the most mechanical row (no policy dynamics): our calibrated
  // traces should land within ~15% of the published memory numbers.
  for (const std::string &W : AllWorkloads) {
    auto Paper = paperCell("full", W);
    ASSERT_TRUE(Paper.has_value());
    double MeasuredKB = cell("full", W).MemMeanBytes / 1000.0;
    EXPECT_NEAR(MeasuredKB, Paper->MemMeanKB, Paper->MemMeanKB * 0.15)
        << W;
  }
}

TEST(IntegrationTest, ScavengeCountsMatchTriggerModel) {
  // Roughly one scavenge per MB of allocation (Table 6's collection
  // counts).
  for (const std::string &W : AllWorkloads) {
    const trace::TraceStats &B = paperGridOnce().baseline(W);
    uint64_t Expected = B.TotalAllocatedBytes / 1'000'000;
    EXPECT_NEAR(static_cast<double>(cell("full", W).NumScavenges),
                static_cast<double>(Expected), 1.5)
        << W;
  }
}
