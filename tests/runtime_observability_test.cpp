//===- tests/runtime_observability_test.cpp -------------------------------==//
//
// The safepoint/mutator observability layer: TTSP attribution on the
// rendezvous record, per-context counters, the always-on flight
// recorder (ring semantics, automatic dump on degradation), and the
// determinism contract — a fixed-seed multi-context workload exports
// bit-identical metrics on every run.
//
//===----------------------------------------------------------------------===//

#include "runtime/FlightRecorder.h"
#include "runtime/Heap.h"
#include "runtime/Mutator.h"

#include "core/MachineModel.h"
#include "core/Policies.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace dtb;
using namespace dtb::runtime;

// The per-context counters and TTSP aggregates must dead-code away with
// the telemetry stack: empty types, so MutatorContext::Stats and the
// heap's aggregate block carry zero bytes of observability state in a
// -DDTB_ENABLE_TELEMETRY=OFF build. (The flight recorder deliberately
// stays — it is the OFF build's only postmortem surface.)
#if !DTB_TELEMETRY
static_assert(sizeof(MutatorObservability) == 1,
              "per-context observability counters must compile out");
static_assert(sizeof(SafepointTtspStats) == 1,
              "TTSP aggregates must compile out");
#endif

namespace {

HeapConfig manualConfig() {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Flight recorder ring
//===----------------------------------------------------------------------===//

TEST(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  FlightRecorder Rec;
  EXPECT_EQ(Rec.recorded(), 0u);
  Rec.record(FlightEventKind::CycleBegin, /*Time=*/10, /*A=*/7);
  Rec.record(FlightEventKind::ScavengeComplete, 20, 1, 300, 200);
  Rec.record(FlightEventKind::SafepointRendezvous, 30, 4, 512, 3);
  EXPECT_EQ(Rec.recorded(), 3u);

  std::vector<FlightEvent> Events = Rec.snapshot();
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events[0].Seq, 0u);
  EXPECT_EQ(Events[0].Kind, FlightEventKind::CycleBegin);
  EXPECT_EQ(Events[0].Time, 10u);
  EXPECT_EQ(Events[2].Kind, FlightEventKind::SafepointRendezvous);
  EXPECT_EQ(Events[2].A, 4u);
  EXPECT_EQ(Events[2].C, 3u);
  EXPECT_EQ(describeFlightEvent(Events[2]),
            "safepoint-rendezvous: 4 contexts, 512 pending alloc bytes, "
            "straggler ctx 3");
  EXPECT_EQ(describeFlightEvent(Events[1]),
            "scavenge #1: traced 300 reclaimed 200 bytes");
}

TEST(FlightRecorderTest, RingRetainsOnlyTheTail) {
  FlightRecorder Rec;
  const uint64_t Total = FlightRecorder::Capacity + 50;
  for (uint64_t I = 0; I != Total; ++I)
    Rec.record(FlightEventKind::ScavengeComplete, I, I);
  EXPECT_EQ(Rec.recorded(), Total);
  std::vector<FlightEvent> Events = Rec.snapshot();
  ASSERT_EQ(Events.size(), FlightRecorder::Capacity);
  // Oldest retained event is Total - Capacity; newest is Total - 1.
  EXPECT_EQ(Events.front().Seq, Total - FlightRecorder::Capacity);
  EXPECT_EQ(Events.front().A, Total - FlightRecorder::Capacity);
  EXPECT_EQ(Events.back().Seq, Total - 1);
}

TEST(FlightRecorderTest, AutoDumpIsThrottledExplicitDumpIsNot) {
  FlightRecorder Rec;
  Rec.record(FlightEventKind::Degradation, 5, 0, 1000);

  char *Buffer = nullptr;
  size_t Size = 0;
  std::FILE *Stream = open_memstream(&Buffer, &Size);
  ASSERT_NE(Stream, nullptr);
  for (unsigned I = 0; I != FlightRecorder::AutoDumpLimit; ++I)
    EXPECT_TRUE(Rec.autoDump(Stream, "test trigger"));
  EXPECT_FALSE(Rec.autoDump(Stream, "test trigger"));
  EXPECT_FALSE(Rec.autoDump(Stream, "test trigger"));
  Rec.dump(Stream); // Explicit dumps never throttle.
  std::fclose(Stream);
  std::string Out(Buffer, Size);
  std::free(Buffer);

  size_t Headers = 0;
  for (size_t Pos = 0;
       (Pos = Out.find("flight recorder:", Pos)) != std::string::npos; ++Pos)
    ++Headers;
  EXPECT_EQ(Headers, FlightRecorder::AutoDumpLimit + 1);
  EXPECT_NE(Out.find("[flight-recorder] dump on test trigger"),
            std::string::npos);
  EXPECT_NE(Out.find("degradation emergency-scavenge: resident 1000 bytes"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Rendezvous records and TTSP attribution
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, RendezvousRecordAttributesTtspToPendingBytes) {
  Heap H(manualConfig());
  MutatorContext Ctx1(H), Ctx2(H);
  EXPECT_EQ(Ctx1.id(), 1u);
  EXPECT_EQ(Ctx2.id(), 2u);

  uint64_t Before = H.lastSafepointRendezvous().Serial;
  Ctx1.allocate(1, 64);
  Ctx2.allocate(1, 64);
  Ctx2.allocate(0, 128);
  H.runAtSafepoint([](Heap &) {});

  const SafepointRendezvousRecord &R = H.lastSafepointRendezvous();
  EXPECT_EQ(R.Serial, Before + 1);
  EXPECT_EQ(R.Contexts, 2u);
  EXPECT_EQ(R.PendingAllocObjects, 3u);
  EXPECT_GT(R.PendingAllocBytes, 0u);
  // The deterministic TTSP is the machine model's pause for the pending
  // bytes the rendezvous drained — not a wall measurement.
  EXPECT_DOUBLE_EQ(R.TtspMillis,
                   core::MachineModel().pauseMillisForTracedBytes(
                       R.PendingAllocBytes));
  // Single-threaded driving: every context is between ops when the world
  // stops, so the straggler is the last-registered polling context.
  EXPECT_EQ(R.Straggler, StragglerKind::Polling);
  EXPECT_EQ(R.StragglerContext, Ctx2.id());

  // The rendezvous is also on the flight-recorder tail.
  std::vector<FlightEvent> Events = H.flightRecorder().snapshot();
  ASSERT_FALSE(Events.empty());
  bool Found = false;
  for (const FlightEvent &E : Events)
    if (E.Kind == FlightEventKind::SafepointRendezvous && E.A == 2 &&
        E.C == Ctx2.id())
      Found = true;
  EXPECT_TRUE(Found);

#if DTB_TELEMETRY
  const SafepointTtspStats &Stats = H.safepointTtspStats();
  ASSERT_FALSE(Stats.TtspMillis.empty());
  EXPECT_DOUBLE_EQ(Stats.TtspMillis.samples().back(), R.TtspMillis);
  EXPECT_GT(Stats.StragglerPolling, 0u);
#endif
}

TEST(ObservabilityTest, ParkedStragglerIsAttributedAsParked) {
  Heap H(manualConfig());
  MutatorContext Worker(H), Sleeper(H);
  Worker.allocate(1, 64);
  Sleeper.park();
  H.runAtSafepoint([](Heap &) {});
  const SafepointRendezvousRecord &R = H.lastSafepointRendezvous();
  EXPECT_EQ(R.Straggler, StragglerKind::Parked);
  EXPECT_EQ(R.StragglerContext, Sleeper.id());
  EXPECT_EQ(stragglerKindName(R.Straggler), std::string("parked"));
  Sleeper.unpark();
#if DTB_TELEMETRY
  EXPECT_GT(H.safepointTtspStats().StragglerParked, 0u);
  EXPECT_EQ(Sleeper.stats().Obs.Parks, 1u);
  EXPECT_EQ(Sleeper.stats().Obs.Unparks, 1u);
#endif
}

TEST(ObservabilityTest, PerContextCountersTrackTheWorkload) {
  HeapConfig Config = manualConfig();
  Heap H(Config);
  MutatorContext Ctx(H);

  size_t First = Ctx.allocateRooted(1, 32);
  for (int I = 0; I != 100; ++I) {
    size_t Index = Ctx.allocateRooted(1, 32);
    Ctx.writeSlot(Ctx.root(Index - 1), 0, Ctx.root(Index));
    Ctx.safepoint();
  }
  (void)First;
  H.runAtSafepoint([](Heap &) {});

  const MutatorContext::Stats &S = Ctx.stats();
  EXPECT_EQ(S.Allocations, 101u);
  EXPECT_GT(S.AllocatedBytes, 0u);
  EXPECT_GE(S.TlabRefills, 1u);
  EXPECT_GE(S.BarrierFlushes, 1u);
#if DTB_TELEMETRY
  EXPECT_EQ(S.Obs.SafepointPolls, 100u);
  EXPECT_GE(S.Obs.TlabCarvedBytes, S.AllocatedBytes);
  EXPECT_GT(S.Obs.BarrierHighWater, 0u);
  EXPECT_LE(S.Obs.BarrierHighWater, 64u); // Flush threshold bounds it.
  EXPECT_EQ(S.Obs.PublishedObjects, S.Allocations);
#endif
}

//===----------------------------------------------------------------------===//
// Determinism contract
//===----------------------------------------------------------------------===//

namespace {

/// Fixed-seed 4-context round-robin workload, one thread — the test-side
/// replica of the bench driver's observability stage recipe.
struct WorkloadOutcome {
  std::vector<MutatorContext::Stats> Stats;
  SafepointRendezvousRecord LastRendezvous;
  std::vector<FlightEvent> Flight;
#if DTB_TELEMETRY
  std::vector<double> TtspSamples;
#endif
};

WorkloadOutcome runFixedSeedWorkload() {
  HeapConfig Config;
  Config.TriggerBytes = 16'000;
  Heap H(Config);
  H.setPolicy(core::createPolicy("fixed1", core::PolicyConfig()));
  std::vector<std::unique_ptr<MutatorContext>> Ctxs;
  for (int I = 0; I != 4; ++I)
    Ctxs.push_back(std::make_unique<MutatorContext>(H));

  uint64_t Lcg = 0xFA417;
  auto Next = [&Lcg] {
    Lcg = Lcg * 6364136223846793005ull + 1442695040888963407ull;
    return Lcg >> 33;
  };
  for (uint64_t Step = 0; Step != 2'000; ++Step) {
    MutatorContext &Ctx = *Ctxs[Step % 4];
    uint64_t Roll = Next();
    size_t Index =
        Ctx.allocateRooted(1 + static_cast<uint32_t>(Roll % 3),
                           static_cast<uint32_t>((Roll >> 8) % 64));
    if (Index != 0)
      Ctx.writeSlot(Ctx.root(Index - 1), 0, Ctx.root(Index));
    if (Roll % 5 == 0)
      Ctx.safepoint();
    if (Ctx.numRoots() > 128)
      Ctx.truncateRoots(8);
  }
  H.collectAtBoundary(0);

  WorkloadOutcome Out;
  for (const auto &Ctx : Ctxs)
    Out.Stats.push_back(Ctx->stats());
  Out.LastRendezvous = H.lastSafepointRendezvous();
  Out.Flight = H.flightRecorder().snapshot();
#if DTB_TELEMETRY
  Out.TtspSamples = H.safepointTtspStats().TtspMillis.samples();
#endif
  return Out;
}

} // namespace

TEST(ObservabilityTest, FixedSeedWorkloadExportsBitIdenticalMetrics) {
  WorkloadOutcome A = runFixedSeedWorkload();
  WorkloadOutcome B = runFixedSeedWorkload();

  ASSERT_EQ(A.Stats.size(), B.Stats.size());
  for (size_t I = 0; I != A.Stats.size(); ++I) {
    const MutatorContext::Stats &X = A.Stats[I];
    const MutatorContext::Stats &Y = B.Stats[I];
    EXPECT_EQ(X.Allocations, Y.Allocations) << "context " << I;
    EXPECT_EQ(X.AllocatedBytes, Y.AllocatedBytes) << "context " << I;
    EXPECT_EQ(X.TlabRefills, Y.TlabRefills) << "context " << I;
    EXPECT_EQ(X.BarrierBufferedEntries, Y.BarrierBufferedEntries)
        << "context " << I;
    EXPECT_EQ(X.BarrierFlushes, Y.BarrierFlushes) << "context " << I;
    EXPECT_EQ(X.TriggeredCollections, Y.TriggeredCollections)
        << "context " << I;
#if DTB_TELEMETRY
    EXPECT_EQ(X.Obs.TlabCarvedBytes, Y.Obs.TlabCarvedBytes)
        << "context " << I;
    EXPECT_EQ(X.Obs.TlabWastedBytes, Y.Obs.TlabWastedBytes)
        << "context " << I;
    EXPECT_EQ(X.Obs.BarrierHighWater, Y.Obs.BarrierHighWater)
        << "context " << I;
    EXPECT_EQ(X.Obs.SafepointPolls, Y.Obs.SafepointPolls)
        << "context " << I;
    EXPECT_EQ(X.Obs.PublishedObjects, Y.Obs.PublishedObjects)
        << "context " << I;
#endif
  }

  EXPECT_EQ(A.LastRendezvous.Serial, B.LastRendezvous.Serial);
  EXPECT_EQ(A.LastRendezvous.Time, B.LastRendezvous.Time);
  EXPECT_EQ(A.LastRendezvous.PendingAllocBytes,
            B.LastRendezvous.PendingAllocBytes);
  EXPECT_DOUBLE_EQ(A.LastRendezvous.TtspMillis, B.LastRendezvous.TtspMillis);
  EXPECT_EQ(A.LastRendezvous.StragglerContext,
            B.LastRendezvous.StragglerContext);

  // The whole flight-recorder tail replays bit-identically.
  ASSERT_EQ(A.Flight.size(), B.Flight.size());
  for (size_t I = 0; I != A.Flight.size(); ++I) {
    EXPECT_EQ(A.Flight[I].Seq, B.Flight[I].Seq);
    EXPECT_EQ(A.Flight[I].Kind, B.Flight[I].Kind);
    EXPECT_EQ(A.Flight[I].Time, B.Flight[I].Time);
    EXPECT_EQ(A.Flight[I].A, B.Flight[I].A);
    EXPECT_EQ(A.Flight[I].B, B.Flight[I].B);
    EXPECT_EQ(A.Flight[I].C, B.Flight[I].C);
  }
  EXPECT_GT(A.LastRendezvous.Serial, 1u); // The workload actually stopped.

#if DTB_TELEMETRY
  ASSERT_EQ(A.TtspSamples.size(), B.TtspSamples.size());
  for (size_t I = 0; I != A.TtspSamples.size(); ++I)
    EXPECT_DOUBLE_EQ(A.TtspSamples[I], B.TtspSamples[I]);
#endif
}

//===----------------------------------------------------------------------===//
// Automatic dump on degradation
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, DegradationDumpsFlightRecorderWithRendezvous) {
  char *Buffer = nullptr;
  size_t Size = 0;
  std::FILE *Stream = open_memstream(&Buffer, &Size);
  ASSERT_NE(Stream, nullptr);
  {
    HeapConfig Config;
    Config.TriggerBytes = 0;
    Config.HeapLimitBytes = 64 * 1024;
    Config.LogStream = Stream;
    Heap H(Config);
    H.setPolicy(core::createPolicy("fixed1", core::PolicyConfig()));
    MutatorContext Ctx(H);

    // A context-visible rendezvous first, so the dump that follows has
    // the triggering stop on its tail.
    Ctx.allocate(1, 64);
    H.runAtSafepoint([](Heap &) {});
    ASSERT_GT(H.lastSafepointRendezvous().Serial, 0u);

    // Unrooted garbage up to the limit, then a request that cannot fit:
    // the pressure ladder stops the world (another rendezvous) and its
    // first rung records a degradation event — which must auto-dump the
    // flight recorder into the GC log.
    for (int I = 0; I != 50; ++I)
      Ctx.allocate(0, 1'000);
    ASSERT_NE(Ctx.tryAllocate(0, 32 * 1024), nullptr);
    EXPECT_GT(H.totalDegradationEvents(), 0u);
  }
  std::fclose(Stream);
  std::string Log(Buffer, Size);
  std::free(Buffer);

  EXPECT_NE(Log.find("[flight-recorder] dump on emergency-scavenge"),
            std::string::npos);
  EXPECT_NE(Log.find("flight recorder:"), std::string::npos);
  // The dump carries the rendezvous that preceded the degradation.
  EXPECT_NE(Log.find("safepoint-rendezvous:"), std::string::npos);
  EXPECT_NE(Log.find("degradation emergency-scavenge"), std::string::npos);
}
