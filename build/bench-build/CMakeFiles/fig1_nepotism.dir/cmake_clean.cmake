file(REMOVE_RECURSE
  "../bench/fig1_nepotism"
  "../bench/fig1_nepotism.pdb"
  "CMakeFiles/fig1_nepotism.dir/fig1_nepotism.cpp.o"
  "CMakeFiles/fig1_nepotism.dir/fig1_nepotism.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_nepotism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
