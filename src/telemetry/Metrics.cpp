//===- telemetry/Metrics.cpp ----------------------------------------------==//

#include "telemetry/Metrics.h"

#include <algorithm>
#include <limits>

using namespace dtb;
using namespace dtb::telemetry;

LogHistogram::LogHistogram(LogBucketing Bucketing)
    : Bucketing(Bucketing), Buckets(Bucketing.numBuckets()),
      Min(std::numeric_limits<double>::infinity()),
      Max(-std::numeric_limits<double>::infinity()) {}

void LogHistogram::record(double X) {
  Buckets[Bucketing.bucketFor(X)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(X, std::memory_order_relaxed);
  double Seen = Min.load(std::memory_order_relaxed);
  while (X < Seen &&
         !Min.compare_exchange_weak(Seen, X, std::memory_order_relaxed)) {
  }
  Seen = Max.load(std::memory_order_relaxed);
  while (X > Seen &&
         !Max.compare_exchange_weak(Seen, X, std::memory_order_relaxed)) {
  }
}

double LogHistogram::mean() const {
  uint64_t N = count();
  return N == 0 ? 0.0 : sum() / static_cast<double>(N);
}

double LogHistogram::min() const {
  return count() == 0 ? 0.0 : Min.load(std::memory_order_relaxed);
}

double LogHistogram::max() const {
  return count() == 0 ? 0.0 : Max.load(std::memory_order_relaxed);
}

double LogHistogram::quantile(double Q) const {
  // Copy the buckets once so the shared quantile walk sees a consistent
  // (if slightly stale) view under concurrent recording.
  std::vector<uint64_t> Copy(Bucketing.numBuckets());
  uint64_t Total = 0;
  for (size_t I = 0, E = Copy.size(); I != E; ++I) {
    Copy[I] = Buckets[I].load(std::memory_order_relaxed);
    Total += Copy[I];
  }
  return quantileFromBucketCounts(Bucketing, Copy.data(), Total, Q);
}

void LogHistogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0.0, std::memory_order_relaxed);
  Min.store(std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
  Max.store(-std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Registry;
  return Registry;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters[Name];
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Gauges[Name];
}

LogHistogram &MetricsRegistry::histogram(const std::string &Name,
                                         LogBucketing Bucketing) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Histograms.try_emplace(Name, Bucketing).first->second;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<MetricSample> Samples;
  Samples.reserve(Counters.size() + Gauges.size() + Histograms.size());
  for (const auto &[Name, C] : Counters) {
    MetricSample S;
    S.InstrumentKind = MetricSample::Kind::Counter;
    S.Name = Name;
    S.Value = static_cast<double>(C.value());
    Samples.push_back(std::move(S));
  }
  for (const auto &[Name, G] : Gauges) {
    MetricSample S;
    S.InstrumentKind = MetricSample::Kind::Gauge;
    S.Name = Name;
    S.Value = G.value();
    Samples.push_back(std::move(S));
  }
  for (const auto &[Name, H] : Histograms) {
    MetricSample S;
    S.InstrumentKind = MetricSample::Kind::Histogram;
    S.Name = Name;
    S.Count = H.count();
    S.Sum = H.sum();
    S.Min = H.min();
    S.Max = H.max();
    S.P50 = H.quantile(0.5);
    S.P90 = H.quantile(0.9);
    S.P99 = H.quantile(0.99);
    Samples.push_back(std::move(S));
  }
  // The three maps are each name-sorted; a final merge-sort by name gives
  // one stable, registration-order-independent listing.
  std::sort(Samples.begin(), Samples.end(),
            [](const MetricSample &A, const MetricSample &B) {
              return A.Name < B.Name;
            });
  return Samples;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &Entry : Counters)
    Entry.second.reset();
  for (auto &Entry : Gauges)
    Entry.second.reset();
  for (auto &Entry : Histograms)
    Entry.second.reset();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters.size() + Gauges.size() + Histograms.size();
}
