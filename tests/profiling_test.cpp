//===- tests/profiling_test.cpp - Scoped phase profiler -------------------===//
//
// The phase profiler's accounting invariants: nested phases attribute cost
// to self vs. total correctly (self excludes children, total includes
// them), the per-scavenge tree records the nesting, disabled profilers are
// no-ops, merges fold deterministically, and the runtime heap reports
// through the shared taxonomy. With telemetry compiled out every test
// degenerates to checking the profiler stays empty.
//
//===----------------------------------------------------------------------===//

#include "core/Policies.h"
#include "profiling/Profiler.h"
#include "report/GhostMutator.h"
#include "runtime/Heap.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::profiling;

#if !DTB_TELEMETRY
// "Exactly zero overhead when compiled out" is a structural property, not
// a measurement: with -DDTB_ENABLE_TELEMETRY=OFF both types are empty and
// every method is an inline no-op, so instrumentation sites carry no state
// and no code.
static_assert(sizeof(PhaseProfiler) == 1,
              "PhaseProfiler must be stateless when telemetry is off");
static_assert(sizeof(ProfilePhase) == 1,
              "ProfilePhase must be an empty type when telemetry is off");
#endif

namespace {

/// One synthetic scavenge: root(10) { child(5) { grand(2) } sibling(7) }.
void recordSyntheticScavenge(PhaseProfiler &Profiler) {
  {
    ProfilePhase Root(&Profiler, phase::Trace);
    Root.addCost(10);
    {
      ProfilePhase Child(&Profiler, phase::RemSetScan);
      Child.addCost(5);
      ProfilePhase Grand(&Profiler, phase::Promote);
      Grand.addCost(2);
    }
    ProfilePhase Sibling(&Profiler, phase::Sweep);
    Sibling.addCost(7);
  }
  Profiler.finishScavenge();
}

const PhaseAggregate &aggregate(const PhaseProfiler &Profiler,
                                const char *Name) {
  auto It = Profiler.aggregates().find(Name);
  EXPECT_NE(It, Profiler.aggregates().end()) << Name;
  static const PhaseAggregate Empty;
  return It == Profiler.aggregates().end() ? Empty : It->second;
}

} // namespace

TEST(PhaseProfilerTest, SelfVsTotalAccounting) {
  PhaseProfiler Profiler;
  Profiler.setEnabled(true);
  if (!compiledIn()) {
    // Compiled out: the scopes must be inert and the aggregates empty.
    recordSyntheticScavenge(Profiler);
    EXPECT_FALSE(Profiler.active());
    EXPECT_TRUE(Profiler.aggregates().empty());
    return;
  }
  ASSERT_TRUE(Profiler.active());
  recordSyntheticScavenge(Profiler);

  // Self costs are exactly what each scope charged.
  EXPECT_EQ(aggregate(Profiler, phase::Trace).SelfCost, 10u);
  EXPECT_EQ(aggregate(Profiler, phase::RemSetScan).SelfCost, 5u);
  EXPECT_EQ(aggregate(Profiler, phase::Promote).SelfCost, 2u);
  EXPECT_EQ(aggregate(Profiler, phase::Sweep).SelfCost, 7u);

  // Totals include enclosed children: remset_scan = 5 + 2, the root trace
  // = 10 + 7 (remset_scan + promote) + 7 (sweep).
  EXPECT_EQ(aggregate(Profiler, phase::RemSetScan).TotalCost, 7u);
  EXPECT_EQ(aggregate(Profiler, phase::Promote).TotalCost, 2u);
  EXPECT_EQ(aggregate(Profiler, phase::Sweep).TotalCost, 7u);
  EXPECT_EQ(aggregate(Profiler, phase::Trace).TotalCost, 24u);

  // Each phase entered once, with one self-cost sample apiece.
  for (const auto &[Name, Agg] : Profiler.aggregates()) {
    EXPECT_EQ(Agg.Count, 1u) << Name;
    EXPECT_EQ(Agg.SelfCostSamples.size(), 1u) << Name;
    EXPECT_EQ(Agg.SelfCostSamples.median(),
              static_cast<double>(Agg.SelfCost))
        << Name;
  }
}

TEST(PhaseProfilerTest, TreeRecordsNesting) {
  PhaseProfiler Profiler;
  Profiler.setEnabled(true);
  recordSyntheticScavenge(Profiler);
  if (!compiledIn()) {
    EXPECT_TRUE(Profiler.lastTree().empty());
    return;
  }

  // Pre-order: trace, remset_scan, promote, sweep.
  const std::vector<PhaseTreeNode> &Tree = Profiler.lastTree();
  ASSERT_EQ(Tree.size(), 4u);
  EXPECT_STREQ(Tree[0].Name, phase::Trace);
  EXPECT_EQ(Tree[0].Parent, -1);
  EXPECT_STREQ(Tree[1].Name, phase::RemSetScan);
  EXPECT_EQ(Tree[1].Parent, 0);
  EXPECT_STREQ(Tree[2].Name, phase::Promote);
  EXPECT_EQ(Tree[2].Parent, 1);
  EXPECT_STREQ(Tree[3].Name, phase::Sweep);
  EXPECT_EQ(Tree[3].Parent, 0);
  EXPECT_EQ(Tree[0].SelfCost, 10u);
  EXPECT_EQ(Tree[0].TotalCost, 24u);

  // A second scavenge replaces the tree but accumulates the aggregates.
  recordSyntheticScavenge(Profiler);
  EXPECT_EQ(Profiler.lastTree().size(), 4u);
  EXPECT_EQ(aggregate(Profiler, phase::Trace).Count, 2u);
  EXPECT_EQ(aggregate(Profiler, phase::Trace).SelfCost, 20u);
}

TEST(PhaseProfilerTest, DisabledProfilerIsInert) {
  PhaseProfiler Profiler;
  EXPECT_FALSE(Profiler.active());
  {
    ProfilePhase Phase(&Profiler, phase::Trace);
    Phase.addCost(100);
  }
  // No finishScavenge needed: nothing was recorded.
  EXPECT_TRUE(Profiler.aggregates().empty());
  EXPECT_TRUE(Profiler.lastTree().empty());

  // A null profiler is equally fine.
  ProfilePhase Null(nullptr, phase::Trace);
  Null.addCost(1);
}

TEST(PhaseProfilerTest, ScopeArmedAtConstructionOnly) {
  if (!compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  PhaseProfiler Profiler;
  {
    // The scope opens while disabled, so enabling mid-scope must not
    // produce an unmatched exit.
    ProfilePhase Phase(&Profiler, phase::Trace);
    Profiler.setEnabled(true);
    Phase.addCost(5);
  }
  EXPECT_TRUE(Profiler.aggregates().empty());
  Profiler.finishScavenge();
  EXPECT_TRUE(Profiler.lastTree().empty());
}

TEST(PhaseProfilerTest, MergeFoldsAggregates) {
  if (!compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  PhaseProfiler A, B;
  A.setEnabled(true);
  B.setEnabled(true);
  recordSyntheticScavenge(A);
  recordSyntheticScavenge(B);
  recordSyntheticScavenge(B);

  PhaseProfiler Merged;
  Merged.mergeFrom(A);
  Merged.mergeFrom(B);
  EXPECT_EQ(aggregate(Merged, phase::Trace).Count, 3u);
  EXPECT_EQ(aggregate(Merged, phase::Trace).SelfCost, 30u);
  EXPECT_EQ(aggregate(Merged, phase::Trace).TotalCost, 72u);
  EXPECT_EQ(aggregate(Merged, phase::Sweep).SelfCostSamples.size(), 3u);

  Merged.reset();
  EXPECT_TRUE(Merged.aggregates().empty());
}

TEST(PhaseProfilerTest, CostAttributionTableRanksBySelfCost) {
  PhaseProfiler Profiler;
  Profiler.setEnabled(true);
  recordSyntheticScavenge(Profiler);
  Table Full = buildCostAttributionTable(Profiler);
  Table Top1 = buildCostAttributionTable(Profiler, 1);
  if (!compiledIn()) {
    EXPECT_EQ(Full.numRows(), 0u);
    return;
  }
  EXPECT_EQ(Full.numRows(), 4u);
  EXPECT_EQ(Top1.numRows(), 1u);
  EXPECT_EQ(Full.numColumns(), 9u);
}

TEST(PhaseProfilerTest, HeapReportsSharedTaxonomy) {
  runtime::HeapConfig Config;
  Config.TriggerBytes = 20'000;
  runtime::Heap H(Config);
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = 5'000;
  H.setPolicy(core::createPolicy("feedmed", PolicyConfig));
  H.profiler().setEnabled(true);

  runtime::HandleScope Scope(H);
  report::GhostMutator Mutator(H, Scope, /*Seed=*/0x61057);
  Mutator.run(200'000);

  if (!compiledIn()) {
    EXPECT_TRUE(H.profiler().aggregates().empty());
    return;
  }
  ASSERT_GT(H.history().size(), 0u);
  const auto &Aggregates = H.profiler().aggregates();
  // Every scavenge records a policy decision and the collection phases.
  ASSERT_TRUE(Aggregates.count(phase::PolicyDecision));
  ASSERT_TRUE(Aggregates.count(phase::RootScan));
  ASSERT_TRUE(Aggregates.count(phase::Sweep));
  EXPECT_EQ(Aggregates.at(phase::PolicyDecision).Count, H.history().size());

  // Self never exceeds total, and phase entry counts are sane.
  for (const auto &[Name, Agg] : Aggregates) {
    EXPECT_LE(Agg.SelfCost, Agg.TotalCost) << Name;
    EXPECT_GT(Agg.Count, 0u) << Name;
    EXPECT_EQ(Agg.SelfCostSamples.size(), Agg.Count) << Name;
  }

  // The last scavenge's tree is present and internally consistent.
  const std::vector<PhaseTreeNode> &Tree = H.profiler().lastTree();
  ASSERT_FALSE(Tree.empty());
  for (size_t I = 0; I != Tree.size(); ++I) {
    EXPECT_LE(Tree[I].SelfCost, Tree[I].TotalCost);
    EXPECT_LT(Tree[I].Parent, static_cast<int>(I));
  }
}
