//===- support/Units.cpp --------------------------------------------------==//

#include "support/Units.h"

#include <cstdio>

using namespace dtb;

std::string dtb::formatBytes(uint64_t Bytes) {
  char Buffer[64];
  if (Bytes >= MB)
    std::snprintf(Buffer, sizeof(Buffer), "%.2f MB",
                  static_cast<double>(Bytes) / static_cast<double>(MB));
  else if (Bytes >= KB)
    std::snprintf(Buffer, sizeof(Buffer), "%.1f KB",
                  static_cast<double>(Bytes) / static_cast<double>(KB));
  else
    std::snprintf(Buffer, sizeof(Buffer), "%llu B",
                  static_cast<unsigned long long>(Bytes));
  return Buffer;
}

std::string dtb::formatMilliseconds(double Ms) {
  char Buffer[64];
  if (Ms >= 1000.0)
    std::snprintf(Buffer, sizeof(Buffer), "%.2f s", Ms / 1000.0);
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.1f ms", Ms);
  return Buffer;
}
