//===- bench/ablation_quantization.cpp - Age-precision ablation ----------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// §4.2: exact per-object birth times let the collector "model a
// generational collector with an arbitrarily large number of
// generations"; coarser ages (page- or card-grained, as in Caudill's
// Smalltalk-80 implementation) cost precision. This ablation quantizes
// the DTB policies' boundaries to increasing granularities and measures
// what the lost precision costs in memory and tracing: snapping down is
// always safe (it only threatens more), so the price is extra tracing,
// never a missed constraint.
//
//===----------------------------------------------------------------------===//

#include "core/Combinators.h"
#include "report/Experiments.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/Units.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>

using namespace dtb;

int main(int Argc, char **Argv) {
  std::string WorkloadName = "ghost1";
  OptionParser Parser("Quantizes the DTB boundaries to coarser age "
                      "granularities and measures the cost of imprecise "
                      "object ages");
  Parser.addString("workload", "Workload name", &WorkloadName);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;

  const workload::WorkloadSpec *Spec = workload::findWorkload(WorkloadName);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 WorkloadName.c_str());
    return 1;
  }
  trace::Trace T = workload::generateTrace(*Spec);
  sim::SimulatorConfig SimConfig;
  SimConfig.ProgramSeconds = Spec->ProgramSeconds;

  const uint64_t Quanta[] = {1,         4'096,     65'536,
                             262'144,   1'048'576, 4'194'304};

  std::printf("Age-quantization ablation on %s (DTBFM 50 KB budget, "
              "DTBMEM 3000 KB budget)\n\n",
              Spec->DisplayName.c_str());
  for (const char *Inner : {"dtbfm", "dtbmem"}) {
    Table Tbl({"Quantum", "Mem mean (KB)", "Mem max (KB)", "Traced (KB)",
               "Median pause (ms)", "90th (ms)"});
    for (uint64_t Quantum : Quanta) {
      core::PolicyConfig PolicyConfig;
      core::QuantizedBoundaryPolicy Policy(
          core::createPolicy(Inner, PolicyConfig), Quantum);
      SimConfig.TelemetryTrack = "sim/" + Spec->Name + "/" + Inner + "-q" +
                                 std::to_string(Quantum);
      sim::SimulationResult R = sim::simulate(T, Policy, SimConfig);
      Tbl.addRow({Quantum == 1 ? "exact" : formatBytes(Quantum),
                  Table::cell(bytesToKB(R.MemMeanBytes)),
                  Table::cell(bytesToKB(R.MemMaxBytes)),
                  Table::cell(bytesToKB(R.TotalTracedBytes)),
                  Table::cell(R.PauseMillis.median(), 0),
                  Table::cell(R.PauseMillis.percentile90(), 0)});
    }
    std::printf("%s:\n", Inner);
    Tbl.print(stdout);
    std::printf("\n");
  }

  std::printf("Expected shape: quanta far below the trigger interval are "
              "free; at and\nabove the 1 MB trigger the boundary can only "
              "land on interval edges —\nDTBFM loses its fine pause "
              "control (medians step) and both policies\ntrace more. "
              "Memory budgets are never violated: snapping down only\n"
              "threatens more.\n");
  return 0;
}
