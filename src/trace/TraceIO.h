//===- trace/TraceIO.h - Trace serialization -------------------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization for allocation traces, playing the role QPT trace files
/// play in the paper's methodology.
///
/// Two formats:
///  * Binary ("DTBT"): magic, version, object count, then per record the
///    LEB128-encoded size and death delta (0 = immortal, else
///    death - birth + 1). Births are implied by the running byte total.
///  * Text: a `# dtb-trace v1` header then one `<size> <death|->` line per
///    record, for hand-written fixtures and debugging.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_TRACE_TRACEIO_H
#define DTB_TRACE_TRACEIO_H

#include "trace/Trace.h"

#include <optional>
#include <string>

namespace dtb {
namespace trace {

/// Serializes \p T in the binary format.
std::string serializeBinary(const Trace &T);

/// Parses the binary format; returns std::nullopt (and fills
/// \p ErrorMessage if non-null) on malformed input.
std::optional<Trace> deserializeBinary(std::string_view Data,
                                       std::string *ErrorMessage = nullptr);

/// Result of a best-effort salvage of a damaged binary trace.
struct RecoveredTrace {
  /// The records that survived recovery, in input order. Always satisfies
  /// Trace::verify() — recovery never fabricates an ill-formed trace.
  Trace T;
  /// Number of records salvaged (== T.numObjects(), kept for symmetry
  /// with BytesSkipped in reports).
  uint64_t RecordsRecovered = 0;
  /// Bytes discarded while resynchronizing past corruption.
  uint64_t BytesSkipped = 0;
  /// True when the magic, version, and record count parsed cleanly.
  bool HeaderIntact = false;
};

/// Salvages whatever records it can from a truncated or corrupted binary
/// trace. Unlike deserializeBinary this never fails: unparseable bytes
/// are skipped one at a time until the record stream resynchronizes, and
/// the damage is reported through RecoveredTrace's counters. A clean
/// input recovers losslessly (BytesSkipped == 0, HeaderIntact == true).
RecoveredTrace recoverBinary(std::string_view Data);

/// Serializes \p T in the text format.
std::string serializeText(const Trace &T);

/// Parses the text format.
std::optional<Trace> deserializeText(std::string_view Data,
                                     std::string *ErrorMessage = nullptr);

/// Writes \p T to \p Path (binary format). Returns false on I/O failure.
bool writeTraceFile(const Trace &T, const std::string &Path);

/// Reads a trace from \p Path, auto-detecting the format from the magic.
std::optional<Trace> readTraceFile(const std::string &Path,
                                   std::string *ErrorMessage = nullptr);

} // namespace trace
} // namespace dtb

#endif // DTB_TRACE_TRACEIO_H
