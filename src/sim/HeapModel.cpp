//===- sim/HeapModel.cpp --------------------------------------------------==//

#include "sim/HeapModel.h"

#include "support/Error.h"
#include "trace/Trace.h"

#include <algorithm>
#include <cassert>
#include <string>

using namespace dtb;
using namespace dtb::sim;

//===----------------------------------------------------------------------===//
// SizeFenwick
//===----------------------------------------------------------------------===//

void HeapModel::SizeFenwick::append(uint64_t Value) {
  // New node I (1-based) covers the block of lowbit(I) leaves ending at I;
  // its sum is the new leaf plus the already-built sub-blocks.
  size_t I = Tree.size() + 1;
  uint64_t Sum = Value;
  size_t Low = I & (~I + 1);
  for (size_t K = 1; K < Low; K <<= 1)
    Sum += Tree[I - K - 1];
  Tree.push_back(Sum);
  Total += Value;
}

void HeapModel::SizeFenwick::add(size_t Index, uint64_t Delta) {
  Total += Delta;
  for (size_t I = Index + 1; I <= Tree.size(); I += I & (~I + 1))
    Tree[I - 1] += Delta;
}

uint64_t HeapModel::SizeFenwick::prefix(size_t Count) const {
  uint64_t Sum = 0;
  for (size_t I = Count; I > 0; I -= I & (~I + 1))
    Sum += Tree[I - 1];
  return Sum;
}

//===----------------------------------------------------------------------===//
// HeapModel
//===----------------------------------------------------------------------===//

void HeapModel::reserve(size_t NumObjects) {
  Residents.reserve(NumObjects);
  if (Mode != QueryMode::Indexed)
    return;
  ResidentSizes.reserve(NumObjects);
  DeadSizes.reserve(NumObjects);
  PendingDeaths.reserve(NumObjects);
}

void HeapModel::addObject(AllocClock Birth, uint32_t Size, AllocClock Death) {
  assert(Size > 0 && "zero-size object");
  assert((Residents.empty() || Residents.back().Birth < Birth) &&
         "births must be strictly increasing");
  assert(Death >= Birth && "object dies before it is born");
  Residents.push_back({Birth, Size, Death});
  ResidentBytes += Size;
  if (Mode != QueryMode::Indexed)
    return;

  ResidentSizes.append(Size);
  if (Death <= DeathClock) {
    // A query clock has already passed this object's death; the queue
    // would never revisit it, so account for it immediately.
    DeadSizes.append(Size);
  } else {
    DeadSizes.append(0);
    if (Death != trace::NeverDies)
      PendingDeaths.push_back(
          {Death, static_cast<uint32_t>(Residents.size() - 1)});
  }
}

size_t HeapModel::firstBornAfter(AllocClock Boundary) const {
  auto It = std::upper_bound(
      Residents.begin(), Residents.end(), Boundary,
      [](AllocClock B, const ResidentObject &R) { return B < R.Birth; });
  return static_cast<size_t>(It - Residents.begin());
}

size_t HeapModel::positionOfBirth(AllocClock Birth) const {
  auto It = std::lower_bound(
      Residents.begin(), Residents.end(), Birth,
      [](const ResidentObject &R, AllocClock B) { return R.Birth < B; });
  assert(It != Residents.end() && It->Birth == Birth &&
         "queued death for an object that is no longer resident");
  return static_cast<size_t>(It - Residents.begin());
}

void HeapModel::advanceDeathClock(AllocClock Now) const {
  if (Now <= DeathClock)
    return;
  // Entries staged since the last advance: the already-dead ones go
  // straight into the dead index, bypassing the heap entirely (the common
  // case — most objects die within one trigger window); only long-livers
  // are heap-pushed. Every queued entry still references a resident
  // object: an object cannot be reclaimed before the clock passes its
  // death, and passing its death drains its entry first.
  for (const auto &[Death, Pos] : PendingDeaths) {
    if (Death <= Now)
      DeadSizes.add(Pos, Residents[Pos].Size);
    else
      DeathQueue.push({Death, Residents[Pos].Birth});
  }
  PendingDeaths.clear();
  while (!DeathQueue.empty() && DeathQueue.top().first <= Now) {
    size_t P = positionOfBirth(DeathQueue.top().second);
    DeadSizes.add(P, Residents[P].Size);
    DeathQueue.pop();
  }
  DeathClock = Now;
}

void HeapModel::rebuildIndexes(size_t Begin) {
  ResidentSizes.truncate(Begin);
  DeadSizes.truncate(Begin);
  for (size_t I = Begin; I != Residents.size(); ++I) {
    const ResidentObject &R = Residents[I];
    ResidentSizes.append(R.Size);
    // Deaths the clock has passed are garbage (tenured or threatened);
    // queued deaths beyond the clock are all still pending, so residency
    // status is fully determined by the Death/DeathClock comparison.
    DeadSizes.append(R.Death <= DeathClock ? R.Size : 0);
  }
}

void HeapModel::checkQuery(uint64_t Indexed, uint64_t Scan,
                           const char *What) const {
  if (Indexed != Scan)
    fatalError(std::string("HeapModel cross-check failed in ") + What +
               ": indexed=" + std::to_string(Indexed) +
               " scan=" + std::to_string(Scan));
}

ScavengeOutcome HeapModel::scavenge(AllocClock Now, AllocClock Boundary) {
  assert(Boundary <= Now && "boundary in the future");
  ScavengeOutcome Outcome;
  Outcome.MemBeforeBytes = ResidentBytes;

  size_t Begin = firstBornAfter(Boundary);
  if (Mode == QueryMode::Indexed) {
    advanceDeathClock(Now);
    // When earlier queries pushed the death clock past Now the advance
    // above was a no-op and the staged entries survive it — but the
    // compaction below shifts positions, so convert them to stable
    // Birth-keyed heap entries while their positions are still valid.
    // (Every staged death is > DeathClock >= Now here, so none is
    // reclaimable by this scavenge.)
    for (const auto &[Death, Pos] : PendingDeaths)
      DeathQueue.push({Death, Residents[Pos].Birth});
    PendingDeaths.clear();

    // The dead index reflects deaths up to DeathClock; when queries have
    // pushed the clock past this scavenge's Now it includes objects that
    // are still live at Now, so the expectation below is only derivable
    // when the clocks agree.
    uint64_t ExpectReclaimed = 0, ExpectTraced = 0;
    bool CheckOutcome = CrossCheck && DeathClock == Now;
    if (CheckOutcome) {
      ExpectReclaimed = DeadSizes.suffix(Begin);
      ExpectTraced = ResidentSizes.suffix(Begin) - ExpectReclaimed;
    }

    // Single stable-partition pass over the threatened suffix: survivors
    // slide down in birth order, dead objects drop out.
    auto NewEnd = std::remove_if(
        Residents.begin() + static_cast<ptrdiff_t>(Begin), Residents.end(),
        [&](const ResidentObject &R) {
          if (R.Death > Now) {
            Outcome.TracedBytes += R.Size;
            return false;
          }
          Outcome.ReclaimedBytes += R.Size;
          return true;
        });
    Residents.erase(NewEnd, Residents.end());

    if (CheckOutcome) {
      checkQuery(ExpectReclaimed, Outcome.ReclaimedBytes,
                 "scavenge/reclaimed");
      checkQuery(ExpectTraced, Outcome.TracedBytes, "scavenge/traced");
    }

    // Compaction shifted every threatened survivor's position; immune
    // positions below Begin are untouched, so only the threatened suffix
    // of the trees is rebuilt — O(threatened), the same order as the
    // partition pass above. Nothing reclaimed means nothing moved.
    if (Outcome.ReclaimedBytes != 0)
      rebuildIndexes(Begin);
  } else {
    size_t Out = Begin;
    for (size_t I = Begin; I != Residents.size(); ++I) {
      const ResidentObject &R = Residents[I];
      if (R.Death > Now) {
        // Live and threatened: traced, survives in place.
        Outcome.TracedBytes += R.Size;
        Residents[Out++] = R;
      } else {
        // Dead and threatened: reclaimed.
        Outcome.ReclaimedBytes += R.Size;
      }
    }
    Residents.resize(Out);
  }

  ResidentBytes -= Outcome.ReclaimedBytes;
  Outcome.SurvivedBytes = ResidentBytes;
  return Outcome;
}

uint64_t HeapModel::liveBytesBornAfter(AllocClock Boundary,
                                       AllocClock Now) const {
  // A query behind the advanced death clock cannot be answered from the
  // monotone dead index; fall back to the scan (tests only — simulation
  // clocks never run backwards).
  if (Mode != QueryMode::Indexed || Now < DeathClock)
    return liveBytesBornAfterScan(Boundary, Now);
  advanceDeathClock(Now);
  size_t P = firstBornAfter(Boundary);
  uint64_t Bytes = ResidentSizes.suffix(P) - DeadSizes.suffix(P);
  if (CrossCheck)
    checkQuery(Bytes, liveBytesBornAfterScan(Boundary, Now),
               "liveBytesBornAfter");
  return Bytes;
}

uint64_t HeapModel::residentBytesBornAfter(AllocClock Boundary) const {
  if (Mode != QueryMode::Indexed)
    return residentBytesBornAfterScan(Boundary);
  uint64_t Bytes = ResidentSizes.suffix(firstBornAfter(Boundary));
  if (CrossCheck)
    checkQuery(Bytes, residentBytesBornAfterScan(Boundary),
               "residentBytesBornAfter");
  return Bytes;
}

uint64_t HeapModel::garbageBytes(AllocClock Now) const {
  if (Mode != QueryMode::Indexed || Now < DeathClock)
    return garbageBytesScan(Now);
  advanceDeathClock(Now);
  uint64_t Bytes = DeadSizes.total();
  if (CrossCheck)
    checkQuery(Bytes, garbageBytesScan(Now), "garbageBytes");
  return Bytes;
}

//===----------------------------------------------------------------------===//
// Naive-scan reference implementations
//===----------------------------------------------------------------------===//

uint64_t HeapModel::liveBytesBornAfterScan(AllocClock Boundary,
                                           AllocClock Now) const {
  uint64_t Bytes = 0;
  for (size_t I = firstBornAfter(Boundary); I != Residents.size(); ++I)
    if (Residents[I].Death > Now)
      Bytes += Residents[I].Size;
  return Bytes;
}

uint64_t HeapModel::residentBytesBornAfterScan(AllocClock Boundary) const {
  uint64_t Bytes = 0;
  for (size_t I = firstBornAfter(Boundary); I != Residents.size(); ++I)
    Bytes += Residents[I].Size;
  return Bytes;
}

uint64_t HeapModel::garbageBytesScan(AllocClock Now) const {
  uint64_t Bytes = 0;
  for (const ResidentObject &R : Residents)
    if (R.Death <= Now)
      Bytes += R.Size;
  return Bytes;
}
