//===- tests/runtime_mutator_test.cpp -------------------------------------==//
//
// The mutator-context runtime's deterministic invariants: TLAB
// carve/refill/retire accounting (no byte lost, no byte double-carved),
// the safepoint count-in/count-out protocol against a real mutator
// thread, phase-transition barrier routing, and the determinism contract
// (one context driven single-threaded reproduces the direct heap API
// exactly).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"
#include "runtime/Mutator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>
#include <vector>

using namespace dtb;
using namespace dtb::runtime;

namespace {

HeapConfig manualConfig() {
  HeapConfig Config;
  Config.TriggerBytes = 0; // Collections driven explicitly.
  return Config;
}

void expectVerified(const Heap &H, const char *Where) {
  VerifyResult Verified = verifyHeap(H);
  EXPECT_TRUE(Verified.Ok)
      << Where << ": "
      << (Verified.Problems.empty() ? "" : Verified.Problems.front());
}

} // namespace

//===----------------------------------------------------------------------===//
// TLAB invariants
//===----------------------------------------------------------------------===//

TEST(TlabTest, CarveRefillRetireInvariants) {
  Heap H(manualConfig());
  {
    MutatorContext Ctx(H);
    constexpr size_t N = 4'000;
    for (size_t I = 0; I != N; ++I)
      Ctx.allocateRooted(1, static_cast<uint32_t>((I * 7) % 120));
    EXPECT_GT(Ctx.pendingAllocations(), 0u);

    // Publication happens at safepoints: afterwards every allocation is
    // resident and nothing is pending.
    H.runAtSafepoint([](Heap &) {});
    EXPECT_EQ(Ctx.pendingAllocations(), 0u);
    EXPECT_EQ(H.residentObjects(), N);

    MutatorRuntimeStats Stats = H.mutatorStats();
    EXPECT_GT(Stats.TlabRefills, 1u) << "N allocations must span blocks";
    EXPECT_EQ(Stats.TlabRefills, Ctx.stats().TlabRefills);
    EXPECT_EQ(Stats.TlabBlocksFreed, 0u);
    EXPECT_EQ(Stats.TlabBlocksResident, Stats.TlabRefills);
    EXPECT_EQ(Ctx.stats().Allocations, N);
    EXPECT_EQ(Ctx.stats().HumongousAllocations, 0u);

    // Blocks are disjoint and sorted; with nothing freed yet the carved
    // byte counter is exactly the sum of the resident ranges — no byte
    // lost, no byte double-carved.
    std::vector<std::pair<const void *, const void *>> Ranges =
        H.tlabBlockRanges();
    ASSERT_EQ(Ranges.size(), Stats.TlabBlocksResident);
    uint64_t RangeBytes = 0;
    for (size_t I = 0; I != Ranges.size(); ++I) {
      ASSERT_LT(Ranges[I].first, Ranges[I].second);
      RangeBytes += static_cast<uint64_t>(
          static_cast<const char *>(Ranges[I].second) -
          static_cast<const char *>(Ranges[I].first));
      if (I != 0)
        ASSERT_LE(Ranges[I - 1].second, Ranges[I].first)
            << "TLAB blocks overlap";
    }
    EXPECT_EQ(RangeBytes, Stats.TlabCarvedBytes);
    EXPECT_LE(Stats.TlabWastedBytes, Stats.TlabCarvedBytes);

    // Every object footprint lies inside exactly one block, and no two
    // footprints overlap.
    std::vector<std::pair<const char *, const char *>> Footprints;
    for (const Object *O : H.objects()) {
      EXPECT_EQ(O->storageKind(), Object::StorageTlab);
      const char *Begin = reinterpret_cast<const char *>(O);
      const char *End = Begin + O->grossBytes();
      size_t Containing = 0;
      for (const auto &[Lo, Hi] : Ranges)
        if (Begin >= static_cast<const char *>(Lo) &&
            End <= static_cast<const char *>(Hi))
          ++Containing;
      EXPECT_EQ(Containing, 1u) << "object outside every TLAB block";
      Footprints.emplace_back(Begin, End);
    }
    std::sort(Footprints.begin(), Footprints.end());
    for (size_t I = 1; I != Footprints.size(); ++I)
      ASSERT_LE(Footprints[I - 1].second, Footprints[I].first)
          << "two objects share TLAB bytes";
    expectVerified(H, "after publication");

    // Dropping every root and collecting kills every TLAB object and
    // frees every retired block; only the context's current (unretired)
    // block may remain resident.
    Ctx.truncateRoots(0);
    H.collectAtBoundary(0);
    EXPECT_EQ(H.residentObjects(), 0u);
    MutatorRuntimeStats After = H.mutatorStats();
    EXPECT_GE(After.TlabBlocksFreed + 1, After.TlabRefills);
    EXPECT_LE(H.tlabBlockRanges().size(), 1u);
    expectVerified(H, "after full collection");
  }
  // Context destruction retires the current block; empty, it is freed.
  EXPECT_EQ(H.tlabBlockRanges().size(), 0u);
  EXPECT_EQ(H.mutatorStats().TlabBlocksFreed, H.mutatorStats().TlabRefills);
}

TEST(TlabTest, HumongousAllocationsBypassTheTlab) {
  Heap H(manualConfig());
  MutatorContext Ctx(H);

  size_t BigIdx = Ctx.allocateRooted(0, 16 * 1024);
  EXPECT_EQ(Ctx.stats().HumongousAllocations, 1u);
  EXPECT_EQ(Ctx.root(BigIdx)->storageKind(), Object::StorageOwn);

  size_t SmallIdx = Ctx.allocateRooted(0, 16);
  EXPECT_EQ(Ctx.root(SmallIdx)->storageKind(), Object::StorageTlab);
  EXPECT_EQ(Ctx.stats().HumongousAllocations, 1u);

  H.runAtSafepoint([](Heap &) {});
  const char *Big = reinterpret_cast<const char *>(Ctx.root(BigIdx));
  for (const auto &[Lo, Hi] : H.tlabBlockRanges())
    EXPECT_FALSE(Big >= static_cast<const char *>(Lo) &&
                 Big < static_cast<const char *>(Hi))
        << "humongous object landed inside a TLAB block";
  expectVerified(H, "after humongous allocation");

  // Both storage kinds die cleanly through the same collection.
  Ctx.truncateRoots(0);
  H.collectAtBoundary(0);
  EXPECT_EQ(H.residentObjects(), 0u);
  expectVerified(H, "after reclaiming both storage kinds");
}

//===----------------------------------------------------------------------===//
// Safepoint protocol
//===----------------------------------------------------------------------===//

TEST(SafepointTest, PhaseMachineTransitions) {
  Heap H(manualConfig());
  MutatorContext Ctx(H);
  Ctx.allocateRooted(1, 16);

  EXPECT_EQ(H.phase(), GcPhase::NotCollecting);
  bool SawCollect = false, SawRestore = false;
  H.runAtSafepoint(
      [&](Heap &Stopped) {
        SawCollect = true;
        EXPECT_EQ(Stopped.phase(), GcPhase::Collecting);
      },
      [&](Heap &Stopped) {
        SawRestore = true;
        EXPECT_EQ(Stopped.phase(), GcPhase::Restoring);
      });
  EXPECT_TRUE(SawCollect);
  EXPECT_TRUE(SawRestore);
  EXPECT_EQ(H.phase(), GcPhase::NotCollecting);
}

TEST(SafepointTest, RendezvousStopsARunningMutatorThread) {
  Heap H(manualConfig());
  std::atomic<bool> Stop{false};
  std::atomic<bool> Ready{false};

  std::thread Worker([&] {
    MutatorContext Ctx(H);
    Ctx.allocateRooted(0, 16);
    Ready.store(true, std::memory_order_release);
    while (!Stop.load(std::memory_order_acquire)) {
      Ctx.allocateRooted(0, 16);
      if (Ctx.numRoots() > 64)
        Ctx.truncateRoots(1);
      Ctx.safepoint();
    }
  });
  while (!Ready.load(std::memory_order_acquire))
    std::this_thread::yield();

  for (int Round = 0; Round != 10; ++Round) {
    H.runAtSafepoint([&](Heap &Stopped) {
      EXPECT_EQ(Stopped.phase(), GcPhase::Collecting);
      // Count-in/count-out at work: while the rendezvous is held the
      // worker is blocked outside any heap op, so the allocation clock
      // cannot advance, however long we linger here.
      core::AllocClock Before = Stopped.now();
      for (int Spin = 0; Spin != 100; ++Spin)
        std::this_thread::yield();
      EXPECT_EQ(Stopped.now(), Before);
      // And the full verifier battery holds at the safepoint: pending
      // allocations published, barrier buffers flushed.
      expectVerified(Stopped, "at rendezvous");
    });
  }

  Stop.store(true, std::memory_order_release);
  Worker.join();
  EXPECT_GE(H.mutatorStats().SafepointRendezvous, 10u);
}

TEST(SafepointTest, ParkedContextDoesNotBlockTheRendezvous) {
  Heap H(manualConfig());
  std::atomic<int> Stage{0};

  std::thread Worker([&] {
    MutatorContext Ctx(H);
    Ctx.allocateRooted(0, 16);
    Ctx.park();
    Stage.store(1, std::memory_order_release);
    // Parked: no heap calls, no safepoint polls. The collector must not
    // wait on us.
    while (Stage.load(std::memory_order_acquire) != 2)
      std::this_thread::yield();
    Ctx.unpark();
    Ctx.allocateRooted(0, 16); // Counts in normally again.
  });

  while (Stage.load(std::memory_order_acquire) != 1)
    std::this_thread::yield();
  H.runAtSafepoint(
      [&](Heap &Stopped) { expectVerified(Stopped, "parked rendezvous"); });
  Stage.store(2, std::memory_order_release);
  Worker.join();
  EXPECT_GE(H.mutatorStats().SafepointRendezvous, 1u);
}

//===----------------------------------------------------------------------===//
// Phase-dependent barrier routing
//===----------------------------------------------------------------------===//

TEST(BarrierTest, PhaseRoutesForwardStores) {
  Heap H(manualConfig());
  MutatorContext Ctx(H);
  size_t OldIdx = Ctx.allocateRooted(3, 0);
  size_t YoungIdx = Ctx.allocateRooted(1, 0);
  Object *Old = Ctx.root(OldIdx);
  Object *Young = Ctx.root(YoungIdx);
  ASSERT_LT(Old->birth(), Young->birth());

  // NOT_COLLECTING: forward stores are buffered per context; nothing
  // reaches the shared set until a flush.
  Ctx.writeSlot(Old, 0, Young);
  EXPECT_EQ(Ctx.pendingBarrierEntries(), 1u);
  EXPECT_FALSE(H.rememberedSet().contains(Old, 0));
  Ctx.flushWriteBarrier();
  EXPECT_EQ(Ctx.pendingBarrierEntries(), 0u);
  EXPECT_TRUE(H.rememberedSet().contains(Old, 0));

  // Backward-in-time stores are never recorded, in any phase.
  Ctx.writeSlot(Young, 0, Old);
  EXPECT_EQ(Ctx.pendingBarrierEntries(), 0u);
  EXPECT_FALSE(H.rememberedSet().contains(Young, 0));

  // A safepoint flushes whatever is buffered; during COLLECTING and
  // RESTORING (world stopped) stores land in the shared set directly.
  Ctx.writeSlot(Old, 1, Young);
  EXPECT_EQ(Ctx.pendingBarrierEntries(), 1u);
  H.runAtSafepoint(
      [&](Heap &Stopped) {
        EXPECT_TRUE(Stopped.rememberedSet().contains(Old, 1))
            << "buffered entry not flushed by the rendezvous";
        Ctx.writeSlot(Old, 2, Young);
        EXPECT_EQ(Ctx.pendingBarrierEntries(), 0u);
        EXPECT_TRUE(Stopped.rememberedSet().contains(Old, 2));
      },
      [&](Heap &Stopped) {
        Ctx.writeSlot(Young, 0, Old); // Backward: still ignored.
        EXPECT_FALSE(Stopped.rememberedSet().contains(Young, 0));
      });
  expectVerified(H, "after phase-routing stores");
}

TEST(BarrierTest, BufferFlushesAtCapacity) {
  Heap H(manualConfig());
  MutatorContext Ctx(H);
  size_t SrcIdx = Ctx.allocateRooted(80, 0);
  size_t TgtIdx = Ctx.allocateRooted(0, 8);
  Object *Src = Ctx.root(SrcIdx);
  Object *Tgt = Ctx.root(TgtIdx);

  for (uint32_t I = 0; I != 63; ++I) {
    Ctx.writeSlot(Src, I, Tgt);
    EXPECT_EQ(Ctx.pendingBarrierEntries(), I + 1);
  }
  EXPECT_FALSE(H.rememberedSet().contains(Src, 0));
  Ctx.writeSlot(Src, 63, Tgt); // 64th entry: capacity flush.
  EXPECT_EQ(Ctx.pendingBarrierEntries(), 0u);
  for (uint32_t I = 0; I != 64; ++I)
    EXPECT_TRUE(H.rememberedSet().contains(Src, I)) << "slot " << I;
  EXPECT_GE(Ctx.stats().BarrierFlushes, 1u);
  EXPECT_EQ(Ctx.stats().BarrierBufferedEntries, 64u);
}

//===----------------------------------------------------------------------===//
// Determinism and publication
//===----------------------------------------------------------------------===//

namespace {

struct DriveResult {
  std::vector<core::AllocClock> Births;
  core::AllocClock Now = 0;
  uint64_t ResidentBytes = 0;
  core::ScavengeRecord Record;
};

/// The same allocation/link/death sequence through the direct heap API or
/// one mutator context. The determinism contract says both must produce
/// identical clocks, births, and scavenge results.
DriveResult driveSequence(bool UseContext) {
  Heap H(manualConfig());
  HandleScope Scope(H);
  std::optional<MutatorContext> Ctx;
  if (UseContext)
    Ctx.emplace(H);

  std::vector<Object **> Roots;
  for (size_t I = 0; I != 600; ++I) {
    uint32_t Raw = static_cast<uint32_t>((I * 13) % 100);
    if (UseContext)
      Roots.push_back(&Ctx->root(Ctx->allocateRooted(1, Raw)));
    else
      Roots.push_back(&Scope.slot(H.allocate(1, Raw)));
    // Forward link every third object from its predecessor.
    if (I % 3 == 0 && I != 0) {
      Object *Source = *Roots[I - 1];
      Object *Target = *Roots[I];
      if (Source) { // The predecessor's root may have been dropped.
        if (UseContext)
          Ctx->writeSlot(Source, 0, Target);
        else
          H.writeSlot(Source, 0, Target);
      }
    }
    // Drop every fourth root (single-threaded driving: a plain root-slot
    // overwrite is a safe way to drop).
    if (I % 4 == 0)
      *Roots[I] = nullptr;
  }

  DriveResult R;
  R.Record = H.collectAtBoundary(H.now() / 2);
  for (const Object *O : H.objects())
    R.Births.push_back(O->birth());
  R.Now = H.now();
  R.ResidentBytes = H.residentBytes();
  expectVerified(H, UseContext ? "context path" : "direct path");
  return R;
}

} // namespace

TEST(DeterminismTest, SingleContextMatchesDirectPath) {
  DriveResult Direct = driveSequence(/*UseContext=*/false);
  DriveResult Context = driveSequence(/*UseContext=*/true);
  EXPECT_EQ(Direct.Now, Context.Now);
  EXPECT_EQ(Direct.ResidentBytes, Context.ResidentBytes);
  EXPECT_EQ(Direct.Births, Context.Births);
  EXPECT_EQ(Direct.Record.Time, Context.Record.Time);
  EXPECT_EQ(Direct.Record.Boundary, Context.Record.Boundary);
  EXPECT_EQ(Direct.Record.MemBeforeBytes, Context.Record.MemBeforeBytes);
  EXPECT_EQ(Direct.Record.TracedBytes, Context.Record.TracedBytes);
  EXPECT_EQ(Direct.Record.ReclaimedBytes, Context.Record.ReclaimedBytes);
  EXPECT_EQ(Direct.Record.SurvivedBytes, Context.Record.SurvivedBytes);
}

TEST(PublicationTest, InterleavedContextsMergeInBirthOrder) {
  Heap H(manualConfig());
  MutatorContext A(H);
  MutatorContext B(H);
  for (size_t I = 0; I != 200; ++I)
    (I % 2 ? A : B).allocateRooted(0, static_cast<uint32_t>(I % 32));
  // Publication sorts each context's pending run into the global
  // birth-ordered allocation list; the verifier asserts strict ordering.
  H.runAtSafepoint(
      [&](Heap &Stopped) { expectVerified(Stopped, "two-context publish"); });
  EXPECT_EQ(H.residentObjects(), 200u);
  EXPECT_EQ(H.mutatorStats().PublishedObjects, 200u);
}
