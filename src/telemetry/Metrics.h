//===- telemetry/Metrics.h - Process-wide metrics registry -----*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, gauges, and log-bucketed
/// histograms. Registration (name -> instrument lookup) is mutex-guarded;
/// the recording fast path is lock-free (relaxed atomics), so instrumented
/// code caches the returned reference and updates it from any thread.
///
/// The histogram delegates all bucket/quantile math to support/Statistics
/// (LogBucketing, quantileFromBucketCounts): the registry only adds atomic
/// storage on top of the shared implementation.
///
/// Values recorded here are aggregates (sums, distributions) and therefore
/// deterministic for a deterministic workload regardless of the thread
/// count; snapshot() returns instruments sorted by name so exported output
/// does not depend on registration order.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_TELEMETRY_METRICS_H
#define DTB_TELEMETRY_METRICS_H

#include "support/Statistics.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dtb {
namespace telemetry {

/// A monotonically increasing event count.
class Counter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// A last-write-wins instantaneous value.
class Gauge {
public:
  void set(double V) { Value.store(V, std::memory_order_relaxed); }
  double value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// A log-bucketed histogram with atomic buckets: record() is lock-free and
/// wait-free except for the min/max CAS loops. Quantiles are approximate
/// with relative error bounded by bucketing().relativeError(); count, sum,
/// min, and max are exact.
class LogHistogram {
public:
  explicit LogHistogram(LogBucketing Bucketing = LogBucketing());

  void record(double X);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  double mean() const;
  /// Exact extremes (0 when empty).
  double min() const;
  double max() const;
  /// Nearest-rank quantile over the bucketed counts (midpoint of the
  /// holding bucket) via support/Statistics.
  double quantile(double Q) const;

  const LogBucketing &bucketing() const { return Bucketing; }
  uint64_t bucketValue(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  void reset();

private:
  LogBucketing Bucketing;
  std::deque<std::atomic<uint64_t>> Buckets; // deque: atomics are immovable.
  std::atomic<uint64_t> Count{0};
  std::atomic<double> Sum{0.0};
  std::atomic<double> Min;
  std::atomic<double> Max;
};

/// One instrument's state, copied out by MetricsRegistry::snapshot().
struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };
  Kind InstrumentKind = Kind::Counter;
  std::string Name;
  /// Counter total or gauge value (Counter/Gauge only).
  double Value = 0.0;
  /// Histogram aggregates (Histogram only).
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double P50 = 0.0;
  double P90 = 0.0;
  double P99 = 0.0;
};

/// Thread-safe name -> instrument registry. Instruments are never removed,
/// so returned references stay valid for the registry's lifetime; repeated
/// lookups of the same name return the same instrument.
class MetricsRegistry {
public:
  /// The process-wide registry used by all built-in instrumentation.
  static MetricsRegistry &global();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  /// \p Bucketing is applied only on first registration of \p Name.
  LogHistogram &histogram(const std::string &Name,
                          LogBucketing Bucketing = LogBucketing());

  /// Copies every instrument's current state, sorted by name.
  std::vector<MetricSample> snapshot() const;

  /// Zeroes every instrument (registrations are kept so cached references
  /// stay valid).
  void reset();

  size_t size() const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, Counter> Counters;       // Node-stable containers:
  std::map<std::string, Gauge> Gauges;           // references survive
  std::map<std::string, LogHistogram> Histograms; // later registrations.
};

} // namespace telemetry
} // namespace dtb

#endif // DTB_TELEMETRY_METRICS_H
