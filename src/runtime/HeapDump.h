//===- runtime/HeapDump.h - Heap demographics introspection ----*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Introspection over a live heap's age demographics — the information a
/// threatening-boundary policy acts on, made visible. Buckets the
/// resident objects by age (now − birth) on a log scale and reports,
/// per bucket, resident and reachable bytes; the difference is garbage
/// that a boundary older than the bucket would reclaim.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_RUNTIME_HEAPDUMP_H
#define DTB_RUNTIME_HEAPDUMP_H

#include "core/AllocClock.h"
#include "runtime/Degradation.h"

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dtb {
namespace runtime {

class Heap;

/// One age band of the demographics report.
struct AgeBand {
  /// Age range [AgeLo, AgeHi) in allocated bytes.
  core::AllocClock AgeLo = 0;
  core::AllocClock AgeHi = 0;
  uint64_t ResidentObjects = 0;
  uint64_t ResidentBytes = 0;
  /// Bytes in this band reachable from the roots.
  uint64_t ReachableBytes = 0;
};

/// The full demographics snapshot.
struct HeapDemographics {
  uint64_t ResidentObjects = 0;
  uint64_t ResidentBytes = 0;
  uint64_t ReachableBytes = 0;
  size_t RememberedSetEntries = 0;
  /// Oldest-first age bands, log2-scaled starting at \c BaseAgeBytes.
  std::vector<AgeBand> Bands;
  /// Degradation-ladder summary: total events ever recorded (including
  /// ones dropped from the heap's bounded log), per-kind counts over the
  /// retained log, and pre-rendered lines for the most recent events.
  uint64_t DegradationEventsTotal = 0;
  std::array<uint64_t, NumDegradationKinds> DegradationCounts{};
  std::vector<std::string> RecentDegradations;
  /// Open-incremental-cycle state (Heap::incrementalCycleInfo mirror;
  /// all-zero when no cycle is open). A heap dumped mid-cycle is mostly
  /// explained by these: the boundary/black window says what is
  /// threatened, the gray backlog says how far marking got.
  bool CycleActive = false;
  core::AllocClock CycleBoundary = 0;
  core::AllocClock CycleBlackClock = 0;
  uint64_t CycleGrayObjects = 0;
  uint64_t CycleGrayBytes = 0;
  uint64_t CyclePendingGrayObjects = 0;
  uint64_t CycleTracedBytes = 0;
  uint64_t CycleQuanta = 0;
  uint64_t CycleBudgetBytes = 0;
  bool CycleSerialDegraded = false;
  /// Multi-mutator runtime state (all-zero / "not-collecting" for a heap
  /// with no registered contexts): the phase machine, registered context
  /// count, and the TLAB/safepoint counters from Heap::mutatorStats().
  std::string Phase = "not-collecting";
  uint64_t MutatorContexts = 0;
  uint64_t SafepointRendezvous = 0;
  uint64_t TlabBlocksResident = 0;
  uint64_t TlabCarvedBytes = 0;
  uint64_t TlabWastedBytes = 0;
  uint64_t PublishedObjects = 0;
  uint64_t BarrierFlushes = 0;
  /// One row per registered context (registration order), from
  /// MutatorContext::stats(). The telemetry-gated fields (waste,
  /// high-water, polls, parks) read zero under -DDTB_ENABLE_TELEMETRY=OFF.
  struct MutatorRow {
    uint64_t Id = 0;
    std::string State = "at-safepoint";
    uint64_t Allocations = 0;
    uint64_t AllocatedBytes = 0;
    uint64_t TlabRefills = 0;
    uint64_t TlabWastedBytes = 0;
    uint64_t BarrierBufferedEntries = 0;
    uint64_t BarrierHighWater = 0;
    uint64_t BarrierFlushes = 0;
    uint64_t SafepointYields = 0;
    uint64_t SafepointPolls = 0;
    uint64_t Parks = 0;
    uint64_t TriggeredCollections = 0;
  };
  std::vector<MutatorRow> Mutators;
  /// The most recent safepoint rendezvous (Serial 0 = none yet).
  uint64_t RendezvousSerial = 0;
  double RendezvousTtspMillis = 0.0;
  uint64_t RendezvousArrivals = 0;
  uint64_t RendezvousStragglerContext = 0;
  std::string RendezvousStraggler = "none";
  /// Flight-recorder tail: total events ever recorded plus pre-rendered
  /// lines for the retained ones (oldest first).
  uint64_t FlightEventsRecorded = 0;
  std::vector<std::string> FlightEvents;
};

/// Collects a demographics snapshot of \p H. \p BaseAgeBytes is the width
/// of the youngest band; each subsequent band doubles.
HeapDemographics collectDemographics(const Heap &H,
                                     core::AllocClock BaseAgeBytes = 4096);

/// Pretty-prints the snapshot with text bars to \p Out.
void printDemographics(const HeapDemographics &Demo, std::FILE *Out);

} // namespace runtime
} // namespace dtb

#endif // DTB_RUNTIME_HEAPDUMP_H
