//===- tests/runtime_demographics_test.cpp --------------------------------==//
//
// Tests for the survivor-table demographics (the runtime's stand-in for
// the simulator's oracle): epoch bookkeeping, conservative estimates, and
// integration with the heap.
//
//===----------------------------------------------------------------------===//

#include "runtime/EpochDemographics.h"

#include "core/Policies.h"
#include "runtime/Heap.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::runtime;

TEST(EpochDemographicsTest, FreshTableCountsNewAllocationAsLive) {
  EpochDemographics D;
  D.setBytesSinceLastScavenge(500);
  EXPECT_EQ(D.liveBytesBornAfter(0), 500u);
  EXPECT_EQ(D.liveBytesBornAfter(100), 500u); // Open epoch counts wholly.
}

TEST(EpochDemographicsTest, SurvivorsAccumulateIntoEpochs) {
  EpochDemographics D;
  // Scavenge 1 at t=1000 over a full boundary.
  D.beginScavenge(0);
  D.recordSurvivor(/*Birth=*/300, 50);
  D.recordSurvivor(/*Birth=*/900, 70);
  D.endScavenge(1000);

  // Epoch [0,1000) has 120 live bytes; nothing allocated since.
  EXPECT_EQ(D.liveBytesBornAfter(0), 120u);
  // Boundary at 1000: only the (empty) open epoch.
  EXPECT_EQ(D.liveBytesBornAfter(1000), 0u);

  D.setBytesSinceLastScavenge(40);
  EXPECT_EQ(D.liveBytesBornAfter(1000), 40u);
  EXPECT_EQ(D.liveBytesBornAfter(0), 160u);
}

TEST(EpochDemographicsTest, ThreatenedEpochsAreRefreshed) {
  EpochDemographics D;
  D.beginScavenge(0);
  D.recordSurvivor(500, 100);
  D.endScavenge(1000);
  D.setBytesSinceLastScavenge(200);

  // Scavenge 2 at t=2000 with boundary 1000: epoch [1000,2000) is
  // re-measured; epoch [0,1000) keeps its stale estimate.
  D.beginScavenge(1000);
  D.recordSurvivor(1500, 30);
  D.endScavenge(2000);

  EXPECT_EQ(D.liveBytesBornAfter(1000), 30u);
  EXPECT_EQ(D.liveBytesBornAfter(0), 130u);
}

TEST(EpochDemographicsTest, FullScavengeRefreshesEverything) {
  EpochDemographics D;
  D.beginScavenge(0);
  D.recordSurvivor(500, 100);
  D.endScavenge(1000);

  D.beginScavenge(0); // Full: all epochs re-measured.
  D.recordSurvivor(500, 60); // Some of the old bytes died.
  D.endScavenge(2000);
  EXPECT_EQ(D.liveBytesBornAfter(0), 60u);
}

TEST(EpochDemographicsTest, EpochOfMapsBirthsToIntervals) {
  EpochDemographics D;
  D.beginScavenge(0);
  D.endScavenge(1000);
  D.beginScavenge(0);
  D.endScavenge(2000);
  // Epochs: [0,1000), [1000,2000), [2000,...).
  EXPECT_EQ(D.epochOf(500), 0u);
  // A birth exactly at an epoch start belongs to the previous epoch (it
  // was allocated before that scavenge ran).
  EXPECT_EQ(D.epochOf(1000), 0u);
  EXPECT_EQ(D.epochOf(1500), 1u);
  EXPECT_EQ(D.epochOf(2500), 2u);
}

TEST(EpochDemographicsTest, EpochRolloverOpensEmptyEpoch) {
  EpochDemographics D;
  D.beginScavenge(0);
  D.recordSurvivor(500, 100);
  D.endScavenge(1000);

  // Rollover: endScavenge opened [1000, ...) with a zero estimate and
  // reset the since-allocation counter.
  EXPECT_EQ(D.numEpochs(), 2u);
  EXPECT_EQ(D.epochStart(1), 1000u);
  EXPECT_EQ(D.liveBytesBornAfter(1000), 0u);

  // A birth stamped exactly at the rollover clock belongs to the closed
  // epoch (it was allocated before that scavenge ran), the next byte to
  // the new one.
  EXPECT_EQ(D.epochOf(1000), 0u);
  EXPECT_EQ(D.epochOf(1001), 1u);
}

TEST(EpochDemographicsTest, RolloverSurvivorsLandInTheNewEpoch) {
  EpochDemographics D;
  D.beginScavenge(0);
  D.recordSurvivor(800, 40);
  D.endScavenge(1000);

  // Scavenge 2 re-measures everything; one survivor was born exactly at
  // the previous scavenge time (epoch 0) and one just after (epoch 1).
  D.beginScavenge(0);
  D.recordSurvivor(1000, 25);
  D.recordSurvivor(1001, 35);
  D.endScavenge(2000);

  EXPECT_EQ(D.numEpochs(), 3u);
  // Boundary at 1000 includes the *whole* containing epoch [0,1000) —
  // conservative — so the epoch-0 survivor born at 1000 is counted by
  // liveBytesBornAfter(0) and liveBytesBornAfter(999), and both epochs'
  // bytes by a boundary of 0.
  EXPECT_EQ(D.liveBytesBornAfter(0), 60u);
  EXPECT_EQ(D.liveBytesBornAfter(1000), 35u);
  EXPECT_EQ(D.liveBytesBornAfter(2000), 0u);
}

TEST(EpochDemographicsTest, MidEpochBoundaryZeroesTheContainingEpoch) {
  EpochDemographics D;
  D.beginScavenge(0);
  D.recordSurvivor(500, 100);
  D.endScavenge(1000);
  D.beginScavenge(0);
  D.recordSurvivor(1500, 50);
  D.endScavenge(2000);

  // A boundary strictly inside epoch 0 threatens the whole epoch: its
  // stale estimate is zeroed before re-measurement, and only epoch 1's
  // estimate survives untouched... but epoch 1 starts after the boundary,
  // so it is zeroed too. Record nothing: everything threatened reads 0.
  D.beginScavenge(700);
  D.endScavenge(3000);
  EXPECT_EQ(D.liveBytesBornAfter(0), 0u);

  // Same shape, but this time the boundary coincides with an epoch start:
  // the earlier epoch is NOT threatened and keeps its stale estimate.
  EpochDemographics E;
  E.beginScavenge(0);
  E.recordSurvivor(500, 100);
  E.endScavenge(1000);
  E.beginScavenge(0);
  E.recordSurvivor(500, 80);
  E.recordSurvivor(1500, 50);
  E.endScavenge(2000);
  E.beginScavenge(1000); // Exactly the epoch-1 start.
  E.endScavenge(3000);
  EXPECT_EQ(E.liveBytesBornAfter(0), 80u);
  EXPECT_EQ(E.liveBytesBornAfter(1000), 0u);
}

TEST(EpochDemographicsTest, ManyRolloversKeepStartsAndEstimatesAligned) {
  EpochDemographics D;
  core::AllocClock Now = 0;
  for (int I = 0; I != 20; ++I) {
    Now += 1000;
    D.beginScavenge(Now - 1000); // FIXED1-style: threaten the last epoch.
    D.recordSurvivor(Now - 500, 10);
    D.endScavenge(Now);
  }
  EXPECT_EQ(D.numEpochs(), 21u);
  for (size_t I = 0; I != D.numEpochs(); ++I)
    EXPECT_EQ(D.epochStart(I), I * 1000) << I;
  // Every closed epoch holds its 10 stale bytes.
  EXPECT_EQ(D.liveBytesBornAfter(0), 200u);
  EXPECT_EQ(D.liveBytesBornAfter(10'000), 100u);
  EXPECT_EQ(D.liveBytesBornAfter(Now), 0u);
}

TEST(EpochDemographicsTest, HeapIntegrationTracksSurvivors) {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Heap H(Config);
  HandleScope Scope(H);
  Object *&Keep = Scope.slot(H.allocate(0, 100));
  H.allocate(0, 100); // Garbage.

  H.collectAtBoundary(0);
  // After the scavenge the survivor table knows exactly the survivor.
  EXPECT_EQ(H.demographics().liveBytesBornAfter(0), Keep->grossBytes());

  // New allocation counts as live immediately.
  Object *Fresh = H.allocate(0, 50);
  EXPECT_EQ(H.demographics().liveBytesBornAfter(0),
            Keep->grossBytes() + Fresh->grossBytes());
  // Born after the first scavenge: only the fresh bytes.
  EXPECT_EQ(H.demographics().liveBytesBornAfter(H.history().last().Time),
            Fresh->grossBytes());
}

TEST(EpochDemographicsTest, FeedMedOnHeapUsesEstimates) {
  // End-to-end: FEEDMED on the real heap promotes after an over-budget
  // pause using the survivor-table estimates.
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Heap H(Config);
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = 300;
  H.setPolicy(core::createPolicy("feedmed", PolicyConfig));

  HandleScope Scope(H);
  // 10 live objects of ~56 bytes: a full trace (~560B) busts the 300-byte
  // budget.
  for (int I = 0; I != 10; ++I)
    Scope.slot(H.allocate(0, 32));
  H.collect(); // Full, over budget.
  core::AllocClock T1 = H.history().last().Time;
  for (int I = 0; I != 4; ++I)
    Scope.slot(H.allocate(0, 32));
  H.collect();
  // Over budget last time: the boundary must have advanced to t_1 (the
  // only candidate whose estimated trace fits).
  EXPECT_EQ(H.history().last().Boundary, T1);
}
