file(REMOVE_RECURSE
  "CMakeFiles/report_seedsweep_test.dir/report_seedsweep_test.cpp.o"
  "CMakeFiles/report_seedsweep_test.dir/report_seedsweep_test.cpp.o.d"
  "report_seedsweep_test"
  "report_seedsweep_test.pdb"
  "report_seedsweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_seedsweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
