# Empty dependencies file for policy_minormajor_test.
# This may be replaced when dependencies are built.
