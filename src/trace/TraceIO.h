//===- trace/TraceIO.h - Trace serialization -------------------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization for allocation traces, playing the role QPT trace files
/// play in the paper's methodology.
///
/// Two formats:
///  * Binary ("DTBT"): magic, version, object count, then per record the
///    LEB128-encoded size and death delta (0 = immortal, else
///    death - birth + 1). Births are implied by the running byte total.
///  * Text: a `# dtb-trace v1` header then one `<size> <death|->` line per
///    record, for hand-written fixtures and debugging.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_TRACE_TRACEIO_H
#define DTB_TRACE_TRACEIO_H

#include "trace/Trace.h"

#include <optional>
#include <string>

namespace dtb {
namespace trace {

/// Serializes \p T in the binary format.
std::string serializeBinary(const Trace &T);

/// Parses the binary format; returns std::nullopt (and fills
/// \p ErrorMessage if non-null) on malformed input.
std::optional<Trace> deserializeBinary(std::string_view Data,
                                       std::string *ErrorMessage = nullptr);

/// Serializes \p T in the text format.
std::string serializeText(const Trace &T);

/// Parses the text format.
std::optional<Trace> deserializeText(std::string_view Data,
                                     std::string *ErrorMessage = nullptr);

/// Writes \p T to \p Path (binary format). Returns false on I/O failure.
bool writeTraceFile(const Trace &T, const std::string &Path);

/// Reads a trace from \p Path, auto-detecting the format from the magic.
std::optional<Trace> readTraceFile(const std::string &Path,
                                   std::string *ErrorMessage = nullptr);

} // namespace trace
} // namespace dtb

#endif // DTB_TRACE_TRACEIO_H
