//===- core/BoundaryPolicy.h - Threatening-boundary policies ---*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central abstraction (§4, Table 1): a garbage collector is a
/// scavenger parameterized by a *threatening boundary policy*. Before the
/// n-th scavenge, at allocation-clock time t_n, the policy chooses TB_n;
/// the collector then threatens (traces and may reclaim) exactly the
/// objects born after TB_n, leaving older objects immune.
///
/// All of the paper's collectors — FULL, FIXED1, FIXED4, FEEDMED, DTBFM,
/// DTBMEM — are instances of this interface; both the trace-driven
/// simulator (sim/) and the real managed runtime (runtime/) drive it.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_CORE_BOUNDARYPOLICY_H
#define DTB_CORE_BOUNDARYPOLICY_H

#include "core/AllocClock.h"
#include "core/ScavengeHistory.h"

#include <cstdint>
#include <string>

namespace dtb {
namespace profiling {
class PhaseProfiler;
} // namespace profiling

namespace core {

/// Live-byte demographics: how many bytes born after a candidate boundary
/// are (believed to be) live right now. FEEDMED and DTBFM use this to
/// predict the tracing cost of a candidate boundary.
///
/// The trace-driven simulator answers exactly (it has oracle liveness from
/// the free events, as in the paper's methodology); the managed runtime
/// answers with survivor-table estimates, as Ungar & Jackson's real
/// collector did.
class Demographics {
public:
  virtual ~Demographics() = default;

  /// Returns (an estimate of) the live bytes born strictly after clock
  /// \p Boundary, i.e. the bytes a scavenge with that boundary would trace.
  virtual uint64_t liveBytesBornAfter(AllocClock Boundary) const = 0;

  /// Returns (an estimate of) the *resident* bytes born strictly after
  /// \p Boundary — live plus unreclaimed garbage; the difference from
  /// liveBytesBornAfter is what a scavenge at that boundary would
  /// reclaim. The default returns the live estimate (a lower bound);
  /// oracle implementations override with exact figures.
  virtual uint64_t residentBytesBornAfter(AllocClock Boundary) const {
    return liveBytesBornAfter(Boundary);
  }
};

/// The inputs and predictions behind one boundary choice, filled by the
/// policy when the caller provides a sink on BoundaryRequest. This is the
/// "decision explanation" telemetry and the bench records attach to every
/// scavenge: what budget the policy was working against, which candidate
/// it picked, and what it predicted the scavenge would trace and reclaim.
/// Fields a policy has no opinion on stay at their defaults.
struct BoundaryDecision {
  /// The pause budget in traced bytes (policies parameterized by
  /// Trace_max; 0 for the others).
  uint64_t TraceMaxBytes = 0;
  /// The memory budget in bytes (DTBMEM; 0 for the others).
  uint64_t MemMaxBytes = 0;
  /// Index into History of the scavenge time chosen as the boundary
  /// candidate (FEEDMED/DTBFM's t_k search), or -1 when the rule did not
  /// pick among history epochs.
  int64_t CandidateEpoch = -1;
  /// Predicted bytes the scavenge will trace at the chosen boundary.
  uint64_t PredictedTracedBytes = 0;
  /// Predicted garbage bytes the scavenge will reclaim (resident minus
  /// live past the boundary, when the policy queried both).
  uint64_t PredictedGarbageBytes = 0;
  /// The policy's live-bytes estimate L (DTBMEM).
  uint64_t LiveEstimateBytes = 0;
  /// True when PredictedTracedBytes/PredictedGarbageBytes were actually
  /// computed (policies like FULL and FIXED make no prediction).
  bool HasPrediction = false;
};

/// Everything a policy may consult when choosing TB_n. The previous
/// scavenge's figures are available through History (empty before the
/// first scavenge).
struct BoundaryRequest {
  /// 1-based index n of the scavenge about to run.
  uint64_t Index = 0;
  /// Current allocation clock t_n.
  AllocClock Now = 0;
  /// Bytes resident just before this scavenge (Mem_n).
  uint64_t MemBytes = 0;
  /// History of scavenges 1..n-1.
  const ScavengeHistory *History = nullptr;
  /// Live-byte demographics provider (never null when a collector drives
  /// the policy; may be an estimating implementation).
  const Demographics *Demo = nullptr;
  /// When non-null, a policy that cannot honor its contract (missing
  /// history, inconsistent demographics) describes the fallback it took
  /// here instead of aborting; the caller logs it as a degradation event.
  /// Policies must still return an admissible boundary in [0, Now].
  std::string *DegradationNote = nullptr;
  /// When non-null, the policy writes a short stable identifier for the
  /// decision rule that produced the returned boundary ("full",
  /// "fit-search", "widen", "hold", "degraded", ...). Telemetry-driven
  /// callers count these per policy; leaving the sink untouched is legal
  /// for user-defined policies (callers default it to "unspecified").
  std::string *RuleFired = nullptr;
  /// When non-null, the policy records its inputs and predictions here so
  /// the caller can explain the decision (telemetry instants, BENCH
  /// records). Optional for user-defined policies.
  BoundaryDecision *Decision = nullptr;
  /// When non-null, the policy attributes its boundary-search work to the
  /// profiling::phase::BoundarySearch phase on this profiler (cost unit:
  /// demographic queries). Optional; policies must behave identically with
  /// and without it.
  profiling::PhaseProfiler *Profiler = nullptr;
};

/// A threatening-boundary policy. Implementations must be deterministic
/// functions of the request (plus their construction parameters) so
/// simulation results are reproducible.
class BoundaryPolicy {
public:
  virtual ~BoundaryPolicy();

  /// A short stable identifier ("full", "fixed1", "dtbmem", ...).
  virtual std::string name() const = 0;

  /// Chooses TB_n for the scavenge described by \p Request. The result is
  /// guaranteed (and checked by callers) to lie in [0, Request.Now].
  virtual AllocClock chooseBoundary(const BoundaryRequest &Request) = 0;

  /// Resets any internal state for a fresh program run. The provided
  /// policies are stateless (all state lives in ScavengeHistory), but
  /// user-defined policies may override.
  virtual void reset() {}
};

/// Shared implementation of Ungar & Jackson's Feedback Mediation boundary
/// search (the FEEDMED rule of Table 1): the least previous scavenge time
/// t_k >= PrevBoundary whose predicted tracing cost fits in \p TraceMax
/// bytes. Returns t_{n-1} when even the youngest candidate is over budget,
/// and PrevBoundary when the previous pause was within budget is handled by
/// callers (FEEDMED keeps the boundary, DTBFM widens it).
AllocClock feedbackMediationSearch(const BoundaryRequest &Request,
                                   AllocClock PrevBoundary,
                                   uint64_t TraceMax);

} // namespace core
} // namespace dtb

#endif // DTB_CORE_BOUNDARYPOLICY_H
