//===- bench/ablation_trigger_policy.cpp - When-to-collect ablation ------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// Compares the paper's fixed-interval trigger against a heap-growth
// trigger (collect when residency reaches a multiple of the last
// survivor set — the opportunistic "when to collect" axis the paper
// delegates to Wilson & Moher). Under each trigger, the boundary policy
// still controls what is collected; the trigger shifts how often.
//
//===----------------------------------------------------------------------===//

#include "report/Experiments.h"
#include "sim/Trigger.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/Units.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>
#include <memory>

using namespace dtb;

int main(int Argc, char **Argv) {
  std::string WorkloadName = "ghost1";
  OptionParser Parser("Fixed-interval vs heap-growth scavenge triggers "
                      "under each boundary policy");
  Parser.addString("workload", "Workload name", &WorkloadName);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;

  const workload::WorkloadSpec *Spec = workload::findWorkload(WorkloadName);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 WorkloadName.c_str());
    return 1;
  }
  trace::Trace T = workload::generateTrace(*Spec);

  struct TriggerCase {
    const char *Label;
    std::unique_ptr<sim::TriggerPolicy> Trigger;
  };
  TriggerCase Triggers[] = {
      {"fixed 1 MB", std::make_unique<sim::FixedBytesTrigger>(1'000'000)},
      {"fixed 250 KB", std::make_unique<sim::FixedBytesTrigger>(250'000)},
      {"growth 1.5x",
       std::make_unique<sim::HeapGrowthTrigger>(1.5, 500'000)},
      {"growth 3x",
       std::make_unique<sim::HeapGrowthTrigger>(3.0, 500'000)},
  };

  std::printf("Trigger-policy ablation on %s\n\n",
              Spec->DisplayName.c_str());
  for (const char *PolicyName : {"full", "dtbfm", "dtbmem"}) {
    Table Tbl({"Trigger", "Scavenges", "Mem mean (KB)", "Mem max (KB)",
               "Traced (KB)", "Median pause (ms)"});
    for (TriggerCase &Case : Triggers) {
      auto Policy = core::createPolicy(PolicyName, {});
      sim::SimulatorConfig SimConfig;
      SimConfig.Trigger = Case.Trigger.get();
      SimConfig.ProgramSeconds = Spec->ProgramSeconds;
      SimConfig.TelemetryTrack =
          "sim/" + Spec->Name + "/" + PolicyName + "@" + Case.Label;
      sim::SimulationResult R = sim::simulate(T, *Policy, SimConfig);
      Tbl.addRow({Case.Label, Table::cell(R.NumScavenges),
                  Table::cell(bytesToKB(R.MemMeanBytes)),
                  Table::cell(bytesToKB(R.MemMaxBytes)),
                  Table::cell(bytesToKB(R.TotalTracedBytes)),
                  Table::cell(R.PauseMillis.median(), 0)});
    }
    std::printf("%s:\n", PolicyName);
    Tbl.print(stdout);
    std::printf("\n");
  }

  std::printf("Reading: the growth trigger adapts collection frequency to "
              "the live\nset — fewer scavenges when survivors are large "
              "(tight headroom buys\nnothing), more when the heap is "
              "mostly garbage. The boundary policies'\nconstraints hold "
              "under either trigger: the axes are orthogonal, as §4\n"
              "argues.\n");
  return 0;
}
