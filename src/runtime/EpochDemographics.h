//===- runtime/EpochDemographics.h - Survivor-table estimates --*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime's implementation of core::Demographics. A real collector
/// cannot know exactly how many live bytes were born after a candidate
/// boundary without tracing, so — like Ungar & Jackson's Feedback
/// Mediation — it keeps a *survivor table*: for each epoch (the interval
/// between two scavenge times) the live bytes observed the last time that
/// epoch was traced. Bytes allocated since the previous scavenge are
/// assumed live (they have not been traced yet).
///
/// Estimates for an epoch go stale until a scavenge threatens it again;
/// this overestimates, which errs toward shorter pauses — the safe
/// direction for the pause-constrained policies.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_RUNTIME_EPOCHDEMOGRAPHICS_H
#define DTB_RUNTIME_EPOCHDEMOGRAPHICS_H

#include "core/BoundaryPolicy.h"

#include <cstdint>
#include <vector>

namespace dtb {
namespace runtime {

/// Live-byte estimates per scavenge epoch.
class EpochDemographics final : public core::Demographics {
public:
  EpochDemographics() { EpochStarts.push_back(0); }

  /// Estimated live bytes born strictly after \p Boundary: the sum of the
  /// estimates of every epoch starting at-or-after the boundary (an epoch
  /// containing the boundary is included wholly — conservative) plus the
  /// untraced bytes allocated since the last scavenge.
  uint64_t liveBytesBornAfter(core::AllocClock Boundary) const override;

  /// Tells the table that \p Bytes were allocated since the last scavenge
  /// (all assumed live).
  void setBytesSinceLastScavenge(uint64_t Bytes) {
    BytesSinceLastScavenge = Bytes;
  }

  /// Returns the epoch index for a birth time.
  size_t epochOf(core::AllocClock Birth) const;

  size_t numEpochs() const { return EpochStarts.size(); }
  core::AllocClock epochStart(size_t Index) const {
    return EpochStarts[Index];
  }

  /// Begins recording survivor bytes for a scavenge with the given
  /// boundary: zeroes the estimates of every epoch starting at-or-after
  /// the boundary (they are about to be re-measured).
  void beginScavenge(core::AllocClock Boundary);

  /// Accumulates \p Bytes of marked (live) storage born at \p Birth.
  void recordSurvivor(core::AllocClock Birth, uint64_t Bytes);

  /// Finishes the scavenge that ran at time \p Now: opens the new empty
  /// epoch [Now, ...) and resets the since-allocation counter.
  void endScavenge(core::AllocClock Now);

  /// Snapshot of the per-epoch estimates, for rolling back an aborted
  /// scavenge. beginScavenge destructively zeroes the threatened epochs
  /// and recordSurvivor accumulates into them; a cycle that aborts before
  /// endScavenge restores the snapshot so the table is exactly as if the
  /// cycle never began (EpochStarts only changes in endScavenge, so the
  /// estimates vector is the whole mutable state).
  std::vector<uint64_t> liveEstimatesSnapshot() const {
    return LiveEstimates;
  }
  void restoreLiveEstimates(std::vector<uint64_t> Snapshot) {
    LiveEstimates = std::move(Snapshot);
  }

private:
  /// Epoch i covers [EpochStarts[i], EpochStarts[i+1]) — the last epoch is
  /// open-ended.
  std::vector<core::AllocClock> EpochStarts;
  std::vector<uint64_t> LiveEstimates = {0};
  uint64_t BytesSinceLastScavenge = 0;
};

} // namespace runtime
} // namespace dtb

#endif // DTB_RUNTIME_EPOCHDEMOGRAPHICS_H
