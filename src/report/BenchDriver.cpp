//===- report/BenchDriver.cpp ---------------------------------------------==//

#include "report/BenchDriver.h"

#include "core/OptimalPolicies.h"
#include "core/Policies.h"
#include "report/Experiments.h"
#include "report/GhostMutator.h"
#include "runtime/Heap.h"
#include "runtime/Mutator.h"
#include "serverload/ServerLoad.h"
#include "sim/Simulator.h"
#include "support/Error.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"
#include "trace/TraceStats.h"
#include "workload/Workload.h"

#include <array>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

using namespace dtb;
using namespace dtb::report;

namespace {

//===----------------------------------------------------------------------===//
// Environment identity
//===----------------------------------------------------------------------===//

/// First line of a shell command's stdout, trimmed; empty on failure.
std::string captureLine(const char *Command) {
  std::string Out;
  if (std::FILE *P = ::popen(Command, "r")) {
    char Buffer[256];
    while (size_t N = std::fread(Buffer, 1, sizeof Buffer, P))
      Out.append(Buffer, N);
    ::pclose(P);
  }
  if (size_t Eol = Out.find('\n'); Eol != std::string::npos)
    Out.resize(Eol);
  return Out;
}

std::string buildFlagsString() {
  std::string Flags;
#if DTB_TELEMETRY
  Flags += "telemetry=on";
#else
  Flags += "telemetry=off";
#endif
#ifdef NDEBUG
  Flags += ";ndebug";
#endif
#ifdef __VERSION__
  Flags += ";compiler=" __VERSION__;
#endif
  return Flags;
}

//===----------------------------------------------------------------------===//
// Wall measurement
//===----------------------------------------------------------------------===//

double timeSeconds(const std::function<void()> &Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Warmup runs discarded, then one sample per timed repeat.
std::vector<double> measureWall(const BenchDriverOptions &Options,
                                const std::function<void()> &Fn) {
  for (unsigned I = 0; I != Options.Warmup; ++I)
    Fn();
  std::vector<double> Samples;
  unsigned Repeats = Options.Repeats ? Options.Repeats : 1;
  for (unsigned I = 0; I != Repeats; ++I)
    Samples.push_back(timeSeconds(Fn));
  return Samples;
}

//===----------------------------------------------------------------------===//
// Deterministic stages
//===----------------------------------------------------------------------===//

/// The quick suite's sim grid: the parallel-equivalence scale — three
/// small steady-state workloads, full policy set, scaled budgets.
std::vector<workload::WorkloadSpec> quickWorkloads() {
  std::vector<workload::WorkloadSpec> Workloads = {
      workload::makeSteadyStateSpec(200'000, 1),
      workload::makeSteadyStateSpec(300'000, 2),
      workload::makeSteadyStateSpec(250'000, 3)};
  Workloads[1].Name = "steady2";
  Workloads[1].DisplayName = "STEADY2";
  Workloads[2].Name = "steady3";
  Workloads[2].DisplayName = "STEADY3";
  return Workloads;
}

ExperimentConfig quickGridConfig(unsigned Threads) {
  ExperimentConfig Config;
  Config.TriggerBytes = 20'000;
  Config.TraceMaxBytes = 5'000;
  Config.MemMaxBytes = 60'000;
  Config.Threads = Threads;
  return Config;
}

/// Runs the (workload x policy) sim grid with a per-cell phase profiler and
/// appends one metric group per cell. The fan-out mirrors ExperimentGrid:
/// independent tasks deposit into preassigned slots, and the metric /
/// profile folds run serially in a fixed (workload, policy) order, so the
/// record is bit-identical for every thread count.
void runSimGridStage(const std::vector<workload::WorkloadSpec> &Workloads,
                     const ExperimentConfig &Config, BenchRecord &Record,
                     profiling::PhaseProfiler &Merged) {
  const std::vector<std::string> &Policies = core::paperPolicyNames();
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = Config.TraceMaxBytes;
  PolicyConfig.MemMaxBytes = Config.MemMaxBytes;

  PoolSelection Pool(Config.Threads);
  std::vector<trace::Trace> Traces(Workloads.size());
  parallelFor(
      Workloads.size(),
      [&](size_t W) { Traces[W] = workload::generateTrace(Workloads[W]); },
      Pool.pool());

  struct Cell {
    sim::SimulationResult Result;
    profiling::PhaseProfiler Profile;
  };
  std::vector<Cell> Cells(Workloads.size() * Policies.size());
  parallelFor(
      Cells.size(),
      [&](size_t I) {
        size_t W = I / Policies.size();
        size_t P = I % Policies.size();
        sim::SimulatorConfig SimConfig;
        SimConfig.TriggerBytes = Config.TriggerBytes;
        SimConfig.Machine = Config.Machine;
        SimConfig.ProgramSeconds = Workloads[W].ProgramSeconds;
        Cells[I].Profile.setEnabled(true);
        SimConfig.Profiler = &Cells[I].Profile;
        std::unique_ptr<core::BoundaryPolicy> Policy =
            core::createPolicy(Policies[P], PolicyConfig);
        Cells[I].Result = sim::simulate(Traces[W], *Policy, SimConfig);
      },
      Pool.pool());

  for (size_t I = 0; I != Cells.size(); ++I) {
    size_t W = I / Policies.size();
    size_t P = I % Policies.size();
    const sim::SimulationResult &R = Cells[I].Result;
    std::string Prefix = "sim/" + Workloads[W].Name + "/" + Policies[P] + "/";
    Record.addExact(Prefix + "mem_mean_bytes", "bytes", R.MemMeanBytes);
    Record.addExact(Prefix + "mem_max_bytes", "bytes",
                    static_cast<double>(R.MemMaxBytes));
    Record.addExact(Prefix + "traced_bytes", "bytes",
                    static_cast<double>(R.TotalTracedBytes));
    Record.addExact(Prefix + "num_scavenges", "count",
                    static_cast<double>(R.NumScavenges));
    Record.addExact(Prefix + "pause_p50_ms", "ms", R.PauseMillis.median());
    Record.addExact(Prefix + "pause_p90_ms", "ms",
                    R.PauseMillis.percentile90());
    Merged.mergeFrom(Cells[I].Profile);
  }
}

/// Runs the (server scenario x policy) sim grid with tail metrics. Mirrors
/// runSimGridStage's determinism recipe (preassigned slots, serial fixed-
/// order fold) but adds the two tail families the server suite gates:
/// machine-model pause quantiles out to p99.9, and the memory-*overshoot*
/// distribution — per scavenge, resident bytes just before the collection
/// minus the trace's oracle live bytes at that clock, i.e. the floating
/// garbage the policy allowed to accumulate. Each scenario runs under its
/// own suggested trigger/constraint set (the scenarios differ in live
/// level by design). Pass null \p Record / \p Merged for a pure wall pass.
void runServerGridStage(unsigned Threads, BenchRecord *Record,
                        profiling::PhaseProfiler *Merged) {
  const std::vector<serverload::ServerScenario> &Scenarios =
      serverload::serverScenarios();
  const std::vector<std::string> &Policies = core::paperPolicyNames();

  PoolSelection Pool(Threads);
  std::vector<trace::Trace> Traces(Scenarios.size());
  parallelFor(
      Scenarios.size(),
      [&](size_t S) {
        Traces[S] = serverload::generateServerTrace(Scenarios[S]);
      },
      Pool.pool());

  struct Cell {
    sim::SimulationResult Result;
    SampleSet OvershootBytes;
    profiling::PhaseProfiler Profile;
  };
  std::vector<Cell> Cells(Scenarios.size() * Policies.size());
  parallelFor(
      Cells.size(),
      [&](size_t I) {
        size_t S = I / Policies.size();
        size_t P = I % Policies.size();
        const serverload::ServerScenario &Scenario = Scenarios[S];
        core::PolicyConfig PolicyConfig;
        PolicyConfig.TraceMaxBytes = Scenario.TraceMaxBytes;
        PolicyConfig.MemMaxBytes = Scenario.MemMaxBytes;
        sim::SimulatorConfig SimConfig;
        SimConfig.TriggerBytes = Scenario.TriggerBytes;
        SimConfig.ProgramSeconds = Scenario.ProgramSeconds;
        if (Merged) {
          Cells[I].Profile.setEnabled(true);
          SimConfig.Profiler = &Cells[I].Profile;
        }
        std::unique_ptr<core::BoundaryPolicy> Policy =
            core::createPolicy(Policies[P], PolicyConfig);
        Cells[I].Result = sim::simulate(Traces[S], *Policy, SimConfig);

        const std::vector<core::ScavengeRecord> &History =
            Cells[I].Result.History.records();
        std::vector<trace::AllocClock> Times;
        Times.reserve(History.size());
        for (const core::ScavengeRecord &R : History)
          Times.push_back(R.Time);
        std::vector<uint64_t> Live = trace::liveBytesAt(Traces[S], Times);
        for (size_t N = 0; N != History.size(); ++N) {
          uint64_t Mem = History[N].MemBeforeBytes;
          Cells[I].OvershootBytes.add(
              Mem > Live[N] ? static_cast<double>(Mem - Live[N]) : 0.0);
        }
      },
      Pool.pool());

  if (!Record)
    return;
  for (size_t I = 0; I != Cells.size(); ++I) {
    size_t S = I / Policies.size();
    size_t P = I % Policies.size();
    const sim::SimulationResult &R = Cells[I].Result;
    std::string Prefix =
        "server/" + Scenarios[S].Name + "/" + Policies[P] + "/";
    Record->addExact(Prefix + "pause_p50_ms", "ms", R.PauseMillis.median());
    Record->addExact(Prefix + "pause_p99_ms", "ms",
                     R.PauseMillis.quantile(0.99));
    Record->addExact(Prefix + "pause_p999_ms", "ms",
                     R.PauseMillis.quantile(0.999));
    Record->addExact(Prefix + "mem_overshoot_p50_bytes", "bytes",
                     Cells[I].OvershootBytes.median());
    Record->addExact(Prefix + "mem_overshoot_p99_bytes", "bytes",
                     Cells[I].OvershootBytes.quantile(0.99));
    Record->addExact(Prefix + "mem_overshoot_p999_bytes", "bytes",
                     Cells[I].OvershootBytes.quantile(0.999));
    Record->addExact(Prefix + "mem_max_bytes", "bytes",
                     static_cast<double>(R.MemMaxBytes));
    Record->addExact(Prefix + "traced_bytes", "bytes",
                     static_cast<double>(R.TotalTracedBytes));
    Record->addExact(Prefix + "num_scavenges", "count",
                     static_cast<double>(R.NumScavenges));
    if (Merged)
      Merged->mergeFrom(Cells[I].Profile);
  }
}

/// Scale parameters for the managed-runtime stage.
struct RuntimeScale {
  uint64_t TotalBytes;
  uint64_t TriggerBytes;
  uint64_t TraceMaxBytes;
  uint64_t MemMaxBytes;
};

constexpr RuntimeScale QuickRuntime = {400'000, 20'000, 5'000, 60'000};
/// runtime_end_to_end's defaults: ~GHOST(1) at 1/10 scale.
constexpr RuntimeScale FullRuntime = {5'000'000, 100'000, 12'000, 300'000};

/// One GhostMutator run per policy on the real runtime; serial, so the
/// record and profile are deterministic by construction. \p Profiled
/// controls whether heap profilers record (off for pure wall repeats).
///
/// When \p Record is set, every policy also runs a second, budget-sliced
/// pass on \p TraceLanes lanes (ScavengeBudgetBytes = Scale.TraceMaxBytes)
/// whose exported scavenge stream must match the monolithic serial run
/// bit for bit — the driver fatals otherwise, so any determinism breach
/// in the parallel or incremental trace fails the bench rather than
/// shifting numbers silently. The budgeted pass contributes the
/// trace_quanta / max_quantum_traced_bytes metrics from one final
/// full-heap collection, bound-checked against the budget.
void runRuntimePolicies(const RuntimeScale &Scale, unsigned TraceLanes,
                        BenchRecord *Record,
                        profiling::PhaseProfiler *Merged) {
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = Scale.TraceMaxBytes;
  PolicyConfig.MemMaxBytes = Scale.MemMaxBytes;

  // Degradation-ladder accounting across every heap the stage runs
  // (monolithic and budgeted passes alike). A clean bench run must not
  // take a single rung — the exported runtime/degradation/* exact
  // metrics let bench_compare gate that at zero against the baseline.
  std::array<uint64_t, runtime::NumDegradationKinds> DegradationByKind{};
  uint64_t DegradationTotal = 0;
  auto AccumulateDegradation = [&](const runtime::Heap &Heap) {
    DegradationTotal += Heap.totalDegradationEvents();
    for (unsigned Kind = 0; Kind != runtime::NumDegradationKinds; ++Kind)
      DegradationByKind[Kind] += Heap.degradationEventsOfKind(
          static_cast<runtime::DegradationKind>(Kind));
  };

  for (const std::string &Name : core::paperPolicyNames()) {
    runtime::HeapConfig Config;
    Config.TriggerBytes = Scale.TriggerBytes;
    runtime::Heap H(Config);
    H.setPolicy(core::createPolicy(Name, PolicyConfig));
    if (Merged)
      H.profiler().setEnabled(true);

    runtime::HandleScope Scope(H);
    GhostMutator Mutator(H, Scope, /*Seed=*/0x61057);
    Mutator.run(Scale.TotalBytes);

    if (Record) {
      RunningStats MemBefore;
      SampleSet PauseBytes;
      uint64_t Traced = 0;
      for (const core::ScavengeRecord &R : H.history().records()) {
        MemBefore.add(static_cast<double>(R.MemBeforeBytes));
        PauseBytes.add(static_cast<double>(R.TracedBytes));
        Traced += R.TracedBytes;
      }
      std::string Prefix = "runtime/" + Name + "/";
      Record->addExact(Prefix + "num_collections", "count",
                       static_cast<double>(H.history().size()));
      Record->addExact(Prefix + "mem_before_mean_bytes", "bytes",
                       MemBefore.mean());
      Record->addExact(Prefix + "mem_before_max_bytes", "bytes",
                       MemBefore.max());
      Record->addExact(Prefix + "traced_bytes", "bytes",
                       static_cast<double>(Traced));
      Record->addExact(Prefix + "pause_p50_traced_bytes", "bytes",
                       PauseBytes.median());
      Record->addExact(Prefix + "pause_p99_traced_bytes", "bytes",
                       PauseBytes.quantile(0.99));
      Record->addExact(Prefix + "pause_p999_traced_bytes", "bytes",
                       PauseBytes.quantile(0.999));

      // Budget-sliced parallel re-run: same mutator, trace cut into
      // ScavengeBudgetBytes quanta across TraceLanes lanes.
      runtime::HeapConfig BudgetConfig;
      BudgetConfig.TriggerBytes = Scale.TriggerBytes;
      BudgetConfig.TraceThreads = TraceLanes;
      BudgetConfig.ScavengeBudgetBytes = Scale.TraceMaxBytes;
      runtime::Heap B(BudgetConfig);
      B.setPolicy(core::createPolicy(Name, PolicyConfig));
      runtime::HandleScope BudgetScope(B);
      GhostMutator BudgetMutator(B, BudgetScope, /*Seed=*/0x61057);
      BudgetMutator.run(Scale.TotalBytes);

      if (B.history().size() != H.history().size())
        fatalError("budgeted runtime pass diverges: " +
                   std::to_string(B.history().size()) + " vs " +
                   std::to_string(H.history().size()) + " scavenges (" +
                   Name + ")");
      for (uint64_t I = 1; I <= H.history().size(); ++I) {
        const core::ScavengeRecord &A = H.history().record(I);
        const core::ScavengeRecord &C = B.history().record(I);
        if (A.Time != C.Time || A.Boundary != C.Boundary ||
            A.TracedBytes != C.TracedBytes ||
            A.MemBeforeBytes != C.MemBeforeBytes ||
            A.SurvivedBytes != C.SurvivedBytes ||
            A.ReclaimedBytes != C.ReclaimedBytes)
          fatalError("budgeted runtime pass diverges from the monolithic "
                     "trace at scavenge " + std::to_string(I) + " (" + Name +
                     ")");
      }

      // One final full-heap collection under the budget gives the
      // per-quantum pause bound the incremental trace guarantees: no
      // quantum may overshoot the budget by more than one object.
      B.collectAtBoundary(0);
      const runtime::CollectionStats &S = B.lastCollectionStats();
      if (S.MaxQuantumTracedBytes >
          Scale.TraceMaxBytes + GhostMutator::MaxObjectGrossBytes)
        fatalError("trace quantum overshot the budget by more than one "
                   "object (" + Name + ")");
      Record->addExact(Prefix + "trace_quanta", "count",
                       static_cast<double>(S.TraceQuanta));
      Record->addExact(Prefix + "max_quantum_traced_bytes", "bytes",
                       static_cast<double>(S.MaxQuantumTracedBytes));
      AccumulateDegradation(B);
    }
    AccumulateDegradation(H);
    if (Merged)
      Merged->mergeFrom(H.profiler());
  }

  if (Record) {
    for (unsigned Kind = 0; Kind != runtime::NumDegradationKinds; ++Kind)
      Record->addExact(std::string("runtime/degradation/") +
                           runtime::degradationKindName(
                               static_cast<runtime::DegradationKind>(Kind)),
                       "count", static_cast<double>(DegradationByKind[Kind]));
    Record->addExact("runtime/degradation/total", "count",
                     static_cast<double>(DegradationTotal));
  }
}

//===----------------------------------------------------------------------===//
// Mutator-observability stage (TTSP + per-mutator counters)
//===----------------------------------------------------------------------===//

/// Drives four registered MutatorContexts round-robin from ONE thread
/// with a fixed-seed LCG workload (rooted allocation chains,
/// forward-in-time stores, parks across a neighbour's bursts, explicit
/// safepoint polls), so every rendezvous the trigger rule fires — and
/// with it every TTSP sample, straggler attribution, and per-mutator
/// counter — is deterministic by construction. The stage never touches
/// the thread pool: the concurrency machinery (Dekker handshake,
/// publication, barrier flush) runs for real, but on one thread, so the
/// exported exact metrics are bit-identical across --threads settings
/// and machines, and bench_compare gates them against the baseline.
void runMutatorObservabilityStage(BenchRecord &Record) {
  constexpr size_t NumContexts = 4;
  constexpr uint64_t Steps = 6'000;

  runtime::HeapConfig Config;
  Config.TriggerBytes = 24'000;
  runtime::Heap H(Config);
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = QuickRuntime.TraceMaxBytes;
  PolicyConfig.MemMaxBytes = QuickRuntime.MemMaxBytes;
  H.setPolicy(core::createPolicy("dtbfm", PolicyConfig));
  std::array<std::unique_ptr<runtime::MutatorContext>, NumContexts> Ctxs;
  for (auto &C : Ctxs)
    C = std::make_unique<runtime::MutatorContext>(H);

  uint64_t Lcg = 0x0B5E7B111ull;
  auto Next = [&Lcg] {
    Lcg = Lcg * 6364136223846793005ull + 1442695040888963407ull;
    return Lcg >> 33;
  };

  for (uint64_t Step = 0; Step != Steps; ++Step) {
    runtime::MutatorContext &Ctx = *Ctxs[Step % NumContexts];
    uint64_t Roll = Next();
    if (Roll % 16 == 0) {
      // Park this context across a neighbour's allocation burst: if the
      // burst trips the trigger, the rendezvous sees a genuinely parked
      // context and the straggler tallies exercise that classification.
      Ctx.park();
      runtime::MutatorContext &Other = *Ctxs[(Step + 1) % NumContexts];
      for (int I = 0; I != 4; ++I)
        Other.allocate(1, 32);
      Ctx.unpark();
      continue;
    }
    uint32_t Slots = 1 + static_cast<uint32_t>(Roll % 3);
    uint32_t Raw = static_cast<uint32_t>((Roll >> 8) % 96);
    size_t RootIndex = Ctx.allocateRooted(Slots, Raw);
    if (RootIndex != 0)
      // Forward-in-time store (old root -> the new, younger object):
      // the buffered write barrier's bread and butter.
      Ctx.writeSlot(Ctx.root(RootIndex - 1), 0, Ctx.root(RootIndex));
    Ctx.allocate(0, 8 + static_cast<uint32_t>(Roll % 48)); // Garbage.
    if (Roll % 7 == 0)
      Ctx.safepoint();
    if (Ctx.numRoots() > 256)
      Ctx.truncateRoots(16);
  }
  // Final explicit collection: publishes the tail bursts and leaves the
  // heap's last-rendezvous record covering a full 4-context stop.
  H.collectAtBoundary(0);

  Record.addExact("runtime.safepoint.rendezvous", "count",
                  static_cast<double>(H.lastSafepointRendezvous().Serial));
#if DTB_TELEMETRY
  const runtime::SafepointTtspStats &Ttsp = H.safepointTtspStats();
  Record.addExact("runtime.safepoint.ttsp_p50", "ms",
                  Ttsp.TtspMillis.quantile(0.5));
  Record.addExact("runtime.safepoint.ttsp_p99", "ms",
                  Ttsp.TtspMillis.quantile(0.99));
  Record.addExact("runtime.safepoint.pending_bytes_p99", "bytes",
                  Ttsp.PendingBytes.quantile(0.99));
  Record.addExact("runtime.safepoint.straggler_midop", "count",
                  static_cast<double>(Ttsp.StragglerMidOp));
  Record.addExact("runtime.safepoint.straggler_parked", "count",
                  static_cast<double>(Ttsp.StragglerParked));
  Record.addExact("runtime.safepoint.straggler_polling", "count",
                  static_cast<double>(Ttsp.StragglerPolling));
#endif
  for (size_t I = 0; I != NumContexts; ++I) {
    const runtime::MutatorContext::Stats &S = Ctxs[I]->stats();
    std::string Prefix =
        "runtime/mutator/" + std::to_string(Ctxs[I]->id()) + "/";
    Record.addExact(Prefix + "allocations", "count",
                    static_cast<double>(S.Allocations));
    Record.addExact(Prefix + "alloc_bytes", "bytes",
                    static_cast<double>(S.AllocatedBytes));
    Record.addExact(Prefix + "tlab_refills", "count",
                    static_cast<double>(S.TlabRefills));
    Record.addExact(Prefix + "barrier_flushes", "count",
                    static_cast<double>(S.BarrierFlushes));
#if DTB_TELEMETRY
    Record.addExact(Prefix + "tlab_waste_bytes", "bytes",
                    static_cast<double>(S.Obs.TlabWastedBytes));
    Record.addExact(Prefix + "barrier_high_water", "count",
                    static_cast<double>(S.Obs.BarrierHighWater));
    Record.addExact(Prefix + "safepoint_polls", "count",
                    static_cast<double>(S.Obs.SafepointPolls));
    Record.addExact(Prefix + "parks", "count",
                    static_cast<double>(S.Obs.Parks));
#endif
  }
}

//===----------------------------------------------------------------------===//
// Micro stage (wall-only hot-path loops)
//===----------------------------------------------------------------------===//

runtime::HeapConfig manualHeapConfig() {
  runtime::HeapConfig Config;
  Config.TriggerBytes = 0; // Collections driven manually.
  return Config;
}

/// Wall samples converted to nanoseconds per operation.
std::vector<double> measureWallPerOp(const BenchDriverOptions &Options,
                                     size_t Ops,
                                     const std::function<void()> &Fn) {
  std::vector<double> Samples = measureWall(Options, Fn);
  for (double &S : Samples)
    S = S * 1e9 / static_cast<double>(Ops);
  return Samples;
}

/// Driver-resident counterparts of bench/runtime_micro's hottest loops,
/// reported as wall ns/op so BENCH records track the raw runtime paths
/// without a google-benchmark dependency in the library.
void runMicroStage(const BenchDriverOptions &Options, BenchRecord &Record) {
  constexpr size_t AllocOps = 100'000;
  Record.addWall("wall/micro/allocate_ns_per_op", "ns",
                 measureWallPerOp(Options, AllocOps, [] {
                   runtime::Heap H(manualHeapConfig());
                   for (size_t I = 0; I != AllocOps; ++I)
                     H.allocate(2, 16);
                 }));

  constexpr size_t BarrierOps = 1'000'000;
  Record.addWall("wall/micro/write_barrier_backward_ns_per_op", "ns",
                 measureWallPerOp(Options, BarrierOps, [] {
                   runtime::Heap H(manualHeapConfig());
                   runtime::Object *Old = H.allocate(1);
                   runtime::Object *Young = H.allocate(1);
                   for (size_t I = 0; I != BarrierOps; ++I)
                     H.writeSlot(Young, 0, Old);
                 }));

  Record.addWall("wall/micro/scavenge_full_boundary_seconds", "seconds",
                 measureWall(Options, [] {
                   runtime::Heap H(manualHeapConfig());
                   runtime::HandleScope Scope(H);
                   runtime::Object *&Head = Scope.slot(nullptr);
                   for (size_t I = 0; I != 10'000; ++I) {
                     runtime::Object *Node = H.allocate(1, 16);
                     H.writeSlot(Node, 0, Head);
                     Head = Node;
                     H.allocate(0, 16); // Garbage sibling.
                   }
                   H.collectAtBoundary(0);
                 }));
}

//===----------------------------------------------------------------------===//
// Trace-speedup stage (parallel scavenge wall measurement)
//===----------------------------------------------------------------------===//

/// Builds a wide survivor-heavy heap: \p Chains handle-rooted linked
/// chains of \p Depth nodes each, so every trace round carries ~Chains
/// gray objects and the lanes have real work to steal.
void buildTraceGraph(runtime::Heap &H, runtime::HandleScope &Scope,
                     size_t Chains, size_t Depth) {
  for (size_t C = 0; C != Chains; ++C) {
    runtime::Object *&Head = Scope.slot(nullptr);
    for (size_t D = 0; D != Depth; ++D) {
      runtime::Object *Node = H.allocate(1, 64);
      H.writeSlot(Node, 0, Head);
      Head = Node;
    }
  }
}

/// Wall-times repeated full-heap scavenges of the same survivor graph at
/// one lane vs. \p Lanes lanes and records the paired speedup ratio (the
/// CI smoke gate checks it on multi-core runners). The two heaps' scavenge
/// streams must agree exactly — the parallel trace is deterministic — so
/// a divergence is fatal, not noise.
void runTraceSpeedupStage(const BenchDriverOptions &Options, unsigned Lanes,
                          BenchRecord &Record) {
  constexpr size_t Chains = 2'048;
  constexpr size_t Depth = 128;

  runtime::HeapConfig SerialConfig = manualHeapConfig();
  SerialConfig.TraceThreads = 1;
  runtime::HeapConfig ParallelConfig = manualHeapConfig();
  ParallelConfig.TraceThreads = Lanes;
  runtime::Heap Serial(SerialConfig), Parallel(ParallelConfig);
  runtime::HandleScope SerialScope(Serial), ParallelScope(Parallel);
  buildTraceGraph(Serial, SerialScope, Chains, Depth);
  buildTraceGraph(Parallel, ParallelScope, Chains, Depth);

  std::vector<double> SerialSec =
      measureWall(Options, [&] { Serial.collectAtBoundary(0); });
  std::vector<double> ParallelSec =
      measureWall(Options, [&] { Parallel.collectAtBoundary(0); });

  const core::ScavengeRecord &A = Serial.history().last();
  const core::ScavengeRecord &B = Parallel.history().last();
  if (A.TracedBytes != B.TracedBytes || A.SurvivedBytes != B.SurvivedBytes ||
      A.ReclaimedBytes != B.ReclaimedBytes)
    fatalError("trace-speedup heaps diverge between 1 lane and " +
               std::to_string(Lanes) + " lanes");

  std::vector<double> Speedup;
  for (size_t I = 0; I != SerialSec.size() && I != ParallelSec.size(); ++I)
    Speedup.push_back(ParallelSec[I] > 0.0 ? SerialSec[I] / ParallelSec[I]
                                           : 0.0);
  Record.addWall("wall/runtime/trace_serial_seconds", "seconds", SerialSec);
  Record.addWall("wall/runtime/trace_parallel_seconds", "seconds",
                 ParallelSec);
  Record.addWall("wall/runtime/trace_speedup", "ratio", Speedup,
                 /*LowerIsBetter=*/false);
}

//===----------------------------------------------------------------------===//
// Timing stage (formerly runtime_end_to_end --timing)
//===----------------------------------------------------------------------===//

/// The parallel-engine and indexed-heap-query speedups: the measurements
/// runtime_end_to_end --timing published as timing.* gauges before the
/// BENCH schema existed. Speedups are recorded per repeat (paired ratio),
/// so their MAD reflects the run-to-run noise of the ratio itself.
void runTimingStage(const BenchDriverOptions &Options, unsigned Lanes,
                    BenchRecord &Record) {
  // Grid: parallel vs. forced-serial paper grid.
  if (Options.IncludeWall) {
    ExperimentConfig GridConfig;
    std::vector<double> ParallelSec = measureWall(Options, [&] {
      GridConfig.Threads = Lanes;
      ExperimentGrid::paperGrid(GridConfig);
    });
    std::vector<double> SerialSec = measureWall(Options, [&] {
      GridConfig.Threads = 1;
      ExperimentGrid::paperGrid(GridConfig);
    });
    std::vector<double> Speedup;
    for (size_t I = 0; I != ParallelSec.size() && I != SerialSec.size(); ++I)
      Speedup.push_back(ParallelSec[I] > 0.0 ? SerialSec[I] / ParallelSec[I]
                                             : 0.0);
    Record.addWall("wall/timing/grid_serial_seconds", "seconds", SerialSec);
    Record.addWall("wall/timing/grid_parallel_seconds", "seconds",
                   ParallelSec);
    Record.addWall("wall/timing/grid_speedup", "ratio", Speedup,
                   /*LowerIsBetter=*/false);
  }

  // Heap queries: the largest paper workload under the oracle memory-first
  // boundary search, indexed vs. retained naive scans. A budget just above
  // the mean live size binds at every scavenge, so the binary search (the
  // code being measured) actually runs.
  const workload::WorkloadSpec *Largest = nullptr;
  for (const workload::WorkloadSpec &Spec : workload::paperWorkloads())
    if (!Largest || Spec.TotalAllocationBytes > Largest->TotalAllocationBytes)
      Largest = &Spec;
  trace::Trace T = workload::generateTrace(*Largest);
  trace::TraceStats Stats = trace::computeTraceStats(T);
  auto MemBudget = static_cast<uint64_t>(Stats.LiveMeanBytes * 1.2);
  core::OptimalMemoryPolicy MemFirst(MemBudget);

  sim::SimulatorConfig SimConfig;
  SimConfig.ProgramSeconds = Largest->ProgramSeconds;

  // One deterministic run of each query mode: the consistency check and
  // the exact metrics.
  sim::SimulationResult Indexed = sim::simulate(T, MemFirst, SimConfig);
  SimConfig.UseNaiveHeapQueries = true;
  sim::SimulationResult Scanned = sim::simulate(T, MemFirst, SimConfig);
  SimConfig.UseNaiveHeapQueries = false;
  if (Indexed.TotalTracedBytes != Scanned.TotalTracedBytes ||
      Indexed.NumScavenges != Scanned.NumScavenges)
    fatalError("indexed and scan heap-query runs disagree");

  Record.addExact("timing/heap_queries/mem_budget_bytes", "bytes",
                  static_cast<double>(MemBudget));
  Record.addExact("timing/heap_queries/num_scavenges", "count",
                  static_cast<double>(Indexed.NumScavenges));
  Record.addExact("timing/heap_queries/traced_bytes", "bytes",
                  static_cast<double>(Indexed.TotalTracedBytes));

  if (Options.IncludeWall) {
    std::vector<double> IndexedSec = measureWall(Options, [&] {
      sim::simulate(T, MemFirst, SimConfig);
    });
    sim::SimulatorConfig ScanConfig = SimConfig;
    ScanConfig.UseNaiveHeapQueries = true;
    std::vector<double> ScanSec = measureWall(Options, [&] {
      sim::simulate(T, MemFirst, ScanConfig);
    });
    std::vector<double> Speedup;
    for (size_t I = 0; I != IndexedSec.size() && I != ScanSec.size(); ++I)
      Speedup.push_back(IndexedSec[I] > 0.0 ? ScanSec[I] / IndexedSec[I]
                                            : 0.0);
    Record.addWall("wall/timing/heap_queries_scan_seconds", "seconds",
                   ScanSec);
    Record.addWall("wall/timing/heap_queries_indexed_seconds", "seconds",
                   IndexedSec);
    Record.addWall("wall/timing/heap_queries_speedup", "ratio", Speedup,
                   /*LowerIsBetter=*/false);
  }
}

} // namespace

const std::vector<std::string> &dtb::report::benchSuiteNames() {
  static const std::vector<std::string> Names = {"quick", "paper", "runtime",
                                                 "timing", "server"};
  return Names;
}

BenchSuiteResult dtb::report::runBenchSuite(const BenchDriverOptions &Options) {
  BenchSuiteResult Result;
  BenchRecord &Record = Result.Record;
  Record.Suite = Options.Suite;
  unsigned Lanes = Options.Threads ? Options.Threads : defaultThreadCount();
  unsigned TraceLanes = Options.TraceLanes ? Options.TraceLanes : Lanes;

  if (Options.IncludeEnv) {
    Record.HasEnv = true;
    Record.GitSha = captureLine("git rev-parse HEAD 2>/dev/null");
    if (Record.GitSha.empty())
      Record.GitSha = "unknown";
    Record.BuildFlags = buildFlagsString();
    Record.Threads = Lanes;
    Record.TraceLanes = TraceLanes;
  }

  if (Options.Suite == "quick") {
    profiling::PhaseProfiler &Sim = Result.Profiles["sim"];
    profiling::PhaseProfiler &Runtime = Result.Profiles["runtime"];
    runSimGridStage(quickWorkloads(), quickGridConfig(Options.Threads),
                    Record, Sim);
    runRuntimePolicies(QuickRuntime, TraceLanes, &Record, &Runtime);
    runMutatorObservabilityStage(Record);
    if (Options.IncludeWall) {
      Record.addWall("wall/quick/sim_grid_seconds", "seconds",
                     measureWall(Options, [&] {
                       ExperimentGrid(quickWorkloads(),
                                      core::paperPolicyNames(),
                                      quickGridConfig(Options.Threads));
                     }));
      Record.addWall("wall/quick/runtime_seconds", "seconds",
                     measureWall(Options, [&] {
                       runRuntimePolicies(QuickRuntime, 1, nullptr, nullptr);
                     }));
    }
    addProfileToRecord(Sim, "sim", Record);
    addProfileToRecord(Runtime, "runtime", Record);
  } else if (Options.Suite == "paper") {
    profiling::PhaseProfiler &Sim = Result.Profiles["sim"];
    profiling::PhaseProfiler &Runtime = Result.Profiles["runtime"];
    ExperimentConfig Config;
    Config.Threads = Options.Threads;
    runSimGridStage(workload::paperWorkloads(), Config, Record, Sim);
    runRuntimePolicies(FullRuntime, TraceLanes, &Record, &Runtime);
    if (Options.IncludeWall)
      Record.addWall("wall/paper/sim_grid_seconds", "seconds",
                     measureWall(Options, [&] {
                       ExperimentConfig WallConfig;
                       WallConfig.Threads = Options.Threads;
                       ExperimentGrid::paperGrid(WallConfig);
                     }));
    addProfileToRecord(Sim, "sim", Record);
    addProfileToRecord(Runtime, "runtime", Record);
  } else if (Options.Suite == "runtime") {
    profiling::PhaseProfiler &Runtime = Result.Profiles["runtime"];
    runRuntimePolicies(FullRuntime, TraceLanes, &Record, &Runtime);
    runMutatorObservabilityStage(Record);
    if (Options.IncludeWall) {
      Record.addWall("wall/runtime/policies_seconds", "seconds",
                     measureWall(Options, [&] {
                       runRuntimePolicies(FullRuntime, 1, nullptr, nullptr);
                     }));
      runMicroStage(Options, Record);
      runTraceSpeedupStage(Options, TraceLanes, Record);
    }
    addProfileToRecord(Runtime, "runtime", Record);
  } else if (Options.Suite == "timing") {
    runTimingStage(Options, Lanes, Record);
  } else if (Options.Suite == "server") {
    profiling::PhaseProfiler &Sim = Result.Profiles["sim"];
    runServerGridStage(Options.Threads, &Record, &Sim);
    runMutatorObservabilityStage(Record);
    if (Options.IncludeWall)
      Record.addWall("wall/server/sim_grid_seconds", "seconds",
                     measureWall(Options, [&] {
                       runServerGridStage(Options.Threads, nullptr, nullptr);
                     }));
    addProfileToRecord(Sim, "sim", Record);
  } else {
    fatalError("unknown bench suite '" + Options.Suite +
               "' (expected quick, paper, runtime, timing, or server)");
  }
  return Result;
}
