# Empty dependencies file for report_seedsweep_test.
# This may be replaced when dependencies are built.
