# Empty compiler generated dependencies file for table5_6_workloads.
# This may be replaced when dependencies are built.
