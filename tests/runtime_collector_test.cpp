//===- tests/runtime_collector_test.cpp -----------------------------------==//
//
// Tests for the mark-sweep scavenger: reclamation correctness under
// arbitrary boundaries, tenured garbage and untenuring, remembered-set
// rooting (including the paper's Figure 1 nepotism scenario), stale-entry
// pruning, and quarantine poisoning.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"

#include "core/Policies.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::runtime;

namespace {

HeapConfig quarantineConfig() {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Config.QuarantineFreedObjects = true;
  return Config;
}

} // namespace

TEST(CollectorTest, FullCollectionReclaimsUnreachable) {
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Object *&Live = Scope.slot(H.allocate(1));
  Object *Garbage = H.allocate(0);

  const core::ScavengeRecord &R = H.collectAtBoundary(0);
  EXPECT_TRUE(Live->isAlive());
  EXPECT_FALSE(Garbage->isAlive()); // Quarantined: canary flipped.
  EXPECT_EQ(R.ReclaimedBytes, static_cast<uint64_t>(sizeof(Object)));
  EXPECT_EQ(R.TracedBytes, Live->grossBytes());
  EXPECT_EQ(H.residentObjects(), 1u);
}

TEST(CollectorTest, ReachableGraphSurvivesDeepChain) {
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Object *&Head = Scope.slot(H.allocate(1));
  Object *Tail = Head;
  for (int I = 0; I != 100; ++I) {
    Object *Next = H.allocate(1);
    H.writeSlot(Tail, 0, Next);
    Tail = Next;
  }
  H.collectAtBoundary(0);
  EXPECT_EQ(H.residentObjects(), 101u);
  // Walk the chain: everything alive.
  Object *Cursor = Head;
  int Count = 0;
  while (Cursor) {
    EXPECT_TRUE(Cursor->isAlive());
    Cursor = Cursor->slot(0);
    ++Count;
  }
  EXPECT_EQ(Count, 101);
}

TEST(CollectorTest, ImmuneGarbageSurvivesAsTenured) {
  Heap H(quarantineConfig());
  Object *OldGarbage = H.allocate(0, 100);
  core::AllocClock Boundary = H.now();
  H.allocate(0, 100); // Young garbage.

  const core::ScavengeRecord &R = H.collectAtBoundary(Boundary);
  // Only the young garbage was reclaimed; the immune one is tenured
  // garbage and still resident.
  EXPECT_TRUE(OldGarbage->isAlive());
  EXPECT_EQ(H.residentObjects(), 1u);
  EXPECT_EQ(R.SurvivedBytes, OldGarbage->grossBytes());
}

TEST(CollectorTest, UntenuringReclaimsOldGarbageLater) {
  Heap H(quarantineConfig());
  Object *OldGarbage = H.allocate(0, 100);
  core::AllocClock Boundary = H.now();
  H.allocate(0, 100);
  H.collectAtBoundary(Boundary); // Tenured garbage survives.
  ASSERT_TRUE(OldGarbage->isAlive());

  // Move the boundary back to 0: the paper's demotion. The tenured
  // garbage is reclaimed.
  H.collectAtBoundary(0);
  EXPECT_FALSE(OldGarbage->isAlive());
  EXPECT_EQ(H.residentObjects(), 0u);
}

TEST(CollectorTest, RememberedSetKeepsCrossBoundaryTarget) {
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Object *&Old = Scope.slot(H.allocate(1));
  core::AllocClock Boundary = H.now();
  Object *Young = H.allocate(0);
  H.writeSlot(Old, 0, Young); // Forward-in-time: remembered.

  // Scavenge threatening only the young object. The ONLY path to it from
  // the roots goes through the immune object, which is not traced — the
  // remembered set must keep it alive.
  H.collectAtBoundary(Boundary);
  EXPECT_TRUE(Young->isAlive());
  EXPECT_EQ(H.lastCollectionStats().RememberedSetRoots, 1u);
  EXPECT_EQ(Old->slot(0), Young);
}

TEST(CollectorTest, MissingBarrierWouldLoseTheTarget) {
  // The negative of the previous test: with the store done behind the
  // barrier's back, the young object is (incorrectly, if this were mutator
  // code) reclaimed — demonstrating exactly what the remembered set is
  // for.
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Object *&Old = Scope.slot(H.allocate(1));
  core::AllocClock Boundary = H.now();
  Object *Young = H.allocate(0);
  H.dangerouslyWriteSlotWithoutBarrier(Old, 0, Young);

  H.collectAtBoundary(Boundary);
  EXPECT_FALSE(Young->isAlive());
}

TEST(CollectorTest, NepotismKeepsTargetOfTenuredGarbage) {
  // The paper's Figure 1: tenured garbage I points at threatened F; F is
  // unreachable from the program, yet survives because the remembered-set
  // entry from the (dead but immune) source acts as a root. A later
  // full collection reclaims both.
  Heap H(quarantineConfig());
  Object *TenuredGarbage = H.allocate(1); // Never rooted.
  core::AllocClock Boundary = H.now();
  Object *Victim = H.allocate(0);
  H.writeSlot(TenuredGarbage, 0, Victim);

  H.collectAtBoundary(Boundary);
  // Nepotism: the victim survived even though nothing live references it.
  EXPECT_TRUE(Victim->isAlive());

  // Full collection (boundary 0) finally reclaims both.
  H.collectAtBoundary(0);
  EXPECT_FALSE(TenuredGarbage->isAlive());
  EXPECT_FALSE(Victim->isAlive());
  EXPECT_EQ(H.residentObjects(), 0u);
}

TEST(CollectorTest, StaleRememberedEntriesArePruned) {
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Object *&Old = Scope.slot(H.allocate(1));
  Object *Young = H.allocate(0);
  H.writeSlot(Old, 0, Young);
  ASSERT_EQ(H.rememberedSet().size(), 1u);

  // Overwrite the slot: the entry is stale and pruned at the next
  // scavenge.
  H.writeSlot(Old, 0, nullptr);
  H.collectAtBoundary(0);
  EXPECT_TRUE(H.rememberedSet().empty());
  EXPECT_EQ(H.lastCollectionStats().RememberedSetPruned, 1u);
}

TEST(CollectorTest, DyingSourceDropsItsEntries) {
  Heap H(quarantineConfig());
  Object *DoomedOld = H.allocate(1); // Unreachable.
  Object *Young = H.allocate(0);
  H.writeSlot(DoomedOld, 0, Young);
  ASSERT_EQ(H.rememberedSet().size(), 1u);

  H.collectAtBoundary(0); // Reclaims both.
  EXPECT_TRUE(H.rememberedSet().empty());
}

TEST(CollectorTest, QuarantinePoisonsPayload) {
  Heap H(quarantineConfig());
  Object *Garbage = H.allocate(0, 8);
  const char *Raw = static_cast<const char *>(Garbage->rawData());
  H.collectAtBoundary(0);
  EXPECT_FALSE(Garbage->isAlive());
  for (int I = 0; I != 8; ++I)
    EXPECT_EQ(static_cast<unsigned char>(Raw[I]), 0xDB);
}

TEST(CollectorTest, HistoryRecordsAreComplete) {
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Scope.slot(H.allocate(0, 100));
  H.allocate(0, 50);

  uint64_t MemBefore = H.residentBytes();
  core::AllocClock Now = H.now();
  const core::ScavengeRecord &R = H.collectAtBoundary(0);
  EXPECT_EQ(R.Index, 1u);
  EXPECT_EQ(R.Time, Now);
  EXPECT_EQ(R.Boundary, 0u);
  EXPECT_EQ(R.MemBeforeBytes, MemBefore);
  EXPECT_EQ(R.MemBeforeBytes, R.SurvivedBytes + R.ReclaimedBytes);
  EXPECT_EQ(H.history().size(), 1u);
}

TEST(CollectorTest, PolicyDrivenCollect) {
  Heap H(quarantineConfig());
  H.setPolicy(core::createPolicy("fixed1", {}));
  HandleScope Scope(H);
  Scope.slot(H.allocate(0, 100));
  H.allocate(0, 100);

  // First policy-driven collection: FIXED1's t_0 = 0 -> full.
  const core::ScavengeRecord &First = H.collect();
  EXPECT_EQ(First.Boundary, 0u);

  Object *MidGarbage = H.allocate(0, 100);
  (void)MidGarbage;
  const core::ScavengeRecord &Second = H.collect();
  // Second collection: boundary at t_1.
  EXPECT_EQ(Second.Boundary, First.Time);
}

TEST(CollectorTest, CollectedHeapPassesVerifier) {
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Object *&Root = Scope.slot(H.allocate(3));
  for (int I = 0; I != 3; ++I) {
    Object *Child = H.allocate(1, 16);
    H.writeSlot(Root, static_cast<uint32_t>(I), Child);
    H.allocate(0, 24); // Garbage.
  }
  H.collectAtBoundary(0);
  VerifyResult Result = verifyHeap(H);
  EXPECT_TRUE(Result.Ok) << (Result.Problems.empty()
                                 ? ""
                                 : Result.Problems.front());
  EXPECT_EQ(reachableBytes(H), H.residentBytes());
}

TEST(CollectorTest, SelfReferentialCycleCollectsWhenUnrooted) {
  Heap H(quarantineConfig());
  Object *A;
  {
    HandleScope Scope(H);
    Object *&RootedA = Scope.slot(H.allocate(1));
    Object *B = H.allocate(1);
    H.writeSlot(RootedA, 0, B);
    H.writeSlot(B, 0, RootedA); // Cycle.
    A = RootedA;
    H.collectAtBoundary(0);
    EXPECT_EQ(H.residentObjects(), 2u); // Rooted: survives.
  }
  // Scope gone: the cycle is unreachable.
  H.collectAtBoundary(0);
  EXPECT_FALSE(A->isAlive());
  EXPECT_EQ(H.residentObjects(), 0u);
}
