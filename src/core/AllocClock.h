//===- core/AllocClock.h - The allocation clock ----------------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocation clock used for all object ages and threatening
/// boundaries: cumulative bytes allocated since program start. This is the
/// natural monotone "time" of the paper — scavenges are triggered per byte
/// allocated, and DTBMEM's linear-garbage model is expressed over it.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_CORE_ALLOCCLOCK_H
#define DTB_CORE_ALLOCCLOCK_H

#include <cstdint>

namespace dtb {
namespace core {

/// Cumulative bytes allocated since program start.
using AllocClock = uint64_t;

} // namespace core
} // namespace dtb

#endif // DTB_CORE_ALLOCCLOCK_H
