# Empty dependencies file for dtb_sim.
# This may be replaced when dependencies are built.
