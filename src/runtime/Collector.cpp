//===- runtime/Collector.cpp - Scavenging over the threatened set --------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The scavenger: given a threatening boundary TB, the threatened set is
// every object born after TB; immune objects are not traced. Roots are the
// handle-scope slots, global root locations, pinned objects, and every
// remembered-set entry whose (immune) source currently holds a pointer
// across the boundary. Unreachable threatened objects are reclaimed;
// immune garbage stays resident until some later scavenge moves the
// boundary behind it — the paper's tenured garbage and untenuring.
//
// Two strategies implement the same contract (HeapConfig::Collector):
// non-moving mark-sweep (this file) and an evacuating copying collector
// (CopyingCollector.cpp) that relocates survivors, exercising the paper's
// note that "the actual implementation may maintain object locations in
// any order".
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include "core/MachineModel.h"
#include "support/Error.h"
#include "telemetry/Telemetry.h"

#include <cassert>
#include <vector>

using namespace dtb;
using namespace dtb::runtime;
using core::AllocClock;

core::ScavengeRecord Heap::collectAtBoundary(AllocClock Boundary) {
  if (Boundary > Clock)
    fatalError("threatening boundary lies in the future");
  if (InCollection)
    fatalError("re-entrant collection");
  // A lost remembered set means crossing pointers may be unrecorded; the
  // only sound boundary until the set is rebuilt is 0 (trace everything).
  bool RebuildRemSet = RemSetPessimized;
  if (RebuildRemSet && Boundary != 0) {
    recordDegradation({DegradationKind::BoundaryPessimized, Clock, 0, 0,
                       ResidentBytes,
                       "remembered set lost; boundary " +
                           std::to_string(Boundary) + " forced to 0"});
    Boundary = 0;
  }
  InCollection = true;

  LastStats = CollectionStats();
  core::ScavengeRecord Record;
  Record.Index = History.size() + 1;
  Record.Time = Clock;
  Record.Boundary = Boundary;
  Record.MemBeforeBytes = ResidentBytes;

  Demographics.beginScavenge(Boundary);

  ScavengeWork Work = Config.Collector == CollectorKind::MarkSweep
                          ? runMarkSweep(Boundary)
                          : runCopying(Boundary);

  ResidentBytes -= Work.ReclaimedBytes;
  Record.TracedBytes = Work.TracedBytes;
  Record.ReclaimedBytes = Work.ReclaimedBytes;
  Record.SurvivedBytes = ResidentBytes;
  History.append(Record);

  Demographics.endScavenge(Clock);
  BytesSinceCollect = 0;

  // The full trace just visited every survivor; restore write-barrier
  // completeness by re-deriving the set from the live heap.
  if (RebuildRemSet) {
    profiling::ProfilePhase Phase(&Profiler,
                                  profiling::phase::RemSetRebuild);
    rebuildRememberedSet();
    Phase.addCost(RemSet.size());
  }

  // Close this scavenge's phase tree (the policy-decision phase recorded
  // by collect() is part of it) before telemetry walks it.
  Profiler.finishScavenge();
  if (telemetry::enabled())
    emitScavengeTelemetry(History.last());
  InCollection = false;

  if (Config.LogStream) {
    const core::ScavengeRecord &Last = History.last();
    std::fprintf(Config.LogStream,
                 "[gc %llu] t=%llu tb=%llu (window %llu) %s: traced %llu "
                 "reclaimed %llu survived %llu objects %zu remset %zu\n",
                 static_cast<unsigned long long>(Last.Index),
                 static_cast<unsigned long long>(Last.Time),
                 static_cast<unsigned long long>(Last.Boundary),
                 static_cast<unsigned long long>(Last.Time - Last.Boundary),
                 Config.Collector == CollectorKind::MarkSweep ? "mark-sweep"
                                                              : "copying",
                 static_cast<unsigned long long>(Last.TracedBytes),
                 static_cast<unsigned long long>(Last.ReclaimedBytes),
                 static_cast<unsigned long long>(Last.SurvivedBytes),
                 Objects.size(), RemSet.size());
  }
  return History.last();
}

void Heap::emitScavengeTelemetry(const core::ScavengeRecord &Record) {
  namespace tm = dtb::telemetry;
  const std::string &Rule =
      PendingRule.empty() ? std::string("explicit") : PendingRule;

  // Pause span: the machine model converts traced bytes to milliseconds,
  // same as the simulator, so runtime and sim pauses are comparable.
  double PauseMs =
      core::MachineModel().pauseMillisForTracedBytes(Record.TracedBytes);
  tm::Event Pause;
  Pause.Phase = tm::EventPhase::Span;
  Pause.Track = TelemetryTrack;
  Pause.Name = "scavenge";
  Pause.ScavengeIndex = Record.Index;
  Pause.TsClock = Record.Time;
  Pause.DurMillis = PauseMs;
  Pause.Args = {
      tm::arg("tb", Record.Boundary),
      tm::arg("window", Record.Time - Record.Boundary),
      tm::arg("traced_bytes", Record.TracedBytes),
      tm::arg("reclaimed_bytes", Record.ReclaimedBytes),
      tm::arg("survived_bytes", Record.SurvivedBytes),
      tm::arg("mem_before_bytes", Record.MemBeforeBytes),
      tm::arg("objects_traced", LastStats.ObjectsTraced),
      tm::arg("objects_reclaimed", LastStats.ObjectsReclaimed),
      tm::arg("objects_moved", LastStats.ObjectsMoved),
      tm::arg("remset_roots", LastStats.RememberedSetRoots),
      tm::arg("remset_pruned", LastStats.RememberedSetPruned),
      tm::arg("remset_size", static_cast<uint64_t>(RemSet.size())),
      tm::arg("rule", Rule),
  };
  tm::recorder().emit(std::move(Pause));

  // TB decision instant: where the boundary landed, which policy rule put
  // it there, and — when collect() captured one — the full decision
  // explanation: the budgets the policy worked against, the history epoch
  // it picked, and what it predicted the scavenge would trace and reclaim.
  tm::Event Tb;
  Tb.Phase = tm::EventPhase::Instant;
  Tb.Track = TelemetryTrack;
  Tb.Name = "tb";
  Tb.ScavengeIndex = Record.Index;
  Tb.TsClock = Record.Time;
  Tb.Args = {tm::arg("tb", Record.Boundary), tm::arg("rule", Rule)};
  if (PendingDecisionValid) {
    const core::BoundaryDecision &D = LastDecision;
    if (D.TraceMaxBytes != 0)
      Tb.Args.push_back(tm::arg("trace_max_bytes", D.TraceMaxBytes));
    if (D.MemMaxBytes != 0)
      Tb.Args.push_back(tm::arg("mem_max_bytes", D.MemMaxBytes));
    if (D.CandidateEpoch >= 0)
      Tb.Args.push_back(
          tm::arg("candidate_epoch", static_cast<uint64_t>(D.CandidateEpoch)));
    if (D.LiveEstimateBytes != 0)
      Tb.Args.push_back(tm::arg("live_estimate_bytes", D.LiveEstimateBytes));
    if (D.HasPrediction) {
      Tb.Args.push_back(
          tm::arg("predicted_traced_bytes", D.PredictedTracedBytes));
      Tb.Args.push_back(
          tm::arg("predicted_garbage_bytes", D.PredictedGarbageBytes));
    }
  }
  tm::recorder().emit(std::move(Tb));

  // Phase spans: the scavenge's cost-attribution tree as nested spans.
  // Timestamps are synthesized by laying children out inside their parent
  // in recorded order (cost units double as span length), so a trace
  // viewer renders the nesting even though the real clock never advances
  // during a stop-the-world pause.
  const auto &Nodes = Profiler.lastTree();
  if (!Nodes.empty()) {
    std::vector<uint64_t> StartOffset(Nodes.size(), 0);
    std::vector<uint64_t> Consumed(Nodes.size(), 0);
    uint64_t RootConsumed = 0;
    for (size_t I = 0; I != Nodes.size(); ++I) {
      const profiling::PhaseTreeNode &Node = Nodes[I];
      if (Node.Parent < 0) {
        StartOffset[I] = RootConsumed;
        RootConsumed += Node.TotalCost;
      } else {
        size_t P = static_cast<size_t>(Node.Parent);
        StartOffset[I] = StartOffset[P] + Consumed[P];
        Consumed[P] += Node.TotalCost;
      }
      tm::Event PhaseSpan;
      PhaseSpan.Phase = tm::EventPhase::Span;
      PhaseSpan.Track = TelemetryTrack;
      PhaseSpan.Name = std::string("phase.") + Node.Name;
      PhaseSpan.ScavengeIndex = Record.Index;
      PhaseSpan.TsClock = Record.Time + StartOffset[I];
      PhaseSpan.DurMillis = static_cast<double>(Node.TotalCost) / 1000.0;
      PhaseSpan.Args = {tm::arg("self_cost", Node.SelfCost),
                        tm::arg("total_cost", Node.TotalCost)};
      tm::recorder().emit(std::move(PhaseSpan));
    }
  }

  // Residency counter series (Fig. 2's y-axis, post-scavenge points).
  tm::Event Resident;
  Resident.Phase = tm::EventPhase::Counter;
  Resident.Track = TelemetryTrack;
  Resident.Name = "resident_bytes";
  Resident.ScavengeIndex = Record.Index;
  Resident.TsClock = Record.Time;
  Resident.Args = {tm::arg("resident_bytes", ResidentBytes)};
  tm::recorder().emit(std::move(Resident));

  tm::MetricsRegistry &Registry = tm::MetricsRegistry::global();
  Registry.counter("runtime.scavenge.count").add(1);
  Registry.counter("runtime.scavenge.traced_bytes").add(Record.TracedBytes);
  Registry.counter("runtime.scavenge.reclaimed_bytes")
      .add(Record.ReclaimedBytes);
  Registry.histogram("runtime.scavenge.pause_ms").record(PauseMs);
}

Heap::ScavengeWork Heap::runMarkSweep(AllocClock Boundary) {
  ScavengeWork Work;

  // --- Mark phase -------------------------------------------------------
  std::vector<Object *> Worklist;

  auto markIfThreatened = [&](Object *O) {
    if (!O || O->birth() <= Boundary || O->isMarked())
      return;
    assert(O->isAlive() && "tracing through a reclaimed object");
    O->setMarked();
    Work.TracedBytes += O->grossBytes();
    LastStats.ObjectsTraced += 1;
    Demographics.recordSurvivor(O->birth(), O->grossBytes());
    Worklist.push_back(O);
  };

  // Each marking phase's cost is the bytes it discovered (the delta of
  // Work.TracedBytes): root objects bill to root_scan, boundary-crossing
  // targets to remset_scan, everything transitively reached to trace.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::RootScan);
    uint64_t Before = Work.TracedBytes;
    for (Object **Root : GlobalRoots)
      markIfThreatened(*Root);
    for (Object *Handle : HandleSlots)
      markIfThreatened(Handle);
    // Pinned objects survive unconditionally: threatened ones are marked
    // (and traced) here; immune ones are untouchable anyway, and their
    // forward-in-time pointers are covered by the remembered set like any
    // other immune object's.
    for (Object *PinnedObject : Pinned)
      markIfThreatened(PinnedObject);
    Phase.addCost(Work.TracedBytes - Before);
  }

  // Remembered-set roots: entries whose source is immune and whose current
  // value crosses the boundary. Entries are re-validated against the live
  // slot contents; ones that are no longer forward-in-time pointers
  // (overwritten or cleared) are pruned.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::RemSetScan);
    uint64_t Before = Work.TracedBytes;
    RemSet.forEachAndPrune([&](Object *Source, uint32_t SlotIndex) {
      assert(Source->isAlive() && "remembered set names a dead source");
      Object *Target = Source->slot(SlotIndex);
      if (!Target || Target->birth() <= Source->birth()) {
        LastStats.RememberedSetPruned += 1;
        return false; // Stale: no longer a forward-in-time pointer.
      }
      if (Source->birth() <= Boundary && Target->birth() > Boundary) {
        LastStats.RememberedSetRoots += 1;
        markIfThreatened(Target);
      }
      return true;
    });
    Phase.addCost(Work.TracedBytes - Before);
  }

  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::Trace);
    uint64_t Before = Work.TracedBytes;
    while (!Worklist.empty()) {
      Object *O = Worklist.back();
      Worklist.pop_back();
      // Trace only within the threatened set: pointers to immune objects
      // need no action (immune objects are assumed live), and pointers out
      // of immune objects were handled through the remembered set.
      for (uint32_t I = 0, E = O->numSlots(); I != E; ++I)
        markIfThreatened(O->slot(I));
    }
    Phase.addCost(Work.TracedBytes - Before);
  }

  // --- Weak-reference processing ------------------------------------------
  // A weak reference whose target is threatened and unmarked is about to
  // dangle: clear it. Weak references to immune objects (including immune
  // garbage) are untouched — clearing waits for the boundary to reach the
  // target.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::WeakRefs);
    Phase.addCost(WeakRefs.size());
    for (WeakRef *Weak : WeakRefs) {
      Object *Target = Weak->get();
      if (Target && Target->birth() > Boundary && !Target->isMarked())
        Weak->set(nullptr);
    }
  }

  // --- Sweep phase ------------------------------------------------------
  // Compact the threatened suffix of the birth-ordered allocation list in
  // place; the immune prefix is untouched.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::Sweep);
    size_t Begin = firstBornAfter(Boundary);
    size_t Out = Begin;
    for (size_t I = Begin, E = Objects.size(); I != E; ++I) {
      Object *O = Objects[I];
      if (O->isMarked()) {
        O->clearMarked();
        Objects[Out++] = O;
        continue;
      }
      Work.ReclaimedBytes += O->grossBytes();
      LastStats.ObjectsReclaimed += 1;
      reclaimObject(O);
    }
    Objects.resize(Out);
    Phase.addCost(Work.ReclaimedBytes);
  }
  return Work;
}
