//===- support/Statistics.h - Streaming and sampled statistics -*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistics utilities used throughout the simulator and benchmarks:
///
///  * RunningStats        — streaming count/mean/min/max/variance.
///  * TimeWeightedStats   — mean of a piecewise-constant signal over a
///                          monotone clock (the paper's "mean memory").
///  * SampleSet           — stores samples; exact percentiles (median, 90th).
///  * Histogram           — fixed-width linear histogram for reports.
///  * LogBucketing        — shared geometry for log-scaled (HDR-style)
///                          histograms: octaves split into linear
///                          sub-buckets, bounded relative error.
///  * quantileFromBucketCounts — nearest-rank quantiles over bucketed
///                          counts, consistent with SampleSet::quantile.
///
/// This file is the single home of histogram/quantile math; the telemetry
/// subsystem's histograms (telemetry/Metrics.h) delegate to LogBucketing
/// and quantileFromBucketCounts rather than reimplementing them.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_SUPPORT_STATISTICS_H
#define DTB_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace dtb {

/// Streaming univariate statistics (Welford's algorithm for the variance).
class RunningStats {
public:
  /// Adds one observation.
  void add(double X) {
    Count += 1;
    double Delta = X - Mean;
    Mean += Delta / static_cast<double>(Count);
    M2 += Delta * (X - Mean);
    if (X < Min)
      Min = X;
    if (X > Max)
      Max = X;
  }

  uint64_t count() const { return Count; }
  /// Returns the mean, or 0 if no observations were added.
  double mean() const { return Count == 0 ? 0.0 : Mean; }
  /// Returns the minimum, or 0 if empty.
  double min() const { return Count == 0 ? 0.0 : Min; }
  /// Returns the maximum, or 0 if empty.
  double max() const { return Count == 0 ? 0.0 : Max; }
  /// Returns the population variance, or 0 with fewer than two samples.
  double variance() const {
    return Count < 2 ? 0.0 : M2 / static_cast<double>(Count);
  }
  double stddev() const;

private:
  uint64_t Count = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();
};

/// Integrates a piecewise-constant signal over a monotone clock so its
/// time-weighted mean and maximum can be reported. This is how the paper's
/// "mean memory allocated" is computed: the heap size is constant between
/// events and the clock is bytes allocated.
///
/// Usage: call setLevel(Clock, V) at every point the signal changes (the
/// signal holds value V from Clock until the next call), then finish(End)
/// to close the final interval.
class TimeWeightedStats {
public:
  /// Declares that the signal has value \p Value from \p Clock onward. The
  /// interval since the previous call is credited with the previous value.
  /// Clocks must be non-decreasing.
  void setLevel(uint64_t Clock, double Value);

  /// Closes the trailing interval at \p Clock with the current value.
  void finish(uint64_t Clock) { setLevel(Clock, Current); }

  /// Returns the time-weighted mean over the covered interval (0 if the
  /// clock never advanced).
  double mean() const {
    return ElapsedTotal == 0 ? 0.0
                             : Integral / static_cast<double>(ElapsedTotal);
  }
  /// Returns the maximum value ever set (including zero-duration levels).
  double max() const { return Max; }
  /// Returns the total clock distance covered.
  uint64_t elapsed() const { return ElapsedTotal; }

private:
  bool HaveOrigin = false;
  uint64_t LastClock = 0;
  uint64_t ElapsedTotal = 0;
  double Current = 0.0;
  double Integral = 0.0;
  double Max = 0.0;
};

/// Collects samples and answers exact order statistics. Used for the pause
/// time tables (median and 90th percentile over all scavenges).
class SampleSet {
public:
  void add(double X) { Samples.push_back(X); }
  size_t size() const { return Samples.size(); }
  bool empty() const { return Samples.empty(); }

  /// Returns the \p Q quantile (0 <= Q <= 1) using nearest-rank on a sorted
  /// copy: quantile(0.5) is the median, quantile(0.9) the 90th percentile.
  /// Q is clamped into [0, 1] and the rank into [1, size()], so
  /// quantile(0.0) is the minimum and quantile(1.0) the maximum even on a
  /// single sample (and a caller-side rounding error past 1.0 cannot index
  /// out of range). Returns 0 for an empty set.
  double quantile(double Q) const;

  double median() const { return quantile(0.5); }
  double percentile90() const { return quantile(0.9); }
  /// Median absolute deviation from the median — a robust spread estimate
  /// (the bench comparator's noise floor). Returns 0 for an empty set.
  double mad() const;
  double sum() const;
  double mean() const;
  double maxValue() const;

  const std::vector<double> &samples() const { return Samples; }

private:
  std::vector<double> Samples;
};

/// A fixed-width linear histogram over [Lo, Hi); out-of-range samples land
/// in saturating end buckets.
class Histogram {
public:
  Histogram(double Lo, double Hi, size_t NumBuckets);

  void add(double X);
  size_t bucketCount() const { return Counts.size(); }
  uint64_t bucketValue(size_t I) const { return Counts[I]; }
  /// Returns the inclusive lower edge of bucket \p I.
  double bucketLow(size_t I) const;
  uint64_t totalCount() const { return Total; }

private:
  double Lo;
  double Hi;
  double Width;
  uint64_t Total = 0;
  std::vector<uint64_t> Counts;
};

/// Bucket geometry for log-scaled histograms in the HDR style: values below
/// \p Unit land in bucket 0; above that, each octave [Unit*2^k, Unit*2^(k+1))
/// is split into \p SubBuckets linear sub-buckets, so the relative width of
/// any bucket is at most 1/SubBuckets. The top bucket saturates. Only the
/// geometry lives here (value -> bucket, bucket -> bounds); storage is the
/// caller's (plain counters here, atomics in telemetry/Metrics.h).
class LogBucketing {
public:
  /// \p Unit is the width of bucket 0 (the smallest resolvable value),
  /// \p SubBuckets the linear subdivisions per octave, \p Octaves the number
  /// of doublings covered before the top bucket saturates.
  explicit LogBucketing(double Unit = 1.0, unsigned SubBuckets = 8,
                        unsigned Octaves = 48);

  size_t numBuckets() const { return NumBuckets; }
  /// Bucket index for \p X (negative values count as 0; huge values land in
  /// the saturating top bucket).
  size_t bucketFor(double X) const;
  /// Inclusive lower bound of bucket \p I.
  double bucketLow(size_t I) const;
  /// Exclusive upper bound of bucket \p I (the top bucket reports infinity).
  double bucketHigh(size_t I) const;
  /// Representative value of bucket \p I (midpoint; used for quantiles).
  double bucketMid(size_t I) const;

  double unit() const { return Unit; }
  unsigned subBuckets() const { return SubBuckets; }
  /// Worst-case relative half-width of any finite bucket: a quantile read
  /// from bucketed counts is within this fraction of the exact sample.
  double relativeError() const { return 0.5 / static_cast<double>(SubBuckets); }

private:
  double Unit;
  unsigned SubBuckets;
  unsigned Octaves;
  size_t NumBuckets;
};

/// Nearest-rank quantile over per-bucket counts laid out by \p Bucketing
/// (the same rank convention as SampleSet::quantile): finds the bucket
/// holding the ceil(Q*Total)-th smallest sample and returns its midpoint.
/// \p Counts must have Bucketing.numBuckets() entries summing to \p Total.
/// Returns 0 when Total is 0.
double quantileFromBucketCounts(const LogBucketing &Bucketing,
                                const uint64_t *Counts, uint64_t Total,
                                double Q);

} // namespace dtb

#endif // DTB_SUPPORT_STATISTICS_H
