file(REMOVE_RECURSE
  "CMakeFiles/dtb_runtime.dir/Collector.cpp.o"
  "CMakeFiles/dtb_runtime.dir/Collector.cpp.o.d"
  "CMakeFiles/dtb_runtime.dir/CopyingCollector.cpp.o"
  "CMakeFiles/dtb_runtime.dir/CopyingCollector.cpp.o.d"
  "CMakeFiles/dtb_runtime.dir/EpochDemographics.cpp.o"
  "CMakeFiles/dtb_runtime.dir/EpochDemographics.cpp.o.d"
  "CMakeFiles/dtb_runtime.dir/Heap.cpp.o"
  "CMakeFiles/dtb_runtime.dir/Heap.cpp.o.d"
  "CMakeFiles/dtb_runtime.dir/HeapDump.cpp.o"
  "CMakeFiles/dtb_runtime.dir/HeapDump.cpp.o.d"
  "CMakeFiles/dtb_runtime.dir/HeapVerifier.cpp.o"
  "CMakeFiles/dtb_runtime.dir/HeapVerifier.cpp.o.d"
  "libdtb_runtime.a"
  "libdtb_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtb_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
