//===- bench/constraint_sweep.cpp - Constraint-tracking sweeps -----------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The paper's central claim is that the two tuning knobs map *directly*
// onto user-visible resource constraints. This bench quantifies that
// beyond the single published operating point (100 ms / 3000 KB):
//
//   * sweep Trace_max and report DTBFM's (and FEEDMED's) median pause —
//     the median should track the constraint;
//   * sweep Mem_max and report DTBMEM's maximum memory — the maximum
//     should hug the constraint until it crosses the live floor, then
//     saturate at FULL's requirement.
//
//===----------------------------------------------------------------------===//

#include "report/Experiments.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "support/Units.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>
#include <vector>

using namespace dtb;

int main(int Argc, char **Argv) {
  std::string WorkloadName = "ghost1";
  uint64_t Threads = 0;
  OptionParser Parser("Sweeps the pause and memory constraints to show "
                      "how closely the DTB policies track them");
  Parser.addString("workload", "Workload name", &WorkloadName);
  addThreadsOption(Parser, &Threads);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;
  applyThreadsOption(Threads);

  const workload::WorkloadSpec *Spec = workload::findWorkload(WorkloadName);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 WorkloadName.c_str());
    return 1;
  }
  trace::Trace T = workload::generateTrace(*Spec);

  sim::SimulatorConfig SimConfig;
  SimConfig.ProgramSeconds = Spec->ProgramSeconds;
  core::MachineModel Machine;

  // --- Pause-constraint sweep -------------------------------------------
  // Every simulation below is independent, so both sweeps fan out over
  // the worker pool; results land in per-budget slots and the tables are
  // rendered serially afterwards, identical for any --threads value.
  std::printf("Pause-constraint sweep on %s (median should track the "
              "budget):\n\n",
              Spec->DisplayName.c_str());
  Table PauseTable({"Budget (ms)", "DTBFM median", "DTBFM 90th",
                    "DTBFM mem mean (KB)", "FEEDMED median",
                    "FEEDMED mem mean (KB)"});
  const std::vector<double> PauseBudgetsMs = {25.0,  50.0,  100.0,
                                              200.0, 400.0, 800.0};
  std::vector<sim::SimulationResult> FmResults(PauseBudgetsMs.size());
  std::vector<sim::SimulationResult> MedResults(PauseBudgetsMs.size());
  parallelFor(PauseBudgetsMs.size(), [&](size_t I) {
    uint64_t TraceMax = Machine.tracedBytesForPauseMillis(PauseBudgetsMs[I]);
    core::DtbPausePolicy DtbFm(TraceMax);
    core::FeedbackMediationPolicy FeedMed(TraceMax);
    // Copy before setting the track: SimConfig is shared across workers.
    sim::SimulatorConfig CellConfig = SimConfig;
    std::string Budget =
        std::to_string(static_cast<uint64_t>(PauseBudgetsMs[I])) + "ms";
    CellConfig.TelemetryTrack = "sim/" + Spec->Name + "/dtbfm@" + Budget;
    FmResults[I] = sim::simulate(T, DtbFm, CellConfig);
    CellConfig.TelemetryTrack = "sim/" + Spec->Name + "/feedmed@" + Budget;
    MedResults[I] = sim::simulate(T, FeedMed, CellConfig);
  });
  for (size_t I = 0; I != PauseBudgetsMs.size(); ++I) {
    const sim::SimulationResult &RFm = FmResults[I];
    const sim::SimulationResult &RMed = MedResults[I];
    PauseTable.addRow({Table::cell(PauseBudgetsMs[I], 0),
                       Table::cell(RFm.PauseMillis.median(), 0),
                       Table::cell(RFm.PauseMillis.percentile90(), 0),
                       Table::cell(bytesToKB(RFm.MemMeanBytes)),
                       Table::cell(RMed.PauseMillis.median(), 0),
                       Table::cell(bytesToKB(RMed.MemMeanBytes))});
  }
  PauseTable.print(stdout);

  // --- Memory-constraint sweep ------------------------------------------
  const std::vector<uint64_t> MemBudgetsKB = {1000, 1500, 2000, 2500,
                                              3000, 4000, 6000, 8000};
  sim::SimulationResult FullResult, Fixed1Result;
  std::vector<sim::SimulationResult> MemResults(MemBudgetsKB.size());
  parallelFor(MemBudgetsKB.size() + 2, [&](size_t I) {
    sim::SimulatorConfig CellConfig = SimConfig;
    if (I == 0) {
      core::FullPolicy Full;
      CellConfig.TelemetryTrack = "sim/" + Spec->Name + "/full";
      FullResult = sim::simulate(T, Full, CellConfig);
    } else if (I == 1) {
      core::FixedAgePolicy Fixed1(1);
      CellConfig.TelemetryTrack = "sim/" + Spec->Name + "/fixed1";
      Fixed1Result = sim::simulate(T, Fixed1, CellConfig);
    } else {
      core::DtbMemoryPolicy DtbMem(MemBudgetsKB[I - 2] * 1000);
      CellConfig.TelemetryTrack = "sim/" + Spec->Name + "/dtbmem@" +
                                  std::to_string(MemBudgetsKB[I - 2]) + "kb";
      MemResults[I - 2] = sim::simulate(T, DtbMem, CellConfig);
    }
  });
  std::printf("\nMemory-constraint sweep on %s (max should hug the budget; "
              "FULL needs %.0f KB):\n\n",
              Spec->DisplayName.c_str(),
              bytesToKB(FullResult.MemMaxBytes));
  Table MemTable({"Budget (KB)", "DTBMEM max (KB)", "DTBMEM mean (KB)",
                  "Traced (KB)", "vs FIXED1 traced"});
  for (size_t I = 0; I != MemBudgetsKB.size(); ++I) {
    const sim::SimulationResult &R = MemResults[I];
    double Ratio = Fixed1Result.TotalTracedBytes == 0
                       ? 0.0
                       : static_cast<double>(R.TotalTracedBytes) /
                             static_cast<double>(
                                 Fixed1Result.TotalTracedBytes);
    MemTable.addRow({Table::cell(MemBudgetsKB[I]),
                     Table::cell(bytesToKB(R.MemMaxBytes)),
                     Table::cell(bytesToKB(R.MemMeanBytes)),
                     Table::cell(bytesToKB(R.TotalTracedBytes)),
                     Table::cell(Ratio, 2) + "x"});
  }
  MemTable.print(stdout);

  std::printf("\nOver-constrained budgets (below FULL's requirement) "
              "saturate at FULL's\nmemory while tracing cost climbs; "
              "feasible budgets are met with tracing\nnear FIXED1's "
              "(ratio -> 1).\n");
  return 0;
}
