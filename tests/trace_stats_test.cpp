//===- tests/trace_stats_test.cpp -----------------------------------------==//
//
// Tests for trace statistics against hand-computed small traces: live
// profile (the LIVE row of Table 2), the No-GC profile, lifetime CDF, and
// the sampled live curve.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceStats.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::trace;

namespace {

/// Three objects; the middle one dies halfway through.
///   clock:   0...100...200...300
///   A(100):  born@100, immortal
///   B(100):  born@200, dies@300
///   C(100):  born@300, immortal
Trace makeSmallTrace() {
  TraceBuilder Builder;
  Builder.allocate(100);
  auto B = Builder.allocate(100);
  Builder.allocate(100);
  Builder.free(B);
  return Builder.finish();
}

} // namespace

TEST(TraceStatsTest, Totals) {
  TraceStats S = computeTraceStats(makeSmallTrace());
  EXPECT_EQ(S.NumObjects, 3u);
  EXPECT_EQ(S.TotalAllocatedBytes, 300u);
  EXPECT_DOUBLE_EQ(S.MeanObjectSize, 100.0);
  EXPECT_EQ(S.MaxObjectSize, 100u);
}

TEST(TraceStatsTest, LiveProfileHandComputed) {
  // Live bytes: [0,100) = 0, [100,200) = 100, [200,300) = 200,
  // at 300: B dies as C is born -> 200.
  TraceStats S = computeTraceStats(makeSmallTrace());
  EXPECT_DOUBLE_EQ(S.LiveMeanBytes, (0.0 * 100 + 100.0 * 100 + 200.0 * 100) /
                                        300.0);
  EXPECT_EQ(S.LiveMaxBytes, 200u);
  EXPECT_EQ(S.LiveAtEndBytes, 200u);
}

TEST(TraceStatsTest, NoGcProfileHandComputed) {
  // Cumulative allocation: 0 on [0,100), 100 on [100,200), 200 on
  // [200,300).
  TraceStats S = computeTraceStats(makeSmallTrace());
  EXPECT_DOUBLE_EQ(S.NoGcMeanBytes, (0.0 + 100.0 + 200.0) / 3.0);
}

TEST(TraceStatsTest, EmptyTrace) {
  TraceStats S = computeTraceStats(Trace());
  EXPECT_EQ(S.NumObjects, 0u);
  EXPECT_EQ(S.TotalAllocatedBytes, 0u);
  EXPECT_EQ(S.LiveMaxBytes, 0u);
}

TEST(TraceStatsTest, LifetimeCdf) {
  TraceBuilder Builder;
  auto A = Builder.allocate(100); // Will die at age 100.
  Builder.allocate(100);          // Immortal: excluded from the CDF.
  Builder.free(A);
  Trace T = Builder.finish();
  TraceStats S = computeTraceStats(T);

  const std::vector<uint64_t> &Thresholds =
      TraceStats::lifetimeThresholds();
  ASSERT_EQ(S.LifetimeCdf.size(), Thresholds.size());
  // A's lifetime is 100 bytes: below every threshold (the smallest is
  // 10 KB). Half the allocated bytes die that young.
  for (double Fraction : S.LifetimeCdf)
    EXPECT_DOUBLE_EQ(Fraction, 0.5);
}

TEST(TraceStatsTest, DeathBeyondEndCountsAsLiveAtEnd) {
  std::vector<AllocationRecord> Records = {
      {/*Birth=*/100, /*Size=*/100, /*Death=*/5000}, // Past end of trace.
  };
  Trace T(std::move(Records));
  TraceStats S = computeTraceStats(T);
  EXPECT_EQ(S.LiveAtEndBytes, 100u);
  EXPECT_EQ(S.LiveMaxBytes, 100u);
}

TEST(SampleLiveProfileTest, SamplesLevels) {
  // Live levels: 100 on [100,200), 200 on [200,300).
  std::vector<uint64_t> Points = sampleLiveProfile(makeSmallTrace(), 3);
  ASSERT_EQ(Points.size(), 3u);
  EXPECT_EQ(Points[0], 100u); // At clock 100.
  EXPECT_EQ(Points[1], 200u); // At clock 200.
  EXPECT_EQ(Points[2], 200u); // At clock 300 (B died, C born).
}

TEST(SampleLiveProfileTest, EmptyAndZeroPoints) {
  EXPECT_TRUE(sampleLiveProfile(Trace(), 0).empty());
  std::vector<uint64_t> Points = sampleLiveProfile(Trace(), 4);
  EXPECT_EQ(Points, std::vector<uint64_t>(4, 0));
}

TEST(SampleLiveProfileTest, MidIntervalPointUsesPreviousLevel) {
  // With 6 points over total 300, point clocks are 50,100,150,...; the
  // point at 50 must report the level before the first birth (0).
  std::vector<uint64_t> Points = sampleLiveProfile(makeSmallTrace(), 6);
  ASSERT_EQ(Points.size(), 6u);
  EXPECT_EQ(Points[0], 0u);   // Clock 50.
  EXPECT_EQ(Points[1], 100u); // Clock 100.
  EXPECT_EQ(Points[2], 100u); // Clock 150.
  EXPECT_EQ(Points[3], 200u); // Clock 200.
}
