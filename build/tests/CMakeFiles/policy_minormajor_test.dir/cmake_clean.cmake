file(REMOVE_RECURSE
  "CMakeFiles/policy_minormajor_test.dir/policy_minormajor_test.cpp.o"
  "CMakeFiles/policy_minormajor_test.dir/policy_minormajor_test.cpp.o.d"
  "policy_minormajor_test"
  "policy_minormajor_test.pdb"
  "policy_minormajor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_minormajor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
