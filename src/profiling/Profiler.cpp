//===- profiling/Profiler.cpp ---------------------------------------------==//

#include "profiling/Profiler.h"

#include "support/Error.h"

#include <algorithm>
#include <cmath>

using namespace dtb;
using namespace dtb::profiling;

#if DTB_TELEMETRY

void PhaseProfiler::enter(const char *Name) {
  Frame F;
  F.Name = Name;
  F.TreeIndex = static_cast<int>(Tree.size());
  F.WallStart = std::chrono::steady_clock::now();
  PhaseTreeNode Node;
  Node.Name = Name;
  Node.Parent = Stack.empty() ? -1 : Stack.back().TreeIndex;
  Tree.push_back(Node);
  Stack.push_back(F);
}

void PhaseProfiler::addCost(uint64_t Units) {
  if (!Stack.empty())
    Stack.back().SelfCost += Units;
}

void PhaseProfiler::exit() {
  if (Stack.empty())
    fatalError("phase exit without a matching enter");
  Frame F = Stack.back();
  Stack.pop_back();

  double WallNanos =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - F.WallStart)
          .count();
  uint64_t Total = F.SelfCost + F.ChildTotalCost;

  PhaseTreeNode &Node = Tree[static_cast<size_t>(F.TreeIndex)];
  Node.SelfCost = F.SelfCost;
  Node.TotalCost = Total;

  if (!Stack.empty()) {
    Stack.back().ChildTotalCost += Total;
    Stack.back().ChildWallNanos += WallNanos;
  }

  PhaseAggregate &Agg = Aggregates[F.Name];
  Agg.Count += 1;
  Agg.SelfCost += F.SelfCost;
  Agg.TotalCost += Total;
  Agg.SelfCostSamples.add(static_cast<double>(F.SelfCost));
  Agg.WallSelfNanos += WallNanos - F.ChildWallNanos;
}

void PhaseProfiler::finishScavenge() {
  if (!Stack.empty())
    fatalError("finishScavenge with open phase frames");
  LastTree = std::move(Tree);
  Tree.clear();
}

void PhaseProfiler::mergeFrom(const PhaseProfiler &Other) {
  for (const auto &[Name, Their] : Other.Aggregates) {
    PhaseAggregate &Mine = Aggregates[Name];
    Mine.Count += Their.Count;
    Mine.SelfCost += Their.SelfCost;
    Mine.TotalCost += Their.TotalCost;
    for (double Sample : Their.SelfCostSamples.samples())
      Mine.SelfCostSamples.add(Sample);
    Mine.WallSelfNanos += Their.WallSelfNanos;
  }
}

void PhaseProfiler::reset() {
  Stack.clear();
  Tree.clear();
  LastTree.clear();
  Aggregates.clear();
}

#endif // DTB_TELEMETRY

namespace {

/// Population standard deviation of a sample set (two-pass; the sets here
/// are per-phase entry counts, small enough not to matter).
double sampleStddev(const SampleSet &Samples) {
  size_t N = Samples.size();
  if (N < 2)
    return 0.0;
  double Mean = Samples.mean();
  double M2 = 0.0;
  for (double X : Samples.samples()) {
    double D = X - Mean;
    M2 += D * D;
  }
  return std::sqrt(M2 / static_cast<double>(N));
}

} // namespace

Table dtb::profiling::buildCostAttributionTable(const PhaseProfiler &Profiler,
                                                size_t TopN) {
  const auto &Aggregates = Profiler.aggregates();
  uint64_t GrandSelf = 0;
  for (const auto &[Name, Agg] : Aggregates)
    GrandSelf += Agg.SelfCost;

  // Rank by self cost (the attribution that sums to 100%), ties by name so
  // the table is deterministic.
  std::vector<std::pair<std::string, const PhaseAggregate *>> Ranked;
  for (const auto &[Name, Agg] : Aggregates)
    Ranked.emplace_back(Name, &Agg);
  std::sort(Ranked.begin(), Ranked.end(), [](const auto &A, const auto &B) {
    if (A.second->SelfCost != B.second->SelfCost)
      return A.second->SelfCost > B.second->SelfCost;
    return A.first < B.first;
  });
  if (Ranked.size() > TopN)
    Ranked.resize(TopN);

  Table T({"Phase", "Count", "Self cost", "Total cost", "Self %", "p50",
           "p90", "p99", "Stddev"});
  T.setAlignment(0, AlignKind::Left);
  for (const auto &[Name, Agg] : Ranked) {
    double Share = GrandSelf == 0 ? 0.0
                                  : 100.0 * static_cast<double>(Agg->SelfCost) /
                                        static_cast<double>(GrandSelf);
    T.addRow({Name, Table::cell(Agg->Count), Table::cell(Agg->SelfCost),
              Table::cell(Agg->TotalCost), Table::cell(Share, 1),
              Table::cell(Agg->SelfCostSamples.quantile(0.5), 1),
              Table::cell(Agg->SelfCostSamples.quantile(0.9), 1),
              Table::cell(Agg->SelfCostSamples.quantile(0.99), 1),
              Table::cell(sampleStddev(Agg->SelfCostSamples), 1)});
  }
  return T;
}

void dtb::profiling::publishToMetrics(const PhaseProfiler &Profiler,
                                      const std::string &Domain) {
#if DTB_TELEMETRY
  telemetry::MetricsRegistry &Registry = telemetry::MetricsRegistry::global();
  for (const auto &[Name, Agg] : Profiler.aggregates()) {
    const std::string Base = "profile." + Domain + "." + Name;
    Registry.counter(Base + ".count").add(Agg.Count);
    Registry.counter(Base + ".self_cost").add(Agg.SelfCost);
    Registry.counter(Base + ".total_cost").add(Agg.TotalCost);
    telemetry::LogHistogram &H = Registry.histogram(Base + ".self_cost_hist");
    for (double Sample : Agg.SelfCostSamples.samples())
      H.record(Sample);
    Registry.histogram("wall.profile." + Domain + "." + Name + "_ns")
        .record(Agg.WallSelfNanos);
  }
#else
  (void)Profiler;
  (void)Domain;
#endif
}
