file(REMOVE_RECURSE
  "CMakeFiles/dtb_support.dir/CommandLine.cpp.o"
  "CMakeFiles/dtb_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/dtb_support.dir/Error.cpp.o"
  "CMakeFiles/dtb_support.dir/Error.cpp.o.d"
  "CMakeFiles/dtb_support.dir/Statistics.cpp.o"
  "CMakeFiles/dtb_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/dtb_support.dir/Table.cpp.o"
  "CMakeFiles/dtb_support.dir/Table.cpp.o.d"
  "CMakeFiles/dtb_support.dir/Units.cpp.o"
  "CMakeFiles/dtb_support.dir/Units.cpp.o.d"
  "libdtb_support.a"
  "libdtb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
