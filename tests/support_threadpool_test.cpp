//===- tests/support_threadpool_test.cpp ----------------------------------==//
//
// Tests for the worker pool behind the parallel experiment engine: task
// completion, exception propagation into futures and through parallelFor,
// nested submission, and the --threads/-j plumbing.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/CommandLine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace dtb;

TEST(ThreadPoolTest, TasksCompleteAndReturnValues) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I != 64; ++I)
    Futures.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I != 64; ++I)
    EXPECT_EQ(Futures[static_cast<size_t>(I)].get(), I * I);
}

TEST(ThreadPoolTest, ZeroMeansHardwareThreads) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numThreads(), ThreadPool::hardwareThreads());
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool Pool(2);
  std::future<int> Bad =
      Pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(Bad.get(), std::runtime_error);
  // The worker that ran the throwing task is still usable.
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, NestedSubmit) {
  ThreadPool Pool(2);
  // A task submits a follow-up task to the same pool and hands back its
  // future; both complete.
  std::future<std::future<int>> Outer = Pool.submit(
      [&Pool] { return Pool.submit([] { return 42; }); });
  EXPECT_EQ(Outer.get().get(), 42);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 100; ++I)
      Pool.submit([&Ran] { Ran.fetch_add(1); });
  } // Destructor joins after the queue drains.
  EXPECT_EQ(Ran.load(), 100);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool Pool(3);
  std::vector<std::atomic<int>> Hits(1000);
  parallelFor(
      Hits.size(), [&](size_t I) { Hits[I].fetch_add(1); }, &Pool);
  for (const std::atomic<int> &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> Order;
  parallelFor(
      5, [&](size_t I) { Order.push_back(static_cast<int>(I)); }, nullptr);
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ExceptionRethrownAfterAllIterationsFinish) {
  ThreadPool Pool(2);
  std::vector<std::atomic<int>> Hits(64);
  EXPECT_THROW(parallelFor(
                   Hits.size(),
                   [&](size_t I) {
                     Hits[I].fetch_add(1);
                     if (I == 10)
                       throw std::runtime_error("iteration failed");
                   },
                   &Pool),
               std::runtime_error);
  // One failing iteration does not cancel the others (slots independent).
  int Total = 0;
  for (const std::atomic<int> &H : Hits)
    Total += H.load();
  EXPECT_EQ(Total, 64);
}

TEST(ParallelForTest, NestedFanOutRunsInlineWithoutDeadlock) {
  ThreadPool Pool(1); // The tightest case: a single worker.
  std::vector<std::atomic<int>> Hits(16);
  parallelFor(
      4,
      [&](size_t Outer) {
        parallelFor(
            4,
            [&](size_t Inner) { Hits[Outer * 4 + Inner].fetch_add(1); },
            &Pool);
      },
      &Pool);
  for (const std::atomic<int> &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadsOptionTest, LongAndShortSpellings) {
  for (const char *Arg : {"--threads=3", "-j3"}) {
    uint64_t Threads = 0;
    OptionParser Parser("test");
    addThreadsOption(Parser, &Threads);
    const char *Argv[] = {"prog", Arg};
    ASSERT_TRUE(Parser.parse(2, Argv)) << Arg;
    EXPECT_EQ(Threads, 3u) << Arg;
    EXPECT_TRUE(Parser.positionals().empty()) << Arg;
  }

  uint64_t Threads = 0;
  OptionParser Parser("test");
  addThreadsOption(Parser, &Threads);
  const char *Argv[] = {"prog", "-j", "5", "positional"};
  ASSERT_TRUE(Parser.parse(4, Argv));
  EXPECT_EQ(Threads, 5u);
  ASSERT_EQ(Parser.positionals().size(), 1u);
  EXPECT_EQ(Parser.positionals()[0], "positional");
}

TEST(ThreadsOptionTest, UnknownShortArgsStayPositional) {
  uint64_t Threads = 0;
  OptionParser Parser("test");
  addThreadsOption(Parser, &Threads);
  const char *Argv[] = {"prog", "-x", "-"};
  ASSERT_TRUE(Parser.parse(3, Argv));
  EXPECT_EQ(Parser.positionals(),
            (std::vector<std::string>{"-x", "-"}));
}

TEST(DefaultPoolTest, ThreadCountOneMeansNoPool) {
  setDefaultThreadCount(1);
  EXPECT_EQ(defaultThreadPool(), nullptr);
  EXPECT_EQ(defaultThreadCount(), 1u);

  setDefaultThreadCount(3);
  ThreadPool *Pool = defaultThreadPool();
  ASSERT_NE(Pool, nullptr);
  // The caller participates in parallelFor, so 3 lanes = 2 pool workers.
  EXPECT_EQ(Pool->numThreads(), 2u);

  setDefaultThreadCount(0); // Restore the hardware default.
}
