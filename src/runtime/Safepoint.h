//===- runtime/Safepoint.h - GC phase machine and rendezvous ---*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector/mutator handshake vocabulary for the multi-threaded
/// mutator runtime (runtime/Mutator.h): the heap-global *phase machine*
/// and the states a registered MutatorContext moves through.
///
/// Phase machine (per Heap, driven by whichever thread owns the stopped
/// world):
///
///           store buffered                   store -> sink directly
///   +----------------+   rendezvous   +------------+   trace done
///   | NOT_COLLECTING | -------------> | COLLECTING | -------------+
///   +----------------+                +------------+              |
///           ^                                                     v
///           |            world released              +-----------+
///           +------------------------------------- --| RESTORING |
///                                                    +-----------+
///                                                store -> sink directly
///
///  * NOT_COLLECTING — mutators run freely. Per-context write barriers
///    *buffer* forward-in-time stores locally (lock-free) and flush them
///    into the shared RememberedSet sink at capacity or at the next
///    safepoint, so the allocation/store fast paths take no lock.
///  * COLLECTING — the world is stopped (every context counted out or
///    parked) and the trace runs; any store issued now (by the collector
///    or a safepoint callback driving a context) goes to the sink
///    immediately, because the trace consumes the set in this phase.
///  * RESTORING — post-trace bookkeeping (sweep accounting, remembered-
///    set rebuild, publication); stores still go straight to the sink.
///
/// Count-in / count-out: a context *counts in* (enters the Mutating
/// state) at every heap-API call and *counts out* (back to AtSafepoint)
/// when the call returns, so between calls a context is always at a
/// safepoint. A rendezvous therefore waits only on contexts that are
/// mid-operation; long-running mutator loops should still poll
/// MutatorContext::safepoint() so a count-in blocked on an open
/// rendezvous is reached promptly.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_RUNTIME_SAFEPOINT_H
#define DTB_RUNTIME_SAFEPOINT_H

#include <cstdint>

namespace dtb {
namespace runtime {

/// The heap-global collection phase (see the file comment's diagram).
enum class GcPhase : uint8_t {
  NotCollecting,
  Collecting,
  Restoring,
};

/// Stable lowercase identifier ("not-collecting", "collecting",
/// "restoring").
inline const char *gcPhaseName(GcPhase Phase) {
  switch (Phase) {
  case GcPhase::NotCollecting:
    return "not-collecting";
  case GcPhase::Collecting:
    return "collecting";
  case GcPhase::Restoring:
    return "restoring";
  }
  return "unknown";
}

/// Where a registered MutatorContext stands relative to the rendezvous
/// protocol.
enum class MutatorState : uint8_t {
  /// Inside a heap-API call (counted in); a rendezvous must wait for the
  /// call to finish.
  Mutating,
  /// Between calls (counted out); the collector never waits on it.
  AtSafepoint,
  /// Explicitly parked (MutatorContext::park): like AtSafepoint, but the
  /// context promises not to count in until unpark(), which blocks while
  /// a rendezvous is open.
  Parked,
};

/// Heap-level counters for the mutator runtime, snapshot via
/// Heap::mutatorStats(). Deterministic under single-threaded driving.
struct MutatorRuntimeStats {
  /// Rendezvous the heap completed (collections, safepoint callbacks).
  uint64_t SafepointRendezvous = 0;
  /// TLAB blocks carved from the refill lock.
  uint64_t TlabRefills = 0;
  /// Gross bytes of all blocks ever carved.
  uint64_t TlabCarvedBytes = 0;
  /// Bytes left unused in retired blocks (carve granularity waste).
  uint64_t TlabWastedBytes = 0;
  /// Blocks whose storage was returned to the OS (last object died after
  /// retirement; never in quarantine mode).
  uint64_t TlabBlocksFreed = 0;
  /// TLAB blocks currently resident (carved minus freed).
  uint64_t TlabBlocksResident = 0;
  /// Objects moved from per-context pending lists into the heap's
  /// birth-ordered allocation list at safepoints.
  uint64_t PublishedObjects = 0;
  /// Barrier-buffer flushes into the shared remembered-set sink.
  uint64_t BarrierFlushes = 0;
  /// Entries those flushes delivered.
  uint64_t BarrierFlushedEntries = 0;
};

} // namespace runtime
} // namespace dtb

#endif // DTB_RUNTIME_SAFEPOINT_H
