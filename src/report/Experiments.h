//===- report/Experiments.h - Paper experiment harness ---------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment harness shared by the benchmark binaries: runs the six
/// collector policies of Table 1 over the six calibrated workloads with the
/// paper's parameters, and renders the results in the layout of the
/// paper's Tables 2 (memory), 3 (pause times), and 4 (bytes traced / CPU
/// overhead), plus workload statistics (Tables 5/6).
///
//===----------------------------------------------------------------------===//

#ifndef DTB_REPORT_EXPERIMENTS_H
#define DTB_REPORT_EXPERIMENTS_H

#include "core/MachineModel.h"
#include "core/Policies.h"
#include "sim/Simulator.h"
#include "support/Table.h"
#include "trace/TraceStats.h"
#include "workload/Workload.h"

#include <map>
#include <string>
#include <vector>

namespace dtb {
namespace report {

/// The paper's evaluation parameters (§5).
struct ExperimentConfig {
  /// Scavenge trigger: bytes allocated between collections.
  uint64_t TriggerBytes = 1'000'000;
  /// Pause budget in traced bytes (100 ms at 500 KB/s).
  uint64_t TraceMaxBytes = 50'000;
  /// DTBMEM memory budget.
  uint64_t MemMaxBytes = 3'000'000;
  core::MachineModel Machine;
  /// Worker threads for the simulation fan-out: 0 uses the process-wide
  /// default (see support/ThreadPool.h), 1 forces a serial run. Results
  /// are bit-identical for every thread count — tasks are independent and
  /// deposit into preassigned slots.
  unsigned Threads = 0;
};

/// Results of running every policy over every workload.
class ExperimentGrid {
public:
  /// Runs \p PolicyNames x \p Workloads under \p Config. Traces are
  /// generated once per workload (fanned out over the worker pool) and
  /// discarded after the policy simulations, which fan out per cell.
  ExperimentGrid(std::vector<workload::WorkloadSpec> Workloads,
                 std::vector<std::string> PolicyNames,
                 const ExperimentConfig &Config);

  /// The paper's full grid: six policies over six workloads.
  static ExperimentGrid paperGrid(const ExperimentConfig &Config = {});

  const std::vector<workload::WorkloadSpec> &workloads() const {
    return Workloads;
  }
  const std::vector<std::string> &policyNames() const { return PolicyNames; }
  const ExperimentConfig &config() const { return Config; }

  /// Simulation result for (policy, workload); both must have been listed
  /// at construction.
  const sim::SimulationResult &result(const std::string &Policy,
                                      const std::string &Workload) const;

  /// Trace statistics for a workload (the LIVE and No-GC baseline rows).
  const trace::TraceStats &baseline(const std::string &Workload) const;

private:
  std::vector<workload::WorkloadSpec> Workloads;
  std::vector<std::string> PolicyNames;
  ExperimentConfig Config;
  std::map<std::pair<std::string, std::string>, sim::SimulationResult>
      Results;
  std::map<std::string, trace::TraceStats> Baselines;
};

/// Table 2: mean and maximum memory (KB) per collector and workload,
/// including the No GC and LIVE rows.
Table buildTable2(const ExperimentGrid &Grid);

/// Table 3: median and 90th-percentile pause times (ms).
Table buildTable3(const ExperimentGrid &Grid);

/// Table 4: total KB traced and estimated CPU overhead (%).
Table buildTable4(const ExperimentGrid &Grid);

/// Table 6: allocation behaviour of the workloads (execution time, total
/// allocation, allocation rate, number of collections under FULL).
Table buildTable6(const ExperimentGrid &Grid);

} // namespace report
} // namespace dtb

#endif // DTB_REPORT_EXPERIMENTS_H
