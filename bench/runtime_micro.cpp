//===- bench/runtime_micro.cpp - Runtime microbenchmarks -----------------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// google-benchmark microbenchmarks for the managed runtime's hot paths:
// allocation, the write barrier (backward stores, forward stores, and
// duplicate forward stores), remembered-set maintenance, and scavenges as
// a function of boundary position — the real-machine counterpart of the
// paper's "pause times are proportional to storage traced" assumption.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/Mutator.h"

#include "core/Policies.h"
#include "support/Random.h"
#include "telemetry/Telemetry.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace dtb;
using namespace dtb::runtime;

namespace {

HeapConfig manualConfig() {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  return Config;
}

void BM_Allocate(benchmark::State &State) {
  // Re-created per iteration batch to keep the heap from growing without
  // bound; allocation cost includes the list append and clock update.
  auto H = std::make_unique<Heap>(manualConfig());
  size_t Created = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(H->allocate(2, 16));
    if (++Created == 100'000) { // Reset before the heap gets huge.
      State.PauseTiming();
      H = std::make_unique<Heap>(manualConfig());
      Created = 0;
      State.ResumeTiming();
    }
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Allocate);

void BM_AllocateTLAB(benchmark::State &State) {
  // The mutator-context fast path: bump the thread-local buffer, stamp
  // the birth with one relaxed fetch_add, count the op in and out. The
  // comparison against BM_Allocate is the per-thread allocation tax the
  // multi-mutator runtime adds over the direct path.
  auto H = std::make_unique<Heap>(manualConfig());
  auto Ctx = std::make_unique<MutatorContext>(*H);
  size_t Created = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Ctx->allocate(2, 16));
    if (++Created == 100'000) { // Reset before the heap gets huge.
      State.PauseTiming();
      Ctx.reset();
      H = std::make_unique<Heap>(manualConfig());
      Ctx = std::make_unique<MutatorContext>(*H);
      Created = 0;
      State.ResumeTiming();
    }
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_AllocateTLAB);

void BM_AllocateTLABCounters(benchmark::State &State) {
  // BM_AllocateTLAB with the telemetry recorder live: the difference is
  // the whole observability tax on the context allocation path — the
  // per-mutator counters (TLAB carve/waste, polls) are compile-time and
  // present in both, so what this isolates is the runtime-gated part
  // (global alloc counters, per-mutator track emission at safepoints).
  // CI diffs this against BM_AllocateTLAB and fails above ~1%.
  telemetry::recorder().enable();
  auto H = std::make_unique<Heap>(manualConfig());
  auto Ctx = std::make_unique<MutatorContext>(*H);
  size_t Created = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Ctx->allocate(2, 16));
    if (++Created == 100'000) { // Reset before the heap gets huge.
      State.PauseTiming();
      Ctx.reset();
      H = std::make_unique<Heap>(manualConfig());
      Ctx = std::make_unique<MutatorContext>(*H);
      Created = 0;
      State.ResumeTiming();
    }
  }
  telemetry::recorder().disable();
  telemetry::recorder().buffer().clear();
  State.SetItemsProcessed(State.iterations());
  State.SetLabel(telemetry::compiledIn() ? "counters-live"
                                         : "telemetry-compiled-out");
}
BENCHMARK(BM_AllocateTLABCounters);

void BM_SafepointRendezvous(benchmark::State &State) {
  // A full stop-the-world round trip with Arg(0) registered contexts and
  // nothing to publish: the handshake, arrival scan, TTSP attribution,
  // rendezvous-record assembly, flight-recorder stamp, and world release.
  // This is the fixed cost every collection pays before tracing a byte.
  const auto NumContexts = static_cast<size_t>(State.range(0));
  Heap H(manualConfig());
  std::vector<std::unique_ptr<MutatorContext>> Ctxs;
  for (size_t I = 0; I != NumContexts; ++I)
    Ctxs.push_back(std::make_unique<MutatorContext>(H));
  for (auto _ : State)
    H.runAtSafepoint([](Heap &) {});
  State.SetItemsProcessed(State.iterations());
  State.SetLabel(std::to_string(NumContexts) + " contexts");
}
BENCHMARK(BM_SafepointRendezvous)->Arg(0)->Arg(1)->Arg(4);

void BM_AllocateTelemetryEnabled(benchmark::State &State) {
  // Same loop with the recorder live: the difference from BM_Allocate is
  // the full telemetry cost on the allocation path (two cached counter
  // adds). BM_Allocate itself is the compiled-in-but-disabled number —
  // telemetry::enabled() is one relaxed load there — to compare against a
  // -DDTB_ENABLE_TELEMETRY=OFF build for the zero-overhead check.
  telemetry::recorder().enable();
  auto H = std::make_unique<Heap>(manualConfig());
  size_t Created = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(H->allocate(2, 16));
    if (++Created == 100'000) {
      State.PauseTiming();
      H = std::make_unique<Heap>(manualConfig());
      Created = 0;
      State.ResumeTiming();
    }
  }
  telemetry::recorder().disable();
  telemetry::recorder().buffer().clear();
  State.SetItemsProcessed(State.iterations());
  State.SetLabel(telemetry::compiledIn() ? "telemetry-enabled"
                                         : "telemetry-compiled-out");
}
BENCHMARK(BM_AllocateTelemetryEnabled);

void BM_AllocateProfilerArmed(benchmark::State &State) {
  // BM_AllocateTelemetryEnabled with the heap's phase profiler forced on
  // as well. The profiler instruments collector phases, not allocation, so
  // arming it must not move this number: CI diffs the two benchmarks and
  // fails if the profiler adds more than noise (~1%) to the allocation
  // path. (With telemetry compiled out both collapse to BM_Allocate:
  // ProfilePhase is an empty type and the overhead is exactly zero.)
  telemetry::recorder().enable();
  auto H = std::make_unique<Heap>(manualConfig());
  H->profiler().setEnabled(true);
  size_t Created = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(H->allocate(2, 16));
    if (++Created == 100'000) {
      State.PauseTiming();
      H = std::make_unique<Heap>(manualConfig());
      H->profiler().setEnabled(true);
      Created = 0;
      State.ResumeTiming();
    }
  }
  telemetry::recorder().disable();
  telemetry::recorder().buffer().clear();
  State.SetItemsProcessed(State.iterations());
  State.SetLabel(telemetry::compiledIn() ? "profiler-armed"
                                         : "telemetry-compiled-out");
}
BENCHMARK(BM_AllocateProfilerArmed);

void BM_WriteBarrierBackward(benchmark::State &State) {
  Heap H(manualConfig());
  Object *Old = H.allocate(1);
  Object *Young = H.allocate(1);
  // Young -> old: the barrier's fast path (no remembered-set insert).
  for (auto _ : State)
    H.writeSlot(Young, 0, Old);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_WriteBarrierBackward);

void BM_WriteBarrierForwardDuplicate(benchmark::State &State) {
  Heap H(manualConfig());
  Object *Old = H.allocate(1);
  Object *Young = H.allocate(0);
  // Old -> young, same slot every time: insert hits the dedup path.
  for (auto _ : State)
    H.writeSlot(Old, 0, Young);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_WriteBarrierForwardDuplicate);

void BM_WriteBarrierForwardFresh(benchmark::State &State) {
  // Fresh (source, slot) pairs: every store inserts a new entry.
  Heap H(manualConfig());
  Object *Young = H.allocate(0);
  std::vector<Object *> Sources;
  constexpr size_t NumSources = 4096;
  for (size_t I = 0; I != NumSources; ++I)
    Sources.push_back(H.allocate(8));
  Object *Target = H.allocate(0); // Younger than all sources.
  (void)Young;
  size_t I = 0;
  for (auto _ : State) {
    Object *Source = Sources[(I / 8) % NumSources];
    H.writeSlot(Source, static_cast<uint32_t>(I % 8), Target);
    ++I;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_WriteBarrierForwardFresh);

/// Builds a heap of Count live list nodes rooted in a handle scope, plus
/// an equal amount of garbage.
void buildMixedHeap(Heap &H, HandleScope &Scope, size_t Count) {
  Object *&Head = Scope.slot(nullptr);
  for (size_t I = 0; I != Count; ++I) {
    Object *Node = H.allocate(1, 16);
    H.writeSlot(Node, 0, Head);
    Head = Node;
    H.allocate(0, 16); // Garbage sibling.
  }
}

/// Scavenge cost per strategy at a full boundary: mark-sweep frees dead
/// objects individually; copying clones survivors and releases the region.
void BM_ScavengeStrategy(benchmark::State &State) {
  const size_t Nodes = 20'000;
  const bool Copying = State.range(0) != 0;
  for (auto _ : State) {
    State.PauseTiming();
    HeapConfig Config = manualConfig();
    Config.Collector =
        Copying ? CollectorKind::Copying : CollectorKind::MarkSweep;
    Heap H(Config);
    HandleScope Scope(H);
    buildMixedHeap(H, Scope, Nodes);
    State.ResumeTiming();
    benchmark::DoNotOptimize(H.collectAtBoundary(0));
  }
  State.SetLabel(Copying ? "copying" : "mark-sweep");
}

void BM_ScavengeByBoundary(benchmark::State &State) {
  // Scavenge cost as the boundary moves back: Arg(0) is the threatened
  // fraction of the heap in percent. Pause ~ threatened live bytes.
  const size_t Nodes = 20'000;
  const int ThreatenedPercent = static_cast<int>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    Heap H(manualConfig());
    HandleScope Scope(H);
    buildMixedHeap(H, Scope, Nodes);
    core::AllocClock Boundary =
        H.now() - H.now() * static_cast<uint64_t>(ThreatenedPercent) / 100;
    State.ResumeTiming();
    benchmark::DoNotOptimize(H.collectAtBoundary(Boundary));
  }
  State.SetLabel(std::to_string(ThreatenedPercent) + "% threatened");
}
BENCHMARK(BM_ScavengeByBoundary)->Arg(10)->Arg(25)->Arg(50)->Arg(100);
BENCHMARK(BM_ScavengeStrategy)->Arg(0)->Arg(1);

void BM_RepeatedScavengeSteadyState(benchmark::State &State) {
  // A steady mutator with an installed policy: measures the whole
  // trigger-collect cycle amortized per allocation.
  HeapConfig Config;
  Config.TriggerBytes = 64 * 1024;
  Heap H(Config);
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = 16 * 1024;
  H.setPolicy(core::createPolicy("dtbfm", PolicyConfig));
  HandleScope Scope(H);
  Object *&Head = Scope.slot(nullptr);
  Rng R(42);
  for (auto _ : State) {
    Object *Node = H.allocate(1, 24);
    if (R.nextBool(0.05)) { // 5% of nodes join the live list.
      H.writeSlot(Node, 0, Head);
      Head = Node;
    }
    if (R.nextBool(0.001))
      Head = nullptr; // Periodically drop the list.
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RepeatedScavengeSteadyState);

void BM_HandleScopeChurn(benchmark::State &State) {
  Heap H(manualConfig());
  Object *O = H.allocate(0);
  for (auto _ : State) {
    HandleScope Scope(H);
    benchmark::DoNotOptimize(&Scope.slot(O));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_HandleScopeChurn);

} // namespace

BENCHMARK_MAIN();
