//===- examples/simulate_trace.cpp - Trace-driven policy comparison ------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The paper's methodology as a tool: generate (or load) an allocation
// trace, drive every collector policy over it, and print a comparison in
// the style of the paper's tables. Traces can be saved and reloaded, so a
// trace captured elsewhere (in the binary or text format of
// trace/TraceIO.h) can be analyzed the same way.
//
// Examples:
//   simulate_trace                         # built-in steady workload
//   simulate_trace --workload espresso2    # a paper workload
//   simulate_trace --save /tmp/w.trace     # write the trace out
//   simulate_trace --load /tmp/w.trace     # analyze a saved trace
//
//===----------------------------------------------------------------------===//

#include "core/Policies.h"
#include "serverload/ServerLoad.h"
#include "sim/Simulator.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/Units.h"
#include "trace/TraceIO.h"
#include "trace/TraceStats.h"
#include "workload/Workload.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>

using namespace dtb;

int main(int Argc, char **Argv) {
  std::string WorkloadName = "steady";
  std::string LoadPath;
  std::string SavePath;
  uint64_t TotalBytes = 20'000'000;
  uint64_t Seed = 1;
  uint64_t TriggerBytes = 0;
  uint64_t TraceMax = 0;
  uint64_t MemMax = 0;

  OptionParser Parser("Runs every collector policy over an allocation "
                      "trace and prints the comparison tables");
  Parser.addString("workload",
                   "Workload: steady, a paper workload name, or a server "
                   "scenario (frontend, diurnal, flashcrowd, bigdata, "
                   "multitenant)",
                   &WorkloadName);
  Parser.addString("load", "Load a trace file instead of generating",
                   &LoadPath);
  Parser.addString("save", "Also write the trace to this path", &SavePath);
  Parser.addUInt("bytes", "Total allocation for the steady workload",
                 &TotalBytes);
  Parser.addUInt("seed", "Generator seed", &Seed);
  Parser.addUInt("trigger",
                 "Bytes allocated between scavenges (0 = workload default)",
                 &TriggerBytes);
  Parser.addUInt("trace-max",
                 "Pause budget in traced bytes (0 = workload default)",
                 &TraceMax);
  Parser.addUInt("mem-max", "Memory budget in bytes (0 = workload default)",
                 &MemMax);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;

  // --- Obtain the trace ---------------------------------------------------
  trace::Trace T;
  double ProgramSeconds = 0.0;
  if (!LoadPath.empty()) {
    std::string Error;
    std::optional<trace::Trace> Loaded =
        trace::readTraceFile(LoadPath, &Error);
    if (!Loaded) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    T = std::move(*Loaded);
    ProgramSeconds =
        static_cast<double>(T.totalAllocated()) / 1.0e6; // 1 MB/s nominal.
  } else if (const workload::WorkloadSpec *Spec =
                 workload::findWorkload(WorkloadName)) {
    T = workload::generateTrace(*Spec);
    ProgramSeconds = Spec->ProgramSeconds;
  } else if (const serverload::ServerScenario *Scenario =
                 serverload::findServerScenario(WorkloadName)) {
    T = serverload::generateServerTrace(*Scenario);
    ProgramSeconds = Scenario->ProgramSeconds;
    // Server scenarios carry their own suggested constraint set, scaled to
    // their live levels; the flags still override.
    if (TriggerBytes == 0)
      TriggerBytes = Scenario->TriggerBytes;
    if (TraceMax == 0)
      TraceMax = Scenario->TraceMaxBytes;
    if (MemMax == 0)
      MemMax = Scenario->MemMaxBytes;
  } else if (WorkloadName == "steady") {
    workload::WorkloadSpec Spec =
        workload::makeSteadyStateSpec(TotalBytes, Seed);
    T = workload::generateTrace(Spec);
    ProgramSeconds = Spec.ProgramSeconds;
  } else {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 WorkloadName.c_str());
    return 1;
  }

  if (!SavePath.empty()) {
    if (!trace::writeTraceFile(T, SavePath)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", SavePath.c_str());
      return 1;
    }
    std::printf("trace written to %s\n\n", SavePath.c_str());
  }

  // Paper-parameter defaults for everything without its own constraint set.
  if (TriggerBytes == 0)
    TriggerBytes = 1'000'000;
  if (TraceMax == 0)
    TraceMax = 50'000;
  if (MemMax == 0)
    MemMax = 3'000'000;

  // --- Describe it --------------------------------------------------------
  trace::TraceStats Stats = trace::computeTraceStats(T);
  std::printf("trace: %llu objects, %s allocated, live mean/max %s / %s\n\n",
              static_cast<unsigned long long>(Stats.NumObjects),
              formatBytes(Stats.TotalAllocatedBytes).c_str(),
              formatBytes(static_cast<uint64_t>(Stats.LiveMeanBytes)).c_str(),
              formatBytes(Stats.LiveMaxBytes).c_str());

  // --- Run every policy ---------------------------------------------------
  sim::SimulatorConfig SimConfig;
  SimConfig.TriggerBytes = TriggerBytes;
  SimConfig.ProgramSeconds = ProgramSeconds;
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = TraceMax;
  PolicyConfig.MemMaxBytes = MemMax;

  Table Tbl({"Collector", "Mem mean (KB)", "Mem max (KB)", "Median (ms)",
             "90th (ms)", "Traced (KB)", "Overhead (%)", "Scavenges"});
  for (const std::string &Name : core::paperPolicyNames()) {
    auto Policy = core::createPolicy(Name, PolicyConfig);
    SimConfig.TelemetryTrack = "sim/" + WorkloadName + "/" + Name;
    sim::SimulationResult R = sim::simulate(T, *Policy, SimConfig);
    Tbl.addRow({Name, Table::cell(bytesToKB(R.MemMeanBytes)),
                Table::cell(bytesToKB(R.MemMaxBytes)),
                Table::cell(R.PauseMillis.median(), 0),
                Table::cell(R.PauseMillis.percentile90(), 0),
                Table::cell(bytesToKB(R.TotalTracedBytes)),
                Table::cell(R.CpuOverheadPercent, 1),
                Table::cell(R.NumScavenges)});
  }
  Tbl.print(stdout);

  std::printf("\nconstraints: %s trace budget (%.0f ms pauses), %s memory "
              "budget\n",
              formatBytes(TraceMax).c_str(),
              core::MachineModel().pauseMillisForTracedBytes(TraceMax),
              formatBytes(MemMax).c_str());
  return 0;
}
