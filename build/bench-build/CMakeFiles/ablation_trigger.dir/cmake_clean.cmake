file(REMOVE_RECURSE
  "../bench/ablation_trigger"
  "../bench/ablation_trigger.pdb"
  "CMakeFiles/ablation_trigger.dir/ablation_trigger.cpp.o"
  "CMakeFiles/ablation_trigger.dir/ablation_trigger.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
