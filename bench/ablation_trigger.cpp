//===- bench/ablation_trigger.cpp - Scavenge-trigger interval sweep ------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// §4 of the paper stresses that *what* to collect (the threatening
// boundary — this paper) and *when* to collect (the trigger — Wilson &
// Moher's territory) are orthogonal decisions that are easily confused.
// This ablation sweeps the trigger interval under each policy and shows
// the two effects separating: more frequent collection lowers memory and
// per-pause cost but raises total tracing, while the boundary policy
// controls the memory/pause point *within* each trigger setting.
//
//===----------------------------------------------------------------------===//

#include "report/Experiments.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/Units.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>

using namespace dtb;

int main(int Argc, char **Argv) {
  std::string WorkloadName = "ghost1";
  OptionParser Parser("Sweep of the scavenge trigger interval under each "
                      "boundary policy (what-to-collect vs when-to-collect "
                      "orthogonality)");
  Parser.addString("workload", "Workload name", &WorkloadName);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;

  const workload::WorkloadSpec *Spec = workload::findWorkload(WorkloadName);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 WorkloadName.c_str());
    return 1;
  }
  trace::Trace T = workload::generateTrace(*Spec);

  core::PolicyConfig PolicyConfig; // Paper defaults: 50 KB / 3000 KB.

  std::printf("Trigger-interval ablation on %s\n\n",
              Spec->DisplayName.c_str());
  for (const char *PolicyName : {"full", "fixed1", "dtbfm", "dtbmem"}) {
    Table Tbl({"Trigger (KB)", "Scavenges", "Mem mean (KB)",
               "Mem max (KB)", "Traced (KB)", "Median pause (ms)",
               "90th (ms)"});
    for (uint64_t TriggerKB : {250ull, 500ull, 1000ull, 2000ull, 4000ull}) {
      auto Policy = core::createPolicy(PolicyName, PolicyConfig);
      sim::SimulatorConfig SimConfig;
      SimConfig.TriggerBytes = TriggerKB * 1000;
      SimConfig.ProgramSeconds = Spec->ProgramSeconds;
      SimConfig.TelemetryTrack = "sim/" + Spec->Name + "/" + PolicyName +
                                 "@" + std::to_string(TriggerKB) + "kb";
      sim::SimulationResult R = sim::simulate(T, *Policy, SimConfig);
      Tbl.addRow({Table::cell(TriggerKB), Table::cell(R.NumScavenges),
                  Table::cell(bytesToKB(R.MemMeanBytes)),
                  Table::cell(bytesToKB(R.MemMaxBytes)),
                  Table::cell(bytesToKB(R.TotalTracedBytes)),
                  Table::cell(R.PauseMillis.median(), 0),
                  Table::cell(R.PauseMillis.percentile90(), 0)});
    }
    std::printf("%s:\n", PolicyName);
    Tbl.print(stdout);
    std::printf("\n");
  }

  std::printf("Expected shape: for FULL, halving the trigger roughly "
              "doubles total\ntracing while lowering the memory ceiling "
              "(classic when-to-collect\ntradeoff). The constrained "
              "policies hold their constraint (median pause\nfor DTBFM, "
              "memory max for DTBMEM) across trigger settings — the\n"
              "boundary, not the trigger, is what enforces it.\n");
  return 0;
}
