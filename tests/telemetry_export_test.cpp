//===- tests/telemetry_export_test.cpp - Exporter correctness ------------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The exporters on a small hand-built event stream: the Chrome trace JSON
// must parse back as well-formed JSON with the trace-event structure
// Perfetto expects (validated by a minimal recursive-descent parser — no
// third-party JSON dependency), the CSV and metrics JSON match golden
// strings, and wall-clock tracks/metrics stay out unless opted in.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Export.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace dtb;
namespace tel = dtb::telemetry;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON model + recursive-descent parser (test-only)
//===----------------------------------------------------------------------===//

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object } K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Json> Items;
  std::map<std::string, Json> Fields;

  bool has(const std::string &Key) const { return Fields.count(Key) != 0; }
  const Json &at(const std::string &Key) const { return Fields.at(Key); }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  /// Parses the whole document; false on any syntax error or trailing
  /// garbage.
  bool parse(Json *Out) {
    if (!value(Out))
      return false;
    skipSpace();
    return Pos == Text.size();
  }

private:
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool literal(const char *Word) {
    size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  bool string(std::string *Out) {
    if (!consume('"'))
      return false;
    Out->clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // Control characters must be escaped.
      if (C != '\\') {
        *Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return false;
      char E = Text[Pos++];
      switch (E) {
      case '"': *Out += '"'; break;
      case '\\': *Out += '\\'; break;
      case '/': *Out += '/'; break;
      case 'b': *Out += '\b'; break;
      case 'f': *Out += '\f'; break;
      case 'n': *Out += '\n'; break;
      case 'r': *Out += '\r'; break;
      case 't': *Out += '\t'; break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return false;
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return false;
        }
        *Out += static_cast<char>(Code & 0x7f); // ASCII is all we emit.
        break;
      }
      default:
        return false;
      }
    }
    return false; // Unterminated.
  }

  bool value(Json *Out) {
    skipSpace();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{')
      return object(Out);
    if (C == '[')
      return array(Out);
    if (C == '"') {
      Out->K = Json::Kind::String;
      return string(&Out->Str);
    }
    if (literal("true")) {
      Out->K = Json::Kind::Bool;
      Out->B = true;
      return true;
    }
    if (literal("false")) {
      Out->K = Json::Kind::Bool;
      Out->B = false;
      return true;
    }
    if (literal("null")) {
      Out->K = Json::Kind::Null;
      return true;
    }
    return number(Out);
  }

  bool number(Json *Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    auto digits = [&] {
      size_t Before = Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      return Pos != Before;
    };
    if (!digits())
      return false;
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (!digits())
        return false;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!digits())
        return false;
    }
    Out->K = Json::Kind::Number;
    Out->Num = std::strtod(Text.c_str() + Start, nullptr);
    return true;
  }

  bool array(Json *Out) {
    if (!consume('['))
      return false;
    Out->K = Json::Kind::Array;
    skipSpace();
    if (consume(']'))
      return true;
    while (true) {
      Json Item;
      if (!value(&Item))
        return false;
      Out->Items.push_back(std::move(Item));
      if (consume(']'))
        return true;
      if (!consume(','))
        return false;
    }
  }

  bool object(Json *Out) {
    if (!consume('{'))
      return false;
    Out->K = Json::Kind::Object;
    skipSpace();
    if (consume('}'))
      return true;
    while (true) {
      skipSpace();
      std::string Key;
      if (!string(&Key) || !consume(':'))
        return false;
      Json Val;
      if (!value(&Val))
        return false;
      Out->Fields[Key] = std::move(Val);
      if (consume('}'))
        return true;
      if (!consume(','))
        return false;
    }
  }

  const std::string &Text;
  size_t Pos = 0;
};

/// Runs an exporter into a memory stream and returns the bytes written.
template <typename Fn> std::string capture(Fn &&Write) {
  char *Data = nullptr;
  size_t Size = 0;
  std::FILE *Stream = open_memstream(&Data, &Size);
  EXPECT_NE(Stream, nullptr);
  Write(Stream);
  std::fclose(Stream);
  std::string Out(Data, Size);
  std::free(Data);
  return Out;
}

/// A small deterministic stream: two sim tracks plus one wall track.
std::vector<tel::Event> sampleEvents() {
  std::vector<tel::Event> Events;
  auto push = [&](tel::EventPhase Phase, const char *Track, const char *Name,
                  uint64_t Index, uint64_t Ts, double Dur,
                  std::vector<tel::EventArg> Args) {
    tel::Event E;
    E.Phase = Phase;
    E.Track = Track;
    E.Name = Name;
    E.ScavengeIndex = Index;
    E.TsClock = Ts;
    E.DurMillis = Dur;
    E.Args = std::move(Args);
    E.Seq = Events.size();
    Events.push_back(std::move(E));
  };
  push(tel::EventPhase::Span, "sim/w/full", "scavenge", 1, 1000, 2.0,
       {tel::arg("tb", uint64_t(0)), tel::arg("rule", std::string("full"))});
  push(tel::EventPhase::Instant, "sim/w/full", "tb", 1, 1000, 0.0,
       {tel::arg("tb", uint64_t(0))});
  push(tel::EventPhase::Span, "sim/w/full", "scavenge", 2, 2000, 4.0, {});
  push(tel::EventPhase::Counter, "sim/w/full", "resident_bytes", 2, 2000, 0.0,
       {tel::arg("resident_bytes", uint64_t(512))});
  push(tel::EventPhase::Span, "sim/w/dtbfm", "scavenge", 1, 1000, 1.5,
       {tel::arg("rule", std::string("widen"))});
  push(tel::EventPhase::Span, "wall/thread-0", "sim.policy_decision", 0, 7,
       0.001, {});
  return Events;
}

std::vector<tel::MetricSample> sampleMetrics() {
  tel::MetricsRegistry Registry;
  Registry.counter("sim.scavenge.count").add(3);
  Registry.gauge("timing.grid.speedup").set(1.5);
  Registry.counter("wall.ignored").add(9);
  return Registry.snapshot();
}

//===----------------------------------------------------------------------===//
// Chrome trace JSON
//===----------------------------------------------------------------------===//

TEST(ChromeTrace, ParsesBackAndHasTraceEventStructure) {
  std::string Text = capture([&](std::FILE *Out) {
    tel::writeChromeTrace(sampleEvents(), sampleMetrics(), tel::ExportOptions(),
                         Out);
  });
  Json Doc;
  ASSERT_TRUE(JsonParser(Text).parse(&Doc)) << Text;
  ASSERT_EQ(Doc.K, Json::Kind::Object);
  ASSERT_TRUE(Doc.has("traceEvents"));
  ASSERT_EQ(Doc.at("traceEvents").K, Json::Kind::Array);
  EXPECT_EQ(Doc.at("displayTimeUnit").Str, "ms");

  size_t Metadata = 0, Spans = 0, Instants = 0, Counters = 0;
  for (const Json &E : Doc.at("traceEvents").Items) {
    ASSERT_EQ(E.K, Json::Kind::Object);
    ASSERT_TRUE(E.has("ph"));
    ASSERT_TRUE(E.has("pid"));
    ASSERT_TRUE(E.has("tid"));
    ASSERT_TRUE(E.has("name"));
    const std::string &Ph = E.at("ph").Str;
    if (Ph == "M") {
      Metadata += 1;
      EXPECT_EQ(E.at("name").Str, "thread_name");
      continue;
    }
    ASSERT_TRUE(E.has("ts"));
    if (Ph == "X") {
      Spans += 1;
      ASSERT_TRUE(E.has("dur"));
      EXPECT_GE(E.at("dur").Num, 0.0);
    } else if (Ph == "i") {
      Instants += 1;
      EXPECT_EQ(E.at("s").Str, "t");
    } else if (Ph == "C") {
      Counters += 1;
      ASSERT_TRUE(E.has("args"));
    } else {
      FAIL() << "unexpected phase " << Ph;
    }
  }
  EXPECT_EQ(Metadata, 2u); // Two non-wall tracks.
  EXPECT_EQ(Spans, 3u);    // Wall span excluded by default.
  EXPECT_EQ(Instants, 1u);
  EXPECT_EQ(Counters, 1u);

  // The wall metric stays out of otherData; the others are present.
  ASSERT_TRUE(Doc.has("otherData"));
  EXPECT_FALSE(Doc.at("otherData").has("wall.ignored"));
  EXPECT_DOUBLE_EQ(Doc.at("otherData").at("sim.scavenge.count").Num, 3.0);
}

TEST(ChromeTrace, WallClockOptInIncludesWallTrack) {
  tel::ExportOptions Options;
  Options.IncludeWallClock = true;
  std::string Text = capture([&](std::FILE *Out) {
    tel::writeChromeTrace(sampleEvents(), sampleMetrics(), Options, Out);
  });
  Json Doc;
  ASSERT_TRUE(JsonParser(Text).parse(&Doc));
  size_t Metadata = 0;
  bool SawWallName = false;
  for (const Json &E : Doc.at("traceEvents").Items)
    if (E.at("ph").Str == "M") {
      Metadata += 1;
      if (E.at("args").at("name").Str == "wall/thread-0")
        SawWallName = true;
    }
  EXPECT_EQ(Metadata, 3u);
  EXPECT_TRUE(SawWallName);
  EXPECT_TRUE(Doc.at("otherData").has("wall.ignored"));
}

TEST(ChromeTrace, EscapesSpecialCharacters) {
  std::vector<tel::Event> Events;
  tel::Event E;
  E.Phase = tel::EventPhase::Instant;
  E.Track = "t";
  E.Name = "quote\" backslash\\ newline\n tab\t";
  E.Args = {tel::arg("msg", std::string("a\"b\\c\x01"))};
  Events.push_back(E);
  std::string Text = capture([&](std::FILE *Out) {
    tel::writeChromeTrace(Events, {}, tel::ExportOptions(), Out);
  });
  Json Doc;
  ASSERT_TRUE(JsonParser(Text).parse(&Doc)) << Text;
  // Round-trips exactly through the parser's unescaping.
  bool Found = false;
  for (const Json &Ev : Doc.at("traceEvents").Items)
    if (Ev.at("ph").Str == "i") {
      EXPECT_EQ(Ev.at("name").Str, E.Name);
      EXPECT_EQ(Ev.at("args").at("msg").Str, "a\"b\\c\x01");
      Found = true;
    }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// CSV and metrics JSON goldens
//===----------------------------------------------------------------------===//

TEST(CsvExport, GoldenOutput) {
  std::string Text = capture([&](std::FILE *Out) {
    tel::writeCsv(sampleEvents(), tel::ExportOptions(), Out);
  });
  EXPECT_EQ(Text,
            "track,scavenge_index,phase,name,ts,dur_ms,args\n"
            "sim/w/full,1,X,scavenge,1000,2,tb=0;rule=full\n"
            "sim/w/full,1,i,tb,1000,0,tb=0\n"
            "sim/w/full,2,X,scavenge,2000,4,\n"
            "sim/w/full,2,C,resident_bytes,2000,0,resident_bytes=512\n"
            "sim/w/dtbfm,1,X,scavenge,1000,1.5,rule=widen\n");
}

TEST(MetricsJson, GoldenOutputAndParsesBack) {
  std::string Text = capture([&](std::FILE *Out) {
    tel::writeMetricsJson(sampleMetrics(), tel::ExportOptions(), Out);
  });
  EXPECT_EQ(Text, "{\n  \"metrics\": {\n"
                  "    \"sim.scavenge.count\": 3,\n"
                  "    \"timing.grid.speedup\": 1.5\n"
                  "  }\n}\n");
  Json Doc;
  ASSERT_TRUE(JsonParser(Text).parse(&Doc));
  EXPECT_DOUBLE_EQ(Doc.at("metrics").at("timing.grid.speedup").Num, 1.5);
}

TEST(MetricsJson, HistogramEntryParsesBack) {
  tel::MetricsRegistry Registry;
  tel::LogHistogram &H = Registry.histogram("pause_ms");
  H.record(10.0);
  H.record(20.0);
  std::string Text = capture([&](std::FILE *Out) {
    tel::writeMetricsJson(Registry.snapshot(), tel::ExportOptions(), Out);
  });
  Json Doc;
  ASSERT_TRUE(JsonParser(Text).parse(&Doc)) << Text;
  const Json &P = Doc.at("metrics").at("pause_ms");
  EXPECT_DOUBLE_EQ(P.at("count").Num, 2.0);
  EXPECT_DOUBLE_EQ(P.at("sum").Num, 30.0);
  EXPECT_DOUBLE_EQ(P.at("min").Num, 10.0);
  EXPECT_DOUBLE_EQ(P.at("max").Num, 20.0);
  EXPECT_GT(P.at("p50").Num, 0.0);
}

//===----------------------------------------------------------------------===//
// Summary tables
//===----------------------------------------------------------------------===//

TEST(SummaryTable, AggregatesPerTrackAndEvent) {
  Table T = tel::buildEventSummaryTable(sampleEvents(), tel::ExportOptions());
  std::string Text = capture([&](std::FILE *Out) { T.print(Out); });
  // Wall track excluded; both sim tracks summarized.
  EXPECT_EQ(Text.find("wall/thread-0"), std::string::npos);
  EXPECT_NE(Text.find("sim/w/full"), std::string::npos);
  EXPECT_NE(Text.find("sim/w/dtbfm"), std::string::npos);
  // The sim/w/full scavenge row: 2 spans, median of {2, 4} by nearest
  // rank = 2, max 4.
  EXPECT_NE(Text.find("scavenge"), std::string::npos);
}

TEST(ArgFormatting, DoublesRoundTripShortest) {
  EXPECT_EQ(tel::arg("k", 1.5).Value, "1.5");
  EXPECT_EQ(tel::arg("k", 3.0).Value, "3");
  EXPECT_EQ(tel::arg("k", uint64_t(18446744073709551615ull)).Value,
            "18446744073709551615");
  // A value needing full precision survives the round trip.
  double Pi = 3.141592653589793;
  EXPECT_EQ(std::strtod(tel::arg("k", Pi).Value.c_str(), nullptr), Pi);
}

} // namespace
