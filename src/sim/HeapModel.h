//===- sim/HeapModel.h - Oracle heap model for simulation ------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated heap: the set of *resident* objects — live objects plus
/// garbage that no scavenge has reclaimed yet. Deaths are oracle events
/// from the allocation trace (the paper drives its simulations with
/// malloc/free traces, so the simulated collector reclaims exactly the
/// threatened objects whose free event has passed).
///
/// Residents are kept in birth order, so the threatened suffix for any
/// boundary is found by binary search and scavenges touch only that
/// suffix.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_SIM_HEAPMODEL_H
#define DTB_SIM_HEAPMODEL_H

#include "core/AllocClock.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dtb {
namespace sim {

using core::AllocClock;

/// One resident object.
struct ResidentObject {
  AllocClock Birth = 0;
  uint32_t Size = 0;
  /// Oracle death clock (trace::NeverDies for immortal objects).
  AllocClock Death = 0;
};

/// Byte counts produced by one scavenge.
struct ScavengeOutcome {
  /// Live threatened bytes examined by the collector (Trace_n).
  uint64_t TracedBytes = 0;
  /// Dead threatened bytes reclaimed.
  uint64_t ReclaimedBytes = 0;
  /// Resident bytes before the scavenge (Mem_n).
  uint64_t MemBeforeBytes = 0;
  /// Resident bytes after (S_n = Mem_n - Reclaimed).
  uint64_t SurvivedBytes = 0;
};

/// The resident-object set.
class HeapModel {
public:
  /// Adds a newly allocated object; births must arrive in increasing
  /// clock order.
  void addObject(AllocClock Birth, uint32_t Size, AllocClock Death);

  /// Performs a scavenge at clock \p Now with threatening boundary
  /// \p Boundary: every resident born after the boundary is threatened;
  /// threatened objects dead at \p Now are reclaimed, live ones are traced.
  /// Immune objects (born at or before the boundary) are untouched —
  /// dead immune objects remain resident as tenured garbage.
  ScavengeOutcome scavenge(AllocClock Now, AllocClock Boundary);

  /// Total resident bytes (live + unreclaimed garbage).
  uint64_t residentBytes() const { return ResidentBytes; }
  size_t residentObjects() const { return Residents.size(); }

  /// Exact live bytes born strictly after \p Boundary, judged at clock
  /// \p Now — the tracing cost a scavenge with that boundary would incur.
  uint64_t liveBytesBornAfter(AllocClock Boundary, AllocClock Now) const;

  /// Exact dead-but-resident (garbage) bytes at clock \p Now.
  uint64_t garbageBytes(AllocClock Now) const;

  /// Exact resident bytes born strictly after \p Boundary.
  uint64_t residentBytesBornAfter(AllocClock Boundary) const;

  const std::vector<ResidentObject> &residents() const { return Residents; }

private:
  /// Index of the first resident born strictly after \p Boundary.
  size_t firstBornAfter(AllocClock Boundary) const;

  std::vector<ResidentObject> Residents; // Sorted by Birth (strictly).
  uint64_t ResidentBytes = 0;
};

} // namespace sim
} // namespace dtb

#endif // DTB_SIM_HEAPMODEL_H
