//===- tests/sim_simulator_test.cpp ---------------------------------------==//
//
// Tests for the trace-driven simulator: trigger behaviour, per-scavenge
// accounting identities, metric reduction, and memory-curve recording.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "core/Policies.h"
#include "support/Random.h"
#include "trace/TraceStats.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::sim;
using core::AllocClock;

namespace {

/// A trace of Count objects of Size bytes; each object dies LifetimeBytes
/// after its birth (immortal if 0).
trace::Trace makeUniformTrace(size_t Count, uint32_t Size,
                              AllocClock LifetimeBytes) {
  std::vector<trace::AllocationRecord> Records;
  AllocClock Clock = 0;
  for (size_t I = 0; I != Count; ++I) {
    Clock += Size;
    Records.push_back({Clock, Size,
                       LifetimeBytes == 0 ? trace::NeverDies
                                          : Clock + LifetimeBytes});
  }
  return trace::Trace(std::move(Records));
}

SimulatorConfig smallConfig() {
  SimulatorConfig Config;
  Config.TriggerBytes = 10'000;
  Config.ProgramSeconds = 1.0;
  return Config;
}

} // namespace

TEST(SimulatorTest, TriggerSpacing) {
  // 100 KB of allocation with a 10 KB trigger: 10 scavenges (the last
  // allocation lands exactly on the final trigger point).
  trace::Trace T = makeUniformTrace(1000, 100, 500);
  core::FullPolicy Policy;
  SimulationResult R = simulate(T, Policy, smallConfig());
  EXPECT_EQ(R.NumScavenges, 10u);
  // Scavenges are spaced ~TriggerBytes apart.
  for (size_t I = 1; I < R.History.records().size(); ++I) {
    AllocClock Gap = R.History.records()[I].Time -
                     R.History.records()[I - 1].Time;
    EXPECT_GE(Gap, 10'000u - 100u);
    EXPECT_LE(Gap, 10'000u + 100u);
  }
}

TEST(SimulatorTest, AccountingIdentitiesHoldPerScavenge) {
  trace::Trace T = makeUniformTrace(2000, 64, 3000);
  core::FixedAgePolicy Policy(1);
  SimulationResult R = simulate(T, Policy, smallConfig());
  ASSERT_GT(R.NumScavenges, 0u);
  for (const core::ScavengeRecord &Rec : R.History.records()) {
    EXPECT_EQ(Rec.MemBeforeBytes, Rec.SurvivedBytes + Rec.ReclaimedBytes);
    EXPECT_LE(Rec.Boundary, Rec.Time);
    EXPECT_LE(Rec.TracedBytes, Rec.MemBeforeBytes);
  }
}

TEST(SimulatorTest, FullPolicyLeavesExactlyLiveBytes) {
  // After a FULL scavenge at time t, survivors are exactly the objects
  // live at t — cross-check against the trace oracle.
  trace::Trace T = makeUniformTrace(3000, 50, 7777);
  core::FullPolicy Policy;
  SimulationResult R = simulate(T, Policy, smallConfig());
  ASSERT_GT(R.NumScavenges, 2u);
  for (const core::ScavengeRecord &Rec : R.History.records()) {
    uint64_t OracleLive = 0;
    for (const trace::AllocationRecord &Obj : T.records()) {
      if (Obj.Birth <= Rec.Time && Obj.liveAt(Rec.Time))
        OracleLive += Obj.Size;
    }
    EXPECT_EQ(Rec.SurvivedBytes, OracleLive) << "scavenge " << Rec.Index;
    EXPECT_EQ(Rec.TracedBytes, OracleLive);
  }
}

TEST(SimulatorTest, TotalTracedAndPauseReduction) {
  trace::Trace T = makeUniformTrace(1000, 100, 500);
  core::FullPolicy Policy;
  SimulatorConfig Config = smallConfig();
  SimulationResult R = simulate(T, Policy, Config);

  uint64_t Sum = 0;
  for (const core::ScavengeRecord &Rec : R.History.records())
    Sum += Rec.TracedBytes;
  EXPECT_EQ(R.TotalTracedBytes, Sum);
  EXPECT_EQ(R.PauseMillis.size(), R.NumScavenges);

  // Pause = traced / 500 bytes-per-ms under the default machine model.
  double FirstPause = R.PauseMillis.samples().front();
  double FirstTraced =
      static_cast<double>(R.History.records().front().TracedBytes);
  EXPECT_DOUBLE_EQ(FirstPause, FirstTraced / 500.0);

  // Overhead% = (traced / 500KBps) / ProgramSeconds * 100.
  EXPECT_DOUBLE_EQ(R.CpuOverheadPercent,
                   static_cast<double>(Sum) / 500'000.0 / 1.0 * 100.0);
}

TEST(SimulatorTest, MemoryMaxAtLeastPreScavengeResidency) {
  trace::Trace T = makeUniformTrace(1000, 100, 2000);
  core::FullPolicy Policy;
  SimulationResult R = simulate(T, Policy, smallConfig());
  for (const core::ScavengeRecord &Rec : R.History.records())
    EXPECT_GE(R.MemMaxBytes, Rec.MemBeforeBytes);
}

TEST(SimulatorTest, NoGcWithoutTriggerableAllocation) {
  // Trace smaller than the trigger: no scavenges; memory mean equals the
  // No-GC profile.
  trace::Trace T = makeUniformTrace(50, 100, 0);
  core::FullPolicy Policy;
  SimulatorConfig Config;
  Config.TriggerBytes = 1'000'000;
  SimulationResult R = simulate(T, Policy, Config);
  EXPECT_EQ(R.NumScavenges, 0u);
  trace::TraceStats S = trace::computeTraceStats(T);
  EXPECT_DOUBLE_EQ(R.MemMeanBytes, S.NoGcMeanBytes);
  EXPECT_EQ(R.MemMaxBytes, T.totalAllocated());
}

TEST(SimulatorTest, MemoryCurveRecordsScavengeDrops) {
  trace::Trace T = makeUniformTrace(1000, 100, 500);
  core::FullPolicy Policy;
  SimulatorConfig Config = smallConfig();
  Config.RecordMemoryCurve = true;
  Config.CurveSampleBytes = 2'000;
  SimulationResult R = simulate(T, Policy, Config);
  ASSERT_FALSE(R.Curve.empty());

  // Curve clocks are non-decreasing and post-scavenge points drop.
  AllocClock Prev = 0;
  size_t Drops = 0;
  for (size_t I = 0; I != R.Curve.size(); ++I) {
    EXPECT_GE(R.Curve[I].Clock, Prev);
    Prev = R.Curve[I].Clock;
    if (R.Curve[I].AfterScavenge) {
      ASSERT_GT(I, 0u);
      EXPECT_LE(R.Curve[I].ResidentBytes, R.Curve[I - 1].ResidentBytes);
      ++Drops;
    }
  }
  EXPECT_EQ(Drops, R.NumScavenges);
}

TEST(SimulatorTest, PolicyReusableAcrossRuns) {
  trace::Trace T = makeUniformTrace(1000, 100, 500);
  core::DtbPausePolicy Policy(5'000);
  SimulationResult A = simulate(T, Policy, smallConfig());
  SimulationResult B = simulate(T, Policy, smallConfig());
  EXPECT_EQ(A.TotalTracedBytes, B.TotalTracedBytes);
  EXPECT_EQ(A.NumScavenges, B.NumScavenges);
  EXPECT_DOUBLE_EQ(A.MemMeanBytes, B.MemMeanBytes);
}

TEST(SimulatorTest, HugeObjectCrossingSeveralTriggersCausesOneScavenge) {
  std::vector<trace::AllocationRecord> Records;
  Records.push_back({/*Birth=*/50'000, /*Size=*/50'000,
                     /*Death=*/trace::NeverDies});
  Records.push_back({/*Birth=*/50'100, /*Size=*/100,
                     /*Death=*/trace::NeverDies});
  trace::Trace T(std::move(Records));
  core::FullPolicy Policy;
  SimulatorConfig Config;
  Config.TriggerBytes = 10'000;
  Config.ProgramSeconds = 1.0;
  SimulationResult R = simulate(T, Policy, Config);
  // The 50 KB allocation crosses five trigger points but fires once; the
  // following 100-byte allocation does not reach the next trigger.
  EXPECT_EQ(R.NumScavenges, 1u);
}
