file(REMOVE_RECURSE
  "CMakeFiles/runtime_chaos_test.dir/runtime_chaos_test.cpp.o"
  "CMakeFiles/runtime_chaos_test.dir/runtime_chaos_test.cpp.o.d"
  "runtime_chaos_test"
  "runtime_chaos_test.pdb"
  "runtime_chaos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
