//===- support/CommandLine.h - Tiny option parser --------------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately tiny command-line option parser for the example and
/// benchmark executables: `--name=value`, `--name value`, and boolean
/// `--flag` forms, plus positional arguments and generated `--help`.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_SUPPORT_COMMANDLINE_H
#define DTB_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace dtb {

/// Declarative option table + parser. Register options, then call parse().
class OptionParser {
public:
  explicit OptionParser(std::string ProgramDescription);

  /// Registers a string option; \p Target keeps its prior value as default.
  void addString(std::string Name, std::string Help, std::string *Target);
  /// Registers an unsigned integer option (accepts k/m/g suffixes, decimal).
  void addUInt(std::string Name, std::string Help, uint64_t *Target);
  /// Registers a floating-point option.
  void addDouble(std::string Name, std::string Help, double *Target);
  /// Registers a boolean flag (`--flag` sets true, `--flag=false` clears).
  void addFlag(std::string Name, std::string Help, bool *Target);

  /// Registers a single-dash alias for an already-registered option, so
  /// `-j 4` and `-j4` behave like `--threads 4`. Single-dash arguments
  /// that match no alias remain positionals.
  void addShortAlias(std::string ShortName, std::string OptionName);

  /// Parses \p Argv. Returns false (after printing a diagnostic or help
  /// text) if the program should exit; positional arguments are collected
  /// into positionals().
  bool parse(int Argc, const char *const *Argv);

  const std::vector<std::string> &positionals() const { return Positionals; }

  /// Prints the generated help text.
  void printHelp(const char *Argv0) const;

private:
  enum class OptionKind { String, UInt, Double, Flag };
  struct Option {
    std::string Name;
    std::string Help;
    OptionKind Kind;
    void *Target;
  };

  const Option *findOption(const std::string &Name) const;
  bool applyValue(const Option &Opt, const std::string &Value);

  std::string Description;
  std::vector<Option> Options;
  std::vector<std::pair<std::string, std::string>> ShortAliases;
  std::vector<std::string> Positionals;
};

/// Parses "123", "64k", "1m", "2g" style sizes; returns false on malformed
/// input.
bool parseScaledUInt(const std::string &Text, uint64_t *Out);

} // namespace dtb

#endif // DTB_SUPPORT_COMMANDLINE_H
