//===- bench/table2_memory.cpp - Reproduces the paper's Table 2 ----------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// Runs the six collectors over the six workloads with the paper's
// parameters (1 MB trigger, 50 KB trace budget, 3000 KB memory budget) and
// prints mean and maximum memory per cell — the paper's Table 2 — followed
// by the published values for comparison.
//
//===----------------------------------------------------------------------===//

#include "report/Experiments.h"
#include "report/PaperReference.h"
#include "support/CommandLine.h"
#include "support/ThreadPool.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>

using namespace dtb;

int main(int Argc, char **Argv) {
  bool Csv = false;
  report::ExperimentConfig Config;
  uint64_t Threads = 0;
  OptionParser Parser("Reproduces Table 2: mean and maximum memory "
                      "allocated (KB) per collector and workload");
  Parser.addFlag("csv", "Emit CSV instead of aligned text", &Csv);
  Parser.addUInt("trigger", "Bytes allocated between scavenges",
                 &Config.TriggerBytes);
  Parser.addUInt("trace-max", "Pause budget in traced bytes",
                 &Config.TraceMaxBytes);
  Parser.addUInt("mem-max", "DTBMEM memory budget in bytes",
                 &Config.MemMaxBytes);
  addThreadsOption(Parser, &Threads);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;
  applyThreadsOption(Threads);

  report::ExperimentGrid Grid = report::ExperimentGrid::paperGrid(Config);
  Table Measured = report::buildTable2(Grid);
  if (Csv) {
    Measured.printCsv(stdout);
    return 0;
  }

  std::printf("Table 2 (measured): Mean and Maximum Memory Allocated "
              "(Kilobytes)\n\n");
  Measured.print(stdout);
  std::printf("\nTable 2 (paper):\n\n");
  report::paperTable2().print(stdout);
  return 0;
}
