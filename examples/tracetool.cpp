//===- examples/tracetool.cpp - Allocation trace toolbox -----------------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// A small command-line toolbox for the allocation-trace files that drive
// the simulator — the role QPT's trace files play in the paper:
//
//   tracetool gen --workload ghost1 --out ghost1.trace   generate
//   tracetool info ghost1.trace                          statistics
//   tracetool convert --text ghost1.trace out.txt        re-encode
//   tracetool live ghost1.trace                          live-byte curve
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/Units.h"
#include "trace/TraceIO.h"
#include "trace/TraceStats.h"
#include "workload/Workload.h"

#include <cstdio>
#include <cstring>

using namespace dtb;

namespace {

int cmdGen(const std::string &WorkloadName, uint64_t Bytes, uint64_t Seed,
           const std::string &OutPath) {
  trace::Trace T;
  if (const workload::WorkloadSpec *Spec =
          workload::findWorkload(WorkloadName)) {
    T = workload::generateTrace(*Spec);
  } else if (WorkloadName == "steady") {
    T = workload::generateTrace(workload::makeSteadyStateSpec(Bytes, Seed));
  } else {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 WorkloadName.c_str());
    return 1;
  }
  if (OutPath.empty()) {
    std::fprintf(stderr, "error: gen requires --out\n");
    return 1;
  }
  if (!trace::writeTraceFile(T, OutPath)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  std::printf("wrote %zu objects (%s) to %s\n", T.numObjects(),
              formatBytes(T.totalAllocated()).c_str(), OutPath.c_str());
  return 0;
}

int cmdInfo(const std::string &Path) {
  std::string Error;
  std::optional<trace::Trace> T = trace::readTraceFile(Path, &Error);
  if (!T) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (!T->verify(&Error)) {
    std::fprintf(stderr, "error: malformed trace: %s\n", Error.c_str());
    return 1;
  }
  trace::TraceStats S = trace::computeTraceStats(*T);
  std::printf("objects:          %llu\n",
              static_cast<unsigned long long>(S.NumObjects));
  std::printf("total allocated:  %s\n",
              formatBytes(S.TotalAllocatedBytes).c_str());
  std::printf("mean object size: %.1f B (max %u)\n", S.MeanObjectSize,
              S.MaxObjectSize);
  std::printf("live mean/max:    %s / %s\n",
              formatBytes(static_cast<uint64_t>(S.LiveMeanBytes)).c_str(),
              formatBytes(S.LiveMaxBytes).c_str());
  std::printf("live at end:      %s\n",
              formatBytes(S.LiveAtEndBytes).c_str());
  std::printf("lifetime CDF (fraction of bytes dying before age):\n");
  const std::vector<uint64_t> &Thresholds =
      trace::TraceStats::lifetimeThresholds();
  for (size_t I = 0; I != Thresholds.size(); ++I)
    std::printf("  < %-10s %.3f\n", formatBytes(Thresholds[I]).c_str(),
                S.LifetimeCdf[I]);
  return 0;
}

int cmdConvert(const std::string &InPath, const std::string &OutPath,
               bool Text) {
  std::string Error;
  std::optional<trace::Trace> T = trace::readTraceFile(InPath, &Error);
  if (!T) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::FILE *Out = std::fopen(OutPath.c_str(), "wb");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  std::string Data =
      Text ? trace::serializeText(*T) : trace::serializeBinary(*T);
  bool Ok = std::fwrite(Data.data(), 1, Data.size(), Out) == Data.size();
  Ok &= std::fclose(Out) == 0;
  if (!Ok) {
    std::fprintf(stderr, "error: short write to '%s'\n", OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s (%s)\n", OutPath.c_str(),
              Text ? "text" : "binary");
  return 0;
}

int cmdLive(const std::string &Path, uint64_t Points) {
  std::string Error;
  std::optional<trace::Trace> T = trace::readTraceFile(Path, &Error);
  if (!T) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::vector<uint64_t> Curve =
      trace::sampleLiveProfile(*T, static_cast<size_t>(Points));
  uint64_t Max = 1;
  for (uint64_t V : Curve)
    Max = std::max(Max, V);
  for (size_t I = 0; I != Curve.size(); ++I) {
    uint64_t Clock = T->totalAllocated() * (I + 1) / Curve.size();
    int Bar = static_cast<int>(60 * Curve[I] / Max);
    std::printf("%12s %10s |%.*s\n", formatBytes(Clock).c_str(),
                formatBytes(Curve[I]).c_str(), Bar,
                "############################################################");
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Workload = "steady";
  std::string OutPath;
  uint64_t Bytes = 10'000'000;
  uint64_t Seed = 1;
  uint64_t Points = 40;
  bool Text = false;

  OptionParser Parser("Allocation-trace toolbox: gen | info | convert | "
                      "live");
  Parser.addString("workload", "For gen: workload name or 'steady'",
                   &Workload);
  Parser.addString("out", "For gen: output path", &OutPath);
  Parser.addUInt("bytes", "For gen steady: total bytes", &Bytes);
  Parser.addUInt("seed", "For gen steady: seed", &Seed);
  Parser.addUInt("points", "For live: curve points", &Points);
  Parser.addFlag("text", "For convert: emit the text format", &Text);
  if (!Parser.parse(Argc, Argv))
    return 1;

  const std::vector<std::string> &Args = Parser.positionals();
  if (Args.empty()) {
    std::fprintf(stderr,
                 "usage: tracetool gen --workload W --out F\n"
                 "       tracetool info F\n"
                 "       tracetool convert [--text] IN OUT\n"
                 "       tracetool live F [--points N]\n");
    return 1;
  }

  const std::string &Command = Args[0];
  if (Command == "gen")
    return cmdGen(Workload, Bytes, Seed, OutPath);
  if (Command == "info" && Args.size() == 2)
    return cmdInfo(Args[1]);
  if (Command == "convert" && Args.size() == 3)
    return cmdConvert(Args[1], Args[2], Text);
  if (Command == "live" && Args.size() == 2)
    return cmdLive(Args[1], Points);

  std::fprintf(stderr, "error: unknown command or wrong arguments "
                       "(try without arguments for usage)\n");
  return 1;
}
