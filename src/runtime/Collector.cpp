//===- runtime/Collector.cpp - Scavenging over the threatened set --------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The scavenger: given a threatening boundary TB, the threatened set is
// every object born after TB; immune objects are not traced. Roots are the
// handle-scope slots, global root locations, pinned objects, and every
// remembered-set entry whose (immune) source currently holds a pointer
// across the boundary. Unreachable threatened objects are reclaimed;
// immune garbage stays resident until some later scavenge moves the
// boundary behind it — the paper's tenured garbage and untenuring.
//
// Two strategies implement the same contract (HeapConfig::Collector):
// non-moving mark-sweep (this file) and an evacuating copying collector
// (CopyingCollector.cpp) that relocates survivors, exercising the paper's
// note that "the actual implementation may maintain object locations in
// any order".
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include "core/MachineModel.h"
#include "runtime/Mutator.h"
#include "runtime/TraceLanes.h"
#include "support/Error.h"
#include "telemetry/Telemetry.h"

#include <cassert>
#include <chrono>
#include <vector>

using namespace dtb;
using namespace dtb::runtime;
using core::AllocClock;

core::ScavengeRecord Heap::collectAtBoundary(AllocClock Boundary) {
  // Rendezvous with every registered mutator context (publishing pending
  // allocations and flushing barrier buffers) before anything reads heap
  // state; reentrant when collect() or the pressure ladder already owns
  // the stopped world.
  WorldPause Pause(*this);
  // A full collection subsumes any incremental cycle in flight; finish it
  // first so its record lands in the history before this one.
  if (Inc.Active)
    finishIncrementalScavenge();
  if (Boundary > Clock)
    fatalError("threatening boundary lies in the future");
  if (InCollection)
    fatalError("re-entrant collection");
  // A lost remembered set means crossing pointers may be unrecorded; the
  // only sound boundary until the set is rebuilt is 0 (trace everything).
  bool RebuildRemSet = RemSetPessimized;
  if (RebuildRemSet && Boundary != 0) {
    recordDegradation({DegradationKind::BoundaryPessimized, Clock, 0, 0,
                       ResidentBytes,
                       "remembered set lost; boundary " +
                           std::to_string(Boundary) + " forced to 0"});
    Boundary = 0;
  }
  InCollection = true;

  LastStats = CollectionStats();
  WatchdogConsecutive = 0;
  WatchdogSerial = false;
  EffectiveBudgetBytes = 0;
  uint64_t MemBefore = ResidentBytes;
  Demographics.beginScavenge(Boundary);

  ScavengeWork Work = Config.Collector == CollectorKind::MarkSweep
                          ? runMarkSweep(Boundary)
                          : runCopying(Boundary);

  return completeCollection(Boundary, Work, MemBefore, RebuildRemSet);
}

core::ScavengeRecord Heap::completeCollection(AllocClock Boundary,
                                              const ScavengeWork &Work,
                                              uint64_t MemBeforeBytes,
                                              bool RebuildRemSet) {
  // The trace is done; everything from here is post-trace bookkeeping.
  Phase.store(GcPhase::Restoring, std::memory_order_relaxed);
  core::ScavengeRecord Record;
  Record.Index = History.size() + 1;
  Record.Time = Clock;
  Record.Boundary = Boundary;
  Record.MemBeforeBytes = MemBeforeBytes;

  ResidentBytes -= Work.ReclaimedBytes;
  Record.TracedBytes = Work.TracedBytes;
  Record.ReclaimedBytes = Work.ReclaimedBytes;
  Record.SurvivedBytes = ResidentBytes;
  History.append(Record);

  Demographics.endScavenge(Clock);
  BytesSinceCollect = 0;

  // The full trace just visited every survivor; restore write-barrier
  // completeness by re-deriving the set from the live heap.
  if (RebuildRemSet) {
    profiling::ProfilePhase Phase(&Profiler,
                                  profiling::phase::RemSetRebuild);
    rebuildRememberedSet();
    Phase.addCost(RemSet.size());
  }

  // The pending world release: resumeWorld runs after this tree closes,
  // so the epilogue accounts it here (cost = contexts to wake).
  if (!Mutators.empty()) {
    profiling::ProfilePhase Release(&Profiler,
                                    profiling::phase::WorldRelease);
    Release.addCost(Mutators.size());
  }

  // Close this scavenge's phase tree (the policy-decision phase recorded
  // by collect() is part of it) before telemetry walks it.
  Profiler.finishScavenge();
  if (telemetry::enabled())
    emitScavengeTelemetry(History.last());
  InCollection = false;

  FlightRec.record(FlightEventKind::ScavengeComplete, Record.Time,
                   Record.Index, Record.TracedBytes, Record.ReclaimedBytes);

  if (Config.LogStream) {
    const core::ScavengeRecord &Last = History.last();
    std::fprintf(Config.LogStream,
                 "[gc %llu] t=%llu tb=%llu (window %llu) %s: traced %llu "
                 "reclaimed %llu survived %llu objects %zu remset %zu\n",
                 static_cast<unsigned long long>(Last.Index),
                 static_cast<unsigned long long>(Last.Time),
                 static_cast<unsigned long long>(Last.Boundary),
                 static_cast<unsigned long long>(Last.Time - Last.Boundary),
                 Config.Collector == CollectorKind::MarkSweep ? "mark-sweep"
                                                              : "copying",
                 static_cast<unsigned long long>(Last.TracedBytes),
                 static_cast<unsigned long long>(Last.ReclaimedBytes),
                 static_cast<unsigned long long>(Last.SurvivedBytes),
                 Objects.size(), RemSet.size());
    // With registered contexts, the collection's rendezvous gets its own
    // log line (context-free heaps skip it — their stop is a no-op).
    if (!Mutators.empty()) {
      const SafepointRendezvousRecord &R = LastRendezvous;
      std::fprintf(Config.LogStream,
                   "[gc %llu] safepoint: ttsp %.3f ms, %llu arrival%s, "
                   "published %llu objects (%llu bytes), flushed %llu, "
                   "straggler ctx %llu (%s)\n",
                   static_cast<unsigned long long>(Last.Index),
                   R.TtspMillis,
                   static_cast<unsigned long long>(R.Contexts),
                   R.Contexts == 1 ? "" : "s",
                   static_cast<unsigned long long>(R.PendingAllocObjects),
                   static_cast<unsigned long long>(R.PendingAllocBytes),
                   static_cast<unsigned long long>(R.FlushedBarrierEntries),
                   static_cast<unsigned long long>(R.StragglerContext),
                   stragglerKindName(R.Straggler));
    }
  }
  return History.last();
}

void Heap::emitScavengeTelemetry(const core::ScavengeRecord &Record) {
  namespace tm = dtb::telemetry;
  const std::string &Rule =
      PendingRule.empty() ? std::string("explicit") : PendingRule;

  // Pause span: the machine model converts traced bytes to milliseconds,
  // same as the simulator, so runtime and sim pauses are comparable.
  double PauseMs =
      core::MachineModel().pauseMillisForTracedBytes(Record.TracedBytes);
  tm::Event Pause;
  Pause.Phase = tm::EventPhase::Span;
  Pause.Track = TelemetryTrack;
  Pause.Name = "scavenge";
  Pause.ScavengeIndex = Record.Index;
  Pause.TsClock = Record.Time;
  Pause.DurMillis = PauseMs;
  Pause.Args = {
      tm::arg("tb", Record.Boundary),
      tm::arg("window", Record.Time - Record.Boundary),
      tm::arg("traced_bytes", Record.TracedBytes),
      tm::arg("reclaimed_bytes", Record.ReclaimedBytes),
      tm::arg("survived_bytes", Record.SurvivedBytes),
      tm::arg("mem_before_bytes", Record.MemBeforeBytes),
      tm::arg("objects_traced", LastStats.ObjectsTraced),
      tm::arg("objects_reclaimed", LastStats.ObjectsReclaimed),
      tm::arg("objects_moved", LastStats.ObjectsMoved),
      tm::arg("remset_roots", LastStats.RememberedSetRoots),
      tm::arg("remset_pruned", LastStats.RememberedSetPruned),
      tm::arg("remset_size", static_cast<uint64_t>(RemSet.size())),
      tm::arg("rule", Rule),
  };
  tm::recorder().emit(std::move(Pause));

  // TB decision instant: where the boundary landed, which policy rule put
  // it there, and — when collect() captured one — the full decision
  // explanation: the budgets the policy worked against, the history epoch
  // it picked, and what it predicted the scavenge would trace and reclaim.
  tm::Event Tb;
  Tb.Phase = tm::EventPhase::Instant;
  Tb.Track = TelemetryTrack;
  Tb.Name = "tb";
  Tb.ScavengeIndex = Record.Index;
  Tb.TsClock = Record.Time;
  Tb.Args = {tm::arg("tb", Record.Boundary), tm::arg("rule", Rule)};
  if (PendingDecisionValid) {
    const core::BoundaryDecision &D = LastDecision;
    if (D.TraceMaxBytes != 0)
      Tb.Args.push_back(tm::arg("trace_max_bytes", D.TraceMaxBytes));
    if (D.MemMaxBytes != 0)
      Tb.Args.push_back(tm::arg("mem_max_bytes", D.MemMaxBytes));
    if (D.CandidateEpoch >= 0)
      Tb.Args.push_back(
          tm::arg("candidate_epoch", static_cast<uint64_t>(D.CandidateEpoch)));
    if (D.LiveEstimateBytes != 0)
      Tb.Args.push_back(tm::arg("live_estimate_bytes", D.LiveEstimateBytes));
    if (D.HasPrediction) {
      Tb.Args.push_back(
          tm::arg("predicted_traced_bytes", D.PredictedTracedBytes));
      Tb.Args.push_back(
          tm::arg("predicted_garbage_bytes", D.PredictedGarbageBytes));
    }
  }
  tm::recorder().emit(std::move(Tb));

  // Phase spans: the scavenge's cost-attribution tree as nested spans.
  // Timestamps are synthesized by laying children out inside their parent
  // in recorded order (cost units double as span length), so a trace
  // viewer renders the nesting even though the real clock never advances
  // during a stop-the-world pause.
  const auto &Nodes = Profiler.lastTree();
  if (!Nodes.empty()) {
    std::vector<uint64_t> StartOffset(Nodes.size(), 0);
    std::vector<uint64_t> Consumed(Nodes.size(), 0);
    uint64_t RootConsumed = 0;
    for (size_t I = 0; I != Nodes.size(); ++I) {
      const profiling::PhaseTreeNode &Node = Nodes[I];
      if (Node.Parent < 0) {
        StartOffset[I] = RootConsumed;
        RootConsumed += Node.TotalCost;
      } else {
        size_t P = static_cast<size_t>(Node.Parent);
        StartOffset[I] = StartOffset[P] + Consumed[P];
        Consumed[P] += Node.TotalCost;
      }
      tm::Event PhaseSpan;
      PhaseSpan.Phase = tm::EventPhase::Span;
      PhaseSpan.Track = TelemetryTrack;
      PhaseSpan.Name = std::string("phase.") + Node.Name;
      PhaseSpan.ScavengeIndex = Record.Index;
      PhaseSpan.TsClock = Record.Time + StartOffset[I];
      PhaseSpan.DurMillis = static_cast<double>(Node.TotalCost) / 1000.0;
      PhaseSpan.Args = {tm::arg("self_cost", Node.SelfCost),
                        tm::arg("total_cost", Node.TotalCost)};
      tm::recorder().emit(std::move(PhaseSpan));
    }
  }

  // Residency counter series (Fig. 2's y-axis, post-scavenge points).
  tm::Event Resident;
  Resident.Phase = tm::EventPhase::Counter;
  Resident.Track = TelemetryTrack;
  Resident.Name = "resident_bytes";
  Resident.ScavengeIndex = Record.Index;
  Resident.TsClock = Record.Time;
  Resident.Args = {tm::arg("resident_bytes", residentBytes())};
  tm::recorder().emit(std::move(Resident));

  tm::MetricsRegistry &Registry = tm::MetricsRegistry::global();
  Registry.counter("runtime.scavenge.count").add(1);
  Registry.counter("runtime.scavenge.traced_bytes").add(Record.TracedBytes);
  Registry.counter("runtime.scavenge.reclaimed_bytes")
      .add(Record.ReclaimedBytes);
  Registry.histogram("runtime.scavenge.pause_ms").record(PauseMs);
}

bool Heap::markThreatened(Object *O, AllocClock Boundary,
                          AllocClock BlackClock, std::vector<Object *> &Gray,
                          ScavengeWork &Work) {
  // Objects born after BlackClock arrived mid-incremental-cycle and are
  // black by construction (the sweep keeps them); for a monolithic
  // scavenge BlackClock == Clock, so the test never fires.
  if (!O || O->birth() <= Boundary || O->birth() > BlackClock ||
      O->isMarked())
    return false;
  assert(O->isAlive() && "tracing through a reclaimed object");
  O->setMarked();
  Work.TracedBytes += O->grossBytes();
  LastStats.ObjectsTraced += 1;
  Demographics.recordSurvivor(O->birth(), O->grossBytes());
  Gray.push_back(O);
  return true;
}

void Heap::seedMarkSweepRoots(AllocClock Boundary, AllocClock BlackClock,
                              std::vector<Object *> &Gray,
                              ScavengeWork &Work) {
  // Each marking phase's cost is the bytes it discovered (the delta of
  // Work.TracedBytes): root objects bill to root_scan, boundary-crossing
  // targets to remset_scan, everything transitively reached to trace.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::RootScan);
    uint64_t Before = Work.TracedBytes;
    for (Object **Root : GlobalRoots)
      markThreatened(*Root, Boundary, BlackClock, Gray, Work);
    for (Object *Handle : HandleSlots)
      markThreatened(Handle, Boundary, BlackClock, Gray, Work);
    // Pinned objects survive unconditionally: threatened ones are marked
    // (and traced) here; immune ones are untouchable anyway, and their
    // forward-in-time pointers are covered by the remembered set like any
    // other immune object's.
    for (Object *PinnedObject : Pinned)
      markThreatened(PinnedObject, Boundary, BlackClock, Gray, Work);
    // Per-context root slots, in registration order (the world is
    // stopped, so the slots are stable).
    for (MutatorContext *Ctx : Mutators)
      for (Object *Root : Ctx->Roots)
        markThreatened(Root, Boundary, BlackClock, Gray, Work);
    Phase.addCost(Work.TracedBytes - Before);
  }

  // Remembered-set roots: entries whose source is immune and whose current
  // value crosses the boundary. Entries are re-validated against the live
  // slot contents; ones that are no longer forward-in-time pointers
  // (overwritten or cleared) are pruned.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::RemSetScan);
    uint64_t Before = Work.TracedBytes;
    RemSet.forEachAndPrune([&](Object *Source, uint32_t SlotIndex) {
      assert(Source->isAlive() && "remembered set names a dead source");
      Object *Target = Source->slot(SlotIndex);
      if (!Target || Target->birth() <= Source->birth()) {
        LastStats.RememberedSetPruned += 1;
        return false; // Stale: no longer a forward-in-time pointer.
      }
      if (Source->birth() <= Boundary && Target->birth() > Boundary) {
        LastStats.RememberedSetRoots += 1;
        markThreatened(Target, Boundary, BlackClock, Gray, Work);
      }
      return true;
    });
    Phase.addCost(Work.TracedBytes - Before);
  }
}

void Heap::scanMarkSweepObject(Object *O, AllocClock Boundary,
                               AllocClock BlackClock, TraceLane &Lane) {
  // Trace only within the threatened set: pointers to immune objects need
  // no action (immune objects are assumed live), and pointers out of
  // immune objects were handled through the remembered set. The mark bit
  // doubles as the claim: the fetch_or admits exactly one lane per child.
  for (uint32_t I = 0, E = O->numSlots(); I != E; ++I) {
    Object *Child = O->slot(I);
    if (!Child || Child->birth() <= Boundary || Child->birth() > BlackClock)
      continue;
    if (!Child->tryAcquireFlag(Object::FlagMarked))
      continue;
    assert(Child->isAlive() && "tracing through a reclaimed object");
    Lane.TracedBytes += Child->grossBytes();
    Lane.ObjectsTraced += 1;
    Lane.Survivors.push_back({Child->birth(), Child->grossBytes()});
    Lane.addChild(Child);
  }
}

void Heap::drainTraceLanes(TraceLaneSet &Lanes, std::vector<Object *> &Gray,
                           ScavengeWork &Work) {
  for (unsigned I = 0; I != Lanes.numLanes(); ++I) {
    TraceLane &Lane = Lanes.lane(I);
    Work.TracedBytes += Lane.TracedBytes;
    LastStats.ObjectsTraced += Lane.ObjectsTraced;
    LastStats.ObjectsMoved += Lane.ObjectsMoved;
    LastStats.LaneOverflowEvents += Lane.OverflowEvents;
    // recordSurvivor is a commutative sum per epoch, so replaying the
    // lanes' buffers in lane order yields the same table as any serial
    // marking order.
    for (const auto &[Birth, Bytes] : Lane.Survivors)
      Demographics.recordSurvivor(Birth, Bytes);
    Gray.insert(Gray.end(), Lane.Children.begin(), Lane.Children.end());
    Lane.TracedBytes = 0;
    Lane.ObjectsTraced = 0;
    Lane.ObjectsMoved = 0;
    Lane.OverflowEvents = 0;
    Lane.Survivors.clear();
    Lane.Children.clear();
  }
  std::vector<Object *> &Overflow = Lanes.overflow();
  Gray.insert(Gray.end(), Overflow.begin(), Overflow.end());
  Overflow.clear();
}

uint64_t Heap::traceMarkSweepQuantum(AllocClock Boundary,
                                     AllocClock BlackClock,
                                     std::vector<Object *> &Gray,
                                     uint64_t BudgetBytes,
                                     ScavengeWork &Work) {
  // The watchdog's retry-halving backoff overrides the configured budget
  // for the remainder of this collection.
  if (EffectiveBudgetBytes != 0)
    BudgetBytes = EffectiveBudgetBytes;

  bool PoolIsPrivate = false;
  ThreadPool *Pool = tracePoolFor(&PoolIsPrivate);
  TraceLaneSet Lanes(Pool, PoolIsPrivate);
  if (WatchdogSerial)
    Lanes.degradeAllRounds();
  if (Profiler.active())
    for (unsigned I = 0; I != Lanes.numLanes(); ++I)
      Lanes.lane(I).Profiler.setEnabled(true);

  // Wall time is quarantined observability (like every `wall.` metric):
  // it never feeds the deterministic violation decision below.
  std::chrono::steady_clock::time_point WallStart;
  const bool MeasureWall = telemetry::enabled();
  if (MeasureWall)
    WallStart = std::chrono::steady_clock::now();

  uint64_t Scanned = runTraceQuantum(
      Lanes, Gray, BudgetBytes,
      [&](Object *O, TraceLane &Lane) {
        scanMarkSweepObject(O, Boundary, BlackClock, Lane);
      },
      [&](std::vector<Object *> &G) { drainTraceLanes(Lanes, G, Work); });

  // Per-lane attribution is scheduling-dependent; it folds into the
  // quarantined lane profile, never the deterministic phase costs.
  for (unsigned I = 0; I != Lanes.numLanes(); ++I)
    LaneProfile.mergeFrom(Lanes.lane(I).Profiler);

  LastStats.TraceQuanta += 1;
  if (Scanned > LastStats.MaxQuantumTracedBytes)
    LastStats.MaxQuantumTracedBytes = Scanned;

  if (MeasureWall) {
    double WallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - WallStart)
                        .count();
    telemetry::MetricsRegistry &Registry =
        telemetry::MetricsRegistry::global();
    Registry.histogram("wall.runtime.quantum_pause_ms").record(WallMs);
    if (Config.QuantumDeadlineMillis > 0 &&
        WallMs > Config.QuantumDeadlineMillis)
      Registry.counter("wall.runtime.watchdog.deadline_overruns").add(1);
  }

  // --- Pause-deadline watchdog ------------------------------------------
  // Deterministic: the quantum's pause is its machine-model cost (same
  // conversion the simulator and telemetry use), so a violation — and the
  // backoff it drives — replays identically on every platform. An
  // injected fault counts as a violation even with no deadline set.
  bool Violated = faultRequestedAt(FaultSite::WatchdogDeadline);
  const char *Cause = "injected watchdog-deadline fault";
  double CostMs = core::MachineModel().pauseMillisForTracedBytes(Scanned);
  if (Config.QuantumDeadlineMillis > 0 && CostMs > Config.QuantumDeadlineMillis) {
    Violated = true;
    Cause = "quantum over deadline";
  }
  if (!Violated) {
    WatchdogConsecutive = 0;
    return Scanned;
  }

  LastStats.WatchdogViolations += 1;
  WatchdogConsecutive += 1;
  // Retry-halving backoff: each violation halves the budget the next
  // quantum runs under (an unbounded budget starts from what this quantum
  // actually scanned), with a floor of one byte — a quantum always makes
  // progress.
  uint64_t Halved = (BudgetBytes != 0 ? BudgetBytes : Scanned) / 2;
  EffectiveBudgetBytes = Halved != 0 ? Halved : 1;

  std::string Detail = std::string(Cause) + ": scanned " +
                       std::to_string(Scanned) + " bytes (model cost " +
                       std::to_string(CostMs) + " ms, deadline " +
                       std::to_string(Config.QuantumDeadlineMillis) +
                       " ms); budget halved to " +
                       std::to_string(EffectiveBudgetBytes);
  if (!WatchdogSerial && Config.WatchdogMaxConsecutive != 0 &&
      WatchdogConsecutive >= Config.WatchdogMaxConsecutive) {
    // K consecutive violations: the parallel fan-out itself is suspect
    // (steal storms, cache pressure); degrade to a single shared cursor
    // for the rest of the collection. Results are bit-identical — only
    // scheduling changes — so this is safe to do deterministically.
    WatchdogSerial = true;
    Detail += "; degrading to serial shared-cursor tracing";
  }
  recordDegradation({DegradationKind::WatchdogDeadline, Clock, 0,
                     BudgetBytes, ResidentBytes, std::move(Detail)});
  return Scanned;
}

void Heap::finishMarkSweepCycle(AllocClock Boundary, AllocClock BlackClock,
                                ScavengeWork &Work) {
  // --- Weak-reference processing ----------------------------------------
  // A weak reference whose target is threatened and unmarked is about to
  // dangle: clear it. Weak references to immune objects (including immune
  // garbage) are untouched — clearing waits for the boundary to reach the
  // target — and mid-cycle allocations (born after BlackClock) are black,
  // hence live.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::WeakRefs);
    Phase.addCost(WeakRefs.size());
    for (WeakRef *Weak : WeakRefs) {
      Object *Target = Weak->get();
      if (Target && Target->birth() > Boundary &&
          Target->birth() <= BlackClock && !Target->isMarked())
        Weak->set(nullptr);
    }
  }

  // --- Sweep phase ------------------------------------------------------
  // Compact the threatened suffix of the birth-ordered allocation list in
  // place; the immune prefix is untouched.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::Sweep);
    size_t Begin = firstBornAfter(Boundary);
    size_t Out = Begin;
    for (size_t I = Begin, E = Objects.size(); I != E; ++I) {
      Object *O = Objects[I];
      if (O->birth() > BlackClock) {
        // Allocate-black: born during the incremental cycle.
        Objects[Out++] = O;
        continue;
      }
      if (O->isMarked()) {
        O->clearMarked();
        Objects[Out++] = O;
        continue;
      }
      Work.ReclaimedBytes += O->grossBytes();
      LastStats.ObjectsReclaimed += 1;
      reclaimObject(O);
    }
    Objects.resize(Out);
    Phase.addCost(Work.ReclaimedBytes);
  }
}

Heap::ScavengeWork Heap::runMarkSweep(AllocClock Boundary) {
  ScavengeWork Work;
  std::vector<Object *> Gray;
  seedMarkSweepRoots(Boundary, Clock, Gray, Work);

  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::Trace);
    uint64_t Before = Work.TracedBytes;
    while (!Gray.empty())
      traceMarkSweepQuantum(Boundary, Clock, Gray, Config.ScavengeBudgetBytes,
                            Work);
    Phase.addCost(Work.TracedBytes - Before);
  }

  finishMarkSweepCycle(Boundary, Clock, Work);
  return Work;
}

void Heap::beginIncrementalScavenge(AllocClock Boundary) {
  WorldPause Pause(*this);
  if (Config.Collector != CollectorKind::MarkSweep)
    fatalError("incremental scavenging requires the mark-sweep collector");
  if (Inc.Active)
    fatalError("incremental scavenge already active");
  if (InCollection)
    fatalError("re-entrant collection");
  if (Boundary > Clock)
    fatalError("threatening boundary lies in the future");
  bool RebuildRemSet = RemSetPessimized;
  if (RebuildRemSet && Boundary != 0) {
    recordDegradation({DegradationKind::BoundaryPessimized, Clock, 0, 0,
                       ResidentBytes,
                       "remembered set lost; boundary " +
                           std::to_string(Boundary) + " forced to 0"});
    Boundary = 0;
  }
  InCollection = true;
  Inc = IncrementalState();
  Inc.Active = true;
  Inc.Boundary = Boundary;
  Inc.BlackClock = Clock;
  Inc.RebuildRemSet = RebuildRemSet;
  // Rollback state for abortIncrementalScavenge: the pre-cycle stats and
  // survivor-table estimates, captured before beginScavenge destructively
  // zeroes the threatened epochs.
  Inc.PrevStats = LastStats;
  Inc.DemoSnapshot = Demographics.liveEstimatesSnapshot();
  LastStats = CollectionStats();
  WatchdogConsecutive = 0;
  WatchdogSerial = false;
  EffectiveBudgetBytes = 0;
  Demographics.beginScavenge(Boundary);
  syncIncMirror();
  FlightRec.record(FlightEventKind::CycleBegin, Clock, Boundary);
  seedMarkSweepRoots(Boundary, Inc.BlackClock, Inc.Gray, Inc.Work);
  InCollection = false;
}

bool Heap::incrementalScavengeStep() {
  // Every quantum is its own stop-the-world window: contexts publish and
  // flush at its rendezvous, then run free again between quanta.
  WorldPause Pause(*this);
  if (!Inc.Active)
    fatalError("no incremental scavenge is active");
  if (InCollection)
    fatalError("re-entrant collection");
  if (faultRequestedAt(FaultSite::IncrementalStep)) {
    // The embedder's quantum "failed" before it ran (cancelled time
    // slice, preempted helper). The always-safe recovery is to cancel
    // the whole cycle; a later collection redoes the work.
    abortIncrementalCycle("injected incremental-step fault");
    return true;
  }
  InCollection = true;

  // Re-grey what the barrier caught since the last step, then rescan the
  // root locations: globals, handles, and pins are raw slots with no
  // write barrier, so every step treats them as freshly discovered.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::RootScan);
    uint64_t Before = Inc.Work.TracedBytes;
    for (Object *O : Inc.PendingGray)
      markThreatened(O, Inc.Boundary, Inc.BlackClock, Inc.Gray, Inc.Work);
    Inc.PendingGray.clear();
    for (Object **Root : GlobalRoots)
      markThreatened(*Root, Inc.Boundary, Inc.BlackClock, Inc.Gray, Inc.Work);
    for (Object *Handle : HandleSlots)
      markThreatened(Handle, Inc.Boundary, Inc.BlackClock, Inc.Gray, Inc.Work);
    for (Object *PinnedObject : Pinned)
      markThreatened(PinnedObject, Inc.Boundary, Inc.BlackClock, Inc.Gray,
                     Inc.Work);
    for (MutatorContext *Ctx : Mutators)
      for (Object *Root : Ctx->Roots)
        markThreatened(Root, Inc.Boundary, Inc.BlackClock, Inc.Gray,
                       Inc.Work);
    Phase.addCost(Inc.Work.TracedBytes - Before);
  }

  if (Inc.Gray.empty()) {
    // Marking converged: no gray work survived the rescan, so every
    // reachable threatened object born before BlackClock is marked and
    // the cycle can close.
    AllocClock Boundary = Inc.Boundary;
    AllocClock BlackClock = Inc.BlackClock;
    bool RebuildRemSet = Inc.RebuildRemSet;
    ScavengeWork Work = Inc.Work;
    Inc = IncrementalState();
    syncIncMirror();
    finishMarkSweepCycle(Boundary, BlackClock, Work);
    completeCollection(Boundary, Work, ResidentBytes, RebuildRemSet);
    return true;
  }

  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::Trace);
    uint64_t Before = Inc.Work.TracedBytes;
    traceMarkSweepQuantum(Inc.Boundary, Inc.BlackClock, Inc.Gray,
                          Config.ScavengeBudgetBytes, Inc.Work);
    Phase.addCost(Inc.Work.TracedBytes - Before);
  }
  InCollection = false;
  return false;
}

core::ScavengeRecord Heap::finishIncrementalScavenge() {
  WorldPause Pause(*this);
  if (!Inc.Active)
    fatalError("no incremental scavenge is active");
  size_t RecordsBefore = History.size();
  while (!incrementalScavengeStep()) {
  }
  // An injected IncrementalStep fault can abort the drain instead of
  // completing it; no record was appended then.
  if (History.size() == RecordsBefore)
    return core::ScavengeRecord();
  return History.last();
}

void Heap::abortIncrementalScavenge() {
  WorldPause Pause(*this);
  if (!Inc.Active)
    fatalError("no incremental scavenge is active");
  if (InCollection)
    fatalError("re-entrant collection");
  abortIncrementalCycle("explicit abort");
}

void Heap::abortIncrementalCycle(const char *Why) {
  InCollection = true;
  const AllocClock Boundary = Inc.Boundary;
  const AllocClock BlackClock = Inc.BlackClock;
  const size_t GrayObjects = Inc.Gray.size() + Inc.PendingGray.size();
  const uint64_t TracedBytes = Inc.Work.TracedBytes;
  const uint64_t Quanta = LastStats.TraceQuanta;

  // Clear every mark this cycle set. Only threatened objects born at or
  // before BlackClock were ever marked (mark-sweep never sets the claim
  // flag separately), and the allocation list is birth-ordered, so the
  // walk covers exactly the threatened non-black window.
  for (size_t I = firstBornAfter(Boundary), E = Objects.size(); I != E; ++I) {
    Object *O = Objects[I];
    if (O->birth() > BlackClock)
      break;
    O->clearTraceFlags();
  }

  // Roll back everything the cycle touched: the survivor-table estimates
  // (beginScavenge zeroed the threatened epochs, recordSurvivor
  // accumulated into them) and the per-collection stats. EpochStarts and
  // the history only change in endScavenge, which never ran.
  Demographics.restoreLiveEstimates(std::move(Inc.DemoSnapshot));
  LastStats = Inc.PrevStats;
  Inc = IncrementalState();
  syncIncMirror();
  WatchdogConsecutive = 0;
  WatchdogSerial = false;
  EffectiveBudgetBytes = 0;

  // Close the partial phase tree (no frames stay open between incremental
  // calls); the aggregates keep the already-attributed cost, which is
  // diagnostic only.
  Profiler.finishScavenge();
  InCollection = false;

  // The rollback above is itself a fault site: a failure mid-rollback
  // could leave barrier bookkeeping half-unwound, so an injected fault
  // here answers with the same always-safe response as a remembered-set
  // loss — the next collection is forced full.
  bool RollbackFaulted = faultRequestedAt(FaultSite::CycleAbort);

  recordDegradation(
      {DegradationKind::CycleAborted, Clock, 0, 0, ResidentBytes,
       std::string(Why) + "; tb=" + std::to_string(Boundary) +
           " discarded " + std::to_string(GrayObjects) + " gray after " +
           std::to_string(Quanta) + " quanta (" +
           std::to_string(TracedBytes) + " bytes traced)"});

  if (RollbackFaulted && !RemSetPessimized) {
    RemSetPessimized = true;
    recordDegradation({DegradationKind::BoundaryPessimized, Clock, 0, 0,
                       ResidentBytes,
                       "injected cycle-abort fault; rollback distrusted, "
                       "next collection forced full"});
  }
}

IncrementalCycleInfo Heap::incrementalCycleInfo() const {
  IncrementalCycleInfo Info;
  if (!Inc.Active)
    return Info;
  Info.Active = true;
  Info.Boundary = Inc.Boundary;
  Info.BlackClock = Inc.BlackClock;
  Info.GrayObjects = Inc.Gray.size();
  for (const Object *O : Inc.Gray)
    Info.GrayBytes += O->grossBytes();
  Info.PendingGrayObjects = Inc.PendingGray.size();
  Info.TracedBytes = Inc.Work.TracedBytes;
  Info.Quanta = LastStats.TraceQuanta;
  Info.BudgetBytes = EffectiveBudgetBytes != 0 ? EffectiveBudgetBytes
                                               : Config.ScavengeBudgetBytes;
  Info.RebuildRemSet = Inc.RebuildRemSet;
  Info.SerialDegraded = WatchdogSerial;
  Info.WatchdogViolations = LastStats.WatchdogViolations;
  return Info;
}
