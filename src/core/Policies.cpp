//===- core/Policies.cpp --------------------------------------------------==//

#include "core/Policies.h"

#include "core/OptimalPolicies.h"

#include "profiling/Profiler.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace dtb;
using namespace dtb::core;

BoundaryPolicy::~BoundaryPolicy() = default;

namespace {

/// Records which decision rule produced the boundary about to be returned
/// (no-op when the caller did not ask).
void fired(const BoundaryRequest &Request, const char *Rule) {
  if (Request.RuleFired)
    *Request.RuleFired = Rule;
}

/// Records the prediction behind a boundary about to be returned: which
/// history epoch was picked and the traced/garbage bytes the policy
/// expects the scavenge to see there. Queries the demographics for the
/// garbage figure only when a decision sink is present — the queries are
/// value-pure, so asking extra questions cannot change the outcome.
void explainPrediction(const BoundaryRequest &Request, int64_t Epoch,
                       AllocClock Boundary, uint64_t PredictedTraced) {
  if (!Request.Decision)
    return;
  Request.Decision->CandidateEpoch = Epoch;
  Request.Decision->PredictedTracedBytes = PredictedTraced;
  if (Request.Demo) {
    uint64_t Resident = Request.Demo->residentBytesBornAfter(Boundary);
    Request.Decision->PredictedGarbageBytes =
        Resident >= PredictedTraced ? Resident - PredictedTraced : 0;
  }
  Request.Decision->HasPrediction = true;
}

/// Degraded-mode boundary: the FIXED1 choice t_{n-1} when the history is
/// usable, else 0 (a full collection — the always-admissible fallback).
/// Notes the reason through the request's degradation sink instead of
/// aborting; a collector must keep collecting even when its inputs are
/// broken.
AllocClock degradeToFixed1(const BoundaryRequest &Request, const char *Why) {
  fired(Request, "degraded");
  if (Request.DegradationNote)
    *Request.DegradationNote = Why;
  if (Request.History) {
    // Clamp to the newest recorded scavenge: a request whose Index is
    // inconsistent with the history is one of the broken inputs this
    // helper exists to absorb.
    int64_t K = static_cast<int64_t>(Request.Index) - 1;
    int64_t Newest = static_cast<int64_t>(Request.History->size());
    return Request.History->timeOf(std::min(K, Newest));
  }
  return 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// Shared FEEDMED boundary search
//===----------------------------------------------------------------------===//

AllocClock dtb::core::feedbackMediationSearch(const BoundaryRequest &Request,
                                              AllocClock PrevBoundary,
                                              uint64_t TraceMax) {
  if (!Request.History)
    return degradeToFixed1(Request,
                           "feedback mediation without history; full "
                           "collection fallback");
  if (!Request.Demo)
    return degradeToFixed1(Request,
                           "feedback mediation without demographics; FIXED1 "
                           "fallback");
  const ScavengeHistory &History = *Request.History;
  if (Request.Decision)
    Request.Decision->TraceMaxBytes = TraceMax;

  // The search is the policy's dominant cost; attribute it to the
  // boundary_search phase, one work unit per demographic query (a
  // deterministic count, unlike wall time).
  profiling::ProfilePhase Search(Request.Profiler,
                                 profiling::phase::BoundarySearch);

  // Candidate boundaries are the previous scavenge times t_k (with t_0 = 0)
  // that are at or after the previous boundary. Search oldest-first: the
  // least t_k whose predicted trace fits the budget maximizes reclamation
  // subject to the pause constraint. Predicted trace is non-increasing in
  // t_k, so the first fit is the best fit.
  int64_t N = static_cast<int64_t>(History.size()) + 1; // this scavenge is n
  uint64_t Predicted = 0;
  for (int64_t K = 0; K < N; ++K) {
    AllocClock Tk = History.timeOf(K);
    if (Tk < PrevBoundary)
      continue;
    Predicted = Request.Demo->liveBytesBornAfter(Tk);
    Search.addCost(1);
    if (Predicted <= TraceMax) {
      fired(Request, "fit-search");
      explainPrediction(Request, K, Tk, Predicted);
      return Tk;
    }
  }
  // Even the youngest candidate (t_{n-1}) exceeds the budget: threaten the
  // newest interval only, the closest we can get to the constraint while
  // still tracing every object once. Predicted still holds that
  // candidate's figure — it was the final query of the loop.
  fired(Request, "over-budget-min-window");
  explainPrediction(Request, N - 1, History.timeOf(N - 1), Predicted);
  return History.timeOf(N - 1);
}

//===----------------------------------------------------------------------===//
// FULL
//===----------------------------------------------------------------------===//

AllocClock FullPolicy::chooseBoundary(const BoundaryRequest &Request) {
  fired(Request, "full");
  return 0;
}

//===----------------------------------------------------------------------===//
// FIXEDk
//===----------------------------------------------------------------------===//

FixedAgePolicy::FixedAgePolicy(unsigned Generations)
    : Generations(Generations) {
  if (Generations == 0)
    fatalError("FIXEDk requires k >= 1");
}

std::string FixedAgePolicy::name() const {
  return "fixed" + std::to_string(Generations);
}

AllocClock FixedAgePolicy::chooseBoundary(const BoundaryRequest &Request) {
  if (!Request.History)
    return degradeToFixed1(Request,
                           "FIXEDk without history; full collection "
                           "fallback");
  // TB_n = t_{n-k}; before k scavenges have completed this is time 0, i.e.
  // a full collection.
  int64_t K = static_cast<int64_t>(Request.Index) -
              static_cast<int64_t>(Generations);
  fired(Request, K <= 0 ? "warmup-full" : "fixed-age");
  return Request.History->timeOf(K);
}

//===----------------------------------------------------------------------===//
// FEEDMED
//===----------------------------------------------------------------------===//

FeedbackMediationPolicy::FeedbackMediationPolicy(uint64_t TraceMaxBytes)
    : TraceMaxBytes(TraceMaxBytes) {}

AllocClock
FeedbackMediationPolicy::chooseBoundary(const BoundaryRequest &Request) {
  if (Request.Decision)
    Request.Decision->TraceMaxBytes = TraceMaxBytes;
  // First scavenge: full collection (TB_0 conceptually starts at 0).
  if (Request.Index == 1) {
    fired(Request, "first-full");
    return 0;
  }
  if (!Request.History || Request.History->empty())
    return degradeToFixed1(Request,
                           "FEEDMED without history; full collection "
                           "fallback");
  const ScavengeRecord &Prev = Request.History->last();
  if (Prev.TracedBytes > TraceMaxBytes)
    return feedbackMediationSearch(Request, Prev.Boundary, TraceMaxBytes);
  // Within budget: leave the boundary alone (Feedback Mediation never
  // moves it back in time — the weakness DTBFM fixes).
  fired(Request, "hold");
  return Prev.Boundary;
}

//===----------------------------------------------------------------------===//
// DTBFM
//===----------------------------------------------------------------------===//

DtbPausePolicy::DtbPausePolicy(uint64_t TraceMaxBytes)
    : TraceMaxBytes(TraceMaxBytes) {}

AllocClock DtbPausePolicy::chooseBoundary(const BoundaryRequest &Request) {
  if (Request.Decision)
    Request.Decision->TraceMaxBytes = TraceMaxBytes;
  if (Request.Index == 1) {
    fired(Request, "first-full");
    return 0;
  }
  if (!Request.History || Request.History->empty())
    return degradeToFixed1(Request,
                           "DTBFM without history; full collection "
                           "fallback");
  const ScavengeRecord &Prev = Request.History->last();

  if (Prev.TracedBytes > TraceMaxBytes)
    return feedbackMediationSearch(Request, Prev.Boundary, TraceMaxBytes);

  // Under budget: widen the threatened window. The previous window was
  // t_{n-1} - TB_{n-1}; scale it by Trace_max / Trace_{n-1} (> 1 here) so
  // the next trace is predicted to land on the budget, reclaiming older
  // garbage with the spare pause time.
  //
  //   TB_n = t_n - (t_{n-1} - TB_{n-1}) * Trace_max / Trace_{n-1}
  //
  // Two guards beyond the formula: a zero previous trace means the scaling
  // ratio is unbounded — fall back to a full collection, the limiting
  // case; and the result is clamped to [0, t_{n-1}] so that every object
  // is traced at least once (and a degenerate zero-width previous window
  // cannot pin the boundary at t_n forever).
  if (Prev.TracedBytes == 0) {
    fired(Request, "full-on-zero-trace");
    return 0;
  }
  fired(Request, "widen");
  if (Request.Decision) {
    // The widen formula scales the window so the next trace is predicted
    // to land exactly on the budget.
    Request.Decision->PredictedTracedBytes = TraceMaxBytes;
    Request.Decision->HasPrediction = true;
  }
  double PrevWindow =
      static_cast<double>(Prev.Time) - static_cast<double>(Prev.Boundary);
  double Window = PrevWindow * static_cast<double>(TraceMaxBytes) /
                  static_cast<double>(Prev.TracedBytes);
  double Boundary = static_cast<double>(Request.Now) - Window;
  if (Boundary <= 0.0)
    return 0;
  return std::min(static_cast<AllocClock>(Boundary), Prev.Time);
}

//===----------------------------------------------------------------------===//
// DTBMEM
//===----------------------------------------------------------------------===//

DtbMemoryPolicy::DtbMemoryPolicy(uint64_t MemMaxBytes,
                                 LiveEstimateKind Estimator)
    : MemMaxBytes(MemMaxBytes), Estimator(Estimator) {}

std::string DtbMemoryPolicy::name() const {
  switch (Estimator) {
  case LiveEstimateKind::AverageOfSurvivedAndTraced:
    return "dtbmem";
  case LiveEstimateKind::Survived:
    return "dtbmem-s";
  case LiveEstimateKind::Traced:
    return "dtbmem-t";
  case LiveEstimateKind::Oracle:
    return "dtbmem-oracle";
  }
  unreachable("covered switch");
}

AllocClock DtbMemoryPolicy::chooseBoundary(const BoundaryRequest &Request) {
  if (Request.Decision)
    Request.Decision->MemMaxBytes = MemMaxBytes;
  if (Request.Index == 1) {
    fired(Request, "first-full");
    return 0;
  }
  if (!Request.History || Request.History->empty())
    return degradeToFixed1(Request,
                           "DTBMEM without history; full collection "
                           "fallback");
  const ScavengeRecord &Prev = Request.History->last();

  // Estimate the live bytes L_{n-1}. The true value lies between
  // Trace_{n-1} (live bytes young enough to be traced) and S_{n-1}
  // (survivors, which include tenured garbage); the paper takes the
  // midpoint.
  double LiveEstimate = 0.0;
  switch (Estimator) {
  case LiveEstimateKind::AverageOfSurvivedAndTraced:
    LiveEstimate = 0.5 * (static_cast<double>(Prev.SurvivedBytes) +
                          static_cast<double>(Prev.TracedBytes));
    break;
  case LiveEstimateKind::Survived:
    LiveEstimate = static_cast<double>(Prev.SurvivedBytes);
    break;
  case LiveEstimateKind::Traced:
    LiveEstimate = static_cast<double>(Prev.TracedBytes);
    break;
  case LiveEstimateKind::Oracle:
    if (!Request.Demo) {
      // The oracle is gone; degrade to the paper's estimator rather than
      // abort (it only needs the history we already have).
      if (Request.DegradationNote)
        *Request.DegradationNote =
            "DTBMEM oracle estimator without demographics; paper "
            "estimator fallback";
      LiveEstimate = 0.5 * (static_cast<double>(Prev.SurvivedBytes) +
                            static_cast<double>(Prev.TracedBytes));
    } else {
      LiveEstimate =
          static_cast<double>(Request.Demo->liveBytesBornAfter(0));
    }
    break;
  }

  if (Request.Decision)
    Request.Decision->LiveEstimateBytes =
        static_cast<uint64_t>(LiveEstimate);

  // Demographic sanity: more live bytes than resident bytes is impossible
  // (live ⊆ resident). Inconsistent inputs would corrupt the headroom
  // arithmetic below, so degrade to FIXED1 instead.
  if (LiveEstimate > static_cast<double>(Request.MemBytes) &&
      Request.MemBytes != 0)
    return degradeToFixed1(Request,
                           "DTBMEM live estimate exceeds resident bytes; "
                           "FIXED1 fallback");

  // Allow tenured garbage worth Mem_max - L_est. Assume garbage retention
  // grows linearly with the boundary position over [0, t_n] with slope
  // Mem_n / t_n (the garbage-to-memory ratio of the whole heap), giving
  //
  //   TB_n = t_n * (Mem_max - L_est) / Mem_n,
  //
  // clamped to [0, t_{n-1}] — never below zero (an over-constrained budget
  // degrades to a full collection) and never past the previous scavenge
  // time (every object gets traced at least once).
  if (Request.MemBytes == 0) {
    fired(Request, "over-constrained-full");
    return 0;
  }
  double Headroom = static_cast<double>(MemMaxBytes) - LiveEstimate;
  if (Headroom <= 0.0) {
    fired(Request, "over-constrained-full");
    return 0;
  }
  double Boundary = static_cast<double>(Request.Now) * Headroom /
                    static_cast<double>(Request.MemBytes);
  AllocClock Result = std::min(static_cast<AllocClock>(Boundary), Prev.Time);
  fired(Request, Result < static_cast<AllocClock>(Boundary) ? "fit-clamped"
                                                            : "fit");
  if (Request.Decision) {
    // The boundary was chosen to leave tenured garbage worth the headroom.
    Request.Decision->PredictedGarbageBytes =
        static_cast<uint64_t>(Headroom);
    Request.Decision->HasPrediction = true;
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Minor/major cycle
//===----------------------------------------------------------------------===//

MinorMajorPolicy::MinorMajorPolicy(unsigned Period) : Period(Period) {
  if (Period < 2)
    fatalError("minor/major cycle requires a period >= 2");
}

std::string MinorMajorPolicy::name() const {
  return "minormajor" + std::to_string(Period);
}

AllocClock MinorMajorPolicy::chooseBoundary(const BoundaryRequest &Request) {
  if (!Request.History)
    return degradeToFixed1(Request,
                           "minor/major without history; full collection "
                           "fallback");
  // Majors at scavenges 1, 1+Period, 1+2*Period, ... so the first
  // collection is full (every paper policy starts that way).
  if ((Request.Index - 1) % Period == 0) {
    fired(Request, "major");
    return 0;
  }
  fired(Request, "minor");
  return Request.History->timeOf(static_cast<int64_t>(Request.Index) - 1);
}

//===----------------------------------------------------------------------===//
// Factory
//===----------------------------------------------------------------------===//

std::unique_ptr<BoundaryPolicy>
dtb::core::createPolicy(const std::string &Name, const PolicyConfig &Config) {
  if (Name == "full")
    return std::make_unique<FullPolicy>();
  if (Name == "feedmed")
    return std::make_unique<FeedbackMediationPolicy>(Config.TraceMaxBytes);
  if (Name == "dtbfm")
    return std::make_unique<DtbPausePolicy>(Config.TraceMaxBytes);
  if (Name == "dtbmem")
    return std::make_unique<DtbMemoryPolicy>(Config.MemMaxBytes);
  if (Name == "opt-pause")
    return std::make_unique<OptimalPausePolicy>(Config.TraceMaxBytes);
  if (Name == "opt-mem")
    return std::make_unique<OptimalMemoryPolicy>(Config.MemMaxBytes);
  if (Name.rfind("minormajor", 0) == 0) {
    const std::string Suffix = Name.substr(10);
    if (!Suffix.empty() &&
        Suffix.find_first_not_of("0123456789") == std::string::npos) {
      unsigned Period = static_cast<unsigned>(
          std::strtoul(Suffix.c_str(), nullptr, 10));
      if (Period >= 2)
        return std::make_unique<MinorMajorPolicy>(Period);
    }
  }
  if (Name.rfind("fixed", 0) == 0) {
    const std::string Suffix = Name.substr(5);
    if (!Suffix.empty() &&
        Suffix.find_first_not_of("0123456789") == std::string::npos) {
      unsigned K = static_cast<unsigned>(std::strtoul(Suffix.c_str(),
                                                      nullptr, 10));
      if (K >= 1)
        return std::make_unique<FixedAgePolicy>(K);
    }
  }
  return nullptr;
}

const std::vector<std::string> &dtb::core::paperPolicyNames() {
  static const std::vector<std::string> Names = {
      "full", "fixed1", "fixed4", "dtbmem", "feedmed", "dtbfm"};
  return Names;
}
