//===- runtime/Degradation.h - Graceful-degradation events -----*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured records of the runtime's graceful-degradation ladder. The
/// paper's collectors honor user constraints (Trace_max, Mem_max); when a
/// constraint *cannot* be met the heap does not abort — it climbs a ladder
/// of progressively more drastic recoveries and records every rung here:
///
///   allocation over HeapLimitBytes
///     1. normal scavenge at the policy's boundary   (EmergencyScavenge)
///     2. emergency FULL collection, TB = 0 — the paper's always-
///        admissible fallback                        (EmergencyFullCollection)
///     3. report OOM to the caller                   (AllocationFailure)
///
///   remembered-set overflow → drop the set, pessimize the next boundary
///   to 0 and rebuild during that full trace         (RemSetOverflow,
///                                                    BoundaryPessimized)
///
///   unusable/inconsistent policy → FIXED1 fallback  (PolicyFallback)
///
/// Events are queryable via Heap::degradationLog() (a bounded ring — see
/// HeapConfig::DegradationLogLimit) and summarized by HeapDump.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_RUNTIME_DEGRADATION_H
#define DTB_RUNTIME_DEGRADATION_H

#include "core/AllocClock.h"

#include <cstdint>
#include <string>

namespace dtb {
namespace runtime {

/// What kind of degradation rung was taken.
enum class DegradationKind : uint8_t {
  /// Allocation pressure triggered an out-of-schedule scavenge at the
  /// policy's boundary (ladder rung 1).
  EmergencyScavenge,
  /// Allocation pressure escalated to a full collection at TB = 0
  /// (ladder rung 2).
  EmergencyFullCollection,
  /// The ladder was exhausted: the allocation was refused and the caller
  /// saw nullptr (ladder rung 3).
  AllocationFailure,
  /// The remembered set overflowed its bound (or its insert faulted) and
  /// was dropped; barrier completeness is suspended until rebuilt.
  RemSetOverflow,
  /// A collection's boundary was forced to 0 (full) to restore soundness
  /// after a remembered-set loss or an injected barrier fault.
  BoundaryPessimized,
  /// A boundary policy could not run (missing/inconsistent demographics,
  /// injected fault, out-of-range answer); a FIXED1/FULL fallback boundary
  /// was used instead.
  PolicyFallback,
};

inline constexpr unsigned NumDegradationKinds = 6;

/// Stable lowercase identifier for a kind.
inline const char *degradationKindName(DegradationKind Kind) {
  switch (Kind) {
  case DegradationKind::EmergencyScavenge:
    return "emergency-scavenge";
  case DegradationKind::EmergencyFullCollection:
    return "emergency-full-collection";
  case DegradationKind::AllocationFailure:
    return "allocation-failure";
  case DegradationKind::RemSetOverflow:
    return "remset-overflow";
  case DegradationKind::BoundaryPessimized:
    return "boundary-pessimized";
  case DegradationKind::PolicyFallback:
    return "policy-fallback";
  }
  return "unknown";
}

/// One rung taken on the degradation ladder.
struct DegradationEvent {
  DegradationKind Kind;
  /// Allocation clock when the rung was taken.
  core::AllocClock Time = 0;
  /// Bytes the triggering allocation asked for (allocation rungs only).
  uint64_t RequestedBytes = 0;
  /// The configured budget in force (HeapLimitBytes or RemSetMaxEntries).
  uint64_t LimitValue = 0;
  /// Resident bytes at the moment of the event.
  uint64_t ResidentBytes = 0;
  /// Human-readable specifics ("injected policy-evaluation fault", ...).
  std::string Detail;
};

/// One human-readable line for an event (used by HeapDump).
inline std::string describeDegradation(const DegradationEvent &Event) {
  std::string Line = degradationKindName(Event.Kind);
  Line += " @t=" + std::to_string(Event.Time);
  if (Event.RequestedBytes != 0)
    Line += " requested=" + std::to_string(Event.RequestedBytes);
  if (Event.LimitValue != 0)
    Line += " limit=" + std::to_string(Event.LimitValue);
  Line += " resident=" + std::to_string(Event.ResidentBytes);
  if (!Event.Detail.empty())
    Line += " (" + Event.Detail + ")";
  return Line;
}

} // namespace runtime
} // namespace dtb

#endif // DTB_RUNTIME_DEGRADATION_H
