//===- report/BenchCompare.cpp --------------------------------------------==//

#include "report/BenchCompare.h"

#include "telemetry/Export.h"

#include <cmath>
#include <cstdio>

using namespace dtb;
using namespace dtb::report;

const char *dtb::report::benchVerdictName(BenchVerdict Verdict) {
  switch (Verdict) {
  case BenchVerdict::Pass:
    return "pass";
  case BenchVerdict::Improved:
    return "IMPROVED";
  case BenchVerdict::Regressed:
    return "REGRESSED";
  case BenchVerdict::Missing:
    return "MISSING";
  case BenchVerdict::New:
    return "new";
  }
  return "?";
}

namespace {

double deltaPercent(double Baseline, double Candidate) {
  return Baseline != 0.0 ? 100.0 * (Candidate - Baseline) / Baseline : 0.0;
}

/// True when moving from \p Baseline to \p Candidate is in the metric's
/// bad direction.
bool isWorse(const BenchMetric &M, double Baseline, double Candidate) {
  return M.LowerIsBetter ? Candidate > Baseline : Candidate < Baseline;
}

void count(BenchCompareResult &Result, const BenchMetricComparison &Row) {
  switch (Row.Verdict) {
  case BenchVerdict::Pass:
    ++Result.NumPass;
    break;
  case BenchVerdict::Improved:
    ++Result.NumImproved;
    break;
  case BenchVerdict::Regressed:
    ++Result.NumRegressed;
    break;
  case BenchVerdict::Missing:
    ++Result.NumMissing;
    break;
  case BenchVerdict::New:
    ++Result.NumNew;
    break;
  }
}

} // namespace

bool dtb::report::isTailMetric(const std::string &Name) {
  return Name.find("_p99") != std::string::npos ||
         Name.find("max_quantum") != std::string::npos;
}

BenchCompareResult
dtb::report::compareBenchRecords(const BenchRecord &Baseline,
                                 const BenchRecord &Candidate,
                                 const BenchCompareOptions &Options) {
  BenchCompareResult Result;
  if (Baseline.SchemaVersion != Candidate.SchemaVersion) {
    Result.SchemaMismatch = true;
    Result.SchemaNote = "schema version mismatch: baseline v" +
                        std::to_string(Baseline.SchemaVersion) +
                        " vs candidate v" +
                        std::to_string(Candidate.SchemaVersion) +
                        " — regenerate the baseline";
    return Result;
  }

  for (const BenchMetric &Base : Baseline.Metrics) {
    BenchMetricComparison Row;
    Row.Name = Base.Name;
    Row.Exact = Base.Exact;
    Row.Baseline = Base.Exact ? Base.Value : Base.Median;

    const BenchMetric *Cand = Candidate.findMetric(Base.Name);
    if (!Cand) {
      Row.Verdict = BenchVerdict::Missing;
      Row.Note = "metric absent from candidate";
      Result.Failed |= Options.FailOnMissing;
    } else if (Cand->Exact != Base.Exact) {
      Row.Candidate = Cand->Exact ? Cand->Value : Cand->Median;
      Row.Verdict = BenchVerdict::Regressed;
      Row.Note = "metric kind changed (exact vs wall)";
      Result.Failed = true;
    } else if (Base.Exact) {
      Row.Candidate = Cand->Value;
      Row.DeltaPercent = deltaPercent(Base.Value, Cand->Value);
      if (Cand->Value == Base.Value) {
        Row.Verdict = BenchVerdict::Pass;
      } else if (isWorse(Base, Base.Value, Cand->Value)) {
        Row.Verdict = BenchVerdict::Regressed;
        Result.Failed = true;
      } else {
        Row.Verdict = BenchVerdict::Improved;
        Row.Note = "deterministic change: refresh the baseline";
      }
    } else {
      Row.Candidate = Cand->Median;
      Row.DeltaPercent = deltaPercent(Base.Median, Cand->Median);
      double Rel = isTailMetric(Base.Name) ? Options.TailRelThreshold
                                           : Options.RelThreshold;
      Row.Threshold =
          std::max(Rel * std::fabs(Base.Median),
                   Options.MadMultiplier * std::max(Base.Mad, Cand->Mad));
      double Delta = Cand->Median - Base.Median;
      if (std::fabs(Delta) <= Row.Threshold) {
        Row.Verdict = BenchVerdict::Pass;
      } else if (isWorse(Base, Base.Median, Cand->Median)) {
        Row.Verdict = BenchVerdict::Regressed;
        Result.Failed = true;
      } else {
        Row.Verdict = BenchVerdict::Improved;
      }
    }
    count(Result, Row);
    Result.Rows.push_back(std::move(Row));
  }

  for (const BenchMetric &Cand : Candidate.Metrics) {
    if (Baseline.findMetric(Cand.Name))
      continue;
    BenchMetricComparison Row;
    Row.Name = Cand.Name;
    Row.Exact = Cand.Exact;
    Row.Candidate = Cand.Exact ? Cand.Value : Cand.Median;
    Row.Verdict = BenchVerdict::New;
    Row.Note = "not in baseline";
    count(Result, Row);
    Result.Rows.push_back(std::move(Row));
  }
  return Result;
}

Table dtb::report::buildComparisonTable(const BenchCompareResult &Result) {
  Table T({"Metric", "Kind", "Baseline", "Candidate", "Delta %", "Threshold",
           "Verdict", "Note"});
  T.setAlignment(0, AlignKind::Left);
  T.setAlignment(7, AlignKind::Left);
  auto Num = [](double V) { return telemetry::arg("", V).Value; };
  for (const BenchMetricComparison &Row : Result.Rows) {
    T.addRow({Row.Name, Row.Exact ? "exact" : "wall",
              Row.Verdict == BenchVerdict::New ? "-" : Num(Row.Baseline),
              Row.Verdict == BenchVerdict::Missing ? "-" : Num(Row.Candidate),
              Table::cell(Row.DeltaPercent, 2),
              Row.Exact ? "-" : Num(Row.Threshold),
              benchVerdictName(Row.Verdict), Row.Note});
  }
  return T;
}
