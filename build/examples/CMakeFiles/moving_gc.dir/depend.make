# Empty dependencies file for moving_gc.
# This may be replaced when dependencies are built.
