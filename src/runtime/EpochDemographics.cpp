//===- runtime/EpochDemographics.cpp --------------------------------------==//

#include "runtime/EpochDemographics.h"

#include <algorithm>
#include <cassert>

using namespace dtb;
using namespace dtb::runtime;
using core::AllocClock;

uint64_t
EpochDemographics::liveBytesBornAfter(AllocClock Boundary) const {
  // Closed epochs starting at-or-after the boundary contribute their last
  // measured survivor bytes; the open epoch (everything allocated since
  // the previous scavenge, untraced) is always included — this is the
  // "include the containing epoch wholly" conservative rule.
  uint64_t Total = BytesSinceLastScavenge;
  auto It = std::lower_bound(EpochStarts.begin(), EpochStarts.end(),
                             Boundary);
  for (size_t I = static_cast<size_t>(It - EpochStarts.begin());
       I != LiveEstimates.size(); ++I)
    Total += LiveEstimates[I];
  return Total;
}

size_t EpochDemographics::epochOf(AllocClock Birth) const {
  // Epoch i covers [EpochStarts[i], EpochStarts[i+1]); births equal to an
  // epoch start belong to the *previous* epoch because births are clocks
  // *after* the allocation (an object born exactly at t_k was allocated
  // before the scavenge at t_k ran).
  auto It = std::lower_bound(EpochStarts.begin(), EpochStarts.end(), Birth);
  size_t Index = static_cast<size_t>(It - EpochStarts.begin());
  return Index == 0 ? 0 : Index - 1;
}

void EpochDemographics::beginScavenge(AllocClock Boundary) {
  assert(EpochStarts.size() == LiveEstimates.size());
  for (size_t I = 0; I != EpochStarts.size(); ++I)
    if (EpochStarts[I] >= Boundary)
      LiveEstimates[I] = 0;
  // The epoch strictly containing the boundary (its start lies before the
  // boundary) is partially threatened: survivors of its threatened part
  // will be re-added, so zero it as well. This slightly undercounts its
  // immune live bytes, which the threatened-trace estimate should exclude
  // anyway. A boundary sitting exactly on an epoch start leaves the
  // preceding (fully immune) epoch untouched.
  auto It = std::upper_bound(EpochStarts.begin(), EpochStarts.end(),
                             Boundary);
  if (It != EpochStarts.begin()) {
    size_t Containing = static_cast<size_t>(It - EpochStarts.begin()) - 1;
    if (EpochStarts[Containing] < Boundary)
      LiveEstimates[Containing] = 0;
  }
}

void EpochDemographics::recordSurvivor(AllocClock Birth, uint64_t Bytes) {
  LiveEstimates[epochOf(Birth)] += Bytes;
}

void EpochDemographics::endScavenge(AllocClock Now) {
  assert(EpochStarts.empty() || Now >= EpochStarts.back());
  EpochStarts.push_back(Now);
  LiveEstimates.push_back(0);
  BytesSinceLastScavenge = 0;
}
