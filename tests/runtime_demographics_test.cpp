//===- tests/runtime_demographics_test.cpp --------------------------------==//
//
// Tests for the survivor-table demographics (the runtime's stand-in for
// the simulator's oracle): epoch bookkeeping, conservative estimates, and
// integration with the heap.
//
//===----------------------------------------------------------------------===//

#include "runtime/EpochDemographics.h"

#include "core/Policies.h"
#include "runtime/Heap.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::runtime;

TEST(EpochDemographicsTest, FreshTableCountsNewAllocationAsLive) {
  EpochDemographics D;
  D.setBytesSinceLastScavenge(500);
  EXPECT_EQ(D.liveBytesBornAfter(0), 500u);
  EXPECT_EQ(D.liveBytesBornAfter(100), 500u); // Open epoch counts wholly.
}

TEST(EpochDemographicsTest, SurvivorsAccumulateIntoEpochs) {
  EpochDemographics D;
  // Scavenge 1 at t=1000 over a full boundary.
  D.beginScavenge(0);
  D.recordSurvivor(/*Birth=*/300, 50);
  D.recordSurvivor(/*Birth=*/900, 70);
  D.endScavenge(1000);

  // Epoch [0,1000) has 120 live bytes; nothing allocated since.
  EXPECT_EQ(D.liveBytesBornAfter(0), 120u);
  // Boundary at 1000: only the (empty) open epoch.
  EXPECT_EQ(D.liveBytesBornAfter(1000), 0u);

  D.setBytesSinceLastScavenge(40);
  EXPECT_EQ(D.liveBytesBornAfter(1000), 40u);
  EXPECT_EQ(D.liveBytesBornAfter(0), 160u);
}

TEST(EpochDemographicsTest, ThreatenedEpochsAreRefreshed) {
  EpochDemographics D;
  D.beginScavenge(0);
  D.recordSurvivor(500, 100);
  D.endScavenge(1000);
  D.setBytesSinceLastScavenge(200);

  // Scavenge 2 at t=2000 with boundary 1000: epoch [1000,2000) is
  // re-measured; epoch [0,1000) keeps its stale estimate.
  D.beginScavenge(1000);
  D.recordSurvivor(1500, 30);
  D.endScavenge(2000);

  EXPECT_EQ(D.liveBytesBornAfter(1000), 30u);
  EXPECT_EQ(D.liveBytesBornAfter(0), 130u);
}

TEST(EpochDemographicsTest, FullScavengeRefreshesEverything) {
  EpochDemographics D;
  D.beginScavenge(0);
  D.recordSurvivor(500, 100);
  D.endScavenge(1000);

  D.beginScavenge(0); // Full: all epochs re-measured.
  D.recordSurvivor(500, 60); // Some of the old bytes died.
  D.endScavenge(2000);
  EXPECT_EQ(D.liveBytesBornAfter(0), 60u);
}

TEST(EpochDemographicsTest, EpochOfMapsBirthsToIntervals) {
  EpochDemographics D;
  D.beginScavenge(0);
  D.endScavenge(1000);
  D.beginScavenge(0);
  D.endScavenge(2000);
  // Epochs: [0,1000), [1000,2000), [2000,...).
  EXPECT_EQ(D.epochOf(500), 0u);
  // A birth exactly at an epoch start belongs to the previous epoch (it
  // was allocated before that scavenge ran).
  EXPECT_EQ(D.epochOf(1000), 0u);
  EXPECT_EQ(D.epochOf(1500), 1u);
  EXPECT_EQ(D.epochOf(2500), 2u);
}

TEST(EpochDemographicsTest, HeapIntegrationTracksSurvivors) {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Heap H(Config);
  HandleScope Scope(H);
  Object *&Keep = Scope.slot(H.allocate(0, 100));
  H.allocate(0, 100); // Garbage.

  H.collectAtBoundary(0);
  // After the scavenge the survivor table knows exactly the survivor.
  EXPECT_EQ(H.demographics().liveBytesBornAfter(0), Keep->grossBytes());

  // New allocation counts as live immediately.
  Object *Fresh = H.allocate(0, 50);
  EXPECT_EQ(H.demographics().liveBytesBornAfter(0),
            Keep->grossBytes() + Fresh->grossBytes());
  // Born after the first scavenge: only the fresh bytes.
  EXPECT_EQ(H.demographics().liveBytesBornAfter(H.history().last().Time),
            Fresh->grossBytes());
}

TEST(EpochDemographicsTest, FeedMedOnHeapUsesEstimates) {
  // End-to-end: FEEDMED on the real heap promotes after an over-budget
  // pause using the survivor-table estimates.
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Heap H(Config);
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = 300;
  H.setPolicy(core::createPolicy("feedmed", PolicyConfig));

  HandleScope Scope(H);
  // 10 live objects of ~56 bytes: a full trace (~560B) busts the 300-byte
  // budget.
  for (int I = 0; I != 10; ++I)
    Scope.slot(H.allocate(0, 32));
  H.collect(); // Full, over budget.
  core::AllocClock T1 = H.history().last().Time;
  for (int I = 0; I != 4; ++I)
    Scope.slot(H.allocate(0, 32));
  H.collect();
  // Over budget last time: the boundary must have advanced to t_1 (the
  // only candidate whose estimated trace fits).
  EXPECT_EQ(H.history().last().Boundary, T1);
}
