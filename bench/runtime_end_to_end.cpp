//===- bench/runtime_end_to_end.cpp - Policies on the real runtime -------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The paper evaluates its policies by oracle simulation; this bench runs
// the same comparison on the *real* managed runtime, where liveness comes
// from actual reachability, the remembered set from the actual write
// barrier, and FEEDMED-style demographics from the survivor table — no
// oracle anywhere. A deterministic mutator reproduces a scaled GHOST-like
// demography (short-lived churn + a medium band + an immortal trickle);
// each policy collects under a 100 KB trigger with proportionally scaled
// budgets. The orderings of Tables 2/4 must survive the loss of the
// oracle; this bench shows they do.
//
//===----------------------------------------------------------------------===//

#include "core/Policies.h"
#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"
#include "support/CommandLine.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "support/Units.h"

#include <cstdio>
#include <queue>
#include <vector>

using namespace dtb;
using runtime::HandleScope;
using runtime::Heap;
using runtime::Object;

namespace {

/// A GHOST-like mutator: 98.4% of bytes die with ~4 KB exponential
/// lifetimes, 0.4% live 105-340 KB (the tenured-garbage band at 1/10
/// scale), 1.2% are immortal.
class ScaledMutator {
public:
  ScaledMutator(Heap &H, HandleScope &Scope, uint64_t Seed)
      : H(H), Scope(Scope), R(Seed) {}

  void run(uint64_t TotalBytes) {
    while (H.now() < TotalBytes) {
      releaseDead();
      allocateOne();
    }
    releaseDead();
  }

private:
  struct Pending {
    core::AllocClock DeathClock;
    size_t SlotIndex;
    bool operator<(const Pending &Other) const {
      return DeathClock > Other.DeathClock; // Min-heap.
    }
  };

  Object *&slotAt(size_t Index) { return *Slots[Index]; }

  size_t acquireSlot(Object *O) {
    if (!FreeSlots.empty()) {
      size_t Index = FreeSlots.back();
      FreeSlots.pop_back();
      slotAt(Index) = O;
      return Index;
    }
    Slots.push_back(&Scope.slot(O));
    return Slots.size() - 1;
  }

  void allocateOne() {
    auto RawBytes = static_cast<uint32_t>(16 + R.nextBelow(64));
    Object *O = H.allocate(/*NumSlots=*/1, RawBytes);

    double Class = R.nextDouble();
    if (Class < 0.012) {
      // Immortal: keep a permanent slot.
      acquireSlot(O);
      return;
    }
    double Lifetime = Class < 0.016
                          ? 105'000.0 + R.nextDouble() * 235'000.0 // Medium.
                          : R.nextExponential(4'000.0);            // Short.
    size_t Index = acquireSlot(O);
    Deaths.push({H.now() + static_cast<core::AllocClock>(Lifetime), Index});
  }

  void releaseDead() {
    while (!Deaths.empty() && Deaths.top().DeathClock <= H.now()) {
      size_t Index = Deaths.top().SlotIndex;
      Deaths.pop();
      slotAt(Index) = nullptr;
      FreeSlots.push_back(Index);
    }
  }

  Heap &H;
  HandleScope &Scope;
  Rng R;
  std::vector<Object **> Slots;
  std::vector<size_t> FreeSlots;
  std::priority_queue<Pending> Deaths;
};

} // namespace

int main(int Argc, char **Argv) {
  uint64_t TotalBytes = 5'000'000; // ~GHOST(1) at 1/10 scale.
  uint64_t TriggerBytes = 100'000;
  uint64_t TraceMax = 12'000;  // Scaled pause budget with feedback headroom.
  uint64_t MemMax = 300'000;   // Paper's 3000 KB at 1/10.
  OptionParser Parser("Runs the six collectors on the real managed "
                      "runtime (no oracle) under a GHOST-like mutator");
  Parser.addUInt("bytes", "Total allocation", &TotalBytes);
  Parser.addUInt("trigger", "Bytes between collections", &TriggerBytes);
  Parser.addUInt("trace-max", "Pause budget in traced bytes", &TraceMax);
  Parser.addUInt("mem-max", "Memory budget in bytes", &MemMax);
  if (!Parser.parse(Argc, Argv))
    return 1;

  std::printf("End-to-end on the real runtime: %s allocation, %s trigger, "
              "budgets %s / %s\n\n",
              formatBytes(TotalBytes).c_str(),
              formatBytes(TriggerBytes).c_str(),
              formatBytes(TraceMax).c_str(), formatBytes(MemMax).c_str());

  Table Tbl({"Policy", "GCs", "Mem mean (KB)", "Mem max (KB)",
             "Traced (KB)", "Median pause (KB traced)", "Verifier"});
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = TraceMax;
  PolicyConfig.MemMaxBytes = MemMax;

  for (const std::string &Name : core::paperPolicyNames()) {
    runtime::HeapConfig Config;
    Config.TriggerBytes = TriggerBytes;
    Heap H(Config);
    H.setPolicy(core::createPolicy(Name, PolicyConfig));

    HandleScope Scope(H);
    ScaledMutator Mutator(H, Scope, /*Seed=*/0x61057);
    Mutator.run(TotalBytes);

    RunningStats MemBefore;
    SampleSet PauseBytes;
    uint64_t Traced = 0;
    for (const core::ScavengeRecord &R : H.history().records()) {
      MemBefore.add(static_cast<double>(R.MemBeforeBytes));
      PauseBytes.add(static_cast<double>(R.TracedBytes));
      Traced += R.TracedBytes;
    }
    runtime::VerifyResult V = runtime::verifyHeap(H);
    Tbl.addRow({Name, Table::cell(H.history().size()),
                Table::cell(bytesToKB(MemBefore.mean())),
                Table::cell(bytesToKB(MemBefore.max())),
                Table::cell(bytesToKB(Traced)),
                Table::cell(bytesToKB(PauseBytes.median())),
                V.Ok ? "OK" : "FAILED"});
    if (!V.Ok) {
      Tbl.print(stdout);
      std::fprintf(stderr, "heap verification failed under %s: %s\n",
                   Name.c_str(), V.Problems.front().c_str());
      return 1;
    }
  }
  Tbl.print(stdout);

  std::printf("\nReading: the oracle-free runtime reproduces the paper's "
              "orderings —\nFULL lowest memory / most tracing, FIXED1 the "
              "reverse, DTBMEM holding\nthe scaled 300 KB budget, and "
              "DTBFM's median pause pulled up toward the\nscaled budget "
              "(reclaiming more than FEEDMED per scavenge) — with\n"
              "demographics coming from the survivor table instead of "
              "trace deaths.\n");
  return 0;
}
