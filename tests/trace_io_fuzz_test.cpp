//===- tests/trace_io_fuzz_test.cpp ---------------------------------------==//
//
// Robustness tests for trace deserialization: random corruption of valid
// inputs and entirely random byte strings must be either parsed into a
// well-formed trace or rejected cleanly — never crash, hang, or produce
// an invalid Trace.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include "TestSeeds.h"

#include "support/FaultInjector.h"
#include "support/Random.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace dtb;
using namespace dtb::trace;

namespace {

std::string validBinary() {
  workload::WorkloadSpec Spec = workload::makeSteadyStateSpec(50'000, 3);
  return serializeBinary(workload::generateTrace(Spec));
}

/// Every successful parse must satisfy the structural verifier, and the
/// parser must never retain more records than the input could encode
/// (each record costs at least two bytes) — the bounded-memory contract.
void expectParseIsSafe(std::string_view Data) {
  std::string Error;
  std::optional<Trace> Parsed = deserializeBinary(Data, &Error);
  if (Parsed.has_value()) {
    std::string VerifyError;
    EXPECT_TRUE(Parsed->verify(&VerifyError)) << VerifyError;
    EXPECT_LE(Parsed->numObjects(), Data.size() / 2);
  } else {
    EXPECT_FALSE(Error.empty());
  }
}

/// Recovery must never fail, never fabricate an ill-formed trace, never
/// salvage more records than the input could encode, and must account
/// for every skipped byte it reports.
void expectRecoveryIsSafe(std::string_view Data) {
  RecoveredTrace Recovered = recoverBinary(Data);
  std::string VerifyError;
  EXPECT_TRUE(Recovered.T.verify(&VerifyError)) << VerifyError;
  EXPECT_EQ(Recovered.RecordsRecovered, Recovered.T.numObjects());
  EXPECT_LE(Recovered.RecordsRecovered, Data.size() / 2);
  EXPECT_LE(Recovered.BytesSkipped, Data.size());
}

class TraceIOFuzzTest : public testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(TraceIOFuzzTest, SingleByteCorruptionIsHandled) {
  uint64_t Seed = test::effectiveSeed(GetParam());
  DTB_SCOPED_SEED_TRACE(Seed);
  std::string Valid = validBinary();
  Rng R(Seed);
  for (int Round = 0; Round != 300; ++Round) {
    std::string Mutated = Valid;
    size_t Position = R.nextBelow(Mutated.size());
    Mutated[Position] = static_cast<char>(R.nextBelow(256));
    expectParseIsSafe(Mutated);
  }
}

TEST_P(TraceIOFuzzTest, TruncationAtEveryPrefixIsHandled) {
  uint64_t Seed = test::effectiveSeed(GetParam());
  DTB_SCOPED_SEED_TRACE(Seed);
  std::string Valid = validBinary();
  Rng R(Seed * 3 + 1);
  for (int Round = 0; Round != 200; ++Round) {
    size_t Length = R.nextBelow(Valid.size());
    expectParseIsSafe(std::string_view(Valid).substr(0, Length));
  }
}

TEST_P(TraceIOFuzzTest, RandomBytesWithMagicAreHandled) {
  uint64_t Seed = test::effectiveSeed(GetParam());
  DTB_SCOPED_SEED_TRACE(Seed);
  Rng R(Seed * 7 + 5);
  for (int Round = 0; Round != 300; ++Round) {
    std::string Junk = "DTBT";
    size_t Length = R.nextBelow(256);
    for (size_t I = 0; I != Length; ++I)
      Junk.push_back(static_cast<char>(R.nextBelow(256)));
    expectParseIsSafe(Junk);
  }
}

TEST_P(TraceIOFuzzTest, RandomTextIsHandled) {
  uint64_t Seed = test::effectiveSeed(GetParam());
  DTB_SCOPED_SEED_TRACE(Seed);
  Rng R(Seed * 11 + 3);
  const char Alphabet[] = "0123456789 -#\nabcdefghij";
  for (int Round = 0; Round != 300; ++Round) {
    std::string Text = "# dtb-trace v1\n";
    size_t Length = R.nextBelow(200);
    for (size_t I = 0; I != Length; ++I)
      Text.push_back(Alphabet[R.nextBelow(sizeof(Alphabet) - 1)]);
    std::string Error;
    std::optional<Trace> Parsed = deserializeText(Text, &Error);
    if (Parsed.has_value()) {
      std::string VerifyError;
      EXPECT_TRUE(Parsed->verify(&VerifyError)) << VerifyError;
    }
  }
}

TEST_P(TraceIOFuzzTest, MultiByteCorruptionIsHandled) {
  uint64_t Seed = test::effectiveSeed(GetParam());
  DTB_SCOPED_SEED_TRACE(Seed);
  std::string Valid = validBinary();
  Rng R(Seed * 13 + 7);
  for (int Round = 0; Round != 200; ++Round) {
    std::string Mutated = Valid;
    size_t Flips = 1 + R.nextBelow(16);
    for (size_t I = 0; I != Flips; ++I)
      Mutated[R.nextBelow(Mutated.size())] =
          static_cast<char>(R.nextBelow(256));
    expectParseIsSafe(Mutated);
    expectRecoveryIsSafe(Mutated);
  }
}

TEST(TraceIORecoveryTest, CleanInputRecoversLosslessly) {
  workload::WorkloadSpec Spec = workload::makeSteadyStateSpec(50'000, 3);
  Trace Original = workload::generateTrace(Spec);
  RecoveredTrace Recovered = recoverBinary(serializeBinary(Original));
  EXPECT_TRUE(Recovered.HeaderIntact);
  EXPECT_EQ(Recovered.BytesSkipped, 0u);
  EXPECT_EQ(Recovered.RecordsRecovered, Original.numObjects());
  EXPECT_EQ(Recovered.T.records(), Original.records());
}

TEST(TraceIORecoveryTest, TruncatedInputSalvagesThePrefix) {
  std::string Valid = validBinary();
  std::optional<Trace> Full = deserializeBinary(Valid);
  ASSERT_TRUE(Full.has_value());
  // Drop the last quarter of the bytes: strict parsing rejects the whole
  // file, recovery keeps the records that survived intact.
  std::string_view Truncated =
      std::string_view(Valid).substr(0, Valid.size() * 3 / 4);
  EXPECT_FALSE(deserializeBinary(Truncated).has_value());
  RecoveredTrace Recovered = recoverBinary(Truncated);
  EXPECT_GT(Recovered.RecordsRecovered, Full->numObjects() / 2);
  EXPECT_LE(Recovered.RecordsRecovered, Full->numObjects());
  // The salvaged prefix matches the original record-for-record.
  for (size_t I = 0; I != Recovered.T.numObjects(); ++I)
    EXPECT_EQ(Recovered.T.records()[I], Full->records()[I]) << I;
}

TEST(TraceIORecoveryTest, CorruptMiddleResynchronizes) {
  std::string Valid = validBinary();
  std::optional<Trace> Full = deserializeBinary(Valid);
  ASSERT_TRUE(Full.has_value());
  // Stomp a 16-byte window in the middle with continuation bytes (0xff is
  // maximally hostile to varint decoding).
  std::string Mutated = Valid;
  for (size_t I = Mutated.size() / 2; I != Mutated.size() / 2 + 16; ++I)
    Mutated[I] = static_cast<char>(0xff);
  RecoveredTrace Recovered = recoverBinary(Mutated);
  std::string VerifyError;
  EXPECT_TRUE(Recovered.T.verify(&VerifyError)) << VerifyError;
  // Most records survive: only those overlapping the stomped window (and
  // any misparsed during resynchronization) are lost.
  EXPECT_GT(Recovered.RecordsRecovered, Full->numObjects() / 2);
  EXPECT_GT(Recovered.BytesSkipped, 0u);
}

TEST(TraceIORecoveryTest, NoMagicMeansNothingSalvaged) {
  RecoveredTrace Recovered = recoverBinary("just some bytes, no header");
  EXPECT_FALSE(Recovered.HeaderIntact);
  EXPECT_EQ(Recovered.RecordsRecovered, 0u);
  EXPECT_EQ(Recovered.BytesSkipped,
            std::string("just some bytes, no header").size());
}

TEST(TraceIOFaultTest, InjectedReadFaultFailsCleanly) {
  workload::WorkloadSpec Spec = workload::makeSteadyStateSpec(10'000, 3);
  Trace T = workload::generateTrace(Spec);
  std::string Path = testing::TempDir() + "/dtb_traceio_fault.dtbt";
  ASSERT_TRUE(writeTraceFile(T, Path));

  FaultInjector Injector(/*Seed=*/42);
  Injector.armOneShot(FaultSite::TraceIO, /*NthHit=*/1);
  FaultInjectionScope Scope(Injector);

  std::string Error;
  EXPECT_FALSE(readTraceFile(Path, &Error).has_value());
  EXPECT_EQ(Error, "injected trace I/O fault");
  // The one-shot is consumed: the next read succeeds.
  std::optional<Trace> Reread = readTraceFile(Path, &Error);
  ASSERT_TRUE(Reread.has_value()) << Error;
  EXPECT_EQ(Reread->records(), T.records());
  std::remove(Path.c_str());
}

TEST(TraceIOFaultTest, InjectedWriteFaultReportsFailure) {
  workload::WorkloadSpec Spec = workload::makeSteadyStateSpec(10'000, 3);
  Trace T = workload::generateTrace(Spec);
  std::string Path = testing::TempDir() + "/dtb_traceio_wfault.dtbt";

  FaultInjector Injector(/*Seed=*/42);
  Injector.setProbability(FaultSite::TraceIO, 1.0);
  {
    FaultInjectionScope Scope(Injector);
    EXPECT_FALSE(writeTraceFile(T, Path));
  }
  // Outside the scope writes work again.
  EXPECT_TRUE(writeTraceFile(T, Path));
  EXPECT_EQ(Injector.injections(FaultSite::TraceIO), 1u);
  std::remove(Path.c_str());
}

TEST(TraceIOFuzzTest, OversizedVarintRejected) {
  // A count field of eleven 0x80 continuation bytes overflows 64 bits.
  std::string Data = "DTBT";
  Data.push_back(1); // Version.
  for (int I = 0; I != 11; ++I)
    Data.push_back(static_cast<char>(0x80));
  Data.push_back(0x01);
  std::string Error;
  EXPECT_FALSE(deserializeBinary(Data, &Error).has_value());
}

TEST(TraceIOFuzzTest, HugeDeclaredCountWithNoDataRejected) {
  std::string Data = "DTBT";
  Data.push_back(1);
  // Varint for ~1e18 objects, then nothing.
  uint64_t Count = 1'000'000'000'000'000'000ull;
  while (Count >= 0x80) {
    Data.push_back(static_cast<char>((Count & 0x7f) | 0x80));
    Count >>= 7;
  }
  Data.push_back(static_cast<char>(Count));
  std::string Error;
  EXPECT_FALSE(deserializeBinary(Data, &Error).has_value());
  EXPECT_NE(Error.find("truncated"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIOFuzzTest,
                         testing::Values(1ull, 2ull, 3ull));
