//===- support/Json.h - Minimal JSON document model -------------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON value model and recursive-descent parser for the tools
/// that must read structured records back (bench_compare diffing two
/// BENCH_*.json files, tests round-tripping exporter output). Writing
/// stays with the producers — each emitter controls its own formatting —
/// so this is deliberately read-only: parse, navigate, done.
///
/// Standard JSON only (RFC 8259): no comments, no trailing commas.
/// Object member order is preserved so diagnostics can point at the
/// offending position in the input.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_SUPPORT_JSON_H
#define DTB_SUPPORT_JSON_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace dtb {
namespace json {

/// One JSON value. Numbers are stored as double (plus the source text for
/// exact round-trip comparisons); objects as order-preserving key/value
/// sequences with linear lookup — the documents this parses are small.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return Flag; }
  double asDouble() const { return Num; }
  /// The number's exact source spelling (Number values only).
  const std::string &numberText() const { return Str; }
  const std::string &asString() const { return Str; }

  size_t size() const {
    return K == Kind::Array ? Items.size() : Members.size();
  }
  const Value &at(size_t I) const { return Items[I]; }
  const std::vector<Value> &items() const { return Items; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value *find(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[Name, V] : Members)
      if (Name == Key)
        return &V;
    return nullptr;
  }

  /// Convenience: member \p Key as a double, or \p Default when absent or
  /// non-numeric.
  double numberOr(const std::string &Key, double Default) const {
    const Value *V = find(Key);
    return V && V->isNumber() ? V->asDouble() : Default;
  }
  /// Convenience: member \p Key as a string, or \p Default.
  std::string stringOr(const std::string &Key, std::string Default) const {
    const Value *V = find(Key);
    return V && V->isString() ? V->asString() : std::move(Default);
  }

private:
  friend class Parser;
  Kind K = Kind::Null;
  bool Flag = false;
  double Num = 0.0;
  std::string Str; // String payload, or the number's source text.
  std::vector<Value> Items;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Parses \p Text into \p Out. On failure returns false and, when
/// \p Error is non-null, stores a one-line diagnostic with the byte
/// offset of the problem.
bool parse(const std::string &Text, Value *Out, std::string *Error = nullptr);

} // namespace json
} // namespace dtb

#endif // DTB_SUPPORT_JSON_H
