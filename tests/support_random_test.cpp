//===- tests/support_random_test.cpp --------------------------------------==//
//
// Tests for the deterministic PRNG: reproducibility (the workload
// generators rely on byte-identical streams per seed), range contracts,
// and coarse distribution sanity.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dtb;

TEST(RngTest, SameSeedSameStream) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Equal = 0;
  for (int I = 0; I != 64; ++I)
    if (A.next() == B.next())
      ++Equal;
  EXPECT_EQ(Equal, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng R(7);
  for (int I = 0; I != 10000; ++I) {
    double X = R.nextDouble();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng R(9);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int I = 0; I != 1000; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 10000; ++I) {
    uint64_t X = R.nextInRange(3, 5);
    EXPECT_GE(X, 3u);
    EXPECT_LE(X, 5u);
    SawLo |= X == 3;
    SawHi |= X == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, BoolProbabilityEdges) {
  Rng R(13);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(RngTest, BoolProbabilityRoughlyCalibrated) {
  Rng R(15);
  int Hits = 0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    Hits += R.nextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.25, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng R(17);
  double Sum = 0.0;
  const int N = 200000;
  for (int I = 0; I != N; ++I) {
    double X = R.nextExponential(40.0);
    EXPECT_GE(X, 0.0);
    Sum += X;
  }
  EXPECT_NEAR(Sum / N, 40.0, 0.5);
}

TEST(RngTest, StandardNormalMoments) {
  Rng R(19);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 200000;
  for (int I = 0; I != N; ++I) {
    double X = R.nextStandardNormal();
    Sum += X;
    SumSq += X * X;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.01);
  EXPECT_NEAR(SumSq / N, 1.0, 0.02);
}

TEST(RngTest, LogNormalMedian) {
  // The median of lognormal(mu, sigma) is exp(mu).
  Rng R(21);
  const int N = 100001;
  std::vector<double> Samples;
  Samples.reserve(N);
  for (int I = 0; I != N; ++I)
    Samples.push_back(R.nextLogNormal(3.0, 0.5));
  std::nth_element(Samples.begin(), Samples.begin() + N / 2, Samples.end());
  EXPECT_NEAR(Samples[N / 2], std::exp(3.0), std::exp(3.0) * 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng A(33);
  Rng Child = A.fork();
  // The child stream must differ from the parent's continuation.
  int Equal = 0;
  for (int I = 0; I != 64; ++I)
    if (A.next() == Child.next())
      ++Equal;
  EXPECT_EQ(Equal, 0);
}
