//===- tests/bench_compare_test.cpp - BENCH record comparator -------------===//
//
// The regression gate's verdict logic over golden BENCH JSON pairs: a
// clean pass, a real regression, within-noise wall jitter, a schema
// version mismatch, and a missing metric — plus the record's JSON
// round-trip (toJson -> parseBenchRecord reproduces every value exactly,
// which is what makes the checked-in baseline comparable at all).
//
//===----------------------------------------------------------------------===//

#include "report/BenchCompare.h"
#include "report/BenchRecord.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::report;

namespace {

/// The golden baseline: one exact metric each way, one wall metric with
/// visible jitter (median 10.0, MAD 0.2), one higher-is-better ratio.
const char *BaselineJson = R"({
  "schema_version": 1,
  "suite": "quick",
  "env": {"git_sha": "abc123", "build_flags": "telemetry=on", "threads": 4},
  "metrics": {
    "sim/ghost/full/traced_bytes": {"kind": "exact", "unit": "bytes",
      "lower_is_better": true, "value": 363524},
    "sim/ghost/full/num_scavenges": {"kind": "exact", "unit": "count",
      "lower_is_better": true, "value": 10},
    "wall/quick/sim_grid_seconds": {"kind": "wall", "unit": "seconds",
      "lower_is_better": true, "values": [9.8, 10.0, 10.2],
      "min": 9.8, "median": 10.0, "mad": 0.2},
    "wall/timing/grid_speedup": {"kind": "wall", "unit": "ratio",
      "lower_is_better": false, "values": [1.8, 1.9, 2.0],
      "min": 1.8, "median": 1.9, "mad": 0.1}
  },
  "phases": {
    "sim": {
      "trace": {"count": 222, "self_cost": 5740187, "total_cost": 5740187,
        "p50": 16375, "p90": 44436, "p99": 51127, "stddev": 12306.8}
    }
  }
})";

BenchRecord parse(const std::string &Text) {
  BenchRecord Record;
  std::string Error;
  EXPECT_TRUE(parseBenchRecord(Text, &Record, &Error)) << Error;
  return Record;
}

const BenchMetricComparison &row(const BenchCompareResult &Result,
                                 const std::string &Name) {
  static const BenchMetricComparison Empty;
  for (const BenchMetricComparison &Row : Result.Rows)
    if (Row.Name == Name)
      return Row;
  ADD_FAILURE() << "no comparison row for " << Name;
  return Empty;
}

} // namespace

TEST(BenchCompareTest, IdenticalRecordsPassClean) {
  BenchRecord Baseline = parse(BaselineJson);
  BenchRecord Candidate = parse(BaselineJson);
  BenchCompareResult Result =
      compareBenchRecords(Baseline, Candidate, BenchCompareOptions());
  EXPECT_FALSE(Result.Failed);
  EXPECT_EQ(Result.exitCode(), 0);
  EXPECT_EQ(Result.NumPass, 4u);
  EXPECT_EQ(Result.NumRegressed, 0u);
  EXPECT_EQ(Result.NumMissing, 0u);
  EXPECT_EQ(Result.NumNew, 0u);
}

TEST(BenchCompareTest, ExactChangeRegressesOrImproves) {
  BenchRecord Baseline = parse(BaselineJson);

  // Any worse exact value is a regression, however small.
  BenchRecord Candidate = parse(BaselineJson);
  Candidate.Metrics[0].Value += 1;
  BenchCompareResult Result =
      compareBenchRecords(Baseline, Candidate, BenchCompareOptions());
  EXPECT_TRUE(Result.Failed);
  EXPECT_EQ(Result.exitCode(), 1);
  EXPECT_EQ(row(Result, "sim/ghost/full/traced_bytes").Verdict,
            BenchVerdict::Regressed);

  // The better direction passes but is flagged for a baseline refresh.
  Candidate.Metrics[0].Value = Baseline.Metrics[0].Value - 1000;
  Result = compareBenchRecords(Baseline, Candidate, BenchCompareOptions());
  EXPECT_FALSE(Result.Failed);
  EXPECT_EQ(row(Result, "sim/ghost/full/traced_bytes").Verdict,
            BenchVerdict::Improved);
}

TEST(BenchCompareTest, WallRegressionBeyondNoiseFails) {
  BenchRecord Baseline = parse(BaselineJson);
  BenchRecord Candidate = parse(BaselineJson);
  // Median 10.0 -> 13.0: beyond max(0.10 * 10.0, 3 * 0.2) = 1.0.
  BenchMetric *Wall =
      const_cast<BenchMetric *>(Candidate.findMetric("wall/quick/sim_grid_seconds"));
  ASSERT_NE(Wall, nullptr);
  Wall->Values = {12.9, 13.0, 13.1};
  Wall->finalize();

  BenchCompareResult Result =
      compareBenchRecords(Baseline, Candidate, BenchCompareOptions());
  EXPECT_TRUE(Result.Failed);
  const BenchMetricComparison &Row =
      row(Result, "wall/quick/sim_grid_seconds");
  EXPECT_EQ(Row.Verdict, BenchVerdict::Regressed);
  EXPECT_DOUBLE_EQ(Row.Threshold, 1.0);

  // A higher-is-better ratio regresses downward.
  BenchRecord Slower = parse(BaselineJson);
  BenchMetric *Speedup =
      const_cast<BenchMetric *>(Slower.findMetric("wall/timing/grid_speedup"));
  Speedup->Values = {0.9, 1.0, 1.1};
  Speedup->finalize();
  Result = compareBenchRecords(Baseline, Slower, BenchCompareOptions());
  EXPECT_EQ(row(Result, "wall/timing/grid_speedup").Verdict,
            BenchVerdict::Regressed);
}

TEST(BenchCompareTest, WallJitterWithinNoisePasses) {
  BenchRecord Baseline = parse(BaselineJson);
  BenchRecord Candidate = parse(BaselineJson);
  // Median 10.0 -> 10.5: inside the 1.0 noise threshold.
  BenchMetric *Wall =
      const_cast<BenchMetric *>(Candidate.findMetric("wall/quick/sim_grid_seconds"));
  Wall->Values = {10.3, 10.5, 10.7};
  Wall->finalize();

  BenchCompareResult Result =
      compareBenchRecords(Baseline, Candidate, BenchCompareOptions());
  EXPECT_FALSE(Result.Failed);
  EXPECT_EQ(row(Result, "wall/quick/sim_grid_seconds").Verdict,
            BenchVerdict::Pass);

  // ... and a faster-than-noise run is an improvement, not a failure.
  Wall->Values = {8.0, 8.1, 8.2};
  Wall->finalize();
  Result = compareBenchRecords(Baseline, Candidate, BenchCompareOptions());
  EXPECT_FALSE(Result.Failed);
  EXPECT_EQ(row(Result, "wall/quick/sim_grid_seconds").Verdict,
            BenchVerdict::Improved);
}

TEST(BenchCompareTest, SchemaVersionMismatchRefusesToCompare) {
  BenchRecord Baseline = parse(BaselineJson);
  BenchRecord Candidate = parse(BaselineJson);
  Candidate.SchemaVersion = BenchSchemaVersion + 1;
  BenchCompareResult Result =
      compareBenchRecords(Baseline, Candidate, BenchCompareOptions());
  EXPECT_TRUE(Result.SchemaMismatch);
  EXPECT_EQ(Result.exitCode(), 2);
  EXPECT_TRUE(Result.Rows.empty());
  EXPECT_NE(Result.SchemaNote.find("mismatch"), std::string::npos);
}

TEST(BenchCompareTest, MissingMetricFailsUnlessAllowed) {
  BenchRecord Baseline = parse(BaselineJson);
  BenchRecord Candidate = parse(BaselineJson);
  Candidate.Metrics.erase(Candidate.Metrics.begin() + 1);

  BenchCompareResult Result =
      compareBenchRecords(Baseline, Candidate, BenchCompareOptions());
  EXPECT_TRUE(Result.Failed);
  EXPECT_EQ(Result.NumMissing, 1u);
  EXPECT_EQ(row(Result, "sim/ghost/full/num_scavenges").Verdict,
            BenchVerdict::Missing);

  BenchCompareOptions Lenient;
  Lenient.FailOnMissing = false;
  Result = compareBenchRecords(Baseline, Candidate, Lenient);
  EXPECT_FALSE(Result.Failed);
  EXPECT_EQ(Result.NumMissing, 1u);
}

TEST(BenchCompareTest, CandidateOnlyMetricsAreNewAndPass) {
  BenchRecord Baseline = parse(BaselineJson);
  BenchRecord Candidate = parse(BaselineJson);
  Candidate.addExact("runtime/full/new_metric", "bytes", 42.0);
  BenchCompareResult Result =
      compareBenchRecords(Baseline, Candidate, BenchCompareOptions());
  EXPECT_FALSE(Result.Failed);
  EXPECT_EQ(Result.NumNew, 1u);
  EXPECT_EQ(row(Result, "runtime/full/new_metric").Verdict, BenchVerdict::New);
}

TEST(BenchRecordTest, JsonRoundTripIsExact) {
  BenchRecord Record = parse(BaselineJson);
  ASSERT_TRUE(Record.HasEnv);
  EXPECT_EQ(Record.GitSha, "abc123");
  EXPECT_EQ(Record.Threads, 4u);
  ASSERT_EQ(Record.Metrics.size(), 4u);
  ASSERT_EQ(Record.Phases.size(), 1u);
  EXPECT_EQ(Record.Phases[0].Domain, "sim");
  EXPECT_EQ(Record.Phases[0].SelfCost, 5740187u);

  // Writer -> parser -> writer is a fixpoint: every double is emitted in
  // shortest round-trip form, so the second rendering is byte-identical.
  std::string First = toJson(Record);
  BenchRecord Reparsed = parse(First);
  EXPECT_EQ(toJson(Reparsed), First);

  // And the comparator sees the round-tripped record as identical.
  BenchCompareResult Result =
      compareBenchRecords(Record, Reparsed, BenchCompareOptions());
  EXPECT_FALSE(Result.Failed);
  EXPECT_EQ(Result.NumPass, 4u);
}

TEST(BenchRecordTest, MalformedDocumentsAreDiagnosed) {
  BenchRecord Record;
  std::string Error;
  EXPECT_FALSE(parseBenchRecord("not json", &Record, &Error));
  EXPECT_FALSE(Error.empty());

  EXPECT_FALSE(parseBenchRecord("{\"suite\": \"q\"}", &Record, &Error));
  EXPECT_NE(Error.find("schema_version"), std::string::npos);

  EXPECT_FALSE(parseBenchRecord(
      R"({"schema_version": 1, "metrics": {"m": {"kind": "exact"}}})",
      &Record, &Error));
  EXPECT_NE(Error.find("value"), std::string::npos);

  EXPECT_FALSE(parseBenchRecord(
      R"({"schema_version": 1, "metrics": {"m": {"kind": "weird"}}})",
      &Record, &Error));
  EXPECT_NE(Error.find("unknown kind"), std::string::npos);
}

TEST(BenchRecordTest, WallStatisticsFromSamples) {
  BenchRecord Record;
  Record.addWall("wall/x", "seconds", {3.0, 1.0, 2.0, 10.0});
  const BenchMetric *M = Record.findMetric("wall/x");
  ASSERT_NE(M, nullptr);
  EXPECT_DOUBLE_EQ(M->Min, 1.0);
  // Nearest-rank median of {1,2,3,10} is 2; deviations {1,0,1,8} -> MAD 1.
  EXPECT_DOUBLE_EQ(M->Median, 2.0);
  EXPECT_DOUBLE_EQ(M->Mad, 1.0);
}

TEST(BenchCompareTest, TailMetricClassification) {
  EXPECT_TRUE(isTailMetric("wall/runtime/pause_p99_ms"));
  EXPECT_TRUE(isTailMetric("runtime/full/pause_p999_traced_bytes"));
  EXPECT_TRUE(isTailMetric("runtime/full/max_quantum_traced_bytes"));
  EXPECT_FALSE(isTailMetric("wall/runtime/policies_seconds"));
  EXPECT_FALSE(isTailMetric("sim/ghost/full/traced_bytes"));
}

TEST(BenchCompareTest, TailWallMetricsGateTighter) {
  // Identical jitter-free samples: MAD is 0, so the threshold reduces to
  // the relative component alone — 10% for throughput metrics, 5% for
  // tail ones.
  BenchRecord Baseline;
  Baseline.addWall("wall/runtime/pause_p99_ms", "ms", {10.0, 10.0, 10.0});
  Baseline.addWall("wall/runtime/policies_seconds", "seconds",
                   {10.0, 10.0, 10.0});
  BenchRecord Candidate;
  // +8%: beyond the 5% tail threshold, within the 10% throughput one.
  Candidate.addWall("wall/runtime/pause_p99_ms", "ms", {10.8, 10.8, 10.8});
  Candidate.addWall("wall/runtime/policies_seconds", "seconds",
                    {10.8, 10.8, 10.8});

  BenchCompareResult Result =
      compareBenchRecords(Baseline, Candidate, BenchCompareOptions());
  EXPECT_TRUE(Result.Failed);
  EXPECT_EQ(row(Result, "wall/runtime/pause_p99_ms").Verdict,
            BenchVerdict::Regressed);
  EXPECT_EQ(row(Result, "wall/runtime/policies_seconds").Verdict,
            BenchVerdict::Pass);

  // Loosening --tail-threshold clears the tail regression too.
  BenchCompareOptions Lenient;
  Lenient.TailRelThreshold = 0.10;
  Result = compareBenchRecords(Baseline, Candidate, Lenient);
  EXPECT_FALSE(Result.Failed);
  EXPECT_EQ(row(Result, "wall/runtime/pause_p99_ms").Verdict,
            BenchVerdict::Pass);
}

TEST(BenchRecordTest, TraceLanesEnvRoundTrips) {
  BenchRecord Record;
  Record.Suite = "runtime";
  Record.HasEnv = true;
  Record.GitSha = "abc123";
  Record.BuildFlags = "-O2";
  Record.Threads = 4;
  Record.TraceLanes = 8;
  Record.addExact("runtime/full/pause_p99_traced_bytes", "bytes", 4096.0);

  std::string Json = toJson(Record);
  BenchRecord Reparsed = parse(Json);
  EXPECT_EQ(Reparsed.Threads, 4u);
  EXPECT_EQ(Reparsed.TraceLanes, 8u);
  EXPECT_EQ(toJson(Reparsed), Json);
}
