//===- serverload/ServerLoad.h - Server-shaped workloads -------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Server-scale synthetic workload generators. The paper's traces are four
/// 1993 batch programs; this module generates the allocation shapes a
/// modern server heap sees, so the threatening-boundary policies can be
/// stress-tested for *tail* behaviour (pause p99/p99.9, memory overshoot)
/// rather than means:
///
///  - request/session bimodality: most objects die within a request, a
///    session-cache tail lives orders of magnitude longer;
///  - diurnal and flash-crowd load curves: the allocation rate swings over
///    the run, stretching object byte-lifetimes during peaks (an object
///    that lives a fixed wall time spans more allocated bytes when the
///    heap allocates faster);
///  - NG2C-style big-data churn: periodic large, long-lived batches rotate
///    above the request working set;
///  - multi-tenancy: K tenant streams with per-tenant byte budgets
///    interleaved deficit-round-robin on the shared allocation clock.
///
/// Scenarios reuse the mixture-of-lifetime-classes core from
/// workload/Workload.h and are fully deterministic in (scenario, seed).
/// The catalog is enumerated by bench_driver --suite server,
/// conformance_runner, and examples/simulate_trace.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_SERVERLOAD_SERVERLOAD_H
#define DTB_SERVERLOAD_SERVERLOAD_H

#include "trace/Trace.h"
#include "workload/Workload.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dtb {
namespace serverload {

/// Shape of the load curve over the run.
enum class LoadCurveKind {
  /// Constant allocation rate.
  Flat,
  /// Smooth day/night cosine swing between 1x and PeakMultiplier.
  Diurnal,
  /// Baseline 1x with NumSpikes evenly spaced flash crowds at
  /// PeakMultiplier, each covering SpikeFraction of the run.
  Spiky,
};

/// Allocation-rate modulation over the run. In an allocation-clock trace
/// the clock *is* bytes allocated, so rate modulation manifests as
/// byte-lifetime stretching: at clock fraction f, sampled lifetimes are
/// multiplied by multiplierAt(f).
struct LoadCurve {
  LoadCurveKind Kind = LoadCurveKind::Flat;
  /// Peak allocation-rate multiplier (>= 1).
  double PeakMultiplier = 1.0;
  /// Diurnal: number of full day cycles over the run.
  double Cycles = 1.0;
  /// Spiky: fraction of the run covered by each spike.
  double SpikeFraction = 0.05;
  /// Spiky: number of evenly spaced spikes.
  unsigned NumSpikes = 1;

  /// Rate multiplier at run fraction \p Fraction (clamped into [0, 1]).
  double multiplierAt(double Fraction) const;
};

/// NG2C-style big-data churn rider: every BatchPeriodBytes of
/// allocation-clock advance, a batch of BatchBytes in ObjectSize chunks is
/// allocated and retained for BatchesRetained periods (unstretched by the
/// load curve), so BatchesRetained batches rotate live above the request
/// working set. BatchPeriodBytes == 0 disables.
struct BigDataChurn {
  uint64_t BatchPeriodBytes = 0;
  uint64_t BatchBytes = 0;
  uint32_t ObjectSize = 8192;
  unsigned BatchesRetained = 2;
};

/// One tenant's allocation stream.
struct TenantSpec {
  std::string Name;
  /// Share of the scenario's total bytes (relative; need not sum to 1).
  double Weight = 1.0;
  workload::SizeModel Sizes;
  /// Lifetime mixture (bytes of subsequent allocation); bimodal
  /// request/session shapes are expressed here.
  std::vector<workload::LifetimeClass> Mixture;
  BigDataChurn Churn;
};

/// A named, composable server scenario: tenants x load curve, plus the
/// simulation constraints the bench/conformance harnesses should use.
struct ServerScenario {
  std::string Name;
  std::string DisplayName;
  std::string Description;
  uint64_t TotalAllocationBytes = 0;
  /// Mutator seconds at the paper's machine model (for pause accounting).
  double ProgramSeconds = 0.0;
  uint64_t Seed = 1;
  LoadCurve Curve;
  std::vector<TenantSpec> Tenants;

  /// Suggested harness constraints, pre-scaled to the scenario's live set.
  uint64_t TriggerBytes = 32'768;
  uint64_t TraceMaxBytes = 49'152;
  uint64_t MemMaxBytes = 1'048'576;
};

/// Generates the allocation trace for \p S. Deterministic in the scenario
/// (including its seed) — byte-identical on every platform and thread
/// count. If \p TenantOf is non-null it receives, per record, the index
/// into S.Tenants of the tenant that allocated it.
trace::Trace generateServerTrace(const ServerScenario &S,
                                 std::vector<uint32_t> *TenantOf = nullptr);

/// The scenario catalog, in bench-suite order: frontend, diurnal,
/// flashcrowd, bigdata, multitenant.
const std::vector<ServerScenario> &serverScenarios();

/// Finds a catalog scenario by name; returns nullptr if unknown.
const ServerScenario *findServerScenario(const std::string &Name);

/// Returns \p S rescaled so the trace totals \p TotalBytes: lifetimes,
/// churn periods, and harness constraints shrink proportionally (with
/// small floors), preserving the scenario's shape. Used to downscale
/// catalog scenarios for the conformance --quick grid.
ServerScenario scaledScenario(const ServerScenario &S, uint64_t TotalBytes);

} // namespace serverload
} // namespace dtb

#endif // DTB_SERVERLOAD_SERVERLOAD_H
