file(REMOVE_RECURSE
  "CMakeFiles/dtb_workload.dir/Workload.cpp.o"
  "CMakeFiles/dtb_workload.dir/Workload.cpp.o.d"
  "libdtb_workload.a"
  "libdtb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
