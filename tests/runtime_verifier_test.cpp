//===- tests/runtime_verifier_test.cpp ------------------------------------==//
//
// Tests that the heap verifier accepts healthy heaps and pinpoints each
// class of corruption it is designed to catch.
//
//===----------------------------------------------------------------------===//

#include "runtime/HeapVerifier.h"

#include "runtime/Heap.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::runtime;

namespace {

HeapConfig quarantineConfig() {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Config.QuarantineFreedObjects = true;
  return Config;
}

bool hasProblemContaining(const VerifyResult &Result,
                          const std::string &Needle) {
  for (const std::string &Problem : Result.Problems)
    if (Problem.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(VerifierTest, EmptyHeapIsHealthy) {
  Heap H(quarantineConfig());
  EXPECT_TRUE(verifyHeap(H).Ok);
  EXPECT_EQ(reachableBytes(H), 0u);
}

TEST(VerifierTest, HealthyGraphPasses) {
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Object *&Root = Scope.slot(H.allocate(2));
  Object *A = H.allocate(1, 8);
  Object *B = H.allocate(0, 8);
  H.writeSlot(Root, 0, A);
  H.writeSlot(Root, 1, B);
  H.writeSlot(A, 0, B);
  VerifyResult Result = verifyHeap(H);
  EXPECT_TRUE(Result.Ok) << (Result.Problems.empty()
                                 ? ""
                                 : Result.Problems.front());
}

TEST(VerifierTest, DetectsMissingRememberedSetEntry) {
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Object *&Old = Scope.slot(H.allocate(1));
  Object *Young = H.allocate(0);
  // Forward-in-time store behind the barrier's back.
  H.dangerouslyWriteSlotWithoutBarrier(Old, 0, Young);

  VerifyResult Result = verifyHeap(H);
  EXPECT_FALSE(Result.Ok);
  EXPECT_TRUE(hasProblemContaining(Result, "missing remembered-set entry"));
}

TEST(VerifierTest, BackwardPointerNeedsNoEntry) {
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Object *&Old = Scope.slot(H.allocate(0));
  Object *&Young = Scope.slot(H.allocate(1));
  // Young -> old without barrier is fine: never remembered.
  H.dangerouslyWriteSlotWithoutBarrier(Young, 0, Old);
  EXPECT_TRUE(verifyHeap(H).Ok);
}

TEST(VerifierTest, DetectsDanglingReachablePointer) {
  // A rooted object pointing at reclaimed memory: the canonical GC bug.
  // Build it by storing without the barrier and collecting past the
  // victim.
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Object *&Old = Scope.slot(H.allocate(1));
  core::AllocClock Boundary = H.now();
  Object *Young = H.allocate(0);
  H.dangerouslyWriteSlotWithoutBarrier(Old, 0, Young);
  H.collectAtBoundary(Boundary); // Young is (wrongly) reclaimed.

  VerifyResult Result = verifyHeap(H);
  EXPECT_FALSE(Result.Ok);
  EXPECT_TRUE(hasProblemContaining(Result, "use-after-free"));
}

TEST(VerifierTest, ReachableBytesMatchesFullCollectionSurvivors) {
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Object *&Root = Scope.slot(H.allocate(2, 100));
  H.writeSlot(Root, 0, H.allocate(0, 50));
  H.allocate(0, 500); // Garbage.
  uint64_t Reachable = reachableBytes(H);
  const core::ScavengeRecord &R = H.collectAtBoundary(0);
  EXPECT_EQ(R.SurvivedBytes, Reachable);
  EXPECT_EQ(H.residentBytes(), Reachable);
}

TEST(VerifierTest, StaleRememberedEntryIsLegal) {
  Heap H(quarantineConfig());
  HandleScope Scope(H);
  Object *&Old = Scope.slot(H.allocate(1));
  Object *Young = H.allocate(0);
  H.writeSlot(Old, 0, Young);
  H.writeSlot(Old, 0, nullptr); // Entry goes stale, not removed.
  EXPECT_TRUE(verifyHeap(H).Ok);
}
