//===- bench/bench_driver.cpp - Unified benchmark harness -----------------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// One driver for every perf measurement in the repo. Runs a declared suite
// (quick / paper / runtime / timing / server) with warmup and repeated wall
// measurements, and emits a schema-versioned BENCH_<suite>.json record
// carrying git SHA, build flags, thread count, every deterministic metric,
// and the per-phase cost attribution from the scoped phase profiler.
// bench_compare diffs two of these records and gates CI.
//
// The deterministic portion of the record (everything outside "wall/") is
// bit-identical for any --threads value; --no-wall --no-env produces a
// fully reproducible document suitable for checked-in baselines.
//
//===----------------------------------------------------------------------===//

#include "report/BenchDriver.h"
#include "support/CommandLine.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <string>

using namespace dtb;

int main(int Argc, char **Argv) {
  std::string Suite = "quick";
  std::string Out;
  uint64_t Repeats = 3;
  uint64_t Warmup = 1;
  uint64_t Threads = 0;
  uint64_t TraceLanes = 0;
  uint64_t TopN = 16;
  bool Quick = false;
  bool NoWall = false;
  bool NoEnv = false;
  bool NoSummary = false;

  std::string SuiteHelp = "Suite to run (";
  for (size_t I = 0; I != report::benchSuiteNames().size(); ++I)
    SuiteHelp += (I ? ", " : "") + report::benchSuiteNames()[I];
  SuiteHelp += ")";

  OptionParser Parser(
      "Runs a benchmark suite and writes a BENCH_<suite>.json record "
      "(exact metrics, wall min/median/MAD, per-phase cost attribution)");
  Parser.addString("suite", SuiteHelp, &Suite);
  Parser.addFlag("quick", "Shorthand for --suite quick", &Quick);
  Parser.addString("out",
                   "Output path ('-' for stdout; default BENCH_<suite>.json)",
                   &Out);
  Parser.addUInt("repeats", "Timed repeats per wall measurement", &Repeats);
  Parser.addUInt("warmup", "Discarded warmup runs per wall measurement",
                 &Warmup);
  Parser.addFlag("no-wall",
                 "Skip wall-clock measurements (fully deterministic record)",
                 &NoWall);
  Parser.addFlag("no-env",
                 "Omit the env block (git SHA, build flags, threads)",
                 &NoEnv);
  Parser.addUInt("top", "Phases shown in the cost-attribution summary",
                 &TopN);
  Parser.addFlag("no-summary", "Skip the cost-attribution summary", &NoSummary);
  Parser.addUInt("trace-lanes",
                 "Trace lanes for the runtime parallel-scavenge stages "
                 "(0 = follow --threads, 1 = serial)",
                 &TraceLanes);
  addThreadsOption(Parser, &Threads);
  if (!Parser.parse(Argc, Argv))
    return 1;
  applyThreadsOption(Threads);
  if (Quick)
    Suite = "quick";

  report::BenchDriverOptions Options;
  Options.Suite = Suite;
  Options.Threads = static_cast<unsigned>(Threads);
  Options.TraceLanes = static_cast<unsigned>(TraceLanes);
  Options.Repeats = static_cast<unsigned>(Repeats);
  Options.Warmup = static_cast<unsigned>(Warmup);
  Options.IncludeWall = !NoWall;
  Options.IncludeEnv = !NoEnv;

  report::BenchSuiteResult Result = report::runBenchSuite(Options);
  std::string Json = report::toJson(Result.Record);

  if (Out.empty())
    Out = "BENCH_" + Suite + ".json";
  if (Out == "-") {
    std::fwrite(Json.data(), 1, Json.size(), stdout);
  } else {
    std::FILE *F = std::fopen(Out.c_str(), "wb");
    if (!F) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   Out.c_str());
      return 1;
    }
    std::fwrite(Json.data(), 1, Json.size(), F);
    std::fclose(F);
    std::fprintf(stderr, "wrote %s (%zu metrics, %zu phases)\n", Out.c_str(),
                 Result.Record.Metrics.size(), Result.Record.Phases.size());
  }

  // Cost-attribution summary: one table per profiled domain, to stderr so
  // `--out -` pipes clean JSON.
  if (!NoSummary) {
    for (const auto &[Domain, Profiler] : Result.Profiles) {
      if (Profiler.aggregates().empty())
        continue;
      std::fprintf(stderr, "\nCost attribution — %s (top %llu by self cost)\n",
                   Domain.c_str(),
                   static_cast<unsigned long long>(TopN));
      profiling::buildCostAttributionTable(Profiler, TopN).print(stderr);
    }
    if (Result.Profiles.empty() || !profiling::compiledIn())
      std::fprintf(stderr, "\n(no phase profile: %s)\n",
                   profiling::compiledIn()
                       ? "suite records no profiled stages"
                       : "telemetry compiled out");
  }
  return 0;
}
