//===- bench/table5_6_workloads.cpp - Reproduces Tables 5 and 6 ----------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// Prints the allocation behaviour of the six synthetic workloads in the
// layout of the paper's Table 6, plus the LIVE / No-GC baselines of
// Table 2 and the lifetime CDF that documents each workload's calibrated
// lifetime structure (the paper's Table 5 descriptions are prose; the
// statistics here are their measurable counterpart).
//
//===----------------------------------------------------------------------===//

#include "report/Experiments.h"
#include "report/PaperReference.h"
#include "support/CommandLine.h"
#include "support/ThreadPool.h"
#include "support/Units.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>

using namespace dtb;

int main(int Argc, char **Argv) {
  bool Csv = false;
  report::ExperimentConfig Config;
  uint64_t Threads = 0;
  OptionParser Parser("Reproduces Tables 5/6: workload allocation "
                      "behaviour and baselines");
  Parser.addFlag("csv", "Emit CSV instead of aligned text", &Csv);
  addThreadsOption(Parser, &Threads);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;
  applyThreadsOption(Threads);

  report::ExperimentGrid Grid = report::ExperimentGrid::paperGrid(Config);

  Table T6 = report::buildTable6(Grid);
  if (Csv) {
    T6.printCsv(stdout);
    return 0;
  }

  std::printf("Table 6 (measured): Allocation Behaviour of Programs\n\n");
  T6.print(stdout);

  std::printf("\nBaselines (measured vs paper, KB):\n\n");
  Table Baselines({"Program", "Live mean", "paper", "Live max", "paper",
                   "NoGC mean", "paper", "NoGC max", "paper"});
  for (const workload::WorkloadSpec &Spec : Grid.workloads()) {
    const trace::TraceStats &B = Grid.baseline(Spec.Name);
    auto Paper = report::paperBaseline(Spec.Name);
    Baselines.addRow(
        {Spec.DisplayName, Table::cell(bytesToKB(B.LiveMeanBytes)),
         Table::cell(Paper->LiveMeanKB, 0),
         Table::cell(bytesToKB(B.LiveMaxBytes)),
         Table::cell(Paper->LiveMaxKB, 0),
         Table::cell(bytesToKB(B.NoGcMeanBytes)),
         Table::cell(Paper->NoGcMeanKB, 0),
         Table::cell(bytesToKB(B.TotalAllocatedBytes)),
         Table::cell(Paper->NoGcMaxKB, 0)});
  }
  Baselines.print(stdout);

  std::printf("\nLifetime CDF (fraction of allocated bytes dying before "
              "age):\n\n");
  std::vector<std::string> Header = {"Program"};
  for (uint64_t Threshold : trace::TraceStats::lifetimeThresholds())
    Header.push_back("<" + formatBytes(Threshold));
  Table Cdf(std::move(Header));
  for (const workload::WorkloadSpec &Spec : Grid.workloads()) {
    const trace::TraceStats &B = Grid.baseline(Spec.Name);
    std::vector<std::string> Row = {Spec.DisplayName};
    for (double Fraction : B.LifetimeCdf)
      Row.push_back(Table::cell(Fraction, 3));
    Cdf.addRow(std::move(Row));
  }
  Cdf.print(stdout);
  return 0;
}
