# Empty compiler generated dependencies file for combined_constraints.
# This may be replaced when dependencies are built.
