//===- examples/object_cache.cpp - A weakly-held object cache ------------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The classic weak-reference application on the managed runtime: a
// memoizing cache that holds its entries *weakly*, so cached values live
// exactly as long as the collector lets them. A "document store"
// repeatedly renders documents; renders are cached. Hits cost nothing;
// misses re-render. The collector — DTBMEM with a user-supplied memory
// budget — decides how much cache the program can afford, which is the
// paper's proposition in miniature: the user states "use at most N
// bytes", and cache capacity follows from it instead of being one more
// knob to tune.
//
// The run reports hit rates under shrinking memory budgets: the smaller
// the budget, the younger the threatening boundary can't afford to stay,
// the faster weakly-held renders are reclaimed, the lower the hit rate.
//
//===----------------------------------------------------------------------===//

#include "core/Policies.h"
#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"
#include "runtime/WeakRef.h"
#include "support/CommandLine.h"
#include "support/Random.h"
#include "support/Table.h"
#include "support/Units.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

using namespace dtb;
using runtime::HandleScope;
using runtime::Heap;
using runtime::Object;
using runtime::WeakRef;

namespace {

/// A rendered document: header word + payload bytes on the managed heap.
Object *renderDocument(Heap &H, uint32_t DocumentId, uint32_t Size) {
  Object *Render = H.allocate(/*NumSlots=*/0, /*RawBytes=*/Size);
  auto *Words = static_cast<uint32_t *>(Render->rawData());
  Words[0] = DocumentId; // "Rendered content".
  return Render;
}

struct CacheStats {
  uint64_t Requests = 0;
  uint64_t Hits = 0;
  double hitRate() const {
    return Requests == 0 ? 0.0
                         : static_cast<double>(Hits) /
                               static_cast<double>(Requests);
  }
};

} // namespace

int main(int Argc, char **Argv) {
  uint64_t NumDocuments = 64;
  uint64_t Requests = 20'000;
  uint64_t RenderBytes = 2'000;
  OptionParser Parser("A weakly-held render cache whose capacity is set "
                      "by the collector's memory budget");
  Parser.addUInt("documents", "Distinct documents", &NumDocuments);
  Parser.addUInt("requests", "Total render requests", &Requests);
  Parser.addUInt("render-bytes", "Payload bytes per render", &RenderBytes);
  if (!Parser.parse(Argc, Argv))
    return 1;

  std::printf("Weak render cache: %llu documents x %llu requests, %s per "
              "render\n\n",
              static_cast<unsigned long long>(NumDocuments),
              static_cast<unsigned long long>(Requests),
              formatBytes(RenderBytes).c_str());

  Table Tbl({"Memory budget", "Hit rate", "Renders", "Collections",
             "Resident at end"});
  for (uint64_t BudgetKB : {400ull, 200ull, 100ull, 50ull}) {
    runtime::HeapConfig Config;
    Config.TriggerBytes = 20'000;
    Heap H(Config);
    core::PolicyConfig Policy;
    Policy.MemMaxBytes = BudgetKB * 1000;
    H.setPolicy(core::createPolicy("dtbmem", Policy));

    // The cache: one weak reference per document. Weak references do not
    // root their targets, so the collector is free to reclaim renders
    // whenever the memory budget demands it.
    std::vector<std::unique_ptr<WeakRef>> Cache;
    for (uint64_t I = 0; I != NumDocuments; ++I)
      Cache.push_back(std::make_unique<WeakRef>(H));

    HandleScope Scope(H);
    Object *&Current = Scope.slot(nullptr); // The render being "served".

    CacheStats Stats;
    uint64_t Renders = 0;
    Rng R(0xCACE + BudgetKB);
    for (uint64_t Step = 0; Step != Requests; ++Step) {
      // Zipf-ish popularity: square the uniform draw toward document 0.
      double U = R.nextDouble();
      auto DocumentId =
          static_cast<uint32_t>(U * U * static_cast<double>(NumDocuments));

      Stats.Requests += 1;
      if (Object *Cached = Cache[DocumentId]->get()) {
        Stats.Hits += 1;
        Current = Cached; // Serve the cached render.
      } else {
        Current = renderDocument(H, DocumentId,
                                 static_cast<uint32_t>(RenderBytes));
        Cache[DocumentId]->set(Current);
        Renders += 1;
      }
      // Per-request transient work (the reason collections happen at all).
      H.allocate(0, 64);
    }

    Tbl.addRow({Table::cell(static_cast<uint64_t>(BudgetKB)) + " KB",
                Table::cell(Stats.hitRate() * 100.0, 1) + "%",
                Table::cell(Renders), Table::cell(H.history().size()),
                formatBytes(H.residentBytes())});

    runtime::VerifyResult V = runtime::verifyHeap(H);
    if (!V.Ok) {
      std::fprintf(stderr, "heap verification failed: %s\n",
                   V.Problems.front().c_str());
      return 1;
    }
  }
  Tbl.print(stdout);

  std::printf("\nOne knob, stated in the user's units: shrink the memory "
              "budget and the\ncollector reclaims weakly-held renders "
              "sooner, trading hit rate for\nfootprint — no cache-size "
              "parameter anywhere.\n");
  return 0;
}
