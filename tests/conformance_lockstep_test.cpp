//===- tests/conformance_lockstep_test.cpp - Differential harness --------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The conformance tentpole's core guarantee: for every shipped policy, a
// workload trace replayed through the simulator and the managed runtime
// in lockstep produces identical logical quantities at every scavenge,
// and an intentionally mutated policy is caught.
//
//===----------------------------------------------------------------------===//

#include "conformance/Conformance.h"

#include "serverload/ServerLoad.h"
#include "support/FaultInjector.h"
#include "workload/Workload.h"

#include "gtest/gtest.h"

using namespace dtb;
using namespace dtb::conformance;

namespace {

trace::Trace steadyTrace(uint64_t TotalBytes, uint64_t Seed, LinkMode Links) {
  return normalizeForReplay(
      workload::generateTrace(workload::makeSteadyStateSpec(TotalBytes, Seed)),
      Links);
}

LockstepConfig smallConfig(const std::string &Policy) {
  LockstepConfig Config;
  Config.PolicyName = Policy;
  Config.TriggerBytes = 32 * 1024;
  // Small-enough constraints that the adaptive policies actually exercise
  // their interesting rules on a few-hundred-KB trace.
  Config.Policy.TraceMaxBytes = 16 * 1024;
  Config.Policy.MemMaxBytes = 96 * 1024;
  return Config;
}

std::string divergenceSummary(const LockstepResult &Result) {
  std::string Text;
  for (const Divergence &D : Result.Divergences) {
    Text += D.describe();
    Text += '\n';
  }
  return Text;
}

class LockstepPolicyTest : public ::testing::TestWithParam<const char *> {};

TEST_P(LockstepPolicyTest, AgreesOnSteadyWorkload) {
  LockstepConfig Config = smallConfig(GetParam());
  trace::Trace T = steadyTrace(512 * 1024, /*Seed=*/7, Config.Links);
  LockstepResult Result = runLockstep(T, Config);
  EXPECT_TRUE(Result.agreed()) << divergenceSummary(Result);
  EXPECT_GT(Result.Sim.size(), 4u) << "workload too small to scavenge";
  EXPECT_EQ(Result.Sim.size(), Result.Runtime.size());
}

INSTANTIATE_TEST_SUITE_P(AllPaperPolicies, LockstepPolicyTest,
                         ::testing::Values("full", "fixed1", "fixed4",
                                           "feedmed", "dtbfm", "dtbmem",
                                           "minormajor4"),
                         [](const auto &Info) {
                           return std::string(Info.param);
                         });

TEST(LockstepTest, AbortProbeLeavesLockstepUnchanged) {
  // Abort-equivalence: opening an incremental cycle, tracing a few quanta,
  // and aborting it before every runtime collection must leave every
  // lockstep comparison — boundary, traced bytes, per-epoch demographics —
  // exactly as if the probe never ran.
  for (const char *Policy : {"full", "dtbmem"}) {
    for (uint64_t Budget : {uint64_t(0), uint64_t(2048)}) {
      LockstepConfig Config = smallConfig(Policy);
      Config.AbortProbe = true;
      Config.ScavengeBudgetBytes = Budget;
      trace::Trace T = steadyTrace(512 * 1024, /*Seed=*/7, Config.Links);
      LockstepResult Result = runLockstep(T, Config);
      EXPECT_TRUE(Result.agreed())
          << "policy=" << Policy << " budget=" << Budget << "\n"
          << divergenceSummary(Result);
      EXPECT_GT(Result.Sim.size(), 4u) << "workload too small to scavenge";
    }
  }
}

TEST(LockstepTest, AgreesWithEveryLinkMode) {
  for (LinkMode Links :
       {LinkMode::None, LinkMode::Forward, LinkMode::Backward}) {
    LockstepConfig Config = smallConfig("dtbmem");
    Config.Links = Links;
    trace::Trace T = steadyTrace(256 * 1024, /*Seed=*/11, Links);
    LockstepResult Result = runLockstep(T, Config);
    EXPECT_TRUE(Result.agreed())
        << "links=" << linkModeName(Links) << "\n"
        << divergenceSummary(Result);
  }
}

TEST(LockstepTest, AgreesWithCopyingCollector) {
  LockstepConfig Config = smallConfig("dtbfm");
  Config.Collector = runtime::CollectorKind::Copying;
  trace::Trace T = steadyTrace(256 * 1024, /*Seed=*/13, Config.Links);
  LockstepResult Result = runLockstep(T, Config);
  EXPECT_TRUE(Result.agreed()) << divergenceSummary(Result);
}

TEST(LockstepTest, EndOfRunSummariesMirrorEachOther) {
  LockstepConfig Config = smallConfig("fixed4");
  trace::Trace T = steadyTrace(256 * 1024, /*Seed=*/17, Config.Links);
  LockstepResult Result = runLockstep(T, Config);
  ASSERT_TRUE(Result.agreed()) << divergenceSummary(Result);
  EXPECT_EQ(Result.SimMemMaxBytes, Result.RuntimeMemMaxBytes);
  EXPECT_NEAR(Result.SimMemMeanBytes, Result.RuntimeMemMeanBytes,
              1e-6 * Result.SimMemMeanBytes);
  EXPECT_DOUBLE_EQ(Result.SimPauseMedianMs, Result.RuntimePauseMedianMs);
  EXPECT_GT(Result.SimMemMaxBytes, 0u);
}

TEST(LockstepTest, MutatorContextsMatchDirectPath) {
  // Determinism contract of the multi-mutator runtime: contexts driven
  // round-robin from one thread reproduce the direct heap API's clock,
  // remembered set, and scavenge records exactly — so the lockstep must
  // agree for any N, and the runtime rows must be identical to the direct
  // path's, field for field.
  LockstepConfig Direct = smallConfig("dtbmem");
  trace::Trace T = steadyTrace(256 * 1024, /*Seed=*/29, Direct.Links);
  LockstepResult Baseline = runLockstep(T, Direct);
  ASSERT_TRUE(Baseline.agreed()) << divergenceSummary(Baseline);
  ASSERT_GT(Baseline.Runtime.size(), 2u);
  for (unsigned Mutators : {1u, 4u}) {
    LockstepConfig Config = Direct;
    Config.Mutators = Mutators;
    LockstepResult Result = runLockstep(T, Config);
    EXPECT_TRUE(Result.agreed())
        << "mutators=" << Mutators << "\n"
        << divergenceSummary(Result);
    ASSERT_EQ(Result.Runtime.size(), Baseline.Runtime.size());
    for (size_t I = 0; I != Result.Runtime.size(); ++I) {
      EXPECT_EQ(Result.Runtime[I].Record.Time,
                Baseline.Runtime[I].Record.Time);
      EXPECT_EQ(Result.Runtime[I].Record.Boundary,
                Baseline.Runtime[I].Record.Boundary);
      EXPECT_EQ(Result.Runtime[I].Record.TracedBytes,
                Baseline.Runtime[I].Record.TracedBytes);
      EXPECT_EQ(Result.Runtime[I].Record.ReclaimedBytes,
                Baseline.Runtime[I].Record.ReclaimedBytes);
      EXPECT_EQ(Result.Runtime[I].Rule, Baseline.Runtime[I].Rule);
    }
  }
}

TEST(LockstepTest, MutatorsModeFrontendScenario) {
  // The bimodal request/session server shape through 4 contexts, under
  // both collectors: copying exercises context-root updating on moves,
  // mark-sweep exercises the barrier-buffer flush into the scavenge.
  for (runtime::CollectorKind Collector :
       {runtime::CollectorKind::MarkSweep, runtime::CollectorKind::Copying}) {
    LockstepConfig Config = smallConfig("full");
    Config.Mutators = 4;
    Config.Collector = Collector;
    trace::Trace T = normalizeForReplay(
        serverload::generateServerTrace(serverload::scaledScenario(
            *serverload::findServerScenario("frontend"), 192 * 1024)),
        Config.Links);
    LockstepResult Result = runLockstep(T, Config);
    EXPECT_TRUE(Result.agreed())
        << "collector="
        << (Collector == runtime::CollectorKind::Copying ? "copying"
                                                         : "marksweep")
        << "\n"
        << divergenceSummary(Result);
    EXPECT_GT(Result.Sim.size(), 2u) << "scenario too small to scavenge";
  }
}

TEST(LockstepTest, SeededPolicyMutationIsCaught) {
  LockstepConfig Config = smallConfig("fixed4");
  Config.MutateFromScavenge = 3;
  Config.MutateDeltaBytes = Config.TriggerBytes / 2;
  trace::Trace T = steadyTrace(256 * 1024, /*Seed=*/19, Config.Links);
  LockstepResult Result = runLockstep(T, Config);
  ASSERT_FALSE(Result.agreed());
  // The first divergence must be the boundary of the first mutated
  // scavenge — everything before it agreed.
  const Divergence &First = Result.Divergences.front();
  EXPECT_EQ(First.Field, "boundary");
  EXPECT_GE(First.ScavengeIndex, Config.MutateFromScavenge);
}

TEST(LockstepTest, InjectedRuntimeFaultIsCaught) {
  // The chaos/fault integration path: a one-shot policy-evaluation fault
  // makes the *runtime* fall back to FIXED1 while the simulator runs the
  // real policy — the harness must flag the disagreement (rule and, for a
  // non-FIXED1 policy, usually the boundary too).
  LockstepConfig Config = smallConfig("full");
  trace::Trace T = steadyTrace(256 * 1024, /*Seed=*/23, Config.Links);
  FaultInjector Injector(/*Seed=*/1);
  Injector.armOneShot(FaultSite::PolicyEvaluation, /*NthHit=*/2);
  FaultInjectionScope Scope(Injector);
  LockstepResult Result = runLockstep(T, Config);
  ASSERT_FALSE(Result.agreed());
  bool SawRule = false;
  for (const Divergence &D : Result.Divergences)
    SawRule |= D.Field == "rule";
  EXPECT_TRUE(SawRule) << divergenceSummary(Result);
}

TEST(NormalizeTest, ClampsSizesAndPreservesLifetimes) {
  trace::TraceBuilder Builder;
  auto A = Builder.allocate(8); // Below the replayable minimum.
  auto B = Builder.allocate(100);
  Builder.free(A);
  auto C = Builder.allocate(500);
  Builder.free(C);
  (void)B; // Immortal.
  trace::Trace T = Builder.finish();

  trace::Trace N = normalizeForReplay(T, LinkMode::Forward);
  ASSERT_TRUE(N.verify());
  EXPECT_TRUE(isReplayable(N, LinkMode::Forward));
  ASSERT_EQ(N.records().size(), 3u);
  EXPECT_EQ(N.records()[0].Size, minReplayableSize(LinkMode::Forward));
  EXPECT_EQ(N.records()[1].Size, 100u);
  // Lifetimes (death - birth) carry over to the rescaled clock.
  EXPECT_EQ(N.records()[0].Death - N.records()[0].Birth,
            T.records()[0].Death - T.records()[0].Birth);
  EXPECT_EQ(N.records()[1].Death, trace::NeverDies);
  // Already-replayable traces come back unchanged.
  trace::Trace Same = normalizeForReplay(N, LinkMode::Forward);
  EXPECT_EQ(Same.records(), N.records());
}

TEST(NormalizeTest, MinimumSizeDependsOnLinkMode) {
  EXPECT_EQ(minReplayableSize(LinkMode::None), sizeof(runtime::Object));
  EXPECT_EQ(minReplayableSize(LinkMode::Forward),
            sizeof(runtime::Object) + sizeof(void *));
  EXPECT_EQ(minReplayableSize(LinkMode::Backward),
            sizeof(runtime::Object) + sizeof(void *));
}

} // namespace
