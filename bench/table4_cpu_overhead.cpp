//===- bench/table4_cpu_overhead.cpp - Reproduces the paper's Table 4 ----===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// Prints the total kilobytes traced and estimated CPU overhead (% of
// mutator time, at 10 MIPS / 500 KB/s) per collector and workload — the
// paper's Table 4 — followed by the published values.
//
//===----------------------------------------------------------------------===//

#include "report/Experiments.h"
#include "report/PaperReference.h"
#include "support/CommandLine.h"
#include "support/ThreadPool.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>

using namespace dtb;

int main(int Argc, char **Argv) {
  bool Csv = false;
  report::ExperimentConfig Config;
  uint64_t Threads = 0;
  OptionParser Parser("Reproduces Table 4: total bytes traced (KB) and "
                      "estimated CPU overhead (%)");
  Parser.addFlag("csv", "Emit CSV instead of aligned text", &Csv);
  Parser.addUInt("trigger", "Bytes allocated between scavenges",
                 &Config.TriggerBytes);
  Parser.addUInt("trace-max", "Pause budget in traced bytes",
                 &Config.TraceMaxBytes);
  Parser.addUInt("mem-max", "DTBMEM memory budget in bytes",
                 &Config.MemMaxBytes);
  addThreadsOption(Parser, &Threads);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;
  applyThreadsOption(Threads);

  report::ExperimentGrid Grid = report::ExperimentGrid::paperGrid(Config);
  Table Measured = report::buildTable4(Grid);
  if (Csv) {
    Measured.printCsv(stdout);
    return 0;
  }

  std::printf("Table 4 (measured): Total Bytes Traced (Kilobytes) and "
              "Estimated CPU Overhead (%%)\n\n");
  Measured.print(stdout);
  std::printf("\nTable 4 (paper):\n\n");
  report::paperTable4().print(stdout);
  return 0;
}
