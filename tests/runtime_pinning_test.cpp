//===- tests/runtime_pinning_test.cpp -------------------------------------==//
//
// Tests for object pinning — the hook for handing objects to a Mature
// Object Space / Key Object collector (paper §2): pinned objects are
// exempt from age-based reclamation and keep their referents alive.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::runtime;

namespace {

HeapConfig quarantineConfig() {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Config.QuarantineFreedObjects = true;
  return Config;
}

} // namespace

TEST(PinningTest, PinnedObjectSurvivesFullCollection) {
  Heap H(quarantineConfig());
  Object *O = H.allocate(0, 32); // Never rooted.
  H.pinObject(O);
  H.collectAtBoundary(0);
  EXPECT_TRUE(O->isAlive());
  EXPECT_EQ(H.residentObjects(), 1u);
}

TEST(PinningTest, PinnedObjectKeepsReferentsAlive) {
  Heap H(quarantineConfig());
  Object *Pinned = H.allocate(1);
  Object *Child = H.allocate(0, 16);
  H.writeSlot(Pinned, 0, Child);
  H.pinObject(Pinned);

  H.collectAtBoundary(0);
  EXPECT_TRUE(Pinned->isAlive());
  EXPECT_TRUE(Child->isAlive());
}

TEST(PinningTest, UnpinReturnsObjectToAgeBasedCollection) {
  Heap H(quarantineConfig());
  Object *O = H.allocate(0, 32);
  H.pinObject(O);
  H.collectAtBoundary(0);
  ASSERT_TRUE(O->isAlive());

  H.unpinObject(O);
  H.collectAtBoundary(0);
  EXPECT_FALSE(O->isAlive());
  EXPECT_EQ(H.residentObjects(), 0u);
}

TEST(PinningTest, IsPinnedReflectsState) {
  Heap H(quarantineConfig());
  Object *O = H.allocate(0);
  EXPECT_FALSE(H.isPinned(O));
  H.pinObject(O);
  EXPECT_TRUE(H.isPinned(O));
  H.pinObject(O); // Idempotent.
  EXPECT_EQ(H.pinnedObjects().size(), 1u);
  H.unpinObject(O);
  EXPECT_FALSE(H.isPinned(O));
}

TEST(PinningTest, PinnedImmuneObjectStillCoveredByRememberedSet) {
  // A pinned *immune* object pointing forward across the boundary: the
  // target must survive via the remembered set (pinning changes nothing
  // for immune objects).
  Heap H(quarantineConfig());
  Object *Pinned = H.allocate(1);
  H.pinObject(Pinned);
  core::AllocClock Boundary = H.now();
  Object *Young = H.allocate(0);
  H.writeSlot(Pinned, 0, Young);

  H.collectAtBoundary(Boundary);
  EXPECT_TRUE(Young->isAlive());
}

TEST(PinningTest, PinnedThreatenedObjectIsTracedNotJustKept) {
  // A pinned young object's backward pointers must keep threatened
  // referents alive through normal tracing.
  Heap H(quarantineConfig());
  Object *Older = H.allocate(0, 16); // Unreachable except through Pinned.
  Object *Pinned = H.allocate(1);
  H.writeSlot(Pinned, 0, Older); // Backward-in-time: no remembered entry.
  H.pinObject(Pinned);

  H.collectAtBoundary(0); // Both threatened.
  EXPECT_TRUE(Pinned->isAlive());
  EXPECT_TRUE(Older->isAlive());
}

TEST(PinningTest, VerifierTreatsPinnedAsRoots) {
  Heap H(quarantineConfig());
  Object *Pinned = H.allocate(1);
  Object *Child = H.allocate(0);
  H.writeSlot(Pinned, 0, Child);
  H.pinObject(Pinned);
  H.collectAtBoundary(0);

  VerifyResult Result = verifyHeap(H);
  EXPECT_TRUE(Result.Ok) << (Result.Problems.empty()
                                 ? ""
                                 : Result.Problems.front());
  EXPECT_EQ(reachableBytes(H), H.residentBytes());
}
