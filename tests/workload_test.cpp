//===- tests/workload_test.cpp --------------------------------------------==//
//
// Tests for the synthetic workload generator: determinism, structural
// contracts (totals, phase composition), the registry, and lifetime-class
// behaviour.
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include "trace/TraceStats.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::workload;

namespace {

WorkloadSpec tinySpec() {
  WorkloadSpec Spec;
  Spec.Name = "tiny";
  Spec.DisplayName = "TINY";
  Spec.TotalAllocationBytes = 500'000;
  Spec.ProgramSeconds = 1.0;
  Spec.Seed = 42;
  Spec.Phases = {
      {1.0,
       {{0.9, LifetimeKind::Exponential, 5'000.0, 0.0},
        {0.1, LifetimeKind::Immortal, 0.0, 0.0}}},
  };
  return Spec;
}

} // namespace

TEST(WorkloadTest, DeterministicForSeed) {
  trace::Trace A = generateTrace(tinySpec());
  trace::Trace B = generateTrace(tinySpec());
  EXPECT_EQ(A.records(), B.records());
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadSpec Spec = tinySpec();
  trace::Trace A = generateTrace(Spec);
  Spec.Seed = 43;
  trace::Trace B = generateTrace(Spec);
  EXPECT_NE(A.records(), B.records());
}

TEST(WorkloadTest, TotalAllocationLandsOnTarget) {
  trace::Trace T = generateTrace(tinySpec());
  // The generator overshoots by at most one object.
  EXPECT_GE(T.totalAllocated(), 500'000u);
  EXPECT_LT(T.totalAllocated(), 500'000u + 5'000u);
}

TEST(WorkloadTest, TraceIsWellFormed) {
  trace::Trace T = generateTrace(tinySpec());
  std::string Error;
  EXPECT_TRUE(T.verify(&Error)) << Error;
}

TEST(WorkloadTest, SizesRespectModelBounds) {
  WorkloadSpec Spec = tinySpec();
  Spec.Sizes.MinSize = 32;
  Spec.Sizes.MaxSize = 256;
  trace::Trace T = generateTrace(Spec);
  for (const trace::AllocationRecord &R : T.records()) {
    EXPECT_GE(R.Size, 32u);
    EXPECT_LE(R.Size, 256u);
  }
}

TEST(WorkloadTest, ImmortalWeightShowsUpAsLiveAtEnd) {
  trace::Trace T = generateTrace(tinySpec());
  trace::TraceStats S = trace::computeTraceStats(T);
  // ~10% of bytes are immortal plus a small short-lived residue.
  double ImmortalFraction =
      static_cast<double>(S.LiveAtEndBytes) /
      static_cast<double>(S.TotalAllocatedBytes);
  EXPECT_GT(ImmortalFraction, 0.07);
  EXPECT_LT(ImmortalFraction, 0.16);
}

TEST(WorkloadTest, UniformLifetimesStayInRange) {
  WorkloadSpec Spec = tinySpec();
  Spec.Phases = {
      {1.0, {{1.0, LifetimeKind::Uniform, 10'000.0, 20'000.0}}},
  };
  trace::Trace T = generateTrace(Spec);
  for (const trace::AllocationRecord &R : T.records()) {
    ASSERT_NE(R.Death, trace::NeverDies);
    uint64_t Lifetime = R.Death - R.Birth;
    EXPECT_GE(Lifetime, 10'000u);
    EXPECT_LE(Lifetime, 20'000u);
  }
}

TEST(WorkloadTest, PhasesPartitionTheClock) {
  // Two phases with disjoint behaviour: immortals only in the first half.
  WorkloadSpec Spec = tinySpec();
  Spec.Phases = {
      {0.5, {{1.0, LifetimeKind::Immortal, 0.0, 0.0}}},
      {0.5, {{1.0, LifetimeKind::Exponential, 100.0, 0.0}}},
  };
  trace::Trace T = generateTrace(Spec);
  uint64_t Half = 250'000;
  for (const trace::AllocationRecord &R : T.records()) {
    if (R.Birth <= Half)
      EXPECT_EQ(R.Death, trace::NeverDies);
    else if (R.Birth > Half + 5'000) // Skip the boundary object.
      EXPECT_NE(R.Death, trace::NeverDies);
  }
}

TEST(WorkloadRegistryTest, SixPaperWorkloads) {
  const std::vector<WorkloadSpec> &Specs = paperWorkloads();
  ASSERT_EQ(Specs.size(), 6u);
  EXPECT_EQ(Specs[0].Name, "ghost1");
  EXPECT_EQ(Specs[1].Name, "ghost2");
  EXPECT_EQ(Specs[2].Name, "espresso1");
  EXPECT_EQ(Specs[3].Name, "espresso2");
  EXPECT_EQ(Specs[4].Name, "sis");
  EXPECT_EQ(Specs[5].Name, "cfrac");
  for (const WorkloadSpec &Spec : Specs) {
    EXPECT_FALSE(Spec.DisplayName.empty());
    EXPECT_GT(Spec.TotalAllocationBytes, 0u);
    EXPECT_GT(Spec.ProgramSeconds, 0.0);
    double FractionSum = 0.0;
    for (const Phase &P : Spec.Phases)
      FractionSum += P.AllocFraction;
    EXPECT_NEAR(FractionSum, 1.0, 1e-9) << Spec.Name;
  }
}

TEST(WorkloadRegistryTest, FindByName) {
  EXPECT_NE(findWorkload("sis"), nullptr);
  EXPECT_EQ(findWorkload("sis")->DisplayName, "SIS");
  EXPECT_EQ(findWorkload("nope"), nullptr);
}

TEST(WorkloadRegistryTest, SteadyStateSpecIsUsable) {
  WorkloadSpec Spec = makeSteadyStateSpec(1'000'000, 7);
  trace::Trace T = generateTrace(Spec);
  EXPECT_TRUE(T.verify());
  EXPECT_GE(T.totalAllocated(), 1'000'000u);
}
