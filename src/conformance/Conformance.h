//===- conformance/Conformance.h - Sim vs. runtime lockstep ----*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential conformance harness: one deterministic allocation
/// trace is replayed through both the trace-driven simulator
/// (sim::Simulator over sim::HeapModel) and the managed runtime
/// (runtime::Heap with a real collector), pausing at every scavenge to
/// cross-check the two against a shared tolerance model. The paper
/// justifies its simulator by trace-driven cross-validation (§4); this
/// harness turns that methodology into a continuously-enforced invariant
/// over our two independent implementations of the TB policies.
///
/// Lockstep protocol: the simulator drives. A ScavengeObserver fires
/// after each simulated scavenge; the harness then advances a replay
/// mutator over the runtime heap to the same allocation clock (allocating
/// an object of the same gross size per trace record, rooting it in a
/// handle scope, and dropping the root — and all of the object's pointer
/// links — exactly when the trace says the object dies), calls
/// Heap::collect(), and compares the two scavenge records field by field.
/// Both policies see byte-identical BoundaryRequests: the runtime's
/// survivor-table demographics are overridden with an exact oracle
/// (a shadow sim::HeapModel mirroring the runtime heap), so any
/// divergence is a genuine implementation disagreement, not an estimate
/// artifact. The runtime's survivor table is still *maintained* and is
/// itself cross-checked per epoch against the oracle.
///
/// Tolerance model (see DESIGN.md §11): logical quantities — boundary,
/// rule fired, traced/reclaimed/survived/mem-before bytes, scavenge count
/// and times, per-epoch survivor demographics, degradation notes — must
/// match exactly. Machine-model-derived doubles — pause milliseconds,
/// time-weighted memory mean — are compared within a bounded relative
/// tolerance, since they are defined only up to floating-point evaluation
/// order.
///
/// On divergence, shrinkDivergence() delta-debugs the trace down to the
/// smallest still-diverging reproducer (dropping record spans, halving
/// object sizes, truncating the tail) and writeDivergenceArtifacts()
/// persists the reproducer plus both sides' per-scavenge telemetry for
/// offline triage.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_CONFORMANCE_CONFORMANCE_H
#define DTB_CONFORMANCE_CONFORMANCE_H

#include "core/Policies.h"
#include "runtime/Heap.h"
#include "trace/Trace.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dtb {
namespace conformance {

/// The shared tolerance model. Logical quantities are compared exactly;
/// machine-model-derived doubles within a relative tolerance.
struct ToleranceModel {
  /// Relative tolerance for machine-model-derived doubles (pause ms,
  /// time-weighted memory mean). The values on both sides are computed by
  /// the same code over the same inputs, so the bound only has to absorb
  /// floating-point evaluation-order noise.
  double RelTolerance = 1e-9;
  /// Absolute floor so values near zero do not demand impossible relative
  /// precision.
  double AbsTolerance = 1e-12;

  bool close(double A, double B) const;
};

/// What pointer traffic the replay mutator synthesizes. Links exercise
/// the write barrier and remembered set; liveness is still entirely
/// root-driven (every link is severed when either endpoint dies), so the
/// oracle's live set stays exact on both sides.
enum class LinkMode {
  /// No pointer stores at all (roots only).
  None,
  /// Older objects are given pointers to newer ones: forward-in-time
  /// stores, the remembered-set-exercising direction.
  Forward,
  /// Newer objects are given pointers to older ones: backward-in-time
  /// stores, which the barrier must ignore.
  Backward,
};

const char *linkModeName(LinkMode Mode);

/// One lockstep run's configuration.
struct LockstepConfig {
  /// Policy under test: "full", "fixed1", "fixed4", "feedmed", "dtbfm",
  /// "dtbmem", "minormajor<p>".
  std::string PolicyName = "full";
  /// Constraint parameters (Trace_max / Mem_max) for both instances.
  core::PolicyConfig Policy;
  /// Scavenge trigger interval (paper: 1 MB). Applied to the simulator;
  /// the runtime is collected manually at the same clocks.
  uint64_t TriggerBytes = 1'000'000;
  /// Which runtime scavenging strategy to check.
  runtime::CollectorKind Collector = runtime::CollectorKind::MarkSweep;
  /// Synthesized pointer traffic.
  LinkMode Links = LinkMode::Forward;
  /// Seed for the (deterministic) link-placement RNG.
  uint64_t LinkSeed = 1;
  /// Probability that a new object participates in a link at all.
  double LinkProbability = 0.5;
  /// Trace lanes for the runtime heap (HeapConfig::TraceThreads): 1 =
  /// serial. The comparison must come out identical for every value — the
  /// parallel trace is deterministic by design — so running the grid at
  /// several lane counts is itself a conformance statement.
  unsigned TraceThreads = 1;
  /// Trace quantum budget for the runtime heap
  /// (HeapConfig::ScavengeBudgetBytes): 0 = monolithic trace. Like lanes,
  /// any value must leave the lockstep comparison unchanged.
  uint64_t ScavengeBudgetBytes = 0;
  /// Replay through N registered MutatorContexts instead of the direct
  /// Heap API: the driver thread round-robins allocations across the
  /// contexts (record I goes through context I mod N) and routes each
  /// pointer store through the context that allocated the source object.
  /// 0 = direct path. Contexts driven single-threaded reproduce the
  /// direct path's clock, remembered set, and scavenge records exactly,
  /// so every lockstep comparison must agree for any N — that is the
  /// determinism contract of the multi-mutator runtime.
  unsigned Mutators = 0;
  ToleranceModel Tolerance;
  /// Abort-equivalence probe (mark-sweep only): before every runtime-side
  /// collection the harness opens an incremental cycle, runs a few
  /// bounded quanta while gray work remains, then aborts it. An aborted
  /// cycle must be observably equivalent to one that never started, so
  /// every lockstep comparison — boundary, traced bytes, per-epoch
  /// demographics — must still agree exactly.
  bool AbortProbe = false;
  /// Stop comparing (and stop the simulation) after this many divergences;
  /// the first one already tells the story and shrinking replays are much
  /// cheaper when they abort early.
  size_t MaxDivergences = 8;

  /// Test-only fault: from 1-based scavenge MutateFromScavenge onward the
  /// *runtime-side* policy's boundary is advanced by MutateDeltaBytes
  /// (clamped to the current clock), emulating an implementation bug. 0
  /// disables. The acceptance self-test seeds this and expects the
  /// harness to catch and shrink it.
  uint64_t MutateFromScavenge = 0;
  uint64_t MutateDeltaBytes = 0;
};

/// One observed disagreement between the two sides.
struct Divergence {
  /// 1-based scavenge index, or 0 for end-of-run summary fields.
  uint64_t ScavengeIndex = 0;
  /// Field that disagreed ("boundary", "traced-bytes", "epoch-demo[3]",
  /// "mem-mean", ...).
  std::string Field;
  /// Whether the field is held to exact equality or the bounded tolerance.
  bool Logical = true;
  std::string SimValue;
  std::string RuntimeValue;

  /// "scavenge 4: boundary: sim=123 runtime=456".
  std::string describe() const;
};

/// One side's per-scavenge row, kept for artifacts and reporting.
struct ScavengeRow {
  core::ScavengeRecord Record;
  std::string Rule;
  std::string DegradationNote;
  double PauseMillis = 0.0;
};

/// Everything one lockstep run produced.
struct LockstepResult {
  std::vector<Divergence> Divergences;
  /// True when the run was cut short at MaxDivergences.
  bool Aborted = false;

  std::vector<ScavengeRow> Sim;
  std::vector<ScavengeRow> Runtime;

  /// End-of-run summaries (sim side from SimulationResult, runtime side
  /// mirrored through the identical TimeWeightedStats/SampleSet pipeline).
  double SimMemMeanBytes = 0.0, RuntimeMemMeanBytes = 0.0;
  uint64_t SimMemMaxBytes = 0, RuntimeMemMaxBytes = 0;
  double SimPauseMedianMs = 0.0, RuntimePauseMedianMs = 0.0;
  double SimPause90Ms = 0.0, RuntimePause90Ms = 0.0;

  bool agreed() const { return Divergences.empty(); }
};

/// Smallest trace-record size the replay mutator can realize as a real
/// object: the object header plus one pointer slot when \p Links needs one.
uint32_t minReplayableSize(LinkMode Links);

/// True when every record of \p T is at least minReplayableSize and small
/// enough for runtime::Heap::allocate.
bool isReplayable(const trace::Trace &T, LinkMode Links);

/// Rewrites \p T so the replay mutator can realize it: object sizes are
/// clamped into the replayable range and births/deaths are rebuilt on the
/// rescaled clock (per-object lifetimes in bytes-of-subsequent-allocation
/// are preserved). A replayable trace comes back unchanged.
trace::Trace normalizeForReplay(const trace::Trace &T, LinkMode Links);

/// Replays \p T through both implementations in lockstep and returns the
/// comparison. \p T must be replayable (fatal error otherwise — call
/// normalizeForReplay first). Deterministic in (T, Config).
LockstepResult runLockstep(const trace::Trace &T,
                           const LockstepConfig &Config);

/// Shrinker bounds.
struct ShrinkOptions {
  /// Replay budget: the shrinker never runs the lockstep more than this
  /// many times (each replay costs a full run of the reproducer-so-far).
  size_t MaxReplays = 500;
};

/// The shrinker's product: the smallest still-diverging trace it found.
struct ShrinkResult {
  trace::Trace Reproducer;
  /// Lockstep result of the final reproducer (still diverging).
  LockstepResult Final;
  size_t OriginalRecords = 0;
  size_t Replays = 0;
};

/// Delta-debugs a diverging trace to a minimal reproducer: ddmin over
/// record spans (drop allocation spans), then per-object size halving
/// (clamped to the replayable minimum), then tail truncation, looping
/// until a fixpoint or the replay budget runs out. \p T must already
/// diverge under \p Config (fatal error otherwise). Every candidate is
/// rebuilt as a well-formed trace (clocks recomputed, lifetimes
/// preserved), so the reproducer always satisfies Trace::verify().
ShrinkResult shrinkDivergence(const trace::Trace &T,
                              const LockstepConfig &Config,
                              const ShrinkOptions &Options = {});

/// Files written for one divergence.
struct ArtifactPaths {
  std::string Dir;
  std::string TracePath;      // reproducer.trace.txt (text trace format)
  std::string ReportPath;     // report.json
  std::string SimCsvPath;     // sim.scavenges.csv
  std::string RuntimeCsvPath; // runtime.scavenges.csv
};

/// Persists a divergence under \p Dir/\p CaseName: the reproducer trace in
/// the text trace format (replayable via trace::readTraceFile), a JSON
/// report of config, divergences and end-of-run summaries, and one
/// per-scavenge CSV per side. Creates directories as needed. Returns
/// std::nullopt and fills \p Error on I/O failure.
std::optional<ArtifactPaths>
writeDivergenceArtifacts(const std::string &Dir, const std::string &CaseName,
                         const trace::Trace &Reproducer,
                         const LockstepConfig &Config,
                         const LockstepResult &Result,
                         std::string *Error = nullptr);

} // namespace conformance
} // namespace dtb

#endif // DTB_CONFORMANCE_CONFORMANCE_H
