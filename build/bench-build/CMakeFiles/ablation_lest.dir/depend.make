# Empty dependencies file for ablation_lest.
# This may be replaced when dependencies are built.
