# Empty compiler generated dependencies file for runtime_collector_test.
# This may be replaced when dependencies are built.
