//===- report/SeedSweep.h - Multi-seed robustness sweeps -------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates each collector on one trace per program. Our
/// traces are synthetic, so we can ask a question the paper could not:
/// do the results depend on the random draw? This harness re-generates
/// each workload under many seeds, re-runs the collectors, and reports
/// per-metric mean/stddev — bench/seed_sensitivity uses it to show that
/// every qualitative conclusion survives resampling.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_REPORT_SEEDSWEEP_H
#define DTB_REPORT_SEEDSWEEP_H

#include "report/Experiments.h"
#include "support/Statistics.h"

#include <string>
#include <vector>

namespace dtb {
namespace report {

/// Per-(policy, workload) metric distributions across seeds.
struct SeedCell {
  std::string Policy;
  std::string Workload;
  RunningStats MemMeanKB;
  RunningStats MemMaxKB;
  RunningStats MedianPauseMs;
  RunningStats Pause90Ms;
  RunningStats TracedKB;
};

/// Result of a sweep: one cell per (policy, workload) pair, in
/// policy-major order, plus per-workload LIVE distributions.
struct SeedSweepResult {
  std::vector<SeedCell> Cells;
  std::vector<std::pair<std::string, RunningStats>> LiveMeanKB;

  /// Finds a cell; fatal if absent.
  const SeedCell &cell(const std::string &Policy,
                       const std::string &Workload) const;
};

/// Runs \p PolicyNames x \p Workloads under \p Config for \p NumSeeds
/// seeds (the spec's own seed, then derived ones). The (workload, seed)
/// tasks fan out over Config.Threads workers; results are bit-identical
/// to a serial run for any thread count.
SeedSweepResult runSeedSweep(
    const std::vector<workload::WorkloadSpec> &Workloads,
    const std::vector<std::string> &PolicyNames,
    const ExperimentConfig &Config, unsigned NumSeeds);

} // namespace report
} // namespace dtb

#endif // DTB_REPORT_SEEDSWEEP_H
