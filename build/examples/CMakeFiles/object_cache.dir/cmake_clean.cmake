file(REMOVE_RECURSE
  "CMakeFiles/object_cache.dir/object_cache.cpp.o"
  "CMakeFiles/object_cache.dir/object_cache.cpp.o.d"
  "object_cache"
  "object_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
