//===- core/Policies.h - The paper's six collector policies ----*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete threatening-boundary policies, one per row of the paper's
/// Table 1, plus the factory used by tools:
///
///   FULL     TB_n = 0
///   FIXEDk   TB_n = t_{n-k}                      (k = 1, 4 in the paper)
///   FEEDMED  advance boundary just enough when over the pause budget
///   DTBFM    FEEDMED when over budget; otherwise widen the threatened
///            window by Trace_max / Trace_{n-1}   (pause-constrained DTB)
///   DTBMEM   youngest boundary whose predicted garbage fits in Mem_max
///            (memory-constrained DTB)
///
/// Every policy performs a full collection the first time it runs (TB = 0),
/// as the paper specifies for the DTB collectors and as FIXEDk implies via
/// t_{k<=0} = 0.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_CORE_POLICIES_H
#define DTB_CORE_POLICIES_H

#include "core/BoundaryPolicy.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dtb {
namespace core {

/// FULL: trace everything, every time. Memory-optimal, CPU-pessimal.
class FullPolicy final : public BoundaryPolicy {
public:
  std::string name() const override { return "full"; }
  AllocClock chooseBoundary(const BoundaryRequest &Request) override;
};

/// FIXEDk: the classic generational policy — threaten everything allocated
/// since the k-th previous scavenge (objects are effectively tenured after
/// surviving k collections).
class FixedAgePolicy final : public BoundaryPolicy {
public:
  /// \p Generations is the paper's k; must be >= 1.
  explicit FixedAgePolicy(unsigned Generations);

  std::string name() const override;
  AllocClock chooseBoundary(const BoundaryRequest &Request) override;

  unsigned generations() const { return Generations; }

private:
  unsigned Generations;
};

/// FEEDMED: Ungar & Jackson's Feedback Mediation. When the previous pause
/// exceeded the budget, advance the boundary (promote objects) just far
/// enough that the predicted trace fits; otherwise leave it where it is.
/// The boundary never moves back in time, so tenured garbage is permanent.
class FeedbackMediationPolicy final : public BoundaryPolicy {
public:
  /// \p TraceMaxBytes is the pause budget expressed in bytes traced.
  explicit FeedbackMediationPolicy(uint64_t TraceMaxBytes);

  std::string name() const override { return "feedmed"; }
  AllocClock chooseBoundary(const BoundaryRequest &Request) override;

  uint64_t traceMaxBytes() const { return TraceMaxBytes; }

private:
  uint64_t TraceMaxBytes;
};

/// DTBFM: the paper's pause-time-constrained dynamic-threatening-boundary
/// collector. Over budget: react exactly like FEEDMED. Under budget: move
/// the boundary *back* in time, widening the threatened window by the
/// ratio Trace_max / Trace_{n-1}, so the median pause converges on the
/// budget and tenured garbage is reclaimed (objects are demoted).
class DtbPausePolicy final : public BoundaryPolicy {
public:
  explicit DtbPausePolicy(uint64_t TraceMaxBytes);

  std::string name() const override { return "dtbfm"; }
  AllocClock chooseBoundary(const BoundaryRequest &Request) override;

  uint64_t traceMaxBytes() const { return TraceMaxBytes; }

private:
  uint64_t TraceMaxBytes;
};

/// How DTBMEM estimates the current live bytes L_{n-1} (which it cannot
/// know exactly without a full collection). The paper uses the average of
/// S_{n-1} and Trace_{n-1}; the alternatives exist for the ablation bench.
enum class LiveEstimateKind {
  /// (S_{n-1} + Trace_{n-1}) / 2 — the paper's estimator.
  AverageOfSurvivedAndTraced,
  /// S_{n-1}: an overestimate (includes tenured garbage).
  Survived,
  /// Trace_{n-1}: an underestimate (misses live immune bytes).
  Traced,
  /// Exact live bytes from the demographics oracle (simulator only).
  Oracle,
};

/// DTBMEM: the paper's memory-constrained dynamic-threatening-boundary
/// collector. Chooses the youngest boundary whose predicted tenured
/// garbage keeps total memory within Mem_max, assuming reclaimable garbage
/// decreases linearly as the boundary moves back in time; clamps to
/// t_{n-1} so every object is traced at least once.
class DtbMemoryPolicy final : public BoundaryPolicy {
public:
  explicit DtbMemoryPolicy(
      uint64_t MemMaxBytes,
      LiveEstimateKind Estimator = LiveEstimateKind::AverageOfSurvivedAndTraced);

  std::string name() const override;
  AllocClock chooseBoundary(const BoundaryRequest &Request) override;

  uint64_t memMaxBytes() const { return MemMaxBytes; }
  LiveEstimateKind estimator() const { return Estimator; }

private:
  uint64_t MemMaxBytes;
  LiveEstimateKind Estimator;
};

/// The classic minor/major generational cycle, expressed as a boundary
/// policy (the paper's §3 observation that "successively older
/// generations are scavenged less frequently"): every scavenge threatens
/// the newest interval (a minor collection), and every \p Period-th
/// scavenge threatens everything (a major collection). Unlike FIXEDk it
/// bounds tenured garbage's lifetime without feedback — the fixed-cycle
/// baseline adaptive policies are measured against.
class MinorMajorPolicy final : public BoundaryPolicy {
public:
  /// \p Period >= 2: scavenges 1, Period, 2*Period, ... are major.
  explicit MinorMajorPolicy(unsigned Period);

  std::string name() const override;
  AllocClock chooseBoundary(const BoundaryRequest &Request) override;

  unsigned period() const { return Period; }

private:
  unsigned Period;
};

/// Parameters consumed by the policy factory.
struct PolicyConfig {
  /// Pause budget in bytes traced (paper default: 50,000 = 100 ms).
  uint64_t TraceMaxBytes = 50'000;
  /// Memory budget in bytes (paper default: 3,000,000).
  uint64_t MemMaxBytes = 3'000'000;
};

/// Creates a policy from a stable name: "full", "fixed<k>", "feedmed",
/// "dtbfm", "dtbmem", "minormajor<p>", and the clairvoyant baselines
/// "opt-pause" / "opt-mem" (core/OptimalPolicies.h). Returns nullptr for
/// unknown names.
std::unique_ptr<BoundaryPolicy> createPolicy(const std::string &Name,
                                             const PolicyConfig &Config);

/// The six collector names of the paper's evaluation, in table order.
const std::vector<std::string> &paperPolicyNames();

} // namespace core
} // namespace dtb

#endif // DTB_CORE_POLICIES_H
