//===- tests/policy_test.cpp ----------------------------------------------==//
//
// Unit tests for every threatening-boundary policy of the paper's Table 1,
// on hand-built scavenge histories with scripted demographics. Each test
// pins down one clause of the published formulas, including the clamps and
// first-collection behaviour.
//
//===----------------------------------------------------------------------===//

#include "core/Policies.h"

#include "core/OptimalPolicies.h"

#include <gtest/gtest.h>

#include <map>

using namespace dtb;
using namespace dtb::core;

namespace {

/// Demographics answering from a scripted table: liveBytesBornAfter(B) is
/// the value of the largest scripted key <= B (steps down as B grows).
class ScriptedDemographics final : public Demographics {
public:
  ScriptedDemographics(
      std::initializer_list<std::pair<const AllocClock, uint64_t>> Entries)
      : Table(Entries) {}

  uint64_t liveBytesBornAfter(AllocClock Boundary) const override {
    auto It = Table.upper_bound(Boundary);
    if (It == Table.begin())
      return Table.empty() ? 0 : Table.begin()->second;
    return std::prev(It)->second;
  }

private:
  std::map<AllocClock, uint64_t> Table;
};

/// Builds a request for scavenge n at time Now over the given history.
BoundaryRequest makeRequest(const ScavengeHistory &History, AllocClock Now,
                            uint64_t MemBytes, const Demographics &Demo) {
  BoundaryRequest Request;
  Request.Index = History.size() + 1;
  Request.Now = Now;
  Request.MemBytes = MemBytes;
  Request.History = &History;
  Request.Demo = &Demo;
  return Request;
}

/// Appends a scavenge record with the fields the policies read.
void addScavenge(ScavengeHistory &History, AllocClock Time,
                 AllocClock Boundary, uint64_t Traced, uint64_t Survived,
                 uint64_t MemBefore) {
  ScavengeRecord R;
  R.Index = History.size() + 1;
  R.Time = Time;
  R.Boundary = Boundary;
  R.TracedBytes = Traced;
  R.SurvivedBytes = Survived;
  R.MemBeforeBytes = MemBefore;
  R.ReclaimedBytes = MemBefore - Survived;
  History.append(R);
}

const ScriptedDemographics EmptyDemo({{0, 0}});

} // namespace

//===----------------------------------------------------------------------===//
// FULL
//===----------------------------------------------------------------------===//

TEST(FullPolicyTest, AlwaysZero) {
  FullPolicy P;
  ScavengeHistory History;
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 1'000'000, 500, EmptyDemo)),
            0u);
  addScavenge(History, 1'000'000, 0, 100, 100, 200);
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 2'000'000, 500, EmptyDemo)),
            0u);
  EXPECT_EQ(P.name(), "full");
}

//===----------------------------------------------------------------------===//
// FIXEDk
//===----------------------------------------------------------------------===//

TEST(FixedAgePolicyTest, Fixed1TracksPreviousScavengeTime) {
  FixedAgePolicy P(1);
  ScavengeHistory History;
  // First scavenge: t_0 = 0 -> full collection.
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 1'000'000, 0, EmptyDemo)),
            0u);
  addScavenge(History, 1'000'000, 0, 0, 0, 0);
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 2'000'000, 0, EmptyDemo)),
            1'000'000u);
  addScavenge(History, 2'000'000, 1'000'000, 0, 0, 0);
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 3'000'000, 0, EmptyDemo)),
            2'000'000u);
  EXPECT_EQ(P.name(), "fixed1");
}

TEST(FixedAgePolicyTest, Fixed4FullUntilFourScavenges) {
  FixedAgePolicy P(4);
  ScavengeHistory History;
  for (int N = 1; N <= 4; ++N) {
    AllocClock Now = static_cast<AllocClock>(N) * 1'000'000;
    // n - 4 <= 0 until the 5th scavenge: boundary 0.
    EXPECT_EQ(P.chooseBoundary(makeRequest(History, Now, 0, EmptyDemo)), 0u)
        << "scavenge " << N;
    addScavenge(History, Now, 0, 0, 0, 0);
  }
  // Fifth scavenge: TB = t_1.
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 5'000'000, 0, EmptyDemo)),
            1'000'000u);
  EXPECT_EQ(P.name(), "fixed4");
}

//===----------------------------------------------------------------------===//
// FEEDMED
//===----------------------------------------------------------------------===//

TEST(FeedbackMediationTest, FirstScavengeIsFull) {
  FeedbackMediationPolicy P(50'000);
  ScavengeHistory History;
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 1'000'000, 0, EmptyDemo)),
            0u);
}

TEST(FeedbackMediationTest, KeepsBoundaryWhenWithinBudget) {
  FeedbackMediationPolicy P(50'000);
  ScavengeHistory History;
  addScavenge(History, 1'000'000, 0, /*Traced=*/40'000, 100, 200);
  addScavenge(History, 2'000'000, /*Boundary=*/700'000, /*Traced=*/30'000,
              100, 200);
  // Last trace (30 KB) <= budget: boundary stays at 700,000.
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 3'000'000, 0, EmptyDemo)),
            700'000u);
}

TEST(FeedbackMediationTest, AdvancesToLeastFittingCandidateWhenOver) {
  FeedbackMediationPolicy P(50'000);
  ScavengeHistory History;
  addScavenge(History, 1'000'000, 0, 40'000, 100, 200);
  addScavenge(History, 2'000'000, 0, 40'000, 100, 200);
  addScavenge(History, 3'000'000, /*Boundary=*/1'000'000,
              /*Traced=*/80'000, 100, 200);

  // Over budget. Candidates (>= previous boundary 1,000,000): t_1, t_2,
  // t_3. Predicted traces: after t_1 -> 80K (too big), after t_2 -> 45K
  // (fits). The least fitting candidate is t_2.
  ScriptedDemographics Demo(
      {{0, 120'000}, {1'000'000, 80'000}, {2'000'000, 45'000},
       {3'000'000, 10'000}});
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 4'000'000, 0, Demo)),
            2'000'000u);
}

TEST(FeedbackMediationTest, NeverMovesBoundaryBackward) {
  FeedbackMediationPolicy P(50'000);
  ScavengeHistory History;
  addScavenge(History, 1'000'000, 0, 40'000, 100, 200);
  addScavenge(History, 2'000'000, /*Boundary=*/1'500'000,
              /*Traced=*/80'000, 100, 200);
  // t_1 = 1,000,000 would fit, but it is before the previous boundary
  // (1,500,000), so it is not a candidate; t_2 = 2,000,000 is chosen.
  ScriptedDemographics Demo({{0, 80'000}, {1'000'000, 10'000}});
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 3'000'000, 0, Demo)),
            2'000'000u);
}

TEST(FeedbackMediationTest, FallsBackToNewestIntervalWhenNothingFits) {
  FeedbackMediationPolicy P(50'000);
  ScavengeHistory History;
  addScavenge(History, 1'000'000, 0, 40'000, 100, 200);
  addScavenge(History, 2'000'000, 0, 80'000, 100, 200);
  // Even the newest candidate t_2 predicts 70K > 50K: fall back to t_2
  // (trace the newest interval only).
  ScriptedDemographics Demo({{0, 90'000}});
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 3'000'000, 0, Demo)),
            2'000'000u);
}

TEST(FeedbackMediationTest, CandidateZeroAllowsReturnToFull) {
  FeedbackMediationPolicy P(50'000);
  ScavengeHistory History;
  addScavenge(History, 1'000'000, 0, 80'000, 100, 200);
  // Previous boundary 0; if even a full collection fits the budget, t_0=0
  // is the least candidate.
  ScriptedDemographics Demo({{0, 30'000}});
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 2'000'000, 0, Demo)), 0u);
}

//===----------------------------------------------------------------------===//
// DTBFM
//===----------------------------------------------------------------------===//

TEST(DtbPauseTest, FirstScavengeIsFull) {
  DtbPausePolicy P(50'000);
  ScavengeHistory History;
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 1'000'000, 0, EmptyDemo)),
            0u);
  EXPECT_EQ(P.name(), "dtbfm");
}

TEST(DtbPauseTest, WidensWindowProportionallyWhenUnderBudget) {
  DtbPausePolicy P(50'000);
  ScavengeHistory History;
  // Previous: t_1 = 2,000,000, TB_1 = 1,000,000, traced 25,000 (half the
  // budget). Window doubles: TB_2 = t_2 - (t_1 - TB_1) * 50/25
  //                               = 3,000,000 - 2,000,000 = 1,000,000.
  addScavenge(History, 2'000'000, 1'000'000, 25'000, 100, 200);
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 3'000'000, 0, EmptyDemo)),
            1'000'000u);
}

TEST(DtbPauseTest, WindowClampedToPreviousScavengeTime) {
  DtbPausePolicy P(50'000);
  ScavengeHistory History;
  // Tiny previous window and a trace just under budget would place the
  // boundary after t_1; it must clamp to t_1 so new objects are traced at
  // least once.
  addScavenge(History, 2'000'000, 1'990'000, 49'000, 100, 200);
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 3'000'000, 0, EmptyDemo)),
            2'000'000u);
}

TEST(DtbPauseTest, LargeRatioClampsToFullCollection) {
  DtbPausePolicy P(50'000);
  ScavengeHistory History;
  // Traced only 1 byte within a 1,000,000-byte window: the widened window
  // exceeds t_n entirely -> full collection.
  addScavenge(History, 2'000'000, 1'000'000, 1, 100, 200);
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 3'000'000, 0, EmptyDemo)),
            0u);
}

TEST(DtbPauseTest, ZeroTraceFallsBackToFull) {
  DtbPausePolicy P(50'000);
  ScavengeHistory History;
  addScavenge(History, 2'000'000, 1'000'000, 0, 100, 200);
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 3'000'000, 0, EmptyDemo)),
            0u);
}

TEST(DtbPauseTest, UsesFeedbackMediationWhenOverBudget) {
  DtbPausePolicy P(50'000);
  ScavengeHistory History;
  addScavenge(History, 1'000'000, 0, 40'000, 100, 200);
  addScavenge(History, 2'000'000, /*Boundary=*/1'000'000,
              /*Traced=*/80'000, 100, 200);
  ScriptedDemographics Demo(
      {{0, 90'000}, {1'000'000, 60'000}, {2'000'000, 20'000}});
  // Over budget -> FEEDMED search: t_2 is the least candidate that fits.
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 3'000'000, 0, Demo)),
            2'000'000u);
}

//===----------------------------------------------------------------------===//
// DTBMEM
//===----------------------------------------------------------------------===//

TEST(DtbMemoryTest, FirstScavengeIsFull) {
  DtbMemoryPolicy P(3'000'000);
  ScavengeHistory History;
  EXPECT_EQ(
      P.chooseBoundary(makeRequest(History, 1'000'000, 500'000, EmptyDemo)),
      0u);
  EXPECT_EQ(P.name(), "dtbmem");
}

TEST(DtbMemoryTest, FormulaHandComputed) {
  DtbMemoryPolicy P(3'000'000);
  ScavengeHistory History;
  // Previous: S_1 = 1,200,000, Trace_1 = 800,000 -> L_est = 1,000,000.
  // Headroom = 3,000,000 - 1,000,000 = 2,000,000. Mem_2 = 4,000,000,
  // t_2 = 8,000,000: TB = 8,000,000 * 2/4 = 4,000,000, clamped to
  // t_1 = 5,000,000 -> stays 4,000,000.
  addScavenge(History, 5'000'000, 0, /*Traced=*/800'000,
              /*Survived=*/1'200'000, /*MemBefore=*/2'000'000);
  EXPECT_EQ(P.chooseBoundary(
                makeRequest(History, 8'000'000, 4'000'000, EmptyDemo)),
            4'000'000u);
}

TEST(DtbMemoryTest, ClampsToPreviousScavengeTime) {
  DtbMemoryPolicy P(100'000'000); // Enormous budget.
  ScavengeHistory History;
  addScavenge(History, 5'000'000, 0, 500'000, 500'000, 1'000'000);
  // Unclamped formula would land far beyond t_1; every object must still
  // be traced once, so TB = t_1.
  EXPECT_EQ(P.chooseBoundary(
                makeRequest(History, 8'000'000, 1'000'000, EmptyDemo)),
            5'000'000u);
}

TEST(DtbMemoryTest, OverConstraintDegradesToFull) {
  DtbMemoryPolicy P(1'000'000);
  ScavengeHistory History;
  // L_est = 2,000,000 > budget: headroom negative -> full collection
  // (the paper's SIS behaviour).
  addScavenge(History, 5'000'000, 0, 2'000'000, 2'000'000, 3'000'000);
  EXPECT_EQ(P.chooseBoundary(
                makeRequest(History, 8'000'000, 3'000'000, EmptyDemo)),
            0u);
}

TEST(DtbMemoryTest, EstimatorVariants) {
  ScavengeHistory History;
  addScavenge(History, 5'000'000, 0, /*Traced=*/800'000,
              /*Survived=*/1'200'000, 2'000'000);
  BoundaryRequest Request =
      makeRequest(History, 8'000'000, 4'000'000, EmptyDemo);

  // Survived estimator: headroom 1.8M -> TB = 8M * 1.8/4 = 3.6M.
  DtbMemoryPolicy Survived(3'000'000, LiveEstimateKind::Survived);
  EXPECT_EQ(Survived.chooseBoundary(Request), 3'600'000u);
  EXPECT_EQ(Survived.name(), "dtbmem-s");

  // Traced estimator: headroom 2.2M -> TB = 8M * 2.2/4 = 4.4M.
  DtbMemoryPolicy Traced(3'000'000, LiveEstimateKind::Traced);
  EXPECT_EQ(Traced.chooseBoundary(Request), 4'400'000u);
  EXPECT_EQ(Traced.name(), "dtbmem-t");

  // Oracle estimator: live = 1.5M -> TB = 8M * 1.5/4 = 3M.
  ScriptedDemographics Oracle({{0, 1'500'000}});
  BoundaryRequest OracleRequest =
      makeRequest(History, 8'000'000, 4'000'000, Oracle);
  DtbMemoryPolicy WithOracle(3'000'000, LiveEstimateKind::Oracle);
  EXPECT_EQ(WithOracle.chooseBoundary(OracleRequest), 3'000'000u);
  EXPECT_EQ(WithOracle.name(), "dtbmem-oracle");
}

//===----------------------------------------------------------------------===//
// Graceful degradation on broken inputs
//===----------------------------------------------------------------------===//
//
// A collector must keep collecting even when a policy's inputs are
// missing or inconsistent: the policy returns an admissible boundary
// (FIXED1's t_{n-1}, or 0 with no usable history) and describes the
// fallback through BoundaryRequest::DegradationNote instead of aborting.

namespace {

/// A request with deliberately missing inputs; \p Note receives the
/// policy's degradation description.
BoundaryRequest brokenRequest(uint64_t Index, AllocClock Now,
                              std::string *Note) {
  BoundaryRequest Request;
  Request.Index = Index;
  Request.Now = Now;
  Request.MemBytes = 1'000'000;
  Request.DegradationNote = Note;
  return Request;
}

} // namespace

TEST(PolicyDegradationTest, FixedAgeWithoutHistoryFallsBackToFull) {
  FixedAgePolicy P(4);
  std::string Note;
  EXPECT_EQ(P.chooseBoundary(brokenRequest(5, 9'000'000, &Note)), 0u);
  EXPECT_FALSE(Note.empty());
}

TEST(PolicyDegradationTest, FeedmedWithoutHistoryFallsBackToFull) {
  FeedbackMediationPolicy P(50'000);
  std::string Note;
  EXPECT_EQ(P.chooseBoundary(brokenRequest(3, 9'000'000, &Note)), 0u);
  EXPECT_FALSE(Note.empty());
}

TEST(PolicyDegradationTest, FeedmedWithoutDemographicsFallsBackToFixed1) {
  FeedbackMediationPolicy P(50'000);
  ScavengeHistory History;
  addScavenge(History, 1'000'000, 0, /*Traced=*/80'000, 100, 200);
  // Over budget, so the FEEDMED search runs — but there are no
  // demographics to predict with: FIXED1's t_{n-1} is the fallback.
  std::string Note;
  BoundaryRequest Request = brokenRequest(2, 2'000'000, &Note);
  Request.History = &History;
  EXPECT_EQ(P.chooseBoundary(Request), 1'000'000u);
  EXPECT_FALSE(Note.empty());
}

TEST(PolicyDegradationTest, DtbfmWithoutHistoryFallsBackToFull) {
  DtbPausePolicy P(50'000);
  std::string Note;
  EXPECT_EQ(P.chooseBoundary(brokenRequest(3, 9'000'000, &Note)), 0u);
  EXPECT_FALSE(Note.empty());
}

TEST(PolicyDegradationTest, DtbmemWithoutHistoryFallsBackToFull) {
  DtbMemoryPolicy P(3'000'000);
  std::string Note;
  EXPECT_EQ(P.chooseBoundary(brokenRequest(3, 9'000'000, &Note)), 0u);
  EXPECT_FALSE(Note.empty());
}

TEST(PolicyDegradationTest, DtbmemInconsistentDemographicsFallsBackToFixed1) {
  DtbMemoryPolicy P(10'000'000, LiveEstimateKind::Survived);
  ScavengeHistory History;
  // "Survived" 5M bytes out of a heap that is only 3M resident: live
  // cannot exceed resident, so the demographics are corrupt and the
  // headroom arithmetic cannot be trusted.
  addScavenge(History, 5'000'000, 0, /*Traced=*/4'000'000,
              /*Survived=*/5'000'000, /*MemBefore=*/5'500'000);
  std::string Note;
  BoundaryRequest Request = brokenRequest(2, 8'000'000, &Note);
  Request.History = &History;
  Request.MemBytes = 3'000'000;
  EXPECT_EQ(P.chooseBoundary(Request), 5'000'000u); // t_1 (FIXED1).
  EXPECT_FALSE(Note.empty());
}

TEST(PolicyDegradationTest, DtbmemOracleWithoutDemoUsesPaperEstimator) {
  DtbMemoryPolicy Oracle(3'000'000, LiveEstimateKind::Oracle);
  DtbMemoryPolicy Paper(3'000'000);
  ScavengeHistory History;
  addScavenge(History, 5'000'000, 0, /*Traced=*/800'000,
              /*Survived=*/1'200'000, /*MemBefore=*/2'000'000);
  std::string Note;
  BoundaryRequest Request = brokenRequest(2, 8'000'000, &Note);
  Request.History = &History;
  Request.MemBytes = 4'000'000;
  AllocClock Chosen = Oracle.chooseBoundary(Request);
  EXPECT_FALSE(Note.empty());
  // Same answer the paper's estimator gives on the same request.
  BoundaryRequest Clean = Request;
  Clean.DegradationNote = nullptr;
  EXPECT_EQ(Chosen, Paper.chooseBoundary(Clean));
}

TEST(PolicyDegradationTest, MinorMajorWithoutHistoryFallsBackToFull) {
  MinorMajorPolicy P(4);
  std::string Note;
  // Index 2 would be a minor collection, but with no history the only
  // admissible answer is 0.
  EXPECT_EQ(P.chooseBoundary(brokenRequest(2, 9'000'000, &Note)), 0u);
  EXPECT_FALSE(Note.empty());
}

TEST(PolicyDegradationTest, OraclePoliciesWithoutInputsFallBackToFull) {
  OptimalPausePolicy Pause(50'000);
  OptimalMemoryPolicy Memory(3'000'000);
  std::string Note;
  EXPECT_EQ(Pause.chooseBoundary(brokenRequest(3, 9'000'000, &Note)), 0u);
  EXPECT_FALSE(Note.empty());
  Note.clear();
  EXPECT_EQ(Memory.chooseBoundary(brokenRequest(3, 9'000'000, &Note)), 0u);
  EXPECT_FALSE(Note.empty());
}

TEST(PolicyDegradationTest, InconsistentIndexIsClampedNotAsserted) {
  // An Index far beyond the recorded history must not walk off the end:
  // the fallback clamps to the newest recorded scavenge time.
  DtbMemoryPolicy P(3'000'000);
  ScavengeHistory History;
  std::string Note;
  BoundaryRequest Request = brokenRequest(7, 9'000'000, &Note);
  Request.History = &History; // Non-null but empty.
  EXPECT_EQ(P.chooseBoundary(Request), 0u);
  EXPECT_FALSE(Note.empty());
}

//===----------------------------------------------------------------------===//
// Factory
//===----------------------------------------------------------------------===//

TEST(PolicyFactoryTest, CreatesAllPaperPolicies) {
  PolicyConfig Config;
  for (const std::string &Name : paperPolicyNames()) {
    std::unique_ptr<BoundaryPolicy> P = createPolicy(Name, Config);
    ASSERT_NE(P, nullptr) << Name;
    EXPECT_EQ(P->name(), Name);
  }
}

TEST(PolicyFactoryTest, ParsesFixedK) {
  PolicyConfig Config;
  std::unique_ptr<BoundaryPolicy> P = createPolicy("fixed7", Config);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->name(), "fixed7");
}

TEST(PolicyFactoryTest, RejectsUnknownNames) {
  PolicyConfig Config;
  EXPECT_EQ(createPolicy("bogus", Config), nullptr);
  EXPECT_EQ(createPolicy("fixed0", Config), nullptr);
  EXPECT_EQ(createPolicy("fixedx", Config), nullptr);
  EXPECT_EQ(createPolicy("fixed", Config), nullptr);
}

TEST(PolicyFactoryTest, ConfigPlumbsThrough) {
  PolicyConfig Config;
  Config.TraceMaxBytes = 12'345;
  Config.MemMaxBytes = 67'890;
  auto FM = createPolicy("dtbfm", Config);
  auto Mem = createPolicy("dtbmem", Config);
  EXPECT_EQ(static_cast<DtbPausePolicy *>(FM.get())->traceMaxBytes(),
            12'345u);
  EXPECT_EQ(static_cast<DtbMemoryPolicy *>(Mem.get())->memMaxBytes(),
            67'890u);
}
