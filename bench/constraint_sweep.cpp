//===- bench/constraint_sweep.cpp - Constraint-tracking sweeps -----------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The paper's central claim is that the two tuning knobs map *directly*
// onto user-visible resource constraints. This bench quantifies that
// beyond the single published operating point (100 ms / 3000 KB):
//
//   * sweep Trace_max and report DTBFM's (and FEEDMED's) median pause —
//     the median should track the constraint;
//   * sweep Mem_max and report DTBMEM's maximum memory — the maximum
//     should hug the constraint until it crosses the live floor, then
//     saturate at FULL's requirement.
//
//===----------------------------------------------------------------------===//

#include "report/Experiments.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/Units.h"

#include <cstdio>

using namespace dtb;

int main(int Argc, char **Argv) {
  std::string WorkloadName = "ghost1";
  OptionParser Parser("Sweeps the pause and memory constraints to show "
                      "how closely the DTB policies track them");
  Parser.addString("workload", "Workload name", &WorkloadName);
  if (!Parser.parse(Argc, Argv))
    return 1;

  const workload::WorkloadSpec *Spec = workload::findWorkload(WorkloadName);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 WorkloadName.c_str());
    return 1;
  }
  trace::Trace T = workload::generateTrace(*Spec);

  sim::SimulatorConfig SimConfig;
  SimConfig.ProgramSeconds = Spec->ProgramSeconds;
  core::MachineModel Machine;

  // --- Pause-constraint sweep -------------------------------------------
  std::printf("Pause-constraint sweep on %s (median should track the "
              "budget):\n\n",
              Spec->DisplayName.c_str());
  Table PauseTable({"Budget (ms)", "DTBFM median", "DTBFM 90th",
                    "DTBFM mem mean (KB)", "FEEDMED median",
                    "FEEDMED mem mean (KB)"});
  for (double BudgetMs : {25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    uint64_t TraceMax = Machine.tracedBytesForPauseMillis(BudgetMs);
    core::DtbPausePolicy DtbFm(TraceMax);
    core::FeedbackMediationPolicy FeedMed(TraceMax);
    sim::SimulationResult RFm = sim::simulate(T, DtbFm, SimConfig);
    sim::SimulationResult RMed = sim::simulate(T, FeedMed, SimConfig);
    PauseTable.addRow({Table::cell(BudgetMs, 0),
                       Table::cell(RFm.PauseMillis.median(), 0),
                       Table::cell(RFm.PauseMillis.percentile90(), 0),
                       Table::cell(bytesToKB(RFm.MemMeanBytes)),
                       Table::cell(RMed.PauseMillis.median(), 0),
                       Table::cell(bytesToKB(RMed.MemMeanBytes))});
  }
  PauseTable.print(stdout);

  // --- Memory-constraint sweep ------------------------------------------
  core::FullPolicy Full;
  sim::SimulationResult FullResult = sim::simulate(T, Full, SimConfig);
  std::printf("\nMemory-constraint sweep on %s (max should hug the budget; "
              "FULL needs %.0f KB):\n\n",
              Spec->DisplayName.c_str(),
              bytesToKB(FullResult.MemMaxBytes));
  Table MemTable({"Budget (KB)", "DTBMEM max (KB)", "DTBMEM mean (KB)",
                  "Traced (KB)", "vs FIXED1 traced"});
  core::FixedAgePolicy Fixed1(1);
  sim::SimulationResult Fixed1Result = sim::simulate(T, Fixed1, SimConfig);
  for (uint64_t BudgetKB : {1000ull, 1500ull, 2000ull, 2500ull, 3000ull,
                            4000ull, 6000ull, 8000ull}) {
    core::DtbMemoryPolicy DtbMem(BudgetKB * 1000);
    sim::SimulationResult R = sim::simulate(T, DtbMem, SimConfig);
    double Ratio = Fixed1Result.TotalTracedBytes == 0
                       ? 0.0
                       : static_cast<double>(R.TotalTracedBytes) /
                             static_cast<double>(
                                 Fixed1Result.TotalTracedBytes);
    MemTable.addRow({Table::cell(BudgetKB),
                     Table::cell(bytesToKB(R.MemMaxBytes)),
                     Table::cell(bytesToKB(R.MemMeanBytes)),
                     Table::cell(bytesToKB(R.TotalTracedBytes)),
                     Table::cell(Ratio, 2) + "x"});
  }
  MemTable.print(stdout);

  std::printf("\nOver-constrained budgets (below FULL's requirement) "
              "saturate at FULL's\nmemory while tracing cost climbs; "
              "feasible budgets are met with tracing\nnear FIXED1's "
              "(ratio -> 1).\n");
  return 0;
}
