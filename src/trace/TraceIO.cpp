//===- trace/TraceIO.cpp --------------------------------------------------==//

#include "trace/TraceIO.h"

#include "support/FaultInjector.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace dtb;
using namespace dtb::trace;

namespace {

constexpr char BinaryMagic[4] = {'D', 'T', 'B', 'T'};
constexpr uint8_t BinaryVersion = 1;
constexpr const char *TextHeader = "# dtb-trace v1";

void appendVarint(std::string &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out.push_back(static_cast<char>((Value & 0x7f) | 0x80));
    Value >>= 7;
  }
  Out.push_back(static_cast<char>(Value));
}

bool readVarint(std::string_view Data, size_t &Cursor, uint64_t *Out) {
  uint64_t Value = 0;
  unsigned Shift = 0;
  while (Cursor != Data.size()) {
    uint8_t Byte = static_cast<uint8_t>(Data[Cursor++]);
    if (Shift >= 64 || (Shift == 63 && (Byte & 0x7e)))
      return false; // Overflows 64 bits.
    Value |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80)) {
      *Out = Value;
      return true;
    }
    Shift += 7;
  }
  return false; // Truncated.
}

bool fail(std::string *ErrorMessage, const char *Message) {
  if (ErrorMessage)
    *ErrorMessage = Message;
  return false;
}

} // namespace

std::string dtb::trace::serializeBinary(const Trace &T) {
  std::string Out;
  Out.append(BinaryMagic, sizeof(BinaryMagic));
  Out.push_back(static_cast<char>(BinaryVersion));
  appendVarint(Out, T.numObjects());
  for (const AllocationRecord &R : T.records()) {
    appendVarint(Out, R.Size);
    // 0 encodes an immortal object; otherwise death - birth + 1 (deaths may
    // coincide with births, so the +1 keeps the encoding unambiguous).
    appendVarint(Out, R.Death == NeverDies ? 0 : R.Death - R.Birth + 1);
  }
  return Out;
}

std::optional<Trace>
dtb::trace::deserializeBinary(std::string_view Data,
                              std::string *ErrorMessage) {
  if (Data.size() < sizeof(BinaryMagic) + 1 ||
      std::memcmp(Data.data(), BinaryMagic, sizeof(BinaryMagic)) != 0) {
    fail(ErrorMessage, "not a dtb binary trace (bad magic)");
    return std::nullopt;
  }
  if (static_cast<uint8_t>(Data[4]) != BinaryVersion) {
    fail(ErrorMessage, "unsupported binary trace version");
    return std::nullopt;
  }

  size_t Cursor = 5;
  uint64_t Count = 0;
  if (!readVarint(Data, Cursor, &Count)) {
    fail(ErrorMessage, "truncated object count");
    return std::nullopt;
  }

  // Each record needs at least two bytes of input (two one-byte varints),
  // so a declared count the remaining data cannot possibly hold is a
  // truncated or corrupt trace; reject it before the loop so a hostile
  // header can neither demand an exabyte reservation nor spin through
  // billions of guaranteed-failing iterations.
  if (Count > (Data.size() - Cursor) / 2) {
    fail(ErrorMessage, "declared record count exceeds input (truncated)");
    return std::nullopt;
  }

  std::vector<AllocationRecord> Records;
  Records.reserve(Count);
  AllocClock Clock = 0;
  for (uint64_t I = 0; I != Count; ++I) {
    uint64_t Size = 0, DeathCode = 0;
    if (!readVarint(Data, Cursor, &Size) ||
        !readVarint(Data, Cursor, &DeathCode)) {
      fail(ErrorMessage, "truncated record");
      return std::nullopt;
    }
    if (Size == 0 || Size > UINT32_MAX) {
      fail(ErrorMessage, "record has invalid size");
      return std::nullopt;
    }
    Clock += Size;
    AllocationRecord R;
    R.Birth = Clock;
    R.Size = static_cast<uint32_t>(Size);
    R.Death = DeathCode == 0 ? NeverDies : Clock + (DeathCode - 1);
    Records.push_back(R);
  }
  if (Cursor != Data.size()) {
    fail(ErrorMessage, "trailing bytes after final record");
    return std::nullopt;
  }
  return Trace(std::move(Records));
}

RecoveredTrace dtb::trace::recoverBinary(std::string_view Data) {
  RecoveredTrace Result;

  // Locate the header. A damaged prefix is skipped up to the first magic
  // occurrence; with no magic anywhere nothing can be salvaged, because
  // the record stream cannot be told apart from noise.
  size_t MagicAt =
      Data.find(std::string_view(BinaryMagic, sizeof(BinaryMagic)));
  if (MagicAt == std::string_view::npos) {
    Result.BytesSkipped = Data.size();
    return Result;
  }
  Result.BytesSkipped += MagicAt;
  size_t Cursor = MagicAt + sizeof(BinaryMagic);
  bool VersionOk = Cursor < Data.size() &&
                   static_cast<uint8_t>(Data[Cursor]) == BinaryVersion;
  if (Cursor < Data.size()) {
    ++Cursor;
    if (!VersionOk)
      ++Result.BytesSkipped;
  }

  // The declared count is advisory during recovery: parse it so a clean
  // trace round-trips with zero skips, but salvage to the end of the
  // input regardless of what it claims. An implausible count (more
  // records than the remaining bytes could encode — the truncation
  // signature) still consumes its bytes as header, keeping the record
  // stream aligned; only an undecodable count is fed back into record
  // resynchronization below.
  uint64_t DeclaredCount = 0;
  size_t CountStart = Cursor;
  bool CountParsed = readVarint(Data, Cursor, &DeclaredCount);
  bool CountOk =
      CountParsed && DeclaredCount <= (Data.size() - Cursor) / 2;
  if (!CountParsed)
    Cursor = CountStart;
  Result.HeaderIntact = MagicAt == 0 && VersionOk && CountOk;

  std::vector<AllocationRecord> Records;
  AllocClock Clock = 0;
  while (Cursor < Data.size()) {
    size_t Save = Cursor;
    uint64_t Size = 0, DeathCode = 0;
    // A record is accepted only if both varints decode, the size is legal,
    // and the death clock cannot overflow past the NeverDies sentinel —
    // the recovered trace must pass Trace::verify unconditionally.
    bool Ok = readVarint(Data, Cursor, &Size) && Size != 0 &&
              Size <= UINT32_MAX && readVarint(Data, Cursor, &DeathCode) &&
              (DeathCode == 0 || DeathCode - 1 <= NeverDies - 1 - Clock - Size);
    if (!Ok) {
      Cursor = Save + 1;
      ++Result.BytesSkipped;
      continue;
    }
    Clock += Size;
    AllocationRecord R;
    R.Birth = Clock;
    R.Size = static_cast<uint32_t>(Size);
    R.Death = DeathCode == 0 ? NeverDies : Clock + (DeathCode - 1);
    Records.push_back(R);
  }
  Result.RecordsRecovered = Records.size();
  Result.T = Trace(std::move(Records));
  return Result;
}

std::string dtb::trace::serializeText(const Trace &T) {
  std::string Out(TextHeader);
  Out.push_back('\n');
  char Line[64];
  for (const AllocationRecord &R : T.records()) {
    if (R.Death == NeverDies)
      std::snprintf(Line, sizeof(Line), "%" PRIu32 " -\n", R.Size);
    else
      std::snprintf(Line, sizeof(Line), "%" PRIu32 " %" PRIu64 "\n", R.Size,
                    R.Death);
    Out += Line;
  }
  return Out;
}

std::optional<Trace> dtb::trace::deserializeText(std::string_view Data,
                                                 std::string *ErrorMessage) {
  size_t Pos = 0;
  auto nextLine = [&]() -> std::optional<std::string_view> {
    if (Pos >= Data.size())
      return std::nullopt;
    size_t End = Data.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Data.size();
    std::string_view Line = Data.substr(Pos, End - Pos);
    Pos = End + 1;
    return Line;
  };

  std::optional<std::string_view> Header = nextLine();
  if (!Header || *Header != TextHeader) {
    fail(ErrorMessage, "missing '# dtb-trace v1' header");
    return std::nullopt;
  }

  std::vector<AllocationRecord> Records;
  AllocClock Clock = 0;
  while (std::optional<std::string_view> Line = nextLine()) {
    if (Line->empty() || Line->front() == '#')
      continue;
    std::string Copy(*Line);
    char DeathText[32];
    unsigned long long Size = 0;
    if (std::sscanf(Copy.c_str(), "%llu %31s", &Size, DeathText) != 2 ||
        Size == 0 || Size > UINT32_MAX) {
      fail(ErrorMessage, "malformed trace line");
      return std::nullopt;
    }
    Clock += Size;
    AllocationRecord R;
    R.Birth = Clock;
    R.Size = static_cast<uint32_t>(Size);
    if (std::strcmp(DeathText, "-") == 0) {
      R.Death = NeverDies;
    } else {
      char *End = nullptr;
      unsigned long long Death = std::strtoull(DeathText, &End, 10);
      if (*End != '\0' || Death < Clock) {
        fail(ErrorMessage, "malformed or premature death clock");
        return std::nullopt;
      }
      R.Death = Death;
    }
    Records.push_back(R);
  }
  return Trace(std::move(Records));
}

bool dtb::trace::writeTraceFile(const Trace &T, const std::string &Path) {
  if (faultRequestedAt(FaultSite::TraceIO))
    return false;
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  std::string Data = serializeBinary(T);
  size_t Written = std::fwrite(Data.data(), 1, Data.size(), File);
  bool Ok = Written == Data.size() && std::fclose(File) == 0;
  if (Written != Data.size())
    std::fclose(File);
  return Ok;
}

std::optional<Trace> dtb::trace::readTraceFile(const std::string &Path,
                                               std::string *ErrorMessage) {
  if (faultRequestedAt(FaultSite::TraceIO)) {
    fail(ErrorMessage, "injected trace I/O fault");
    return std::nullopt;
  }
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    fail(ErrorMessage, "cannot open trace file");
    return std::nullopt;
  }
  std::string Data;
  char Buffer[1 << 16];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Data.append(Buffer, Read);
  std::fclose(File);

  if (Data.size() >= 4 && std::memcmp(Data.data(), BinaryMagic, 4) == 0)
    return deserializeBinary(Data, ErrorMessage);
  return deserializeText(Data, ErrorMessage);
}
