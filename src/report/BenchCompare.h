//===- report/BenchCompare.h - BENCH record regression diff -----*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diffs two BENCH records (baseline vs. candidate) metric by metric and
/// decides pass/fail, so perf regressions gate CI instead of vanishing
/// silently:
///
///  * exact metrics are deterministic — any change is real. Changes in the
///    worse direction (per LowerIsBetter) are regressions; improvements
///    pass but stay visible so the baseline gets refreshed.
///  * wall metrics are noisy — the candidate's median must move beyond a
///    noise threshold of max(RelThreshold * |baseline median|,
///    MadMultiplier * max(baseline MAD, candidate MAD)) before it counts,
///    in either direction.
///  * a metric present in the baseline but not the candidate is Missing
///    (fails by default: a silently dropped measurement is how coverage
///    rots); candidate-only metrics are New and pass.
///
/// Mixed schema versions refuse to compare (exit 2): a schema bump means
/// the baseline must be regenerated, not reinterpreted.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_REPORT_BENCHCOMPARE_H
#define DTB_REPORT_BENCHCOMPARE_H

#include "report/BenchRecord.h"
#include "support/Table.h"

#include <string>
#include <vector>

namespace dtb {
namespace report {

enum class BenchVerdict { Pass, Improved, Regressed, Missing, New };

/// Display name ("pass", "IMPROVED", "REGRESSED", "MISSING", "new").
const char *benchVerdictName(BenchVerdict Verdict);

struct BenchCompareOptions {
  /// Relative component of the wall noise threshold.
  double RelThreshold = 0.10;
  /// Relative component applied to *tail* metrics instead of RelThreshold:
  /// pause quantiles (names containing "_p99") and per-quantum maxima
  /// ("max_quantum"). Tail regressions are what incremental scavenging
  /// exists to bound, so they gate tighter than throughput metrics.
  double TailRelThreshold = 0.05;
  /// MAD multiple component of the wall noise threshold (~3 MADs covers
  /// normal-ish jitter past the 99.7% band).
  double MadMultiplier = 3.0;
  /// Whether baseline metrics absent from the candidate fail the compare.
  bool FailOnMissing = true;
};

/// True for metrics gated with TailRelThreshold: pause-quantile and
/// max-per-quantum names ("_p99" also matches "_p999").
bool isTailMetric(const std::string &Name);

/// One metric's comparison row.
struct BenchMetricComparison {
  std::string Name;
  BenchVerdict Verdict = BenchVerdict::Pass;
  bool Exact = true;
  double Baseline = 0.0;  // Exact value or wall median.
  double Candidate = 0.0; // Exact value or wall median.
  /// Signed change in percent of the baseline (0 when baseline is 0).
  double DeltaPercent = 0.0;
  /// Absolute noise threshold applied (wall metrics only).
  double Threshold = 0.0;
  std::string Note;
};

struct BenchCompareResult {
  /// Set when the schema versions differ; Rows is empty then.
  bool SchemaMismatch = false;
  std::string SchemaNote;
  /// True when any row fails under the options used.
  bool Failed = false;
  std::vector<BenchMetricComparison> Rows;
  unsigned NumPass = 0;
  unsigned NumImproved = 0;
  unsigned NumRegressed = 0;
  unsigned NumMissing = 0;
  unsigned NumNew = 0;

  /// Process exit code: 0 clean, 1 regressions/missing, 2 schema mismatch.
  int exitCode() const { return SchemaMismatch ? 2 : Failed ? 1 : 0; }
};

BenchCompareResult compareBenchRecords(const BenchRecord &Baseline,
                                       const BenchRecord &Candidate,
                                       const BenchCompareOptions &Options);

/// The comparison rendered as a table: metric, baseline, candidate, delta
/// percent, threshold, verdict.
Table buildComparisonTable(const BenchCompareResult &Result);

} // namespace report
} // namespace dtb

#endif // DTB_REPORT_BENCHCOMPARE_H
