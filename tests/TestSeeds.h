//===- tests/TestSeeds.h - PRNG seed plumbing for randomized tests -------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// Shared helper for property/fuzz tests: makes the effective PRNG seed
// overridable through the DTB_TEST_SEED environment variable and easy to
// print on failure, so any randomized failure can be replayed with
//
//   DTB_TEST_SEED=<seed> ctest -R <test> --output-on-failure
//
//===----------------------------------------------------------------------===//

#ifndef DTB_TESTS_TESTSEEDS_H
#define DTB_TESTS_TESTSEEDS_H

#include "gtest/gtest.h"

#include <cstdint>
#include <cstdlib>

namespace dtb {
namespace test {

/// The seed a randomized test should use: \p Default (usually GetParam())
/// unless the DTB_TEST_SEED environment variable overrides it. Accepts
/// decimal, hex (0x...), and octal.
inline uint64_t effectiveSeed(uint64_t Default) {
  if (const char *Env = std::getenv("DTB_TEST_SEED")) {
    char *End = nullptr;
    unsigned long long Value = std::strtoull(Env, &End, 0);
    if (End != Env && *End == '\0')
      return Value;
  }
  return Default;
}

} // namespace test
} // namespace dtb

/// Attaches the effective seed to every assertion failure in the scope,
/// with copy-pasteable replay instructions.
#define DTB_SCOPED_SEED_TRACE(Seed)                                           \
  SCOPED_TRACE(::testing::Message()                                           \
               << "PRNG seed " << (Seed)                                      \
               << " (replay with DTB_TEST_SEED=" << (Seed) << ")")

#endif // DTB_TESTS_TESTSEEDS_H
