file(REMOVE_RECURSE
  "libdtb_support.a"
)
