//===- runtime/FlightRecorder.h - Always-on GC black box -------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded, lock-free ring of recent GC/safepoint/degradation events —
/// the heap's black box. Unlike every other observability surface in the
/// repo, the flight recorder is NOT compiled out under
/// -DDTB_ENABLE_TELEMETRY=OFF: postmortems need it exactly when the full
/// telemetry stack is absent, and its cost is a handful of relaxed atomic
/// stores per *collection-rate* event (never on the allocation or store
/// fast paths; BM_SafepointRendezvous bounds the rendezvous-path cost).
///
/// Timestamps are deterministic allocation-clock values, so under
/// single-threaded driving the ring's contents replay bit-identically.
/// Writers are the collection-rate paths (world owner, degradation
/// ladder, verifier); each record claims a slot with one relaxed
/// fetch_add and fills per-field atomics, so concurrent writers and a
/// concurrent snapshot are race-free. A reader that catches a slot
/// mid-overwrite (the writer lapped it) detects the torn sequence number
/// and skips the slot.
///
/// The ring is dumped automatically (to the heap's GC log stream, else
/// stderr) on degradation-ladder entry, watchdog violation, and verifier
/// failure, throttled to the first few triggers per heap so a fault storm
/// cannot flood the log.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_RUNTIME_FLIGHTRECORDER_H
#define DTB_RUNTIME_FLIGHTRECORDER_H

#include "runtime/Degradation.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dtb {
namespace runtime {

/// What a flight-recorder entry describes. The A/B/C payload words are
/// per-kind (see describeFlightEvent).
enum class FlightEventKind : uint8_t {
  /// A completed collection. A = scavenge index, B = traced bytes,
  /// C = reclaimed bytes.
  ScavengeComplete,
  /// A completed safepoint rendezvous. A = contexts, B = pending
  /// allocation bytes drained (the deterministic TTSP input),
  /// C = straggler context id.
  SafepointRendezvous,
  /// An incremental cycle opened. A = boundary.
  CycleBegin,
  /// A degradation-ladder event. A = DegradationKind, B = resident bytes.
  Degradation,
  /// The heap verifier found problems. A = problem count.
  VerifierFailure,
};

inline const char *flightEventKindName(FlightEventKind Kind) {
  switch (Kind) {
  case FlightEventKind::ScavengeComplete:
    return "scavenge";
  case FlightEventKind::SafepointRendezvous:
    return "safepoint-rendezvous";
  case FlightEventKind::CycleBegin:
    return "cycle-begin";
  case FlightEventKind::Degradation:
    return "degradation";
  case FlightEventKind::VerifierFailure:
    return "verifier-failure";
  }
  return "unknown";
}

/// One decoded ring entry (snapshot form).
struct FlightEvent {
  /// Global record number (0-based; monotone across the heap's lifetime).
  uint64_t Seq = 0;
  FlightEventKind Kind = FlightEventKind::ScavengeComplete;
  /// Allocation-clock timestamp.
  uint64_t Time = 0;
  uint64_t A = 0;
  uint64_t B = 0;
  uint64_t C = 0;
};

/// Renders one entry as a stable human-readable line body.
inline std::string describeFlightEvent(const FlightEvent &E) {
  switch (E.Kind) {
  case FlightEventKind::ScavengeComplete:
    return "scavenge #" + std::to_string(E.A) + ": traced " +
           std::to_string(E.B) + " reclaimed " + std::to_string(E.C) +
           " bytes";
  case FlightEventKind::SafepointRendezvous:
    return "safepoint-rendezvous: " + std::to_string(E.A) + " contexts, " +
           std::to_string(E.B) + " pending alloc bytes, straggler ctx " +
           std::to_string(E.C);
  case FlightEventKind::CycleBegin:
    return "incremental-cycle begin: tb=" + std::to_string(E.A);
  case FlightEventKind::Degradation:
    return std::string("degradation ") +
           degradationKindName(static_cast<DegradationKind>(E.A)) +
           ": resident " + std::to_string(E.B) + " bytes";
  case FlightEventKind::VerifierFailure:
    return "verifier failure: " + std::to_string(E.A) + " problem" +
           (E.A == 1 ? "" : "s");
  }
  return "unknown event";
}

/// The ring itself. See the file comment for the concurrency contract.
class FlightRecorder {
public:
  /// Retained events (power of two; older events are overwritten).
  static constexpr size_t Capacity = 128;
  /// Automatic dumps per heap before the recorder goes quiet (explicit
  /// dump() calls are never throttled).
  static constexpr unsigned AutoDumpLimit = 2;

  /// Appends one event. Lock-free; callable from any thread.
  void record(FlightEventKind Kind, uint64_t Time, uint64_t A = 0,
              uint64_t B = 0, uint64_t C = 0) {
    uint64_t Seq = Cursor.fetch_add(1, std::memory_order_relaxed);
    Slot &S = Slots[Seq & (Capacity - 1)];
    // Invalidate first so a concurrent snapshot never decodes a half-new
    // payload under an old sequence number.
    S.Seq.store(0, std::memory_order_relaxed);
    S.Kind.store(static_cast<uint8_t>(Kind), std::memory_order_relaxed);
    S.Time.store(Time, std::memory_order_relaxed);
    S.A.store(A, std::memory_order_relaxed);
    S.B.store(B, std::memory_order_relaxed);
    S.C.store(C, std::memory_order_relaxed);
    S.Seq.store(Seq + 1, std::memory_order_release);
  }

  /// Total events ever recorded (including overwritten ones).
  uint64_t recorded() const { return Cursor.load(std::memory_order_relaxed); }

  /// Decodes the retained tail, oldest first. Entries a concurrent writer
  /// is mid-overwrite on are skipped.
  std::vector<FlightEvent> snapshot() const {
    std::vector<FlightEvent> Out;
    uint64_t End = Cursor.load(std::memory_order_relaxed);
    uint64_t Count = End < Capacity ? End : Capacity;
    Out.reserve(static_cast<size_t>(Count));
    for (uint64_t Seq = End - Count; Seq != End; ++Seq) {
      const Slot &S = Slots[Seq & (Capacity - 1)];
      if (S.Seq.load(std::memory_order_acquire) != Seq + 1)
        continue; // Torn: the writer lapped this slot.
      FlightEvent E;
      E.Seq = Seq;
      E.Kind = static_cast<FlightEventKind>(
          S.Kind.load(std::memory_order_relaxed));
      E.Time = S.Time.load(std::memory_order_relaxed);
      E.A = S.A.load(std::memory_order_relaxed);
      E.B = S.B.load(std::memory_order_relaxed);
      E.C = S.C.load(std::memory_order_relaxed);
      Out.push_back(E);
    }
    return Out;
  }

  /// Prints the retained tail to \p Out (oldest first), one line per
  /// event. Never throttled.
  void dump(std::FILE *Out) const {
    std::vector<FlightEvent> Events = snapshot();
    std::fprintf(Out, "flight recorder: %llu event%s recorded, last %zu:\n",
                 static_cast<unsigned long long>(recorded()),
                 recorded() == 1 ? "" : "s", Events.size());
    for (const FlightEvent &E : Events)
      std::fprintf(Out, "  [%llu] t=%llu %s\n",
                   static_cast<unsigned long long>(E.Seq),
                   static_cast<unsigned long long>(E.Time),
                   describeFlightEvent(E).c_str());
  }

  /// Throttled dump for automatic triggers (ladder entry, watchdog,
  /// verifier failure): the first AutoDumpLimit calls dump with a header
  /// naming \p Why, later calls are silent. Returns true when it dumped.
  bool autoDump(std::FILE *Out, const char *Why) {
    if (AutoDumps.fetch_add(1, std::memory_order_relaxed) >= AutoDumpLimit)
      return false;
    std::fprintf(Out, "[flight-recorder] dump on %s\n", Why);
    dump(Out);
    return true;
  }

private:
  struct Slot {
    /// Seq + 1 of the record occupying this slot (0 = empty/mid-write).
    std::atomic<uint64_t> Seq{0};
    std::atomic<uint8_t> Kind{0};
    std::atomic<uint64_t> Time{0};
    std::atomic<uint64_t> A{0};
    std::atomic<uint64_t> B{0};
    std::atomic<uint64_t> C{0};
  };

  static_assert((Capacity & (Capacity - 1)) == 0,
                "ring indexing requires a power-of-two capacity");

  std::array<Slot, Capacity> Slots;
  std::atomic<uint64_t> Cursor{0};
  std::atomic<unsigned> AutoDumps{0};
};

} // namespace runtime
} // namespace dtb

#endif // DTB_RUNTIME_FLIGHTRECORDER_H
