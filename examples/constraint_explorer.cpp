//===- examples/constraint_explorer.cpp - Pause/memory tradeoff frontier -===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The paper frames garbage collection tuning as a single tradeoff: pause
// time against memory, selected by moving the threatening boundary. This
// example makes the frontier visible for a workload: it sweeps DTBFM's
// pause budget and DTBMEM's memory budget, plots (as a text scatter) each
// operating point in (median pause, mean memory) space, and overlays the
// classic fixed policies — showing that the DTB knobs span the whole
// curve the fixed policies only sample.
//
//===----------------------------------------------------------------------===//

#include "core/Policies.h"
#include "sim/Simulator.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/Units.h"
#include "workload/Workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace dtb;

namespace {

struct OperatingPoint {
  std::string Label;
  char Mark;
  double MedianPauseMs;
  double MemMeanKB;
};

/// Renders points on a log-x text scatter plot.
void plotScatter(const std::vector<OperatingPoint> &Points) {
  if (Points.empty())
    return;
  double MinPause = 1e300, MaxPause = 0, MinMem = 1e300, MaxMem = 0;
  for (const OperatingPoint &P : Points) {
    MinPause = std::min(MinPause, std::max(P.MedianPauseMs, 1.0));
    MaxPause = std::max(MaxPause, P.MedianPauseMs);
    MinMem = std::min(MinMem, P.MemMeanKB);
    MaxMem = std::max(MaxMem, P.MemMeanKB);
  }
  const int Rows = 18, Cols = 64;
  std::vector<std::string> Grid(Rows, std::string(Cols, ' '));
  auto LogX = [&](double Pause) {
    double L = std::log(std::max(Pause, 1.0) / MinPause) /
               std::log(MaxPause / MinPause + 1e-9);
    return std::clamp(static_cast<int>(L * (Cols - 1)), 0, Cols - 1);
  };
  auto LinY = [&](double Mem) {
    double L = (Mem - MinMem) / (MaxMem - MinMem + 1e-9);
    return std::clamp(Rows - 1 - static_cast<int>(L * (Rows - 1)), 0,
                      Rows - 1);
  };
  for (const OperatingPoint &P : Points)
    Grid[LinY(P.MemMeanKB)][LogX(P.MedianPauseMs)] = P.Mark;

  std::printf("mean memory (KB)  %.0f\n", MaxMem);
  for (const std::string &Row : Grid)
    std::printf("                 |%s\n", Row.c_str());
  std::printf("            %.0f +%s\n", MinMem, std::string(Cols, '-').c_str());
  std::printf("                  %.0fms%*s%.0fms (median pause, log "
              "scale)\n\n",
              MinPause, Cols - 14, "", MaxPause);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string WorkloadName = "espresso2";
  OptionParser Parser("Explores the pause/memory tradeoff frontier spanned "
                      "by the DTB policies");
  Parser.addString("workload", "Workload name", &WorkloadName);
  if (!Parser.parse(Argc, Argv))
    return 1;

  const workload::WorkloadSpec *Spec = workload::findWorkload(WorkloadName);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 WorkloadName.c_str());
    return 1;
  }
  trace::Trace T = workload::generateTrace(*Spec);
  sim::SimulatorConfig SimConfig;
  SimConfig.ProgramSeconds = Spec->ProgramSeconds;

  std::vector<OperatingPoint> Points;
  Table Tbl({"Policy", "Knob", "Median pause (ms)", "Mem mean (KB)",
             "Traced (KB)"});

  auto Run = [&](const std::string &Label, char Mark,
                 core::BoundaryPolicy &Policy, const std::string &Knob) {
    sim::SimulationResult R = sim::simulate(T, Policy, SimConfig);
    Points.push_back({Label, Mark, R.PauseMillis.median(),
                      bytesToKB(R.MemMeanBytes)});
    Tbl.addRow({Label, Knob, Table::cell(R.PauseMillis.median(), 0),
                Table::cell(bytesToKB(R.MemMeanBytes)),
                Table::cell(bytesToKB(R.TotalTracedBytes))});
  };

  // The DTBFM frontier: sweep the pause budget.
  for (double BudgetMs : {12.5, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0,
                          1600.0}) {
    uint64_t TraceMax =
        core::MachineModel().tracedBytesForPauseMillis(BudgetMs);
    core::DtbPausePolicy Policy(TraceMax);
    Run("dtbfm", '*', Policy,
        Table::cell(BudgetMs, 0) + " ms");
  }

  // The classic fixed points.
  {
    core::FullPolicy Full;
    Run("full", 'F', Full, "-");
    core::FixedAgePolicy Fixed1(1);
    Run("fixed1", '1', Fixed1, "-");
    core::FixedAgePolicy Fixed2(2);
    Run("fixed2", '2', Fixed2, "-");
    core::FixedAgePolicy Fixed4(4);
    Run("fixed4", '4', Fixed4, "-");
    core::FixedAgePolicy Fixed8(8);
    Run("fixed8", '8', Fixed8, "-");
  }

  std::printf("Pause/memory frontier on %s\n\n", Spec->DisplayName.c_str());
  plotScatter(Points);
  std::printf("  * = DTBFM at a swept pause budget;  F/1/2/4/8 = FULL and "
              "FIXEDk\n\n");
  Tbl.print(stdout);
  std::printf("\nThe DTB policy reaches any point on the frontier by "
              "dialing one knob in\nuser units; the fixed policies are "
              "stuck at their design points.\n");
  return 0;
}
