# Empty dependencies file for dtb_runtime.
# This may be replaced when dependencies are built.
