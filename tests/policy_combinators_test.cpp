//===- tests/policy_combinators_test.cpp ----------------------------------==//
//
// Tests for the policy combinators: dual-constraint composition
// (oldest/youngest boundary) and age quantization, both as unit tests on
// scripted requests and end-to-end on the simulator.
//
//===----------------------------------------------------------------------===//

#include "core/Combinators.h"

#include "core/Policies.h"
#include "sim/Simulator.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::core;

namespace {

/// A policy that always returns a fixed boundary (test double).
class ConstantPolicy final : public BoundaryPolicy {
public:
  explicit ConstantPolicy(AllocClock Boundary) : Boundary(Boundary) {}
  std::string name() const override { return "const"; }
  AllocClock chooseBoundary(const BoundaryRequest &) override {
    return Boundary;
  }

private:
  AllocClock Boundary;
};

std::unique_ptr<BoundaryPolicy> constant(AllocClock Boundary) {
  return std::make_unique<ConstantPolicy>(Boundary);
}

BoundaryRequest trivialRequest(const ScavengeHistory &History) {
  BoundaryRequest Request;
  Request.Index = History.size() + 1;
  Request.Now = 10'000'000;
  Request.MemBytes = 1;
  Request.History = &History;
  return Request;
}

} // namespace

TEST(CombinatorTest, OldestPicksMinimum) {
  ScavengeHistory History;
  OldestBoundaryPolicy P(constant(300), constant(700));
  EXPECT_EQ(P.chooseBoundary(trivialRequest(History)), 300u);
  EXPECT_EQ(P.name(), "oldest(const,const)");
}

TEST(CombinatorTest, YoungestPicksMaximum) {
  ScavengeHistory History;
  YoungestBoundaryPolicy P(constant(300), constant(700));
  EXPECT_EQ(P.chooseBoundary(trivialRequest(History)), 700u);
  EXPECT_EQ(P.name(), "youngest(const,const)");
}

TEST(CombinatorTest, QuantizedSnapsDown) {
  ScavengeHistory History;
  QuantizedBoundaryPolicy P(constant(10'500), 4'000);
  EXPECT_EQ(P.chooseBoundary(trivialRequest(History)), 8'000u);
  EXPECT_EQ(P.quantumBytes(), 4'000u);
}

TEST(CombinatorTest, QuantizedExactMultipleUnchanged) {
  ScavengeHistory History;
  QuantizedBoundaryPolicy P(constant(8'000), 4'000);
  EXPECT_EQ(P.chooseBoundary(trivialRequest(History)), 8'000u);
}

TEST(CombinatorTest, QuantizedZeroBoundaryStaysZero) {
  ScavengeHistory History;
  QuantizedBoundaryPolicy P(constant(0), 4'000);
  EXPECT_EQ(P.chooseBoundary(trivialRequest(History)), 0u);
}

namespace {

sim::SimulatorConfig comboConfig() {
  sim::SimulatorConfig Config;
  Config.TriggerBytes = 50'000;
  Config.ProgramSeconds = 1.0;
  return Config;
}

trace::Trace comboTrace() {
  return workload::generateTrace(
      workload::makeSteadyStateSpec(2'000'000, 99));
}

} // namespace

TEST(CombinatorSimTest, OldestCompositionSatisfiesMemoryConstraint) {
  trace::Trace T = comboTrace();

  // Memory-first composition: DTBMEM's boundary wins whenever it is
  // older. The memory budget must hold as well as DTBMEM alone holds it.
  const uint64_t MemMax = 180'000;
  core::DtbMemoryPolicy MemAlone(MemMax);
  sim::SimulationResult RAlone = sim::simulate(T, MemAlone, comboConfig());

  OldestBoundaryPolicy Combined(
      std::make_unique<DtbMemoryPolicy>(MemMax),
      std::make_unique<DtbPausePolicy>(20'000));
  sim::SimulationResult RCombined =
      sim::simulate(T, Combined, comboConfig());

  EXPECT_LE(RCombined.MemMaxBytes, RAlone.MemMaxBytes);
  // And it traces at least as much (older boundaries trace more).
  EXPECT_GE(RCombined.TotalTracedBytes, RAlone.TotalTracedBytes);
}

TEST(CombinatorSimTest, YoungestCompositionBoundsTracing) {
  trace::Trace T = comboTrace();

  // Pause-first composition: the boundary is never older than DTBFM's,
  // so per-scavenge tracing never exceeds what DTBFM alone would do at
  // the same scavenge.
  const uint64_t TraceMax = 20'000;
  core::DtbPausePolicy PauseAlone(TraceMax);
  sim::SimulationResult RAlone =
      sim::simulate(T, PauseAlone, comboConfig());

  YoungestBoundaryPolicy Combined(
      std::make_unique<DtbPausePolicy>(TraceMax),
      std::make_unique<DtbMemoryPolicy>(120'000));
  sim::SimulationResult RCombined =
      sim::simulate(T, Combined, comboConfig());

  ASSERT_EQ(RCombined.NumScavenges, RAlone.NumScavenges);
  EXPECT_LE(RCombined.TotalTracedBytes,
            RAlone.TotalTracedBytes + RAlone.TotalTracedBytes / 10);
}

TEST(CombinatorSimTest, QuantizationIsSafeAndCoarse) {
  trace::Trace T = comboTrace();
  for (uint64_t Quantum : {1'000ull, 10'000ull, 100'000ull}) {
    QuantizedBoundaryPolicy Policy(
        std::make_unique<DtbPausePolicy>(20'000), Quantum);
    sim::SimulationResult R = sim::simulate(T, Policy, comboConfig());
    // Boundaries are multiples of the quantum and within range.
    for (const ScavengeRecord &Rec : R.History.records()) {
      EXPECT_EQ(Rec.Boundary % Quantum, 0u);
      EXPECT_LE(Rec.Boundary, Rec.Time);
      EXPECT_EQ(Rec.MemBeforeBytes, Rec.SurvivedBytes + Rec.ReclaimedBytes);
    }
  }
}

TEST(CombinatorSimTest, CoarserQuantaTraceMore) {
  trace::Trace T = comboTrace();
  // Snapping down only adds to the threatened set, so total tracing is
  // monotone in the quantum (with identical scavenge times).
  QuantizedBoundaryPolicy Fine(std::make_unique<FixedAgePolicy>(1),
                               1'000);
  QuantizedBoundaryPolicy Coarse(std::make_unique<FixedAgePolicy>(1),
                                 200'000);
  sim::SimulationResult RFine = sim::simulate(T, Fine, comboConfig());
  sim::SimulationResult RCoarse = sim::simulate(T, Coarse, comboConfig());
  ASSERT_EQ(RFine.NumScavenges, RCoarse.NumScavenges);
  EXPECT_GE(RCoarse.TotalTracedBytes, RFine.TotalTracedBytes);
}
