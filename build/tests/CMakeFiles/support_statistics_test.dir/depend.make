# Empty dependencies file for support_statistics_test.
# This may be replaced when dependencies are built.
