//===- bench/table3_pause_times.cpp - Reproduces the paper's Table 3 -----===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// Prints the median and 90th-percentile scavenge pause times (ms, at the
// paper's 500 KB/s tracing rate) per collector and workload — the paper's
// Table 3 — followed by the published values.
//
//===----------------------------------------------------------------------===//

#include "report/Experiments.h"
#include "report/PaperReference.h"
#include "support/CommandLine.h"
#include "support/ThreadPool.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>

using namespace dtb;

int main(int Argc, char **Argv) {
  bool Csv = false;
  report::ExperimentConfig Config;
  uint64_t Threads = 0;
  OptionParser Parser("Reproduces Table 3: median and 90th percentile "
                      "pause times (milliseconds)");
  Parser.addFlag("csv", "Emit CSV instead of aligned text", &Csv);
  Parser.addUInt("trigger", "Bytes allocated between scavenges",
                 &Config.TriggerBytes);
  Parser.addUInt("trace-max", "Pause budget in traced bytes",
                 &Config.TraceMaxBytes);
  Parser.addUInt("mem-max", "DTBMEM memory budget in bytes",
                 &Config.MemMaxBytes);
  addThreadsOption(Parser, &Threads);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;
  applyThreadsOption(Threads);

  report::ExperimentGrid Grid = report::ExperimentGrid::paperGrid(Config);
  Table Measured = report::buildTable3(Grid);
  if (Csv) {
    Measured.printCsv(stdout);
    return 0;
  }

  std::printf("Table 3 (measured): Median and 90th Percentile Pause Times "
              "(Milliseconds)\n\n");
  Measured.print(stdout);
  std::printf("\nTable 3 (paper):\n\n");
  report::paperTable3().print(stdout);
  return 0;
}
