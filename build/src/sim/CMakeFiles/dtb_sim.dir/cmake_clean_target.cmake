file(REMOVE_RECURSE
  "libdtb_sim.a"
)
