//===- trace/Trace.cpp ----------------------------------------------------==//

#include "trace/Trace.h"

#include "support/Error.h"

#include <cassert>
#include <cstdio>

using namespace dtb;
using namespace dtb::trace;

Trace::Trace(std::vector<AllocationRecord> InRecords)
    : Records(std::move(InRecords)) {
  TotalAllocated = Records.empty() ? 0 : Records.back().Birth;
}

bool Trace::verify(std::string *ErrorMessage) const {
  auto Fail = [&](const std::string &Message) {
    if (ErrorMessage)
      *ErrorMessage = Message;
    return false;
  };

  AllocClock Running = 0;
  for (size_t I = 0; I != Records.size(); ++I) {
    const AllocationRecord &R = Records[I];
    if (R.Size == 0)
      return Fail("record " + std::to_string(I) + " has zero size");
    Running += R.Size;
    if (R.Birth != Running)
      return Fail("record " + std::to_string(I) +
                  " birth clock is inconsistent with the running byte total");
    if (R.Death != NeverDies && R.Death < R.Birth)
      return Fail("record " + std::to_string(I) + " dies before it is born");
  }
  if (Running != TotalAllocated)
    return Fail("cached total does not match the sum of record sizes");
  return true;
}

TraceBuilder::ObjectIndex TraceBuilder::allocate(uint32_t Size) {
  if (Size == 0)
    fatalError("trace allocation of zero bytes");
  Clock += Size;
  Records.push_back({/*Birth=*/Clock, Size, /*Death=*/NeverDies});
  return Records.size() - 1;
}

void TraceBuilder::free(ObjectIndex Index) {
  assert(Index < Records.size() && "freeing unknown object");
  AllocationRecord &R = Records[Index];
  assert(R.Death == NeverDies && "double free in trace construction");
  R.Death = Clock;
}

Trace TraceBuilder::finish() {
  Trace Result(std::move(Records));
  Records.clear();
  Clock = 0;
  return Result;
}
