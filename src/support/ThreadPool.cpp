//===- support/ThreadPool.cpp ---------------------------------------------==//

#include "support/ThreadPool.h"

#include "support/CommandLine.h"

#include <atomic>
#include <exception>
#include <utility>

using namespace dtb;

namespace {
thread_local bool IsPoolWorker = false;
} // namespace

bool ThreadPool::onWorkerThread() { return IsPoolWorker; }

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = hardwareThreads();
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Ready.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Job));
  }
  Ready.notify_one();
}

void ThreadPool::workerLoop() {
  IsPoolWorker = true;
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Ready.wait(Lock, [this] { return Stopping || Head != Queue.size(); });
      if (Head == Queue.size())
        return; // Stopping with an empty queue.
      Job = std::move(Queue[Head++]);
      if (Head == Queue.size()) {
        Queue.clear();
        Head = 0;
      }
    }
    Job(); // packaged_task captures any exception into its future.
  }
}

//===----------------------------------------------------------------------===//
// Default pool
//===----------------------------------------------------------------------===//

namespace {

std::mutex DefaultPoolMutex;
unsigned DefaultCount = 0; // 0 = hardware.
std::unique_ptr<ThreadPool> DefaultPool;
bool DefaultPoolCreated = false;

} // namespace

void dtb::setDefaultThreadCount(unsigned NumThreads) {
  std::lock_guard<std::mutex> Lock(DefaultPoolMutex);
  DefaultCount = NumThreads;
  DefaultPool.reset();
  DefaultPoolCreated = false;
}

unsigned dtb::defaultThreadCount() {
  std::lock_guard<std::mutex> Lock(DefaultPoolMutex);
  return DefaultCount == 0 ? ThreadPool::hardwareThreads() : DefaultCount;
}

ThreadPool *dtb::defaultThreadPool() {
  std::lock_guard<std::mutex> Lock(DefaultPoolMutex);
  if (!DefaultPoolCreated) {
    unsigned Count =
        DefaultCount == 0 ? ThreadPool::hardwareThreads() : DefaultCount;
    // One pool worker fewer than the lane count: the caller participates
    // in parallelFor, so `--threads N` uses N lanes in total.
    if (Count > 1)
      DefaultPool = std::make_unique<ThreadPool>(Count - 1);
    DefaultPoolCreated = true;
  }
  return DefaultPool.get();
}

//===----------------------------------------------------------------------===//
// parallelFor
//===----------------------------------------------------------------------===//

void dtb::parallelFor(size_t N, const std::function<void(size_t)> &Body) {
  parallelFor(N, Body, defaultThreadPool());
}

void dtb::parallelFor(size_t N, const std::function<void(size_t)> &Body,
                      ThreadPool *Pool) {
  // A nested fan-out from a pool worker runs inline: blocking a worker on
  // helper tasks could deadlock when every worker does the same.
  if (!Pool || N < 2 || ThreadPool::onWorkerThread()) {
    for (size_t I = 0; I != N; ++I)
      Body(I);
    return;
  }

  auto Next = std::make_shared<std::atomic<size_t>>(0);
  auto FirstError = std::make_shared<std::atomic<bool>>(false);
  auto ErrorMutex = std::make_shared<std::mutex>();
  auto Error = std::make_shared<std::exception_ptr>();

  auto Lane = [N, &Body, Next, FirstError, ErrorMutex, Error] {
    for (;;) {
      size_t I = Next->fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      try {
        Body(I);
      } catch (...) {
        if (!FirstError->exchange(true)) {
          std::lock_guard<std::mutex> Lock(*ErrorMutex);
          *Error = std::current_exception();
        }
        // Other iterations still run: slots stay independent and the
        // futures below always complete.
      }
    }
  };

  size_t NumHelpers = Pool->numThreads();
  if (NumHelpers > N - 1)
    NumHelpers = N - 1; // The caller is one lane already.
  std::vector<std::future<void>> Helpers;
  Helpers.reserve(NumHelpers);
  for (size_t I = 0; I != NumHelpers; ++I)
    Helpers.push_back(Pool->submit(Lane));
  Lane();
  for (std::future<void> &H : Helpers)
    H.get();

  if (FirstError->load())
    std::rethrow_exception(*Error);
}

PoolSelection::PoolSelection(unsigned Lanes) {
  if (Lanes == 0) {
    Selected = defaultThreadPool();
  } else if (Lanes > 1) {
    Owned = std::make_unique<ThreadPool>(Lanes - 1);
    Selected = Owned.get();
  }
}

PoolSelection::~PoolSelection() = default;

//===----------------------------------------------------------------------===//
// --threads / -j plumbing
//===----------------------------------------------------------------------===//

void dtb::addThreadsOption(OptionParser &Parser, uint64_t *Threads) {
  Parser.addUInt("threads",
                 "Worker threads for experiment fan-out (0 = one per "
                 "hardware thread, 1 = serial)",
                 Threads);
  Parser.addShortAlias("j", "threads");
}

void dtb::applyThreadsOption(uint64_t Threads) {
  if (Threads > 4096)
    Threads = 4096;
  setDefaultThreadCount(static_cast<unsigned>(Threads));
}
