//===- support/Error.cpp --------------------------------------------------==//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace dtb;

void dtb::fatalError(std::string_view Message) {
  std::fprintf(stderr, "dtbgc fatal error: %.*s\n",
               static_cast<int>(Message.size()), Message.data());
  std::abort();
}

void dtb::unreachable(std::string_view Message) {
  std::fprintf(stderr, "dtbgc unreachable executed: %.*s\n",
               static_cast<int>(Message.size()), Message.data());
  std::abort();
}

void dtb::checkFailed(const char *Condition, const char *Message,
                      const char *File, int Line) {
  std::fprintf(stderr, "dtbgc check failed at %s:%d: %s (%s)\n", File, Line,
               Message, Condition);
  std::abort();
}
