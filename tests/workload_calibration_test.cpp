//===- tests/workload_calibration_test.cpp --------------------------------==//
//
// Calibration bands: each synthetic workload must match the paper's
// published LIVE and No-GC statistics (Table 2 baselines) within
// tolerance. These tests pin the traces the whole evaluation depends on —
// a drive-by change to a mixture constant that drifts a workload away
// from the paper fails here, not silently in the benchmark output.
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include "report/PaperReference.h"
#include "trace/TraceStats.h"

#include "TestSeeds.h"
#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::workload;

namespace {

/// The workload with its generator seed swapped for the DTB_TEST_SEED
/// override (when set), and the effective seed attached to any failure —
/// same replay plumbing as the chaos/parallel tests. The bands must hold
/// for any seed, not just the calibrated default, so a sweep is just
/// DTB_TEST_SEED=N ctest -R Calibration.
WorkloadSpec seededSpec(const WorkloadSpec &Spec) {
  WorkloadSpec Out = Spec;
  Out.Seed = test::effectiveSeed(Spec.Seed);
  return Out;
}

struct Band {
  const char *Name;
  /// Relative tolerances for live mean and live max.
  double LiveMeanTolerance;
  double LiveMaxTolerance;
};

/// Tolerances are tight where the mixture directly controls the value and
/// looser where the paper's own numbers reflect instruction-time
/// weighting we deliberately do not model (see DESIGN.md).
constexpr Band Bands[] = {
    {"ghost1", 0.12, 0.15},   {"ghost2", 0.12, 0.15},
    {"espresso1", 0.15, 0.25}, {"espresso2", 0.15, 0.25},
    {"sis", 0.12, 0.12},      {"cfrac", 0.5, 0.5},
};

class CalibrationTest : public testing::TestWithParam<Band> {};

} // namespace

TEST_P(CalibrationTest, LiveProfileWithinBand) {
  const Band &B = GetParam();
  const WorkloadSpec *Found = findWorkload(B.Name);
  ASSERT_NE(Found, nullptr);
  WorkloadSpec Spec = seededSpec(*Found);
  DTB_SCOPED_SEED_TRACE(Spec.Seed);
  auto Paper = report::paperBaseline(B.Name);
  ASSERT_TRUE(Paper.has_value());

  trace::TraceStats S = trace::computeTraceStats(generateTrace(Spec));
  double LiveMeanKB = S.LiveMeanBytes / 1000.0;
  double LiveMaxKB = static_cast<double>(S.LiveMaxBytes) / 1000.0;

  EXPECT_NEAR(LiveMeanKB, Paper->LiveMeanKB,
              Paper->LiveMeanKB * B.LiveMeanTolerance)
      << B.Name << " live mean";
  EXPECT_NEAR(LiveMaxKB, Paper->LiveMaxKB,
              Paper->LiveMaxKB * B.LiveMaxTolerance)
      << B.Name << " live max";
}

TEST_P(CalibrationTest, TotalAllocationMatchesNoGcMax) {
  const Band &B = GetParam();
  const WorkloadSpec *Found = findWorkload(B.Name);
  ASSERT_NE(Found, nullptr);
  WorkloadSpec Spec = seededSpec(*Found);
  DTB_SCOPED_SEED_TRACE(Spec.Seed);
  auto Paper = report::paperBaseline(B.Name);
  trace::TraceStats S = trace::computeTraceStats(generateTrace(Spec));
  // The No-GC maximum is the total allocation; within 3%.
  double TotalKB = static_cast<double>(S.TotalAllocatedBytes) / 1000.0;
  EXPECT_NEAR(TotalKB, Paper->NoGcMaxKB, Paper->NoGcMaxKB * 0.03) << B.Name;
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, CalibrationTest,
                         testing::ValuesIn(Bands),
                         [](const testing::TestParamInfo<Band> &Info) {
                           return std::string(Info.param.Name);
                         });
