//===- report/Experiments.cpp ---------------------------------------------==//

#include "report/Experiments.h"

#include "support/Error.h"
#include "support/ThreadPool.h"
#include "support/Units.h"

#include <utility>

using namespace dtb;
using namespace dtb::report;

ExperimentGrid::ExperimentGrid(std::vector<workload::WorkloadSpec> InWorkloads,
                               std::vector<std::string> InPolicyNames,
                               const ExperimentConfig &InConfig)
    : Workloads(std::move(InWorkloads)),
      PolicyNames(std::move(InPolicyNames)), Config(InConfig) {
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = Config.TraceMaxBytes;
  PolicyConfig.MemMaxBytes = Config.MemMaxBytes;

  // Every policy name is validated up front so an unknown name fails fast
  // instead of from a worker thread.
  for (const std::string &PolicyName : PolicyNames)
    if (!core::createPolicy(PolicyName, PolicyConfig))
      fatalError("unknown policy name: " + PolicyName);

  PoolSelection Pool(Config.Threads);

  // Phase 1: one trace generation per workload (each deterministic in the
  // spec's own seed), plus its baseline statistics.
  std::vector<trace::Trace> Traces(Workloads.size());
  std::vector<trace::TraceStats> Stats(Workloads.size());
  parallelFor(
      Workloads.size(),
      [&](size_t W) {
        Traces[W] = workload::generateTrace(Workloads[W]);
        Stats[W] = trace::computeTraceStats(Traces[W]);
      },
      Pool.pool());

  // Phase 2: the policy runs fan out, one task per (workload, policy)
  // cell, each depositing into its preassigned slot.
  std::vector<sim::SimulationResult> CellResults(Workloads.size() *
                                                 PolicyNames.size());
  parallelFor(
      CellResults.size(),
      [&](size_t Cell) {
        size_t W = Cell / PolicyNames.size();
        size_t P = Cell % PolicyNames.size();
        sim::SimulatorConfig SimConfig;
        SimConfig.TriggerBytes = Config.TriggerBytes;
        SimConfig.Machine = Config.Machine;
        SimConfig.ProgramSeconds = Workloads[W].ProgramSeconds;
        // Distinct per-cell timelines keep concurrently simulated cells
        // apart; export order is (track, scavenge index), so the stream
        // is identical for every thread count.
        SimConfig.TelemetryTrack =
            "sim/" + Workloads[W].Name + "/" + PolicyNames[P];
        std::unique_ptr<core::BoundaryPolicy> Policy =
            core::createPolicy(PolicyNames[P], PolicyConfig);
        CellResults[Cell] = sim::simulate(Traces[W], *Policy, SimConfig);
      },
      Pool.pool());

  // Serial collection in a fixed order: identical maps for every thread
  // count.
  for (size_t W = 0; W != Workloads.size(); ++W) {
    Baselines[Workloads[W].Name] = std::move(Stats[W]);
    for (size_t P = 0; P != PolicyNames.size(); ++P)
      Results[{PolicyNames[P], Workloads[W].Name}] =
          std::move(CellResults[W * PolicyNames.size() + P]);
  }
}

ExperimentGrid ExperimentGrid::paperGrid(const ExperimentConfig &Config) {
  return ExperimentGrid(workload::paperWorkloads(),
                        core::paperPolicyNames(), Config);
}

const sim::SimulationResult &
ExperimentGrid::result(const std::string &Policy,
                       const std::string &Workload) const {
  auto It = Results.find({Policy, Workload});
  if (It == Results.end())
    fatalError("no result for policy '" + Policy + "' on workload '" +
               Workload + "'");
  return It->second;
}

const trace::TraceStats &
ExperimentGrid::baseline(const std::string &Workload) const {
  auto It = Baselines.find(Workload);
  if (It == Baselines.end())
    fatalError("no baseline for workload '" + Workload + "'");
  return It->second;
}

//===----------------------------------------------------------------------===//
// Table rendering
//===----------------------------------------------------------------------===//

namespace {

/// Pretty collector names as they appear in the paper's tables.
std::string collectorDisplayName(const std::string &PolicyName) {
  if (PolicyName == "full")
    return "Full";
  if (PolicyName == "fixed1")
    return "Fixed1";
  if (PolicyName == "fixed4")
    return "Fixed4";
  if (PolicyName == "dtbmem")
    return "DtbMem";
  if (PolicyName == "feedmed")
    return "FeedMed";
  if (PolicyName == "dtbfm")
    return "DtbFM";
  return PolicyName;
}

std::vector<std::string>
twoColumnHeader(const ExperimentGrid &Grid, const std::string &Sub1,
                const std::string &Sub2) {
  std::vector<std::string> Header = {"Collector"};
  for (const workload::WorkloadSpec &Spec : Grid.workloads()) {
    Header.push_back(Spec.DisplayName + " " + Sub1);
    Header.push_back(Sub2);
  }
  return Header;
}

} // namespace

Table dtb::report::buildTable2(const ExperimentGrid &Grid) {
  Table T(twoColumnHeader(Grid, "Mean", "Max"));
  for (const std::string &Policy : Grid.policyNames()) {
    std::vector<std::string> Row = {collectorDisplayName(Policy)};
    for (const workload::WorkloadSpec &Spec : Grid.workloads()) {
      const sim::SimulationResult &R = Grid.result(Policy, Spec.Name);
      Row.push_back(Table::cell(bytesToKB(R.MemMeanBytes)));
      Row.push_back(Table::cell(bytesToKB(R.MemMaxBytes)));
    }
    T.addRow(std::move(Row));
  }
  T.addSeparator();

  std::vector<std::string> NoGcRow = {"No GC"};
  std::vector<std::string> LiveRow = {"Live"};
  for (const workload::WorkloadSpec &Spec : Grid.workloads()) {
    const trace::TraceStats &B = Grid.baseline(Spec.Name);
    NoGcRow.push_back(Table::cell(bytesToKB(B.NoGcMeanBytes)));
    NoGcRow.push_back(Table::cell(bytesToKB(B.TotalAllocatedBytes)));
    LiveRow.push_back(Table::cell(bytesToKB(B.LiveMeanBytes)));
    LiveRow.push_back(Table::cell(bytesToKB(B.LiveMaxBytes)));
  }
  T.addRow(std::move(NoGcRow));
  T.addRow(std::move(LiveRow));
  return T;
}

Table dtb::report::buildTable3(const ExperimentGrid &Grid) {
  Table T(twoColumnHeader(Grid, "50", "90"));
  for (const std::string &Policy : Grid.policyNames()) {
    std::vector<std::string> Row = {collectorDisplayName(Policy)};
    for (const workload::WorkloadSpec &Spec : Grid.workloads()) {
      const sim::SimulationResult &R = Grid.result(Policy, Spec.Name);
      Row.push_back(Table::cell(R.PauseMillis.median()));
      Row.push_back(Table::cell(R.PauseMillis.percentile90()));
    }
    T.addRow(std::move(Row));
  }
  return T;
}

Table dtb::report::buildTable4(const ExperimentGrid &Grid) {
  Table T(twoColumnHeader(Grid, "Traced", "Ovhd%"));
  for (const std::string &Policy : Grid.policyNames()) {
    std::vector<std::string> Row = {collectorDisplayName(Policy)};
    for (const workload::WorkloadSpec &Spec : Grid.workloads()) {
      const sim::SimulationResult &R = Grid.result(Policy, Spec.Name);
      Row.push_back(Table::cell(bytesToKB(R.TotalTracedBytes)));
      Row.push_back(Table::cell(R.CpuOverheadPercent, 1));
    }
    T.addRow(std::move(Row));
  }
  return T;
}

Table dtb::report::buildTable6(const ExperimentGrid &Grid) {
  Table T({"Program", "Exec (sec)", "Alloc (MB)", "Rate (KB/s)",
           "Objects", "Mean size (B)", "Collections"});
  for (const workload::WorkloadSpec &Spec : Grid.workloads()) {
    const trace::TraceStats &B = Grid.baseline(Spec.Name);
    const sim::SimulationResult &Full = Grid.result("full", Spec.Name);
    double AllocMB =
        static_cast<double>(B.TotalAllocatedBytes) / 1.0e6;
    double RateKBs = Spec.ProgramSeconds > 0.0
                         ? bytesToKB(B.TotalAllocatedBytes) /
                               Spec.ProgramSeconds
                         : 0.0;
    T.addRow({Spec.DisplayName, Table::cell(Spec.ProgramSeconds, 1),
              Table::cell(AllocMB, 0), Table::cell(RateKBs, 0),
              Table::cell(B.NumObjects), Table::cell(B.MeanObjectSize, 1),
              Table::cell(Full.NumScavenges)});
  }
  return T;
}
