file(REMOVE_RECURSE
  "CMakeFiles/runtime_weakref_test.dir/runtime_weakref_test.cpp.o"
  "CMakeFiles/runtime_weakref_test.dir/runtime_weakref_test.cpp.o.d"
  "runtime_weakref_test"
  "runtime_weakref_test.pdb"
  "runtime_weakref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_weakref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
