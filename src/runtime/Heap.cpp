//===- runtime/Heap.cpp - Allocation, barrier, roots ----------------------==//

#include "runtime/Heap.h"

#include "support/Error.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

using namespace dtb;
using namespace dtb::runtime;
using core::AllocClock;

Heap::Heap(HeapConfig Config) : Config(Config) {
  static std::atomic<unsigned> NextHeapId{1};
  TelemetryTrack =
      "heap#" + std::to_string(NextHeapId.fetch_add(1,
                                                    std::memory_order_relaxed));
}

Heap::~Heap() {
  DTB_CHECK(Mutators.empty(),
            "destroying a heap with registered mutator contexts; destroy "
            "every MutatorContext first");
  // TLAB-interior objects share their block's storage; only dedicated
  // allocations are released individually.
  for (Object *O : Objects)
    if (O->storageKind() == Object::StorageOwn)
      ::operator delete(static_cast<void *>(O));
  for (Object *O : Quarantine)
    if (O->storageKind() == Object::StorageOwn)
      ::operator delete(static_cast<void *>(O));
  for (auto &Block : TlabBlocks)
    ::operator delete(Block->Begin);
}

ThreadPool *Heap::tracePoolFor(bool *PoolIsPrivate) {
  *PoolIsPrivate = false;
  if (Config.TraceThreads == 1)
    return nullptr;
  if (Config.TraceThreads == 0)
    return defaultThreadPool();
  // N > 1: a heap-private pool of N - 1 workers (the collecting thread is
  // the N-th lane), created once and reused so collections do not respawn
  // threads.
  if (!TracePool)
    TracePool = std::make_unique<ThreadPool>(Config.TraceThreads - 1);
  *PoolIsPrivate = true;
  return TracePool.get();
}

void Heap::setPolicy(std::unique_ptr<core::BoundaryPolicy> NewPolicy) {
  if (!NewPolicy)
    fatalError("heap policy must be non-null");
  Policy = std::move(NewPolicy);
  Policy->reset();
}

Object *Heap::allocate(uint32_t NumSlots, uint32_t RawBytes) {
  Object *O = tryAllocate(NumSlots, RawBytes);
  if (!O)
    fatalError("heap limit cannot be satisfied even after an emergency "
               "full collection; use tryAllocate for a recoverable OOM");
  return O;
}

void Heap::recordDegradation(DegradationEvent Event) {
  DegradationTotal += 1;
  DegradationKindTotals[static_cast<unsigned>(Event.Kind)] += 1;
  // The black box sees every rung (ladder entry, watchdog, pessimization)
  // and the first few trigger a postmortem dump of the retained tail —
  // the flight recorder works even with telemetry compiled out.
  FlightRec.record(FlightEventKind::Degradation, Event.Time,
                   static_cast<uint64_t>(Event.Kind), Event.ResidentBytes);
  FlightRec.autoDump(flightDumpStream(), degradationKindName(Event.Kind));
  if (telemetry::enabled()) {
    // One consistent story with HeapDump: every ladder rung is also a
    // telemetry instant plus a per-kind counter.
    telemetry::MetricsRegistry::global()
        .counter(std::string("runtime.degradation.") +
                 degradationKindName(Event.Kind))
        .add(1);
    telemetry::Event E;
    E.Phase = telemetry::EventPhase::Instant;
    E.Track = TelemetryTrack;
    E.Name = "degradation";
    E.ScavengeIndex = History.size();
    E.TsClock = Event.Time;
    E.Args.push_back(telemetry::arg("kind", std::string(degradationKindName(
                                                Event.Kind))));
    E.Args.push_back(telemetry::arg("detail", Event.Detail));
    E.Args.push_back(telemetry::arg("resident_bytes", Event.ResidentBytes));
    telemetry::recorder().emit(std::move(E));
  }
  DegradationLog.push_back(std::move(Event));
  while (Config.DegradationLogLimit != 0 &&
         DegradationLog.size() > Config.DegradationLogLimit)
    DegradationLog.pop_front();
}

bool Heap::ensureHeadroom(uint64_t Gross) {
  bool Injected = faultRequestedAt(FaultSite::Allocation);
  auto overLimit = [&] {
    return Config.HeapLimitBytes != 0 &&
           ResidentBytes + Gross > Config.HeapLimitBytes;
  };
  if (!Injected && !overLimit())
    return true;
  const char *Why = overLimit() ? "heap limit reached"
                                : "injected allocation fault";
  return runPressureLadder(Gross, Why);
}

bool Heap::runPressureLadder(uint64_t Gross, const char *Why) {
  auto overLimit = [&] {
    return Config.HeapLimitBytes != 0 &&
           ResidentBytes + Gross > Config.HeapLimitBytes;
  };

  // Mid-cycle rungs: while an incremental cycle is open, automatic
  // triggering is suspended, so pressure must be relieved through the
  // cycle itself before the ordinary ladder below can run.
  if (Inc.Active && !InCollection) {
    // Rung i1: accelerate — run extra quanta on the open cycle right now.
    // The cheapest response: the cycle may be a few quanta from sweeping
    // the garbage that relieves the pressure.
    size_t RecordsBefore = History.size();
    unsigned Extra = 0;
    while (Extra != Config.PressureAccelerateQuanta && Inc.Active) {
      ++Extra;
      if (incrementalScavengeStep())
        break;
    }
    bool Completed = History.size() != RecordsBefore;
    recordDegradation({DegradationKind::CycleAccelerated, Clock, Gross,
                       Config.HeapLimitBytes, ResidentBytes,
                       std::string(Why) + "; ran " + std::to_string(Extra) +
                           " pressure " + (Extra == 1 ? "quantum" : "quanta") +
                           (Completed ? " (cycle completed)" : "")});
    if (!overLimit())
      return true;

    // Rung i2: complete-now — drain the cycle when its remaining gray
    // work is bounded (a few budgets' worth), trading one oversized pause
    // for the cycle's full reclamation.
    if (Inc.Active) {
      uint64_t GrayBytes = 0;
      for (const Object *O : Inc.Gray)
        GrayBytes += O->grossBytes();
      uint64_t Budget = Config.ScavengeBudgetBytes;
      if (Budget == 0 || GrayBytes <= 4 * Budget) {
        finishIncrementalScavenge();
        recordDegradation({DegradationKind::CycleCompletedEarly, Clock, Gross,
                           Config.HeapLimitBytes, ResidentBytes, Why});
        if (!overLimit())
          return true;
      }
    }

    // Rung i3: abort — the cycle itself is now the obstacle (it holds the
    // trigger suspended and its marking is stale against the pressure);
    // cancel it so the full-strength rungs below can run. Aborting is
    // always safe: the heap is restored as if the cycle never started.
    if (Inc.Active)
      abortIncrementalCycle("mid-cycle allocation pressure");
  }

  // Rung 1: an out-of-schedule scavenge at the policy's boundary — the
  // cheap recovery, reclaiming whatever the policy already threatens.
  if (!InCollection && Policy) {
    collect();
    recordDegradation({DegradationKind::EmergencyScavenge, Clock, Gross,
                       Config.HeapLimitBytes, ResidentBytes, Why});
    if (!overLimit())
      return true;
  }

  // Rung 2: an emergency FULL collection at TB = 0, the paper's always-
  // admissible boundary — reclaims every dead byte, tenured garbage
  // included.
  if (!InCollection) {
    collectAtBoundary(0);
    recordDegradation({DegradationKind::EmergencyFullCollection, Clock,
                       Gross, Config.HeapLimitBytes, ResidentBytes, Why});
  }

  // Rung 3 (the AllocationFailure event) is recorded by the caller.
  return !overLimit();
}

Object *Heap::tryAllocate(uint32_t NumSlots, uint32_t RawBytes) {
  // Bound payloads so gross size arithmetic stays within uint32_t. This is
  // a usage error, not memory pressure, so it stays fatal even here.
  constexpr uint32_t MaxSlots = 1u << 24;
  constexpr uint32_t MaxRaw = 1u << 28;
  if (NumSlots > MaxSlots || RawBytes > MaxRaw)
    fatalError("allocation exceeds object size limits");

  // Collect before satisfying the request so the new object cannot be
  // reclaimed before the mutator has had a chance to root it.
  maybeTriggerCollection();

  uint64_t Gross = sizeof(Object) +
                   static_cast<uint64_t>(NumSlots) * sizeof(Object *) +
                   RawBytes;
  if (!ensureHeadroom(Gross)) {
    recordDegradation({DegradationKind::AllocationFailure, Clock, Gross,
                       Config.HeapLimitBytes, ResidentBytes,
                       "degradation ladder exhausted"});
    return nullptr;
  }
  void *Memory = ::operator new(Gross);
  std::memset(Memory, 0, Gross);

  Object *O = new (Memory) Object();
  O->Magic = Object::MagicAlive;
  O->NumSlots = NumSlots;
  O->RawBytes = RawBytes;
  O->GrossBytes = static_cast<uint32_t>(Gross);

  Clock += Gross;
  O->Birth = Clock;

  Objects.push_back(O);
  ResidentBytes += Gross;
  BytesSinceCollect += Gross;
  Demographics.setBytesSinceLastScavenge(BytesSinceCollect);
  if (telemetry::enabled()) {
    // Registry references are stable for the process lifetime, so the
    // lookup cost is paid once; the disabled path is one relaxed load.
    static telemetry::Counter &AllocCount =
        telemetry::MetricsRegistry::global().counter("runtime.alloc.count");
    static telemetry::Counter &AllocBytes =
        telemetry::MetricsRegistry::global().counter("runtime.alloc.bytes");
    AllocCount.add(1);
    AllocBytes.add(Gross);
  }
  return O;
}

void Heap::writeSlot(Object *Source, uint32_t SlotIndex, Object *Value) {
  DTB_CHECK(Source && Source->isAlive(), "store into a dead object");
  DTB_CHECK(!Value || Value->isAlive(), "storing a dead object reference");
  DTB_CHECK(SlotIndex < Source->numSlots(), "slot index out of range");
  Source->setSlotRaw(SlotIndex, Value);
  // Dijkstra-style incremental greying: between incremental quanta a
  // store can hide an unmarked threatened object behind an already-
  // scanned (black) source, so the barrier re-greys the stored value; the
  // next step marks it. Objects born after the cycle's clock snapshot are
  // black by construction and need no greying.
  if (Inc.Active && Value && Value->birth() > Inc.Boundary &&
      Value->birth() <= Inc.BlackClock && !Value->isMarked())
    Inc.PendingGray.push_back(Value);
  // Write barrier: record forward-in-time pointers (older -> younger).
  // Backward-in-time pointers never need recording: if the source is
  // threatened it is traced anyway, and an immune source pointing at an
  // even older target cannot cross any boundary.
  if (Value && Value->birth() > Source->birth()) {
    if (faultRequestedAt(FaultSite::RemSetInsert)) {
      // The set's internal storage "failed": this entry cannot be
      // recorded, so precision is lost wholesale — same response as a
      // genuine overflow.
      handleRemSetOverflow("injected remembered-set insert fault");
      return;
    }
    RemSet.insert(Source, SlotIndex);
    if (Config.RemSetMaxEntries != 0 &&
        RemSet.size() > Config.RemSetMaxEntries) {
      handleRemSetOverflow("remembered-set entry bound exceeded");
    } else if (faultRequestedAt(FaultSite::WriteBarrier) &&
               !RemSetPessimized) {
      // The barrier's buffering "failed" after the entry was stored:
      // degrade conservatively by pessimizing the next boundary so
      // nothing can be missed.
      RemSetPessimized = true;
      recordDegradation({DegradationKind::BoundaryPessimized, Clock, 0, 0,
                         ResidentBytes, "injected write-barrier fault"});
    }
  }
}

void Heap::handleRemSetOverflow(const char *Why) {
  // Record only the transition into the pessimized state; repeated
  // overflows before the rebuilding collection add no information.
  if (!RemSetPessimized) {
    RemSetPessimized = true;
    recordDegradation({DegradationKind::RemSetOverflow, Clock, 0,
                       Config.RemSetMaxEntries, ResidentBytes, Why});
  }
  RemSet.clear();
}

void Heap::rebuildRememberedSet() {
  // After a full trace every resident object is known; re-derive the set
  // exactly. Runs inside the collection pause — O(live pointers), which a
  // full trace already paid.
  RemSet.clear();
  for (Object *O : Objects)
    for (uint32_t I = 0, E = O->numSlots(); I != E; ++I) {
      Object *Target = O->slot(I);
      if (Target && Target->birth() > O->birth())
        RemSet.insert(O, I);
    }
  RemSetPessimized = false;
  if (Config.RemSetMaxEntries != 0 && RemSet.size() > Config.RemSetMaxEntries)
    handleRemSetOverflow("rebuilt remembered set still exceeds its bound");
}

void Heap::dangerouslyWriteSlotWithoutBarrier(Object *Source,
                                              uint32_t SlotIndex,
                                              Object *Value) {
  Source->setSlotRaw(SlotIndex, Value);
}

void Heap::pinObject(Object *O) {
  DTB_CHECK(O && O->isAlive(), "pinning a dead object");
  if (!isPinned(O))
    Pinned.push_back(O);
}

void Heap::unpinObject(Object *O) {
  auto It = std::find(Pinned.begin(), Pinned.end(), O);
  if (It == Pinned.end())
    fatalError("unpinning an object that was never pinned");
  Pinned.erase(It);
}

bool Heap::isPinned(const Object *O) const {
  return std::find(Pinned.begin(), Pinned.end(), O) != Pinned.end();
}

void Heap::addGlobalRoot(Object **Location) {
  assert(Location && "null root location");
  GlobalRoots.push_back(Location);
}

void Heap::removeGlobalRoot(Object **Location) {
  auto It = std::find(GlobalRoots.begin(), GlobalRoots.end(), Location);
  if (It == GlobalRoots.end())
    fatalError("removing a root location that was never added");
  GlobalRoots.erase(It);
}

size_t Heap::firstBornAfter(AllocClock Boundary) const {
  auto It = std::upper_bound(
      Objects.begin(), Objects.end(), Boundary,
      [](AllocClock B, const Object *O) { return B < O->birth(); });
  return static_cast<size_t>(It - Objects.begin());
}

void Heap::maybeTriggerCollection() {
  // While an incremental cycle is active the embedder drives collection
  // pacing through incrementalScavengeStep(); automatic triggering would
  // drain the cycle mid-allocation and defeat the bounded-pause contract.
  if (Config.TriggerBytes == 0 || !Policy || InCollection || Inc.Active)
    return;
  if (BytesSinceCollect >= Config.TriggerBytes)
    collect();
}

core::ScavengeRecord Heap::collect() {
  if (!Policy)
    fatalError("collect() without a policy; use collectAtBoundary()");
  // Own the stopped world for the whole decision + collection so the
  // policy's inputs (clock, residency, demographics) are a consistent
  // snapshot even with mutator contexts running.
  WorldPause Pause(*this);
  // Close out any incremental cycle first so the policy decides against a
  // history that includes it.
  if (Inc.Active)
    finishIncrementalScavenge();

  core::BoundaryRequest Request;
  Request.Index = History.size() + 1;
  Request.Now = Clock;
  Request.MemBytes = ResidentBytes;
  Request.History = &History;
  Request.Demo = DemoOverride ? DemoOverride : &Demographics;
  std::string Note;
  Request.DegradationNote = &Note;
  std::string Rule = "unspecified";
  Request.RuleFired = &Rule;
  Request.Profiler = &Profiler;
  core::BoundaryDecision Decision;
  // The decision explanation drives the telemetry "tb" instant; fill it
  // only when that instant will be emitted (the extra demographic queries
  // it costs are value-pure, so this cannot change the boundary).
  if (telemetry::enabled())
    Request.Decision = &Decision;

  // The FIXED1 boundary t_{n-1}: threatens only the newest interval, needs
  // no demographics, and is always admissible — the standing fallback when
  // the policy cannot be trusted.
  AllocClock Fallback =
      History.timeOf(static_cast<int64_t>(Request.Index) - 1);

  AllocClock Boundary;
  if (faultRequestedAt(FaultSite::PolicyEvaluation)) {
    Boundary = Fallback;
    Rule = "degraded";
    recordDegradation({DegradationKind::PolicyFallback, Clock, 0, 0,
                       ResidentBytes,
                       "injected policy-evaluation fault; FIXED1 fallback"});
  } else {
    {
      // Decision latency is wall time: it goes to the "wall." metrics,
      // never the deterministic event stream.
      telemetry::TelemetrySpan Span("runtime.policy_decision");
      profiling::ProfilePhase Phase(&Profiler,
                                    profiling::phase::PolicyDecision);
      Boundary = Policy->chooseBoundary(Request);
    }
    if (!Note.empty())
      recordDegradation({DegradationKind::PolicyFallback, Clock, 0, 0,
                         ResidentBytes, Note});
    if (Boundary > Clock) {
      // A buggy policy answered in the future. Every boundary in
      // [0, now] is admissible, so degrade to FIXED1 instead of aborting.
      Boundary = Fallback;
      Rule = "degraded";
      recordDegradation({DegradationKind::PolicyFallback, Clock, 0, 0,
                         ResidentBytes,
                         "policy chose a boundary in the future; FIXED1 "
                         "fallback"});
    }
  }
  if (telemetry::enabled())
    telemetry::MetricsRegistry::global()
        .counter("policy." + Policy->name() + ".rule." + Rule)
        .add(1);
  LastRule = Rule;
  LastNote = Note;
  PendingRule = std::move(Rule);
  LastDecision = Decision;
  LastDecisionValid = Request.Decision != nullptr;
  PendingDecisionValid = LastDecisionValid;
  core::ScavengeRecord Record = collectAtBoundary(Boundary);
  PendingRule.clear();
  PendingDecisionValid = false;
  return Record;
}

void Heap::reclaimObject(Object *O) {
  RemSet.removeSource(O);
  // releaseStorage (CopyingCollector.cpp) poisons the payload in
  // quarantine mode so any use-after-free is glaring, while keeping the
  // storage so stale pointers can be detected via the canary.
  releaseStorage(O);
}

void Heap::registerWeakRef(WeakRef *Ref) { WeakRefs.push_back(Ref); }

void Heap::unregisterWeakRef(WeakRef *Ref) {
  auto It = std::find(WeakRefs.begin(), WeakRefs.end(), Ref);
  DTB_CHECK(It != WeakRefs.end(),
            "unregistering a weak reference that was never registered");
  *It = WeakRefs.back();
  WeakRefs.pop_back();
}

WeakRef::WeakRef(Heap &H, Object *Target) : H(H), Target(Target) {
  H.registerWeakRef(this);
}

WeakRef::~WeakRef() { H.unregisterWeakRef(this); }

HandleScope::~HandleScope() {
  DTB_CHECK(H.HandleSlots.size() >= Base,
            "handle scopes popped out of order");
  H.HandleSlots.resize(Base);
}

Object *&HandleScope::slot(Object *Initial) {
  H.HandleSlots.push_back(Initial);
  return H.HandleSlots.back();
}
