//===- tests/runtime_weakref_test.cpp -------------------------------------==//
//
// Tests for weak references under both collection strategies, including
// the DTB-specific behaviour: a weak reference to *immune garbage* stays
// readable until a boundary finally reaches the target.
//
//===----------------------------------------------------------------------===//

#include "runtime/WeakRef.h"

#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::runtime;

namespace {

HeapConfig config(CollectorKind Kind) {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Config.QuarantineFreedObjects = true;
  Config.Collector = Kind;
  return Config;
}

class WeakRefTest : public testing::TestWithParam<CollectorKind> {};

} // namespace

TEST_P(WeakRefTest, DoesNotKeepTargetAlive) {
  Heap H(config(GetParam()));
  WeakRef Weak(H, H.allocate(0, 16)); // Only a weak reference.
  ASSERT_NE(Weak.get(), nullptr);
  H.collectAtBoundary(0);
  EXPECT_EQ(Weak.get(), nullptr);
  EXPECT_EQ(H.residentObjects(), 0u);
}

TEST_P(WeakRefTest, SurvivingTargetRemainsReadable) {
  Heap H(config(GetParam()));
  HandleScope Scope(H);
  Object *&Strong = Scope.slot(H.allocate(0, 16));
  WeakRef Weak(H, Strong);
  H.collectAtBoundary(0);
  ASSERT_NE(Weak.get(), nullptr);
  EXPECT_TRUE(Weak.get()->isAlive());
  // Under copying, the weak reference followed the move.
  EXPECT_EQ(Weak.get(), Strong);
}

TEST_P(WeakRefTest, ImmuneGarbageStaysWeaklyReachableUntilUntenured) {
  // The DTB-specific observation: tenured garbage is not yet reclaimed,
  // so a weak reference to it still reads non-null until a boundary
  // moves behind the target.
  Heap H(config(GetParam()));
  Object *Doomed = H.allocate(0, 16);
  WeakRef Weak(H, Doomed);
  core::AllocClock Boundary = H.now();
  H.allocate(0, 16);

  H.collectAtBoundary(Boundary); // Target immune: survives as garbage.
  EXPECT_EQ(Weak.get(), Doomed);
  EXPECT_TRUE(Weak.get()->isAlive());

  H.collectAtBoundary(0); // Untenured: now reclaimed.
  EXPECT_EQ(Weak.get(), nullptr);
}

TEST_P(WeakRefTest, SetRetargets) {
  Heap H(config(GetParam()));
  HandleScope Scope(H);
  Object *&A = Scope.slot(H.allocate(0));
  WeakRef Weak(H);
  EXPECT_FALSE(Weak);
  Weak.set(A);
  EXPECT_TRUE(Weak);
  Weak.set(nullptr);
  EXPECT_EQ(Weak.get(), nullptr);
}

TEST_P(WeakRefTest, ManyWeakRefsMixedFates) {
  Heap H(config(GetParam()));
  HandleScope Scope(H);
  std::vector<std::unique_ptr<WeakRef>> Refs;
  for (int I = 0; I != 50; ++I) {
    Object *O = H.allocate(0, 8);
    if (I % 2 == 0)
      Scope.slot(O); // Half survive.
    Refs.push_back(std::make_unique<WeakRef>(H, O));
  }
  H.collectAtBoundary(0);
  int Live = 0, Cleared = 0;
  for (const auto &Ref : Refs) {
    if (Ref->get()) {
      EXPECT_TRUE(Ref->get()->isAlive());
      ++Live;
    } else {
      ++Cleared;
    }
  }
  EXPECT_EQ(Live, 25);
  EXPECT_EQ(Cleared, 25);
}

TEST_P(WeakRefTest, UnregisteredRefIsIgnored) {
  Heap H(config(GetParam()));
  {
    WeakRef Weak(H, H.allocate(0));
    EXPECT_EQ(H.weakRefs().size(), 1u);
  }
  EXPECT_TRUE(H.weakRefs().empty());
  H.collectAtBoundary(0); // Must not touch the destroyed reference.
}

TEST_P(WeakRefTest, WeakToPinnedSurvivesInPlace) {
  Heap H(config(GetParam()));
  Object *Pinned = H.allocate(0, 8);
  H.pinObject(Pinned);
  WeakRef Weak(H, Pinned);
  H.collectAtBoundary(0);
  EXPECT_EQ(Weak.get(), Pinned); // Pinned: alive, same address.
  EXPECT_TRUE(Weak.get()->isAlive());
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, WeakRefTest,
    testing::Values(CollectorKind::MarkSweep, CollectorKind::Copying),
    [](const testing::TestParamInfo<CollectorKind> &Info) {
      return Info.param == CollectorKind::MarkSweep ? "MarkSweep"
                                                    : "Copying";
    });
