//===- bench/ablation_lest.cpp - DTBMEM live-estimator ablation ----------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The paper's DTBMEM estimates the unknown live bytes L_{n-1} as the
// average of S_{n-1} (an overestimate: includes tenured garbage) and
// Trace_{n-1} (an underestimate: misses live immune bytes). This ablation
// compares the paper's midpoint against both extremes and the oracle,
// reporting constraint adherence (max memory vs 3000 KB) and tracing
// cost on every workload.
//
//===----------------------------------------------------------------------===//

#include "report/Experiments.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/Units.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>
#include <tuple>

using namespace dtb;

int main(int Argc, char **Argv) {
  uint64_t MemMax = 3'000'000;
  OptionParser Parser("DTBMEM L_est ablation: paper's midpoint vs the "
                      "S/Trace extremes and the oracle");
  Parser.addUInt("mem-max", "Memory budget in bytes", &MemMax);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;

  const std::tuple<core::LiveEstimateKind, const char *, const char *>
      Estimators[] = {
          {core::LiveEstimateKind::AverageOfSurvivedAndTraced,
           "midpoint (paper)", "midpoint"},
          {core::LiveEstimateKind::Survived, "S_{n-1} (over)", "survived"},
          {core::LiveEstimateKind::Traced, "Trace_{n-1} (under)", "traced"},
          {core::LiveEstimateKind::Oracle, "oracle live", "oracle"},
      };

  std::printf("DTBMEM live-estimator ablation (budget %.0f KB)\n\n",
              bytesToKB(MemMax));
  for (const workload::WorkloadSpec &Spec : workload::paperWorkloads()) {
    trace::Trace T = workload::generateTrace(Spec);
    sim::SimulatorConfig SimConfig;
    SimConfig.ProgramSeconds = Spec.ProgramSeconds;

    Table Tbl({"Estimator", "Mem mean (KB)", "Mem max (KB)",
               "Over budget?", "Traced (KB)", "Median pause (ms)"});
    for (const auto &[Kind, Label, Slug] : Estimators) {
      core::DtbMemoryPolicy Policy(MemMax, Kind);
      SimConfig.TelemetryTrack = "sim/" + Spec.Name + "/dtbmem-" + Slug;
      sim::SimulationResult R = sim::simulate(T, Policy, SimConfig);
      Tbl.addRow({Label, Table::cell(bytesToKB(R.MemMeanBytes)),
                  Table::cell(bytesToKB(R.MemMaxBytes)),
                  R.MemMaxBytes > MemMax ? "yes" : "no",
                  Table::cell(bytesToKB(R.TotalTracedBytes)),
                  Table::cell(R.PauseMillis.median(), 0)});
    }
    std::printf("%s:\n", Spec.DisplayName.c_str());
    Tbl.print(stdout);
    std::printf("\n");
  }

  std::printf("Expected shape: the Trace-based underestimate is "
              "optimistic about\nheadroom (more budget violations, least "
              "tracing); the S-based\noverestimate is conservative (never "
              "violates, traces more); the\npaper's midpoint sits between "
              "and close to the oracle.\n");
  return 0;
}
