//===- tests/sim_pointertraffic_test.cpp ----------------------------------==//
//
// Tests for the pointer-traffic model behind the §4.2 remembered-set
// overhead study.
//
//===----------------------------------------------------------------------===//

#include "sim/PointerTraffic.h"

#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::sim;

namespace {

trace::Trace mixedTrace(uint64_t Seed) {
  workload::WorkloadSpec Spec = workload::makeSteadyStateSpec(3'000'000,
                                                              Seed);
  return workload::generateTrace(Spec);
}

} // namespace

TEST(PointerTrafficTest, EmptyTrace) {
  RemSetDemand Demand = measureRemSetDemand(trace::Trace(), {});
  EXPECT_EQ(Demand.TotalStores, 0u);
}

TEST(PointerTrafficTest, StoreRateScalesWithAllocation) {
  trace::Trace T = mixedTrace(1);
  PointerTrafficModel Model;
  Model.StoresPerKB = 4.0;
  RemSetDemand Demand = measureRemSetDemand(T, Model);
  double ExpectedStores =
      4.0 * static_cast<double>(T.totalAllocated()) / 1000.0;
  EXPECT_NEAR(static_cast<double>(Demand.TotalStores), ExpectedStores,
              ExpectedStores * 0.02);
}

TEST(PointerTrafficTest, ZeroRateMakesNoStores) {
  trace::Trace T = mixedTrace(2);
  PointerTrafficModel Model;
  Model.StoresPerKB = 0.0;
  RemSetDemand Demand = measureRemSetDemand(T, Model);
  EXPECT_EQ(Demand.TotalStores, 0u);
  EXPECT_EQ(Demand.PeakUnifiedEntries, 0u);
}

TEST(PointerTrafficTest, ContainmentInvariants) {
  trace::Trace T = mixedTrace(3);
  RemSetDemand Demand = measureRemSetDemand(T, {});
  // Inter-generational pointers are a subset of forward-in-time pointers,
  // which are a subset of all stores; same for the peak residencies.
  EXPECT_LE(Demand.InterGenerationalStores, Demand.ForwardInTimeStores);
  EXPECT_LE(Demand.ForwardInTimeStores, Demand.TotalStores);
  EXPECT_LE(Demand.PeakGenerationalEntries, Demand.PeakUnifiedEntries);
  EXPECT_GT(Demand.ForwardInTimeStores, 0u);
}

TEST(PointerTrafficTest, Deterministic) {
  trace::Trace T = mixedTrace(4);
  RemSetDemand A = measureRemSetDemand(T, {});
  RemSetDemand B = measureRemSetDemand(T, {});
  EXPECT_EQ(A.TotalStores, B.TotalStores);
  EXPECT_EQ(A.ForwardInTimeStores, B.ForwardInTimeStores);
  EXPECT_EQ(A.PeakUnifiedEntries, B.PeakUnifiedEntries);
}

TEST(PointerTrafficTest, WiderGenerationBoundaryShrinksGenerationalSet) {
  trace::Trace T = mixedTrace(5);
  PointerTrafficModel Narrow;
  Narrow.GenerationAgeBytes = 100'000;
  PointerTrafficModel Wide;
  Wide.GenerationAgeBytes = 2'000'000;
  RemSetDemand NarrowDemand = measureRemSetDemand(T, Narrow);
  RemSetDemand WideDemand = measureRemSetDemand(T, Wide);
  // A wider young generation means fewer old->young crossings; the
  // unified set is unaffected.
  EXPECT_LT(WideDemand.InterGenerationalStores,
            NarrowDemand.InterGenerationalStores);
  EXPECT_EQ(WideDemand.ForwardInTimeStores,
            NarrowDemand.ForwardInTimeStores);
}

TEST(PointerTrafficTest, YoungBiasRaisesForwardFraction) {
  // Young-young stores are ~50% forward; old-old too; the bias mostly
  // shifts how often endpoints are near each other in age. Check only
  // that the forward fraction stays near 1/2 (symmetry of (source,
  // target) draws), a structural property of the model.
  trace::Trace T = mixedTrace(6);
  PointerTrafficModel Model;
  RemSetDemand Demand = measureRemSetDemand(T, Model);
  double Fraction = static_cast<double>(Demand.ForwardInTimeStores) /
                    static_cast<double>(Demand.TotalStores);
  EXPECT_GT(Fraction, 0.40);
  EXPECT_LT(Fraction, 0.55);
}
