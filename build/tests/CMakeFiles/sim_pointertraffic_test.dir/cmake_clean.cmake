file(REMOVE_RECURSE
  "CMakeFiles/sim_pointertraffic_test.dir/sim_pointertraffic_test.cpp.o"
  "CMakeFiles/sim_pointertraffic_test.dir/sim_pointertraffic_test.cpp.o.d"
  "sim_pointertraffic_test"
  "sim_pointertraffic_test.pdb"
  "sim_pointertraffic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_pointertraffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
