//===- telemetry/Export.h - Telemetry exporters ----------------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reduces a sorted event stream and a metrics snapshot to the three
/// supported output formats:
///
///  * Chrome trace-event JSON — loadable in Perfetto / about://tracing:
///    scavenge spans ('X'), TB-decision and degradation instants ('i'),
///    and resident-byte counter series ('C'), one named Chrome "thread"
///    per track.
///  * CSV time series — one row per event, args flattened.
///  * Summary tables (support/Table) — per-(track, event) counts and
///    duration quantiles, plus the metrics registry.
///
/// All exporters consume the deterministic sorted() ordering; metrics with
/// the "wall." prefix are wall-clock-derived and skipped unless
/// IncludeWallClock is set (see Telemetry.h on determinism).
///
//===----------------------------------------------------------------------===//

#ifndef DTB_TELEMETRY_EXPORT_H
#define DTB_TELEMETRY_EXPORT_H

#include "support/Table.h"
#include "telemetry/Telemetry.h"

#include <cstdio>
#include <string>
#include <vector>

namespace dtb {
namespace telemetry {

/// Exporter knobs shared by the formats.
struct ExportOptions {
  /// Include "wall." metrics (and any "wall/..." tracks) in the output.
  /// Off by default: wall values differ run to run, everything else is
  /// deterministic.
  bool IncludeWallClock = false;
};

/// Writes Chrome trace-event JSON ({"traceEvents": [...]}) for \p Events
/// (already sorted; see EventBuffer::sorted). Logical clocks are exported
/// as microseconds: 1 byte of allocation = 1 us, pause durations at the
/// machine model's ms scaled to us.
void writeChromeTrace(const std::vector<Event> &Events,
                      const std::vector<MetricSample> &Metrics,
                      const ExportOptions &Options, std::FILE *Out);

/// Writes one CSV row per event: track, scavenge index, phase, name, ts,
/// duration (ms), then "key=value" args joined with ';'.
void writeCsv(const std::vector<Event> &Events, const ExportOptions &Options,
              std::FILE *Out);

/// Per-(track, name) aggregation of the event stream: count and — for
/// spans — exact duration quantiles via SampleSet, so pause quantiles here
/// match the paper-table benches bit for bit.
Table buildEventSummaryTable(const std::vector<Event> &Events,
                             const ExportOptions &Options);

/// The metrics registry rendered as a table (counters/gauges: value;
/// histograms: count, mean, p50/p90/p99, max).
Table buildMetricsTable(const std::vector<MetricSample> &Metrics,
                        const ExportOptions &Options);

/// Flat JSON object {"metrics": {name: value | {histogram...}}}. The
/// machine-readable form runtime_end_to_end --timing emits.
void writeMetricsJson(const std::vector<MetricSample> &Metrics,
                      const ExportOptions &Options, std::FILE *Out);

/// JSON string escaping for the exporters (shared with tests).
std::string escapeJson(const std::string &Text);

} // namespace telemetry
} // namespace dtb

#endif // DTB_TELEMETRY_EXPORT_H
