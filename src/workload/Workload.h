//===- workload/Workload.h - Synthetic allocation workloads ----*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic allocation-trace generators standing in for the paper's QPT
/// malloc/free traces of GhostScript, Espresso, SIS, and CFRAC (which are
/// not available). A workload is a sequence of *phases*; each phase
/// allocates a fraction of the program's bytes and draws object lifetimes
/// from a mixture of classes (exponential, uniform-range, or immortal),
/// measured in bytes of subsequent allocation.
///
/// The mixtures are calibrated so each generated trace matches the
/// program's published statistics — total allocation (Table 6), LIVE and
/// No-GC profiles (Table 2), and the lifetime structure implied by the
/// FULL/FIXED1/FIXED4 memory spreads. tests/workload_calibration_test.cpp
/// enforces the calibration bands.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_WORKLOAD_WORKLOAD_H
#define DTB_WORKLOAD_WORKLOAD_H

#include "support/Random.h"
#include "trace/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dtb {
namespace workload {

/// How a lifetime class distributes object lifetimes.
enum class LifetimeKind {
  /// Exponential with mean ParamA bytes.
  Exponential,
  /// Uniform over [ParamA, ParamB] bytes.
  Uniform,
  /// The object lives to the end of the program.
  Immortal,
};

/// One component of a phase's lifetime mixture.
struct LifetimeClass {
  /// Relative byte weight within the phase (need not sum to 1).
  double Weight = 0.0;
  LifetimeKind Kind = LifetimeKind::Exponential;
  /// Exponential mean, or uniform lower bound (bytes).
  double ParamA = 0.0;
  /// Uniform upper bound (bytes); unused otherwise.
  double ParamB = 0.0;
};

/// A contiguous region of the program's allocation with its own mixture.
struct Phase {
  /// Fraction of the program's total allocation in this phase.
  double AllocFraction = 0.0;
  std::vector<LifetimeClass> Classes;
};

/// Object-size distribution: lognormal, clamped.
struct SizeModel {
  /// Mean of log(size).
  double LogMean = 3.9; // exp(3.9) ~ 49 bytes.
  double LogSigma = 0.8;
  uint32_t MinSize = 16;
  uint32_t MaxSize = 4096;
};

/// Samples one object size from \p Model (lognormal, clamped into
/// [MinSize, MaxSize]). One size costs a fixed number of RNG draws, so
/// generated traces are reproducible across platforms.
uint32_t sampleObjectSize(Rng &R, const SizeModel &Model);

/// The mixture-of-lifetime-classes core shared by the paper workloads and
/// the serverload generator family (serverload/ServerLoad.h): picks a class
/// by byte weight, then samples a lifetime from it. Draw order (one uniform
/// for the class pick, then the class's own draws) matches the historical
/// generator exactly, so refactoring callers onto this sampler leaves every
/// seeded trace byte-identical.
class MixtureSampler {
public:
  /// \p Classes must be nonempty with positive total weight.
  explicit MixtureSampler(std::vector<LifetimeClass> Classes);

  /// Samples a lifetime in bytes of subsequent allocation. Immortal
  /// classes set \p *Immortal and return 0.
  trace::AllocClock sampleLifetime(Rng &R, bool *Immortal) const;

  const std::vector<LifetimeClass> &classes() const { return Classes; }
  double totalWeight() const { return TotalWeight; }

private:
  std::vector<LifetimeClass> Classes;
  double TotalWeight = 0.0;
};

/// A complete synthetic program description.
struct WorkloadSpec {
  std::string Name;
  /// Presentation name matching the paper's tables ("GHOST (1)", ...).
  std::string DisplayName;
  /// Target total allocation; the generator stops at the first object that
  /// reaches it, so actual totals overshoot by at most one object.
  uint64_t TotalAllocationBytes = 0;
  /// Mutator execution seconds at the paper's 10 MIPS (derived from the
  /// paper's published overhead ratios); used for Table 4.
  double ProgramSeconds = 0.0;
  SizeModel Sizes;
  std::vector<Phase> Phases;
  uint64_t Seed = 1;
};

/// Generates the allocation trace for \p Spec. Deterministic in the spec
/// (including its seed).
trace::Trace generateTrace(const WorkloadSpec &Spec);

/// The six calibrated workloads of the paper's evaluation, in table order:
/// GHOST(1), GHOST(2), ESPRESSO(1), ESPRESSO(2), SIS, CFRAC.
const std::vector<WorkloadSpec> &paperWorkloads();

/// Finds a paper workload by name ("ghost1", "ghost2", "espresso1",
/// "espresso2", "sis", "cfrac"); returns nullptr if unknown.
const WorkloadSpec *findWorkload(const std::string &Name);

/// A small generic steady-state workload for tests and examples: \p Total
/// bytes, mostly short-lived objects plus a medium class and an immortal
/// trickle.
WorkloadSpec makeSteadyStateSpec(uint64_t TotalBytes, uint64_t Seed);

} // namespace workload
} // namespace dtb

#endif // DTB_WORKLOAD_WORKLOAD_H
