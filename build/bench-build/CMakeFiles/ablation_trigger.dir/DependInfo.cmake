
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_trigger.cpp" "bench-build/CMakeFiles/ablation_trigger.dir/ablation_trigger.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_trigger.dir/ablation_trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/dtb_report.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dtb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dtb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dtb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dtb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dtb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
