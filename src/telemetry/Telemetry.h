//===- telemetry/Telemetry.h - Events, recorder, timing scopes -*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry event layer: structured events on logical timelines, a
/// process-wide recorder with a null-sink fast path, and RAII timing
/// scopes. The paper's argument is about *distributions* — median pause
/// near Trace_max, maximum memory near Mem_max — so the runtime and the
/// simulator emit one span per scavenge plus instant events for boundary
/// decisions and degradation rungs, and exporters (telemetry/Export.h)
/// reduce the stream to Chrome-trace JSON, CSV, or summary tables.
///
/// Determinism: events are keyed by a *track* (one logical timeline, e.g.
/// "sim/GHOST(1)/dtbfm" or "heap#1") and a logical scavenge index, and
/// timestamps are allocation-clock bytes with machine-model pause
/// durations — never wall time. Export sorts by (track, index, emission
/// order within track), so output is bit-identical for any --threads
/// value. Wall-clock measurements (TelemetrySpan) go to the metrics
/// registry only, under a "wall." name prefix that exporters skip unless
/// explicitly asked.
///
/// Overhead: instrumentation sites guard on telemetry::enabled(), a single
/// relaxed atomic load that folds to `false` at compile time when
/// DTB_TELEMETRY is 0 (CMake -DDTB_ENABLE_TELEMETRY=OFF), letting the
/// compiler delete the whole emission path.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_TELEMETRY_TELEMETRY_H
#define DTB_TELEMETRY_TELEMETRY_H

#include "telemetry/Metrics.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#ifndef DTB_TELEMETRY
#define DTB_TELEMETRY 1
#endif

namespace dtb {
namespace telemetry {

/// One key/value annotation on an event. Values are stored pre-rendered;
/// IsString distinguishes JSON strings from bare numbers at export time.
struct EventArg {
  std::string Key;
  std::string Value;
  bool IsString = false;
};

EventArg arg(std::string Key, uint64_t Value);
EventArg arg(std::string Key, int64_t Value);
EventArg arg(std::string Key, double Value);
EventArg arg(std::string Key, std::string Value);

/// Event phases, matching the Chrome trace-event phases they export to.
enum class EventPhase : char {
  /// A duration span ('X'): has a logical timestamp and a duration.
  Span = 'X',
  /// An instant event ('i'): a point annotation (TB decision, degradation
  /// rung).
  Instant = 'i',
  /// A counter sample ('C'): one numeric series point per argument.
  Counter = 'C',
};

/// One telemetry event on a logical timeline.
struct Event {
  EventPhase Phase = EventPhase::Instant;
  /// The timeline this event belongs to; exported as a named Chrome-trace
  /// thread. Events on one track must be emitted in deterministic order.
  std::string Track;
  std::string Name;
  /// Logical ordering key: the 1-based scavenge index (0 for events not
  /// tied to a scavenge).
  uint64_t ScavengeIndex = 0;
  /// Logical timestamp: the allocation clock (bytes), exported as
  /// microseconds.
  uint64_t TsClock = 0;
  /// Span duration in machine-model milliseconds (spans only).
  double DurMillis = 0.0;
  std::vector<EventArg> Args;
  /// Global emission sequence, assigned by the buffer; used only to keep
  /// same-track events in emission order when sorting for export.
  uint64_t Seq = 0;
};

/// Receives emitted events.
class EventSink {
public:
  virtual ~EventSink();
  virtual void emit(Event E) = 0;
};

/// A thread-safe accumulating sink; the standard destination when
/// telemetry is enabled.
class EventBuffer final : public EventSink {
public:
  void emit(Event E) override;

  /// Copies the events sorted for export: by track, then scavenge index,
  /// then emission order. The result is independent of how concurrently
  /// emitting tracks interleaved.
  std::vector<Event> sorted() const;

  size_t size() const;
  void clear();

private:
  mutable std::mutex Mutex;
  std::vector<Event> Events;
  uint64_t NextSeq = 0;
};

/// The process-wide recorder: a null-sink check plus an EventBuffer.
/// Disabled by default; TelemetryCli::TelemetrySession (or a test) enables
/// it for a scope.
class Recorder {
public:
  /// Starts recording into the internal buffer (cleared first).
  void enable();
  void disable();

  /// Routes one event to the buffer; callers must check enabled() first
  /// (emit on a disabled recorder is a no-op).
  void emit(Event E);

  EventBuffer &buffer() { return Buffer; }

  /// When set, wall-clock-derived values may be exported (they are always
  /// *recorded* under the "wall." metric prefix; this only affects
  /// exporters).
  bool wallClockExport() const {
    return WallClock.load(std::memory_order_relaxed);
  }
  void setWallClockExport(bool On) {
    WallClock.store(On, std::memory_order_relaxed);
  }

private:
  std::atomic<bool> WallClock{false};
  EventBuffer Buffer;
};

Recorder &recorder();

namespace detail {
/// Storage for enabled(). Constant-initialized (no static-init guard) and
/// written only by Recorder::enable/disable, so the enabled() fast path is
/// a single relaxed load of a global — no function call, no guard check.
extern std::atomic<bool> RecorderEnabled;
} // namespace detail

/// Whether any telemetry should be recorded right now. Instrumentation
/// sites guard on this; when compiled out it is constant false and the
/// guarded code is dead.
inline bool enabled() {
#if DTB_TELEMETRY
  return detail::RecorderEnabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// True when the library was compiled with telemetry support.
constexpr bool compiledIn() { return DTB_TELEMETRY != 0; }

/// A small dense id for the calling thread (0 for the first thread that
/// asks, then 1, 2, ...). Stable for the thread's lifetime.
unsigned threadId();

/// RAII wall-clock timing scope. On destruction (when telemetry is
/// enabled) records the elapsed nanoseconds into the global registry
/// histogram named "wall.<name>_ns". When wall-clock export is opted into
/// (--telemetry-wallclock) it additionally emits a span on the
/// "wall/thread-<tid>" track carrying the emitting thread's id, so
/// Perfetto shows real latencies per thread; by default wall values never
/// enter the event stream, keeping exports deterministic (see the file
/// comment).
class TelemetrySpan {
public:
  explicit TelemetrySpan(const char *Name);
  ~TelemetrySpan();

  TelemetrySpan(const TelemetrySpan &) = delete;
  TelemetrySpan &operator=(const TelemetrySpan &) = delete;

private:
  const char *Name;
  bool Armed;
  std::chrono::steady_clock::time_point Start;
};

} // namespace telemetry
} // namespace dtb

#endif // DTB_TELEMETRY_TELEMETRY_H
