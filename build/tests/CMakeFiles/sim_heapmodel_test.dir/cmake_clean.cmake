file(REMOVE_RECURSE
  "CMakeFiles/sim_heapmodel_test.dir/sim_heapmodel_test.cpp.o"
  "CMakeFiles/sim_heapmodel_test.dir/sim_heapmodel_test.cpp.o.d"
  "sim_heapmodel_test"
  "sim_heapmodel_test.pdb"
  "sim_heapmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_heapmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
