file(REMOVE_RECURSE
  "../bench/combined_constraints"
  "../bench/combined_constraints.pdb"
  "CMakeFiles/combined_constraints.dir/combined_constraints.cpp.o"
  "CMakeFiles/combined_constraints.dir/combined_constraints.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combined_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
