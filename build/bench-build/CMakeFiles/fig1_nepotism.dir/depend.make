# Empty dependencies file for fig1_nepotism.
# This may be replaced when dependencies are built.
