file(REMOVE_RECURSE
  "libdtb_report.a"
)
