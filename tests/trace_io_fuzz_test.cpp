//===- tests/trace_io_fuzz_test.cpp ---------------------------------------==//
//
// Robustness tests for trace deserialization: random corruption of valid
// inputs and entirely random byte strings must be either parsed into a
// well-formed trace or rejected cleanly — never crash, hang, or produce
// an invalid Trace.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include "support/Random.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::trace;

namespace {

std::string validBinary() {
  workload::WorkloadSpec Spec = workload::makeSteadyStateSpec(50'000, 3);
  return serializeBinary(workload::generateTrace(Spec));
}

/// Every successful parse must satisfy the structural verifier.
void expectParseIsSafe(std::string_view Data) {
  std::string Error;
  std::optional<Trace> Parsed = deserializeBinary(Data, &Error);
  if (Parsed.has_value()) {
    std::string VerifyError;
    EXPECT_TRUE(Parsed->verify(&VerifyError)) << VerifyError;
  } else {
    EXPECT_FALSE(Error.empty());
  }
}

class TraceIOFuzzTest : public testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(TraceIOFuzzTest, SingleByteCorruptionIsHandled) {
  std::string Valid = validBinary();
  Rng R(GetParam());
  for (int Round = 0; Round != 300; ++Round) {
    std::string Mutated = Valid;
    size_t Position = R.nextBelow(Mutated.size());
    Mutated[Position] = static_cast<char>(R.nextBelow(256));
    expectParseIsSafe(Mutated);
  }
}

TEST_P(TraceIOFuzzTest, TruncationAtEveryPrefixIsHandled) {
  std::string Valid = validBinary();
  Rng R(GetParam() * 3 + 1);
  for (int Round = 0; Round != 200; ++Round) {
    size_t Length = R.nextBelow(Valid.size());
    expectParseIsSafe(std::string_view(Valid).substr(0, Length));
  }
}

TEST_P(TraceIOFuzzTest, RandomBytesWithMagicAreHandled) {
  Rng R(GetParam() * 7 + 5);
  for (int Round = 0; Round != 300; ++Round) {
    std::string Junk = "DTBT";
    size_t Length = R.nextBelow(256);
    for (size_t I = 0; I != Length; ++I)
      Junk.push_back(static_cast<char>(R.nextBelow(256)));
    expectParseIsSafe(Junk);
  }
}

TEST_P(TraceIOFuzzTest, RandomTextIsHandled) {
  Rng R(GetParam() * 11 + 3);
  const char Alphabet[] = "0123456789 -#\nabcdefghij";
  for (int Round = 0; Round != 300; ++Round) {
    std::string Text = "# dtb-trace v1\n";
    size_t Length = R.nextBelow(200);
    for (size_t I = 0; I != Length; ++I)
      Text.push_back(Alphabet[R.nextBelow(sizeof(Alphabet) - 1)]);
    std::string Error;
    std::optional<Trace> Parsed = deserializeText(Text, &Error);
    if (Parsed.has_value()) {
      std::string VerifyError;
      EXPECT_TRUE(Parsed->verify(&VerifyError)) << VerifyError;
    }
  }
}

TEST(TraceIOFuzzTest, OversizedVarintRejected) {
  // A count field of eleven 0x80 continuation bytes overflows 64 bits.
  std::string Data = "DTBT";
  Data.push_back(1); // Version.
  for (int I = 0; I != 11; ++I)
    Data.push_back(static_cast<char>(0x80));
  Data.push_back(0x01);
  std::string Error;
  EXPECT_FALSE(deserializeBinary(Data, &Error).has_value());
}

TEST(TraceIOFuzzTest, HugeDeclaredCountWithNoDataRejected) {
  std::string Data = "DTBT";
  Data.push_back(1);
  // Varint for ~1e18 objects, then nothing.
  uint64_t Count = 1'000'000'000'000'000'000ull;
  while (Count >= 0x80) {
    Data.push_back(static_cast<char>((Count & 0x7f) | 0x80));
    Count >>= 7;
  }
  Data.push_back(static_cast<char>(Count));
  std::string Error;
  EXPECT_FALSE(deserializeBinary(Data, &Error).has_value());
  EXPECT_NE(Error.find("truncated"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIOFuzzTest,
                         testing::Values(1ull, 2ull, 3ull));
