//===- tests/telemetry_metrics_test.cpp - Registry and histogram tests ---===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The metrics registry: stable references, thread-safe registration and
// increments, histogram quantile accuracy against exact sorting, and the
// disabled-mode guarantees of the recorder.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include "support/Random.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace dtb;
namespace tel = dtb::telemetry;

namespace {

TEST(MetricsRegistry, CountersAndGaugesRoundTrip) {
  tel::MetricsRegistry Registry;
  tel::Counter &C = Registry.counter("c");
  C.add(3);
  C.add();
  EXPECT_EQ(C.value(), 4u);
  EXPECT_EQ(&Registry.counter("c"), &C); // Same instrument on re-lookup.

  tel::Gauge &G = Registry.gauge("g");
  G.set(2.5);
  EXPECT_DOUBLE_EQ(G.value(), 2.5);
  EXPECT_EQ(Registry.size(), 2u);

  std::vector<tel::MetricSample> Snap = Registry.snapshot();
  ASSERT_EQ(Snap.size(), 2u);
  EXPECT_EQ(Snap[0].Name, "c");
  EXPECT_DOUBLE_EQ(Snap[0].Value, 4.0);
  EXPECT_EQ(Snap[1].Name, "g");
  EXPECT_DOUBLE_EQ(Snap[1].Value, 2.5);

  Registry.reset();
  EXPECT_EQ(C.value(), 0u);       // Registrations survive reset...
  EXPECT_EQ(Registry.size(), 2u); // ...so cached references stay valid.
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  tel::MetricsRegistry Registry;
  Registry.counter("z");
  Registry.histogram("m").record(1.0);
  Registry.gauge("a");
  std::vector<tel::MetricSample> Snap = Registry.snapshot();
  ASSERT_EQ(Snap.size(), 3u);
  EXPECT_EQ(Snap[0].Name, "a");
  EXPECT_EQ(Snap[1].Name, "m");
  EXPECT_EQ(Snap[2].Name, "z");
}

TEST(MetricsRegistry, ConcurrentIncrementsUnderThreadPool) {
  tel::MetricsRegistry Registry;
  constexpr size_t Tasks = 64;
  constexpr uint64_t PerTask = 10'000;
  ThreadPool Pool(4);
  // Registration races (every task looks the instruments up) and counted
  // increments from all pool workers.
  parallelFor(
      Tasks,
      [&](size_t I) {
        tel::Counter &C = Registry.counter("shared");
        tel::LogHistogram &H = Registry.histogram("hist");
        for (uint64_t K = 0; K != PerTask; ++K)
          C.add(1);
        H.record(static_cast<double>(I + 1));
      },
      &Pool);
  EXPECT_EQ(Registry.counter("shared").value(), Tasks * PerTask);
  EXPECT_EQ(Registry.histogram("hist").count(), Tasks);
  EXPECT_DOUBLE_EQ(Registry.histogram("hist").min(), 1.0);
  EXPECT_DOUBLE_EQ(Registry.histogram("hist").max(),
                   static_cast<double>(Tasks));
}

TEST(LogHistogram, QuantilesTrackExactSortWithinRelativeError) {
  tel::LogHistogram H;
  SampleSet Exact;
  Rng R(20260806);
  for (int I = 0; I != 5'000; ++I) {
    // Span several orders of magnitude, like pause times do.
    double X = std::exp(R.nextDouble() * 10.0); // [1, e^10).
    H.record(X);
    Exact.add(X);
  }
  double Tolerance = H.bucketing().relativeError();
  for (double Q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    double Approx = H.quantile(Q);
    double Truth = Exact.quantile(Q);
    EXPECT_NEAR(Approx, Truth, Truth * 2.0 * Tolerance)
        << "quantile " << Q;
  }
  EXPECT_DOUBLE_EQ(H.min(), Exact.quantile(0.0)); // Extremes are exact.
  EXPECT_DOUBLE_EQ(H.max(), Exact.quantile(1.0));
  EXPECT_NEAR(H.sum(), Exact.sum(), Exact.sum() * 1e-9);
}

TEST(LogHistogram, SingleSampleQuantilesAllReturnIt) {
  tel::LogHistogram H;
  H.record(42.0);
  double Mid = H.quantile(0.5);
  // p0, p50, p100 on one sample must agree (the nearest-rank clamp), and
  // land within the holding bucket's width of the sample.
  EXPECT_DOUBLE_EQ(H.quantile(0.0), Mid);
  EXPECT_DOUBLE_EQ(H.quantile(1.0), Mid);
  EXPECT_NEAR(Mid, 42.0, 42.0 * 2.0 * H.bucketing().relativeError());
}

TEST(Recorder, DisabledRecorderDropsEvents) {
  tel::Recorder &R = tel::recorder();
  R.disable();
  R.buffer().clear();
  EXPECT_FALSE(tel::enabled());
  tel::Event E;
  E.Track = "t";
  E.Name = "dropped";
  R.emit(std::move(E));
  EXPECT_EQ(R.buffer().size(), 0u);
}

TEST(Recorder, EnableClearsAndRecords) {
  if (!tel::compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  tel::Recorder &R = tel::recorder();
  R.enable();
  EXPECT_TRUE(tel::enabled());
  tel::Event E;
  E.Track = "t";
  E.Name = "kept";
  R.emit(std::move(E));
  EXPECT_EQ(R.buffer().size(), 1u);
  R.disable();
  R.buffer().clear();
}

TEST(Recorder, SortedOrderIsTrackThenIndexThenSeq) {
  if (!tel::compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  tel::Recorder &R = tel::recorder();
  R.enable();
  auto emit = [&](const char *Track, uint64_t Index, const char *Name) {
    tel::Event E;
    E.Track = Track;
    E.ScavengeIndex = Index;
    E.Name = Name;
    R.emit(std::move(E));
  };
  // Emission order deliberately interleaves tracks and indexes.
  emit("b", 2, "b2");
  emit("a", 1, "a1-first");
  emit("b", 1, "b1");
  emit("a", 1, "a1-second");
  std::vector<tel::Event> Sorted = R.buffer().sorted();
  ASSERT_EQ(Sorted.size(), 4u);
  EXPECT_EQ(Sorted[0].Name, "a1-first");
  EXPECT_EQ(Sorted[1].Name, "a1-second"); // Seq breaks the tie in order.
  EXPECT_EQ(Sorted[2].Name, "b1");
  EXPECT_EQ(Sorted[3].Name, "b2");
  R.disable();
  R.buffer().clear();
}

TEST(TelemetrySpan, RecordsWallHistogramOnlyWhenEnabled) {
  tel::Recorder &R = tel::recorder();
  R.disable();
  uint64_t Before =
      tel::MetricsRegistry::global().histogram("wall.span_probe_ns").count();
  { tel::TelemetrySpan Span("span_probe"); }
  EXPECT_EQ(
      tel::MetricsRegistry::global().histogram("wall.span_probe_ns").count(),
      Before);
  if (!tel::compiledIn())
    return;
  R.enable();
  { tel::TelemetrySpan Span("span_probe"); }
  EXPECT_EQ(
      tel::MetricsRegistry::global().histogram("wall.span_probe_ns").count(),
      Before + 1);
  R.disable();
  R.buffer().clear();
}

} // namespace
