//===- bench/combined_constraints.cpp - Dual-constraint collectors -------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The paper offers memory OR pause-time constraints ("depending upon
// which is more important to the user"). Because policies are just
// boundary functions, both can be imposed at once by composing them
// (core/Combinators.h):
//
//   oldest(dtbmem, dtbfm)   — memory is the hard constraint; the pause
//                             budget is honoured only when compatible.
//   youngest(dtbfm, dtbmem) — the pause budget is hard; memory is
//                             best-effort.
//
// This bench runs both compositions against the single-constraint
// policies on every workload and reports which constraints held.
//
//===----------------------------------------------------------------------===//

#include "core/Combinators.h"
#include "report/Experiments.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "support/Units.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace dtb;

int main(int Argc, char **Argv) {
  uint64_t TraceMax = 50'000;
  uint64_t MemMax = 3'000'000;
  uint64_t Threads = 0;
  OptionParser Parser("Imposes the paper's memory and pause constraints "
                      "simultaneously via policy composition");
  Parser.addUInt("trace-max", "Pause budget in traced bytes", &TraceMax);
  Parser.addUInt("mem-max", "Memory budget in bytes", &MemMax);
  addThreadsOption(Parser, &Threads);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;
  applyThreadsOption(Threads);

  core::MachineModel Machine;
  std::printf("Dual constraints: %.0f ms pauses AND %.0f KB memory\n\n",
              Machine.pauseMillisForTracedBytes(TraceMax),
              bytesToKB(MemMax));

  auto MakePolicy =
      [&](const std::string &Kind) -> std::unique_ptr<core::BoundaryPolicy> {
    core::PolicyConfig Config;
    Config.TraceMaxBytes = TraceMax;
    Config.MemMaxBytes = MemMax;
    if (Kind == "mem-first")
      return std::make_unique<core::OldestBoundaryPolicy>(
          core::createPolicy("dtbmem", Config),
          core::createPolicy("dtbfm", Config));
    if (Kind == "pause-first")
      return std::make_unique<core::YoungestBoundaryPolicy>(
          core::createPolicy("dtbfm", Config),
          core::createPolicy("dtbmem", Config));
    return core::createPolicy(Kind, Config);
  };

  // Trace generation fans out per workload, then the policy runs fan out
  // per (workload, kind) cell; rendering stays serial so output is
  // identical for any --threads value.
  const std::vector<workload::WorkloadSpec> &Specs =
      workload::paperWorkloads();
  const std::vector<const char *> Kinds = {"dtbmem", "dtbfm", "mem-first",
                                           "pause-first"};
  std::vector<trace::Trace> Traces(Specs.size());
  parallelFor(Specs.size(),
              [&](size_t W) { Traces[W] = workload::generateTrace(Specs[W]); });

  std::vector<sim::SimulationResult> Results(Specs.size() * Kinds.size());
  parallelFor(Results.size(), [&](size_t Cell) {
    size_t W = Cell / Kinds.size();
    sim::SimulatorConfig SimConfig;
    SimConfig.ProgramSeconds = Specs[W].ProgramSeconds;
    const char *Kind = Kinds[Cell % Kinds.size()];
    SimConfig.TelemetryTrack = "sim/" + Specs[W].Name + "/" + Kind;
    auto Policy = MakePolicy(Kind);
    Results[Cell] = sim::simulate(Traces[W], *Policy, SimConfig);
  });

  for (size_t W = 0; W != Specs.size(); ++W) {
    Table Tbl({"Policy", "Mem max (KB)", "mem ok", "Median (ms)",
               "pause ok", "Traced (KB)"});
    for (size_t K = 0; K != Kinds.size(); ++K) {
      const sim::SimulationResult &R = Results[W * Kinds.size() + K];
      double MedianMs = R.PauseMillis.median();
      double BudgetMs = Machine.pauseMillisForTracedBytes(TraceMax);
      Tbl.addRow({Kinds[K], Table::cell(bytesToKB(R.MemMaxBytes)),
                  R.MemMaxBytes <= MemMax ? "yes" : "NO",
                  Table::cell(MedianMs, 0),
                  MedianMs <= BudgetMs * 1.3 ? "yes" : "NO",
                  Table::cell(bytesToKB(R.TotalTracedBytes))});
    }
    std::printf("%s:\n", Specs[W].DisplayName.c_str());
    Tbl.print(stdout);
    std::printf("\n");
  }

  std::printf("Reading: where both constraints are simultaneously "
              "satisfiable the two\ncompositions agree; where they "
              "conflict (SIS: live data alone exceeds the\nmemory "
              "budget), mem-first inherits DTBMEM's full-collection "
              "pauses while\npause-first keeps pauses bounded and lets "
              "memory exceed the budget —\nthe user picks which promise "
              "is hard.\n");
  return 0;
}
