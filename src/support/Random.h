//===- support/Random.h - Deterministic pseudo-random sources --*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic random-number library. The workload
/// generators must produce byte-identical traces for a given seed on every
/// platform, so we avoid std::mt19937 + std::*_distribution (whose outputs
/// are implementation-defined for some distributions) and implement the few
/// distributions we need directly on top of SplitMix64.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_SUPPORT_RANDOM_H
#define DTB_SUPPORT_RANDOM_H

#include <cassert>
#include <cmath>
#include <cstdint>

namespace dtb {

/// SplitMix64 generator: tiny state, excellent statistical quality for
/// simulation workloads, and trivially reproducible.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    // 53 random mantissa bits scaled into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns an integer uniformly distributed in [0, Bound). \p Bound must
  /// be nonzero. Uses the widening-multiply technique (slight modulo bias is
  /// irrelevant for 64-bit state and simulation use).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a nonzero bound");
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns an integer uniformly distributed in [Lo, Hi]. Requires
  /// Lo <= Hi.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) {
    if (P <= 0.0)
      return false;
    if (P >= 1.0)
      return true;
    return nextDouble() < P;
  }

  /// Samples an exponential distribution with the given \p Mean.
  double nextExponential(double Mean) {
    assert(Mean > 0.0 && "exponential mean must be positive");
    // -log(1 - U) with U in [0, 1); 1 - U is in (0, 1] so log is finite.
    return -Mean * std::log1p(-nextDouble());
  }

  /// Samples a standard normal via Marsaglia's polar method.
  double nextStandardNormal() {
    for (;;) {
      double U = 2.0 * nextDouble() - 1.0;
      double V = 2.0 * nextDouble() - 1.0;
      double S = U * U + V * V;
      if (S > 0.0 && S < 1.0)
        return U * std::sqrt(-2.0 * std::log(S) / S);
    }
  }

  /// Samples a lognormal distribution parameterized by the mean and sigma of
  /// the underlying normal.
  double nextLogNormal(double Mu, double Sigma) {
    return std::exp(Mu + Sigma * nextStandardNormal());
  }

  /// Derives an independent child generator; useful for giving each workload
  /// phase or object class its own stream.
  Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

private:
  uint64_t State;
};

} // namespace dtb

#endif // DTB_SUPPORT_RANDOM_H
