//===- examples/quickstart.cpp - Five-minute tour of the library ---------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The smallest useful program: a managed heap collected by the paper's
// memory-constrained dynamic-threatening-boundary policy. We build a
// linked list, churn through garbage, and watch the collector keep the
// heap under the budget we asked for — the paper's whole point: one knob,
// in units the user already thinks in.
//
//===----------------------------------------------------------------------===//

#include "core/Policies.h"
#include "runtime/Heap.h"
#include "support/Units.h"

#include <cstdio>

using namespace dtb;

int main() {
  // 1. Configure a heap: collect every 64 KB of allocation, and ask the
  //    DTBMEM policy to keep total memory under 256 KB.
  runtime::HeapConfig Config;
  Config.TriggerBytes = 64 * 1000;

  runtime::Heap Heap(Config);
  core::PolicyConfig Policy;
  Policy.MemMaxBytes = 256 * 1000;
  Heap.setPolicy(core::createPolicy("dtbmem", Policy));

  // 2. Roots live in handle scopes (like a shadow stack).
  runtime::HandleScope Scope(Heap);
  runtime::Object *&List = Scope.slot(nullptr);

  // 3. Allocate: a list of 1000 nodes, interleaved with 50x their weight
  //    in garbage. Pointer stores go through writeSlot so the write
  //    barrier can track forward-in-time pointers.
  for (int I = 0; I != 1000; ++I) {
    runtime::Object *Node = Heap.allocate(/*NumSlots=*/1, /*RawBytes=*/8);
    *static_cast<int *>(Node->rawData()) = I;
    Heap.writeSlot(Node, 0, List);
    List = Node;
    for (int J = 0; J != 50; ++J)
      Heap.allocate(/*NumSlots=*/0, /*RawBytes=*/8); // Instant garbage.
  }

  // 4. The list survived every collection; the garbage did not.
  int Length = 0;
  for (runtime::Object *Node = List; Node; Node = Node->slot(0))
    ++Length;

  std::printf("list length:        %d (expected 1000)\n", Length);
  std::printf("total allocated:    %s\n",
              formatBytes(Heap.now()).c_str());
  std::printf("resident now:       %s (budget was 256 KB)\n",
              formatBytes(Heap.residentBytes()).c_str());
  std::printf("collections run:    %llu\n",
              static_cast<unsigned long long>(Heap.history().size()));

  // 5. Each scavenge record carries the paper's quantities.
  uint64_t MaxMem = 0;
  for (const core::ScavengeRecord &R : Heap.history().records())
    MaxMem = std::max(MaxMem, R.MemBeforeBytes);
  std::printf("max memory at GC:   %s\n", formatBytes(MaxMem).c_str());
  std::printf("last boundary:      %s back from the allocation clock\n",
              formatBytes(Heap.history().last().Time -
                          Heap.history().last().Boundary)
                  .c_str());
  return Length == 1000 ? 0 : 1;
}
