# Empty dependencies file for policy_optimal_test.
# This may be replaced when dependencies are built.
