//===- sim/Simulator.h - Trace-driven collector simulation -----*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace-driven garbage-collection simulator of the paper's §5:
/// allocation/deallocation events drive a heap model; scavenges are
/// triggered after every TriggerBytes of allocation (paper: 1 MB); a
/// threatening-boundary policy chooses what to collect; and the simulator
/// records memory usage, pause times, and tracing work, which are then
/// reduced to the paper's Table 2/3/4 metrics.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_SIM_SIMULATOR_H
#define DTB_SIM_SIMULATOR_H

#include "core/BoundaryPolicy.h"
#include "core/MachineModel.h"
#include "core/ScavengeHistory.h"
#include "profiling/Profiler.h"
#include "sim/HeapModel.h"
#include "support/Statistics.h"
#include "trace/Trace.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dtb {
namespace sim {

class TriggerPolicy;

/// Snapshot handed to a ScavengeObserver immediately after each simulated
/// scavenge completes. All references point at simulator-internal state
/// and are valid only for the duration of the callback.
struct ScavengeObservation {
  /// The scavenge record just appended to the history (index, time,
  /// boundary, traced/reclaimed/survived/mem-before bytes).
  const core::ScavengeRecord &Record;
  /// Rule identifier the policy reported through BoundaryRequest::RuleFired
  /// ("unspecified" when the policy wrote nothing).
  const std::string &RuleFired;
  /// Degradation note the policy reported, if any (empty otherwise).
  const std::string &DegradationNote;
  /// The post-scavenge heap model: only live objects born after the
  /// boundary plus unthreatened residents remain.
  const HeapModel &Heap;
  /// Machine-model pause for this scavenge in milliseconds.
  double PauseMillis = 0.0;
};

/// Callback invoked after every scavenge; the conformance harness uses it
/// to drive the managed runtime to the same allocation clock and
/// cross-check outcomes in lockstep. Throwing from the observer aborts
/// the simulation (the exception propagates out of simulate()).
using ScavengeObserver = std::function<void(const ScavengeObservation &)>;

/// Static simulation parameters.
struct SimulatorConfig {
  /// Bytes of allocation between scavenges (paper: 1,000,000). Ignored
  /// when Trigger is set.
  uint64_t TriggerBytes = 1'000'000;
  /// Optional when-to-collect policy (sim/Trigger.h); overrides
  /// TriggerBytes. Not owned; must outlive the simulation.
  TriggerPolicy *Trigger = nullptr;
  /// The pause/overhead cost model (paper: 10 MIPS, 500 KB/s tracing).
  core::MachineModel Machine;
  /// Mutator execution time in seconds, used for the CPU-overhead
  /// percentage; comes from the workload definition. Zero disables the
  /// overhead computation.
  double ProgramSeconds = 0.0;
  /// When true, record a (clock, resident bytes) curve for figures.
  bool RecordMemoryCurve = false;
  /// Curve sampling granularity between scavenges.
  uint64_t CurveSampleBytes = 100'000;
  /// When true, the heap model answers oracle queries with the original
  /// O(residents) scans instead of the incremental indexes — the timing
  /// baseline for bench/runtime_end_to_end --timing. Results are
  /// identical either way.
  bool UseNaiveHeapQueries = false;
  /// When true, every indexed heap-model query is cross-checked against
  /// the naive scan (fatal on divergence). For tests; very slow.
  bool CrossCheckHeapQueries = false;
  /// Telemetry timeline for this run's events ("sim/<workload>/<policy>").
  /// Empty keeps the run silent even when the recorder is enabled — the
  /// default, so parallel grid cells must opt in with distinct tracks.
  std::string TelemetryTrack;
  /// Optional per-scavenge callback (conformance harness). Setting it also
  /// forces the rule-fired and degradation-note sinks on, independent of
  /// telemetry.
  ScavengeObserver OnScavenge;
  /// Optional phase profiler: the simulator attributes each scavenge's
  /// work to the shared phase taxonomy (profiling/Profiler.h) — policy
  /// decision and boundary search by demographic-query count, trace and
  /// sweep by bytes — so sim profiles line up with runtime profiles row
  /// for row. Not owned; one profiler per concurrent simulate() call.
  profiling::PhaseProfiler *Profiler = nullptr;
};

/// One point of the Figure-2-style memory curve.
struct MemoryCurvePoint {
  core::AllocClock Clock = 0;
  uint64_t ResidentBytes = 0;
  /// True for the post-scavenge point (the vertical drop in Figure 2).
  bool AfterScavenge = false;
};

/// Everything measured by one simulation run.
struct SimulationResult {
  /// Per-scavenge records (t_n, TB_n, Trace_n, Mem_n, S_n, ...).
  core::ScavengeHistory History;

  /// Time-weighted mean and max of resident bytes (Table 2 rows).
  double MemMeanBytes = 0.0;
  uint64_t MemMaxBytes = 0;

  /// Per-scavenge pause times in milliseconds (Table 3 medians/90ths).
  SampleSet PauseMillis;

  /// Total bytes traced over the run and the CPU overhead (Table 4).
  uint64_t TotalTracedBytes = 0;
  double CpuOverheadPercent = 0.0;

  uint64_t NumScavenges = 0;

  /// Optional Figure-2 curve (empty unless requested).
  std::vector<MemoryCurvePoint> Curve;
};

/// Runs \p Policy over \p T under \p Config. The policy is reset() first,
/// so a policy instance may be reused across runs.
SimulationResult simulate(const trace::Trace &T, core::BoundaryPolicy &Policy,
                          const SimulatorConfig &Config);

} // namespace sim
} // namespace dtb

#endif // DTB_SIM_SIMULATOR_H
