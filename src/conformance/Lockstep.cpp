//===- conformance/Lockstep.cpp - The differential replay loop -----------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// Replays one trace through the simulator and the managed runtime in
// lockstep (see Conformance.h for the protocol) and compares every
// scavenge plus the end-of-run summaries under the tolerance model.
//
//===----------------------------------------------------------------------===//

#include "conformance/Conformance.h"

#include "core/MachineModel.h"
#include "runtime/Mutator.h"
#include "sim/HeapModel.h"
#include "sim/Simulator.h"
#include "support/Error.h"
#include "support/Random.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

using namespace dtb;
using namespace dtb::conformance;
using core::AllocClock;

bool ToleranceModel::close(double A, double B) const {
  double Diff = std::fabs(A - B);
  if (Diff <= AbsTolerance)
    return true;
  return Diff <= RelTolerance * std::max(std::fabs(A), std::fabs(B));
}

const char *dtb::conformance::linkModeName(LinkMode Mode) {
  switch (Mode) {
  case LinkMode::None:
    return "none";
  case LinkMode::Forward:
    return "forward";
  case LinkMode::Backward:
    return "backward";
  }
  return "?";
}

std::string Divergence::describe() const {
  std::string Where = ScavengeIndex == 0
                          ? std::string("end-of-run")
                          : "scavenge " + std::to_string(ScavengeIndex);
  return Where + ": " + Field + ": sim=" + SimValue +
         " runtime=" + RuntimeValue + (Logical ? "" : " (tolerance)");
}

uint32_t dtb::conformance::minReplayableSize(LinkMode Links) {
  uint32_t Header = static_cast<uint32_t>(sizeof(runtime::Object));
  return Links == LinkMode::None
             ? Header
             : Header + static_cast<uint32_t>(sizeof(runtime::Object *));
}

namespace {

/// Largest record size the replay can realize (Heap::tryAllocate bounds
/// raw payloads to 2^28 bytes; real traces never get near this).
uint32_t maxReplayableSize(LinkMode Links) {
  return minReplayableSize(Links) + (1u << 28) - 1;
}

} // namespace

bool dtb::conformance::isReplayable(const trace::Trace &T, LinkMode Links) {
  uint32_t Min = minReplayableSize(Links);
  uint32_t Max = maxReplayableSize(Links);
  for (const trace::AllocationRecord &R : T.records())
    if (R.Size < Min || R.Size > Max)
      return false;
  return true;
}

trace::Trace dtb::conformance::normalizeForReplay(const trace::Trace &T,
                                                  LinkMode Links) {
  if (isReplayable(T, Links))
    return T;
  uint32_t Min = minReplayableSize(Links);
  uint32_t Max = maxReplayableSize(Links);
  // Rebuild on a rescaled clock: clamp each size, keep each object's
  // lifetime (in bytes of subsequent allocation) unchanged.
  std::vector<trace::AllocationRecord> Out;
  Out.reserve(T.records().size());
  AllocClock Clock = 0;
  for (const trace::AllocationRecord &R : T.records()) {
    trace::AllocationRecord N;
    N.Size = std::clamp(R.Size, Min, Max);
    Clock += N.Size;
    N.Birth = Clock;
    N.Death = R.Death == trace::NeverDies ? trace::NeverDies
                                          : Clock + (R.Death - R.Birth);
    Out.push_back(N);
  }
  return trace::Trace(std::move(Out));
}

namespace {

/// Thrown from the observer to cut a replay short once enough divergences
/// have been recorded; caught in runLockstep.
struct ReplayAbort {};

/// Exact demographics for the runtime-side policy: a shadow sim::HeapModel
/// that mirrors the runtime heap record for record (and is scavenged with
/// the boundary the runtime actually chose), queried at the heap's clock.
/// This hands both policies byte-identical oracle answers, so their
/// decisions are comparable exactly.
class ShadowOracle final : public core::Demographics {
public:
  ShadowOracle(const sim::HeapModel &Model, const runtime::Heap &H)
      : Model(Model), H(H) {}

  uint64_t liveBytesBornAfter(AllocClock Boundary) const override {
    return Model.liveBytesBornAfter(Boundary, H.now());
  }
  uint64_t residentBytesBornAfter(AllocClock Boundary) const override {
    return Model.residentBytesBornAfter(Boundary);
  }

private:
  const sim::HeapModel &Model;
  const runtime::Heap &H;
};

/// Test-only policy wrapper emulating an implementation bug: from scavenge
/// FromScavenge onward the inner policy's boundary is pushed DeltaBytes
/// forward in time (clamped to Now), silently retaining more garbage. The
/// acceptance self-test wraps the runtime side with this and expects the
/// harness to catch and shrink the divergence.
class MutatedPolicy final : public core::BoundaryPolicy {
public:
  MutatedPolicy(std::unique_ptr<core::BoundaryPolicy> Inner,
                uint64_t FromScavenge, uint64_t DeltaBytes)
      : Inner(std::move(Inner)), FromScavenge(FromScavenge),
        DeltaBytes(DeltaBytes) {}

  std::string name() const override { return Inner->name(); }

  AllocClock chooseBoundary(const core::BoundaryRequest &Request) override {
    AllocClock Boundary = Inner->chooseBoundary(Request);
    if (Request.Index >= FromScavenge)
      Boundary = std::min(Boundary + DeltaBytes, Request.Now);
    return Boundary;
  }

  void reset() override { Inner->reset(); }

private:
  std::unique_ptr<core::BoundaryPolicy> Inner;
  uint64_t FromScavenge;
  uint64_t DeltaBytes;
};

constexpr uint32_t NoIndex = std::numeric_limits<uint32_t>::max();

/// The trace-driven mutator over the runtime heap. Every object is held
/// live by exactly one root (a handle-scope slot, or a mutator-context
/// root slot in --mutators mode) until its oracle death, at which point
/// the root and every pointer link touching the object are cleared — so
/// runtime reachability coincides with the trace's oracle liveness at
/// every scavenge.
class ReplayMutator {
public:
  ReplayMutator(runtime::Heap &H, const trace::Trace &T,
                const LockstepConfig &Config)
      : H(H), Records(T.records()), Scope(H), Links(Config.Links),
        LinkProbability(Config.LinkProbability), LinkRng(Config.LinkSeed) {
    size_t N = Records.size();
    if (N >= NoIndex)
      fatalError("trace too large for the replay mutator");
    for (unsigned I = 0; I != Config.Mutators; ++I)
      Contexts.push_back(std::make_unique<runtime::MutatorContext>(H));
    Roots.resize(N, nullptr);
    OutgoingTarget.assign(N, NoIndex);
    IncomingHead.assign(N, NoIndex);
    IncomingNext.assign(N, NoIndex);
    Deaths.reserve(N);
    for (uint32_t I = 0; I != N; ++I)
      if (Records[I].Death != trace::NeverDies)
        Deaths.push_back(I);
    std::sort(Deaths.begin(), Deaths.end(), [&](uint32_t A, uint32_t B) {
      return Records[A].Death != Records[B].Death
                 ? Records[A].Death < Records[B].Death
                 : A < B;
    });
  }

  /// Allocates (and death-processes) every record with Birth <= UpTo.
  /// \p OnAllocated is called after each allocation with the new clock.
  template <typename Callback>
  void advanceTo(AllocClock UpTo, Callback &&OnAllocated) {
    while (Next != Records.size() && Records[Next].Birth <= UpTo) {
      allocateNext();
      OnAllocated(Records[Next - 1].Birth);
      processDeaths(Records[Next - 1].Birth);
    }
  }

  bool done() const { return Next == Records.size(); }

private:
  void allocateNext() {
    const trace::AllocationRecord &R = Records[Next];
    uint32_t NumSlots = Links == LinkMode::None ? 0u : 1u;
    uint32_t Fixed = static_cast<uint32_t>(sizeof(runtime::Object)) +
                     NumSlots * static_cast<uint32_t>(sizeof(runtime::Object *));
    if (R.Size < Fixed)
      fatalError("trace record below the replayable minimum; "
                 "normalizeForReplay the trace first");
    uint32_t Index = static_cast<uint32_t>(Next);
    runtime::Object **RootSlot;
    if (Contexts.empty()) {
      runtime::Object *&Slot = Scope.slot(nullptr);
      Slot = H.allocate(NumSlots, R.Size - Fixed);
      RootSlot = &Slot;
    } else {
      runtime::MutatorContext &Ctx = contextFor(Index);
      runtime::Object *&Slot = Ctx.root(Ctx.addRoot(nullptr));
      Slot = Ctx.allocate(NumSlots, R.Size - Fixed);
      RootSlot = &Slot;
    }
    if ((*RootSlot)->grossBytes() != R.Size || H.now() != R.Birth)
      fatalError("replay allocation clock diverged from the trace");
    ++Next;
    Roots[Index] = RootSlot;
    maybeLink(Index);
    Window.push_back(Index);
    if (Window.size() > 2 * WindowTarget)
      compactWindow();
  }

  bool alive(uint32_t Index) const { return *Roots[Index] != nullptr; }

  runtime::MutatorContext &contextFor(uint32_t Index) {
    return *Contexts[Index % Contexts.size()];
  }

  /// Stores into record \p Source's single slot, through the context that
  /// allocated the source in --mutators mode (direct heap API otherwise).
  void storeSlot(uint32_t Source, runtime::Object *Value) {
    if (Contexts.empty())
      H.writeSlot(*Roots[Source], 0, Value);
    else
      contextFor(Source).writeSlot(*Roots[Source], 0, Value);
  }

  void maybeLink(uint32_t Index) {
    if (Links == LinkMode::None || Window.empty())
      return;
    if (LinkRng.nextDouble() >= LinkProbability)
      return;
    uint32_t Other = Window[LinkRng.nextBelow(Window.size())];
    if (!alive(Other))
      return;
    // Forward: an older object points at the newcomer (barrier-recorded).
    // Backward: the newcomer points at an older object (barrier-ignored).
    uint32_t Source = Links == LinkMode::Forward ? Other : Index;
    uint32_t Target = Links == LinkMode::Forward ? Index : Other;
    // One outgoing link per object, ever: re-linking would need incoming-
    // chain surgery and adds no coverage.
    if (OutgoingTarget[Source] != NoIndex)
      return;
    storeSlot(Source, *Roots[Target]);
    OutgoingTarget[Source] = Target;
    IncomingNext[Source] = IncomingHead[Target];
    IncomingHead[Target] = Source;
  }

  void processDeaths(AllocClock Now) {
    while (DeathCursor != Deaths.size() &&
           Records[Deaths[DeathCursor]].Death <= Now) {
      uint32_t Index = Deaths[DeathCursor++];
      // Sever the object's outgoing link...
      if (OutgoingTarget[Index] != NoIndex) {
        storeSlot(Index, nullptr);
        OutgoingTarget[Index] = NoIndex;
      }
      // ...and every incoming link whose source still points here. A dead
      // source left a stale chain entry; skip it. This severing is what
      // keeps the runtime free of nepotism the oracle cannot see: a
      // dead-but-resident immune source must not keep a dead threatened
      // target reachable through the remembered set.
      for (uint32_t S = IncomingHead[Index]; S != NoIndex;
           S = IncomingNext[S]) {
        if (alive(S) && OutgoingTarget[S] == Index) {
          storeSlot(S, nullptr);
          OutgoingTarget[S] = NoIndex;
        }
      }
      IncomingHead[Index] = NoIndex;
      // Drop the root: the object is now unreachable, exactly on time.
      *Roots[Index] = nullptr;
    }
  }

  void compactWindow() {
    std::vector<uint32_t> Kept;
    Kept.reserve(WindowTarget);
    for (size_t I = Window.size(); I != 0 && Kept.size() < WindowTarget;
         --I)
      if (alive(Window[I - 1]))
        Kept.push_back(Window[I - 1]);
    std::reverse(Kept.begin(), Kept.end());
    Window = std::move(Kept);
  }

  static constexpr size_t WindowTarget = 64;

  runtime::Heap &H;
  const std::vector<trace::AllocationRecord> &Records;
  runtime::HandleScope Scope;
  /// --mutators mode: the registered contexts the driver round-robins
  /// (empty = direct heap API). Destroyed before the heap, as required.
  std::vector<std::unique_ptr<runtime::MutatorContext>> Contexts;
  LinkMode Links;
  double LinkProbability;
  Rng LinkRng;

  size_t Next = 0;
  size_t DeathCursor = 0;
  std::vector<uint32_t> Deaths; // Record indexes ordered by death clock.
  std::vector<runtime::Object **> Roots;
  std::vector<uint32_t> OutgoingTarget;
  std::vector<uint32_t> IncomingHead; // Per target: newest linking source.
  std::vector<uint32_t> IncomingNext; // Per source: next source in chain.
  std::vector<uint32_t> Window;       // Recent link candidates.
};

std::string formatU64(uint64_t V) { return std::to_string(V); }

std::string formatDouble(double V) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", V);
  return Buffer;
}

} // namespace

LockstepResult dtb::conformance::runLockstep(const trace::Trace &T,
                                             const LockstepConfig &Config) {
  if (!isReplayable(T, Config.Links))
    fatalError("runLockstep needs a replayable trace; "
               "call normalizeForReplay first");

  std::unique_ptr<core::BoundaryPolicy> SimPolicy =
      core::createPolicy(Config.PolicyName, Config.Policy);
  std::unique_ptr<core::BoundaryPolicy> RuntimePolicy =
      core::createPolicy(Config.PolicyName, Config.Policy);
  if (!SimPolicy || !RuntimePolicy)
    fatalError("unknown policy '" + Config.PolicyName + "'");
  if (Config.MutateFromScavenge != 0)
    RuntimePolicy = std::make_unique<MutatedPolicy>(std::move(RuntimePolicy),
                                                    Config.MutateFromScavenge,
                                                    Config.MutateDeltaBytes);

  LockstepResult Result;

  // --- Runtime side -------------------------------------------------------
  runtime::HeapConfig HeapConfig;
  HeapConfig.TriggerBytes = 0; // Collections are driven by the observer.
  HeapConfig.Collector = Config.Collector;
  HeapConfig.TraceThreads = Config.TraceThreads;
  HeapConfig.ScavengeBudgetBytes = Config.ScavengeBudgetBytes;
  runtime::Heap H(HeapConfig);
  H.setPolicy(std::move(RuntimePolicy));

  // The shadow heap model mirrors the runtime heap and answers the
  // runtime policy's demographics queries exactly (see ShadowOracle).
  sim::HeapModel Shadow;
  Shadow.reserve(std::min<size_t>(T.records().size(), size_t(1) << 16));
  ShadowOracle Oracle(Shadow, H);
  H.setDemographicsOverride(&Oracle);

  ReplayMutator Mutator(H, T, Config);

  // Mirror of the simulator's memory/pause accounting, fed with the
  // runtime's resident bytes at the same clocks.
  TimeWeightedStats RtMemory;
  RtMemory.setLevel(0, 0.0);
  SampleSet RtPauses;
  core::MachineModel Machine; // Defaults, same as SimulatorConfig.Machine.

  // advanceTo needs the record's size/death for the shadow model; track
  // the record cursor here instead of reconstructing it in the callback.
  size_t ShadowNext = 0;
  auto advanceRuntime = [&](AllocClock UpTo) {
    Mutator.advanceTo(UpTo, [&](AllocClock Clock) {
      const trace::AllocationRecord &R = T.records()[ShadowNext++];
      Shadow.addObject(R.Birth, R.Size, R.Death);
      RtMemory.setLevel(Clock, static_cast<double>(H.residentBytes()));
    });
  };

  auto diverge = [&](uint64_t Index, const char *Field, bool Logical,
                     std::string SimValue, std::string RuntimeValue) {
    Result.Divergences.push_back({Index, Field, Logical, std::move(SimValue),
                                  std::move(RuntimeValue)});
    if (Result.Divergences.size() >= Config.MaxDivergences) {
      Result.Aborted = true;
      throw ReplayAbort{};
    }
  };
  auto checkU64 = [&](uint64_t Index, const char *Field, uint64_t Sim,
                      uint64_t Rt) {
    if (Sim != Rt)
      diverge(Index, Field, /*Logical=*/true, formatU64(Sim), formatU64(Rt));
  };
  auto checkString = [&](uint64_t Index, const char *Field,
                         const std::string &Sim, const std::string &Rt) {
    if (Sim != Rt)
      diverge(Index, Field, /*Logical=*/true, Sim, Rt);
  };
  auto checkDouble = [&](uint64_t Index, const char *Field, double Sim,
                         double Rt) {
    if (!Config.Tolerance.close(Sim, Rt))
      diverge(Index, Field, /*Logical=*/false, formatDouble(Sim),
              formatDouble(Rt));
  };

  // --- Sim side, with the lockstep observer -------------------------------
  sim::SimulatorConfig SimConfig;
  SimConfig.TriggerBytes = Config.TriggerBytes;
  SimConfig.OnScavenge = [&](const sim::ScavengeObservation &Obs) {
    // Catch the runtime up to the simulated scavenge's clock, then run
    // the real collector at the very same moment.
    advanceRuntime(Obs.Record.Time);
    RtMemory.setLevel(Obs.Record.Time, static_cast<double>(H.residentBytes()));
    if (Config.AbortProbe &&
        Config.Collector == runtime::CollectorKind::MarkSweep) {
      // Abort-equivalence probe: open a cycle, trace a few quanta, abort.
      // The collect() below and every comparison after it must come out
      // exactly as if this block never ran. A step entered with gray work
      // cannot complete the cycle (the root rescan only adds), so the
      // bounded loop never races past the abort; the guard covers an
      // injected step fault having aborted it already.
      H.beginIncrementalScavenge(Obs.Record.Time / 2);
      for (int Probe = 0;
           Probe != 3 && H.incrementalCycleInfo().GrayObjects != 0; ++Probe)
        if (H.incrementalScavengeStep())
          break;
      if (H.incrementalScavengeActive())
        H.abortIncrementalScavenge();
    }
    core::ScavengeRecord Rt = H.collect();
    RtMemory.setLevel(Obs.Record.Time, static_cast<double>(H.residentBytes()));
    double RtPauseMs = Machine.pauseMillisForTracedBytes(Rt.TracedBytes);
    RtPauses.add(RtPauseMs);
    // Keep the shadow model mirroring the runtime heap: scavenge it with
    // the boundary the runtime actually used (post-divergence the two
    // sides evolve separately but each stays self-consistent).
    Shadow.scavenge(Rt.Time, Rt.Boundary);

    Result.Sim.push_back(
        {Obs.Record, Obs.RuleFired, Obs.DegradationNote, Obs.PauseMillis});
    Result.Runtime.push_back(
        {Rt, H.lastRuleFired(), H.lastDegradationNote(), RtPauseMs});

    uint64_t Index = Obs.Record.Index;
    checkU64(Index, "time", Obs.Record.Time, Rt.Time);
    checkU64(Index, "boundary", Obs.Record.Boundary, Rt.Boundary);
    checkString(Index, "rule", Obs.RuleFired, H.lastRuleFired());
    checkString(Index, "degradation-note", Obs.DegradationNote,
                H.lastDegradationNote());
    checkU64(Index, "mem-before-bytes", Obs.Record.MemBeforeBytes,
             Rt.MemBeforeBytes);
    checkU64(Index, "traced-bytes", Obs.Record.TracedBytes, Rt.TracedBytes);
    checkU64(Index, "reclaimed-bytes", Obs.Record.ReclaimedBytes,
             Rt.ReclaimedBytes);
    checkU64(Index, "survived-bytes", Obs.Record.SurvivedBytes,
             Rt.SurvivedBytes);
    checkDouble(Index, "pause-ms", Obs.PauseMillis, RtPauseMs);

    // Per-epoch survivor demographics: every epoch the scavenge
    // re-measured must agree with the oracle (the post-scavenge heap
    // model). Epochs fully behind the boundary keep stale estimates by
    // design and are skipped.
    const runtime::EpochDemographics &Demo = H.demographics();
    for (size_t I = 0; I + 1 < Demo.numEpochs(); ++I) {
      AllocClock Lo = Demo.epochStart(I);
      AllocClock Hi = Demo.epochStart(I + 1);
      if (Hi <= Rt.Boundary)
        continue; // Fully immune: not re-measured by this scavenge.
      AllocClock From = std::max(Lo, Rt.Boundary);
      uint64_t Estimate =
          Demo.liveBytesBornAfter(Lo) - Demo.liveBytesBornAfter(Hi);
      uint64_t OracleBytes = Obs.Heap.residentBytesBornAfter(From) -
                             Obs.Heap.residentBytesBornAfter(Hi);
      if (Estimate != OracleBytes) {
        std::string Field = "epoch-demo[" + std::to_string(I) + "]";
        diverge(Index, Field.c_str(), /*Logical=*/true,
                formatU64(OracleBytes), formatU64(Estimate));
      }
    }
  };

  sim::SimulationResult SimResult;
  try {
    SimResult = sim::simulate(T, *SimPolicy, SimConfig);
  } catch (const ReplayAbort &) {
    H.setDemographicsOverride(nullptr);
    return Result;
  }

  // Drain the allocation tail after the last scavenge.
  advanceRuntime(std::numeric_limits<AllocClock>::max());
  RtMemory.finish(T.totalAllocated());

  Result.SimMemMeanBytes = SimResult.MemMeanBytes;
  Result.SimMemMaxBytes = SimResult.MemMaxBytes;
  Result.SimPauseMedianMs = SimResult.PauseMillis.median();
  Result.SimPause90Ms = SimResult.PauseMillis.quantile(0.9);
  Result.RuntimeMemMeanBytes = RtMemory.mean();
  Result.RuntimeMemMaxBytes = static_cast<uint64_t>(RtMemory.max());
  Result.RuntimePauseMedianMs = RtPauses.median();
  Result.RuntimePause90Ms = RtPauses.quantile(0.9);

  try {
    checkU64(0, "scavenge-count", SimResult.NumScavenges,
             Result.Runtime.size());
    checkU64(0, "mem-max-bytes", Result.SimMemMaxBytes,
             Result.RuntimeMemMaxBytes);
    checkDouble(0, "mem-mean-bytes", Result.SimMemMeanBytes,
                Result.RuntimeMemMeanBytes);
    checkDouble(0, "pause-median-ms", Result.SimPauseMedianMs,
                Result.RuntimePauseMedianMs);
    checkDouble(0, "pause-90-ms", Result.SimPause90Ms, Result.RuntimePause90Ms);
  } catch (const ReplayAbort &) {
  }

  H.setDemographicsOverride(nullptr);
  return Result;
}
