//===- runtime/TraceLanes.h - Work-stealing trace lanes --------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel scan engine both collectors share. A transitive trace is
/// run as a sequence of *rounds*: the main thread owns a canonical gray
/// queue, hands one round of it to the lanes, and merges the lanes' output
/// back in fixed lane order before the next round. Inside a round, lane I
/// owns the contiguous segment [N*I/L, N*(I+1)/L) of the round's items and
/// claims indices through a per-segment atomic cursor; a lane whose own
/// segment runs dry steals from victims in round-robin order (I+1, I+2,
/// ...), so the load balances without per-item locking.
///
/// Determinism: which lane scans an item is scheduling-dependent, but the
/// *set* of items scanned in a round is exactly the round's content, and
/// claiming a child (an atomic fetch_or on the object header) succeeds for
/// exactly one lane. All per-lane accumulators are either commutative
/// sums or are merged on the main thread in fixed lane order, so every
/// exported result is bit-identical for 1 lane vs N. See DESIGN.md
/// ("Parallel and incremental scavenging").
///
/// The engine deliberately does NOT use support::parallelFor: parallelFor
/// runs inline whenever the caller is already on any pool's worker thread
/// (nested fan-out protection), which would silently serialize collections
/// running inside harness workers. TraceLaneSet does its own submit/join
/// fan-out and only spans lanes when that is safe: always on a private
/// pool, and on the shared default pool only when the caller is not
/// itself a pool worker.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_RUNTIME_TRACELANES_H
#define DTB_RUNTIME_TRACELANES_H

#include "profiling/Profiler.h"
#include "runtime/Object.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace dtb {
namespace runtime {

/// Children a lane may buffer privately per round before detouring to the
/// shared (mutex-protected) overflow list. The degraded path is the same
/// algorithm with this cap at zero, so chaos tests can force it cheaply.
inline constexpr size_t TraceLaneChildCap = 1u << 16;

/// Rounds smaller than this run inline on the calling thread: fan-out
/// costs a few wakeups, which chain-shaped heaps (round size 1) would pay
/// per object. Purely a scheduling decision — results are identical.
inline constexpr size_t TraceLaneMinRound = 64;

/// Per-lane accumulation buffers for one scan round. Lanes never touch
/// each other's buffers; the main thread drains them in fixed lane order
/// after the round joins.
struct TraceLane {
  /// Newly claimed children, bound for the next round's gray queue.
  std::vector<Object *> Children;
  /// (birth, gross bytes) of children this lane claimed, replayed into
  /// EpochDemographics on the main thread (recordSurvivor is commutative,
  /// but the demographics table itself is not thread-safe).
  std::vector<std::pair<core::AllocClock, uint32_t>> Survivors;
  uint64_t TracedBytes = 0;
  uint64_t ObjectsTraced = 0;
  uint64_t ObjectsMoved = 0;
  uint64_t OverflowEvents = 0;
  /// Per-lane profiler; merged into the heap's lane profile in lane order.
  profiling::PhaseProfiler Profiler;

  void addChild(Object *O) {
    if (Children.size() < ChildCap) {
      Children.push_back(O);
      return;
    }
    OverflowEvents += 1;
    std::lock_guard<std::mutex> Lock(*OverflowMutex);
    Overflow->push_back(O);
  }

private:
  friend class TraceLaneSet;
  size_t ChildCap = TraceLaneChildCap;
  std::vector<Object *> *Overflow = nullptr;
  std::mutex *OverflowMutex = nullptr;
};

/// The lane set + round scheduler. One instance lives for one trace (or
/// one incremental quantum); the pool it fans out over is owned by the
/// heap and reused across collections.
class TraceLaneSet {
public:
  /// \p Pool may be null (serial). \p PoolIsPrivate distinguishes a pool
  /// owned by the heap (always safe to fan out over) from the shared
  /// default pool (safe only when the caller is not itself a pool worker —
  /// a worker blocking on helpers no free worker can run would deadlock).
  TraceLaneSet(ThreadPool *Pool, bool PoolIsPrivate)
      : Pool(Pool),
        CanFanOut(Pool && (PoolIsPrivate || !ThreadPool::onWorkerThread())),
        Lanes(CanFanOut ? Pool->numThreads() + 1 : 1) {
    for (TraceLane &Lane : Lanes) {
      Lane.Overflow = &Overflow;
      Lane.OverflowMutex = &OverflowMutex;
    }
  }

  unsigned numLanes() const { return static_cast<unsigned>(Lanes.size()); }
  TraceLane &lane(size_t I) { return Lanes[I]; }
  /// The lane serial phases (root scan, remset scan) accumulate into.
  TraceLane &serialLane() { return Lanes[0]; }
  /// The shared overflow list; drained (and cleared) by the heap together
  /// with the per-lane child buffers.
  std::vector<Object *> &overflow() { return Overflow; }

  /// Degrades the next round (fault injection): zero private child caps
  /// and a single shared cursor all lanes contend on.
  void degradeNextRound() { DegradeNextRound = true; }

  /// Degrades every round for this lane set's lifetime (the watchdog's
  /// serial fallback after repeated deadline violations): same mechanism
  /// as degradeNextRound, but sticky. Results stay bit-identical; only
  /// scheduling changes.
  void degradeAllRounds() { DegradeAllRounds = true; }

  /// Scans Items[0..N) across the lanes; Scan(Object*, TraceLane&) must
  /// only touch its lane's buffers and lane-safe (atomic) object state.
  template <typename ScanFn>
  void scanRound(Object *const *Items, size_t N, const ScanFn &Scan) {
    const unsigned L = numLanes();
    const bool Degrade = DegradeNextRound || DegradeAllRounds;
    DegradeNextRound = false;
    for (TraceLane &Lane : Lanes)
      Lane.ChildCap = Degrade ? 0 : TraceLaneChildCap;

    if (L == 1 || N < TraceLaneMinRound) {
      runLane(Lanes[0], [&] {
        for (size_t I = 0; I != N; ++I)
          Scan(Items[I], Lanes[0]);
      });
      return;
    }

    auto Cursors = std::make_unique<std::atomic<size_t>[]>(L);
    auto SegmentBegin = [&](unsigned I) { return N * I / L; };
    for (unsigned I = 0; I != L; ++I)
      Cursors[I].store(SegmentBegin(I), std::memory_order_relaxed);

    auto LaneBody = [&](unsigned LaneIndex) {
      TraceLane &Lane = Lanes[LaneIndex];
      runLane(Lane, [&] {
        if (Degrade) {
          // Single shared cursor: every lane fights for every item.
          for (;;) {
            size_t I = Cursors[0].fetch_add(1, std::memory_order_relaxed);
            if (I >= N)
              break;
            Scan(Items[I], Lane);
          }
          return;
        }
        for (unsigned V = 0; V != L; ++V) {
          unsigned Victim = (LaneIndex + V) % L;
          size_t End = SegmentBegin(Victim + 1);
          for (;;) {
            size_t I = Cursors[Victim].fetch_add(1, std::memory_order_relaxed);
            if (I >= End)
              break;
            Scan(Items[I], Lane);
          }
        }
      });
    };

    std::vector<std::future<void>> Helpers;
    Helpers.reserve(L - 1);
    for (unsigned I = 1; I != L; ++I)
      Helpers.push_back(Pool->submit([&LaneBody, I] { LaneBody(I); }));
    LaneBody(0);
    for (std::future<void> &Helper : Helpers)
      Helper.get();
  }

private:
  template <typename BodyFn> void runLane(TraceLane &Lane, const BodyFn &Body) {
    profiling::ProfilePhase Phase(&Lane.Profiler, profiling::phase::TraceLane);
    uint64_t Before = Lane.TracedBytes;
    Body();
    Phase.addCost(Lane.TracedBytes - Before);
  }

  ThreadPool *Pool;
  bool CanFanOut;
  std::vector<TraceLane> Lanes;
  bool DegradeNextRound = false;
  bool DegradeAllRounds = false;
  std::vector<Object *> Overflow;
  std::mutex OverflowMutex;
};

/// Runs one budget-bounded trace *quantum* over \p Gray: repeatedly takes
/// the longest prefix whose cumulative gross bytes fit the remaining
/// budget (always at least one item, so an oversized object cannot stall
/// the trace), scans it as one parallel round, and lets \p Drain append
/// the round's freshly claimed children back onto \p Gray. Returns the
/// gross bytes scanned; \p Gray keeps any unscanned tail when the budget
/// runs out first. BudgetBytes == 0 means unbounded (monolithic trace).
///
/// When budgeted, \p Gray is kept sorted by birth (unique per object), so
/// the prefix each quantum selects is independent of lane scheduling —
/// this is what makes a budgeted trace bit-identical to the monolithic
/// one and to itself across thread counts.
template <typename ScanFn, typename DrainFn>
uint64_t runTraceQuantum(TraceLaneSet &Lanes, std::vector<Object *> &Gray,
                         uint64_t BudgetBytes, const ScanFn &Scan,
                         const DrainFn &Drain) {
  const bool Canonical = BudgetBytes != 0;
  auto ByBirth = [](const Object *A, const Object *B) {
    return A->birth() < B->birth();
  };
  if (Canonical)
    std::sort(Gray.begin(), Gray.end(), ByBirth);

  uint64_t Scanned = 0;
  size_t Head = 0;
  while (Head != Gray.size() && (BudgetBytes == 0 || Scanned < BudgetBytes)) {
    uint64_t Remaining = Canonical ? BudgetBytes - Scanned : UINT64_MAX;
    size_t Take = 0;
    uint64_t RoundBytes = 0;
    while (Head + Take != Gray.size()) {
      uint64_t Gross = Gray[Head + Take]->grossBytes();
      if (Take != 0 && RoundBytes + Gross > Remaining)
        break;
      RoundBytes += Gross;
      Take += 1;
      if (RoundBytes >= Remaining)
        break;
    }
    Scanned += RoundBytes;

    if (faultRequestedAt(FaultSite::ParallelTrace))
      Lanes.degradeNextRound();
    size_t OldSize = Gray.size();
    Lanes.scanRound(Gray.data() + Head, Take, Scan);
    Head += Take;
    Drain(Gray); // Appends children + overflow in fixed lane order.
    if (Canonical && Gray.size() != OldSize) {
      std::sort(Gray.begin() + static_cast<ptrdiff_t>(OldSize), Gray.end(),
                ByBirth);
      std::inplace_merge(Gray.begin() + static_cast<ptrdiff_t>(Head),
                         Gray.begin() + static_cast<ptrdiff_t>(OldSize),
                         Gray.end(), ByBirth);
    }
  }
  Gray.erase(Gray.begin(), Gray.begin() + static_cast<ptrdiff_t>(Head));
  return Scanned;
}

} // namespace runtime
} // namespace dtb

#endif // DTB_RUNTIME_TRACELANES_H
