file(REMOVE_RECURSE
  "CMakeFiles/dtb_trace.dir/Trace.cpp.o"
  "CMakeFiles/dtb_trace.dir/Trace.cpp.o.d"
  "CMakeFiles/dtb_trace.dir/TraceIO.cpp.o"
  "CMakeFiles/dtb_trace.dir/TraceIO.cpp.o.d"
  "CMakeFiles/dtb_trace.dir/TraceStats.cpp.o"
  "CMakeFiles/dtb_trace.dir/TraceStats.cpp.o.d"
  "libdtb_trace.a"
  "libdtb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
