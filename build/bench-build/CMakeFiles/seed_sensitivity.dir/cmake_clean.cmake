file(REMOVE_RECURSE
  "../bench/seed_sensitivity"
  "../bench/seed_sensitivity.pdb"
  "CMakeFiles/seed_sensitivity.dir/seed_sensitivity.cpp.o"
  "CMakeFiles/seed_sensitivity.dir/seed_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seed_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
