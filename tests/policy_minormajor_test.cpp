//===- tests/policy_minormajor_test.cpp -----------------------------------==//
//
// Tests for the minor/major cycle baseline policy.
//
//===----------------------------------------------------------------------===//

#include "core/Policies.h"

#include "sim/Simulator.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::core;

namespace {

BoundaryRequest makeRequest(const ScavengeHistory &History,
                            AllocClock Now) {
  BoundaryRequest Request;
  Request.Index = History.size() + 1;
  Request.Now = Now;
  Request.History = &History;
  return Request;
}

void addScavenge(ScavengeHistory &History, AllocClock Time,
                 AllocClock Boundary) {
  ScavengeRecord R;
  R.Index = History.size() + 1;
  R.Time = Time;
  R.Boundary = Boundary;
  History.append(R);
}

} // namespace

TEST(MinorMajorTest, CycleOfFour) {
  MinorMajorPolicy P(4);
  ScavengeHistory History;
  // Scavenge 1: major (full).
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 1'000'000)), 0u);
  addScavenge(History, 1'000'000, 0);
  // Scavenges 2-4: minor (boundary at the previous scavenge time).
  for (int N = 2; N <= 4; ++N) {
    AllocClock Now = static_cast<AllocClock>(N) * 1'000'000;
    EXPECT_EQ(P.chooseBoundary(makeRequest(History, Now)),
              History.last().Time)
        << N;
    addScavenge(History, Now, History.last().Time);
  }
  // Scavenge 5: major again.
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 5'000'000)), 0u);
  EXPECT_EQ(P.name(), "minormajor4");
  EXPECT_EQ(P.period(), 4u);
}

TEST(MinorMajorTest, FactoryParsesPeriod) {
  PolicyConfig Config;
  auto P = createPolicy("minormajor8", Config);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->name(), "minormajor8");
  EXPECT_EQ(createPolicy("minormajor1", Config), nullptr);
  EXPECT_EQ(createPolicy("minormajorx", Config), nullptr);
  EXPECT_EQ(createPolicy("minormajor", Config), nullptr);
}

TEST(MinorMajorTest, BoundsGarbageLifetimeUnlikeFixed1) {
  // FIXED1 never reclaims tenured garbage; a minor/major cycle reclaims
  // it at every major, so over a workload with a medium-lifetime band the
  // cycle's memory sits strictly between FIXED1's and FULL's, and major
  // pauses recur.
  trace::Trace T = workload::generateTrace(
      workload::makeSteadyStateSpec(2'000'000, 17));
  sim::SimulatorConfig Config;
  Config.TriggerBytes = 50'000;
  Config.ProgramSeconds = 1.0;

  FullPolicy Full;
  FixedAgePolicy Fixed1(1);
  MinorMajorPolicy Cycle(5);
  sim::SimulationResult RFull = sim::simulate(T, Full, Config);
  sim::SimulationResult RFixed1 = sim::simulate(T, Fixed1, Config);
  sim::SimulationResult RCycle = sim::simulate(T, Cycle, Config);

  EXPECT_GT(RCycle.MemMeanBytes, RFull.MemMeanBytes);
  EXPECT_LT(RCycle.MemMeanBytes, RFixed1.MemMeanBytes);
  EXPECT_GT(RCycle.TotalTracedBytes, RFixed1.TotalTracedBytes);
  EXPECT_LT(RCycle.TotalTracedBytes, RFull.TotalTracedBytes);

  // Every 5th scavenge is a full one.
  const auto &Records = RCycle.History.records();
  for (size_t I = 0; I != Records.size(); ++I) {
    if (I % 5 == 0)
      EXPECT_EQ(Records[I].Boundary, 0u) << I;
    else
      EXPECT_GT(Records[I].Boundary, 0u) << I;
  }
}
