//===- serverload/ServerLoad.cpp ------------------------------------------==//

#include "serverload/ServerLoad.h"

#include "support/Error.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dtb;
using namespace dtb::serverload;
using trace::AllocClock;
using trace::AllocationRecord;
using trace::NeverDies;

//===----------------------------------------------------------------------===//
// Load curves
//===----------------------------------------------------------------------===//

double LoadCurve::multiplierAt(double Fraction) const {
  double F = std::clamp(Fraction, 0.0, 1.0);
  switch (Kind) {
  case LoadCurveKind::Flat:
    return 1.0;
  case LoadCurveKind::Diurnal: {
    // Starts at the overnight trough (1x), peaks mid-cycle.
    constexpr double TwoPi = 6.283185307179586;
    double Swing = 0.5 * (1.0 - std::cos(TwoPi * Cycles * F));
    return 1.0 + (PeakMultiplier - 1.0) * Swing;
  }
  case LoadCurveKind::Spiky: {
    for (unsigned I = 0; I != NumSpikes; ++I) {
      double Center = (static_cast<double>(I) + 0.5) /
                      static_cast<double>(NumSpikes);
      if (std::abs(F - Center) <= 0.5 * SpikeFraction)
        return PeakMultiplier;
    }
    return 1.0;
  }
  }
  unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

trace::Trace
dtb::serverload::generateServerTrace(const ServerScenario &S,
                                     std::vector<uint32_t> *TenantOf) {
  if (S.TotalAllocationBytes == 0)
    fatalError("server scenario has zero total allocation");
  if (S.Tenants.empty())
    fatalError("server scenario has no tenants");

  const uint64_t Total = S.TotalAllocationBytes;
  const size_t NumTenants = S.Tenants.size();

  // Per-tenant deterministic state, forked from the scenario seed in tenant
  // order so adding a trailing tenant never perturbs earlier streams.
  Rng Base(S.Seed);
  std::vector<Rng> Rngs;
  std::vector<workload::MixtureSampler> Mixtures;
  std::vector<double> TargetFraction(NumTenants, 0.0);
  std::vector<uint64_t> Allocated(NumTenants, 0);
  std::vector<uint64_t> NextBatch(NumTenants, 0);
  Rngs.reserve(NumTenants);
  Mixtures.reserve(NumTenants);
  double TotalWeight = 0.0;
  for (const TenantSpec &T : S.Tenants)
    TotalWeight += T.Weight;
  if (TotalWeight <= 0.0)
    fatalError("server scenario tenant weights must be positive");
  for (size_t I = 0; I != NumTenants; ++I) {
    Rngs.push_back(Base.fork());
    Mixtures.emplace_back(S.Tenants[I].Mixture);
    TargetFraction[I] = S.Tenants[I].Weight / TotalWeight;
    NextBatch[I] = S.Tenants[I].Churn.BatchPeriodBytes;
  }

  std::vector<AllocationRecord> Records;
  Records.reserve(Total / 64 + 16);
  if (TenantOf)
    TenantOf->clear();

  auto emit = [&](AllocClock &Clock, uint32_t Size, AllocClock Death,
                  size_t Tenant) {
    Clock += Size;
    AllocationRecord Rec;
    Rec.Birth = Clock;
    Rec.Size = Size;
    Rec.Death = Death;
    Records.push_back(Rec);
    Allocated[Tenant] += Size;
    if (TenantOf)
      TenantOf->push_back(static_cast<uint32_t>(Tenant));
  };

  AllocClock Clock = 0;
  while (Clock < Total) {
    // Deficit round-robin: the tenant furthest behind its byte budget
    // allocates next (ties break to the lowest index).
    size_t Tenant = 0;
    double BestDeficit = -1.0;
    for (size_t I = 0; I != NumTenants; ++I) {
      double Deficit = TargetFraction[I] * static_cast<double>(Clock) -
                       static_cast<double>(Allocated[I]);
      if (Deficit > BestDeficit) {
        BestDeficit = Deficit;
        Tenant = I;
      }
    }
    const TenantSpec &Spec = S.Tenants[Tenant];

    // Big-data churn rider: rotate in the next long-lived batch once the
    // clock crosses its period boundary. Batch deaths are structural
    // (BatchesRetained periods), not stretched by the load curve.
    const BigDataChurn &Churn = Spec.Churn;
    if (Churn.BatchPeriodBytes != 0 && Clock >= NextBatch[Tenant]) {
      NextBatch[Tenant] += Churn.BatchPeriodBytes;
      AllocClock BatchLife =
          static_cast<AllocClock>(Churn.BatchesRetained) *
          Churn.BatchPeriodBytes;
      uint64_t Remaining = Churn.BatchBytes;
      while (Remaining != 0) {
        uint32_t Size = static_cast<uint32_t>(std::min<uint64_t>(
            std::max<uint32_t>(Churn.ObjectSize, 16), Remaining));
        AllocClock Birth = Clock + Size;
        emit(Clock, Size, Birth + BatchLife, Tenant);
        Remaining -= Size;
      }
      continue;
    }

    // Regular allocation from the tenant's mixture; the load curve
    // stretches byte-lifetimes at peak rate (a fixed wall-time lifetime
    // spans more allocated bytes when the heap allocates faster).
    uint32_t Size = workload::sampleObjectSize(Rngs[Tenant], Spec.Sizes);
    bool Immortal = false;
    AllocClock Lifetime =
        Mixtures[Tenant].sampleLifetime(Rngs[Tenant], &Immortal);
    AllocClock Birth = Clock + Size;
    AllocClock Death = NeverDies;
    if (!Immortal) {
      double Mult = S.Curve.multiplierAt(static_cast<double>(Birth) /
                                         static_cast<double>(Total));
      Death = Birth + static_cast<AllocClock>(
                          static_cast<double>(Lifetime) * Mult);
    }
    emit(Clock, Size, Death, Tenant);
  }
  return trace::Trace(std::move(Records));
}

//===----------------------------------------------------------------------===//
// Scenario catalog
//===----------------------------------------------------------------------===//
//
// Sizing rationale: totals of 3-4 MB give each scenario ~150-250 scavenges
// at its suggested trigger — enough samples for meaningful p99/p99.9
// nearest-rank quantiles while keeping the full server grid (scenarios x
// policies) under a couple of seconds in the bench driver. Steady live
// levels follow Little's law (weight w x mean lifetime m => w*m live
// bytes), and MemMaxBytes leaves ~2x headroom over the curve-stretched
// live peak so the memory-constrained policies have a feasible target.

namespace {

using workload::LifetimeClass;
using workload::LifetimeKind;

LifetimeClass expClass(double Weight, double MeanBytes) {
  return {Weight, LifetimeKind::Exponential, MeanBytes, 0.0};
}

LifetimeClass uniformClass(double Weight, double LoBytes, double HiBytes) {
  return {Weight, LifetimeKind::Uniform, LoBytes, HiBytes};
}

LifetimeClass immortalClass(double Weight) {
  return {Weight, LifetimeKind::Immortal, 0.0, 0.0};
}

/// The canonical request/session bimodal tenant: ~90% of bytes die within
/// a request window, a session-cache tail lives ~25-75x longer, and a
/// small immortal trickle models interned metadata.
TenantSpec frontendTenant() {
  TenantSpec T;
  T.Name = "web";
  T.Weight = 1.0;
  T.Mixture = {expClass(0.90, 24.0e3), uniformClass(0.09, 300.0e3, 900.0e3),
               immortalClass(0.01)};
  return T;
}

std::vector<ServerScenario> buildCatalog() {
  std::vector<ServerScenario> Catalog;

  {
    ServerScenario S;
    S.Name = "frontend";
    S.DisplayName = "FRONTEND";
    S.Description = "request/session bimodal lifetimes, steady load";
    S.TotalAllocationBytes = 3'000'000;
    S.ProgramSeconds = 2.5;
    S.Seed = 0x5e12f001;
    S.Curve = {LoadCurveKind::Flat, 1.0, 1.0, 0.05, 1};
    S.Tenants = {frontendTenant()};
    S.TriggerBytes = 16'384;
    S.TraceMaxBytes = 49'152;
    S.MemMaxBytes = 524'288;
    Catalog.push_back(std::move(S));
  }

  {
    ServerScenario S;
    S.Name = "diurnal";
    S.DisplayName = "DIURNAL";
    S.Description = "bimodal lifetimes under a 3x day/night load swing";
    S.TotalAllocationBytes = 3'000'000;
    S.ProgramSeconds = 2.5;
    S.Seed = 0x5e12f002;
    S.Curve = {LoadCurveKind::Diurnal, 3.0, 2.0, 0.05, 1};
    S.Tenants = {frontendTenant()};
    S.TriggerBytes = 16'384;
    S.TraceMaxBytes = 49'152;
    S.MemMaxBytes = 786'432;
    Catalog.push_back(std::move(S));
  }

  {
    ServerScenario S;
    S.Name = "flashcrowd";
    S.DisplayName = "FLASHCROWD";
    S.Description = "bimodal lifetimes with three 6x flash-crowd spikes";
    S.TotalAllocationBytes = 3'000'000;
    S.ProgramSeconds = 2.5;
    S.Seed = 0x5e12f003;
    S.Curve = {LoadCurveKind::Spiky, 6.0, 1.0, 0.04, 3};
    S.Tenants = {frontendTenant()};
    S.TriggerBytes = 16'384;
    S.TraceMaxBytes = 49'152;
    S.MemMaxBytes = 786'432;
    Catalog.push_back(std::move(S));
  }

  {
    ServerScenario S;
    S.Name = "bigdata";
    S.DisplayName = "BIGDATA";
    S.Description = "short-lived requests under rotating long-lived batches";
    S.TotalAllocationBytes = 4'000'000;
    S.ProgramSeconds = 3.2;
    S.Seed = 0x5e12f004;
    S.Curve = {LoadCurveKind::Flat, 1.0, 1.0, 0.05, 1};
    TenantSpec T;
    T.Name = "analytics";
    T.Weight = 1.0;
    T.Mixture = {expClass(0.95, 16.0e3), uniformClass(0.04, 100.0e3, 300.0e3),
                 immortalClass(0.01)};
    T.Churn = {262'144, 65'536, 8192, 3};
    S.Tenants = {std::move(T)};
    S.TriggerBytes = 16'384;
    S.TraceMaxBytes = 49'152;
    S.MemMaxBytes = 786'432;
    Catalog.push_back(std::move(S));
  }

  {
    ServerScenario S;
    S.Name = "multitenant";
    S.DisplayName = "MULTITENANT";
    S.Description = "three tenants (api/batch/cache) under a 2x diurnal swing";
    S.TotalAllocationBytes = 4'000'000;
    S.ProgramSeconds = 3.2;
    S.Seed = 0x5e12f005;
    S.Curve = {LoadCurveKind::Diurnal, 2.0, 1.0, 0.05, 1};

    TenantSpec Api;
    Api.Name = "api";
    Api.Weight = 0.5;
    Api.Mixture = {expClass(0.915, 12.0e3), uniformClass(0.08, 200.0e3, 600.0e3),
                   immortalClass(0.005)};

    TenantSpec Batch;
    Batch.Name = "batch";
    Batch.Weight = 0.3;
    Batch.Sizes.LogMean = 4.5; // Larger buffers than the request tenants.
    Batch.Mixture = {expClass(0.3, 30.0e3), uniformClass(0.7, 50.0e3, 150.0e3)};

    TenantSpec Cache;
    Cache.Name = "cache";
    Cache.Weight = 0.2;
    Cache.Mixture = {expClass(0.48, 8.0e3),
                     uniformClass(0.5, 400.0e3, 1'200.0e3),
                     immortalClass(0.02)};

    S.Tenants = {std::move(Api), std::move(Batch), std::move(Cache)};
    S.TriggerBytes = 16'384;
    S.TraceMaxBytes = 49'152;
    S.MemMaxBytes = 1'048'576;
    Catalog.push_back(std::move(S));
  }

  return Catalog;
}

} // namespace

const std::vector<ServerScenario> &dtb::serverload::serverScenarios() {
  static const std::vector<ServerScenario> Catalog = buildCatalog();
  return Catalog;
}

const ServerScenario *
dtb::serverload::findServerScenario(const std::string &Name) {
  for (const ServerScenario &S : serverScenarios())
    if (S.Name == Name)
      return &S;
  return nullptr;
}

ServerScenario dtb::serverload::scaledScenario(const ServerScenario &S,
                                               uint64_t TotalBytes) {
  assert(S.TotalAllocationBytes != 0 && "cannot scale an empty scenario");
  ServerScenario Out = S;
  double Ratio = static_cast<double>(TotalBytes) /
                 static_cast<double>(S.TotalAllocationBytes);
  Out.TotalAllocationBytes = TotalBytes;
  Out.ProgramSeconds = S.ProgramSeconds * Ratio;
  for (TenantSpec &T : Out.Tenants) {
    for (LifetimeClass &C : T.Mixture) {
      C.ParamA *= Ratio;
      C.ParamB *= Ratio;
    }
    if (T.Churn.BatchPeriodBytes != 0) {
      T.Churn.BatchPeriodBytes = std::max<uint64_t>(
          1024, static_cast<uint64_t>(
                    static_cast<double>(T.Churn.BatchPeriodBytes) * Ratio));
      T.Churn.BatchBytes = std::max<uint64_t>(
          256, static_cast<uint64_t>(
                   static_cast<double>(T.Churn.BatchBytes) * Ratio));
      T.Churn.ObjectSize = std::max<uint32_t>(
          16, static_cast<uint32_t>(
                  static_cast<double>(T.Churn.ObjectSize) * Ratio));
    }
  }
  // Harness constraints shrink with the trace but keep workable floors.
  Out.TriggerBytes = std::max<uint64_t>(
      4096,
      static_cast<uint64_t>(static_cast<double>(S.TriggerBytes) * Ratio));
  Out.TraceMaxBytes = std::max<uint64_t>(
      4096,
      static_cast<uint64_t>(static_cast<double>(S.TraceMaxBytes) * Ratio));
  Out.MemMaxBytes = std::max<uint64_t>(
      16'384,
      static_cast<uint64_t>(static_cast<double>(S.MemMaxBytes) * Ratio));
  return Out;
}
