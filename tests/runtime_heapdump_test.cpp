//===- tests/runtime_heapdump_test.cpp ------------------------------------==//
//
// Tests for the heap-demographics snapshot.
//
//===----------------------------------------------------------------------===//

#include "runtime/HeapDump.h"

#include "runtime/Heap.h"
#include "runtime/Mutator.h"

#include <gtest/gtest.h>

#include <string>

using namespace dtb;
using namespace dtb::runtime;

namespace {

HeapConfig manualConfig() {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  return Config;
}

uint64_t sumResident(const HeapDemographics &Demo) {
  uint64_t Total = 0;
  for (const AgeBand &Band : Demo.Bands)
    Total += Band.ResidentBytes;
  return Total;
}

} // namespace

TEST(HeapDumpTest, EmptyHeap) {
  Heap H(manualConfig());
  HeapDemographics Demo = collectDemographics(H);
  EXPECT_EQ(Demo.ResidentObjects, 0u);
  EXPECT_EQ(Demo.ResidentBytes, 0u);
  EXPECT_EQ(Demo.ReachableBytes, 0u);
}

TEST(HeapDumpTest, BandsPartitionResidency) {
  Heap H(manualConfig());
  HandleScope Scope(H);
  for (int I = 0; I != 200; ++I) {
    Object *O = H.allocate(1, 64);
    if (I % 3 == 0)
      Scope.slot(O);
  }
  HeapDemographics Demo = collectDemographics(H, /*BaseAgeBytes=*/1024);
  EXPECT_EQ(Demo.ResidentObjects, 200u);
  EXPECT_EQ(Demo.ResidentBytes, H.residentBytes());
  EXPECT_EQ(sumResident(Demo), H.residentBytes());
  EXPECT_LT(Demo.ReachableBytes, Demo.ResidentBytes);
  EXPECT_GT(Demo.ReachableBytes, 0u);
}

TEST(HeapDumpTest, BandRangesDoubleAndCover) {
  Heap H(manualConfig());
  H.allocate(0, 100'000); // Push the clock out.
  HeapDemographics Demo = collectDemographics(H, 1'000);
  ASSERT_GT(Demo.Bands.size(), 3u);
  EXPECT_EQ(Demo.Bands[0].AgeLo, 0u);
  EXPECT_EQ(Demo.Bands[0].AgeHi, 1'000u);
  EXPECT_EQ(Demo.Bands[1].AgeHi, 3'000u);  // Width doubles: 2,000.
  EXPECT_EQ(Demo.Bands[2].AgeHi, 7'000u);  // Width 4,000.
  EXPECT_EQ(Demo.Bands.back().AgeHi, ~0ull);
}

TEST(HeapDumpTest, YoungObjectsLandInYoungBands) {
  Heap H(manualConfig());
  Object *Old = H.allocate(0, 64);
  (void)Old;
  H.allocate(0, 100'000); // Age the first object by 100 KB.
  Object *Young = H.allocate(0, 64);
  (void)Young;

  HeapDemographics Demo = collectDemographics(H, 1'024);
  // The young object has age < 1 KB: band 0 must hold at least one
  // object; the old object's age (~100 KB) lands in a later band.
  EXPECT_GE(Demo.Bands[0].ResidentObjects, 1u);
  uint64_t OldBandObjects = 0;
  for (size_t I = 5; I != Demo.Bands.size(); ++I)
    OldBandObjects += Demo.Bands[I].ResidentObjects;
  EXPECT_GE(OldBandObjects, 1u);
}

TEST(HeapDumpTest, ReachabilityDistinguishesGarbage) {
  Heap H(manualConfig());
  HandleScope Scope(H);
  Scope.slot(H.allocate(0, 500));
  H.allocate(0, 500); // Garbage of the same vintage.
  HeapDemographics Demo = collectDemographics(H);
  EXPECT_EQ(Demo.ResidentBytes, Demo.ReachableBytes * 2);
}

TEST(HeapDumpTest, ReportsPerContextMutatorStats) {
  Heap H(manualConfig());
  MutatorContext Ctx1(H), Ctx2(H);
  for (int I = 0; I != 20; ++I) {
    size_t Index = Ctx1.allocateRooted(1, 32);
    if (Index != 0)
      Ctx1.writeSlot(Ctx1.root(Index - 1), 0, Ctx1.root(Index));
    Ctx1.safepoint();
  }
  Ctx2.allocate(0, 64);
  H.runAtSafepoint([](Heap &) {});

  HeapDemographics Demo = collectDemographics(H);
  ASSERT_EQ(Demo.Mutators.size(), 2u);
  EXPECT_EQ(Demo.Mutators[0].Id, 1u);
  EXPECT_EQ(Demo.Mutators[0].Allocations, 20u);
  EXPECT_GT(Demo.Mutators[0].AllocatedBytes, 0u);
  EXPECT_EQ(Demo.Mutators[1].Id, 2u);
  EXPECT_EQ(Demo.Mutators[1].Allocations, 1u);
  EXPECT_GT(Demo.RendezvousSerial, 0u);
  EXPECT_EQ(Demo.RendezvousArrivals, 2u);
  EXPECT_EQ(Demo.RendezvousStraggler, "polling");
  EXPECT_GT(Demo.FlightEventsRecorded, 0u);
  EXPECT_FALSE(Demo.FlightEvents.empty());

  // Golden format: the printed dump names each context, the last
  // rendezvous, and the flight-recorder tail.
  char *Buffer = nullptr;
  size_t Size = 0;
  std::FILE *Stream = open_memstream(&Buffer, &Size);
  printDemographics(Demo, Stream);
  std::fclose(Stream);
  std::string Out(Buffer, Size);
  std::free(Buffer);
  EXPECT_NE(Out.find("ctx 1 [at-safepoint]: 20 allocs"), std::string::npos);
  EXPECT_NE(Out.find("ctx 2 [at-safepoint]: 1 allocs"), std::string::npos);
  EXPECT_NE(Out.find("safepoint: rendezvous #"), std::string::npos);
  EXPECT_NE(Out.find("straggler ctx 2 (polling)"), std::string::npos);
  EXPECT_NE(Out.find("flight recorder:"), std::string::npos);
  EXPECT_NE(Out.find("safepoint-rendezvous:"), std::string::npos);
}

TEST(HeapDumpTest, PrintsWithoutCrashing) {
  Heap H(manualConfig());
  HandleScope Scope(H);
  for (int I = 0; I != 50; ++I)
    Scope.slot(H.allocate(1, 32));
  HeapDemographics Demo = collectDemographics(H);

  char *Buffer = nullptr;
  size_t Size = 0;
  std::FILE *Stream = open_memstream(&Buffer, &Size);
  printDemographics(Demo, Stream);
  std::fclose(Stream);
  EXPECT_GT(Size, 0u);
  std::free(Buffer);
}
