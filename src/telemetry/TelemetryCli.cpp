//===- telemetry/TelemetryCli.cpp -----------------------------------------==//

#include "telemetry/TelemetryCli.h"

#include "support/CommandLine.h"
#include "telemetry/Export.h"
#include "telemetry/Telemetry.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

using namespace dtb;
using namespace dtb::telemetry;

void dtb::telemetry::addTelemetryOptions(OptionParser &Parser,
                                         TelemetryOptions *Options) {
  Parser.addString("telemetry-out",
                   "Write telemetry here on exit ('-' = stdout); enables "
                   "recording",
                   &Options->OutPath);
  Parser.addString("telemetry-format",
                   "Telemetry export format: trace (Chrome/Perfetto JSON), "
                   "csv, or table",
                   &Options->Format);
  Parser.addFlag("telemetry-wallclock",
                 "Include wall-clock metrics and per-thread latency tracks "
                 "in the export (nondeterministic)",
                 &Options->WallClock);
}

TelemetrySession::TelemetrySession(TelemetryOptions InOptions)
    : Options(std::move(InOptions)) {
  if (Options.OutPath.empty())
    return;
  if (Options.Format != "trace" && Options.Format != "csv" &&
      Options.Format != "table") {
    std::fprintf(stderr,
                 "error: unknown --telemetry-format '%s' (expected trace, "
                 "csv, or table)\n",
                 Options.Format.c_str());
    Valid = false;
    return;
  }
  if (!compiledIn()) {
    std::fprintf(stderr, "warning: telemetry compiled out "
                         "(DTB_ENABLE_TELEMETRY=OFF); --telemetry-out "
                         "ignored\n");
    return;
  }
  recorder().setWallClockExport(Options.WallClock);
  recorder().enable();
  Active = true;
}

TelemetrySession::~TelemetrySession() {
  if (!Active)
    return;
  recorder().disable();

  std::FILE *Out = stdout;
  bool Close = false;
  if (Options.OutPath != "-") {
    Out = std::fopen(Options.OutPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "error: cannot write telemetry to '%s': %s\n",
                   Options.OutPath.c_str(), std::strerror(errno));
      return;
    }
    Close = true;
  }

  std::vector<Event> Events = recorder().buffer().sorted();
  std::vector<MetricSample> Metrics = MetricsRegistry::global().snapshot();
  ExportOptions ExportOpts;
  ExportOpts.IncludeWallClock = Options.WallClock;
  if (Options.Format == "trace") {
    writeChromeTrace(Events, Metrics, ExportOpts, Out);
  } else if (Options.Format == "csv") {
    writeCsv(Events, ExportOpts, Out);
  } else {
    std::fprintf(Out, "Telemetry events (%zu):\n\n", Events.size());
    buildEventSummaryTable(Events, ExportOpts).print(Out);
    std::fprintf(Out, "\nMetrics:\n\n");
    buildMetricsTable(Metrics, ExportOpts).print(Out);
  }
  if (Close)
    std::fclose(Out);
  recorder().buffer().clear();
}
