# Empty dependencies file for runtime_chaos_test.
# This may be replaced when dependencies are built.
