//===- support/FaultInjector.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded fault-injection framework. Library code asks a
/// *named site* whether a fault should fire there; tests install an
/// injector for a scope and configure, per site, a firing probability
/// and/or one-shot triggers that fire on an exact hit count. Everything is
/// driven by SplitMix64 (support/Random.h), so a given seed reproduces the
/// exact same fault schedule on every platform.
///
/// Sites never *cause* unsafety: each consumer treats an injected fault as
/// the resource failure it models (allocation denied, remembered set full,
/// policy unusable, I/O error) and walks its graceful-degradation path.
/// With no injector installed every query is a single thread-local load —
/// cheap enough to leave compiled into release builds.
///
/// Typical use:
/// \code
///   FaultInjector Injector(/*Seed=*/42);
///   Injector.setProbability(FaultSite::Allocation, 0.05);
///   Injector.armOneShot(FaultSite::PolicyEvaluation, /*NthHit=*/3);
///   FaultInjectionScope Scope(Injector);
///   ... exercise the runtime; sites consult the injector ...
///   EXPECT_GT(Injector.injections(FaultSite::Allocation), 0u);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DTB_SUPPORT_FAULTINJECTOR_H
#define DTB_SUPPORT_FAULTINJECTOR_H

#include "support/Random.h"

#include <array>
#include <cstdint>

namespace dtb {

/// The named places library code consults the injector. Keep in sync with
/// faultSiteName().
enum class FaultSite : unsigned {
  /// Heap::tryAllocate — an injected fault denies the allocation once,
  /// forcing the degradation ladder (scavenge, emergency full, OOM).
  Allocation,
  /// Heap::writeSlot — the barrier's buffering "fails"; the entry is still
  /// recorded but the next boundary is pessimized to zero.
  WriteBarrier,
  /// RememberedSet insertion — the set's internal storage "fails"; the set
  /// is dropped and rebuilt under a pessimized (full) collection.
  RemSetInsert,
  /// Policy evaluation in Heap::collect — the policy is treated as
  /// unusable; the heap falls back to the FIXED1 boundary.
  PolicyEvaluation,
  /// Trace file I/O — reads and writes fail with a recoverable error.
  TraceIO,
  /// Parallel trace round dispatch — an injected fault degrades the next
  /// scan round: every lane's private child buffer is capped at zero (all
  /// discovered children detour through the mutex-protected shared
  /// overflow list) and all lanes contend on a single shared cursor,
  /// forcing maximal steal contention / lane starvation orderings.
  /// Results stay bit-identical; only scheduling pressure changes.
  ParallelTrace,
  /// Heap::incrementalScavengeStep entry — the embedder's trace quantum
  /// "fails" before it runs (cancelled slice, preempted helper thread);
  /// the heap recovers by aborting the open cycle, which is always safe.
  IncrementalStep,
  /// Heap::abortIncrementalScavenge — the abort's barrier-bookkeeping
  /// rollback "fails"; the heap stays safe by pessimizing the next
  /// collection to a full one (TB = 0), exactly like a remembered-set
  /// loss.
  CycleAbort,
  /// Pause-deadline watchdog, consulted once per trace quantum — an
  /// injected fault counts as a deadline violation even when no deadline
  /// is configured, driving the retry-halving budget backoff and (after K
  /// consecutive violations) serial-degraded tracing.
  WatchdogDeadline,
  /// MutatorContext barrier-buffer flush into the shared remembered set —
  /// the sink's storage "fails" mid-flush, so the buffered entries cannot
  /// be trusted to have landed; the heap responds like a remembered-set
  /// overflow (drop the set, pessimize the next collection to a full one,
  /// rebuild exactly during that trace).
  BarrierSink,
  /// Safepoint rendezvous, consulted once per registered mutator context
  /// as the collector counts it in — the context's handshake
  /// acknowledgment is distrusted (lost wakeup, torn state handoff), so
  /// its barrier bookkeeping cannot be relied on either; the heap stays
  /// safe by pessimizing the next collection to a full trace.
  SafepointHandshake,
};

inline constexpr unsigned NumFaultSites = 11;

/// Stable lowercase identifier for a site ("allocation", "write-barrier",
/// "remset-insert", "policy-evaluation", "trace-io", "parallel-trace",
/// "incremental-step", "cycle-abort", "watchdog-deadline", "barrier-sink",
/// "safepoint-handshake").
const char *faultSiteName(FaultSite Site);

/// Deterministic fault source. Not thread-safe; install one per thread
/// (FaultInjectionScope is thread-local).
class FaultInjector {
public:
  explicit FaultInjector(uint64_t Seed) : Random(Seed) {}

  /// Sets the per-hit firing probability of \p Site (clamped to [0, 1]).
  void setProbability(FaultSite Site, double Probability);

  /// Arms a one-shot trigger: the \p NthHit-th query of \p Site (1-based,
  /// counted from now) fires exactly once, regardless of probability.
  /// Re-arming replaces any previous one-shot for the site.
  void armOneShot(FaultSite Site, uint64_t NthHit);

  /// Asks whether a fault fires at \p Site. Counts the hit, consumes
  /// randomness only when a probability is configured, and returns true
  /// when either the one-shot or the probabilistic trigger fires.
  bool shouldInject(FaultSite Site);

  /// Times shouldInject was called for \p Site.
  uint64_t hits(FaultSite Site) const { return state(Site).Hits; }
  /// Times shouldInject returned true for \p Site.
  uint64_t injections(FaultSite Site) const {
    return state(Site).Injections;
  }
  /// Total injections across all sites.
  uint64_t totalInjections() const;

  /// Clears all configuration and counters and reseeds the generator.
  void reset(uint64_t Seed);

private:
  struct SiteState {
    double Probability = 0.0;
    /// Absolute hit count at which the one-shot fires (0 = disarmed).
    uint64_t OneShotHit = 0;
    uint64_t Hits = 0;
    uint64_t Injections = 0;
  };

  SiteState &state(FaultSite Site) {
    return Sites[static_cast<unsigned>(Site)];
  }
  const SiteState &state(FaultSite Site) const {
    return Sites[static_cast<unsigned>(Site)];
  }

  Rng Random;
  std::array<SiteState, NumFaultSites> Sites;
};

/// RAII installation of an injector as the calling thread's current one.
/// Scopes nest; the innermost wins and the previous injector is restored
/// on destruction.
class FaultInjectionScope {
public:
  explicit FaultInjectionScope(FaultInjector &Injector);
  ~FaultInjectionScope();

  FaultInjectionScope(const FaultInjectionScope &) = delete;
  FaultInjectionScope &operator=(const FaultInjectionScope &) = delete;

  /// The innermost installed injector on this thread, or nullptr.
  static FaultInjector *current();

private:
  FaultInjector *Previous;
};

/// Convenience for instrumented sites: true iff an injector is installed
/// on this thread and fires at \p Site.
bool faultRequestedAt(FaultSite Site);

} // namespace dtb

#endif // DTB_SUPPORT_FAULTINJECTOR_H
