# SanitizeSmoke.cmake — script mode (cmake -P) driver for the
# asan_ubsan_smoke ctest. Configures a nested build tree with
# DTB_SANITIZE=address,undefined, builds the robustness-critical test
# binaries (chaos mutator, OOM degradation ladder, trace fuzzing), and
# runs them with sanitizer halting enabled, so memory or UB bugs on the
# degradation paths fail the smoke test even when the uninstrumented
# suite passes.
#
# Usage: cmake -DSOURCE_DIR=<repo> -DBUILD_DIR=<scratch> -P SanitizeSmoke.cmake

if(NOT SOURCE_DIR OR NOT BUILD_DIR)
  message(FATAL_ERROR
    "usage: cmake -DSOURCE_DIR=<repo> -DBUILD_DIR=<scratch> -P SanitizeSmoke.cmake")
endif()

set(smokeTargets
  runtime_chaos_test
  runtime_oom_ladder_test
  trace_io_fuzz_test
  support_faultinjector_test)

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
    -DDTB_SANITIZE=address,undefined
  RESULT_VARIABLE configureResult)
if(NOT configureResult EQUAL 0)
  message(FATAL_ERROR "sanitize smoke: configure failed (${configureResult})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --target ${smokeTargets}
  RESULT_VARIABLE buildResult)
if(NOT buildResult EQUAL 0)
  message(FATAL_ERROR "sanitize smoke: build failed (${buildResult})")
endif()

foreach(target IN LISTS smokeTargets)
  message(STATUS "sanitize smoke: running ${target}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
      ASAN_OPTIONS=halt_on_error=1
      UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1
      ${BUILD_DIR}/tests/${target}
    RESULT_VARIABLE runResult)
  if(NOT runResult EQUAL 0)
    message(FATAL_ERROR "sanitize smoke: ${target} failed (${runResult})")
  endif()
endforeach()

message(STATUS "sanitize smoke: all targets clean under address,undefined")
