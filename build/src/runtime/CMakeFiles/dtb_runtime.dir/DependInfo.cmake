
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Collector.cpp" "src/runtime/CMakeFiles/dtb_runtime.dir/Collector.cpp.o" "gcc" "src/runtime/CMakeFiles/dtb_runtime.dir/Collector.cpp.o.d"
  "/root/repo/src/runtime/CopyingCollector.cpp" "src/runtime/CMakeFiles/dtb_runtime.dir/CopyingCollector.cpp.o" "gcc" "src/runtime/CMakeFiles/dtb_runtime.dir/CopyingCollector.cpp.o.d"
  "/root/repo/src/runtime/EpochDemographics.cpp" "src/runtime/CMakeFiles/dtb_runtime.dir/EpochDemographics.cpp.o" "gcc" "src/runtime/CMakeFiles/dtb_runtime.dir/EpochDemographics.cpp.o.d"
  "/root/repo/src/runtime/Heap.cpp" "src/runtime/CMakeFiles/dtb_runtime.dir/Heap.cpp.o" "gcc" "src/runtime/CMakeFiles/dtb_runtime.dir/Heap.cpp.o.d"
  "/root/repo/src/runtime/HeapDump.cpp" "src/runtime/CMakeFiles/dtb_runtime.dir/HeapDump.cpp.o" "gcc" "src/runtime/CMakeFiles/dtb_runtime.dir/HeapDump.cpp.o.d"
  "/root/repo/src/runtime/HeapVerifier.cpp" "src/runtime/CMakeFiles/dtb_runtime.dir/HeapVerifier.cpp.o" "gcc" "src/runtime/CMakeFiles/dtb_runtime.dir/HeapVerifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dtb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dtb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
