//===- support/Statistics.cpp ---------------------------------------------==//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace dtb;

double RunningStats::stddev() const { return std::sqrt(variance()); }

void TimeWeightedStats::setLevel(uint64_t Clock, double Value) {
  if (Value > Max)
    Max = Value;
  if (!HaveOrigin) {
    HaveOrigin = true;
    LastClock = Clock;
    Current = Value;
    return;
  }
  assert(Clock >= LastClock && "clock moved backwards");
  uint64_t Dt = Clock - LastClock;
  Integral += Current * static_cast<double>(Dt);
  ElapsedTotal += Dt;
  LastClock = Clock;
  Current = Value;
}

double SampleSet::quantile(double Q) const {
  if (Samples.empty())
    return 0.0;
  Q = std::clamp(Q, 0.0, 1.0);
  std::vector<double> Sorted(Samples);
  // Nearest-rank: the ceil(Q*N)-th smallest sample (1-based), so the median
  // of {1,2,3,4} is 2 and quantile(1.0) is the maximum. The rank is clamped
  // into [1, N]: Q = 0 rounds down to rank 0 and Q = 1 can round up to
  // N + 1 in floating point, both of which would index out of range — on a
  // single sample, p0 and p100 must both return that sample.
  size_t Rank = static_cast<size_t>(
      std::ceil(Q * static_cast<double>(Sorted.size())));
  Rank = std::clamp<size_t>(Rank, 1, Sorted.size());
  size_t Index = Rank - 1;
  std::nth_element(Sorted.begin(),
                   Sorted.begin() + static_cast<ptrdiff_t>(Index),
                   Sorted.end());
  return Sorted[Index];
}

double SampleSet::mad() const {
  if (Samples.empty())
    return 0.0;
  double Median = quantile(0.5);
  SampleSet Deviations;
  for (double X : Samples)
    Deviations.add(std::fabs(X - Median));
  return Deviations.quantile(0.5);
}

double SampleSet::sum() const {
  return std::accumulate(Samples.begin(), Samples.end(), 0.0);
}

double SampleSet::mean() const {
  return Samples.empty() ? 0.0 : sum() / static_cast<double>(Samples.size());
}

double SampleSet::maxValue() const {
  if (Samples.empty())
    return 0.0;
  return *std::max_element(Samples.begin(), Samples.end());
}

Histogram::Histogram(double Lo, double Hi, size_t NumBuckets)
    : Lo(Lo), Hi(Hi), Width((Hi - Lo) / static_cast<double>(NumBuckets)),
      Counts(NumBuckets, 0) {
  assert(Hi > Lo && "histogram range must be nonempty");
  assert(NumBuckets > 0 && "histogram needs at least one bucket");
}

void Histogram::add(double X) {
  Total += 1;
  if (X < Lo) {
    Counts.front() += 1;
    return;
  }
  auto Index = static_cast<size_t>((X - Lo) / Width);
  if (Index >= Counts.size())
    Index = Counts.size() - 1;
  Counts[Index] += 1;
}

double Histogram::bucketLow(size_t I) const {
  assert(I < Counts.size() && "bucket index out of range");
  return Lo + Width * static_cast<double>(I);
}

LogBucketing::LogBucketing(double Unit, unsigned SubBuckets, unsigned Octaves)
    : Unit(Unit), SubBuckets(SubBuckets), Octaves(Octaves),
      NumBuckets(1 + static_cast<size_t>(SubBuckets) * Octaves + 1) {
  assert(Unit > 0.0 && "log bucketing needs a positive unit");
  assert(SubBuckets > 0 && Octaves > 0 && "degenerate log bucketing");
}

size_t LogBucketing::bucketFor(double X) const {
  if (!(X >= Unit)) // Also catches NaN and negatives.
    return 0;
  double Scaled = X / Unit;
  int Octave = std::ilogb(Scaled); // floor(log2), exact for our range.
  if (Octave >= static_cast<int>(Octaves))
    return NumBuckets - 1;
  // Position within the octave, linearly subdivided: Scaled / 2^Octave is
  // in [1, 2).
  double Frac = std::ldexp(Scaled, -Octave) - 1.0;
  auto Sub = static_cast<size_t>(Frac * static_cast<double>(SubBuckets));
  if (Sub >= SubBuckets) // Frac can round to 1.0 at an octave edge.
    Sub = SubBuckets - 1;
  return 1 + static_cast<size_t>(Octave) * SubBuckets + Sub;
}

double LogBucketing::bucketLow(size_t I) const {
  assert(I < NumBuckets && "bucket index out of range");
  if (I == 0)
    return 0.0;
  size_t Octave = (I - 1) / SubBuckets;
  size_t Sub = (I - 1) % SubBuckets;
  if (I == NumBuckets - 1)
    return Unit * std::ldexp(1.0, static_cast<int>(Octaves));
  return Unit * std::ldexp(1.0, static_cast<int>(Octave)) *
         (1.0 + static_cast<double>(Sub) / static_cast<double>(SubBuckets));
}

double LogBucketing::bucketHigh(size_t I) const {
  assert(I < NumBuckets && "bucket index out of range");
  if (I == 0)
    return Unit;
  if (I == NumBuckets - 1)
    return std::numeric_limits<double>::infinity();
  return bucketLow(I + 1);
}

double LogBucketing::bucketMid(size_t I) const {
  double Lo = bucketLow(I);
  double Hi = bucketHigh(I);
  if (!std::isfinite(Hi)) // Saturated top bucket: its lower edge.
    return Lo;
  return 0.5 * (Lo + Hi);
}

double dtb::quantileFromBucketCounts(const LogBucketing &Bucketing,
                                     const uint64_t *Counts, uint64_t Total,
                                     double Q) {
  if (Total == 0)
    return 0.0;
  Q = std::clamp(Q, 0.0, 1.0);
  // Same nearest-rank convention (and the same p0/p100 clamps) as
  // SampleSet::quantile, applied to bucketed counts.
  auto Rank = static_cast<uint64_t>(
      std::ceil(Q * static_cast<double>(Total)));
  Rank = std::clamp<uint64_t>(Rank, 1, Total);
  uint64_t Seen = 0;
  for (size_t I = 0, E = Bucketing.numBuckets(); I != E; ++I) {
    Seen += Counts[I];
    if (Seen >= Rank)
      return Bucketing.bucketMid(I);
  }
  assert(false && "bucket counts do not sum to Total");
  return Bucketing.bucketMid(Bucketing.numBuckets() - 1);
}
