//===- tests/runtime_incremental_test.cpp ---------------------------------==//
//
// Incremental trace quanta: a budgeted collection is a reordering of the
// monolithic one (identical ScavengeRecord for any budget, per-quantum
// traced bytes bounded by budget + one object), the begin/step/finish API
// reproduces the one-shot collection, and mutation between quanta is kept
// sound by the Dijkstra insertion barrier, allocate-black colouring, and
// per-step root rescans.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"

#include "core/Policies.h"

#include <gtest/gtest.h>

#include <vector>

using namespace dtb;
using namespace dtb::runtime;

namespace {

/// Largest gross object buildWorkload allocates: header + one slot + 63
/// raw bytes. Budget overshoot is bounded by one object.
constexpr uint64_t MaxBuiltGrossBytes =
    sizeof(Object) + sizeof(Object *) + 63;

/// Deterministic mixed workload: 40 handle-rooted chains of depth 20 with
/// interleaved garbage. Identical across heaps, so records from different
/// budget configurations are directly comparable.
void buildWorkload(Heap &H, HandleScope &Scope) {
  for (int C = 0; C != 40; ++C) {
    Object *&Head = Scope.slot(nullptr);
    for (int D = 0; D != 20; ++D) {
      Object *N =
          H.allocate(1, static_cast<uint32_t>((C * 7 + D * 3) % 64));
      H.writeSlot(N, 0, Head);
      Head = N;
      H.allocate(0, 16); // Garbage.
    }
  }
}

void expectSameRecord(const core::ScavengeRecord &X,
                      const core::ScavengeRecord &Y) {
  EXPECT_EQ(X.Index, Y.Index);
  EXPECT_EQ(X.Time, Y.Time);
  EXPECT_EQ(X.Boundary, Y.Boundary);
  EXPECT_EQ(X.TracedBytes, Y.TracedBytes);
  EXPECT_EQ(X.MemBeforeBytes, Y.MemBeforeBytes);
  EXPECT_EQ(X.SurvivedBytes, Y.SurvivedBytes);
  EXPECT_EQ(X.ReclaimedBytes, Y.ReclaimedBytes);
}

HeapConfig manualConfig() {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Config.QuarantineFreedObjects = true;
  return Config;
}

} // namespace

TEST(IncrementalTraceTest, BudgetedCollectionsMatchMonolithic) {
  // Reference: monolithic trace, same workload, two collections (one at a
  // mid-run boundary so the remembered set participates, one full).
  std::vector<core::ScavengeRecord> Reference;
  core::AllocClock MidBoundary = 0;
  {
    Heap H(manualConfig());
    HandleScope Scope(H);
    buildWorkload(H, Scope);
    MidBoundary = H.now() / 2;
    Reference.push_back(H.collectAtBoundary(MidBoundary));
    Reference.push_back(H.collectAtBoundary(0));
    EXPECT_EQ(H.lastCollectionStats().TraceQuanta, 1u);
  }
  ASSERT_GT(Reference[1].TracedBytes, 0u);

  for (uint64_t Budget : {uint64_t(1), uint64_t(64), uint64_t(500),
                          uint64_t(1) << 20}) {
    HeapConfig Config = manualConfig();
    Config.ScavengeBudgetBytes = Budget;
    Heap H(Config);
    HandleScope Scope(H);
    buildWorkload(H, Scope);
    ASSERT_EQ(H.now() / 2, MidBoundary);

    expectSameRecord(Reference[0], H.collectAtBoundary(MidBoundary));
    EXPECT_LE(H.lastCollectionStats().MaxQuantumTracedBytes,
              Budget + MaxBuiltGrossBytes)
        << "budget " << Budget;

    expectSameRecord(Reference[1], H.collectAtBoundary(0));
    const CollectionStats &Stats = H.lastCollectionStats();
    EXPECT_LE(Stats.MaxQuantumTracedBytes, Budget + MaxBuiltGrossBytes)
        << "budget " << Budget;
    EXPECT_GE(Stats.TraceQuanta, 1u);
    if (Budget < Reference[1].TracedBytes)
      EXPECT_GT(Stats.TraceQuanta, 1u) << "budget " << Budget;

    VerifyResult Verified = verifyHeap(H);
    EXPECT_TRUE(Verified.Ok) << (Verified.Problems.empty()
                                     ? ""
                                     : Verified.Problems.front());
  }
}

TEST(IncrementalTraceTest, StepLoopMatchesMonolithicCollection) {
  core::ScavengeRecord Monolithic;
  {
    Heap H(manualConfig());
    HandleScope Scope(H);
    buildWorkload(H, Scope);
    Monolithic = H.collectAtBoundary(0);
  }

  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 300;
  Heap H(Config);
  HandleScope Scope(H);
  buildWorkload(H, Scope);

  EXPECT_FALSE(H.incrementalScavengeActive());
  H.beginIncrementalScavenge(0);
  EXPECT_TRUE(H.incrementalScavengeActive());

  size_t Steps = 0;
  while (!H.incrementalScavengeStep())
    ++Steps;
  EXPECT_GT(Steps, 1u);
  EXPECT_FALSE(H.incrementalScavengeActive());

  ASSERT_EQ(H.history().size(), 1u);
  expectSameRecord(Monolithic, H.history().last());
  EXPECT_LE(H.lastCollectionStats().MaxQuantumTracedBytes,
            uint64_t(300) + MaxBuiltGrossBytes);
}

TEST(IncrementalTraceTest, InsertionBarrierKeepsObjectMovedBehindBlack) {
  // X is reachable only through A's slot when the cycle begins. Mid-cycle
  // the mutator moves the only reference to X from (still-gray) A into a
  // freshly-allocated black object: without the insertion barrier the
  // trace would never see X again and reclaim it.
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 200;
  Heap H(Config);
  HandleScope Scope(H);

  // Enough early-born filler that the first (birth-ordered) quanta never
  // reach A.
  std::vector<Object **> Keep;
  for (int I = 0; I != 60; ++I)
    Keep.push_back(&Scope.slot(H.allocate(0, 48)));
  Object *&A = Scope.slot(H.allocate(1, 0));
  Object *X = H.allocate(0, 40);
  H.writeSlot(A, 0, X); // X's only reference.

  H.beginIncrementalScavenge(0);
  ASSERT_FALSE(H.incrementalScavengeStep());

  Object *&N = Scope.slot(H.allocate(1, 0)); // Allocated black.
  H.writeSlot(N, 0, X);                      // Barrier greys X.
  H.writeSlot(A, 0, nullptr);                // Sever the old path.

  while (!H.incrementalScavengeStep()) {
  }

  ASSERT_TRUE(N->isAlive());
  ASSERT_EQ(N->slot(0), X);
  EXPECT_TRUE(X->isAlive());
  VerifyResult Verified = verifyHeap(H);
  EXPECT_TRUE(Verified.Ok) << (Verified.Problems.empty()
                                   ? ""
                                   : Verified.Problems.front());
}

TEST(IncrementalTraceTest, RootRescanKeepsObjectMovedToFreshHandle) {
  // Like the barrier test, but the reference to Y moves into a handle
  // slot by raw assignment — no write barrier fires, so only the per-step
  // root rescan can save Y.
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 200;
  Heap H(Config);
  HandleScope Scope(H);

  std::vector<Object **> Keep;
  for (int I = 0; I != 60; ++I)
    Keep.push_back(&Scope.slot(H.allocate(0, 48)));
  Object *&B = Scope.slot(H.allocate(1, 0));
  Object *Y = H.allocate(0, 40);
  H.writeSlot(B, 0, Y); // Y's only reference.

  H.beginIncrementalScavenge(0);
  ASSERT_FALSE(H.incrementalScavengeStep());

  Object *&Fresh = Scope.slot(nullptr);
  Fresh = Y;                  // Raw root store: no barrier.
  H.writeSlot(B, 0, nullptr); // Sever the old path.

  while (!H.incrementalScavengeStep()) {
  }

  EXPECT_TRUE(Y->isAlive());
  EXPECT_EQ(Fresh, Y);
}

TEST(IncrementalTraceTest, MidCycleAllocationsAreBlackForOneCycle) {
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 200;
  Heap H(Config);
  HandleScope Scope(H);
  buildWorkload(H, Scope);

  H.beginIncrementalScavenge(0);
  ASSERT_FALSE(H.incrementalScavengeStep());

  // Unrooted garbage allocated mid-cycle: allocate-black means this cycle
  // must not reclaim it...
  Object *Garbage = H.allocate(0, 32);
  while (!H.incrementalScavengeStep()) {
  }
  EXPECT_TRUE(Garbage->isAlive());

  // ...but the next full collection does.
  uint64_t Resident = H.residentBytes();
  H.collectAtBoundary(0);
  EXPECT_FALSE(Garbage->isAlive());
  EXPECT_LT(H.residentBytes(), Resident);
}

TEST(IncrementalTraceTest, CollectDrainsActiveIncrementalCycleFirst) {
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 150;
  Heap H(Config);
  HandleScope Scope(H);
  buildWorkload(H, Scope);

  H.beginIncrementalScavenge(0);
  ASSERT_FALSE(H.incrementalScavengeStep());

  // A full collection request first finishes the in-flight cycle (its own
  // record), then runs the requested one.
  H.collectAtBoundary(0);
  EXPECT_FALSE(H.incrementalScavengeActive());
  EXPECT_EQ(H.history().size(), 2u);
}

TEST(IncrementalTraceTest, AutomaticTriggersSuspendDuringIncrementalCycle) {
  HeapConfig Config = manualConfig();
  Config.TriggerBytes = 5'000;
  Config.ScavengeBudgetBytes = 100;
  Heap H(Config);
  H.setPolicy(core::createPolicy("full", core::PolicyConfig()));
  HandleScope Scope(H);

  Object *&Root = Scope.slot(H.allocate(1, 0));
  H.writeSlot(Root, 0, H.allocate(0, 32));

  H.beginIncrementalScavenge(0);
  ASSERT_FALSE(H.incrementalScavengeStep());
  size_t Before = H.history().size();

  // Blow well past the trigger: the allocation-driven collection must stay
  // suspended while the incremental cycle is mid-flight.
  for (int I = 0; I != 200; ++I)
    H.allocate(0, 64);
  EXPECT_EQ(H.history().size(), Before);
  EXPECT_TRUE(H.incrementalScavengeActive());

  while (!H.incrementalScavengeStep()) {
  }
  size_t AfterFinish = H.history().size();
  EXPECT_EQ(AfterFinish, Before + 1);

  // With the cycle retired, the trigger path is live again.
  for (int I = 0; I != 200; ++I)
    H.allocate(0, 64);
  EXPECT_GT(H.history().size(), AfterFinish);
}
