file(REMOVE_RECURSE
  "CMakeFiles/runtime_property_test.dir/runtime_property_test.cpp.o"
  "CMakeFiles/runtime_property_test.dir/runtime_property_test.cpp.o.d"
  "runtime_property_test"
  "runtime_property_test.pdb"
  "runtime_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
