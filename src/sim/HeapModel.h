//===- sim/HeapModel.h - Oracle heap model for simulation ------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated heap: the set of *resident* objects — live objects plus
/// garbage that no scavenge has reclaimed yet. Deaths are oracle events
/// from the allocation trace (the paper drives its simulations with
/// malloc/free traces, so the simulated collector reclaims exactly the
/// threatened objects whose free event has passed).
///
/// Residents are kept in birth order, so the threatened suffix for any
/// boundary is found by binary search and scavenges touch only that
/// suffix.
///
/// The oracle queries that DTBMEM's boundary search hammers
/// (liveBytesBornAfter, residentBytesBornAfter, garbageBytes) are answered
/// from incremental indexes instead of per-call scans:
///
///  * a Fenwick tree of resident sizes keyed by the object's position in
///    the (birth-ordered) resident vector, so any born-after suffix sum
///    is O(log residents);
///  * a second Fenwick tree holding the sizes of dead-but-resident
///    objects, fed by a death-clock-ordered queue that is advanced
///    monotonically with the query clock, so garbageBytes is O(1) once
///    the clock has caught up and liveBytesBornAfter is two suffix sums.
///
/// Keying by resident position (rather than a global birth index) keeps
/// both trees as small as the resident set itself — a few hundred KB that
/// stay cache-hot — at the price of an O(survivors) index rebuild per
/// scavenge, which is subsumed by the scavenge's own compaction pass.
/// Death-queue entries are keyed by Birth (stable and unique) and mapped
/// to the current position by binary search when they are drained.
///
/// Queries at clocks *behind* the advanced death clock (only tests do
/// this) fall back to the retained naive scans, which also serve as the
/// cross-check reference: setCrossCheck(true) re-runs every indexed query
/// against the scan and aborts on divergence.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_SIM_HEAPMODEL_H
#define DTB_SIM_HEAPMODEL_H

#include "core/AllocClock.h"

#include <cstddef>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

namespace dtb {
namespace sim {

using core::AllocClock;

/// One resident object.
struct ResidentObject {
  AllocClock Birth = 0;
  uint32_t Size = 0;
  /// Oracle death clock (trace::NeverDies for immortal objects).
  AllocClock Death = 0;
};

/// Byte counts produced by one scavenge.
struct ScavengeOutcome {
  /// Live threatened bytes examined by the collector (Trace_n).
  uint64_t TracedBytes = 0;
  /// Dead threatened bytes reclaimed.
  uint64_t ReclaimedBytes = 0;
  /// Resident bytes before the scavenge (Mem_n).
  uint64_t MemBeforeBytes = 0;
  /// Resident bytes after (S_n = Mem_n - Reclaimed).
  uint64_t SurvivedBytes = 0;
};

/// The resident-object set.
class HeapModel {
public:
  /// How the demographics queries are answered.
  enum class QueryMode {
    /// Incremental Fenwick/death-queue indexes (the default).
    Indexed,
    /// The original O(residents) scans, with no index maintenance at all —
    /// kept for benchmark baselines (bench/runtime_end_to_end --timing).
    Scan,
  };

  explicit HeapModel(QueryMode Mode = QueryMode::Indexed) : Mode(Mode) {}

  /// Pre-sizes the resident vector and indexes for \p NumObjects births.
  void reserve(size_t NumObjects);

  /// Adds a newly allocated object; births must arrive in increasing
  /// clock order.
  void addObject(AllocClock Birth, uint32_t Size, AllocClock Death);

  /// Performs a scavenge at clock \p Now with threatening boundary
  /// \p Boundary: every resident born after the boundary is threatened;
  /// threatened objects dead at \p Now are reclaimed, live ones are traced.
  /// Immune objects (born at or before the boundary) are untouched —
  /// dead immune objects remain resident as tenured garbage.
  ScavengeOutcome scavenge(AllocClock Now, AllocClock Boundary);

  /// Total resident bytes (live + unreclaimed garbage).
  uint64_t residentBytes() const { return ResidentBytes; }
  size_t residentObjects() const { return Residents.size(); }

  /// Exact live bytes born strictly after \p Boundary, judged at clock
  /// \p Now — the tracing cost a scavenge with that boundary would incur.
  /// O(log n) once the death clock has caught up with \p Now.
  uint64_t liveBytesBornAfter(AllocClock Boundary, AllocClock Now) const;

  /// Exact dead-but-resident (garbage) bytes at clock \p Now. O(1)
  /// amortized for monotonically non-decreasing \p Now.
  uint64_t garbageBytes(AllocClock Now) const;

  /// Exact resident bytes born strictly after \p Boundary. O(log n).
  uint64_t residentBytesBornAfter(AllocClock Boundary) const;

  /// Naive-scan reference implementations (the pre-index code). Used as
  /// the benchmark baseline and as the cross-check oracle in tests.
  uint64_t liveBytesBornAfterScan(AllocClock Boundary, AllocClock Now) const;
  uint64_t garbageBytesScan(AllocClock Now) const;
  uint64_t residentBytesBornAfterScan(AllocClock Boundary) const;

  /// When enabled (Indexed mode only), every indexed query is re-answered
  /// by the naive scan and a mismatch is a fatal error.
  void setCrossCheck(bool Enabled) { CrossCheck = Enabled; }
  QueryMode queryMode() const { return Mode; }

  const std::vector<ResidentObject> &residents() const { return Residents; }

private:
  /// Append-only Fenwick (binary indexed) tree over resident positions.
  class SizeFenwick {
  public:
    void reserve(size_t N) { Tree.reserve(N); }
    /// Appends a new leaf holding \p Value.
    void append(uint64_t Value);
    /// Adds \p Delta (possibly "negative" via two's complement) to leaf
    /// \p Index.
    void add(size_t Index, uint64_t Delta);
    /// Sum of leaves [0, \p Count).
    uint64_t prefix(size_t Count) const;
    /// Sum of leaves [\p From, size).
    uint64_t suffix(size_t From) const { return Total - prefix(From); }
    uint64_t total() const { return Total; }
    size_t size() const { return Tree.size(); }
    /// Drops every leaf at or beyond \p Count; the kept prefix is
    /// untouched (node i only ever covers leaves <= i).
    void truncate(size_t Count) {
      Tree.resize(Count);
      Total = prefix(Count);
    }

  private:
    std::vector<uint64_t> Tree; // 0-based; Tree[i] covers a power-of-two
                                // block ending at leaf i.
    uint64_t Total = 0;
  };

  /// Index of the first resident born strictly after \p Boundary.
  size_t firstBornAfter(AllocClock Boundary) const;
  /// Current position of the resident born exactly at \p Birth.
  size_t positionOfBirth(AllocClock Birth) const;
  /// Moves dead objects with Death <= Now into the dead index.
  void advanceDeathClock(AllocClock Now) const;
  /// Rebuilds both Fenwicks from position \p Begin onward over the
  /// (just-compacted) resident vector; leaves below \p Begin kept as-is.
  void rebuildIndexes(size_t Begin);
  void checkQuery(uint64_t Indexed, uint64_t Scan, const char *What) const;

  QueryMode Mode;
  bool CrossCheck = false;
  std::vector<ResidentObject> Residents; // Sorted by Birth (strictly).
  uint64_t ResidentBytes = 0;

  // Indexed-mode state (Scan mode leaves all of it empty). The Fenwicks
  // are keyed by position in Residents and rebuilt whenever a scavenge
  // compacts it. Mutable: queries advance the death clock lazily.
  mutable SizeFenwick ResidentSizes; // Resident bytes by position.
  mutable SizeFenwick DeadSizes;     // Dead-but-resident bytes.
  // Deaths are staged in an unsorted buffer first; the next clock advance
  // moves entries already dead straight into DeadSizes and heap-pushes
  // only the genuine long-livers. Most objects in the paper traces die
  // before the next advance, so they never pay the heap's O(log n).
  // Immortals (NeverDies) are never queued at all.
  //
  // Staged entries carry the object's *position*: positions only go stale
  // when a scavenge compacts the resident vector, and every scavenge
  // drains this buffer (advanceDeathClock) before compacting, so a staged
  // position is always valid when it is read. Heap entries outlive
  // compactions, so they carry the stable Birth key instead and are
  // mapped to the current position by binary search when popped.
  using PendingEntry = std::pair<AllocClock, uint32_t>; // (Death, Position)
  using DeathEntry = std::pair<AllocClock, AllocClock>; // (Death, Birth)
  mutable std::vector<PendingEntry> PendingDeaths;
  mutable std::priority_queue<DeathEntry, std::vector<DeathEntry>,
                              std::greater<DeathEntry>>
      DeathQueue;
  mutable AllocClock DeathClock = 0; // Deaths <= this are in DeadSizes.
};

} // namespace sim
} // namespace dtb

#endif // DTB_SIM_HEAPMODEL_H
