file(REMOVE_RECURSE
  "libdtb_workload.a"
)
