//===- core/MachineModel.h - Pause/overhead cost model ---------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's machine model: "a machine that executes 10 million
/// instructions per second, where the collector could trace 500 kilobytes
/// per second" (§5, chosen to match Ungar & Jackson). Pause times are
/// proportional to bytes traced; this model performs the conversions
/// between bytes, milliseconds, and CPU-overhead percentages.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_CORE_MACHINEMODEL_H
#define DTB_CORE_MACHINEMODEL_H

#include <cstdint>

namespace dtb {
namespace core {

/// Converts collector work (bytes traced) into time and overhead figures.
struct MachineModel {
  /// Mutator speed: instructions per second (paper: 10 MIPS).
  double InstructionsPerSecond = 10.0e6;
  /// Collector tracing speed in bytes per second (paper: 500 KB/s).
  double TraceBytesPerSecond = 500.0e3;

  /// Returns the pause, in milliseconds, for a scavenge that traced
  /// \p Bytes bytes.
  double pauseMillisForTracedBytes(uint64_t Bytes) const {
    return static_cast<double>(Bytes) / TraceBytesPerSecond * 1000.0;
  }

  /// Returns the tracing budget, in bytes, equivalent to a pause of
  /// \p Millis milliseconds (the paper's 100 ms -> 50,000 bytes).
  uint64_t tracedBytesForPauseMillis(double Millis) const {
    return static_cast<uint64_t>(Millis / 1000.0 * TraceBytesPerSecond);
  }

  /// Returns total collector seconds for \p Bytes traced overall.
  double secondsForTracedBytes(uint64_t Bytes) const {
    return static_cast<double>(Bytes) / TraceBytesPerSecond;
  }

  /// Returns the CPU overhead percentage of \p TracedBytes of collector
  /// work relative to a program that runs \p ProgramSeconds of mutator
  /// time (Table 4's "Estimated CPU Overhead (%)").
  double cpuOverheadPercent(uint64_t TracedBytes,
                            double ProgramSeconds) const {
    if (ProgramSeconds <= 0.0)
      return 0.0;
    return secondsForTracedBytes(TracedBytes) / ProgramSeconds * 100.0;
  }
};

} // namespace core
} // namespace dtb

#endif // DTB_CORE_MACHINEMODEL_H
