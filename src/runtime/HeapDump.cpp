//===- runtime/HeapDump.cpp -----------------------------------------------==//

#include "runtime/HeapDump.h"

#include "runtime/Heap.h"
#include "runtime/Mutator.h"

#include <algorithm>
#include <unordered_set>

using namespace dtb;
using namespace dtb::runtime;
using core::AllocClock;

namespace {

/// Reachability set from the heap's roots (same traversal contract as the
/// verifier, minus diagnostics).
std::unordered_set<const Object *> reachableSet(const Heap &H) {
  std::unordered_set<const Object *> Reachable;
  std::vector<const Object *> Worklist;
  auto Visit = [&](const Object *O) {
    if (O && O->isAlive() && Reachable.insert(O).second)
      Worklist.push_back(O);
  };
  for (Object *const *Root : H.globalRoots())
    Visit(*Root);
  for (const Object *Handle : H.handleSlots())
    Visit(Handle);
  for (const Object *PinnedObject : H.pinnedObjects())
    Visit(PinnedObject);
  for (const MutatorContext *Ctx : H.mutatorContexts())
    for (const Object *Root : Ctx->roots())
      Visit(Root);
  while (!Worklist.empty()) {
    const Object *O = Worklist.back();
    Worklist.pop_back();
    for (uint32_t I = 0, E = O->numSlots(); I != E; ++I)
      Visit(O->slot(I));
  }
  return Reachable;
}

size_t bandIndexForAge(AllocClock Age, AllocClock Base, size_t NumBands) {
  AllocClock Hi = Base;
  for (size_t I = 0; I + 1 < NumBands; ++I) {
    if (Age < Hi)
      return I;
    Hi *= 2;
  }
  return NumBands - 1;
}

} // namespace

HeapDemographics
dtb::runtime::collectDemographics(const Heap &H, AllocClock BaseAgeBytes) {
  HeapDemographics Demo;
  Demo.ResidentObjects = H.residentObjects();
  Demo.ResidentBytes = H.residentBytes();
  Demo.RememberedSetEntries = H.rememberedSet().size();

  if (BaseAgeBytes == 0)
    BaseAgeBytes = 1;

  // Enough doubling bands to cover the whole clock.
  size_t NumBands = 1;
  for (AllocClock Span = BaseAgeBytes; Span < H.now() && NumBands < 40;
       Span *= 2)
    ++NumBands;
  Demo.Bands.resize(NumBands);
  AllocClock Lo = 0, Width = BaseAgeBytes;
  for (size_t I = 0; I != NumBands; ++I) {
    Demo.Bands[I].AgeLo = Lo;
    Demo.Bands[I].AgeHi = I + 1 == NumBands ? ~0ull : Lo + Width;
    Lo += Width;
    Width *= 2;
  }

  std::unordered_set<const Object *> Reachable = reachableSet(H);
  for (const Object *O : H.objects()) {
    AllocClock Age = H.now() - O->birth();
    AgeBand &Band =
        Demo.Bands[bandIndexForAge(Age, BaseAgeBytes, NumBands)];
    Band.ResidentObjects += 1;
    Band.ResidentBytes += O->grossBytes();
    if (Reachable.count(O)) {
      Band.ReachableBytes += O->grossBytes();
      Demo.ReachableBytes += O->grossBytes();
    }
  }

  Demo.DegradationEventsTotal = H.totalDegradationEvents();
  constexpr size_t MaxRecent = 8;
  const std::deque<DegradationEvent> &Log = H.degradationLog();
  for (const DegradationEvent &Event : Log)
    Demo.DegradationCounts[static_cast<unsigned>(Event.Kind)] += 1;
  size_t First = Log.size() > MaxRecent ? Log.size() - MaxRecent : 0;
  for (size_t I = First; I != Log.size(); ++I)
    Demo.RecentDegradations.push_back(describeDegradation(Log[I]));

  IncrementalCycleInfo Cycle = H.incrementalCycleInfo();
  Demo.CycleActive = Cycle.Active;
  Demo.CycleBoundary = Cycle.Boundary;
  Demo.CycleBlackClock = Cycle.BlackClock;
  Demo.CycleGrayObjects = Cycle.GrayObjects;
  Demo.CycleGrayBytes = Cycle.GrayBytes;
  Demo.CyclePendingGrayObjects = Cycle.PendingGrayObjects;
  Demo.CycleTracedBytes = Cycle.TracedBytes;
  Demo.CycleQuanta = Cycle.Quanta;
  Demo.CycleBudgetBytes = Cycle.BudgetBytes;
  Demo.CycleSerialDegraded = Cycle.SerialDegraded;

  Demo.Phase = gcPhaseName(H.phase());
  Demo.MutatorContexts = H.mutatorContexts().size();
  MutatorRuntimeStats Mut = H.mutatorStats();
  Demo.SafepointRendezvous = Mut.SafepointRendezvous;
  Demo.TlabBlocksResident = Mut.TlabBlocksResident;
  Demo.TlabCarvedBytes = Mut.TlabCarvedBytes;
  Demo.TlabWastedBytes = Mut.TlabWastedBytes;
  Demo.PublishedObjects = Mut.PublishedObjects;
  Demo.BarrierFlushes = Mut.BarrierFlushes;

  for (const MutatorContext *Ctx : H.mutatorContexts()) {
    const MutatorContext::Stats &S = Ctx->stats();
    HeapDemographics::MutatorRow Row;
    Row.Id = Ctx->id();
    Row.State = mutatorStateName(Ctx->state());
    Row.Allocations = S.Allocations;
    Row.AllocatedBytes = S.AllocatedBytes;
    Row.TlabRefills = S.TlabRefills;
    Row.BarrierBufferedEntries = S.BarrierBufferedEntries;
    Row.BarrierFlushes = S.BarrierFlushes;
    Row.SafepointYields = S.SafepointYields;
    Row.TriggeredCollections = S.TriggeredCollections;
#if DTB_TELEMETRY
    Row.TlabWastedBytes = S.Obs.TlabWastedBytes;
    Row.BarrierHighWater = S.Obs.BarrierHighWater;
    Row.SafepointPolls = S.Obs.SafepointPolls;
    Row.Parks = S.Obs.Parks;
#endif
    Demo.Mutators.push_back(std::move(Row));
  }

  const SafepointRendezvousRecord &R = H.lastSafepointRendezvous();
  Demo.RendezvousSerial = R.Serial;
  Demo.RendezvousTtspMillis = R.TtspMillis;
  Demo.RendezvousArrivals = R.Contexts;
  Demo.RendezvousStragglerContext = R.StragglerContext;
  Demo.RendezvousStraggler = stragglerKindName(R.Straggler);

  Demo.FlightEventsRecorded = H.flightRecorder().recorded();
  for (const FlightEvent &E : H.flightRecorder().snapshot())
    Demo.FlightEvents.push_back(
        "[" + std::to_string(E.Seq) + "] t=" + std::to_string(E.Time) + " " +
        describeFlightEvent(E));
  return Demo;
}

void dtb::runtime::printDemographics(const HeapDemographics &Demo,
                                     std::FILE *Out) {
  std::fprintf(Out,
               "heap: %llu objects, %llu bytes resident, %llu reachable "
               "(%.0f%%), %zu remembered entries\n",
               static_cast<unsigned long long>(Demo.ResidentObjects),
               static_cast<unsigned long long>(Demo.ResidentBytes),
               static_cast<unsigned long long>(Demo.ReachableBytes),
               Demo.ResidentBytes == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(Demo.ReachableBytes) /
                         static_cast<double>(Demo.ResidentBytes),
               Demo.RememberedSetEntries);

  uint64_t MaxBytes = 1;
  for (const AgeBand &Band : Demo.Bands)
    MaxBytes = std::max(MaxBytes, Band.ResidentBytes);

  std::fprintf(Out, "%22s %10s %10s %10s  %s\n", "age (bytes alloc'd)",
               "objects", "resident", "reachable", "bytes");
  for (const AgeBand &Band : Demo.Bands) {
    if (Band.ResidentObjects == 0)
      continue;
    char Range[48];
    if (Band.AgeHi == ~0ull)
      std::snprintf(Range, sizeof(Range), ">=%llu",
                    static_cast<unsigned long long>(Band.AgeLo));
    else
      std::snprintf(Range, sizeof(Range), "%llu-%llu",
                    static_cast<unsigned long long>(Band.AgeLo),
                    static_cast<unsigned long long>(Band.AgeHi));
    int BarLength = static_cast<int>(40 * Band.ResidentBytes / MaxBytes);
    std::fprintf(Out, "%22s %10llu %10llu %10llu  %.*s\n", Range,
                 static_cast<unsigned long long>(Band.ResidentObjects),
                 static_cast<unsigned long long>(Band.ResidentBytes),
                 static_cast<unsigned long long>(Band.ReachableBytes),
                 BarLength,
                 "########################################");
  }

  if (Demo.CycleActive) {
    std::fprintf(Out,
                 "incremental cycle: tb=%llu black=%llu gray %llu objects / "
                 "%llu bytes (+%llu pending), %llu quanta so far, traced "
                 "%llu, budget %llu%s\n",
                 static_cast<unsigned long long>(Demo.CycleBoundary),
                 static_cast<unsigned long long>(Demo.CycleBlackClock),
                 static_cast<unsigned long long>(Demo.CycleGrayObjects),
                 static_cast<unsigned long long>(Demo.CycleGrayBytes),
                 static_cast<unsigned long long>(Demo.CyclePendingGrayObjects),
                 static_cast<unsigned long long>(Demo.CycleQuanta),
                 static_cast<unsigned long long>(Demo.CycleTracedBytes),
                 static_cast<unsigned long long>(Demo.CycleBudgetBytes),
                 Demo.CycleSerialDegraded ? " [watchdog: serial-degraded]"
                                          : "");
  }

  if (Demo.MutatorContexts != 0) {
    std::fprintf(Out,
                 "mutators: %llu context%s, phase %s, %llu rendezvous; tlab "
                 "%llu blocks resident (%llu carved, %llu wasted bytes), "
                 "%llu published, %llu barrier flushes\n",
                 static_cast<unsigned long long>(Demo.MutatorContexts),
                 Demo.MutatorContexts == 1 ? "" : "s", Demo.Phase.c_str(),
                 static_cast<unsigned long long>(Demo.SafepointRendezvous),
                 static_cast<unsigned long long>(Demo.TlabBlocksResident),
                 static_cast<unsigned long long>(Demo.TlabCarvedBytes),
                 static_cast<unsigned long long>(Demo.TlabWastedBytes),
                 static_cast<unsigned long long>(Demo.PublishedObjects),
                 static_cast<unsigned long long>(Demo.BarrierFlushes));
    for (const HeapDemographics::MutatorRow &Row : Demo.Mutators)
      std::fprintf(Out,
                   "  ctx %llu [%s]: %llu allocs / %llu bytes, %llu tlab "
                   "refills (%llu wasted), barrier %llu buffered (hw %llu) "
                   "/ %llu flushes, %llu yields / %llu polls / %llu parks, "
                   "%llu triggered\n",
                   static_cast<unsigned long long>(Row.Id), Row.State.c_str(),
                   static_cast<unsigned long long>(Row.Allocations),
                   static_cast<unsigned long long>(Row.AllocatedBytes),
                   static_cast<unsigned long long>(Row.TlabRefills),
                   static_cast<unsigned long long>(Row.TlabWastedBytes),
                   static_cast<unsigned long long>(Row.BarrierBufferedEntries),
                   static_cast<unsigned long long>(Row.BarrierHighWater),
                   static_cast<unsigned long long>(Row.BarrierFlushes),
                   static_cast<unsigned long long>(Row.SafepointYields),
                   static_cast<unsigned long long>(Row.SafepointPolls),
                   static_cast<unsigned long long>(Row.Parks),
                   static_cast<unsigned long long>(Row.TriggeredCollections));
    if (Demo.RendezvousSerial != 0)
      std::fprintf(Out,
                   "  safepoint: rendezvous #%llu ttsp %.3f ms, %llu "
                   "arrival%s, straggler ctx %llu (%s)\n",
                   static_cast<unsigned long long>(Demo.RendezvousSerial),
                   Demo.RendezvousTtspMillis,
                   static_cast<unsigned long long>(Demo.RendezvousArrivals),
                   Demo.RendezvousArrivals == 1 ? "" : "s",
                   static_cast<unsigned long long>(
                       Demo.RendezvousStragglerContext),
                   Demo.RendezvousStraggler.c_str());
  }

  if (Demo.FlightEventsRecorded != 0) {
    std::fprintf(Out, "flight recorder: %llu event%s recorded, last %zu:\n",
                 static_cast<unsigned long long>(Demo.FlightEventsRecorded),
                 Demo.FlightEventsRecorded == 1 ? "" : "s",
                 Demo.FlightEvents.size());
    for (const std::string &Line : Demo.FlightEvents)
      std::fprintf(Out, "  %s\n", Line.c_str());
  }

  if (Demo.DegradationEventsTotal != 0) {
    std::fprintf(Out, "degradation: %llu event%s",
                 static_cast<unsigned long long>(Demo.DegradationEventsTotal),
                 Demo.DegradationEventsTotal == 1 ? "" : "s");
    for (unsigned Kind = 0; Kind != NumDegradationKinds; ++Kind)
      if (Demo.DegradationCounts[Kind] != 0)
        std::fprintf(Out, " %s=%llu",
                     degradationKindName(static_cast<DegradationKind>(Kind)),
                     static_cast<unsigned long long>(
                         Demo.DegradationCounts[Kind]));
    std::fprintf(Out, "\n");
    for (const std::string &Line : Demo.RecentDegradations)
      std::fprintf(Out, "  %s\n", Line.c_str());
  }
}
