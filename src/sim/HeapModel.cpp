//===- sim/HeapModel.cpp --------------------------------------------------==//

#include "sim/HeapModel.h"

#include <algorithm>
#include <cassert>

using namespace dtb;
using namespace dtb::sim;

void HeapModel::addObject(AllocClock Birth, uint32_t Size, AllocClock Death) {
  assert(Size > 0 && "zero-size object");
  assert((Residents.empty() || Residents.back().Birth < Birth) &&
         "births must be strictly increasing");
  assert(Death >= Birth && "object dies before it is born");
  Residents.push_back({Birth, Size, Death});
  ResidentBytes += Size;
}

size_t HeapModel::firstBornAfter(AllocClock Boundary) const {
  auto It = std::upper_bound(
      Residents.begin(), Residents.end(), Boundary,
      [](AllocClock B, const ResidentObject &R) { return B < R.Birth; });
  return static_cast<size_t>(It - Residents.begin());
}

ScavengeOutcome HeapModel::scavenge(AllocClock Now, AllocClock Boundary) {
  assert(Boundary <= Now && "boundary in the future");
  ScavengeOutcome Outcome;
  Outcome.MemBeforeBytes = ResidentBytes;

  size_t Begin = firstBornAfter(Boundary);
  size_t Out = Begin;
  for (size_t I = Begin; I != Residents.size(); ++I) {
    const ResidentObject &R = Residents[I];
    if (R.Death > Now) {
      // Live and threatened: traced, survives in place.
      Outcome.TracedBytes += R.Size;
      Residents[Out++] = R;
    } else {
      // Dead and threatened: reclaimed.
      Outcome.ReclaimedBytes += R.Size;
    }
  }
  Residents.resize(Out);
  ResidentBytes -= Outcome.ReclaimedBytes;
  Outcome.SurvivedBytes = ResidentBytes;
  return Outcome;
}

uint64_t HeapModel::liveBytesBornAfter(AllocClock Boundary,
                                       AllocClock Now) const {
  uint64_t Bytes = 0;
  for (size_t I = firstBornAfter(Boundary); I != Residents.size(); ++I)
    if (Residents[I].Death > Now)
      Bytes += Residents[I].Size;
  return Bytes;
}

uint64_t HeapModel::residentBytesBornAfter(AllocClock Boundary) const {
  uint64_t Bytes = 0;
  for (size_t I = firstBornAfter(Boundary); I != Residents.size(); ++I)
    Bytes += Residents[I].Size;
  return Bytes;
}

uint64_t HeapModel::garbageBytes(AllocClock Now) const {
  uint64_t Bytes = 0;
  for (const ResidentObject &R : Residents)
    if (R.Death <= Now)
      Bytes += R.Size;
  return Bytes;
}
