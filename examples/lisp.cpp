//===- examples/lisp.cpp - A tiny Lisp on the DTB-collected heap ---------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// A realistic mutator for the managed runtime: a small Lisp interpreter
// whose every value — numbers, symbols, cons cells, closures, environment
// frames — is a managed object. Evaluation churns through enormous
// amounts of short-lived structure (argument lists, environment frames)
// while interned symbols and top-level definitions live forever: exactly
// the demography generational collection exploits, and assoc-list
// environment mutation exercises the forward-in-time write barrier.
//
// The demo program computes sums of squares over freshly consed lists in
// a loop, under the paper's pause-constrained DTBFM policy, and prints
// the collector's behaviour afterwards.
//
// Run with --expr '<s-expression>' to evaluate your own program.
//
//===----------------------------------------------------------------------===//

#include "core/Policies.h"
#include "runtime/Heap.h"
#include "runtime/HeapDump.h"
#include "runtime/HeapVerifier.h"
#include "support/CommandLine.h"
#include "support/Error.h"
#include "support/Units.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

using namespace dtb;
using runtime::HandleScope;
using runtime::Heap;
using runtime::Object;

namespace {

//===----------------------------------------------------------------------===//
// Value representation
//===----------------------------------------------------------------------===//
//
// Every Lisp value is a managed Object whose first raw byte is a kind tag.
// nil is the C++ nullptr.

enum ValueKind : char {
  VK_Number = 'N',  // int64 payload at offset 8.
  VK_Symbol = 'S',  // NUL-terminated name from offset 1.
  VK_Cons = 'C',    // Slot 0 = car, slot 1 = cdr.
  VK_Builtin = 'B', // Builtin index at offset 8.
  VK_Lambda = 'L',  // Slot 0 = params, slot 1 = body, slot 2 = env.
  VK_Env = 'E',     // Slot 0 = parent, slot 1 = bindings assoc list.
};

ValueKind kindOf(const Object *O) {
  return static_cast<ValueKind>(
      static_cast<const char *>(O->rawData())[0]);
}

bool isA(const Object *O, ValueKind Kind) {
  return O && kindOf(O) == Kind;
}

int64_t numberValue(const Object *O) {
  assert(isA(O, VK_Number) && "not a number");
  int64_t Value;
  std::memcpy(&Value, static_cast<const char *>(O->rawData()) + 8,
              sizeof(Value));
  return Value;
}

const char *symbolName(const Object *O) {
  assert(isA(O, VK_Symbol) && "not a symbol");
  return static_cast<const char *>(O->rawData()) + 1;
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

class Interp;
using BuiltinFn = Object *(*)(Interp &, Object *Args);

class Interp {
public:
  explicit Interp(Heap &H) : H(H), GlobalEnv(nullptr) {
    H.addGlobalRoot(&GlobalEnv);
    GlobalEnv = makeEnv(nullptr);
    installBuiltins();
  }

  ~Interp() { H.removeGlobalRoot(&GlobalEnv); }

  Heap &heap() { return H; }

  //--- Constructors ------------------------------------------------------

  Object *makeNumber(int64_t Value) {
    Object *O = H.allocate(0, 16);
    tag(O, VK_Number);
    std::memcpy(static_cast<char *>(O->rawData()) + 8, &Value,
                sizeof(Value));
    return O;
  }

  /// Interns \p Name: symbols are unique and immortal (global roots).
  Object *intern(const std::string &Name) {
    for (Object *&Sym : Symbols)
      if (Name == symbolName(Sym))
        return Sym;
    Object *O = H.allocate(0, static_cast<uint32_t>(Name.size() + 2));
    tag(O, VK_Symbol);
    std::memcpy(static_cast<char *>(O->rawData()) + 1, Name.c_str(),
                Name.size() + 1);
    Symbols.push_back(O);
    H.addGlobalRoot(&Symbols.back());
    return Symbols.back();
  }

  Object *cons(Object *Car, Object *Cdr) {
    HandleScope Scope(H);
    Object *&CarSlot = Scope.slot(Car);
    Object *&CdrSlot = Scope.slot(Cdr);
    Object *Cell = H.allocate(2, 1);
    tag(Cell, VK_Cons);
    H.writeSlot(Cell, 0, CarSlot);
    H.writeSlot(Cell, 1, CdrSlot);
    return Cell;
  }

  Object *makeEnv(Object *Parent) {
    HandleScope Scope(H);
    Object *&ParentSlot = Scope.slot(Parent);
    Object *Env = H.allocate(2, 1);
    tag(Env, VK_Env);
    H.writeSlot(Env, 0, ParentSlot);
    return Env;
  }

  //--- Accessors ---------------------------------------------------------

  static Object *car(Object *Cell) {
    assert(isA(Cell, VK_Cons) && "car of non-cons");
    return Cell->slot(0);
  }
  static Object *cdr(Object *Cell) {
    assert(isA(Cell, VK_Cons) && "cdr of non-cons");
    return Cell->slot(1);
  }

  //--- Environments ------------------------------------------------------

  void define(Object *Env, Object *Symbol, Object *Value) {
    HandleScope Scope(H);
    Object *&EnvSlot = Scope.slot(Env);
    Object *Binding = cons(Symbol, Value);
    Object *&BindingSlot = Scope.slot(Binding);
    Object *NewList = cons(BindingSlot, EnvSlot->slot(1));
    // Mutating an old environment frame to point at fresh structure: the
    // canonical forward-in-time store the write barrier exists for.
    H.writeSlot(EnvSlot, 1, NewList);
  }

  Object *lookup(Object *Env, Object *Symbol) {
    for (Object *Frame = Env; Frame; Frame = Frame->slot(0))
      for (Object *B = Frame->slot(1); B; B = cdr(B))
        if (car(car(B)) == Symbol)
          return cdr(car(B));
    fatalError(std::string("unbound symbol: ") + symbolName(Symbol));
  }

  //--- Evaluation --------------------------------------------------------

  Object *eval(Object *Expr, Object *Env) {
    HandleScope Scope(H);
    Object *&ExprSlot = Scope.slot(Expr);
    Object *&EnvSlot = Scope.slot(Env);

    if (!ExprSlot)
      return nullptr;
    switch (kindOf(ExprSlot)) {
    case VK_Number:
    case VK_Builtin:
    case VK_Lambda:
    case VK_Env:
      return ExprSlot;
    case VK_Symbol:
      return lookup(EnvSlot, ExprSlot);
    case VK_Cons:
      break;
    }

    Object *Head = car(ExprSlot);
    if (isA(Head, VK_Symbol)) {
      const char *Name = symbolName(Head);
      if (std::strcmp(Name, "quote") == 0)
        return car(cdr(ExprSlot));
      if (std::strcmp(Name, "if") == 0) {
        Object *Test = eval(car(cdr(ExprSlot)), EnvSlot);
        Object *Branch = Test ? car(cdr(cdr(ExprSlot)))
                              : car(cdr(cdr(cdr(ExprSlot))));
        return eval(Branch, EnvSlot);
      }
      if (std::strcmp(Name, "define") == 0) {
        Object *&Value =
            Scope.slot(eval(car(cdr(cdr(ExprSlot))), EnvSlot));
        define(EnvSlot, car(cdr(ExprSlot)), Value);
        return Value;
      }
      if (std::strcmp(Name, "lambda") == 0) {
        Object *Fn = H.allocate(3, 1);
        tag(Fn, VK_Lambda);
        H.writeSlot(Fn, 0, car(cdr(ExprSlot)));
        H.writeSlot(Fn, 1, car(cdr(cdr(ExprSlot))));
        H.writeSlot(Fn, 2, EnvSlot);
        return Fn;
      }
      if (std::strcmp(Name, "begin") == 0) {
        Object *&Result = Scope.slot(nullptr);
        for (Object *Body = cdr(ExprSlot); Body; Body = cdr(Body))
          Result = eval(car(Body), EnvSlot);
        return Result;
      }
    }

    // Application: evaluate the callee and each argument, keeping the
    // growing argument list rooted.
    Object *&Callee = Scope.slot(eval(Head, EnvSlot));
    Object *&ArgsReversed = Scope.slot(nullptr);
    for (Object *Rest = cdr(ExprSlot); Rest; Rest = cdr(Rest)) {
      Object *&Arg = Scope.slot(eval(car(Rest), EnvSlot));
      ArgsReversed = cons(Arg, ArgsReversed);
    }
    Object *&Args = Scope.slot(reverseList(ArgsReversed));
    return apply(Callee, Args);
  }

  Object *apply(Object *Callee, Object *Args) {
    if (isA(Callee, VK_Builtin)) {
      int64_t Index;
      std::memcpy(&Index, static_cast<const char *>(Callee->rawData()) + 8,
                  sizeof(Index));
      return Builtins[static_cast<size_t>(Index)].second(*this, Args);
    }
    if (!isA(Callee, VK_Lambda))
      fatalError("applying a non-function");

    HandleScope Scope(H);
    Object *&CalleeSlot = Scope.slot(Callee);
    Object *&ArgsSlot = Scope.slot(Args);
    Object *&Frame = Scope.slot(makeEnv(CalleeSlot->slot(2)));
    Object *Params = CalleeSlot->slot(0);
    Object *Actuals = ArgsSlot;
    for (; Params; Params = cdr(Params), Actuals = cdr(Actuals)) {
      if (!Actuals)
        fatalError("too few arguments");
      define(Frame, car(Params), car(Actuals));
    }
    return eval(CalleeSlot->slot(1), Frame);
  }

  Object *reverseList(Object *List) {
    HandleScope Scope(H);
    Object *&Out = Scope.slot(nullptr);
    Object *&In = Scope.slot(List);
    while (In) {
      Out = cons(car(In), Out);
      In = cdr(In);
    }
    return Out;
  }

  //--- Printing ----------------------------------------------------------

  std::string toString(Object *Value) {
    if (!Value)
      return "()";
    switch (kindOf(Value)) {
    case VK_Number:
      return std::to_string(numberValue(Value));
    case VK_Symbol:
      return symbolName(Value);
    case VK_Builtin:
      return "#<builtin>";
    case VK_Lambda:
      return "#<lambda>";
    case VK_Env:
      return "#<env>";
    case VK_Cons: {
      std::string Out = "(";
      for (Object *Cell = Value; Cell; Cell = cdr(Cell)) {
        Out += toString(car(Cell));
        if (cdr(Cell)) {
          if (!isA(cdr(Cell), VK_Cons)) { // Improper list.
            Out += " . " + toString(cdr(Cell));
            break;
          }
          Out += " ";
        }
      }
      return Out + ")";
    }
    }
    unreachable("covered switch");
  }

  Object *globalEnv() { return GlobalEnv; }

private:
  void tag(Object *O, ValueKind Kind) {
    static_cast<char *>(O->rawData())[0] = static_cast<char>(Kind);
  }

  void installBuiltin(const char *Name, BuiltinFn Fn) {
    Builtins.emplace_back(Name, Fn);
    Object *O = H.allocate(0, 16);
    tag(O, VK_Builtin);
    int64_t Index = static_cast<int64_t>(Builtins.size() - 1);
    std::memcpy(static_cast<char *>(O->rawData()) + 8, &Index,
                sizeof(Index));
    define(GlobalEnv, intern(Name), O);
  }

  void installBuiltins();

  Heap &H;
  Object *GlobalEnv;
  std::deque<Object *> Symbols; // Stable addresses; each is a global root.
  std::vector<std::pair<std::string, BuiltinFn>> Builtins;
};

//===----------------------------------------------------------------------===//
// Builtins
//===----------------------------------------------------------------------===//

int64_t argNumber(Object *Args, int Index) {
  Object *Cell = Args;
  for (int I = 0; I != Index; ++I)
    Cell = Interp::cdr(Cell);
  return numberValue(Interp::car(Cell));
}

void Interp::installBuiltins() {
  installBuiltin("+", [](Interp &In, Object *Args) {
    int64_t Sum = 0;
    for (Object *A = Args; A; A = Interp::cdr(A))
      Sum += numberValue(Interp::car(A));
    return In.makeNumber(Sum);
  });
  installBuiltin("-", [](Interp &In, Object *Args) {
    return In.makeNumber(argNumber(Args, 0) - argNumber(Args, 1));
  });
  installBuiltin("*", [](Interp &In, Object *Args) {
    int64_t Product = 1;
    for (Object *A = Args; A; A = Interp::cdr(A))
      Product *= numberValue(Interp::car(A));
    return In.makeNumber(Product);
  });
  installBuiltin("<", [](Interp &In, Object *Args) -> Object * {
    return argNumber(Args, 0) < argNumber(Args, 1) ? In.makeNumber(1)
                                                   : nullptr;
  });
  installBuiltin("=", [](Interp &In, Object *Args) -> Object * {
    return argNumber(Args, 0) == argNumber(Args, 1) ? In.makeNumber(1)
                                                    : nullptr;
  });
  installBuiltin("cons", [](Interp &In, Object *Args) {
    return In.cons(Interp::car(Args), Interp::car(Interp::cdr(Args)));
  });
  installBuiltin("car", [](Interp &, Object *Args) {
    return Interp::car(Interp::car(Args));
  });
  installBuiltin("cdr", [](Interp &, Object *Args) {
    return Interp::cdr(Interp::car(Args));
  });
  installBuiltin("null?", [](Interp &In, Object *Args) -> Object * {
    return Interp::car(Args) == nullptr ? In.makeNumber(1) : nullptr;
  });
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

class Reader {
public:
  Reader(Interp &In, std::string Text) : In(In), Text(std::move(Text)) {}

  Object *read() {
    skipSpace();
    if (Pos >= Text.size())
      fatalError("unexpected end of input");
    if (Text[Pos] == '(') {
      ++Pos;
      return readList();
    }
    return readAtom();
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

private:
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  Object *readList() {
    HandleScope Scope(In.heap());
    Object *&Reversed = Scope.slot(nullptr);
    for (;;) {
      skipSpace();
      if (Pos >= Text.size())
        fatalError("unterminated list");
      if (Text[Pos] == ')') {
        ++Pos;
        return In.reverseList(Reversed);
      }
      Object *&Element = Scope.slot(read());
      Reversed = In.cons(Element, Reversed);
    }
  }

  Object *readAtom() {
    size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != '(' && Text[Pos] != ')' &&
           !std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    std::string Token = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    long long Value = std::strtoll(Token.c_str(), &End, 10);
    if (End != Token.c_str() && *End == '\0')
      return In.makeNumber(Value);
    return In.intern(Token);
  }

  Interp &In;
  std::string Text;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Demo program
//===----------------------------------------------------------------------===//

const char *DemoProgram = R"((begin
  (define iota (lambda (n) (begin
    (define loop (lambda (i acc)
      (if (= i 0) acc (loop (- i 1) (cons i acc)))))
    (loop n (quote ())))))
  (define map (lambda (f xs)
    (if (null? xs) (quote ())
        (cons (f (car xs)) (map f (cdr xs))))))
  (define sum (lambda (xs)
    (if (null? xs) 0 (+ (car xs) (sum (cdr xs))))))
  (define square (lambda (x) (* x x)))
  (define run (lambda (k acc)
    (if (= k 0) acc
        (run (- k 1) (+ acc (sum (map square (iota 60))))))))
  (run 400 0)))";

} // namespace

int main(int Argc, char **Argv) {
  std::string Expr;
  uint64_t TriggerKB = 96;
  uint64_t PauseBudgetUs = 64'000;
  bool Dump = false;
  OptionParser Parser("A tiny Lisp whose values live on the DTB-collected "
                      "managed heap");
  Parser.addString("expr", "S-expression to evaluate instead of the demo",
                   &Expr);
  Parser.addUInt("trigger-kb", "KB of allocation between collections",
                 &TriggerKB);
  Parser.addUInt("pause-us", "DTBFM pause budget in microseconds of "
                 "simulated tracing (500 bytes/ms)", &PauseBudgetUs);
  Parser.addFlag("dump", "Print the heap age demographics at exit", &Dump);
  if (!Parser.parse(Argc, Argv))
    return 1;

  runtime::HeapConfig Config;
  Config.TriggerBytes = TriggerKB * 1000;
  Heap H(Config);
  core::PolicyConfig Policy;
  Policy.TraceMaxBytes = PauseBudgetUs / 2; // 500 bytes/ms = 0.5 B/us.
  H.setPolicy(core::createPolicy("dtbfm", Policy));

  Interp In(H);
  Reader R(In, Expr.empty() ? DemoProgram : Expr);

  HandleScope Scope(H);
  Object *&Result = Scope.slot(nullptr);
  while (!R.atEnd()) {
    Object *&Program = Scope.slot(R.read());
    Result = In.eval(Program, In.globalEnv());
  }
  std::printf("result: %s\n", In.toString(Result).c_str());
  if (Expr.empty())
    std::printf("        (400 iterations of sum(map(square, iota(60))) "
                "= 400 * 73810)\n");

  std::printf("\ncollector behaviour (DTBFM, %llu-byte trace budget):\n",
              static_cast<unsigned long long>(Policy.TraceMaxBytes));
  std::printf("  total allocated:   %s\n", formatBytes(H.now()).c_str());
  std::printf("  resident at end:   %s\n",
              formatBytes(H.residentBytes()).c_str());
  std::printf("  collections:       %llu\n",
              static_cast<unsigned long long>(H.history().size()));
  uint64_t Traced = 0;
  for (const core::ScavengeRecord &Rec : H.history().records())
    Traced += Rec.TracedBytes;
  std::printf("  bytes traced:      %s\n", formatBytes(Traced).c_str());
  std::printf("  remembered set:    %zu entries\n",
              H.rememberedSet().size());

  if (Dump) {
    std::printf("\nheap demographics at exit:\n");
    runtime::printDemographics(runtime::collectDemographics(H), stdout);
  }

  runtime::VerifyResult V = runtime::verifyHeap(H);
  std::printf("  heap verifier:     %s\n", V.Ok ? "OK" : "FAILED");
  return V.Ok ? 0 : 1;
}
