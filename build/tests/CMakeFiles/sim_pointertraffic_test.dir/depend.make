# Empty dependencies file for sim_pointertraffic_test.
# This may be replaced when dependencies are built.
