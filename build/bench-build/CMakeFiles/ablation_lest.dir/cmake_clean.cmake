file(REMOVE_RECURSE
  "../bench/ablation_lest"
  "../bench/ablation_lest.pdb"
  "CMakeFiles/ablation_lest.dir/ablation_lest.cpp.o"
  "CMakeFiles/ablation_lest.dir/ablation_lest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
