//===- tests/telemetry_integration_test.cpp - End-to-end telemetry -------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// Telemetry wired through the real pipelines: the experiment grid's event
// stream is bit-identical across worker-thread counts, the per-scavenge
// pause spans reproduce the Table 3 quantiles exactly, and the managed
// heap emits scavenge spans, TB instants, and degradation instants.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Export.h"
#include "telemetry/Telemetry.h"

#include "core/Policies.h"
#include "report/Experiments.h"
#include "runtime/Heap.h"
#include "support/Statistics.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace dtb;
using namespace dtb::report;
using namespace dtb::runtime;
namespace tel = dtb::telemetry;

namespace {

/// Two small distinct workloads; the grid keys tracks by workload name.
std::vector<workload::WorkloadSpec> testWorkloads() {
  workload::WorkloadSpec A = workload::makeSteadyStateSpec(192 * 1024, 7);
  A.Name = "wa";
  workload::WorkloadSpec B = workload::makeSteadyStateSpec(256 * 1024, 11);
  B.Name = "wb";
  return {A, B};
}

ExperimentConfig smallConfig(unsigned Threads) {
  ExperimentConfig Config;
  Config.TriggerBytes = 32 * 1024;
  Config.TraceMaxBytes = 8 * 1024;
  Config.MemMaxBytes = 256 * 1024;
  Config.Threads = Threads;
  return Config;
}

const std::vector<std::string> TestPolicies = {"full", "dtbfm", "dtbmem"};

/// Runs the grid with telemetry live and returns the exported trace bytes.
/// The recorder and global registry are reset first so consecutive calls
/// start from identical state.
std::string runGridAndExport(unsigned Threads) {
  tel::recorder().enable(); // Clears the buffer.
  tel::MetricsRegistry::global().reset();
  ExperimentGrid Grid(testWorkloads(), TestPolicies, smallConfig(Threads));
  char *Data = nullptr;
  size_t Size = 0;
  std::FILE *Stream = open_memstream(&Data, &Size);
  tel::writeChromeTrace(tel::recorder().buffer().sorted(),
                       tel::MetricsRegistry::global().snapshot(),
                       tel::ExportOptions(), Stream);
  std::fclose(Stream);
  std::string Out(Data, Size);
  std::free(Data);
  tel::recorder().disable();
  tel::recorder().buffer().clear();
  return Out;
}

TEST(TelemetryIntegration, GridExportBitIdenticalAcrossThreadCounts) {
  if (!tel::compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  std::string Serial = runGridAndExport(1);
  std::string Parallel = runGridAndExport(4);
  EXPECT_FALSE(Serial.empty());
  EXPECT_EQ(Serial, Parallel);
}

TEST(TelemetryIntegration, PauseSpansReproduceTable3QuantilesExactly) {
  if (!tel::compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  tel::recorder().enable();
  tel::MetricsRegistry::global().reset();
  ExperimentGrid Grid(testWorkloads(), TestPolicies, smallConfig(1));
  std::vector<tel::Event> Events = tel::recorder().buffer().sorted();
  tel::recorder().disable();
  tel::recorder().buffer().clear();

  for (const workload::WorkloadSpec &Spec : Grid.workloads()) {
    for (const std::string &Policy : Grid.policyNames()) {
      std::string Track = "sim/" + Spec.Name + "/" + Policy;
      SampleSet Pauses;
      for (const tel::Event &E : Events)
        if (E.Track == Track && E.Phase == tel::EventPhase::Span &&
            E.Name == "scavenge")
          Pauses.add(E.DurMillis);
      const sim::SimulationResult &Result = Grid.result(Policy, Spec.Name);
      ASSERT_EQ(Pauses.size(), Result.PauseMillis.size())
          << Track << ": one span per scavenge";
      // The span duration is the same double the simulator fed into
      // PauseMillis, so Table 3's quantiles come out bit-exact.
      EXPECT_DOUBLE_EQ(Pauses.median(), Result.PauseMillis.median()) << Track;
      EXPECT_DOUBLE_EQ(Pauses.percentile90(), Result.PauseMillis.percentile90())
          << Track;
    }
  }
}

TEST(TelemetryIntegration, GridEmitsTbInstantsAndRuleArgs) {
  if (!tel::compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  tel::recorder().enable();
  tel::MetricsRegistry::global().reset();
  ExperimentGrid Grid(testWorkloads(), {"dtbfm"}, smallConfig(1));
  std::vector<tel::Event> Events = tel::recorder().buffer().sorted();
  tel::recorder().disable();
  tel::recorder().buffer().clear();

  size_t Instants = 0, SpansWithRule = 0, Spans = 0;
  for (const tel::Event &E : Events) {
    if (E.Phase == tel::EventPhase::Instant && E.Name == "tb")
      Instants += 1;
    if (E.Phase == tel::EventPhase::Span && E.Name == "scavenge") {
      Spans += 1;
      for (const tel::EventArg &A : E.Args)
        if (A.Key == "rule" && !A.Value.empty()) {
          SpansWithRule += 1;
          break;
        }
    }
  }
  EXPECT_GT(Spans, 0u);
  EXPECT_EQ(Instants, Spans); // One TB decision instant per scavenge.
  EXPECT_EQ(SpansWithRule, Spans);

  // The policy rule counters account for every scavenge of the run.
  uint64_t RuleTotal = 0;
  for (const tel::MetricSample &M : tel::MetricsRegistry::global().snapshot())
    if (M.Name.rfind("policy.dtbfm.rule.", 0) == 0)
      RuleTotal += static_cast<uint64_t>(M.Value);
  uint64_t TotalScavenges = 0;
  for (const workload::WorkloadSpec &Spec : Grid.workloads())
    TotalScavenges += Grid.result("dtbfm", Spec.Name).NumScavenges;
  EXPECT_EQ(RuleTotal, TotalScavenges);
}

TEST(TelemetryIntegration, HeapEmitsScavengeSpansAndDegradationInstants) {
  if (!tel::compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  tel::recorder().enable();
  tel::MetricsRegistry::global().reset();
  {
    HeapConfig Config;
    Config.TriggerBytes = 0;
    Config.HeapLimitBytes = 16 * 1024;
    Heap H(Config);
    H.setPolicy(core::createPolicy("full", core::PolicyConfig()));
    // Unrooted allocations: each one over the limit walks the degradation
    // ladder, whose first rung scavenges all the garbage away.
    for (int I = 0; I != 64; ++I)
      ASSERT_NE(H.tryAllocate(0, 1024), nullptr);
  }
  std::vector<tel::Event> Events = tel::recorder().buffer().sorted();
  tel::recorder().disable();
  tel::recorder().buffer().clear();

  size_t Scavenges = 0, Degradations = 0, TbInstants = 0;
  for (const tel::Event &E : Events) {
    if (E.Track.rfind("heap#", 0) != 0)
      continue;
    if (E.Phase == tel::EventPhase::Span && E.Name == "scavenge")
      Scavenges += 1;
    else if (E.Phase == tel::EventPhase::Instant && E.Name == "degradation")
      Degradations += 1;
    else if (E.Phase == tel::EventPhase::Instant && E.Name == "tb")
      TbInstants += 1;
  }
  EXPECT_GT(Scavenges, 0u);
  EXPECT_GT(Degradations, 0u);
  EXPECT_EQ(TbInstants, Scavenges);

  // Registry mirrors: the scavenge count and at least one per-kind
  // degradation counter moved.
  EXPECT_EQ(static_cast<size_t>(tel::MetricsRegistry::global()
                                    .counter("runtime.scavenge.count")
                                    .value()),
            Scavenges);
  uint64_t DegradationCounted = 0;
  for (const tel::MetricSample &M : tel::MetricsRegistry::global().snapshot())
    if (M.Name.rfind("runtime.degradation.", 0) == 0)
      DegradationCounted += static_cast<uint64_t>(M.Value);
  EXPECT_EQ(DegradationCounted, Degradations);
}

TEST(TelemetryIntegration, SilentWithoutTrackOrWhenDisabled) {
  // A grid run with the recorder disabled leaves the buffer empty; a
  // direct simulate() with no TelemetryTrack emits nothing even when the
  // recorder is live.
  tel::recorder().disable();
  tel::recorder().buffer().clear();
  ExperimentGrid Grid(testWorkloads(), {"full"}, smallConfig(1));
  EXPECT_EQ(tel::recorder().buffer().size(), 0u);
  if (!tel::compiledIn())
    return;
  tel::recorder().enable();
  workload::WorkloadSpec Spec = testWorkloads()[0];
  trace::Trace T = workload::generateTrace(Spec);
  sim::SimulatorConfig SimConfig;
  SimConfig.TriggerBytes = 32 * 1024;
  std::unique_ptr<core::BoundaryPolicy> Policy =
      core::createPolicy("full", core::PolicyConfig());
  sim::simulate(T, *Policy, SimConfig);
  EXPECT_EQ(tel::recorder().buffer().size(), 0u);
  tel::recorder().disable();
  tel::recorder().buffer().clear();
}

} // namespace
