//===- tests/policy_optimal_test.cpp --------------------------------------==//
//
// Tests for the clairvoyant regret-baseline policies: unit behaviour on
// scripted demographics and dominance properties against the paper's
// feedback policies on the simulator.
//
//===----------------------------------------------------------------------===//

#include "core/OptimalPolicies.h"

#include "core/Policies.h"
#include "sim/Simulator.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::core;

namespace {

/// Demographics with linear live/resident profiles: live born after B is
/// LiveTotal * (Now - B) / Now (and similarly for resident), a smooth
/// stand-in good enough to pin the binary searches.
class LinearDemographics final : public Demographics {
public:
  LinearDemographics(AllocClock Now, uint64_t LiveTotal,
                     uint64_t ResidentTotal)
      : Now(Now), LiveTotal(LiveTotal), ResidentTotal(ResidentTotal) {}

  uint64_t liveBytesBornAfter(AllocClock Boundary) const override {
    if (Boundary >= Now)
      return 0;
    return LiveTotal * (Now - Boundary) / Now;
  }
  uint64_t residentBytesBornAfter(AllocClock Boundary) const override {
    if (Boundary >= Now)
      return 0;
    return ResidentTotal * (Now - Boundary) / Now;
  }

private:
  AllocClock Now;
  uint64_t LiveTotal;
  uint64_t ResidentTotal;
};

BoundaryRequest makeRequest(const ScavengeHistory &History, AllocClock Now,
                            uint64_t MemBytes, const Demographics &Demo) {
  BoundaryRequest Request;
  Request.Index = History.size() + 1;
  Request.Now = Now;
  Request.MemBytes = MemBytes;
  Request.History = &History;
  Request.Demo = &Demo;
  return Request;
}

void addScavenge(ScavengeHistory &History, AllocClock Time) {
  ScavengeRecord R;
  R.Index = History.size() + 1;
  R.Time = Time;
  History.append(R);
}

} // namespace

TEST(OptimalPauseTest, FirstScavengeIsFull) {
  OptimalPausePolicy P(50'000);
  ScavengeHistory History;
  LinearDemographics Demo(1'000'000, 500'000, 700'000);
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 1'000'000, 0, Demo)), 0u);
}

TEST(OptimalPauseTest, FullWhenBudgetAllows) {
  OptimalPausePolicy P(600'000); // More than all live bytes.
  ScavengeHistory History;
  addScavenge(History, 1'000'000);
  LinearDemographics Demo(2'000'000, 500'000, 700'000);
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 2'000'000, 0, Demo)), 0u);
}

TEST(OptimalPauseTest, FindsExactThresholdBoundary) {
  // Live born after B = 500,000 * (2M - B) / 2M; budget 125,000 is met
  // exactly at B = 1,500,000.
  OptimalPausePolicy P(125'000);
  ScavengeHistory History;
  addScavenge(History, 1'600'000);
  LinearDemographics Demo(2'000'000, 500'000, 700'000);
  AllocClock B = P.chooseBoundary(makeRequest(History, 2'000'000, 0, Demo));
  EXPECT_NEAR(static_cast<double>(B), 1'500'000.0, 8.0);
  // And the predicted trace at the chosen boundary fits.
  EXPECT_LE(Demo.liveBytesBornAfter(B), 125'000u);
}

TEST(OptimalPauseTest, ClampsToNewestIntervalWhenOverConstrained) {
  OptimalPausePolicy P(1'000); // Impossible.
  ScavengeHistory History;
  addScavenge(History, 1'900'000);
  LinearDemographics Demo(2'000'000, 500'000, 700'000);
  EXPECT_EQ(P.chooseBoundary(makeRequest(History, 2'000'000, 0, Demo)),
            1'900'000u);
}

TEST(OptimalMemoryTest, LaziestBoundaryWhenBudgetSlack) {
  OptimalMemoryPolicy P(10'000'000); // Huge budget.
  ScavengeHistory History;
  addScavenge(History, 1'500'000);
  LinearDemographics Demo(2'000'000, 500'000, 700'000);
  EXPECT_EQ(P.chooseBoundary(
                makeRequest(History, 2'000'000, 700'000, Demo)),
            1'500'000u);
}

TEST(OptimalMemoryTest, FullWhenOverConstrained) {
  OptimalMemoryPolicy P(100'000); // Below even the live bytes.
  ScavengeHistory History;
  addScavenge(History, 1'500'000);
  LinearDemographics Demo(2'000'000, 500'000, 700'000);
  EXPECT_EQ(P.chooseBoundary(
                makeRequest(History, 2'000'000, 700'000, Demo)),
            0u);
}

TEST(OptimalMemoryTest, FindsYoungestFittingBoundary) {
  // Garbage born after B = 200,000 * (2M - B) / 2M. Mem_n = 700,000;
  // budget 650,000 requires garbage >= 50,000 => B <= 1,500,000.
  OptimalMemoryPolicy P(650'000);
  ScavengeHistory History;
  addScavenge(History, 1'900'000);
  LinearDemographics Demo(2'000'000, 500'000, 700'000);
  AllocClock B = P.chooseBoundary(
      makeRequest(History, 2'000'000, 700'000, Demo));
  EXPECT_NEAR(static_cast<double>(B), 1'500'000.0, 8.0);
}

TEST(OptimalFactoryTest, CreatableByName) {
  PolicyConfig Config;
  EXPECT_NE(createPolicy("opt-pause", Config), nullptr);
  EXPECT_NE(createPolicy("opt-mem", Config), nullptr);
}

//===----------------------------------------------------------------------===//
// Dominance on the simulator (oracle demographics)
//===----------------------------------------------------------------------===//

namespace {

trace::Trace dominanceTrace(uint64_t Seed) {
  return workload::generateTrace(
      workload::makeSteadyStateSpec(2'000'000, Seed));
}

sim::SimulatorConfig dominanceConfig() {
  sim::SimulatorConfig Config;
  Config.TriggerBytes = 50'000;
  Config.ProgramSeconds = 1.0;
  return Config;
}

} // namespace

TEST(OptimalDominanceTest, OptPauseNeverExceedsBudgetUnlessImpossible) {
  trace::Trace T = dominanceTrace(31);
  const uint64_t Budget = 20'000;
  OptimalPausePolicy Policy(Budget);
  sim::SimulationResult R = sim::simulate(T, Policy, dominanceConfig());
  // The oracle search makes every pause except the first (full) scavenge
  // fit the budget exactly — unless even the newest interval exceeds it.
  const auto &Records = R.History.records();
  for (size_t I = 1; I < Records.size(); ++I) {
    if (Records[I].Boundary == Records[I - 1].Time)
      continue; // Best-effort clamp: budget impossible at this scavenge.
    EXPECT_LE(Records[I].TracedBytes, Budget) << I;
  }
}

TEST(OptimalDominanceTest, OptPauseUsesNoMoreMemoryThanDtbFm) {
  trace::Trace T = dominanceTrace(32);
  const uint64_t Budget = 20'000;
  OptimalPausePolicy Opt(Budget);
  DtbPausePolicy DtbFm(Budget);
  sim::SimulationResult ROpt = sim::simulate(T, Opt, dominanceConfig());
  sim::SimulationResult RFm = sim::simulate(T, DtbFm, dominanceConfig());
  // The clairvoyant baseline reclaims at least as aggressively.
  EXPECT_LE(ROpt.MemMeanBytes, RFm.MemMeanBytes * 1.01);
}

TEST(OptimalDominanceTest, OptMemCloseToDtbMemWhenFeasible) {
  trace::Trace T = dominanceTrace(33);
  core::FullPolicy Full;
  sim::SimulationResult RFull = sim::simulate(T, Full, dominanceConfig());
  uint64_t Budget = RFull.MemMaxBytes + 50'000; // Comfortably feasible.

  OptimalMemoryPolicy Opt(Budget);
  DtbMemoryPolicy DtbMem(Budget);
  sim::SimulationResult ROpt = sim::simulate(T, Opt, dominanceConfig());
  sim::SimulationResult RMem = sim::simulate(T, DtbMem, dominanceConfig());
  // The policy bounds post-scavenge residency by the budget; the observed
  // maximum adds at most one trigger interval of fresh allocation (plus
  // the final object that crossed the trigger point).
  EXPECT_LE(ROpt.MemMaxBytes, Budget + 50'000 + 4'096);
  // Greedy-per-scavenge is not globally trace-minimal, so the clairvoyant
  // baseline and DTBMEM's estimate-driven heuristic land close to each
  // other (the regret the ablation bench quantifies), not in a strict
  // order.
  EXPECT_NEAR(static_cast<double>(ROpt.TotalTracedBytes),
              static_cast<double>(RMem.TotalTracedBytes),
              static_cast<double>(RMem.TotalTracedBytes) * 0.10);
}

TEST(OptimalDominanceTest, OptMemHoldsTheBudgetExactly) {
  trace::Trace T = dominanceTrace(34);
  core::FullPolicy Full;
  sim::SimulationResult RFull = sim::simulate(T, Full, dominanceConfig());
  // A feasible but tight budget: a bit above FULL's peak.
  uint64_t Budget = RFull.MemMaxBytes + 20'000;
  OptimalMemoryPolicy Opt(Budget);
  sim::SimulationResult R = sim::simulate(T, Opt, dominanceConfig());
  // The oracle holds residency-after within budget at every scavenge; the
  // observed max can exceed it only by the between-scavenge allocation.
  for (const core::ScavengeRecord &Rec : R.History.records())
    EXPECT_LE(Rec.SurvivedBytes, Budget) << Rec.Index;
}
