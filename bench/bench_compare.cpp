//===- bench/bench_compare.cpp - BENCH record regression gate -------------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// Diffs two BENCH_*.json records (baseline vs. candidate) and exits
// nonzero when the candidate regresses: exact metrics gate on equality,
// wall metrics on a MAD-derived noise threshold. Wired into CI against
// tests/data/bench/baseline.json so perf regressions fail the build.
//
// Exit codes: 0 clean, 1 regression/missing metric, 2 schema mismatch or
// unreadable input.
//
//===----------------------------------------------------------------------===//

#include "report/BenchCompare.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace dtb;

namespace {

bool readFile(const std::string &Path, std::string *Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  *Out = Buffer.str();
  return true;
}

bool loadRecord(const std::string &Path, report::BenchRecord *Out) {
  std::string Text;
  if (!readFile(Path, &Text)) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    return false;
  }
  std::string Error;
  if (!report::parseBenchRecord(Text, Out, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  report::BenchCompareOptions Options;
  bool AllowMissing = false;
  bool Verbose = false;

  OptionParser Parser(
      "Compares two BENCH_*.json records (baseline candidate) and exits "
      "nonzero on regressions: exact metrics gate on equality, wall "
      "metrics on max(rel-threshold * |baseline|, mad-multiplier * MAD)");
  Parser.addDouble("rel-threshold",
                   "Relative component of the wall noise threshold",
                   &Options.RelThreshold);
  Parser.addDouble("tail-threshold",
                   "Relative component applied to tail metrics (pause "
                   "quantiles, per-quantum maxima) instead of rel-threshold",
                   &Options.TailRelThreshold);
  Parser.addDouble("mad-multiplier",
                   "MAD multiple component of the wall noise threshold",
                   &Options.MadMultiplier);
  Parser.addFlag("allow-missing",
                 "Do not fail when a baseline metric is absent from the "
                 "candidate",
                 &AllowMissing);
  Parser.addFlag("verbose", "Print every row, not just failures and changes",
                 &Verbose);
  if (!Parser.parse(Argc, Argv))
    return 2;
  Options.FailOnMissing = !AllowMissing;

  if (Parser.positionals().size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare [options] baseline.json candidate.json\n");
    return 2;
  }

  report::BenchRecord Baseline, Candidate;
  if (!loadRecord(Parser.positionals()[0], &Baseline) ||
      !loadRecord(Parser.positionals()[1], &Candidate))
    return 2;

  report::BenchCompareResult Result =
      report::compareBenchRecords(Baseline, Candidate, Options);
  if (Result.SchemaMismatch) {
    std::fprintf(stderr, "error: %s\n", Result.SchemaNote.c_str());
    return Result.exitCode();
  }

  // Quiet mode shows only rows someone must act on; --verbose shows all.
  report::BenchCompareResult Shown = Result;
  if (!Verbose) {
    Shown.Rows.clear();
    for (const report::BenchMetricComparison &Row : Result.Rows)
      if (Row.Verdict != report::BenchVerdict::Pass)
        Shown.Rows.push_back(Row);
  }
  if (!Shown.Rows.empty())
    report::buildComparisonTable(Shown).print(stdout);

  std::printf("%s%u pass, %u improved, %u regressed, %u missing, %u new "
              "(baseline %s, candidate %s)\n",
              Shown.Rows.empty() ? "" : "\n", Result.NumPass,
              Result.NumImproved, Result.NumRegressed, Result.NumMissing,
              Result.NumNew,
              Baseline.Suite.empty() ? "?" : Baseline.Suite.c_str(),
              Candidate.Suite.empty() ? "?" : Candidate.Suite.c_str());
  if (Result.Failed)
    std::printf("FAIL: candidate regresses the baseline\n");
  return Result.exitCode();
}
