file(REMOVE_RECURSE
  "CMakeFiles/policy_combinators_test.dir/policy_combinators_test.cpp.o"
  "CMakeFiles/policy_combinators_test.dir/policy_combinators_test.cpp.o.d"
  "policy_combinators_test"
  "policy_combinators_test.pdb"
  "policy_combinators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_combinators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
