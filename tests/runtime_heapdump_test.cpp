//===- tests/runtime_heapdump_test.cpp ------------------------------------==//
//
// Tests for the heap-demographics snapshot.
//
//===----------------------------------------------------------------------===//

#include "runtime/HeapDump.h"

#include "runtime/Heap.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::runtime;

namespace {

HeapConfig manualConfig() {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  return Config;
}

uint64_t sumResident(const HeapDemographics &Demo) {
  uint64_t Total = 0;
  for (const AgeBand &Band : Demo.Bands)
    Total += Band.ResidentBytes;
  return Total;
}

} // namespace

TEST(HeapDumpTest, EmptyHeap) {
  Heap H(manualConfig());
  HeapDemographics Demo = collectDemographics(H);
  EXPECT_EQ(Demo.ResidentObjects, 0u);
  EXPECT_EQ(Demo.ResidentBytes, 0u);
  EXPECT_EQ(Demo.ReachableBytes, 0u);
}

TEST(HeapDumpTest, BandsPartitionResidency) {
  Heap H(manualConfig());
  HandleScope Scope(H);
  for (int I = 0; I != 200; ++I) {
    Object *O = H.allocate(1, 64);
    if (I % 3 == 0)
      Scope.slot(O);
  }
  HeapDemographics Demo = collectDemographics(H, /*BaseAgeBytes=*/1024);
  EXPECT_EQ(Demo.ResidentObjects, 200u);
  EXPECT_EQ(Demo.ResidentBytes, H.residentBytes());
  EXPECT_EQ(sumResident(Demo), H.residentBytes());
  EXPECT_LT(Demo.ReachableBytes, Demo.ResidentBytes);
  EXPECT_GT(Demo.ReachableBytes, 0u);
}

TEST(HeapDumpTest, BandRangesDoubleAndCover) {
  Heap H(manualConfig());
  H.allocate(0, 100'000); // Push the clock out.
  HeapDemographics Demo = collectDemographics(H, 1'000);
  ASSERT_GT(Demo.Bands.size(), 3u);
  EXPECT_EQ(Demo.Bands[0].AgeLo, 0u);
  EXPECT_EQ(Demo.Bands[0].AgeHi, 1'000u);
  EXPECT_EQ(Demo.Bands[1].AgeHi, 3'000u);  // Width doubles: 2,000.
  EXPECT_EQ(Demo.Bands[2].AgeHi, 7'000u);  // Width 4,000.
  EXPECT_EQ(Demo.Bands.back().AgeHi, ~0ull);
}

TEST(HeapDumpTest, YoungObjectsLandInYoungBands) {
  Heap H(manualConfig());
  Object *Old = H.allocate(0, 64);
  (void)Old;
  H.allocate(0, 100'000); // Age the first object by 100 KB.
  Object *Young = H.allocate(0, 64);
  (void)Young;

  HeapDemographics Demo = collectDemographics(H, 1'024);
  // The young object has age < 1 KB: band 0 must hold at least one
  // object; the old object's age (~100 KB) lands in a later band.
  EXPECT_GE(Demo.Bands[0].ResidentObjects, 1u);
  uint64_t OldBandObjects = 0;
  for (size_t I = 5; I != Demo.Bands.size(); ++I)
    OldBandObjects += Demo.Bands[I].ResidentObjects;
  EXPECT_GE(OldBandObjects, 1u);
}

TEST(HeapDumpTest, ReachabilityDistinguishesGarbage) {
  Heap H(manualConfig());
  HandleScope Scope(H);
  Scope.slot(H.allocate(0, 500));
  H.allocate(0, 500); // Garbage of the same vintage.
  HeapDemographics Demo = collectDemographics(H);
  EXPECT_EQ(Demo.ResidentBytes, Demo.ReachableBytes * 2);
}

TEST(HeapDumpTest, PrintsWithoutCrashing) {
  Heap H(manualConfig());
  HandleScope Scope(H);
  for (int I = 0; I != 50; ++I)
    Scope.slot(H.allocate(1, 32));
  HeapDemographics Demo = collectDemographics(H);

  char *Buffer = nullptr;
  size_t Size = 0;
  std::FILE *Stream = open_memstream(&Buffer, &Size);
  printDemographics(Demo, Stream);
  std::fclose(Stream);
  EXPECT_GT(Size, 0u);
  std::free(Buffer);
}
