//===- runtime/CopyingCollector.cpp - Evacuating scavenger ---------------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// The copying strategy: surviving threatened objects are evacuated to
// fresh storage (Cheney-style, with an explicit forwarding table) and
// every original in the threatened region is released at once — the
// paper's "reclaiming all the storage at once in the case of a copying
// collector". Immune objects never move; pinned threatened objects are
// traced in place. References into the threatened region are updated in
// the global roots, handle slots, evacuated copies, and — for immune
// objects — exactly the remembered-set entries, which by construction
// cover every immune→threatened pointer.
//
// Births travel with the copies, so the birth-ordered allocation list is
// rebuilt by substituting forwarded addresses in place: the collector
// "may maintain object locations in any order" (Figure 1's caption) while
// the logical age order is preserved.
//
// Evacuation runs on the shared trace-lane engine (TraceLanes.h): lanes
// race an atomic fetch_or on the header's claim bit, so exactly one lane
// copies each object; the winner publishes the copy through a release
// store into a side table of forwarding slots (indexed by the original's
// position in the threatened suffix — the 24-byte header has no room for
// a forwarding pointer), and losers acquire-spin on that slot. Which lane
// wins is scheduling-dependent; what is copied, accounted, and published
// is not.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include "runtime/Mutator.h"
#include "runtime/TraceLanes.h"
#include "support/Error.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

using namespace dtb;
using namespace dtb::runtime;
using core::AllocClock;

Heap::ScavengeWork Heap::runCopying(AllocClock Boundary) {
  ScavengeWork Work;

  const size_t Begin = firstBornAfter(Boundary);
  // Forwarding side table, one slot per threatened original. The object
  // list is birth-ordered and frozen until the sweep, so a threatened
  // original's slot is recoverable by position (direct index in the
  // sweep, binary search on the unique birth elsewhere).
  std::vector<std::atomic<Object *>> Forward(Objects.size() - Begin);
  auto forwardSlot = [&](const Object *O) -> std::atomic<Object *> & {
    auto It = std::lower_bound(
        Objects.begin() + static_cast<ptrdiff_t>(Begin), Objects.end(),
        O->birth(),
        [](const Object *A, AllocClock Birth) { return A->birth() < Birth; });
    assert(It != Objects.end() && *It == O && "original not in object list");
    return Forward[static_cast<size_t>(It - Objects.begin()) - Begin];
  };

  auto isThreatened = [&](const Object *O) {
    return O && O->birth() > Boundary;
  };

  // Evacuates a threatened object (or visits it in place when pinned) and
  // returns its post-collection address. Safe from any lane: the claim
  // bit admits exactly one winner, losers wait for the winner's publish.
  auto relocate = [&](Object *O, TraceLane &Lane) -> Object * {
    assert(isThreatened(O) && "relocating an immune object");
    assert(O->isAlive() && "relocating a reclaimed object");
    std::atomic<Object *> &Slot = forwardSlot(O);
    if (!O->tryAcquireFlag(Object::FlagClaimed)) {
      // Another lane owns the evacuation; its publish is imminent.
      Object *Published = Slot.load(std::memory_order_acquire);
      while (!Published) {
        std::this_thread::yield();
        Published = Slot.load(std::memory_order_acquire);
      }
      return Published;
    }
    if (isPinned(O)) {
      // Pinned objects are traced in place and keep their address; the
      // mark bit records the in-place survival for the sweep.
      O->setFlagAtomic(Object::FlagMarked);
      Lane.TracedBytes += O->grossBytes();
      Lane.ObjectsTraced += 1;
      Lane.Survivors.push_back({O->birth(), O->grossBytes()});
      Lane.addChild(O);
      Slot.store(O, std::memory_order_release);
      return O;
    }
    // Clone: identical header (birth included) and payload. The header is
    // copied field by field rather than memcpy'd — losing lanes may still
    // be doing atomic claim RMWs on the original's flag byte, and a plain
    // whole-header read would race with them.
    void *Memory = ::operator new(O->grossBytes());
    Object *Copy = reinterpret_cast<Object *>(Memory);
    Copy->Magic = Object::MagicAlive;
    Copy->Flags = 0;
    // Copies always get dedicated storage, even when the original lived
    // inside a TLAB block.
    Copy->Storage = Object::StorageOwn;
    Copy->NumSlots = O->NumSlots;
    Copy->RawBytes = O->RawBytes;
    Copy->GrossBytes = O->GrossBytes;
    Copy->Birth = O->Birth;
    std::memcpy(static_cast<void *>(Copy + 1),
                static_cast<const void *>(O + 1),
                O->grossBytes() - sizeof(Object));
    Lane.TracedBytes += O->grossBytes();
    Lane.ObjectsTraced += 1;
    Lane.ObjectsMoved += 1;
    Lane.Survivors.push_back({O->birth(), O->grossBytes()});
    Lane.addChild(Copy);
    Slot.store(Copy, std::memory_order_release);
    return Copy;
  };

  // Scan body for the parallel rounds: fix up one copy's (or pinned
  // survivor's) slots, relocating threatened targets. The scanned object
  // is exclusive to this lane, so the slot writes need no synchronization.
  auto scanForPromotion = [&](Object *O, TraceLane &Lane) {
    for (uint32_t I = 0, E = O->numSlots(); I != E; ++I) {
      Object *Target = O->slot(I);
      if (!isThreatened(Target))
        continue;
      Object *Moved = relocate(Target, Lane);
      if (Moved != Target)
        O->setSlotRaw(I, Moved);
    }
  };

  bool PoolIsPrivate = false;
  ThreadPool *Pool = tracePoolFor(&PoolIsPrivate);
  TraceLaneSet Lanes(Pool, PoolIsPrivate);
  if (Profiler.active())
    for (unsigned I = 0; I != Lanes.numLanes(); ++I)
      Lanes.lane(I).Profiler.setEnabled(true);
  std::vector<Object *> Gray;

  // --- Roots ------------------------------------------------------------
  // Phase costs mirror the mark-sweep strategy: bytes evacuated during
  // each phase (the Work.TracedBytes delta); the transitive scan is the
  // promote phase — it is where survivors get copied out of the region.
  // Root and remset scans run serially on lane 0, drained per phase so
  // each phase's cost is exactly the bytes it discovered.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::RootScan);
    uint64_t Before = Work.TracedBytes;
    for (Object **Root : GlobalRoots)
      if (isThreatened(*Root))
        *Root = relocate(*Root, Lanes.serialLane());
    for (Object *&Handle : HandleSlots)
      if (isThreatened(Handle))
        Handle = relocate(Handle, Lanes.serialLane());
    for (Object *PinnedObject : Pinned)
      if (isThreatened(PinnedObject))
        relocate(PinnedObject, Lanes.serialLane()); // In place; no move.
    // Per-context root slots are updated in place, exactly like handles
    // (the world is stopped, so the slots are stable).
    for (MutatorContext *Ctx : Mutators)
      for (Object *&Root : Ctx->Roots)
        if (isThreatened(Root))
          Root = relocate(Root, Lanes.serialLane());
    drainTraceLanes(Lanes, Gray, Work);
    Phase.addCost(Work.TracedBytes - Before);
  }

  // Remembered-set roots: immune sources holding pointers across the
  // boundary get their slots rewritten to the relocated targets. Stale
  // entries are pruned exactly as in the mark-sweep strategy.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::RemSetScan);
    uint64_t Before = Work.TracedBytes;
    RemSet.forEachAndPrune([&](Object *Source, uint32_t SlotIndex) {
      assert(Source->isAlive() && "remembered set names a dead source");
      Object *Target = Source->slot(SlotIndex);
      if (!Target || Target->birth() <= Source->birth()) {
        LastStats.RememberedSetPruned += 1;
        return false;
      }
      if (Source->birth() <= Boundary && isThreatened(Target)) {
        LastStats.RememberedSetRoots += 1;
        Source->setSlotRaw(SlotIndex, relocate(Target, Lanes.serialLane()));
      }
      return true;
    });
    drainTraceLanes(Lanes, Gray, Work);
    Phase.addCost(Work.TracedBytes - Before);
  }

  // --- Transitive evacuation --------------------------------------------
  // Scan copies (and pinned survivors) for pointers into the threatened
  // region; such targets are themselves relocated and the slots fixed up.
  // Slots referencing immune objects are left alone — immune objects do
  // not move. Runs as budget-bounded quanta of parallel rounds.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::Promote);
    uint64_t Before = Work.TracedBytes;
    while (!Gray.empty()) {
      uint64_t Scanned = runTraceQuantum(
          Lanes, Gray, Config.ScavengeBudgetBytes, scanForPromotion,
          [&](std::vector<Object *> &G) { drainTraceLanes(Lanes, G, Work); });
      LastStats.TraceQuanta += 1;
      if (Scanned > LastStats.MaxQuantumTracedBytes)
        LastStats.MaxQuantumTracedBytes = Scanned;
    }
    Phase.addCost(Work.TracedBytes - Before);
  }
  for (unsigned I = 0; I != Lanes.numLanes(); ++I)
    LaneProfile.mergeFrom(Lanes.lane(I).Profiler);

  // --- Weak-reference processing ----------------------------------------
  // Weak references follow moved targets and are cleared when the target
  // did not survive; references to immune objects — and pinned survivors,
  // whose forwarding slot publishes their unchanged address — are
  // untouched.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::WeakRefs);
    Phase.addCost(WeakRefs.size());
    for (WeakRef *Weak : WeakRefs) {
      Object *Target = Weak->get();
      if (!isThreatened(Target))
        continue;
      Object *Survivor = forwardSlot(Target).load(std::memory_order_relaxed);
      if (!Survivor)
        Weak->set(nullptr);
      else if (Survivor != Target)
        Weak->set(Survivor);
    }
  }

  // --- Remembered-set rekeying ------------------------------------------
  // Entries whose source moved follow the copy (slot indices are layout-
  // preserved); entries whose threatened source did not survive are
  // dropped. A forwarding slot publishing the original itself is a pinned
  // survivor, traced in place.
  RemSet.remapSources([&](Object *Source) -> Object * {
    if (!isThreatened(Source))
      return Source; // Immune sources stay put.
    return forwardSlot(Source).load(std::memory_order_relaxed);
  });

  // --- Region release and list rebuild ----------------------------------
  // Substitute survivors into the birth-ordered allocation list (births
  // travel with copies, so in-place substitution preserves the order) and
  // release every non-pinned original in the threatened region at once.
  {
    profiling::ProfilePhase Phase(&Profiler, profiling::phase::Sweep);
    size_t Out = Begin;
    for (size_t I = Begin, E = Objects.size(); I != E; ++I) {
      Object *O = Objects[I];
      Object *Survivor = Forward[I - Begin].load(std::memory_order_relaxed);
      if (Survivor == O) { // Pinned survivor, traced in place.
        O->clearTraceFlags();
        Objects[Out++] = O;
        continue;
      }
      if (Survivor) {
        Objects[Out++] = Survivor;
        // The original's storage is released; a stale raw pointer held by
        // the mutator across this collection is a bug the quarantine
        // canary will catch.
        releaseStorage(O);
        continue;
      }
      Work.ReclaimedBytes += O->grossBytes();
      LastStats.ObjectsReclaimed += 1;
      releaseStorage(O);
    }
    Objects.resize(Out);
    Phase.addCost(Work.ReclaimedBytes);
  }
  return Work;
}

void Heap::releaseStorage(Object *O) {
  O->Magic = Object::MagicDead;
  if (Config.QuarantineFreedObjects) {
    // TLAB-interior objects quarantine like any other (their block then
    // simply never drains to zero, so it stays resident — quarantine mode
    // is monotonic either way).
    std::memset(O->rawData(), 0xDB, O->rawBytes());
    for (uint32_t I = 0; I != O->numSlots(); ++I)
      O->setSlotRaw(I, nullptr);
    Quarantine.push_back(O);
    return;
  }
  if (O->storageKind() == Object::StorageTlab) {
    // The object shares its TLAB block's storage: the block is freed only
    // when its last object dies after the owning context retired it.
    // Sweeps run world-stopped, so the block table is stable here.
    TlabBlock *Block = tlabBlockFor(O);
    DTB_CHECK(Block, "TLAB-interior object outside every block");
    DTB_CHECK(Block->LiveObjects != 0, "TLAB block live-count underflow");
    Block->LiveObjects -= 1;
    if (Block->Retired && Block->LiveObjects == 0)
      freeTlabBlock(Block);
    return;
  }
  ::operator delete(static_cast<void *>(O));
}
