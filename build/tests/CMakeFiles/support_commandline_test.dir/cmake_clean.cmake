file(REMOVE_RECURSE
  "CMakeFiles/support_commandline_test.dir/support_commandline_test.cpp.o"
  "CMakeFiles/support_commandline_test.dir/support_commandline_test.cpp.o.d"
  "support_commandline_test"
  "support_commandline_test.pdb"
  "support_commandline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_commandline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
