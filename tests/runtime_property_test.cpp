//===- tests/runtime_property_test.cpp ------------------------------------==//
//
// Property-based tests for the managed runtime: a random mutator builds
// and shreds object graphs while collections run with random boundaries
// and every paper policy. Invariants checked after every collection:
//
//  * no reachable object is ever reclaimed (canary via quarantine mode);
//  * the verifier's full battery passes (structure, accounting, barrier
//    completeness);
//  * a full collection leaves exactly the independently computed
//    reachable bytes;
//  * collections never increase resident bytes.
//
//===----------------------------------------------------------------------===//

#include "TestSeeds.h"

#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"

#include "core/Policies.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <vector>

using namespace dtb;
using namespace dtb::runtime;

namespace {

/// A mutator that keeps a root frontier of live objects and randomly
/// allocates, links, unlinks, and drops them.
class RandomMutator {
public:
  RandomMutator(Heap &H, uint64_t Seed, HandleScope &Scope)
      : H(H), R(Seed), Scope(Scope) {}

  void step() {
    double Action = R.nextDouble();
    if (Action < 0.55 || Rooted.empty()) {
      allocateOne();
    } else if (Action < 0.75) {
      linkTwo();
    } else if (Action < 0.9) {
      unlinkOne();
    } else {
      dropRoot();
    }
  }

private:
  void allocateOne() {
    auto NumSlots = static_cast<uint32_t>(R.nextBelow(4));
    auto RawBytes = static_cast<uint32_t>(R.nextBelow(128));
    Object *O = H.allocate(NumSlots, RawBytes);
    if (R.nextBool(0.5)) {
      // Root it...
      Rooted.push_back(&Scope.slot(O));
    } else if (!Rooted.empty()) {
      // ...or hang it off a random rooted object (if it has slots).
      Object *Parent = *Rooted[R.nextBelow(Rooted.size())];
      if (Parent && Parent->numSlots() > 0)
        H.writeSlot(Parent, static_cast<uint32_t>(
                                R.nextBelow(Parent->numSlots())),
                    O);
      // Otherwise the object is instant garbage — also a useful case.
    }
  }

  Object *randomRooted() {
    if (Rooted.empty())
      return nullptr;
    return *Rooted[R.nextBelow(Rooted.size())];
  }

  void linkTwo() {
    Object *A = randomRooted();
    Object *B = randomRooted();
    if (A && B && A->numSlots() > 0)
      H.writeSlot(A, static_cast<uint32_t>(R.nextBelow(A->numSlots())), B);
  }

  void unlinkOne() {
    Object *A = randomRooted();
    if (A && A->numSlots() > 0)
      H.writeSlot(A, static_cast<uint32_t>(R.nextBelow(A->numSlots())),
                  nullptr);
  }

  void dropRoot() {
    if (Rooted.empty())
      return;
    size_t Index = R.nextBelow(Rooted.size());
    *Rooted[Index] = nullptr; // The handle slot stays; the tree is cut.
    Rooted[Index] = Rooted.back();
    Rooted.pop_back();
  }

  Heap &H;
  Rng R;
  HandleScope &Scope;
  std::vector<Object **> Rooted;
};

/// Checks that every object reachable from the handle slots is alive.
void expectNoReclaimedReachable(const Heap &H) {
  VerifyResult Result = verifyHeap(H);
  ASSERT_TRUE(Result.Ok) << Result.Problems.front();
}

class RuntimePropertyTest : public testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RuntimePropertyTest, RandomBoundariesNeverHurtReachableObjects) {
  uint64_t Seed = test::effectiveSeed(GetParam());
  DTB_SCOPED_SEED_TRACE(Seed);
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Config.QuarantineFreedObjects = true;
  Heap H(Config);
  HandleScope Scope(H);
  RandomMutator Mutator(H, Seed, Scope);
  Rng R(Seed ^ 0xB0DA7); // Separate stream for boundary choices.

  for (int Round = 0; Round != 30; ++Round) {
    for (int Step = 0; Step != 40; ++Step)
      Mutator.step();

    uint64_t Before = H.residentBytes();
    // Random boundary anywhere in [0, now].
    core::AllocClock Boundary = R.nextBelow(H.now() + 1);
    const core::ScavengeRecord &Rec = H.collectAtBoundary(Boundary);
    EXPECT_LE(H.residentBytes(), Before);
    EXPECT_EQ(Rec.MemBeforeBytes, Rec.SurvivedBytes + Rec.ReclaimedBytes);
    expectNoReclaimedReachable(H);
  }

  // Finish with a full collection: survivors must equal the independent
  // reachability computation exactly.
  H.collectAtBoundary(0);
  EXPECT_EQ(H.residentBytes(), reachableBytes(H));
  expectNoReclaimedReachable(H);
}

TEST_P(RuntimePropertyTest, EveryPaperPolicyKeepsTheHeapSound) {
  uint64_t Seed = test::effectiveSeed(GetParam());
  DTB_SCOPED_SEED_TRACE(Seed);
  for (const std::string &PolicyName : core::paperPolicyNames()) {
    HeapConfig Config;
    Config.TriggerBytes = 8'192;
    Config.QuarantineFreedObjects = true;
    Heap H(Config);
    core::PolicyConfig PolicyConfig;
    PolicyConfig.TraceMaxBytes = 2'000;
    PolicyConfig.MemMaxBytes = 20'000;
    H.setPolicy(core::createPolicy(PolicyName, PolicyConfig));

    HandleScope Scope(H);
    RandomMutator Mutator(H, Seed * 7919 + 13, Scope);
    for (int Step = 0; Step != 1200; ++Step)
      Mutator.step();

    EXPECT_GT(H.history().size(), 0u) << PolicyName;
    for (const core::ScavengeRecord &Rec : H.history().records()) {
      EXPECT_LE(Rec.Boundary, Rec.Time) << PolicyName;
      EXPECT_EQ(Rec.MemBeforeBytes, Rec.SurvivedBytes + Rec.ReclaimedBytes)
          << PolicyName;
    }
    VerifyResult Result = verifyHeap(H);
    EXPECT_TRUE(Result.Ok)
        << PolicyName << ": " << Result.Problems.front();

    // After a final full collection the heap holds exactly the reachable
    // bytes — no policy can leave unreclaimable garbage behind.
    H.collectAtBoundary(0);
    EXPECT_EQ(H.residentBytes(), reachableBytes(H)) << PolicyName;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimePropertyTest,
                         testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                         13ull, 21ull, 34ull));
