//===- report/SeedSweep.cpp -----------------------------------------------==//

#include "report/SeedSweep.h"

#include "support/Error.h"
#include "support/Units.h"
#include "trace/TraceStats.h"

using namespace dtb;
using namespace dtb::report;

const SeedCell &SeedSweepResult::cell(const std::string &Policy,
                                      const std::string &Workload) const {
  for (const SeedCell &Cell : Cells)
    if (Cell.Policy == Policy && Cell.Workload == Workload)
      return Cell;
  fatalError("no seed-sweep cell for " + Policy + "/" + Workload);
}

SeedSweepResult dtb::report::runSeedSweep(
    const std::vector<workload::WorkloadSpec> &Workloads,
    const std::vector<std::string> &PolicyNames,
    const ExperimentConfig &Config, unsigned NumSeeds) {
  SeedSweepResult Result;
  for (const workload::WorkloadSpec &Base : Workloads) {
    Result.LiveMeanKB.push_back({Base.Name, RunningStats()});
    for (const std::string &Policy : PolicyNames) {
      SeedCell Cell;
      Cell.Policy = Policy;
      Cell.Workload = Base.Name;
      Result.Cells.push_back(std::move(Cell));
    }
  }

  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = Config.TraceMaxBytes;
  PolicyConfig.MemMaxBytes = Config.MemMaxBytes;

  for (size_t W = 0; W != Workloads.size(); ++W) {
    for (unsigned SeedIndex = 0; SeedIndex != NumSeeds; ++SeedIndex) {
      workload::WorkloadSpec Spec = Workloads[W];
      // Seed 0 is the spec's own; later ones are derived deterministically.
      Spec.Seed = Spec.Seed + 0x9e3779b9ull * SeedIndex;
      trace::Trace T = workload::generateTrace(Spec);

      Result.LiveMeanKB[W].second.add(
          bytesToKB(trace::computeTraceStats(T).LiveMeanBytes));

      sim::SimulatorConfig SimConfig;
      SimConfig.TriggerBytes = Config.TriggerBytes;
      SimConfig.Machine = Config.Machine;
      SimConfig.ProgramSeconds = Spec.ProgramSeconds;

      for (size_t P = 0; P != PolicyNames.size(); ++P) {
        auto Policy = core::createPolicy(PolicyNames[P], PolicyConfig);
        if (!Policy)
          fatalError("unknown policy: " + PolicyNames[P]);
        sim::SimulationResult R = sim::simulate(T, *Policy, SimConfig);
        SeedCell &Cell = Result.Cells[W * PolicyNames.size() + P];
        Cell.MemMeanKB.add(bytesToKB(R.MemMeanBytes));
        Cell.MemMaxKB.add(bytesToKB(R.MemMaxBytes));
        Cell.MedianPauseMs.add(R.PauseMillis.median());
        Cell.Pause90Ms.add(R.PauseMillis.percentile90());
        Cell.TracedKB.add(bytesToKB(R.TotalTracedBytes));
      }
    }
  }
  return Result;
}
