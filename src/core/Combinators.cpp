//===- core/Combinators.cpp -----------------------------------------------==//

#include "core/Combinators.h"

#include "support/Error.h"

#include <algorithm>

using namespace dtb;
using namespace dtb::core;

OldestBoundaryPolicy::OldestBoundaryPolicy(std::unique_ptr<BoundaryPolicy> A,
                                           std::unique_ptr<BoundaryPolicy> B)
    : A(std::move(A)), B(std::move(B)) {
  if (!this->A || !this->B)
    fatalError("combinator requires two policies");
}

std::string OldestBoundaryPolicy::name() const {
  return "oldest(" + A->name() + "," + B->name() + ")";
}

AllocClock
OldestBoundaryPolicy::chooseBoundary(const BoundaryRequest &Request) {
  return std::min(A->chooseBoundary(Request), B->chooseBoundary(Request));
}

void OldestBoundaryPolicy::reset() {
  A->reset();
  B->reset();
}

YoungestBoundaryPolicy::YoungestBoundaryPolicy(
    std::unique_ptr<BoundaryPolicy> A, std::unique_ptr<BoundaryPolicy> B)
    : A(std::move(A)), B(std::move(B)) {
  if (!this->A || !this->B)
    fatalError("combinator requires two policies");
}

std::string YoungestBoundaryPolicy::name() const {
  return "youngest(" + A->name() + "," + B->name() + ")";
}

AllocClock
YoungestBoundaryPolicy::chooseBoundary(const BoundaryRequest &Request) {
  return std::max(A->chooseBoundary(Request), B->chooseBoundary(Request));
}

void YoungestBoundaryPolicy::reset() {
  A->reset();
  B->reset();
}

QuantizedBoundaryPolicy::QuantizedBoundaryPolicy(
    std::unique_ptr<BoundaryPolicy> Inner, uint64_t QuantumBytes)
    : Inner(std::move(Inner)), QuantumBytes(QuantumBytes) {
  if (!this->Inner)
    fatalError("quantized policy requires an inner policy");
  if (QuantumBytes == 0)
    fatalError("quantum must be nonzero");
}

std::string QuantizedBoundaryPolicy::name() const {
  return "quantized(" + Inner->name() + "," +
         std::to_string(QuantumBytes) + ")";
}

AllocClock
QuantizedBoundaryPolicy::chooseBoundary(const BoundaryRequest &Request) {
  AllocClock Boundary = Inner->chooseBoundary(Request);
  // Snap down (older): only ever threatens more, so liveness safety and
  // the trace-at-least-once property are preserved.
  return Boundary - Boundary % QuantumBytes;
}

void QuantizedBoundaryPolicy::reset() { Inner->reset(); }
