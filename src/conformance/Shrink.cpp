//===- conformance/Shrink.cpp - Delta-debugging trace minimizer ----------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// Given a trace that diverges under runLockstep, shrink it to a minimal
// still-diverging reproducer. Candidates are built from (size, lifetime)
// pairs and re-clocked, so every candidate is a well-formed, replayable
// trace; four reductions run to a fixpoint under a replay budget:
//
//   1. tail truncation by binary search;
//   2. span coalescing — replace a run of small records with a few
//      trigger-sized ones carrying the same bytes (a divergence that needs
//      N trigger intervals of allocation needs only ~N records, not the
//      hundreds of small ones the workload generator emitted);
//   3. ddmin over record spans — drop whole allocation spans;
//   4. per-span size halving (clamped to the replayable minimum).
//
// Every adoption strictly decreases (record count, total bytes)
// lexicographically, so the fixpoint terminates even without the budget.
//
//===----------------------------------------------------------------------===//

#include "conformance/Conformance.h"

#include "support/Error.h"

#include <algorithm>

using namespace dtb;
using namespace dtb::conformance;

namespace {

/// One record, clock-independent: lifetimes ride along when spans are
/// dropped or sizes change.
struct Item {
  uint32_t Size = 0;
  /// Bytes of subsequent allocation the object survives; NeverDies for
  /// immortals.
  trace::AllocClock Lifetime = 0;
};

std::vector<Item> itemsOf(const trace::Trace &T) {
  std::vector<Item> Items;
  Items.reserve(T.records().size());
  for (const trace::AllocationRecord &R : T.records())
    Items.push_back({R.Size, R.Death == trace::NeverDies
                                 ? trace::NeverDies
                                 : R.Death - R.Birth});
  return Items;
}

trace::Trace buildTrace(const std::vector<Item> &Items) {
  std::vector<trace::AllocationRecord> Records;
  Records.reserve(Items.size());
  trace::AllocClock Clock = 0;
  for (const Item &I : Items) {
    Clock += I.Size;
    Records.push_back({Clock, I.Size,
                       I.Lifetime == trace::NeverDies ? trace::NeverDies
                                                      : Clock + I.Lifetime});
  }
  return trace::Trace(std::move(Records));
}

} // namespace

ShrinkResult dtb::conformance::shrinkDivergence(const trace::Trace &T,
                                                const LockstepConfig &Config,
                                                const ShrinkOptions &Options) {
  ShrinkResult Result;
  Result.OriginalRecords = T.records().size();

  LockstepResult Initial = runLockstep(T, Config);
  Result.Replays = 1;
  if (Initial.agreed())
    fatalError("shrinkDivergence needs a diverging trace");

  std::vector<Item> Best = itemsOf(T);
  LockstepResult BestResult = std::move(Initial);

  // Tries one candidate; adopts it as the new best when it still
  // diverges. Returns false (without replaying) once the budget is spent.
  auto tryAdopt = [&](std::vector<Item> Candidate) -> bool {
    if (Result.Replays >= Options.MaxReplays)
      return false;
    ++Result.Replays;
    LockstepResult R = runLockstep(buildTrace(Candidate), Config);
    if (R.agreed())
      return false;
    Best = std::move(Candidate);
    BestResult = std::move(R);
    return true;
  };
  auto budgetLeft = [&] { return Result.Replays < Options.MaxReplays; };

  uint32_t MinSize = minReplayableSize(Config.Links);
  // Coalesced records aim for one trigger interval each: the smallest
  // record count that still drives the same number of scavenges.
  constexpr uint64_t MaxSpan = (uint64_t(1) << 28) - 1;
  uint32_t Cap = static_cast<uint32_t>(std::clamp<uint64_t>(
      Config.TriggerBytes, MinSize, uint64_t(MinSize) + MaxSpan));

  bool Changed = true;
  while (Changed && budgetLeft()) {
    Changed = false;

    // --- 1. tail truncation ------------------------------------------------
    // Binary-search the shortest still-diverging prefix. Divergence is not
    // strictly monotone in the prefix length, so this is a heuristic — but
    // every adopted candidate is verified, so the reproducer is always
    // genuinely diverging.
    size_t Lo = 1, Hi = Best.size();
    while (Lo < Hi && budgetLeft()) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      std::vector<Item> Candidate(Best.begin(),
                                  Best.begin() + static_cast<long>(Mid));
      if (tryAdopt(std::move(Candidate))) {
        Changed = true;
        Hi = Mid;
      } else {
        Lo = Mid + 1;
      }
    }

    // --- 2. span coalescing ------------------------------------------------
    // Replace [Begin, End) with ceil(sum/Cap) records carrying the same
    // total bytes (balanced sizes, each within [MinSize, Cap]). The merged
    // records inherit the span's longest lifetime so any liveness the
    // divergence depends on is preserved; tryAdopt re-verifies regardless.
    size_t MergeChunks = 1;
    while (Best.size() > 1 && budgetLeft()) {
      size_t ChunkLen = std::max<size_t>(2, Best.size() / MergeChunks);
      bool Merged = false;
      for (size_t Begin = 0; Begin + 1 < Best.size() && budgetLeft();) {
        size_t End = std::min(Begin + ChunkLen, Best.size());
        uint64_t Sum = 0;
        trace::AllocClock Lifetime = 0;
        for (size_t I = Begin; I != End; ++I) {
          Sum += Best[I].Size;
          Lifetime = Best[I].Lifetime == trace::NeverDies
                         ? trace::NeverDies
                         : std::max(Lifetime, Best[I].Lifetime);
        }
        size_t Count = static_cast<size_t>((Sum + Cap - 1) / Cap);
        if (Count == 0 || Count >= End - Begin) {
          Begin = End;
          continue;
        }
        std::vector<Item> Candidate(Best.begin(),
                                    Best.begin() + static_cast<long>(Begin));
        for (size_t I = 0; I != Count; ++I) {
          uint64_t Size = Sum / Count + (I < Sum % Count ? 1 : 0);
          Candidate.push_back({static_cast<uint32_t>(Size), Lifetime});
        }
        Candidate.insert(Candidate.end(),
                         Best.begin() + static_cast<long>(End), Best.end());
        if (tryAdopt(std::move(Candidate))) {
          Merged = true;
          Changed = true;
          // Best shrank; rescan from the same offset.
        } else {
          Begin = End;
        }
      }
      if (!Merged) {
        if (ChunkLen == 2)
          break;
        MergeChunks = std::min(MergeChunks * 2, Best.size());
      }
    }

    // --- 3. ddmin span removal -------------------------------------------
    size_t Chunks = 2;
    while (Best.size() > 1 && budgetLeft()) {
      size_t ChunkLen = std::max<size_t>(1, Best.size() / Chunks);
      bool Removed = false;
      for (size_t Begin = 0; Begin < Best.size() && budgetLeft();) {
        size_t End = std::min(Begin + ChunkLen, Best.size());
        std::vector<Item> Candidate;
        Candidate.reserve(Best.size() - (End - Begin));
        Candidate.insert(Candidate.end(), Best.begin(),
                         Best.begin() + static_cast<long>(Begin));
        Candidate.insert(Candidate.end(),
                         Best.begin() + static_cast<long>(End), Best.end());
        if (!Candidate.empty() && tryAdopt(std::move(Candidate))) {
          Removed = true;
          Changed = true;
          // Best shrank; keep the same granularity from this offset.
        } else {
          Begin = End;
        }
      }
      if (!Removed) {
        if (ChunkLen == 1)
          break;
        Chunks = std::min(Chunks * 2, Best.size());
      }
    }

    // --- 4. span size halving ---------------------------------------------
    size_t SpanLen = std::max<size_t>(1, Best.size() / 4);
    for (size_t Begin = 0; Begin < Best.size() && budgetLeft();
         Begin += SpanLen) {
      size_t End = std::min(Begin + SpanLen, Best.size());
      std::vector<Item> Candidate = Best;
      bool Shrunk = false;
      for (size_t I = Begin; I != End; ++I) {
        uint32_t Halved = std::max(MinSize, Candidate[I].Size / 2);
        if (Halved != Candidate[I].Size) {
          Candidate[I].Size = Halved;
          Shrunk = true;
        }
      }
      if (Shrunk && tryAdopt(std::move(Candidate)))
        Changed = true;
    }
  }

  Result.Reproducer = buildTrace(Best);
  Result.Final = std::move(BestResult);
  return Result;
}
