//===- sim/PointerTraffic.cpp ---------------------------------------------==//

#include "sim/PointerTraffic.h"

#include "support/Error.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace dtb;
using namespace dtb::sim;
using trace::AllocClock;
using trace::AllocationRecord;

namespace {

/// Fenwick tree over object indices supporting alive-count prefix sums
/// and select-by-rank, so endpoints can be drawn by age order in
/// O(log n).
class AliveIndex {
public:
  explicit AliveIndex(size_t Capacity)
      : Tree(Capacity + 1, 0), Capacity(Capacity) {}

  void insert(size_t Index) { update(Index, +1); }
  void erase(size_t Index) { update(Index, -1); }

  uint64_t aliveCount() const { return Count; }

  /// Returns the object index of the \p Rank-th oldest alive object
  /// (0-based). Rank must be < aliveCount().
  size_t selectByRank(uint64_t Rank) const {
    assert(Rank < Count && "rank out of range");
    size_t Position = 0;
    uint64_t Remaining = Rank + 1;
    // Standard Fenwick binary lifting.
    size_t LogStep = 1;
    while ((LogStep << 1) <= Capacity)
      LogStep <<= 1;
    for (size_t Step = LogStep; Step != 0; Step >>= 1) {
      size_t Next = Position + Step;
      if (Next <= Capacity &&
          static_cast<uint64_t>(Tree[Next]) < Remaining) {
        Position = Next;
        Remaining -= static_cast<uint64_t>(Tree[Next]);
      }
    }
    return Position; // 1-based tree position == 0-based object index + 1…
  }

private:
  void update(size_t Index, int Delta) {
    Count += Delta;
    for (size_t I = Index + 1; I <= Capacity; I += I & (~I + 1))
      Tree[I] += Delta;
  }

  std::vector<int32_t> Tree;
  size_t Capacity;
  uint64_t Count = 0;
};

/// One synthesized pointer (an entry in the modelled remembered sets).
struct PointerEntry {
  uint32_t Source = 0;
  uint32_t Target = 0;
  bool Alive = true;
  bool InterGenerational = false;
};

} // namespace

RemSetDemand
dtb::sim::measureRemSetDemand(const trace::Trace &T,
                              const PointerTrafficModel &Model) {
  RemSetDemand Demand;
  const std::vector<AllocationRecord> &Records = T.records();
  if (Records.empty())
    return Demand;
  if (Model.StoresPerKB < 0.0 || Model.YoungBias <= 0.0 ||
      Model.YoungBias > 1.0)
    fatalError("invalid pointer-traffic model parameters");

  Rng R(Model.Seed);
  AliveIndex Alive(Records.size());

  // Deaths ordered by clock for incremental processing.
  std::vector<uint32_t> DeathOrder;
  DeathOrder.reserve(Records.size());
  for (uint32_t I = 0; I != Records.size(); ++I)
    if (Records[I].Death != trace::NeverDies &&
        Records[I].Death <= T.totalAllocated())
      DeathOrder.push_back(I);
  std::sort(DeathOrder.begin(), DeathOrder.end(),
            [&](uint32_t A, uint32_t B) {
              return Records[A].Death < Records[B].Death;
            });

  // Live pointer entries, indexed per endpoint for death processing, plus
  // per-source live lists for slot-reuse overwrites.
  std::vector<PointerEntry> Entries;
  std::vector<std::vector<uint32_t>> EntriesByObject(Records.size());
  std::vector<std::vector<uint32_t>> LiveBySource(Records.size());
  uint64_t LiveUnified = 0, LiveGenerational = 0;

  auto killEntry = [&](uint32_t EntryIndex) {
    PointerEntry &Entry = Entries[EntryIndex];
    if (!Entry.Alive)
      return;
    Entry.Alive = false;
    LiveUnified -= 1;
    if (Entry.InterGenerational)
      LiveGenerational -= 1;
  };

  auto killEntriesOf = [&](uint32_t ObjectIndex) {
    for (uint32_t EntryIndex : EntriesByObject[ObjectIndex])
      killEntry(EntryIndex);
    EntriesByObject[ObjectIndex].clear();
    LiveBySource[ObjectIndex].clear();
  };

  // Draws an endpoint by age: with probability YoungBias from the younger
  // half of the live population, else from the older half.
  auto pickEndpoint = [&]() -> uint32_t {
    uint64_t N = Alive.aliveCount();
    assert(N > 0);
    uint64_t Half = N / 2;
    uint64_t Rank;
    if (N == 1 || Half == 0)
      Rank = R.nextBelow(N);
    else if (R.nextDouble() < Model.YoungBias)
      Rank = Half + R.nextBelow(N - Half); // Younger half (higher ranks).
    else
      Rank = R.nextBelow(Half);
    return static_cast<uint32_t>(Alive.selectByRank(Rank));
  };

  double StoreBudget = 0.0;
  size_t DeathCursor = 0;
  for (uint32_t I = 0; I != Records.size(); ++I) {
    const AllocationRecord &NewObject = Records[I];
    // Apply deaths up to this birth.
    while (DeathCursor != DeathOrder.size() &&
           Records[DeathOrder[DeathCursor]].Death <= NewObject.Birth) {
      uint32_t Dead = DeathOrder[DeathCursor++];
      Alive.erase(Dead);
      killEntriesOf(Dead);
    }
    Alive.insert(I);

    // Synthesize this interval's stores.
    StoreBudget +=
        Model.StoresPerKB * static_cast<double>(NewObject.Size) / 1000.0;
    while (StoreBudget >= 1.0) {
      StoreBudget -= 1.0;
      uint32_t Source = pickEndpoint();
      uint32_t Target = pickEndpoint();
      Demand.TotalStores += 1;
      if (Records[Target].Birth <= Records[Source].Birth)
        continue; // Backward or self: never remembered.
      Demand.ForwardInTimeStores += 1;

      // Classic two-generation discipline: remember only if the source is
      // old-generation (older than the boundary age) and the target young.
      AllocClock Now = NewObject.Birth;
      bool SourceOld =
          Now - Records[Source].Birth > Model.GenerationAgeBytes;
      bool TargetYoung =
          Now - Records[Target].Birth <= Model.GenerationAgeBytes;
      bool InterGen = SourceOld && TargetYoung;
      if (InterGen)
        Demand.InterGenerationalStores += 1;

      // Slot reuse: a source already holding a full complement of live
      // outgoing pointers overwrites its oldest one.
      std::vector<uint32_t> &SourceLive = LiveBySource[Source];
      for (size_t K = 0; K != SourceLive.size();) {
        if (Entries[SourceLive[K]].Alive) {
          ++K;
          continue;
        }
        SourceLive[K] = SourceLive.back();
        SourceLive.pop_back();
      }
      if (SourceLive.size() >= Model.MaxPointerSlotsPerObject) {
        killEntry(SourceLive.front());
        SourceLive.erase(SourceLive.begin());
      }

      uint32_t EntryIndex = static_cast<uint32_t>(Entries.size());
      Entries.push_back({Source, Target, true, InterGen});
      EntriesByObject[Source].push_back(EntryIndex);
      EntriesByObject[Target].push_back(EntryIndex);
      SourceLive.push_back(EntryIndex);
      LiveUnified += 1;
      if (InterGen)
        LiveGenerational += 1;
      Demand.PeakUnifiedEntries =
          std::max(Demand.PeakUnifiedEntries, LiveUnified);
      Demand.PeakGenerationalEntries =
          std::max(Demand.PeakGenerationalEntries, LiveGenerational);
    }
  }
  return Demand;
}
