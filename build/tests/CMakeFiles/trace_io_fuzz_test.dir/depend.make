# Empty dependencies file for trace_io_fuzz_test.
# This may be replaced when dependencies are built.
