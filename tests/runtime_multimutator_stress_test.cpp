//===- tests/runtime_multimutator_stress_test.cpp -------------------------==//
//
// N real mutator threads against one heap: seeded per-thread op streams
// (allocate, link own objects, publish through cross-thread mailboxes,
// drop roots, poll safepoints) drive repeated trigger-scavenges while the
// main thread runs the full verifier battery at safepoints and steps one
// incremental cycle through the concurrent mutation. A chaos variant
// re-runs the mill under per-thread fault injectors. Mark-sweep only:
// raw Object* values shared through mailboxes rely on objects not moving.
//
// Replay a failure with DTB_TEST_SEED=<seed> (see tests/TestSeeds.h).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"
#include "runtime/Mutator.h"

#include "core/Policies.h"
#include "support/FaultInjector.h"
#include "support/Random.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace dtb;
using namespace dtb::runtime;

namespace {

constexpr unsigned NumThreads = 4;

struct StressOptions {
  uint64_t Seed = 0;
  uint64_t OpsPerThread = 2'500;
  bool Chaos = false;
  bool DriveIncrementalCycle = true;
};

/// One worker thread's mill: every heap touch goes through its own
/// MutatorContext, all object references are re-read from root slots (no
/// raw pointer outlives the op that fetched it, except mailbox objects,
/// which are immortal), and allocation+rooting is one counted-in op so a
/// concurrent trigger collection can never reclaim a newborn.
void workerMill(Heap &H, unsigned Index, const StressOptions &Options,
                std::array<std::atomic<Object *>, NumThreads> &Mailboxes,
                std::atomic<unsigned> &MailboxesReady,
                std::atomic<unsigned> &Finished) {
  std::unique_ptr<FaultInjector> Injector;
  std::unique_ptr<FaultInjectionScope> Faults;
  if (Options.Chaos) {
    // Injectors are thread-local by design; each worker runs its own
    // deterministic schedule.
    Injector = std::make_unique<FaultInjector>(Options.Seed * 31 + Index);
    Injector->setProbability(FaultSite::BarrierSink, 0.01);
    Injector->setProbability(FaultSite::Allocation, 0.002);
    Faults = std::make_unique<FaultInjectionScope>(*Injector);
  }

  MutatorContext Ctx(H);
  Rng Random(Options.Seed + Index);

  // The mailbox object is rooted forever, so its address is stable and
  // other threads may link into it at any time. Slot j of every mailbox
  // is written only by thread j — cross-thread stores race on the
  // barrier, never on a slot.
  size_t MailboxRoot = Ctx.allocateRooted(NumThreads, 0);
  Mailboxes[Index].store(Ctx.root(MailboxRoot), std::memory_order_release);
  MailboxesReady.fetch_add(1, std::memory_order_acq_rel);
  while (MailboxesReady.load(std::memory_order_acquire) != NumThreads)
    std::this_thread::yield();
  const size_t FirstChurnRoot = Ctx.numRoots();

  for (uint64_t Op = 0; Op != Options.OpsPerThread; ++Op) {
    uint32_t Slots = static_cast<uint32_t>(Random.nextBelow(3));
    uint32_t Raw = static_cast<uint32_t>(Random.nextBelow(64));
    size_t NewIdx = Ctx.allocateRooted(Slots, Raw);

    // Link two of our own rooted objects (forward or backward in time —
    // the barrier sorts it out).
    if (Ctx.numRoots() > FirstChurnRoot + 2 && Random.nextBelow(2) == 0) {
      size_t A = FirstChurnRoot + Random.nextBelow(Ctx.numRoots() -
                                                   FirstChurnRoot);
      Object *Source = Ctx.root(A);
      if (Source->numSlots() != 0)
        Ctx.writeSlot(Source,
                      static_cast<uint32_t>(
                          Random.nextBelow(Source->numSlots())),
                      Ctx.root(NewIdx));
    }

    // Publish our newborn into another thread's mailbox: a genuinely
    // cross-thread edge the barrier must remember.
    if (Op % 8 == Index) {
      Object *Mailbox =
          Mailboxes[Random.nextBelow(NumThreads)].load(
              std::memory_order_acquire);
      Ctx.writeSlot(Mailbox, Index, Ctx.root(NewIdx));
    }

    // Drop the churn tail now and then; whatever is still referenced from
    // a retained slot or a mailbox survives, the rest is garbage for the
    // next scavenge.
    if (Ctx.numRoots() > FirstChurnRoot + 48)
      Ctx.truncateRoots(FirstChurnRoot + 16);

    Ctx.safepoint();
  }

  // Hold the context (and therefore the mailbox root) alive until every
  // mill is done: a finished worker's context destruction would drop the
  // root that keeps its mailbox reachable while slower workers still
  // store into it. Spinning between ops counts as AtSafepoint, so the
  // collector never waits on a parked finisher.
  Finished.fetch_add(1, std::memory_order_acq_rel);
  while (Finished.load(std::memory_order_acquire) != NumThreads)
    std::this_thread::yield();
}

/// Runs the whole mill and returns the heap's scavenge count.
void runStress(const StressOptions &Options) {
  HeapConfig Config;
  Config.TriggerBytes = 96 * 1024;
  Config.Collector = CollectorKind::MarkSweep;
  Config.TraceThreads = 2;
  Config.ScavengeBudgetBytes = 8 * 1024;
  Heap H(Config);
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = 48 * 1024;
  PolicyConfig.MemMaxBytes = 512 * 1024;
  H.setPolicy(core::createPolicy("fixed4", PolicyConfig));

  // The collector side of the chaos schedule: handshake faults fire on
  // the thread that stops the world (this one).
  std::unique_ptr<FaultInjector> Injector;
  std::unique_ptr<FaultInjectionScope> Faults;
  if (Options.Chaos) {
    Injector = std::make_unique<FaultInjector>(Options.Seed * 17 + 1);
    Injector->setProbability(FaultSite::SafepointHandshake, 0.02);
    Faults = std::make_unique<FaultInjectionScope>(*Injector);
  }

  std::array<std::atomic<Object *>, NumThreads> Mailboxes{};
  std::atomic<unsigned> MailboxesReady{0};
  std::atomic<unsigned> Finished{0};
  std::vector<std::thread> Workers;
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back(workerMill, std::ref(H), I, std::cref(Options),
                         std::ref(Mailboxes), std::ref(MailboxesReady),
                         std::ref(Finished));

  auto verifyBattery = [&](const char *Where) {
    H.runAtSafepoint([&](Heap &Stopped) {
      VerifyResult Verified = verifyHeap(Stopped);
      EXPECT_TRUE(Verified.Ok)
          << Where << ": "
          << (Verified.Problems.empty() ? "" : Verified.Problems.front());
    });
  };

  while (MailboxesReady.load(std::memory_order_acquire) != NumThreads)
    std::this_thread::yield();

  // Verifier battery against live mutation.
  for (int Round = 0; Round != 8; ++Round) {
    verifyBattery("mid-run safepoint");
    std::this_thread::yield();
  }

  // One incremental cycle stepped through the concurrent mutation: every
  // quantum stops the world, drains the contexts' grey buffers, and
  // resumes. Workers terminate, so the grey backlog drains eventually.
  // (The chaos variant skips this: an injected allocation fault walks the
  // mid-cycle pressure rungs, which may legitimately close the cycle out
  // from under the stepping thread — that interaction is covered
  // deterministically by the fault-matrix test.)
  size_t ScavengesBefore = 0;
  if (Options.DriveIncrementalCycle) {
    H.runAtSafepoint([&](Heap &Stopped) {
      ScavengesBefore = Stopped.history().records().size();
    });
    H.beginIncrementalScavenge(H.now() / 2);
    while (!H.incrementalScavengeStep())
      verifyBattery("between incremental quanta");
    verifyBattery("after incremental cycle");
  }

  for (std::thread &Worker : Workers)
    Worker.join();

  // The scavenge floor: the mill must have driven at least two full
  // trigger-scavenges, plus the incremental cycle's record.
  EXPECT_GE(H.history().records().size(), 2u)
      << "mill too small to exercise repeated scavenges";
  if (Options.DriveIncrementalCycle) {
    EXPECT_FALSE(H.incrementalScavengeActive());
    EXPECT_GE(H.history().records().size(), ScavengesBefore + 1);
  }

  // With the contexts gone nothing roots the mill's objects: one full
  // collection must reclaim every object and return every TLAB byte.
  H.collectAtBoundary(0);
  VerifyResult Final = verifyHeap(H);
  EXPECT_TRUE(Final.Ok)
      << (Final.Problems.empty() ? "" : Final.Problems.front());
  EXPECT_EQ(H.residentObjects(), 0u);
  EXPECT_EQ(H.tlabBlockRanges().size(), 0u) << "TLAB bytes lost";
}

} // namespace

TEST(MultiMutatorStressTest, SeededMillSurvivesScavengesAndOneCycle) {
  StressOptions Options;
  Options.Seed = test::effectiveSeed(0xD7B);
  DTB_SCOPED_SEED_TRACE(Options.Seed);
  runStress(Options);
}

TEST(MultiMutatorStressTest, SecondSeedInterleavesDifferently) {
  StressOptions Options;
  Options.Seed = test::effectiveSeed(0xA110C);
  Options.OpsPerThread = 1'500;
  DTB_SCOPED_SEED_TRACE(Options.Seed);
  runStress(Options);
}

TEST(MultiMutatorChaosTest, FaultStormUnderConcurrentMutation) {
  StressOptions Options;
  Options.Seed = test::effectiveSeed(0xFA417);
  Options.OpsPerThread = 1'500;
  Options.Chaos = true;
  DTB_SCOPED_SEED_TRACE(Options.Seed);
  runStress(Options);
}
