file(REMOVE_RECURSE
  "../bench/table5_6_workloads"
  "../bench/table5_6_workloads.pdb"
  "CMakeFiles/table5_6_workloads.dir/table5_6_workloads.cpp.o"
  "CMakeFiles/table5_6_workloads.dir/table5_6_workloads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_6_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
