//===- sim/Trigger.h - When-to-collect policies ----------------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §4 of the paper separates *what* to collect (the threatening boundary)
/// from *when* to collect (the scavenge trigger) and answers only the
/// former, citing Wilson & Moher's opportunism for the latter. This
/// module makes the trigger a first-class policy so the two axes can be
/// studied independently (bench/ablation_trigger_policy):
///
///  * FixedBytesTrigger — the paper's evaluation setting: scavenge after
///    every N bytes of allocation.
///  * HeapGrowthTrigger — scavenge when residency exceeds a multiple of
///    the last survivor set (the classic Boehm/Go-style heap-growth
///    rule): collections speed up when garbage accumulates and slow down
///    when the heap is quiet.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_SIM_TRIGGER_H
#define DTB_SIM_TRIGGER_H

#include "core/AllocClock.h"

#include <cstdint>
#include <string>

namespace dtb {
namespace sim {

/// Everything a trigger policy may consult after an allocation.
struct TriggerContext {
  core::AllocClock Now = 0;
  /// Bytes allocated since the previous scavenge (or program start).
  uint64_t BytesSinceLastScavenge = 0;
  /// Current resident bytes (live + unreclaimed garbage).
  uint64_t ResidentBytes = 0;
  /// Survivor bytes of the previous scavenge (0 before the first).
  uint64_t LastSurvivedBytes = 0;
  uint64_t NumScavenges = 0;
};

/// Decides, after each allocation, whether to scavenge now.
class TriggerPolicy {
public:
  virtual ~TriggerPolicy();

  virtual std::string name() const = 0;
  virtual bool shouldScavenge(const TriggerContext &Context) = 0;
  virtual void reset() {}
};

/// The paper's trigger: every \p IntervalBytes of allocation.
class FixedBytesTrigger final : public TriggerPolicy {
public:
  explicit FixedBytesTrigger(uint64_t IntervalBytes);

  std::string name() const override;
  bool shouldScavenge(const TriggerContext &Context) override;

  uint64_t intervalBytes() const { return IntervalBytes; }

private:
  uint64_t IntervalBytes;
};

/// Heap-growth rule: scavenge when resident bytes reach
/// max(MinHeapBytes, GrowthFactor * LastSurvivedBytes). A minimum
/// inter-scavenge allocation spacing prevents degenerate back-to-back
/// collections when the survivor set barely shrinks.
class HeapGrowthTrigger final : public TriggerPolicy {
public:
  HeapGrowthTrigger(double GrowthFactor, uint64_t MinHeapBytes,
                    uint64_t MinSpacingBytes = 10'000);

  std::string name() const override;
  bool shouldScavenge(const TriggerContext &Context) override;

  double growthFactor() const { return GrowthFactor; }

private:
  double GrowthFactor;
  uint64_t MinHeapBytes;
  uint64_t MinSpacingBytes;
};

} // namespace sim
} // namespace dtb

#endif // DTB_SIM_TRIGGER_H
