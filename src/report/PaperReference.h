//===- report/PaperReference.h - Published table values --------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The values published in the paper's Tables 2, 3, and 4, embedded so the
/// benchmark binaries can print measured-vs-paper comparisons and
/// EXPERIMENTS.md can be generated mechanically. Absolute agreement is not
/// expected (our traces are calibrated synthetics, theirs were QPT
/// captures); the comparisons document that the *shape* holds.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_REPORT_PAPERREFERENCE_H
#define DTB_REPORT_PAPERREFERENCE_H

#include "support/Table.h"

#include <cstdint>
#include <optional>
#include <string>

namespace dtb {
namespace report {

/// One (collector, workload) cell of the published evaluation.
struct PaperCell {
  /// Table 2: mean / max memory in KB.
  double MemMeanKB = 0.0;
  double MemMaxKB = 0.0;
  /// Table 3: median / 90th-percentile pause in ms.
  double PauseMedianMs = 0.0;
  double Pause90Ms = 0.0;
  /// Table 4: total KB traced / CPU overhead %.
  double TracedKB = 0.0;
  double OverheadPercent = 0.0;
};

/// Looks up the published cell for \p Policy ("full", "fixed1", "fixed4",
/// "dtbmem", "feedmed", "dtbfm") on \p Workload ("ghost1", ...). Returns
/// std::nullopt for unknown pairs.
std::optional<PaperCell> paperCell(const std::string &Policy,
                                   const std::string &Workload);

/// Published No GC / LIVE rows of Table 2 (mean, max in KB).
struct PaperBaseline {
  double NoGcMeanKB = 0.0;
  double NoGcMaxKB = 0.0;
  double LiveMeanKB = 0.0;
  double LiveMaxKB = 0.0;
};
std::optional<PaperBaseline> paperBaseline(const std::string &Workload);

/// Renders the published Table 2 / 3 / 4 in the same layout as the
/// builders in Experiments.h (for side-by-side printing).
Table paperTable2();
Table paperTable3();
Table paperTable4();

} // namespace report
} // namespace dtb

#endif // DTB_REPORT_PAPERREFERENCE_H
