//===- tests/runtime_copying_test.cpp -------------------------------------==//
//
// Tests for the evacuating (copying) collector: relocation semantics,
// handle/root/remembered-set fix-ups, pinning, payload preservation, and
// byte-accounting equivalence with the mark-sweep strategy.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"

#include "core/Policies.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace dtb;
using namespace dtb::runtime;

namespace {

HeapConfig copyingConfig() {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Config.QuarantineFreedObjects = true;
  Config.Collector = CollectorKind::Copying;
  return Config;
}

} // namespace

TEST(CopyingTest, SurvivorsAreRelocated) {
  Heap H(copyingConfig());
  HandleScope Scope(H);
  Object *&Live = Scope.slot(H.allocate(0, 32));
  Object *Original = Live;
  H.allocate(0, 32); // Garbage.

  H.collectAtBoundary(0);
  EXPECT_NE(Live, Original);        // The handle was updated...
  EXPECT_TRUE(Live->isAlive());     // ...to a live copy...
  EXPECT_FALSE(Original->isAlive()); // ...and the original is released.
  EXPECT_EQ(H.lastCollectionStats().ObjectsMoved, 1u);
  EXPECT_EQ(H.residentObjects(), 1u);
}

TEST(CopyingTest, PayloadAndBirthTravelWithTheCopy) {
  Heap H(copyingConfig());
  HandleScope Scope(H);
  Object *&Live = Scope.slot(H.allocate(1, 16));
  std::memcpy(Live->rawData(), "threatening", 12);
  core::AllocClock Birth = Live->birth();
  uint32_t Gross = Live->grossBytes();

  H.collectAtBoundary(0);
  EXPECT_EQ(Live->birth(), Birth);
  EXPECT_EQ(Live->grossBytes(), Gross);
  EXPECT_EQ(Live->numSlots(), 1u);
  EXPECT_EQ(std::strcmp(static_cast<const char *>(Live->rawData()),
                        "threatening"),
            0);
}

TEST(CopyingTest, InteriorPointersAreFixedUp) {
  Heap H(copyingConfig());
  HandleScope Scope(H);
  Object *&Head = Scope.slot(H.allocate(1));
  Object *Tail = H.allocate(1, 8);
  H.writeSlot(Head, 0, Tail);
  std::memcpy(Tail->rawData(), "tail", 5);

  H.collectAtBoundary(0);
  ASSERT_NE(Head->slot(0), nullptr);
  ASSERT_NE(Head->slot(0), Tail); // Tail moved too.
  EXPECT_TRUE(Head->slot(0)->isAlive());
  EXPECT_EQ(std::strcmp(static_cast<const char *>(
                            Head->slot(0)->rawData()),
                        "tail"),
            0);
}

TEST(CopyingTest, CyclesSurviveRelocation) {
  Heap H(copyingConfig());
  HandleScope Scope(H);
  Object *&A = Scope.slot(H.allocate(1));
  Object *B = H.allocate(1);
  H.writeSlot(A, 0, B);
  H.writeSlot(B, 0, A);

  H.collectAtBoundary(0);
  Object *NewA = A;
  Object *NewB = NewA->slot(0);
  ASSERT_NE(NewB, nullptr);
  EXPECT_EQ(NewB->slot(0), NewA); // The cycle points at the copies.
  EXPECT_EQ(H.residentObjects(), 2u);
}

TEST(CopyingTest, ImmuneObjectsNeverMove) {
  Heap H(copyingConfig());
  HandleScope Scope(H);
  Object *&Old = Scope.slot(H.allocate(0, 16));
  Object *OldAddress = Old;
  core::AllocClock Boundary = H.now();
  Scope.slot(H.allocate(0, 16)); // Young survivor.

  H.collectAtBoundary(Boundary);
  EXPECT_EQ(Old, OldAddress);
  EXPECT_TRUE(Old->isAlive());
}

TEST(CopyingTest, RememberedSlotInImmuneSourceIsRewritten) {
  Heap H(copyingConfig());
  HandleScope Scope(H);
  Object *&Old = Scope.slot(H.allocate(1));
  core::AllocClock Boundary = H.now();
  Object *Young = H.allocate(0, 8);
  std::memcpy(Young->rawData(), "young", 6);
  H.writeSlot(Old, 0, Young);

  H.collectAtBoundary(Boundary);
  Object *Moved = Old->slot(0);
  ASSERT_NE(Moved, nullptr);
  EXPECT_NE(Moved, Young);
  EXPECT_TRUE(Moved->isAlive());
  EXPECT_EQ(std::strcmp(static_cast<const char *>(Moved->rawData()),
                        "young"),
            0);
  // The entry survived the move: a later full collection must still see
  // the forward-in-time pointer (verifier checks completeness).
  EXPECT_TRUE(verifyHeap(H).Ok);
}

TEST(CopyingTest, RememberedSetRekeyedWhenSourceMoves) {
  Heap H(copyingConfig());
  HandleScope Scope(H);
  Object *&Source = Scope.slot(H.allocate(1));
  Object *&Target = Scope.slot(H.allocate(0));
  H.writeSlot(Source, 0, Target); // Forward-in-time, both threatened.
  ASSERT_EQ(H.rememberedSet().size(), 1u);

  H.collectAtBoundary(0); // Both move.
  EXPECT_EQ(H.rememberedSet().size(), 1u);
  EXPECT_TRUE(H.rememberedSet().contains(Source, 0));
  EXPECT_TRUE(verifyHeap(H).Ok);
}

TEST(CopyingTest, PinnedObjectsDoNotMove) {
  Heap H(copyingConfig());
  HandleScope Scope(H);
  Object *&Keep = Scope.slot(H.allocate(1, 8));
  Object *PinnedAddress = Keep;
  H.pinObject(Keep);

  H.collectAtBoundary(0);
  EXPECT_EQ(Keep, PinnedAddress); // Same address: traced in place.
  EXPECT_TRUE(Keep->isAlive());
  EXPECT_EQ(H.lastCollectionStats().ObjectsMoved, 0u);
}

TEST(CopyingTest, PinnedReferentsAreStillRelocated) {
  Heap H(copyingConfig());
  Object *Pinned = H.allocate(1);
  H.pinObject(Pinned);
  Object *Child = H.allocate(0, 8);
  H.writeSlot(Pinned, 0, Child);

  H.collectAtBoundary(0);
  ASSERT_NE(Pinned->slot(0), nullptr);
  EXPECT_NE(Pinned->slot(0), Child); // Child moved; slot fixed up.
  EXPECT_TRUE(Pinned->slot(0)->isAlive());
}

TEST(CopyingTest, TenuredGarbageAndUntenuringWorkUnchanged) {
  Heap H(copyingConfig());
  Object *OldGarbage = H.allocate(0, 100);
  core::AllocClock Boundary = H.now();
  H.allocate(0, 100);

  H.collectAtBoundary(Boundary);
  EXPECT_TRUE(OldGarbage->isAlive()); // Immune: tenured garbage, in place.
  H.collectAtBoundary(0);
  EXPECT_FALSE(OldGarbage->isAlive()); // Untenured and reclaimed.
  EXPECT_EQ(H.residentObjects(), 0u);
}

TEST(CopyingTest, StaleRawPointerIsDetectableAfterMove) {
  // The mutator contract under a moving collector: raw pointers must not
  // be held across a collection. The quarantine canary catches it.
  Heap H(copyingConfig());
  HandleScope Scope(H);
  Object *&Handle = Scope.slot(H.allocate(0));
  Object *Stale = Handle;
  H.collectAtBoundary(0);
  EXPECT_FALSE(Stale->isAlive()); // Original released and poisoned.
  EXPECT_TRUE(Handle->isAlive()); // The handle sees the copy.
}

TEST(CopyingTest, AccountingMatchesMarkSweepExactly) {
  // Run the identical mutation script against both strategies: every
  // policy-visible number (traced, reclaimed, survived, boundaries) must
  // agree — the strategy is invisible to the policy layer.
  auto Script = [](Heap &H) {
    HandleScope Scope(H);
    Object *&List = Scope.slot(nullptr);
    Rng R(7);
    for (int I = 0; I != 400; ++I) {
      Object *Node = H.allocate(1, static_cast<uint32_t>(R.nextBelow(64)));
      if (R.nextBool(0.3)) {
        H.writeSlot(Node, 0, List);
        List = Node;
      }
      if (I % 100 == 99)
        H.collectAtBoundary(I % 200 == 199 ? 0 : H.now() / 2);
    }
    H.collectAtBoundary(0);
  };

  HeapConfig MsConfig;
  MsConfig.TriggerBytes = 0;
  MsConfig.Collector = CollectorKind::MarkSweep;
  Heap Ms(MsConfig);
  Script(Ms);

  HeapConfig CpConfig = MsConfig;
  CpConfig.Collector = CollectorKind::Copying;
  Heap Cp(CpConfig);
  Script(Cp);

  ASSERT_EQ(Ms.history().size(), Cp.history().size());
  for (uint64_t I = 1; I <= Ms.history().size(); ++I) {
    const core::ScavengeRecord &A = Ms.history().record(I);
    const core::ScavengeRecord &B = Cp.history().record(I);
    EXPECT_EQ(A.TracedBytes, B.TracedBytes) << I;
    EXPECT_EQ(A.ReclaimedBytes, B.ReclaimedBytes) << I;
    EXPECT_EQ(A.SurvivedBytes, B.SurvivedBytes) << I;
    EXPECT_EQ(A.MemBeforeBytes, B.MemBeforeBytes) << I;
  }
  EXPECT_EQ(Ms.residentBytes(), Cp.residentBytes());
}

TEST(CopyingTest, VerifierPassesAfterRepeatedCopies) {
  Heap H(copyingConfig());
  HandleScope Scope(H);
  Object *&Root = Scope.slot(H.allocate(4));
  for (int Round = 0; Round != 10; ++Round) {
    for (int I = 0; I != 4; ++I) {
      Object *Child = H.allocate(1, 16);
      H.writeSlot(Root, static_cast<uint32_t>(I), Child);
      H.allocate(0, 24); // Garbage.
    }
    H.collectAtBoundary(Round % 3 == 0 ? 0 : H.now() / 2);
    VerifyResult Result = verifyHeap(H);
    ASSERT_TRUE(Result.Ok) << Result.Problems.front();
  }
}

//===----------------------------------------------------------------------===//
// Property test: random mutator under the copying collector
//===----------------------------------------------------------------------===//

namespace {
class CopyingPropertyTest : public testing::TestWithParam<uint64_t> {};
} // namespace

TEST_P(CopyingPropertyTest, RandomGraphsStaySoundUnderEvacuation) {
  HeapConfig Config = copyingConfig();
  Config.TriggerBytes = 8'192;
  Heap H(Config);
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = 2'000;
  H.setPolicy(core::createPolicy("dtbfm", PolicyConfig));

  HandleScope Scope(H);
  // Handle-slot references are the only stable names under a moving
  // collector; the mutator works exclusively through them.
  std::vector<Object **> Roots;
  Rng R(GetParam());
  for (int Step = 0; Step != 2'000; ++Step) {
    double Action = R.nextDouble();
    if (Action < 0.6 || Roots.empty()) {
      Object *O =
          H.allocate(static_cast<uint32_t>(R.nextBelow(3)),
                     static_cast<uint32_t>(R.nextBelow(96)));
      if (R.nextBool(0.4))
        Roots.push_back(&Scope.slot(O));
    } else if (Action < 0.85) {
      Object *A = *Roots[R.nextBelow(Roots.size())];
      Object *B = *Roots[R.nextBelow(Roots.size())];
      if (A && B && A->numSlots() > 0)
        H.writeSlot(A, static_cast<uint32_t>(R.nextBelow(A->numSlots())),
                    B);
    } else {
      size_t Index = R.nextBelow(Roots.size());
      *Roots[Index] = nullptr;
      Roots[Index] = Roots.back();
      Roots.pop_back();
    }
  }
  EXPECT_GT(H.history().size(), 0u);
  VerifyResult Result = verifyHeap(H);
  EXPECT_TRUE(Result.Ok) << Result.Problems.front();
  H.collectAtBoundary(0);
  EXPECT_EQ(H.residentBytes(), reachableBytes(H));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CopyingPropertyTest,
                         testing::Values(11ull, 22ull, 33ull, 44ull));
