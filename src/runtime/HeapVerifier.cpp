//===- runtime/HeapVerifier.cpp -------------------------------------------==//

#include "runtime/HeapVerifier.h"

#include "runtime/Heap.h"
#include "runtime/Mutator.h"

#include <cstdio>
#include <unordered_set>
#include <vector>

using namespace dtb;
using namespace dtb::runtime;

namespace {

std::string describeObject(const Object *O) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "object %p (birth %llu)",
                static_cast<const void *>(O),
                static_cast<unsigned long long>(O->birth()));
  return Buffer;
}

/// Collects the reachable set by breadth-first traversal from every root.
/// Traversal only follows slots of objects whose canary is intact, so a
/// corrupted heap cannot take the verifier down with it.
std::unordered_set<const Object *> computeReachable(const Heap &H,
                                                    VerifyResult *Result) {
  std::unordered_set<const Object *> Reachable;
  std::vector<const Object *> Worklist;

  auto visitRoot = [&](const Object *O, const char *Kind) {
    if (!O)
      return;
    if (!O->isAlive()) {
      if (Result)
        Result->fail(std::string("root (") + Kind + ") points at " +
                     describeObject(O) + " whose canary is dead");
      return;
    }
    if (Reachable.insert(O).second)
      Worklist.push_back(O);
  };

  for (Object *const *Root : H.globalRoots())
    visitRoot(*Root, "global");
  for (const Object *Handle : H.handleSlots())
    visitRoot(Handle, "handle");
  for (const Object *PinnedObject : H.pinnedObjects())
    visitRoot(PinnedObject, "pinned");
  // Per-context root slots. The verifier runs at safepoints (e.g. inside
  // Heap::runAtSafepoint), where pending allocations are already
  // published and barrier buffers flushed, so contexts contribute only
  // their roots here.
  for (const MutatorContext *Ctx : H.mutatorContexts())
    for (const Object *Root : Ctx->roots())
      visitRoot(Root, "mutator-context");

  while (!Worklist.empty()) {
    const Object *O = Worklist.back();
    Worklist.pop_back();
    for (uint32_t I = 0, E = O->numSlots(); I != E; ++I) {
      const Object *Target = O->slot(I);
      if (!Target)
        continue;
      if (!Target->isAlive()) {
        if (Result)
          Result->fail(describeObject(O) + " slot " + std::to_string(I) +
                       " points at reclaimed memory (use-after-free)");
        continue;
      }
      if (Reachable.insert(Target).second)
        Worklist.push_back(Target);
    }
  }
  return Reachable;
}

} // namespace

VerifyResult dtb::runtime::verifyHeap(const Heap &H) {
  VerifyResult Result;

  // Structural checks over the allocation list. Trace-flag hygiene rides
  // along: mark/claim bits are collection-internal, so outside an open
  // incremental cycle none may linger (an aborted cycle must scrub every
  // flag it set), and during one only the cycle's threatened non-black
  // window may carry the mark.
  IncrementalCycleInfo Cycle = H.incrementalCycleInfo();
  std::unordered_set<const Object *> Resident;
  core::AllocClock PrevBirth = 0;
  uint64_t ByteTotal = 0;
  for (const Object *O : H.objects()) {
    if (!O->isAlive())
      Result.fail(describeObject(O) + " is resident but its canary is dead");
    if (O->birth() <= PrevBirth)
      Result.fail("allocation list is not strictly birth-ordered at " +
                  describeObject(O));
    if (O->birth() > H.now())
      Result.fail(describeObject(O) + " was born after the current clock");
    if (O->traceFlags() != 0) {
      if (!Cycle.Active)
        Result.fail(describeObject(O) +
                    " carries a stale trace flag outside a collection");
      else if ((O->traceFlags() & Object::FlagClaimed) != 0)
        Result.fail(describeObject(O) +
                    " carries the claim flag during a mark-sweep cycle");
      else if (O->birth() <= Cycle.Boundary || O->birth() > Cycle.BlackClock)
        Result.fail(describeObject(O) +
                    " is marked but lies outside the open cycle's "
                    "threatened window");
    }
    PrevBirth = O->birth();
    ByteTotal += O->grossBytes();
    Resident.insert(O);
  }
  if (ByteTotal != H.residentBytes())
    Result.fail("resident byte accounting is inconsistent: counted " +
                std::to_string(ByteTotal) + ", heap says " +
                std::to_string(H.residentBytes()));

  // Safety: every reachable object must be resident (and alive).
  std::unordered_set<const Object *> Reachable =
      computeReachable(H, &Result);
  for (const Object *O : Reachable)
    if (!Resident.count(O))
      Result.fail(describeObject(O) +
                  " is reachable but not in the allocation list");

  // Write-barrier completeness: every forward-in-time pointer between
  // resident objects must be remembered, or a future boundary between the
  // two birth times would let the collector miss it. Suspended while the
  // heap is in the remembered-set-pessimized state: the set was knowingly
  // dropped (overflow or injected fault), the next collection is forced to
  // a full trace, and the set is rebuilt there — so incompleteness is safe
  // by construction until then.
  const RememberedSet &RemSet = H.rememberedSet();
  if (!H.remSetPessimized()) {
    for (const Object *O : H.objects()) {
      if (!O->isAlive())
        continue;
      for (uint32_t I = 0, E = O->numSlots(); I != E; ++I) {
        const Object *Target = O->slot(I);
        if (!Target || !Target->isAlive())
          continue;
        if (Target->birth() > O->birth() && !RemSet.contains(O, I))
          Result.fail("missing remembered-set entry for forward-in-time "
                      "pointer from " +
                      describeObject(O) + " slot " + std::to_string(I));
      }
    }
  }

  // Remembered-set soundness: sources must be resident and alive, slots in
  // range. (Stale entries — overwritten slots — are legal; they are pruned
  // lazily at the next scavenge.)
  RemSet.forEach([&](const Object *Source, uint32_t SlotIndex) {
    if (!Resident.count(Source)) {
      Result.fail("remembered set names non-resident source " +
                  describeObject(Source));
      return;
    }
    if (SlotIndex >= Source->numSlots())
      Result.fail("remembered-set slot index out of range on " +
                  describeObject(Source));
  });

  // A failed verification is a postmortem moment: stamp it into the
  // always-on flight recorder and dump the retained tail (throttled), so
  // the events leading up to the corruption are on record even when the
  // full telemetry stack is compiled out.
  if (!Result.Ok) {
    H.flightRecorder().record(FlightEventKind::VerifierFailure, H.now(),
                              Result.Problems.size());
    H.flightRecorder().autoDump(H.flightDumpStream(), "verifier failure");
  }

  return Result;
}

uint64_t dtb::runtime::reachableBytes(const Heap &H) {
  uint64_t Bytes = 0;
  for (const Object *O : computeReachable(H, nullptr))
    Bytes += O->grossBytes();
  return Bytes;
}
