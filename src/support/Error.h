//===- support/Error.h - Fatal errors and unreachable markers --*- C++ -*-===//
//
// Part of the dtbgc project: a reproduction of Barrett & Zorn, "Garbage
// Collection Using a Dynamic Threatening Boundary" (PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal programmatic-error facilities for library code. The libraries do
/// not use exceptions; invariant violations abort with a message and
/// recoverable conditions are reported through return values.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_SUPPORT_ERROR_H
#define DTB_SUPPORT_ERROR_H

#include <string_view>

namespace dtb {

/// Prints \p Message to stderr and aborts. Used for unrecoverable usage or
/// environment errors in library code (never for conditions a caller could
/// reasonably handle).
[[noreturn]] void fatalError(std::string_view Message);

/// Marks a point in the code that must never be reached if program
/// invariants hold. Aborts with \p Message.
[[noreturn]] void unreachable(std::string_view Message);

/// Backs DTB_CHECK: reports a failed check with its location and aborts.
[[noreturn]] void checkFailed(const char *Condition, const char *Message,
                              const char *File, int Line);

} // namespace dtb

/// Always-on invariant check for memory-safety-critical conditions (a
/// dead-object store, a dangling weak reference, handle scopes popped out
/// of order). Unlike assert(), DTB_CHECK survives NDEBUG builds: these
/// checks are the last line of defense between a runtime bug and silent
/// heap corruption, so they stay compiled in at every optimization level.
#define DTB_CHECK(Condition, Message)                                          \
  do {                                                                         \
    if (!(Condition))                                                          \
      ::dtb::checkFailed(#Condition, Message, __FILE__, __LINE__);             \
  } while (false)

#endif // DTB_SUPPORT_ERROR_H
