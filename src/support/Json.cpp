//===- support/Json.cpp ---------------------------------------------------==//

#include "support/Json.h"

#include <cctype>
#include <cstdlib>

using namespace dtb;
using namespace dtb::json;

namespace dtb {
namespace json {

/// Recursive-descent parser over the whole input string.
class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  bool run(Value *Out, std::string *Error) {
    skipSpace();
    if (!value(Out))
      return fail(Error);
    skipSpace();
    if (Pos != Text.size()) {
      Message = "trailing characters after the top-level value";
      return fail(Error);
    }
    return true;
  }

private:
  bool fail(std::string *Error) const {
    if (Error)
      *Error = Message.empty()
                   ? "malformed JSON at offset " + std::to_string(Pos)
                   : Message + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = 0;
    while (Word[Len])
      ++Len;
    if (Text.compare(Pos, Len, Word) != 0) {
      Message = std::string("expected '") + Word + "'";
      return false;
    }
    Pos += Len;
    return true;
  }

  bool value(Value *Out) {
    if (Pos >= Text.size()) {
      Message = "unexpected end of input";
      return false;
    }
    switch (Text[Pos]) {
    case '{':
      return object(Out);
    case '[':
      return array(Out);
    case '"':
      Out->K = Value::Kind::String;
      return string(&Out->Str);
    case 't':
      Out->K = Value::Kind::Bool;
      Out->Flag = true;
      return literal("true");
    case 'f':
      Out->K = Value::Kind::Bool;
      Out->Flag = false;
      return literal("false");
    case 'n':
      Out->K = Value::Kind::Null;
      return literal("null");
    default:
      return number(Out);
    }
  }

  bool number(Value *Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    auto digits = [&] {
      size_t Before = Pos;
      while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(
                                      Text[Pos])))
        ++Pos;
      return Pos != Before;
    };
    if (!digits()) {
      Message = "expected a number";
      Pos = Start;
      return false;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (!digits()) {
        Message = "expected digits after the decimal point";
        return false;
      }
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!digits()) {
        Message = "expected exponent digits";
        return false;
      }
    }
    Out->K = Value::Kind::Number;
    Out->Str = Text.substr(Start, Pos - Start);
    Out->Num = std::strtod(Out->Str.c_str(), nullptr);
    return true;
  }

  bool string(std::string *Out) {
    if (!consume('"')) {
      Message = "expected '\"'";
      return false;
    }
    Out->clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        *Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        *Out += E;
        break;
      case 'b':
        *Out += '\b';
        break;
      case 'f':
        *Out += '\f';
        break;
      case 'n':
        *Out += '\n';
        break;
      case 'r':
        *Out += '\r';
        break;
      case 't':
        *Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size()) {
          Message = "truncated \\u escape";
          return false;
        }
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else {
            Message = "bad hex digit in \\u escape";
            return false;
          }
        }
        // The emitters only escape control characters; encode the code
        // point as UTF-8 (no surrogate-pair handling — none is produced).
        if (Code < 0x80) {
          *Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          *Out += static_cast<char>(0xC0 | (Code >> 6));
          *Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          *Out += static_cast<char>(0xE0 | (Code >> 12));
          *Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          *Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        Message = "unknown escape";
        return false;
      }
    }
    Message = "unterminated string";
    return false;
  }

  bool array(Value *Out) {
    consume('[');
    Out->K = Value::Kind::Array;
    skipSpace();
    if (consume(']'))
      return true;
    while (true) {
      Value Item;
      skipSpace();
      if (!value(&Item))
        return false;
      Out->Items.push_back(std::move(Item));
      skipSpace();
      if (consume(']'))
        return true;
      if (!consume(',')) {
        Message = "expected ',' or ']'";
        return false;
      }
    }
  }

  bool object(Value *Out) {
    consume('{');
    Out->K = Value::Kind::Object;
    skipSpace();
    if (consume('}'))
      return true;
    while (true) {
      skipSpace();
      std::string Key;
      if (!string(&Key))
        return false;
      skipSpace();
      if (!consume(':')) {
        Message = "expected ':'";
        return false;
      }
      Value Member;
      skipSpace();
      if (!value(&Member))
        return false;
      Out->Members.emplace_back(std::move(Key), std::move(Member));
      skipSpace();
      if (consume('}'))
        return true;
      if (!consume(',')) {
        Message = "expected ',' or '}'";
        return false;
      }
    }
  }

  const std::string &Text;
  size_t Pos = 0;
  std::string Message;
};

} // namespace json
} // namespace dtb

bool dtb::json::parse(const std::string &Text, Value *Out,
                      std::string *Error) {
  *Out = Value();
  return Parser(Text).run(Out, Error);
}
