//===- runtime/Safepoint.h - GC phase machine and rendezvous ---*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector/mutator handshake vocabulary for the multi-threaded
/// mutator runtime (runtime/Mutator.h): the heap-global *phase machine*
/// and the states a registered MutatorContext moves through.
///
/// Phase machine (per Heap, driven by whichever thread owns the stopped
/// world):
///
///           store buffered                   store -> sink directly
///   +----------------+   rendezvous   +------------+   trace done
///   | NOT_COLLECTING | -------------> | COLLECTING | -------------+
///   +----------------+                +------------+              |
///           ^                                                     v
///           |            world released              +-----------+
///           +------------------------------------- --| RESTORING |
///                                                    +-----------+
///                                                store -> sink directly
///
///  * NOT_COLLECTING — mutators run freely. Per-context write barriers
///    *buffer* forward-in-time stores locally (lock-free) and flush them
///    into the shared RememberedSet sink at capacity or at the next
///    safepoint, so the allocation/store fast paths take no lock.
///  * COLLECTING — the world is stopped (every context counted out or
///    parked) and the trace runs; any store issued now (by the collector
///    or a safepoint callback driving a context) goes to the sink
///    immediately, because the trace consumes the set in this phase.
///  * RESTORING — post-trace bookkeeping (sweep accounting, remembered-
///    set rebuild, publication); stores still go straight to the sink.
///
/// Count-in / count-out: a context *counts in* (enters the Mutating
/// state) at every heap-API call and *counts out* (back to AtSafepoint)
/// when the call returns, so between calls a context is always at a
/// safepoint. A rendezvous therefore waits only on contexts that are
/// mid-operation; long-running mutator loops should still poll
/// MutatorContext::safepoint() so a count-in blocked on an open
/// rendezvous is reached promptly.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_RUNTIME_SAFEPOINT_H
#define DTB_RUNTIME_SAFEPOINT_H

#include "support/Statistics.h"
#include "telemetry/Telemetry.h"

#include <cstdint>

namespace dtb {
namespace runtime {

/// The heap-global collection phase (see the file comment's diagram).
enum class GcPhase : uint8_t {
  NotCollecting,
  Collecting,
  Restoring,
};

/// Stable lowercase identifier ("not-collecting", "collecting",
/// "restoring").
inline const char *gcPhaseName(GcPhase Phase) {
  switch (Phase) {
  case GcPhase::NotCollecting:
    return "not-collecting";
  case GcPhase::Collecting:
    return "collecting";
  case GcPhase::Restoring:
    return "restoring";
  }
  return "unknown";
}

/// Where a registered MutatorContext stands relative to the rendezvous
/// protocol.
enum class MutatorState : uint8_t {
  /// Inside a heap-API call (counted in); a rendezvous must wait for the
  /// call to finish.
  Mutating,
  /// Between calls (counted out); the collector never waits on it.
  AtSafepoint,
  /// Explicitly parked (MutatorContext::park): like AtSafepoint, but the
  /// context promises not to count in until unpark(), which blocks while
  /// a rendezvous is open.
  Parked,
};

/// Stable lowercase identifier ("mutating", "at-safepoint", "parked").
inline const char *mutatorStateName(MutatorState State) {
  switch (State) {
  case MutatorState::Mutating:
    return "mutating";
  case MutatorState::AtSafepoint:
    return "at-safepoint";
  case MutatorState::Parked:
    return "parked";
  }
  return "unknown";
}

/// How the last context to arrive at a rendezvous was found. "Mid-op"
/// means the collector observed it Mutating at least once while waiting;
/// "parked"/"polling" contexts were already counted out when first
/// scanned (Parked vs. AtSafepoint respectively).
enum class StragglerKind : uint8_t {
  /// No contexts were registered (record is empty).
  None,
  /// Counted out between calls (or blocked at a safepoint poll).
  Polling,
  /// Explicitly parked.
  Parked,
  /// Observed inside a heap op; the rendezvous waited for its count-out.
  MidOp,
};

inline const char *stragglerKindName(StragglerKind Kind) {
  switch (Kind) {
  case StragglerKind::None:
    return "none";
  case StragglerKind::Polling:
    return "polling";
  case StragglerKind::Parked:
    return "parked";
  case StragglerKind::MidOp:
    return "mid-op";
  }
  return "unknown";
}

/// Snapshot of the most recent safepoint rendezvous, kept by the heap for
/// the GC log's safepoint line, HeapDump, and tests (always compiled;
/// updating it is O(1) per rendezvous on top of the publication work the
/// rendezvous does anyway).
///
/// The deterministic time-to-safepoint (TtspMillis) is the machine-model
/// cost (core::MachineModel::pauseMillisForTracedBytes) of the pending
/// allocation bytes the rendezvous drained: the work mutators accumulated
/// since the last safepoint is exactly what the stop had to wait behind,
/// so it replays bit-identically across thread counts and platforms. The
/// *wall* latency of the same rendezvous stays quarantined in the
/// `wall.runtime.safepoint_rendezvous_ns` telemetry channel.
struct SafepointRendezvousRecord {
  /// Rendezvous serial (== MutatorRuntimeStats::SafepointRendezvous).
  uint64_t Serial = 0;
  /// Allocation clock when the world stopped.
  uint64_t Time = 0;
  /// Contexts that arrived.
  uint64_t Contexts = 0;
  /// Pending allocations published by this rendezvous.
  uint64_t PendingAllocObjects = 0;
  /// Gross bytes of those pending allocations (the TTSP input).
  uint64_t PendingAllocBytes = 0;
  /// Barrier-buffer entries flushed into the remembered set.
  uint64_t FlushedBarrierEntries = 0;
  /// Deterministic time-to-safepoint (see above).
  double TtspMillis = 0.0;
  /// Context id (MutatorContext::id) of the last arriver.
  uint64_t StragglerContext = 0;
  /// How that straggler was found.
  StragglerKind Straggler = StragglerKind::None;
};

/// Cumulative deterministic TTSP attribution, snapshot via
/// Heap::safepointTtspStats(). Compiled to an empty type (and never
/// updated) under -DDTB_ENABLE_TELEMETRY=OFF; unlike the telemetry
/// registry it accumulates whenever it is compiled in — like
/// ScavengeHistory — so the bench driver can export exact percentiles
/// without enabling the event recorder.
struct SafepointTtspStats {
#if DTB_TELEMETRY
  /// One deterministic TTSP sample per rendezvous.
  SampleSet TtspMillis;
  /// One pending-allocation-bytes sample per rendezvous.
  SampleSet PendingBytes;
  /// Straggler classification tallies.
  uint64_t StragglerMidOp = 0;
  uint64_t StragglerParked = 0;
  uint64_t StragglerPolling = 0;
#endif
};

/// Per-context observability counters, the DTB_TELEMETRY-gated extension
/// of MutatorContext::Stats (embedded there as the `Obs` member).
/// Compiled to an empty type under -DDTB_ENABLE_TELEMETRY=OFF and every
/// update site is compiled out with it, so the OFF build's allocation and
/// store fast paths are exactly the pre-observability ones.
struct MutatorObservability {
#if DTB_TELEMETRY
  /// Gross bytes of every TLAB block this context carved.
  uint64_t TlabCarvedBytes = 0;
  /// Bytes discarded in this context's retired TLAB tails (carve
  /// granularity waste attributable to this context).
  uint64_t TlabWastedBytes = 0;
  /// Largest buffered barrier-entry count this context ever held (the
  /// occupancy high-water mark; the flush threshold bounds it).
  uint64_t BarrierHighWater = 0;
  /// Explicit safepoint() polls issued.
  uint64_t SafepointPolls = 0;
  /// park() / unpark() transitions.
  uint64_t Parks = 0;
  uint64_t Unparks = 0;
  /// Objects this context published into the heap's birth-ordered
  /// allocation list at safepoints.
  uint64_t PublishedObjects = 0;
#endif
};

/// Heap-level counters for the mutator runtime, snapshot via
/// Heap::mutatorStats(). Deterministic under single-threaded driving.
struct MutatorRuntimeStats {
  /// Rendezvous the heap completed (collections, safepoint callbacks).
  uint64_t SafepointRendezvous = 0;
  /// TLAB blocks carved from the refill lock.
  uint64_t TlabRefills = 0;
  /// Gross bytes of all blocks ever carved.
  uint64_t TlabCarvedBytes = 0;
  /// Bytes left unused in retired blocks (carve granularity waste).
  uint64_t TlabWastedBytes = 0;
  /// Blocks whose storage was returned to the OS (last object died after
  /// retirement; never in quarantine mode).
  uint64_t TlabBlocksFreed = 0;
  /// TLAB blocks currently resident (carved minus freed).
  uint64_t TlabBlocksResident = 0;
  /// Objects moved from per-context pending lists into the heap's
  /// birth-ordered allocation list at safepoints.
  uint64_t PublishedObjects = 0;
  /// Barrier-buffer flushes into the shared remembered-set sink.
  uint64_t BarrierFlushes = 0;
  /// Entries those flushes delivered.
  uint64_t BarrierFlushedEntries = 0;
};

} // namespace runtime
} // namespace dtb

#endif // DTB_RUNTIME_SAFEPOINT_H
