//===- tests/runtime_abort_test.cpp ---------------------------------------==//
//
// Abortable incremental cycles: an aborted cycle is observably equivalent
// to one that never started (records, stats, demographics, trace flags),
// aborting re-arms the suspended allocation trigger, Heap::collect()
// drains an open cycle first, mid-cycle allocation pressure walks the
// accelerate / complete-now / abort rungs, and the deterministic
// pause-deadline watchdog backs off the budget (and degrades to serial
// tracing) without changing a single exported record.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"

#include "core/MachineModel.h"
#include "core/Policies.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace dtb;
using namespace dtb::runtime;

namespace {

/// Same deterministic workload the incremental tests use: 40 handle-rooted
/// chains of depth 20 with interleaved garbage.
void buildWorkload(Heap &H, HandleScope &Scope) {
  for (int C = 0; C != 40; ++C) {
    Object *&Head = Scope.slot(nullptr);
    for (int D = 0; D != 20; ++D) {
      Object *N =
          H.allocate(1, static_cast<uint32_t>((C * 7 + D * 3) % 64));
      H.writeSlot(N, 0, Head);
      Head = N;
      H.allocate(0, 16); // Garbage.
    }
  }
}

void expectSameRecord(const core::ScavengeRecord &X,
                      const core::ScavengeRecord &Y) {
  EXPECT_EQ(X.Index, Y.Index);
  EXPECT_EQ(X.Time, Y.Time);
  EXPECT_EQ(X.Boundary, Y.Boundary);
  EXPECT_EQ(X.TracedBytes, Y.TracedBytes);
  EXPECT_EQ(X.MemBeforeBytes, Y.MemBeforeBytes);
  EXPECT_EQ(X.SurvivedBytes, Y.SurvivedBytes);
  EXPECT_EQ(X.ReclaimedBytes, Y.ReclaimedBytes);
}

void expectVerifies(Heap &H) {
  VerifyResult Verified = verifyHeap(H);
  EXPECT_TRUE(Verified.Ok) << (Verified.Problems.empty()
                                   ? ""
                                   : Verified.Problems.front());
}

HeapConfig manualConfig() {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Config.QuarantineFreedObjects = true;
  return Config;
}

uint64_t eventsOf(const Heap &H, DegradationKind Kind) {
  return H.degradationEventsOfKind(Kind);
}

} // namespace

TEST(AbortTest, AbortedCycleIsEquivalentToNeverStarting) {
  // Reference heap: the workload, one mid-run collection, one full one —
  // with no incremental cycle ever opened.
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 300;

  Heap R(Config);
  HandleScope RScope(R);
  buildWorkload(R, RScope);
  core::AllocClock Mid = R.now() / 2;
  std::vector<uint64_t> RefFreshEstimates =
      R.demographics().liveEstimatesSnapshot();
  core::ScavengeRecord RefMid = R.collectAtBoundary(Mid);
  std::vector<uint64_t> RefMidEstimates =
      R.demographics().liveEstimatesSnapshot();
  core::ScavengeRecord RefFull = R.collectAtBoundary(0);

  // Test heap: same workload, but an incremental cycle is opened, stepped
  // part-way, and aborted before each collection.
  Heap H(Config);
  HandleScope Scope(H);
  buildWorkload(H, Scope);
  ASSERT_EQ(H.now() / 2, Mid);

  uint64_t ResidentBefore = H.residentBytes();
  H.beginIncrementalScavenge(0);
  for (int Step = 0; Step != 3; ++Step)
    ASSERT_FALSE(H.incrementalScavengeStep());
  H.abortIncrementalScavenge();

  // The abort reclaimed nothing, appended no record, and left no flags.
  EXPECT_FALSE(H.incrementalScavengeActive());
  EXPECT_EQ(H.residentBytes(), ResidentBefore);
  EXPECT_EQ(H.history().size(), 0u);
  for (const Object *O : H.objects())
    ASSERT_EQ(O->traceFlags(), 0u);
  expectVerifies(H);

  // Demographics rolled back: the survivor-table estimates match a heap
  // that never opened the cycle.
  EXPECT_EQ(H.demographics().liveEstimatesSnapshot(), RefFreshEstimates);

  // And the collections that follow are bit-identical to the reference.
  expectSameRecord(RefMid, H.collectAtBoundary(Mid));
  EXPECT_EQ(H.demographics().liveEstimatesSnapshot(), RefMidEstimates);
  H.beginIncrementalScavenge(H.now() / 4);
  ASSERT_FALSE(H.incrementalScavengeStep());
  H.abortIncrementalScavenge();
  expectSameRecord(RefFull, H.collectAtBoundary(0));
  EXPECT_EQ(H.residentBytes(), R.residentBytes());
  EXPECT_EQ(H.demographics().liveEstimatesSnapshot(),
            R.demographics().liveEstimatesSnapshot());
  EXPECT_EQ(H.demographics().numEpochs(), R.demographics().numEpochs());
  expectVerifies(H);
}

TEST(AbortTest, AbortRestoresLastCollectionStats) {
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 250;
  Heap H(Config);
  HandleScope Scope(H);
  buildWorkload(H, Scope);

  H.collectAtBoundary(H.now() / 2);
  CollectionStats Before = H.lastCollectionStats();

  H.beginIncrementalScavenge(0);
  ASSERT_FALSE(H.incrementalScavengeStep());
  H.abortIncrementalScavenge();

  const CollectionStats &After = H.lastCollectionStats();
  EXPECT_EQ(Before.ObjectsReclaimed, After.ObjectsReclaimed);
  EXPECT_EQ(Before.ObjectsTraced, After.ObjectsTraced);
  EXPECT_EQ(Before.RememberedSetRoots, After.RememberedSetRoots);
  EXPECT_EQ(Before.TraceQuanta, After.TraceQuanta);
  EXPECT_EQ(Before.MaxQuantumTracedBytes, After.MaxQuantumTracedBytes);
  EXPECT_EQ(Before.WatchdogViolations, After.WatchdogViolations);
}

TEST(AbortTest, AbortRecordsCycleAbortedDegradation) {
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 200;
  Heap H(Config);
  HandleScope Scope(H);
  buildWorkload(H, Scope);

  H.beginIncrementalScavenge(0);
  ASSERT_FALSE(H.incrementalScavengeStep());
  H.abortIncrementalScavenge();

  EXPECT_EQ(H.totalDegradationEvents(), 1u);
  EXPECT_EQ(eventsOf(H, DegradationKind::CycleAborted), 1u);
  ASSERT_EQ(H.degradationLog().size(), 1u);
  const DegradationEvent &Event = H.degradationLog().back();
  EXPECT_EQ(Event.Kind, DegradationKind::CycleAborted);
  EXPECT_NE(Event.Detail.find("explicit abort"), std::string::npos)
      << Event.Detail;
}

TEST(AbortTest, AbortWithoutActiveCycleDies) {
  Heap H(manualConfig());
  EXPECT_DEATH(H.abortIncrementalScavenge(), "no incremental scavenge");
}

TEST(AbortTest, TriggerRearmsAfterAbort) {
  HeapConfig Config = manualConfig();
  Config.TriggerBytes = 5'000;
  Config.ScavengeBudgetBytes = 100;
  Heap H(Config);
  H.setPolicy(core::createPolicy("full", core::PolicyConfig()));
  HandleScope Scope(H);

  Object *&Root = Scope.slot(H.allocate(1, 0));
  H.writeSlot(Root, 0, H.allocate(0, 32));

  H.beginIncrementalScavenge(0);
  ASSERT_FALSE(H.incrementalScavengeStep());
  size_t Before = H.history().size();

  // Triggering is suspended while the cycle is open...
  for (int I = 0; I != 200; ++I)
    H.allocate(0, 64);
  EXPECT_EQ(H.history().size(), Before);

  // ...and live again as soon as the cycle is aborted.
  H.abortIncrementalScavenge();
  EXPECT_FALSE(H.incrementalScavengeActive());
  for (int I = 0; I != 200; ++I)
    H.allocate(0, 64);
  EXPECT_GT(H.history().size(), Before);
  expectVerifies(H);
}

TEST(AbortTest, PolicyCollectDrainsOpenCycleFirst) {
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 150;
  Heap H(Config);
  H.setPolicy(core::createPolicy("full", core::PolicyConfig()));
  HandleScope Scope(H);
  buildWorkload(H, Scope);

  H.beginIncrementalScavenge(0);
  ASSERT_FALSE(H.incrementalScavengeStep());

  // The policy-driven entry point must retire the in-flight cycle (its
  // own record) before running the collection it was asked for.
  H.collect();
  EXPECT_FALSE(H.incrementalScavengeActive());
  EXPECT_EQ(H.history().size(), 2u);
  expectVerifies(H);
}

TEST(AbortTest, MidCyclePressureAcceleratesOpenCycle) {
  // An unbounded budget means the accelerate rung's first quantum drains
  // the whole cycle — the cheapest rung alone relieves the pressure.
  HeapConfig Config = manualConfig();
  Config.HeapLimitBytes = 64 * 1024;
  Heap H(Config);
  HandleScope Scope(H);

  Object *&Root = Scope.slot(H.allocate(1, 0));
  H.writeSlot(Root, 0, H.allocate(0, 64));
  for (int I = 0; I != 300; ++I)
    H.allocate(0, 128); // Garbage the cycle will reclaim.

  H.beginIncrementalScavenge(0);
  ASSERT_TRUE(H.incrementalScavengeActive());

  uint64_t Pad = Config.HeapLimitBytes - H.residentBytes() + 1;
  Object *Big = H.tryAllocate(0, static_cast<uint32_t>(Pad));
  ASSERT_NE(Big, nullptr);

  EXPECT_FALSE(H.incrementalScavengeActive());
  EXPECT_EQ(eventsOf(H, DegradationKind::CycleAccelerated), 1u);
  EXPECT_EQ(eventsOf(H, DegradationKind::CycleAborted), 0u);
  EXPECT_EQ(eventsOf(H, DegradationKind::EmergencyFullCollection), 0u);
  EXPECT_EQ(H.history().size(), 1u);
  expectVerifies(H);
}

TEST(AbortTest, MidCyclePressureAbortsCycleWithDeepGrayBacklog) {
  // A tiny budget against a wide fan-out: four accelerate quanta cannot
  // drain the gray backlog, the backlog is too large for complete-now, so
  // the ladder aborts the cycle and the emergency full collection (always
  // admissible TB = 0) reclaims the garbage instead.
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 64;
  Config.HeapLimitBytes = 64 * 1024;
  Heap H(Config);
  HandleScope Scope(H);

  Object *&Hub = Scope.slot(H.allocate(220, 0));
  for (uint32_t I = 0; I != 220; ++I)
    H.writeSlot(Hub, I, H.allocate(0, 24));
  for (int I = 0; I != 160; ++I)
    H.allocate(0, 128); // Garbage only the full collection will reach.

  H.beginIncrementalScavenge(0);
  ASSERT_FALSE(H.incrementalScavengeStep());

  uint64_t Pad = Config.HeapLimitBytes - H.residentBytes() + 1;
  Object *Big = H.tryAllocate(0, static_cast<uint32_t>(Pad));
  ASSERT_NE(Big, nullptr);

  EXPECT_FALSE(H.incrementalScavengeActive());
  EXPECT_EQ(eventsOf(H, DegradationKind::CycleAccelerated), 1u);
  EXPECT_EQ(eventsOf(H, DegradationKind::CycleCompletedEarly), 0u);
  EXPECT_EQ(eventsOf(H, DegradationKind::CycleAborted), 1u);
  EXPECT_EQ(eventsOf(H, DegradationKind::EmergencyFullCollection), 1u);
  const std::deque<DegradationEvent> &Log = H.degradationLog();
  bool SawPressureAbort = false;
  for (const DegradationEvent &Event : Log)
    SawPressureAbort |=
        Event.Kind == DegradationKind::CycleAborted &&
        Event.Detail.find("mid-cycle allocation pressure") !=
            std::string::npos;
  EXPECT_TRUE(SawPressureAbort);
  expectVerifies(H);
}

TEST(WatchdogTest, ViolationsBackOffBudgetWithoutChangingRecords) {
  // Reference: budgeted collection, no deadline.
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 500;
  core::ScavengeRecord Reference;
  uint64_t ReferenceQuanta = 0;
  {
    Heap R(Config);
    HandleScope Scope(R);
    buildWorkload(R, Scope);
    Reference = R.collectAtBoundary(0);
    ReferenceQuanta = R.lastCollectionStats().TraceQuanta;
    EXPECT_EQ(R.lastCollectionStats().WatchdogViolations, 0u);
  }
  ASSERT_GT(ReferenceQuanta, 1u);

  // Watchdog heap: a deadline below any quantum's machine-model cost, so
  // every quantum violates and the budget keeps halving. Slicing changes;
  // the exported record must not.
  HeapConfig Strict = Config;
  Strict.QuantumDeadlineMillis =
      core::MachineModel().pauseMillisForTracedBytes(32);
  Heap W(Strict);
  HandleScope Scope(W);
  buildWorkload(W, Scope);
  expectSameRecord(Reference, W.collectAtBoundary(0));

  const CollectionStats &Stats = W.lastCollectionStats();
  EXPECT_GT(Stats.WatchdogViolations, 0u);
  EXPECT_GT(Stats.TraceQuanta, ReferenceQuanta);
  EXPECT_EQ(eventsOf(W, DegradationKind::WatchdogDeadline),
            Stats.WatchdogViolations);
  expectVerifies(W);
}

TEST(WatchdogTest, ConsecutiveViolationsDegradeToSerialTracing) {
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 500;
  Config.QuantumDeadlineMillis =
      core::MachineModel().pauseMillisForTracedBytes(32);
  Config.WatchdogMaxConsecutive = 3;
  Heap H(Config);
  HandleScope Scope(H);
  buildWorkload(H, Scope);

  H.beginIncrementalScavenge(0);
  ASSERT_FALSE(H.incrementalScavengeStep());
  IncrementalCycleInfo AfterOne = H.incrementalCycleInfo();
  EXPECT_EQ(AfterOne.WatchdogViolations, 1u);
  EXPECT_LT(AfterOne.BudgetBytes, 500u); // Halved by the backoff.
  EXPECT_FALSE(AfterOne.SerialDegraded);

  ASSERT_FALSE(H.incrementalScavengeStep());
  ASSERT_FALSE(H.incrementalScavengeStep());
  IncrementalCycleInfo AfterThree = H.incrementalCycleInfo();
  EXPECT_EQ(AfterThree.WatchdogViolations, 3u);
  EXPECT_TRUE(AfterThree.SerialDegraded);

  while (!H.incrementalScavengeStep()) {
  }
  EXPECT_FALSE(H.incrementalScavengeActive());
  bool SawSerial = false;
  for (const DegradationEvent &Event : H.degradationLog())
    SawSerial |= Event.Kind == DegradationKind::WatchdogDeadline &&
                 Event.Detail.find("serial") != std::string::npos;
  EXPECT_TRUE(SawSerial);
  expectVerifies(H);
}

TEST(WatchdogTest, GenerousDeadlineNeverFires) {
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 500;
  Config.QuantumDeadlineMillis = 1e6;
  Heap H(Config);
  HandleScope Scope(H);
  buildWorkload(H, Scope);
  H.collectAtBoundary(0);
  EXPECT_EQ(H.lastCollectionStats().WatchdogViolations, 0u);
  EXPECT_EQ(H.totalDegradationEvents(), 0u);
}

TEST(WatchdogTest, AbortResetsWatchdogState) {
  HeapConfig Config = manualConfig();
  Config.ScavengeBudgetBytes = 500;
  Config.QuantumDeadlineMillis =
      core::MachineModel().pauseMillisForTracedBytes(32);
  Heap H(Config);
  HandleScope Scope(H);
  buildWorkload(H, Scope);

  H.beginIncrementalScavenge(0);
  for (int Step = 0; Step != 3; ++Step)
    ASSERT_FALSE(H.incrementalScavengeStep());
  ASSERT_TRUE(H.incrementalCycleInfo().SerialDegraded);
  H.abortIncrementalScavenge();

  // A fresh cycle starts with a clean slate: full budget, no serial
  // degrade, zero violations.
  H.beginIncrementalScavenge(0);
  IncrementalCycleInfo Fresh = H.incrementalCycleInfo();
  EXPECT_EQ(Fresh.WatchdogViolations, 0u);
  EXPECT_FALSE(Fresh.SerialDegraded);
  EXPECT_EQ(Fresh.BudgetBytes, 500u);
  while (!H.incrementalScavengeStep()) {
  }
  expectVerifies(H);
}
