//===- telemetry/TelemetryCli.h - Bench/example CLI wiring -----*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard telemetry command line shared by every bench binary and
/// the simulate_trace example:
///
///   --telemetry-out <file|->      enable recording; export here on exit
///   --telemetry-format {trace,csv,table}   export format (default trace)
///   --telemetry-wallclock         include wall-clock metrics/tracks
///
/// Usage mirrors addThreadsOption: register the options, parse, then hold
/// a TelemetrySession for the rest of main() — its destructor sorts the
/// event buffer, writes the requested file, and disables the recorder, so
/// early returns still flush.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_TELEMETRY_TELEMETRYCLI_H
#define DTB_TELEMETRY_TELEMETRYCLI_H

#include <string>

namespace dtb {

class OptionParser;

namespace telemetry {

/// Parsed values of the standard telemetry options.
struct TelemetryOptions {
  std::string OutPath;            // Empty: telemetry stays disabled.
  std::string Format = "trace";   // trace | csv | table.
  bool WallClock = false;
};

/// Registers --telemetry-out, --telemetry-format, --telemetry-wallclock.
void addTelemetryOptions(OptionParser &Parser, TelemetryOptions *Options);

/// Enables the global recorder per \p Options for one scope and exports on
/// destruction ("-" writes to stdout). Inactive (and free) when OutPath is
/// empty or telemetry is compiled out.
class TelemetrySession {
public:
  explicit TelemetrySession(TelemetryOptions Options);
  ~TelemetrySession();

  TelemetrySession(const TelemetrySession &) = delete;
  TelemetrySession &operator=(const TelemetrySession &) = delete;

  bool active() const { return Active; }
  /// False when --telemetry-format named an unknown format (a diagnostic
  /// was printed; the caller should exit nonzero).
  bool valid() const { return Valid; }

private:
  TelemetryOptions Options;
  bool Active = false;
  bool Valid = true;
};

} // namespace telemetry
} // namespace dtb

#endif // DTB_TELEMETRY_TELEMETRYCLI_H
