file(REMOVE_RECURSE
  "libdtb_runtime.a"
)
