file(REMOVE_RECURSE
  "../bench/constraint_sweep"
  "../bench/constraint_sweep.pdb"
  "CMakeFiles/constraint_sweep.dir/constraint_sweep.cpp.o"
  "CMakeFiles/constraint_sweep.dir/constraint_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
