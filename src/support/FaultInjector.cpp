//===- support/FaultInjector.cpp ------------------------------------------==//

#include "support/FaultInjector.h"

#include "support/Error.h"

using namespace dtb;

const char *dtb::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::Allocation:
    return "allocation";
  case FaultSite::WriteBarrier:
    return "write-barrier";
  case FaultSite::RemSetInsert:
    return "remset-insert";
  case FaultSite::PolicyEvaluation:
    return "policy-evaluation";
  case FaultSite::TraceIO:
    return "trace-io";
  case FaultSite::ParallelTrace:
    return "parallel-trace";
  case FaultSite::IncrementalStep:
    return "incremental-step";
  case FaultSite::CycleAbort:
    return "cycle-abort";
  case FaultSite::WatchdogDeadline:
    return "watchdog-deadline";
  case FaultSite::BarrierSink:
    return "barrier-sink";
  case FaultSite::SafepointHandshake:
    return "safepoint-handshake";
  }
  unreachable("covered switch");
}

void FaultInjector::setProbability(FaultSite Site, double Probability) {
  if (Probability < 0.0)
    Probability = 0.0;
  if (Probability > 1.0)
    Probability = 1.0;
  state(Site).Probability = Probability;
}

void FaultInjector::armOneShot(FaultSite Site, uint64_t NthHit) {
  DTB_CHECK(NthHit != 0, "one-shot hit index is 1-based");
  state(Site).OneShotHit = state(Site).Hits + NthHit;
}

bool FaultInjector::shouldInject(FaultSite Site) {
  SiteState &S = state(Site);
  S.Hits += 1;
  bool Fire = false;
  if (S.OneShotHit != 0 && S.Hits == S.OneShotHit) {
    S.OneShotHit = 0;
    Fire = true;
  }
  // Consume randomness whenever a probability is configured, whether or
  // not the one-shot already fired, so arming a one-shot never perturbs
  // the probabilistic schedule.
  if (S.Probability > 0.0 && Random.nextBool(S.Probability))
    Fire = true;
  if (Fire)
    S.Injections += 1;
  return Fire;
}

uint64_t FaultInjector::totalInjections() const {
  uint64_t Total = 0;
  for (const SiteState &S : Sites)
    Total += S.Injections;
  return Total;
}

void FaultInjector::reset(uint64_t Seed) {
  Random = Rng(Seed);
  Sites = {};
}

namespace {
thread_local FaultInjector *CurrentInjector = nullptr;
} // namespace

FaultInjectionScope::FaultInjectionScope(FaultInjector &Injector)
    : Previous(CurrentInjector) {
  CurrentInjector = &Injector;
}

FaultInjectionScope::~FaultInjectionScope() { CurrentInjector = Previous; }

FaultInjector *FaultInjectionScope::current() { return CurrentInjector; }

bool dtb::faultRequestedAt(FaultSite Site) {
  FaultInjector *Injector = CurrentInjector;
  return Injector && Injector->shouldInject(Site);
}
