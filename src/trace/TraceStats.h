//===- trace/TraceStats.h - Trace statistics (Tables 5/6) ------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the allocation-behaviour statistics the paper reports for its
/// test programs (Tables 5 and 6) plus the LIVE and No-GC rows of Table 2:
/// total allocation, object counts/sizes, the live-byte profile over the
/// allocation clock, and the lifetime distribution.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_TRACE_TRACESTATS_H
#define DTB_TRACE_TRACESTATS_H

#include "trace/Trace.h"

#include <cstdint>
#include <vector>

namespace dtb {
namespace trace {

/// Summary statistics for one trace.
struct TraceStats {
  uint64_t NumObjects = 0;
  uint64_t TotalAllocatedBytes = 0;
  double MeanObjectSize = 0.0;
  uint32_t MaxObjectSize = 0;

  /// Time-weighted mean and maximum of live bytes over the allocation
  /// clock (the paper's LIVE row).
  double LiveMeanBytes = 0.0;
  uint64_t LiveMaxBytes = 0;
  /// Live bytes at the very end of the trace (immortal data).
  uint64_t LiveAtEndBytes = 0;

  /// Time-weighted mean of cumulative allocation (the paper's "No GC" row;
  /// its maximum is TotalAllocatedBytes).
  double NoGcMeanBytes = 0.0;

  /// Fraction of allocated bytes with lifetime below thresholds; index i
  /// corresponds to LifetimeThresholds[i].
  std::vector<double> LifetimeCdf;

  /// The thresholds (in allocated bytes) used for LifetimeCdf.
  static const std::vector<uint64_t> &lifetimeThresholds();
};

/// Computes statistics for \p T in O(n log n).
TraceStats computeTraceStats(const Trace &T);

/// Samples the live-bytes profile at \p NumPoints evenly spaced clock
/// values (for figure generation). Point i is the live bytes at clock
/// (i+1) * total/NumPoints.
std::vector<uint64_t> sampleLiveProfile(const Trace &T, size_t NumPoints);

/// Oracle live bytes at each clock in \p Clocks (objects with
/// Birth <= C < Death, deaths past the end of the trace counting as
/// immortal — the same convention as computeTraceStats). \p Clocks must be
/// non-decreasing. One chronological sweep: O(n log n + |Clocks|). The
/// bench driver subtracts this from per-scavenge resident bytes to get the
/// collector's memory overshoot (floating-garbage) profile.
std::vector<uint64_t> liveBytesAt(const Trace &T,
                                  const std::vector<AllocClock> &Clocks);

} // namespace trace
} // namespace dtb

#endif // DTB_TRACE_TRACESTATS_H
