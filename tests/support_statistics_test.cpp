//===- tests/support_statistics_test.cpp ----------------------------------==//
//
// Unit tests for support/Statistics.h: streaming stats, time-weighted
// integration (the paper's mean-memory metric), exact percentiles, and the
// fixed-width histogram.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace dtb;

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.min(), 0.0);
  EXPECT_EQ(S.max(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats S;
  S.add(42.0);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_DOUBLE_EQ(S.mean(), 42.0);
  EXPECT_DOUBLE_EQ(S.min(), 42.0);
  EXPECT_DOUBLE_EQ(S.max(), 42.0);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.variance(), 4.0); // Classic textbook data set.
  EXPECT_DOUBLE_EQ(S.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats S;
  S.add(-3.0);
  S.add(3.0);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), -3.0);
  EXPECT_DOUBLE_EQ(S.max(), 3.0);
}

TEST(TimeWeightedStatsTest, ConstantSignal) {
  TimeWeightedStats S;
  S.setLevel(0, 5.0);
  S.finish(100);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.max(), 5.0);
  EXPECT_EQ(S.elapsed(), 100u);
}

TEST(TimeWeightedStatsTest, StepSignalWeightsByDuration) {
  TimeWeightedStats S;
  S.setLevel(0, 10.0); // 10 for 90 ticks.
  S.setLevel(90, 100.0); // 100 for 10 ticks.
  S.finish(100);
  EXPECT_DOUBLE_EQ(S.mean(), (10.0 * 90 + 100.0 * 10) / 100.0);
  EXPECT_DOUBLE_EQ(S.max(), 100.0);
}

TEST(TimeWeightedStatsTest, ZeroDurationSpikeAffectsOnlyMax) {
  TimeWeightedStats S;
  S.setLevel(0, 1.0);
  S.setLevel(50, 999.0); // Spike...
  S.setLevel(50, 1.0);   // ...dropped at the same instant.
  S.finish(100);
  EXPECT_DOUBLE_EQ(S.mean(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 999.0);
}

TEST(TimeWeightedStatsTest, NoElapsedTimeMeansZeroMean) {
  TimeWeightedStats S;
  S.setLevel(7, 3.0);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.max(), 3.0);
}

TEST(SampleSetTest, MedianOfOddCount) {
  SampleSet S;
  for (double X : {5.0, 1.0, 3.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.median(), 3.0);
}

TEST(SampleSetTest, NearestRankMedianOfEvenCount) {
  SampleSet S;
  for (double X : {1.0, 2.0, 3.0, 4.0})
    S.add(X);
  // Nearest-rank: ceil(0.5 * 4) = 2nd smallest.
  EXPECT_DOUBLE_EQ(S.median(), 2.0);
}

TEST(SampleSetTest, Percentile90) {
  SampleSet S;
  for (int I = 1; I <= 10; ++I)
    S.add(static_cast<double>(I));
  EXPECT_DOUBLE_EQ(S.percentile90(), 9.0);
  EXPECT_DOUBLE_EQ(S.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(S.quantile(0.0), 1.0);
}

TEST(SampleSetTest, EmptyQuantileIsZero) {
  SampleSet S;
  EXPECT_DOUBLE_EQ(S.median(), 0.0);
  EXPECT_DOUBLE_EQ(S.sum(), 0.0);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.maxValue(), 0.0);
}

TEST(SampleSetTest, SumMeanMax) {
  SampleSet S;
  for (double X : {2.0, 4.0, 6.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.sum(), 12.0);
  EXPECT_DOUBLE_EQ(S.mean(), 4.0);
  EXPECT_DOUBLE_EQ(S.maxValue(), 6.0);
}

TEST(SampleSetTest, SingleSampleExtremeQuantilesClamp) {
  // One sample: every quantile is that sample. ceil(0*1) would be rank 0;
  // the rank clamp into [1, size()] keeps p0 (and a rounding error past
  // 1.0) in range.
  SampleSet S;
  S.add(42.0);
  EXPECT_DOUBLE_EQ(S.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(S.median(), 42.0);
  EXPECT_DOUBLE_EQ(S.quantile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(S.quantile(1.0000000001), 42.0);
  EXPECT_DOUBLE_EQ(S.quantile(-0.5), 42.0);
}

TEST(SampleSetTest, MedianAbsoluteDeviation) {
  // MAD of {1, 2, 3, 10}: nearest-rank median is 2, deviations {1, 0, 1, 8}
  // have median 1. The 10 outlier moves the stddev a lot and the MAD not
  // at all — which is why the bench comparator's noise floor uses it.
  SampleSet S;
  for (double X : {3.0, 1.0, 2.0, 10.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mad(), 1.0);
}

TEST(SampleSetTest, MadOfConstantSamplesIsZero) {
  SampleSet S;
  for (int I = 0; I != 5; ++I)
    S.add(7.5);
  EXPECT_DOUBLE_EQ(S.mad(), 0.0);

  SampleSet Single;
  Single.add(3.0);
  EXPECT_DOUBLE_EQ(Single.mad(), 0.0);

  SampleSet Empty;
  EXPECT_DOUBLE_EQ(Empty.mad(), 0.0);
}

TEST(HistogramTest, BucketsAndSaturation) {
  Histogram H(0.0, 10.0, 5);
  H.add(0.5);   // Bucket 0.
  H.add(3.0);   // Bucket 1.
  H.add(9.99);  // Bucket 4.
  H.add(-5.0);  // Below range -> bucket 0.
  H.add(100.0); // Above range -> bucket 4.
  EXPECT_EQ(H.totalCount(), 5u);
  EXPECT_EQ(H.bucketValue(0), 2u);
  EXPECT_EQ(H.bucketValue(1), 1u);
  EXPECT_EQ(H.bucketValue(2), 0u);
  EXPECT_EQ(H.bucketValue(4), 2u);
  EXPECT_DOUBLE_EQ(H.bucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(H.bucketLow(4), 8.0);
}

TEST(LogBucketingTest, GeometryRoundTrips) {
  LogBucketing B(1.0, 8, 48);
  // Every bucket's bounds contain its own midpoint, and bucketFor maps the
  // midpoint back to the bucket (the top saturating bucket aside).
  for (size_t I = 0; I + 1 < B.numBuckets(); ++I) {
    double Lo = B.bucketLow(I);
    double Hi = B.bucketHigh(I);
    double Mid = B.bucketMid(I);
    EXPECT_LT(Lo, Hi) << "bucket " << I;
    EXPECT_LE(Lo, Mid) << "bucket " << I;
    EXPECT_LT(Mid, Hi) << "bucket " << I;
    EXPECT_EQ(B.bucketFor(Mid), I) << "bucket " << I;
    EXPECT_EQ(B.bucketFor(Lo), I) << "bucket " << I;
  }
}

TEST(LogBucketingTest, EdgeValues) {
  LogBucketing B(1.0, 8, 48);
  EXPECT_EQ(B.bucketFor(-5.0), 0u); // Negatives land in bucket 0.
  EXPECT_EQ(B.bucketFor(0.0), 0u);
  EXPECT_EQ(B.bucketFor(1e300), B.numBuckets() - 1); // Top saturates.
  EXPECT_TRUE(std::isinf(B.bucketHigh(B.numBuckets() - 1)));
  EXPECT_DOUBLE_EQ(B.relativeError(), 0.5 / 8.0);
}

TEST(LogBucketingTest, RelativeWidthBound) {
  LogBucketing B(0.001, 16, 40);
  // Above the unit, no finite bucket is wider than its own bounds allow:
  // midpoint within relativeError of anything in the bucket.
  for (size_t I = 0; I + 1 < B.numBuckets(); ++I) {
    double Lo = B.bucketLow(I);
    if (Lo < B.unit())
      continue; // Bucket 0 has no relative guarantee.
    double HalfWidth = (B.bucketHigh(I) - Lo) / 2.0;
    EXPECT_LE(HalfWidth, B.bucketMid(I) * B.relativeError() * 1.0000001)
        << "bucket " << I;
  }
}

TEST(QuantileFromBucketCountsTest, MatchesExactSortWithinBucketWidth) {
  LogBucketing B(1.0, 8, 48);
  std::vector<uint64_t> Counts(B.numBuckets(), 0);
  SampleSet Exact;
  // A deterministic multi-octave spread.
  double X = 1.0;
  uint64_t Total = 0;
  for (int I = 0; I != 400; ++I) {
    Counts[B.bucketFor(X)] += 1;
    Exact.add(X);
    Total += 1;
    X *= 1.05;
  }
  for (double Q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    double Approx = quantileFromBucketCounts(B, Counts.data(), Total, Q);
    double Truth = Exact.quantile(Q);
    EXPECT_NEAR(Approx, Truth, Truth * 2.0 * B.relativeError())
        << "quantile " << Q;
  }
  EXPECT_DOUBLE_EQ(quantileFromBucketCounts(B, Counts.data(), 0, 0.5), 0.0);
}

TEST(SampleSetTest, AllEqualSamplesAtEveryQuantile) {
  // With identical samples every quantile must return exactly that value —
  // nearest-rank cannot interpolate its way to anything else, and the
  // result must be bitwise equal (no floating-point drift from averaging).
  SampleSet S;
  for (int I = 0; I != 17; ++I)
    S.add(3.25);
  for (double Q : {0.0, 0.1, 0.5, 0.9, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(S.quantile(Q), 3.25) << "quantile " << Q;
  }
  EXPECT_DOUBLE_EQ(S.median(), 3.25);
  EXPECT_DOUBLE_EQ(S.mean(), 3.25);
  EXPECT_DOUBLE_EQ(S.maxValue(), 3.25);
}

TEST(SampleSetTest, EmptyAggregatesAreZero) {
  SampleSet S;
  EXPECT_DOUBLE_EQ(S.median(), 0.0);
  EXPECT_DOUBLE_EQ(S.percentile90(), 0.0);
  EXPECT_DOUBLE_EQ(S.sum(), 0.0);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.maxValue(), 0.0);
}

TEST(HistogramTest, ExactBucketBoundaryValues) {
  // Bucket edges are inclusive-low / exclusive-high: a sample exactly on
  // an interior edge belongs to the bucket above it, Lo itself to bucket
  // 0, and Hi (the exclusive end of the range) saturates into the top
  // bucket.
  Histogram H(0.0, 10.0, 5);
  H.add(0.0);  // Lo -> bucket 0.
  H.add(2.0);  // Edge between buckets 0 and 1 -> bucket 1.
  H.add(8.0);  // Edge between buckets 3 and 4 -> bucket 4.
  H.add(10.0); // Hi -> saturates into the top bucket.
  EXPECT_EQ(H.bucketValue(0), 1u);
  EXPECT_EQ(H.bucketValue(1), 1u);
  EXPECT_EQ(H.bucketValue(3), 0u);
  EXPECT_EQ(H.bucketValue(4), 2u);
  EXPECT_EQ(H.totalCount(), 4u);
}

TEST(LogBucketingTest, ExactOctaveBoundaryValues) {
  LogBucketing B(1.0, 8, 48);
  // Inclusive lower bounds: the exact low edge of every finite bucket maps
  // back to that bucket, including octave starts (powers of two), and the
  // value just below an edge maps to the bucket beneath it.
  for (double Edge : {1.0, 2.0, 4.0, 1024.0}) {
    size_t I = B.bucketFor(Edge);
    EXPECT_DOUBLE_EQ(B.bucketLow(I), Edge) << Edge;
    EXPECT_EQ(B.bucketFor(std::nextafter(Edge, 0.0)), I - 1) << Edge;
  }
  // The unit boundary separates bucket 0 from the scaled region.
  EXPECT_EQ(B.bucketFor(std::nextafter(1.0, 0.0)), 0u);
  EXPECT_EQ(B.bucketFor(1.0), 1u);
}

TEST(QuantileFromBucketCountsTest, AllMassInOneBucket) {
  // All samples equal (one hot bucket): every quantile answers that
  // bucket's midpoint, and the answer is within the geometry's relative
  // error of the true sample.
  LogBucketing B(1.0, 8, 48);
  std::vector<uint64_t> Counts(B.numBuckets(), 0);
  const double Value = 37.0;
  Counts[B.bucketFor(Value)] = 1000;
  for (double Q : {0.0, 0.5, 1.0}) {
    double Answer = quantileFromBucketCounts(B, Counts.data(), 1000, Q);
    EXPECT_DOUBLE_EQ(Answer, B.bucketMid(B.bucketFor(Value))) << Q;
    EXPECT_NEAR(Answer, Value, Value * B.relativeError()) << Q;
  }
}
