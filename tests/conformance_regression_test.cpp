//===- tests/conformance_regression_test.cpp - Golden reproducers --------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// Every shrunk counterexample that ever exposed a sim/runtime divergence
// is checked into tests/data/conformance/ as a golden trace. This suite
// replays each one through all paper policies expecting agreement — if a
// regression reintroduces the old divergence, the exact historical
// reproducer catches it.
//
//===----------------------------------------------------------------------===//

#include "conformance/Conformance.h"

#include "core/Policies.h"
#include "trace/TraceIO.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

using namespace dtb;
using namespace dtb::conformance;

namespace {

std::filesystem::path goldenDir() {
  return std::filesystem::path(DTB_TEST_DATA_DIR) / "conformance";
}

std::vector<std::filesystem::path> goldenTraces() {
  std::vector<std::filesystem::path> Paths;
  for (const auto &Entry : std::filesystem::directory_iterator(goldenDir())) {
    if (Entry.is_regular_file() &&
        Entry.path().string().size() > 10 &&
        Entry.path().string().rfind(".trace.txt") ==
            Entry.path().string().size() - 10)
      Paths.push_back(Entry.path());
  }
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

LockstepConfig quickConfig(const std::string &Policy) {
  LockstepConfig Config;
  Config.PolicyName = Policy;
  Config.TriggerBytes = 8 * 1024;
  Config.Policy.TraceMaxBytes = 4 * 1024;
  Config.Policy.MemMaxBytes = 24 * 1024;
  return Config;
}

TEST(ConformanceRegression, GoldenDirectoryHasTraces) {
  ASSERT_TRUE(std::filesystem::is_directory(goldenDir()))
      << goldenDir() << " missing";
  EXPECT_FALSE(goldenTraces().empty())
      << "no golden *.trace.txt reproducers checked in";
}

TEST(ConformanceRegression, GoldenTracesAgreeUnderAllPolicies) {
  for (const std::filesystem::path &Path : goldenTraces()) {
    std::optional<trace::Trace> T = trace::readTraceFile(Path.string());
    ASSERT_TRUE(T.has_value()) << "unreadable golden trace: " << Path;
    ASSERT_TRUE(T->verify()) << "malformed golden trace: " << Path;
    for (const std::string &Policy : core::paperPolicyNames()) {
      LockstepConfig Config = quickConfig(Policy);
      trace::Trace Normalized = normalizeForReplay(*T, Config.Links);
      LockstepResult Result = runLockstep(Normalized, Config);
      std::string Summary;
      for (const Divergence &D : Result.Divergences) {
        Summary += D.describe();
        Summary += '\n';
      }
      EXPECT_TRUE(Result.agreed())
          << Path.filename() << " under " << Policy << ":\n"
          << Summary;
    }
  }
}

} // namespace
