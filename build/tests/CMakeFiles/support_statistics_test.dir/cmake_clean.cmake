file(REMOVE_RECURSE
  "CMakeFiles/support_statistics_test.dir/support_statistics_test.cpp.o"
  "CMakeFiles/support_statistics_test.dir/support_statistics_test.cpp.o.d"
  "support_statistics_test"
  "support_statistics_test.pdb"
  "support_statistics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
