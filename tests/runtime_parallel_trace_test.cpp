//===- tests/runtime_parallel_trace_test.cpp ------------------------------==//
//
// Lane-count invariance of the parallel trace: the full exported scavenge
// surface (ScavengeRecord streams, collection stats, demographics,
// residency) must be bit-identical for 1 lane vs N on both collectors;
// pinned objects are traced in place under parallel lanes; weak references
// follow moves claimed by racing lanes; and the parallel-trace fault site
// degrades a round (zero child caps, single shared cursor) without
// changing any result.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"
#include "runtime/HeapVerifier.h"
#include "runtime/WeakRef.h"

#include "core/Policies.h"
#include "report/GhostMutator.h"
#include "support/FaultInjector.h"

#include "TestSeeds.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace dtb;
using namespace dtb::runtime;

namespace {

/// Everything a run exports that must be lane-count invariant.
struct RunResult {
  std::vector<core::ScavengeRecord> Records;
  CollectionStats Stats;
  uint64_t ResidentBytes = 0;
  size_t ResidentObjects = 0;
  size_t DemoEpochs = 0;
  std::vector<uint64_t> DemoLive;
};

RunResult snapshot(const Heap &H) {
  RunResult R;
  for (const core::ScavengeRecord &Rec : H.history().records())
    R.Records.push_back(Rec);
  R.Stats = H.lastCollectionStats();
  R.ResidentBytes = H.residentBytes();
  R.ResidentObjects = H.residentObjects();
  R.DemoEpochs = H.demographics().numEpochs();
  core::AllocClock Step = H.now() / 7 + 1;
  for (core::AllocClock B = 0; B <= H.now(); B += Step)
    R.DemoLive.push_back(H.demographics().liveBytesBornAfter(B));
  return R;
}

void expectIdentical(const RunResult &A, const RunResult &B) {
  ASSERT_EQ(A.Records.size(), B.Records.size());
  for (size_t I = 0; I != A.Records.size(); ++I) {
    const core::ScavengeRecord &X = A.Records[I];
    const core::ScavengeRecord &Y = B.Records[I];
    EXPECT_EQ(X.Index, Y.Index) << "scavenge " << I + 1;
    EXPECT_EQ(X.Time, Y.Time) << "scavenge " << I + 1;
    EXPECT_EQ(X.Boundary, Y.Boundary) << "scavenge " << I + 1;
    EXPECT_EQ(X.TracedBytes, Y.TracedBytes) << "scavenge " << I + 1;
    EXPECT_EQ(X.MemBeforeBytes, Y.MemBeforeBytes) << "scavenge " << I + 1;
    EXPECT_EQ(X.SurvivedBytes, Y.SurvivedBytes) << "scavenge " << I + 1;
    EXPECT_EQ(X.ReclaimedBytes, Y.ReclaimedBytes) << "scavenge " << I + 1;
  }
  EXPECT_EQ(A.Stats.ObjectsReclaimed, B.Stats.ObjectsReclaimed);
  EXPECT_EQ(A.Stats.ObjectsTraced, B.Stats.ObjectsTraced);
  EXPECT_EQ(A.Stats.ObjectsMoved, B.Stats.ObjectsMoved);
  EXPECT_EQ(A.Stats.RememberedSetRoots, B.Stats.RememberedSetRoots);
  EXPECT_EQ(A.Stats.RememberedSetPruned, B.Stats.RememberedSetPruned);
  EXPECT_EQ(A.Stats.TraceQuanta, B.Stats.TraceQuanta);
  EXPECT_EQ(A.Stats.MaxQuantumTracedBytes, B.Stats.MaxQuantumTracedBytes);
  EXPECT_EQ(A.ResidentBytes, B.ResidentBytes);
  EXPECT_EQ(A.ResidentObjects, B.ResidentObjects);
  EXPECT_EQ(A.DemoEpochs, B.DemoEpochs);
  EXPECT_EQ(A.DemoLive, B.DemoLive);
}

/// A full policy-driven ghost-mutator run at the given lane count.
RunResult runGhost(CollectorKind Kind, unsigned Lanes,
                   const std::string &Policy) {
  HeapConfig Config;
  Config.TriggerBytes = 20'000;
  Config.Collector = Kind;
  Config.TraceThreads = Lanes;
  Heap H(Config);
  core::PolicyConfig PolicyConfig;
  PolicyConfig.TraceMaxBytes = 5'000;
  PolicyConfig.MemMaxBytes = 60'000;
  H.setPolicy(core::createPolicy(Policy, PolicyConfig));

  HandleScope Scope(H);
  uint64_t Seed = test::effectiveSeed(0x61057);
  DTB_SCOPED_SEED_TRACE(Seed);
  report::GhostMutator Mutator(H, Scope, Seed);
  Mutator.run(300'000);
  return snapshot(H);
}

/// Builds a wide two-level graph: \p Spines rooted objects, each pointing
/// at a private child. Rounds carry hundreds of items, so 4-lane runs
/// genuinely fan out and steal.
void buildWideGraph(Heap &H, HandleScope &Scope, size_t Spines) {
  for (size_t I = 0; I != Spines; ++I) {
    Object *&Root = Scope.slot(H.allocate(1, static_cast<uint32_t>(I % 48)));
    Object *Child = H.allocate(0, static_cast<uint32_t>((I * 3) % 64));
    H.writeSlot(Root, 0, Child);
  }
}

} // namespace

TEST(ParallelTraceTest, MarkSweepGhostRunIsLaneCountInvariant) {
  for (const char *Policy : {"full", "dtbfm"}) {
    RunResult Serial = runGhost(CollectorKind::MarkSweep, 1, Policy);
    ASSERT_FALSE(Serial.Records.empty());
    expectIdentical(Serial, runGhost(CollectorKind::MarkSweep, 2, Policy));
    expectIdentical(Serial, runGhost(CollectorKind::MarkSweep, 4, Policy));
  }
}

TEST(ParallelTraceTest, CopyingGhostRunIsLaneCountInvariant) {
  for (const char *Policy : {"full", "dtbfm"}) {
    RunResult Serial = runGhost(CollectorKind::Copying, 1, Policy);
    ASSERT_FALSE(Serial.Records.empty());
    expectIdentical(Serial, runGhost(CollectorKind::Copying, 2, Policy));
    expectIdentical(Serial, runGhost(CollectorKind::Copying, 4, Policy));
  }
}

TEST(ParallelTraceTest, WideGraphStealingMatchesSerial) {
  for (CollectorKind Kind :
       {CollectorKind::MarkSweep, CollectorKind::Copying}) {
    RunResult Results[2];
    for (int Run = 0; Run != 2; ++Run) {
      HeapConfig Config;
      Config.TriggerBytes = 0;
      Config.Collector = Kind;
      Config.TraceThreads = Run == 0 ? 1 : 4;
      Heap H(Config);
      HandleScope Scope(H);
      buildWideGraph(H, Scope, 2'000);
      H.allocate(0, 32); // Garbage, so the sweep has something to do.
      H.collectAtBoundary(0);
      VerifyResult Verified = verifyHeap(H);
      ASSERT_TRUE(Verified.Ok) << Verified.Problems.front();
      Results[Run] = snapshot(H);
    }
    ASSERT_EQ(Results[0].Records.size(), 1u);
    EXPECT_GT(Results[0].Stats.ObjectsTraced, 3'000u);
    expectIdentical(Results[0], Results[1]);
  }
}

TEST(ParallelTraceTest, PinnedObjectsTracedInPlaceUnderLanes) {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Config.Collector = CollectorKind::Copying;
  Config.TraceThreads = 4;
  Config.QuarantineFreedObjects = true;
  Heap H(Config);
  HandleScope Scope(H);

  std::vector<Object **> Roots;
  std::vector<Object *> PinnedSet;
  for (size_t I = 0; I != 300; ++I) {
    Object *&Root = Scope.slot(H.allocate(1, 16));
    H.writeSlot(Root, 0, H.allocate(0, 24));
    Roots.push_back(&Root);
    if (I % 5 == 0) {
      H.pinObject(Root);
      PinnedSet.push_back(Root);
    }
  }

  H.collectAtBoundary(0);

  // Pinned objects kept their addresses and stayed alive; their children
  // (possibly evacuated by racing lanes) are alive through the fixed-up
  // slots.
  for (size_t I = 0; I != PinnedSet.size(); ++I) {
    Object *Pinned = *Roots[5 * I];
    EXPECT_EQ(Pinned, PinnedSet[I]) << "pinned object moved";
    ASSERT_TRUE(Pinned->isAlive());
    ASSERT_NE(Pinned->slot(0), nullptr);
    EXPECT_TRUE(Pinned->slot(0)->isAlive());
  }
  // Unpinned survivors were evacuated: the handles now reference live
  // copies (the quarantined originals would fail the canary).
  for (Object **Root : Roots) {
    ASSERT_TRUE((*Root)->isAlive());
    EXPECT_TRUE((*Root)->slot(0)->isAlive());
  }
  VerifyResult Verified = verifyHeap(H);
  EXPECT_TRUE(Verified.Ok) << (Verified.Problems.empty()
                                   ? ""
                                   : Verified.Problems.front());
}

TEST(ParallelTraceTest, WeakRefsFollowParallelEvacuation) {
  HeapConfig Config;
  Config.TriggerBytes = 0;
  Config.Collector = CollectorKind::Copying;
  Config.TraceThreads = 4;
  Config.QuarantineFreedObjects = true;
  Heap H(Config);
  HandleScope Scope(H);

  std::vector<std::unique_ptr<WeakRef>> LiveWeaks, DeadWeaks;
  for (size_t I = 0; I != 200; ++I) {
    Object *&Root = Scope.slot(H.allocate(0, 16));
    LiveWeaks.push_back(std::make_unique<WeakRef>(H, Root));
    DeadWeaks.push_back(std::make_unique<WeakRef>(H, H.allocate(0, 16)));
  }

  H.collectAtBoundary(0);

  for (const auto &Weak : LiveWeaks) {
    ASSERT_NE(Weak->get(), nullptr);
    EXPECT_TRUE(Weak->get()->isAlive());
  }
  for (const auto &Weak : DeadWeaks)
    EXPECT_EQ(Weak->get(), nullptr);
}

TEST(ParallelTraceChaosTest, DegradedRoundsOverflowWithoutChangingResults) {
  // Reference: no faults, serial.
  RunResult Reference;
  std::vector<unsigned> LaneCounts = {1, 4};
  for (size_t Run = 0; Run != 1 + LaneCounts.size(); ++Run) {
    HeapConfig Config;
    Config.TriggerBytes = 0;
    Config.TraceThreads = Run == 0 ? 1 : LaneCounts[Run - 1];
    Heap H(Config);
    HandleScope Scope(H);
    buildWideGraph(H, Scope, 1'500);

    if (Run == 0) {
      H.collectAtBoundary(0);
      Reference = snapshot(H);
      EXPECT_EQ(Reference.Stats.LaneOverflowEvents, 0u);
      continue;
    }

    // Degrade every round: zero private child caps force every discovered
    // child through the shared overflow list, and all lanes contend on a
    // single cursor (maximal steal contention / starvation ordering).
    uint64_t FaultSeed = test::effectiveSeed(7);
    DTB_SCOPED_SEED_TRACE(FaultSeed);
    FaultInjector Injector(FaultSeed);
    Injector.setProbability(FaultSite::ParallelTrace, 1.0);
    {
      FaultInjectionScope FaultScope(Injector);
      H.collectAtBoundary(0);
    }
    EXPECT_GT(Injector.injections(FaultSite::ParallelTrace), 0u);

    RunResult Degraded = snapshot(H);
    // Every child claimed during a degraded round detoured through the
    // overflow list: one event per discovered child, independent of lane
    // count.
    EXPECT_EQ(Degraded.Stats.LaneOverflowEvents, 1'500u);
    // The degraded stats carry the overflow count; everything else is
    // bit-identical to the clean serial run.
    Degraded.Stats.LaneOverflowEvents = Reference.Stats.LaneOverflowEvents;
    expectIdentical(Reference, Degraded);

    VerifyResult Verified = verifyHeap(H);
    EXPECT_TRUE(Verified.Ok) << (Verified.Problems.empty()
                                     ? ""
                                     : Verified.Problems.front());
  }
}
