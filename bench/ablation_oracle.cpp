//===- bench/ablation_oracle.cpp - Regret vs clairvoyant baselines -------===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
// How much do the paper's feedback policies lose to clairvoyance? The
// opt-pause / opt-mem baselines (core/OptimalPolicies.h) recompute the
// greedy best boundary from oracle demographics before every scavenge;
// DTBFM approximates opt-pause with one multiplicative window adjustment,
// DTBMEM approximates opt-mem with a linear-garbage model and the L_est
// guess. The gaps are the policies' regret: memory regret for DTBFM
// (same pause budget, how much more memory), tracing regret for DTBMEM
// (same memory budget, how much more collector work).
//
//===----------------------------------------------------------------------===//

#include "core/OptimalPolicies.h"
#include "report/Experiments.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/Units.h"
#include "telemetry/TelemetryCli.h"

#include <cstdio>

using namespace dtb;

int main(int Argc, char **Argv) {
  uint64_t TraceMax = 50'000;
  uint64_t MemMax = 3'000'000;
  OptionParser Parser("Measures DTBFM/DTBMEM regret against clairvoyant "
                      "per-scavenge-optimal baselines");
  Parser.addUInt("trace-max", "Pause budget in traced bytes", &TraceMax);
  Parser.addUInt("mem-max", "Memory budget in bytes", &MemMax);
  telemetry::TelemetryOptions TelemetryOpts;
  telemetry::addTelemetryOptions(Parser, &TelemetryOpts);
  if (!Parser.parse(Argc, Argv))
    return 1;
  telemetry::TelemetrySession Telemetry(TelemetryOpts);
  if (!Telemetry.valid())
    return 1;

  std::printf("Regret vs clairvoyant baselines (pause budget %.0f ms, "
              "memory budget %.0f KB)\n\n",
              core::MachineModel().pauseMillisForTracedBytes(TraceMax),
              bytesToKB(MemMax));

  Table PauseTbl({"Workload", "DTBFM mem mean", "opt-pause mem mean",
                  "regret", "DTBFM median", "opt median"});
  Table MemTbl({"Workload", "DTBMEM traced", "opt-mem traced", "regret",
                "DTBMEM mem max", "opt mem max"});
  for (const workload::WorkloadSpec &Spec : workload::paperWorkloads()) {
    trace::Trace T = workload::generateTrace(Spec);
    sim::SimulatorConfig SimConfig;
    SimConfig.ProgramSeconds = Spec.ProgramSeconds;

    core::DtbPausePolicy DtbFm(TraceMax);
    core::OptimalPausePolicy OptPause(TraceMax);
    SimConfig.TelemetryTrack = "sim/" + Spec.Name + "/dtbfm";
    sim::SimulationResult RFm = sim::simulate(T, DtbFm, SimConfig);
    SimConfig.TelemetryTrack = "sim/" + Spec.Name + "/opt-pause";
    sim::SimulationResult ROptP = sim::simulate(T, OptPause, SimConfig);
    double MemRegret =
        ROptP.MemMeanBytes > 0
            ? (RFm.MemMeanBytes / ROptP.MemMeanBytes - 1.0) * 100.0
            : 0.0;
    PauseTbl.addRow({Spec.DisplayName,
                     Table::cell(bytesToKB(RFm.MemMeanBytes)),
                     Table::cell(bytesToKB(ROptP.MemMeanBytes)),
                     Table::cell(MemRegret, 1) + "%",
                     Table::cell(RFm.PauseMillis.median(), 0),
                     Table::cell(ROptP.PauseMillis.median(), 0)});

    core::DtbMemoryPolicy DtbMem(MemMax);
    // opt-mem bounds *post-scavenge* residency; the heap then grows by up
    // to one trigger interval before the next scavenge. Discount the
    // interval so both policies chase the same observed maximum.
    uint64_t PostBudget = MemMax > SimConfig.TriggerBytes
                              ? MemMax - SimConfig.TriggerBytes
                              : MemMax;
    core::OptimalMemoryPolicy OptMem(PostBudget);
    SimConfig.TelemetryTrack = "sim/" + Spec.Name + "/dtbmem";
    sim::SimulationResult RMem = sim::simulate(T, DtbMem, SimConfig);
    SimConfig.TelemetryTrack = "sim/" + Spec.Name + "/opt-mem";
    sim::SimulationResult ROptM = sim::simulate(T, OptMem, SimConfig);
    double TraceRegret =
        ROptM.TotalTracedBytes > 0
            ? (static_cast<double>(RMem.TotalTracedBytes) /
                   static_cast<double>(ROptM.TotalTracedBytes) -
               1.0) *
                  100.0
            : 0.0;
    MemTbl.addRow({Spec.DisplayName,
                   Table::cell(bytesToKB(RMem.TotalTracedBytes)),
                   Table::cell(bytesToKB(ROptM.TotalTracedBytes)),
                   Table::cell(TraceRegret, 1) + "%",
                   Table::cell(bytesToKB(RMem.MemMaxBytes)),
                   Table::cell(bytesToKB(ROptM.MemMaxBytes))});
  }

  std::printf("DTBFM vs opt-pause (memory regret at equal pause "
              "budget):\n");
  PauseTbl.print(stdout);
  std::printf("\nDTBMEM vs opt-mem (tracing regret at equal memory "
              "budget):\n");
  MemTbl.print(stdout);
  std::printf("\nReading: single-digit regret means the paper's one-knob "
              "feedback rules\nextract most of the value clairvoyance "
              "could; large regret marks where\nthe simple models break "
              "(e.g. abrupt demographic shifts).\n");
  return 0;
}
