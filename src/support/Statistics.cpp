//===- support/Statistics.cpp ---------------------------------------------==//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace dtb;

double RunningStats::stddev() const { return std::sqrt(variance()); }

void TimeWeightedStats::setLevel(uint64_t Clock, double Value) {
  if (Value > Max)
    Max = Value;
  if (!HaveOrigin) {
    HaveOrigin = true;
    LastClock = Clock;
    Current = Value;
    return;
  }
  assert(Clock >= LastClock && "clock moved backwards");
  uint64_t Dt = Clock - LastClock;
  Integral += Current * static_cast<double>(Dt);
  ElapsedTotal += Dt;
  LastClock = Clock;
  Current = Value;
}

double SampleSet::quantile(double Q) const {
  if (Samples.empty())
    return 0.0;
  assert(Q >= 0.0 && Q <= 1.0 && "quantile out of range");
  std::vector<double> Sorted(Samples);
  // Nearest-rank: the ceil(Q*N)-th smallest sample (1-based), so the median
  // of {1,2,3,4} is 2 and quantile(1.0) is the maximum.
  size_t Rank = static_cast<size_t>(
      std::ceil(Q * static_cast<double>(Sorted.size())));
  if (Rank == 0)
    Rank = 1;
  size_t Index = Rank - 1;
  std::nth_element(Sorted.begin(),
                   Sorted.begin() + static_cast<ptrdiff_t>(Index),
                   Sorted.end());
  return Sorted[Index];
}

double SampleSet::sum() const {
  return std::accumulate(Samples.begin(), Samples.end(), 0.0);
}

double SampleSet::mean() const {
  return Samples.empty() ? 0.0 : sum() / static_cast<double>(Samples.size());
}

double SampleSet::maxValue() const {
  if (Samples.empty())
    return 0.0;
  return *std::max_element(Samples.begin(), Samples.end());
}

Histogram::Histogram(double Lo, double Hi, size_t NumBuckets)
    : Lo(Lo), Hi(Hi), Width((Hi - Lo) / static_cast<double>(NumBuckets)),
      Counts(NumBuckets, 0) {
  assert(Hi > Lo && "histogram range must be nonempty");
  assert(NumBuckets > 0 && "histogram needs at least one bucket");
}

void Histogram::add(double X) {
  Total += 1;
  if (X < Lo) {
    Counts.front() += 1;
    return;
  }
  auto Index = static_cast<size_t>((X - Lo) / Width);
  if (Index >= Counts.size())
    Index = Counts.size() - 1;
  Counts[Index] += 1;
}

double Histogram::bucketLow(size_t I) const {
  assert(I < Counts.size() && "bucket index out of range");
  return Lo + Width * static_cast<double>(I);
}
