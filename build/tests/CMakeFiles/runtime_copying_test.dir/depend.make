# Empty dependencies file for runtime_copying_test.
# This may be replaced when dependencies are built.
