# Empty compiler generated dependencies file for dtb_report.
# This may be replaced when dependencies are built.
