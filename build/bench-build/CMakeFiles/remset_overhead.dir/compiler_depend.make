# Empty compiler generated dependencies file for remset_overhead.
# This may be replaced when dependencies are built.
