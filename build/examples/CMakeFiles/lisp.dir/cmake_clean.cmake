file(REMOVE_RECURSE
  "CMakeFiles/lisp.dir/lisp.cpp.o"
  "CMakeFiles/lisp.dir/lisp.cpp.o.d"
  "lisp"
  "lisp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
