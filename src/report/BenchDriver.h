//===- report/BenchDriver.h - Unified benchmark suites ----------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One harness for every perf measurement in the repo, emitting the
/// BENCH_<suite>.json records of report/BenchRecord.h. Each suite mixes:
///
///  * a deterministic pass — simulator grid cells and managed-runtime
///    mutator runs, per-cell phase profilers folded serially into one
///    "sim" and one "runtime" domain. Bit-identical for every --threads
///    value (tasks deposit into preassigned slots, fixed-order merges).
///  * optional wall measurements ("wall/..." metrics) — warmup runs
///    discarded, N timed repeats, min/median/MAD recorded. Skipped
///    entirely under IncludeWall=false so records meant for bit-exact
///    comparison carry no nondeterminism.
///
/// Suites:
///  * quick  — small steady-state sim grid + a scaled runtime run; the CI
///             smoke gate (sub-second deterministic pass).
///  * paper  — the full Table 2/3/4 workload×policy grid + the
///             runtime_end_to_end-scale runtime run.
///  * runtime— the runtime run plus hot-path micro loops (allocation,
///             write barrier, boundary scavenge), the driver-resident
///             counterpart of bench/runtime_micro.
///  * timing — the parallel-engine and indexed-heap-query speedups that
///             runtime_end_to_end --timing used to emit as timing.*
///             gauges, now in the BENCH schema.
///  * server — the serverload scenario catalog (serverload/ServerLoad.h)
///             under every paper policy, emitting the tail families the
///             server story gates: pause p50/p99/p99.9 and
///             memory-overshoot (floating garbage vs. the trace oracle)
///             quantiles per scenario x policy.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_REPORT_BENCHDRIVER_H
#define DTB_REPORT_BENCHDRIVER_H

#include "profiling/Profiler.h"
#include "report/BenchRecord.h"

#include <map>
#include <string>
#include <vector>

namespace dtb {
namespace report {

struct BenchDriverOptions {
  std::string Suite = "quick";
  /// Worker threads for the sim fan-out: 0 = process default, 1 = serial.
  /// Deterministic output is independent of this.
  unsigned Threads = 0;
  /// Trace lanes for the runtime stages' parallel-scavenge passes:
  /// 0 = follow the resolved Threads value, 1 = serial. Deterministic
  /// output is independent of this too — the budgeted re-run per policy
  /// verifies it by construction.
  unsigned TraceLanes = 0;
  /// Timed repeats per wall measurement.
  unsigned Repeats = 3;
  /// Discarded warmup runs before the timed repeats.
  unsigned Warmup = 1;
  /// Record wall metrics. Off = fully deterministic record.
  bool IncludeWall = true;
  /// Record the env block (git SHA, build flags, thread count).
  bool IncludeEnv = true;
};

/// A suite's record plus the merged per-domain profilers backing its
/// phases block (for the cost-attribution summary).
struct BenchSuiteResult {
  BenchRecord Record;
  std::map<std::string, profiling::PhaseProfiler> Profiles;
};

/// The declared suite names, in documentation order.
const std::vector<std::string> &benchSuiteNames();

/// Runs one suite. Fatal on an unknown suite name.
BenchSuiteResult runBenchSuite(const BenchDriverOptions &Options);

} // namespace report
} // namespace dtb

#endif // DTB_REPORT_BENCHDRIVER_H
