//===- core/Combinators.h - Composing boundary policies --------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Policy combinators extending the paper's framework. The paper offers
/// the user a choice of *one* constraint — memory (DTBMEM) or pause time
/// (DTBFM) — and notes the two trade against each other. Because every
/// policy is just a boundary function, constraints compose by combining
/// boundaries:
///
///  * OldestBoundaryPolicy(A, B) takes the older (smaller) boundary —
///    the union of the threatened sets. With A = DTBMEM and B = DTBFM it
///    treats memory as the hard constraint: whenever the memory policy
///    needs to reach further back than the pause policy would like, it
///    wins, and pauses overshoot.
///
///  * YoungestBoundaryPolicy(A, B) takes the younger (larger) boundary —
///    the intersection of the threatened sets. With the same operands it
///    treats the pause budget as hard: tracing never exceeds what DTBFM
///    allows, and memory may overshoot.
///
///  * QuantizedBoundaryPolicy(P, Q) snaps P's boundary down to a multiple
///    of Q bytes. §4.2: "if less precision is desired (e.g., to maintain
///    the write barrier using virtual memory) ages can be constrained
///    arbitrarily" — this models page- or card-grained birth times.
///    Snapping *down* (older) only ever threatens more, so it is always
///    safe, and bench/ablation_quantization measures what the lost
///    precision costs.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_CORE_COMBINATORS_H
#define DTB_CORE_COMBINATORS_H

#include "core/BoundaryPolicy.h"

#include <memory>
#include <string>

namespace dtb {
namespace core {

/// Chooses the older (minimum) of two policies' boundaries: both
/// policies' threatened sets get collected. The first operand is
/// consulted first; both always run so their internal views of the
/// history stay meaningful.
class OldestBoundaryPolicy final : public BoundaryPolicy {
public:
  OldestBoundaryPolicy(std::unique_ptr<BoundaryPolicy> A,
                       std::unique_ptr<BoundaryPolicy> B);

  std::string name() const override;
  AllocClock chooseBoundary(const BoundaryRequest &Request) override;
  void reset() override;

private:
  std::unique_ptr<BoundaryPolicy> A;
  std::unique_ptr<BoundaryPolicy> B;
};

/// Chooses the younger (maximum) of two policies' boundaries: tracing is
/// bounded by the more permissive operand.
class YoungestBoundaryPolicy final : public BoundaryPolicy {
public:
  YoungestBoundaryPolicy(std::unique_ptr<BoundaryPolicy> A,
                         std::unique_ptr<BoundaryPolicy> B);

  std::string name() const override;
  AllocClock chooseBoundary(const BoundaryRequest &Request) override;
  void reset() override;

private:
  std::unique_ptr<BoundaryPolicy> A;
  std::unique_ptr<BoundaryPolicy> B;
};

/// Snaps the wrapped policy's boundary down to a multiple of the
/// quantum, modelling coarse-grained (page/card) object ages.
class QuantizedBoundaryPolicy final : public BoundaryPolicy {
public:
  /// \p QuantumBytes must be nonzero.
  QuantizedBoundaryPolicy(std::unique_ptr<BoundaryPolicy> Inner,
                          uint64_t QuantumBytes);

  std::string name() const override;
  AllocClock chooseBoundary(const BoundaryRequest &Request) override;
  void reset() override;

  uint64_t quantumBytes() const { return QuantumBytes; }

private:
  std::unique_ptr<BoundaryPolicy> Inner;
  uint64_t QuantumBytes;
};

} // namespace core
} // namespace dtb

#endif // DTB_CORE_COMBINATORS_H
