//===- tests/trace_test.cpp -----------------------------------------------==//
//
// Tests for the allocation-trace model: builder semantics, clock
// conventions, and structural verification.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include <gtest/gtest.h>

using namespace dtb;
using namespace dtb::trace;

TEST(TraceBuilderTest, BirthClockIsRunningByteTotal) {
  TraceBuilder B;
  auto A = B.allocate(100);
  auto C = B.allocate(50);
  Trace T = B.finish();
  ASSERT_EQ(T.numObjects(), 2u);
  EXPECT_EQ(T.records()[A].Birth, 100u);
  EXPECT_EQ(T.records()[C].Birth, 150u);
  EXPECT_EQ(T.totalAllocated(), 150u);
}

TEST(TraceBuilderTest, FreeRecordsDeathAtCurrentClock) {
  TraceBuilder B;
  auto A = B.allocate(100);
  B.allocate(50);
  B.free(A);
  B.allocate(25);
  Trace T = B.finish();
  EXPECT_EQ(T.records()[A].Death, 150u);
}

TEST(TraceBuilderTest, UnfreedObjectsNeverDie) {
  TraceBuilder B;
  auto A = B.allocate(10);
  Trace T = B.finish();
  EXPECT_EQ(T.records()[A].Death, NeverDies);
}

TEST(TraceBuilderTest, FinishResetsBuilder) {
  TraceBuilder B;
  B.allocate(10);
  Trace First = B.finish();
  EXPECT_EQ(B.now(), 0u);
  EXPECT_EQ(B.numObjects(), 0u);
  B.allocate(20);
  Trace Second = B.finish();
  EXPECT_EQ(Second.totalAllocated(), 20u);
  EXPECT_EQ(First.totalAllocated(), 10u);
}

TEST(AllocationRecordTest, LivenessSemantics) {
  AllocationRecord R{/*Birth=*/100, /*Size=*/10, /*Death=*/150};
  EXPECT_TRUE(R.liveAt(100));
  EXPECT_TRUE(R.liveAt(149));
  EXPECT_FALSE(R.liveAt(150)); // Dead exactly at the death clock.
  EXPECT_FALSE(R.liveAt(200));
  EXPECT_EQ(R.lifetime(), 50u);

  AllocationRecord Immortal{/*Birth=*/100, /*Size=*/10,
                            /*Death=*/NeverDies};
  EXPECT_TRUE(Immortal.liveAt(NeverDies - 1));
  EXPECT_EQ(Immortal.lifetime(), NeverDies);
}

TEST(TraceVerifyTest, AcceptsWellFormed) {
  TraceBuilder B;
  auto A = B.allocate(8);
  B.allocate(16);
  B.free(A);
  Trace T = B.finish();
  std::string Error;
  EXPECT_TRUE(T.verify(&Error)) << Error;
}

TEST(TraceVerifyTest, AcceptsEmpty) {
  Trace T;
  EXPECT_TRUE(T.verify());
  EXPECT_EQ(T.totalAllocated(), 0u);
  EXPECT_TRUE(T.empty());
}

TEST(TraceVerifyTest, RejectsZeroSize) {
  std::vector<AllocationRecord> Records = {{/*Birth=*/0, /*Size=*/0,
                                            /*Death=*/NeverDies}};
  Trace T(std::move(Records));
  std::string Error;
  EXPECT_FALSE(T.verify(&Error));
  EXPECT_NE(Error.find("zero size"), std::string::npos);
}

TEST(TraceVerifyTest, RejectsInconsistentBirthClock) {
  std::vector<AllocationRecord> Records = {
      {/*Birth=*/10, /*Size=*/10, /*Death=*/NeverDies},
      {/*Birth=*/15, /*Size=*/10, /*Death=*/NeverDies}, // Should be 20.
  };
  Trace T(std::move(Records));
  std::string Error;
  EXPECT_FALSE(T.verify(&Error));
  EXPECT_NE(Error.find("inconsistent"), std::string::npos);
}

TEST(TraceVerifyTest, RejectsDeathBeforeBirth) {
  std::vector<AllocationRecord> Records = {
      {/*Birth=*/10, /*Size=*/10, /*Death=*/5},
  };
  Trace T(std::move(Records));
  std::string Error;
  EXPECT_FALSE(T.verify(&Error));
  EXPECT_NE(Error.find("dies before"), std::string::npos);
}

TEST(TraceVerifyTest, AllowsDeathEqualToBirth) {
  TraceBuilder B;
  auto A = B.allocate(10);
  B.free(A); // Freed with no intervening allocation.
  Trace T = B.finish();
  EXPECT_TRUE(T.verify());
  EXPECT_EQ(T.records()[A].Death, T.records()[A].Birth);
}
