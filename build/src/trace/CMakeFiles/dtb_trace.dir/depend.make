# Empty dependencies file for dtb_trace.
# This may be replaced when dependencies are built.
