//===- core/ScavengeHistory.h - Per-scavenge records -----------*- C++ -*-===//
//
// Part of the dtbgc project (Barrett & Zorn DTB reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records of completed scavenges. Boundary policies consult this history:
/// FIXEDk needs the time of the k-th previous scavenge, FEEDMED searches
/// previous scavenge times as boundary candidates, and the DTB policies
/// need the previous scavenge's boundary and byte counts.
///
//===----------------------------------------------------------------------===//

#ifndef DTB_CORE_SCAVENGEHISTORY_H
#define DTB_CORE_SCAVENGEHISTORY_H

#include "core/AllocClock.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dtb {
namespace core {

/// Everything measured about one completed scavenge, in the paper's
/// notation for scavenge n: t_n, TB_n, Trace_n, S_n, Mem_n.
struct ScavengeRecord {
  /// 1-based scavenge index (n).
  uint64_t Index = 0;
  /// The allocation clock when the scavenge ran (t_n).
  AllocClock Time = 0;
  /// The threatening boundary used (TB_n).
  AllocClock Boundary = 0;
  /// Live bytes traced (Trace_n) — pause times are proportional to this.
  uint64_t TracedBytes = 0;
  /// Bytes resident just before the scavenge (Mem_n).
  uint64_t MemBeforeBytes = 0;
  /// Bytes surviving just after the scavenge (S_n).
  uint64_t SurvivedBytes = 0;
  /// Bytes reclaimed (Mem_n - S_n).
  uint64_t ReclaimedBytes = 0;
};

/// Append-only history of scavenge records.
class ScavengeHistory {
public:
  void append(const ScavengeRecord &Record) {
    assert(Record.Index == Records.size() + 1 &&
           "scavenge records must be appended in order");
    assert((Records.empty() || Record.Time >= Records.back().Time) &&
           "scavenge times must be monotone");
    Records.push_back(Record);
  }

  /// Number of completed scavenges.
  uint64_t size() const { return Records.size(); }
  bool empty() const { return Records.empty(); }

  /// Record of scavenge \p Index (1-based).
  const ScavengeRecord &record(uint64_t Index) const {
    assert(Index >= 1 && Index <= Records.size() && "index out of range");
    return Records[Index - 1];
  }

  /// The most recent record; history must be nonempty.
  const ScavengeRecord &last() const {
    assert(!Records.empty() && "no scavenges recorded");
    return Records.back();
  }

  /// Returns t_k: the time of scavenge \p K, with t_k = 0 for k <= 0 (the
  /// paper's convention — "time 0" is program start, so FIXEDk performs
  /// full collections until k scavenges have happened).
  AllocClock timeOf(int64_t K) const {
    if (K <= 0)
      return 0;
    assert(static_cast<uint64_t>(K) <= Records.size() &&
           "future scavenge time requested");
    return Records[static_cast<size_t>(K) - 1].Time;
  }

  const std::vector<ScavengeRecord> &records() const { return Records; }

  void clear() { Records.clear(); }

private:
  std::vector<ScavengeRecord> Records;
};

} // namespace core
} // namespace dtb

#endif // DTB_CORE_SCAVENGEHISTORY_H
